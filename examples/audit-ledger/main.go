// Audit ledger: Safe delivery in action. A replicated double-entry ledger
// applies transfers only when they are SAFE — i.e. the protocol has proven
// that every replica in the configuration has received them. Even if a
// replica crashes immediately after applying a transfer, no surviving
// replica can have missed it: exactly the stability property financial
// systems need before acting on a transaction (Section II of the paper).
//
// The demo also crashes one replica mid-stream and shows the survivors
// reconfigure (an Extended Virtual Synchrony membership change) and keep
// committing transfers, with books that still balance and match.
//
//	go run ./examples/audit-ledger
package main

import (
	"fmt"
	"log"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"accelring"
)

const replicaCount = 4

// ledger is one replica's account book.
type ledger struct {
	node     *accelring.Node
	balances map[string]int64
	applied  atomic.Int64
	events   []string
}

func (l *ledger) apply(payload []byte) error {
	// Format: "from:to:amount"
	parts := strings.Split(string(payload), ":")
	if len(parts) != 3 {
		return fmt.Errorf("bad transfer %q", payload)
	}
	amount, err := strconv.ParseInt(parts[2], 10, 64)
	if err != nil {
		return err
	}
	l.balances[parts[0]] -= amount
	l.balances[parts[1]] += amount
	l.applied.Add(1)
	return nil
}

func (l *ledger) total() int64 {
	var sum int64
	for _, v := range l.balances {
		sum += v
	}
	return sum
}

func main() {
	network := accelring.NewMemoryNetwork(99)
	members := make([]accelring.ParticipantID, 0, replicaCount)
	for i := 1; i <= replicaCount; i++ {
		members = append(members, accelring.ParticipantID(i))
	}
	ledgers := make([]*ledger, 0, replicaCount)
	for _, id := range members {
		node, err := accelring.Start(accelring.Options{
			ID:               id,
			Transport:        network.Endpoint(id),
			Members:          members,
			TokenLossTimeout: 100 * time.Millisecond, // fast failover for the demo
		})
		if err != nil {
			log.Fatalf("start replica %s: %v", id, err)
		}
		ledgers = append(ledgers, &ledger{node: node, balances: map[string]int64{
			"alice": 1000, "bob": 1000, "carol": 1000,
		}})
	}

	const phase1, phase2 = 20, 20
	accounts := []string{"alice", "bob", "carol"}

	// Apply loop per replica; survivors run to completion.
	var wg sync.WaitGroup
	for i, l := range ledgers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			survivor := i < replicaCount-1 // replica 4 will crash
			needed := phase1 + phase2
			if !survivor {
				needed = phase1 // it only sees phase 1
			}
			for ev := range l.node.Events() {
				switch e := ev.(type) {
				case accelring.ConfigChange:
					kind := "regular"
					if e.Transitional {
						kind = "transitional"
					}
					l.events = append(l.events,
						fmt.Sprintf("%s config %v", kind, e.Config.Members))
				case accelring.Message:
					if e.Service != accelring.Safe {
						log.Fatalf("ledger received non-safe delivery %q", e.Payload)
					}
					if err := l.apply(e.Payload); err != nil {
						log.Fatalf("replica %s: %v", l.node.ID(), err)
					}
					if l.applied.Load() >= int64(needed) {
						return
					}
				}
			}
		}()
	}

	// Phase 1: transfers with all four replicas up.
	for t := 0; t < phase1; t++ {
		from := accounts[t%3]
		to := accounts[(t+1)%3]
		payload := fmt.Sprintf("%s:%s:%d", from, to, 10+t)
		if err := ledgers[t%replicaCount].node.Submit([]byte(payload), accelring.Safe); err != nil {
			log.Fatalf("submit: %v", err)
		}
	}
	waitApplied(ledgers, phase1)
	fmt.Printf("phase 1: %d safe transfers committed on all %d replicas\n", phase1, replicaCount)

	// Crash replica 4. The survivors detect the token loss, reconfigure
	// (transitional + regular configuration events) and keep going.
	ledgers[replicaCount-1].node.Close()
	fmt.Printf("replica 4 crashed — survivors reconfigure and continue\n")

	for t := 0; t < phase2; t++ {
		from := accounts[(t+1)%3]
		to := accounts[t%3]
		payload := fmt.Sprintf("%s:%s:%d", from, to, 5+t)
		if err := ledgers[t%3].node.Submit([]byte(payload), accelring.Safe); err != nil {
			log.Fatalf("submit: %v", err)
		}
	}
	wg.Wait()
	for _, l := range ledgers[:3] {
		l.node.Close()
	}

	fmt.Printf("phase 2: %d more safe transfers committed on the 3 survivors\n\n", phase2)
	for i, l := range ledgers[:3] {
		fmt.Printf("replica %d: applied=%d total=%d balances=%v\n",
			i+1, l.applied.Load(), l.total(), l.balances)
		if l.total() != 3000 {
			log.Fatal("money was created or destroyed!")
		}
	}
	for i := 1; i < 3; i++ {
		if fmt.Sprint(ledgers[i].balances) != fmt.Sprint(ledgers[0].balances) {
			log.Fatal("ledgers diverged!")
		}
	}
	fmt.Printf("\nmembership events at replica 1:\n")
	for _, e := range ledgers[0].events {
		fmt.Printf("  %s\n", e)
	}
	fmt.Printf("\nbooks balance and match on every surviving replica ✓\n")
}

// waitApplied blocks until every ledger has applied at least n transfers.
func waitApplied(ledgers []*ledger, n int) {
	for {
		done := true
		for _, l := range ledgers {
			if l.applied.Load() < int64(n) {
				done = false
			}
		}
		if done {
			return
		}
		time.Sleep(time.Millisecond)
	}
}
