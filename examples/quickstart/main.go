// Quickstart: a three-node Accelerated Ring in a single process, over the
// in-memory transport. Each node multicasts a few messages with Agreed
// delivery; every node receives all messages in the same total order.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"accelring"
)

const (
	nodesCount = 3
	perNode    = 5
)

func main() {
	// One in-memory network; each node gets an endpoint. On a real
	// network, use accelring.NewUDPTransport instead.
	network := accelring.NewMemoryNetwork(42)
	members := []accelring.ParticipantID{1, 2, 3}

	nodes := make([]*accelring.Node, 0, nodesCount)
	for _, id := range members {
		node, err := accelring.Start(accelring.Options{
			ID:        id,
			Transport: network.Endpoint(id),
			Members:   members, // static ring: all nodes list the same members
		})
		if err != nil {
			log.Fatalf("start node %s: %v", id, err)
		}
		defer node.Close()
		nodes = append(nodes, node)
	}

	// Collect every node's delivery sequence concurrently.
	want := nodesCount * perNode
	sequences := make([][]string, nodesCount)
	var wg sync.WaitGroup
	for i, node := range nodes {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ev := range node.Events() {
				switch e := ev.(type) {
				case accelring.ConfigChange:
					fmt.Printf("node %s: configuration %v\n", node.ID(), e.Config.Members)
				case accelring.Message:
					sequences[i] = append(sequences[i], string(e.Payload))
					if len(sequences[i]) == want {
						return
					}
				}
			}
		}()
	}

	// Every node multicasts; submissions from different nodes race, and
	// the ring serializes them into one total order.
	for round := 1; round <= perNode; round++ {
		for _, node := range nodes {
			msg := fmt.Sprintf("msg %d from node %s", round, node.ID())
			if err := node.Submit([]byte(msg), accelring.Agreed); err != nil {
				log.Fatalf("submit: %v", err)
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	wg.Wait()

	fmt.Printf("\ntotal order as delivered at node 1:\n")
	for i, msg := range sequences[0] {
		fmt.Printf("%3d. %s\n", i+1, msg)
	}
	for i := 1; i < nodesCount; i++ {
		for k := range sequences[0] {
			if sequences[i][k] != sequences[0][k] {
				log.Fatalf("nodes 1 and %d disagree at position %d!", i+1, k)
			}
		}
	}
	fmt.Printf("\nall %d nodes delivered the same %d messages in the same order ✓\n",
		nodesCount, want)
}
