// Chat: the full Spread-like stack in one process — three ringd-style
// daemons form a ring over the in-memory transport, clients connect to
// their local daemon over real Unix sockets, join named chat rooms, and
// exchange messages (including a multi-group announcement) with totally
// ordered delivery and membership views.
//
//	go run ./examples/chat
package main

import (
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"time"

	"accelring"
	"accelring/internal/client"
	"accelring/internal/daemon"
	"accelring/internal/wire"
)

func main() {
	dir, err := os.MkdirTemp("", "accelring-chat")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// --- Three daemons, one ring.
	network := accelring.NewMemoryNetwork(3)
	members := []accelring.ParticipantID{1, 2, 3}
	socks := make([]string, 0, len(members))
	for _, id := range members {
		node, err := accelring.Start(accelring.Options{
			ID:        id,
			Transport: network.Endpoint(id),
			Members:   members,
		})
		if err != nil {
			log.Fatalf("daemon node %s: %v", id, err)
		}
		sock := filepath.Join(dir, fmt.Sprintf("ringd-%d.sock", id))
		ln, err := net.Listen("unix", sock)
		if err != nil {
			log.Fatal(err)
		}
		d, err := daemon.New(daemon.Config{Node: node, Listener: ln})
		if err != nil {
			log.Fatal(err)
		}
		defer d.Close()
		socks = append(socks, sock)
	}

	// --- Clients on different daemons.
	alice := connect(socks[0], "alice")
	bob := connect(socks[1], "bob")
	carol := connect(socks[2], "carol")
	defer alice.Close()
	defer bob.Close()
	defer carol.Close()

	// Everyone joins #general; carol also joins #ops.
	must(alice.Join("general"))
	must(bob.Join("general"))
	must(carol.Join("general"))
	must(carol.Join("ops"))

	// Print alice's and carol's event streams; each will see exactly 4
	// ordered messages (carol receives the two-group announcement once).
	aliceDone := make(chan struct{})
	carolDone := make(chan struct{})
	go printEvents("alice", alice, 4, aliceDone)
	go printEvents("carol", carol, 4, carolDone)

	time.Sleep(200 * time.Millisecond) // let the views settle for a tidy demo

	must(alice.Multicast(wire.ServiceAgreed, []byte("hi everyone!"), "general"))
	must(bob.Multicast(wire.ServiceAgreed, []byte("hey alice"), "general"))
	// Bob pages #general AND #ops with one message — multi-group
	// multicast; carol, a member of both, receives it exactly once. Bob is
	// not a member of #ops: open-group semantics let him send anyway.
	must(bob.Multicast(wire.ServiceSafe, []byte("deploy starting (safe, stable everywhere)"), "general", "ops"))
	must(carol.Multicast(wire.ServiceAgreed, []byte("ack from ops"), "general"))

	<-aliceDone
	<-carolDone
	fmt.Println("\nchat demo complete ✓")
}

func connect(sock, name string) *client.Conn {
	c, err := client.Connect("unix", sock, name)
	if err != nil {
		log.Fatalf("connect %s: %v", name, err)
	}
	fmt.Printf("%s connected as %s\n", name, c.PrivateName())
	return c
}

// printEvents renders a client's ordered event stream until nMessages
// ordered messages have been shown (views are printed as they arrive; how
// many views a client sees depends on join interleaving).
func printEvents(who string, c *client.Conn, nMessages int, done chan struct{}) {
	defer close(done)
	count := 0
	for ev := range c.Events() {
		switch e := ev.(type) {
		case client.View:
			fmt.Printf("[%s] view of #%s: %v\n", who, e.Group, e.Members)
		case client.Message:
			fmt.Printf("[%s] <%s → %v> (%s) %s\n", who, e.Sender, e.Groups, e.Service, e.Payload)
			count++
		}
		if count == nMessages {
			return
		}
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
