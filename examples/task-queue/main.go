// Task queue: mutual exclusion with no locks, leases or leader. Workers
// race to claim tasks by multicasting CLAIM messages with Agreed delivery;
// because every worker sees all claims in the same total order, the first
// claim for a task wins *identically everywhere* — no coordinator, no
// distributed lock service, no tie-breaking heuristics. This is the classic
// "state machine replication solves mutual exclusion" construction on top
// of totally ordered multicast.
//
//	go run ./examples/task-queue
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"
	"sync"
	"time"

	"accelring"
)

const (
	workerCount = 5
	taskCount   = 30
	// Each worker claims every task: claims per task = workerCount, and
	// exactly one must win.
	claimsTotal = workerCount * taskCount
)

// worker tracks which worker won each task, per the ordered claim stream.
type worker struct {
	node *accelring.Node
	// winners[task] = private id of the worker whose claim was ordered
	// first. Identical at every worker, or the construction is broken.
	winners map[string]accelring.ParticipantID
	mine    []string // tasks this worker won
	seen    int
}

func main() {
	network := accelring.NewMemoryNetwork(123)
	members := make([]accelring.ParticipantID, 0, workerCount)
	for i := 1; i <= workerCount; i++ {
		members = append(members, accelring.ParticipantID(i))
	}
	workers := make([]*worker, 0, workerCount)
	for _, id := range members {
		node, err := accelring.Start(accelring.Options{
			ID:        id,
			Transport: network.Endpoint(id),
			Members:   members,
			// Claims are tiny; pack them into shared protocol packets.
			PackThreshold: 1350,
		})
		if err != nil {
			log.Fatalf("start worker %s: %v", id, err)
		}
		defer node.Close()
		workers = append(workers, &worker{node: node, winners: map[string]accelring.ParticipantID{}})
	}

	// Every worker greedily claims every task, concurrently. Each worker
	// walks the task list from its own starting offset with a little
	// think-time, so claims genuinely race across token rounds.
	var claimWg sync.WaitGroup
	for i, w := range workers {
		claimWg.Add(1)
		go func() {
			defer claimWg.Done()
			for k := 0; k < taskCount; k++ {
				task := (k + i*taskCount/workerCount) % taskCount
				claim := fmt.Sprintf("task-%02d", task)
				if err := w.node.Submit([]byte(claim), accelring.Agreed); err != nil {
					log.Fatalf("claim: %v", err)
				}
				time.Sleep(200 * time.Microsecond)
			}
		}()
	}
	claimWg.Wait()

	// Apply the ordered claim stream at every worker.
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ev := range w.node.Events() {
				m, ok := ev.(accelring.Message)
				if !ok {
					continue
				}
				w.seen++
				task := string(m.Payload)
				if _, taken := w.winners[task]; !taken {
					w.winners[task] = m.Sender
					if m.Sender == w.node.ID() {
						w.mine = append(w.mine, task)
					}
				}
				if w.seen == claimsTotal {
					return
				}
			}
		}()
	}
	wg.Wait()

	// Every task has exactly one winner, and all workers agree on it.
	ref := workers[0].winners
	if len(ref) != taskCount {
		log.Fatalf("worker 1 assigned %d tasks, want %d", len(ref), taskCount)
	}
	for _, w := range workers[1:] {
		for task, winner := range ref {
			if w.winners[task] != winner {
				log.Fatalf("disagreement on %s: %v vs %v", task, winner, w.winners[task])
			}
		}
	}
	total := 0
	fmt.Printf("%d tasks claimed by %d racing workers — assignment agreed everywhere:\n\n", taskCount, workerCount)
	for _, w := range workers {
		sort.Strings(w.mine)
		fmt.Printf("worker %s won %2d: %s\n", w.node.ID(), len(w.mine), strings.Join(w.mine, " "))
		total += len(w.mine)
	}
	if total != taskCount {
		log.Fatalf("winners sum to %d, want %d", total, taskCount)
	}
	fmt.Printf("\nexactly one winner per task, zero locks ✓\n")
}
