// Replicated key-value store: state machine replication on top of Agreed
// delivery. Every replica submits racing writes to the same keys; because
// all replicas apply operations in the ring's single total order, their
// stores converge to identical contents without any locking or
// coordination beyond the ordered multicast — the classic use case the
// paper's introduction motivates (consistent distributed state).
//
//	go run ./examples/replicated-kv
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"
	"sync"

	"accelring"
)

const replicaCount = 4

// command is a store operation shipped through the ring: "SET key value"
// or "DEL key".
type command struct {
	op    string
	key   string
	value string
}

func (c command) encode() []byte {
	if c.op == "DEL" {
		return []byte("DEL " + c.key)
	}
	return []byte("SET " + c.key + " " + c.value)
}

func parseCommand(b []byte) (command, error) {
	parts := strings.SplitN(string(b), " ", 3)
	switch {
	case len(parts) == 2 && parts[0] == "DEL":
		return command{op: "DEL", key: parts[1]}, nil
	case len(parts) == 3 && parts[0] == "SET":
		return command{op: "SET", key: parts[1], value: parts[2]}, nil
	default:
		return command{}, fmt.Errorf("bad command %q", b)
	}
}

// replica is one KV store fed by ordered deliveries.
type replica struct {
	node  *accelring.Node
	store map[string]string
	log   []string // applied operations, in delivery order
}

func (r *replica) apply(c command) {
	switch c.op {
	case "SET":
		r.store[c.key] = c.value
	case "DEL":
		delete(r.store, c.key)
	}
	r.log = append(r.log, string(c.encode()))
}

func (r *replica) snapshot() string {
	keys := make([]string, 0, len(r.store))
	for k := range r.store {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%s ", k, r.store[k])
	}
	return b.String()
}

func main() {
	network := accelring.NewMemoryNetwork(7)
	members := make([]accelring.ParticipantID, 0, replicaCount)
	for i := 1; i <= replicaCount; i++ {
		members = append(members, accelring.ParticipantID(i))
	}

	replicas := make([]*replica, 0, replicaCount)
	for _, id := range members {
		node, err := accelring.Start(accelring.Options{
			ID:        id,
			Transport: network.Endpoint(id),
			Members:   members,
		})
		if err != nil {
			log.Fatalf("start replica %s: %v", id, err)
		}
		defer node.Close()
		replicas = append(replicas, &replica{node: node, store: make(map[string]string)})
	}

	// Every replica races to write the same keys: x, y, z and its own key.
	// The ring's total order decides who wins each conflict — identically
	// at every replica.
	const rounds = 10
	opsTotal := 0
	for round := 0; round < rounds; round++ {
		for i, r := range replicas {
			cmds := []command{
				{op: "SET", key: "x", value: fmt.Sprintf("r%d-round%d", i+1, round)},
				{op: "SET", key: fmt.Sprintf("own-%d", i+1), value: fmt.Sprint(round)},
			}
			if round%3 == 2 {
				cmds = append(cmds, command{op: "DEL", key: "x"})
			}
			for _, c := range cmds {
				if err := r.node.Submit(c.encode(), accelring.Agreed); err != nil {
					log.Fatalf("submit: %v", err)
				}
				opsTotal++
			}
		}
	}

	// Apply deliveries at every replica until all operations arrive.
	var wg sync.WaitGroup
	for _, r := range replicas {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ev := range r.node.Events() {
				m, ok := ev.(accelring.Message)
				if !ok {
					continue
				}
				c, err := parseCommand(m.Payload)
				if err != nil {
					log.Fatalf("replica %s: %v", r.node.ID(), err)
				}
				r.apply(c)
				if len(r.log) == opsTotal {
					return
				}
			}
		}()
	}
	wg.Wait()

	fmt.Printf("applied %d racing operations at %d replicas\n\n", opsTotal, replicaCount)
	for i, r := range replicas {
		fmt.Printf("replica %d store: %s\n", i+1, r.snapshot())
	}
	for i := 1; i < replicaCount; i++ {
		if replicas[i].snapshot() != replicas[0].snapshot() {
			log.Fatal("replica states diverged!")
		}
		for k := range replicas[0].log {
			if replicas[i].log[k] != replicas[0].log[k] {
				log.Fatalf("operation order diverged at %d", k)
			}
		}
	}
	fmt.Printf("\nall replicas converged to identical state after identical histories ✓\n")
	fmt.Printf("last three operations, as every replica applied them:\n")
	for _, op := range replicas[0].log[opsTotal-3:] {
		fmt.Printf("  %s\n", op)
	}
}
