package accelring_test

import (
	"fmt"

	"accelring"
)

// Example demonstrates the smallest complete use of the library API: a
// single-node ring ordering its own submissions (multi-node rings work the
// same way — give every node the same member list and its own endpoint).
func Example() {
	network := accelring.NewMemoryNetwork(1)
	node, err := accelring.Start(accelring.Options{
		ID:        1,
		Transport: network.Endpoint(1),
		Members:   []accelring.ParticipantID{1},
	})
	if err != nil {
		fmt.Println("start:", err)
		return
	}
	defer node.Close()

	if err := node.Submit([]byte("first"), accelring.Agreed); err != nil {
		fmt.Println("submit:", err)
		return
	}
	if err := node.Submit([]byte("second"), accelring.Safe); err != nil {
		fmt.Println("submit:", err)
		return
	}

	delivered := 0
	for ev := range node.Events() {
		if m, ok := ev.(accelring.Message); ok {
			fmt.Printf("%s (%s)\n", m.Payload, m.Service)
			delivered++
			if delivered == 2 {
				break
			}
		}
	}
	// Output:
	// first (agreed)
	// second (safe)
}

// ExampleStart_cluster shows a three-node ring delivering one message, in
// the same total order, to every participant.
func ExampleStart_cluster() {
	network := accelring.NewMemoryNetwork(7)
	members := []accelring.ParticipantID{1, 2, 3}
	var nodes []*accelring.Node
	for _, id := range members {
		node, err := accelring.Start(accelring.Options{
			ID:        id,
			Transport: network.Endpoint(id),
			Members:   members,
		})
		if err != nil {
			fmt.Println("start:", err)
			return
		}
		defer node.Close()
		nodes = append(nodes, node)
	}

	if err := nodes[1].Submit([]byte("ordered everywhere"), accelring.Agreed); err != nil {
		fmt.Println("submit:", err)
		return
	}
	for _, node := range nodes {
		for ev := range node.Events() {
			if m, ok := ev.(accelring.Message); ok {
				fmt.Printf("node %s got %q from %s\n", node.ID(), m.Payload, m.Sender)
				break
			}
		}
	}
	// Output:
	// node 0.0.0.1 got "ordered everywhere" from 0.0.0.2
	// node 0.0.0.2 got "ordered everywhere" from 0.0.0.2
	// node 0.0.0.3 got "ordered everywhere" from 0.0.0.2
}
