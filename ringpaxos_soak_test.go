package accelring

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"accelring/internal/evscheck"
	"accelring/internal/faultplan"
)

// paxosSoakTap records one node incarnation's delivery and configuration
// history off the Events channel, building the evscheck log the final
// conformance pass runs over.
type paxosSoakTap struct {
	mu  sync.Mutex
	log *evscheck.NodeLog
}

// drain consumes events until the node closes its channel.
func (tp *paxosSoakTap) drain(node *Node) {
	for ev := range node.Events() {
		tp.mu.Lock()
		switch e := ev.(type) {
		case Message:
			var sender, seq uint64
			if _, err := fmt.Sscanf(string(e.Payload), "px-%d-%d", &sender, &seq); err == nil {
				tp.log.Deliver(string(e.Payload), ParticipantID(sender), seq, e.Service)
			}
		case ConfigChange:
			tp.log.Install(e.Config.ID, e.Config.Members, e.Transitional)
		}
		tp.mu.Unlock()
	}
}

// delivered counts the messages the tap has recorded so far.
func (tp *paxosSoakTap) delivered() int {
	tp.mu.Lock()
	defer tp.mu.Unlock()
	n := 0
	for _, ev := range tp.log.Events {
		if !ev.Config {
			n++
		}
	}
	return n
}

// TestRingPaxosChaosSoak is the seeded chaos soak for the Ring Paxos
// engine, run under -race in CI: five nodes over memnet with sustained
// traffic, then three acts of chaos in sequence —
//
//  1. the initial coordinator (members[0], the view-0 elect) is crashed
//     mid-Phase-2, while circulations are in flight; the survivors must
//     reform via Phase 1 and keep ordering,
//  2. a deterministic faultplan partitions and heals the network (a
//     minority split may legitimately stall everyone — only safety is
//     asserted for this window),
//  3. the crashed node restarts as a fresh incarnation with the same
//     identity and must rejoin the ring and deliver post-restart traffic
//     via the install-carries-decided catch-up.
//
// After quiescence, every incarnation's log must satisfy the total-order
// evscheck profile (the ringpaxos engine guarantees agreement on order,
// not EVS membership axioms — see docs/PROTOCOL.md). Reproduce failures
// with the same seed constants.
func TestRingPaxosChaosSoak(t *testing.T) {
	const (
		seed = 2016
		n    = 5
	)
	phase := 400 * time.Millisecond
	if testing.Short() {
		phase = 250 * time.Millisecond
	}

	net := NewMemoryNetwork(seed)
	members := make([]ParticipantID, 0, n)
	for i := 1; i <= n; i++ {
		members = append(members, ParticipantID(i))
	}
	start := func(id ParticipantID) *Node {
		node, err := Start(Options{
			ID:                 id,
			Transport:          net.Endpoint(id),
			Members:            members,
			Engine:             EngineRingPaxos,
			TokenLossTimeout:   200 * time.Millisecond,
			TokenRetransPeriod: 40 * time.Millisecond,
			JoinPeriod:         20 * time.Millisecond,
			ConsensusTimeout:   100 * time.Millisecond,
			CommitTimeout:      100 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("Start(%d): %v", id, err)
		}
		return node
	}

	var (
		wg        sync.WaitGroup
		submitted atomic.Int64
		seqs      = make([]atomic.Uint64, n) // per-sender FIFO seq, shared across incarnations
	)
	taps := map[string]*paxosSoakTap{}
	// submitter keeps node's traffic up until its stop channel closes,
	// retrying the same seq on transient failure so per-sender seqs stay
	// contiguous in submission order.
	submitter := func(node *Node, idx int, stop chan struct{}) {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			seq := seqs[idx].Load() + 1 // 1-based: seq 0 disables evscheck's FIFO axiom
			if err := node.Submit([]byte(fmt.Sprintf("px-%d-%d", node.ID(), seq)), Agreed); err != nil {
				time.Sleep(2 * time.Millisecond)
				continue
			}
			seqs[idx].Add(1)
			submitted.Add(1)
			time.Sleep(time.Millisecond)
		}
	}
	spawn := func(name string, node *Node, idx int) chan struct{} {
		tap := &paxosSoakTap{log: &evscheck.NodeLog{}}
		taps[name] = tap
		stop := make(chan struct{})
		wg.Add(2)
		go func() { defer wg.Done(); tap.drain(node) }()
		go submitter(node, idx, stop)
		return stop
	}

	nodes := make([]*Node, n)
	stops := make([]chan struct{}, n)
	for i, id := range members {
		nodes[i] = start(id)
	}
	for i, id := range members {
		stops[i] = spawn(fmt.Sprint(id), nodes[i], i)
	}
	t.Cleanup(func() {
		for _, node := range nodes {
			node.Close()
		}
	})

	// Act 0: clean traffic.
	time.Sleep(phase)

	// Act 1: crash the view-0 coordinator mid-Phase-2.
	close(stops[0])
	nodes[0].Close()
	// Give failure detection (TokenLossTimeout) and Phase 1 time to run
	// before sampling progress across a full phase.
	time.Sleep(phase)
	before, err := nodes[1].Metrics()
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	time.Sleep(phase)
	after, err := nodes[1].Metrics()
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if after.Engine.Delivered <= before.Engine.Delivered {
		t.Errorf("survivors stalled after coordinator crash: %d -> %d deliveries",
			before.Engine.Delivered, after.Engine.Delivered)
	}

	// Act 2: seeded partition/heal plan over the whole network.
	plan := faultplan.Generate(seed, n, phase, faultplan.ClassPartition)
	net.ApplyFaults(&plan)
	time.Sleep(phase + phase/2)
	net.ApplyFaults(nil)
	net.Heal()
	time.Sleep(phase / 2)

	// Act 3: restart-rejoin as a fresh incarnation of the same identity.
	nodes[0] = start(members[0])
	stops[0] = spawn("1b", nodes[0], 0)
	time.Sleep(phase)

	// Stop the load and wait for quiescence: total deliveries stable.
	for _, stop := range stops {
		close(stop)
	}
	deadline := time.Now().Add(15 * time.Second)
	lastTotal, stableFor := -1, 0
	for time.Now().Before(deadline) && stableFor < 3 {
		time.Sleep(100 * time.Millisecond)
		total := 0
		for _, tap := range taps {
			total += tap.delivered()
		}
		if total == lastTotal {
			stableFor++
		} else {
			lastTotal, stableFor = total, 0
		}
	}

	// Engine-labeled evidence of the chaos before shutdown: the survivors
	// must have run Phase 1 and moved the coordinator off the crashed node.
	px, err := nodes[1].PaxosStats()
	if err != nil {
		t.Fatalf("PaxosStats: %v", err)
	}
	if px.Phase1Rounds == 0 || px.ViewInstalls == 0 {
		t.Errorf("no view change recorded on a survivor: %+v", px)
	}
	if px.CoordinatorChanges == 0 {
		t.Errorf("coordinator crash did not move the coordinator: %+v", px)
	}

	for _, node := range nodes {
		node.Close()
	}
	wg.Wait()

	if submitted.Load() == 0 {
		t.Fatal("soak submitted nothing")
	}
	for _, id := range members[1:] {
		if taps[fmt.Sprint(id)].delivered() == 0 {
			t.Fatalf("survivor %s delivered nothing", id)
		}
	}
	if taps["1b"].delivered() == 0 {
		t.Fatal("rejoined incarnation delivered nothing after restart")
	}

	// Final conformance: the crashed incarnation is marked Crashed (its
	// history may end mid-flight); the run is not quiescence-aligned for
	// the rejoiner (it fast-forwarded past the prefix), so Quiescent stays
	// off and the per-pair agreement axiom carries the weight.
	taps[fmt.Sprint(members[0])].log.Crashed = true
	l := evscheck.Log{}
	for name, tap := range taps {
		l[name] = tap.log
	}
	if vs := evscheck.Check(l, evscheck.Options{Profile: evscheck.ProfileTotalOrder}); len(vs) != 0 {
		t.Fatalf("total-order violations (seed %d): %v", seed, vs)
	}
}
