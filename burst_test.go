package accelring

import (
	"testing"

	"accelring/internal/core"
	"accelring/internal/transport"
	"accelring/internal/wire"
)

// recordingBatchTransport records which send path each packet took, so the
// tests can pin the runtime's burst-accumulation policy: runs of >= 2
// consecutive SendData actions go through MulticastBatch, everything else
// through the single-send paths.
type recordingBatchTransport struct {
	batches  [][]string // one entry per MulticastBatch call, decoded payloads
	singles  []string   // payloads sent via Multicast
	unicasts int
}

func (r *recordingBatchTransport) Multicast(pkt []byte) error {
	r.singles = append(r.singles, decodePayload(pkt))
	return nil
}

func (r *recordingBatchTransport) MulticastBatch(pkts [][]byte) error {
	batch := make([]string, len(pkts))
	for i, p := range pkts {
		batch[i] = decodePayload(p)
	}
	r.batches = append(r.batches, batch)
	return nil
}

func (r *recordingBatchTransport) Unicast(wire.ParticipantID, []byte) error {
	r.unicasts++
	return nil
}

func (r *recordingBatchTransport) Data() <-chan []byte  { return nil }
func (r *recordingBatchTransport) Token() <-chan []byte { return nil }
func (r *recordingBatchTransport) Close() error         { return nil }

func decodePayload(pkt []byte) string {
	m, err := wire.DecodeData(pkt)
	if err != nil {
		return "decode-error: " + err.Error()
	}
	return string(m.Payload)
}

func dataAction(payload string) core.SendData {
	return core.SendData{Msg: &wire.DataMessage{
		RingID:  wire.RingID{Rep: 1, Seq: 1},
		Seq:     1,
		PID:     1,
		Service: wire.ServiceAgreed,
		Payload: []byte(payload),
	}}
}

// TestExecuteBatchesSendDataRuns: a mixed action stream — like the
// engine's token hand-off output (pre-token run, SendToken, post-token
// accelerated flush) — must batch each multi-frame run, keep lone frames
// on the single path, and preserve the frames' order and contents.
func TestExecuteBatchesSendDataRuns(t *testing.T) {
	ft := &recordingBatchTransport{}
	n := &Node{tr: ft, batcher: ft, nm: newNodeMetrics()}
	tok := &wire.Token{RingID: wire.RingID{Rep: 1, Seq: 1}}

	n.execute(nil, nil, []core.Action{
		dataAction("pre-1"),
		dataAction("pre-2"),
		dataAction("pre-3"),
		core.SendToken{To: 2, Token: tok},
		dataAction("post-1"),
		dataAction("post-2"),
		core.SendToken{To: 2, Token: tok},
		dataAction("lone"),
	})

	if len(ft.batches) != 2 {
		t.Fatalf("MulticastBatch called %d times, want 2: %v", len(ft.batches), ft.batches)
	}
	wantPre := []string{"pre-1", "pre-2", "pre-3"}
	for i, p := range wantPre {
		if ft.batches[0][i] != p {
			t.Fatalf("pre-token batch = %v, want %v", ft.batches[0], wantPre)
		}
	}
	wantPost := []string{"post-1", "post-2"}
	for i, p := range wantPost {
		if ft.batches[1][i] != p {
			t.Fatalf("post-token batch = %v, want %v", ft.batches[1], wantPost)
		}
	}
	if len(ft.singles) != 1 || ft.singles[0] != "lone" {
		t.Fatalf("single-send path saw %v, want [lone]", ft.singles)
	}
	if ft.unicasts != 2 {
		t.Fatalf("unicasts = %d, want 2", ft.unicasts)
	}
	snap := n.nm.runtimeSnapshot(n)
	if snap.SendBursts != 2 || snap.SendBurstMsgs != 5 {
		t.Fatalf("burst counters = %d/%d, want 2 bursts carrying 5 frames",
			snap.SendBursts, snap.SendBurstMsgs)
	}
}

// TestExecuteWithoutBatcherUsesSinglePath: a transport without a batch
// path (memnet, external transports) keeps today's one-send-per-action
// behavior even for long runs.
func TestExecuteWithoutBatcherUsesSinglePath(t *testing.T) {
	ft := &recordingBatchTransport{}
	n := &Node{tr: ft, nm: newNodeMetrics()} // batcher deliberately nil
	n.execute(nil, nil, []core.Action{
		dataAction("a"), dataAction("b"), dataAction("c"),
	})
	if len(ft.batches) != 0 {
		t.Fatalf("batch path used without a batcher: %v", ft.batches)
	}
	if len(ft.singles) != 3 {
		t.Fatalf("singles = %v, want 3 frames", ft.singles)
	}
	if snap := n.nm.runtimeSnapshot(n); snap.SendBursts != 0 {
		t.Fatalf("SendBursts = %d without a batcher", snap.SendBursts)
	}
}

// TestSendBurstRecyclesBuffers: a burst's pooled encode buffers must all
// return to the pool, and the retained scratch vectors must not alias
// recycled buffers afterwards.
func TestSendBurstRecyclesBuffers(t *testing.T) {
	ft := &recordingBatchTransport{}
	n := &Node{tr: ft, batcher: ft, nm: newNodeMetrics()}
	before := transport.Buffers.Snapshot()
	n.execute(nil, nil, []core.Action{
		dataAction("r1"), dataAction("r2"), dataAction("r3"), dataAction("r4"),
	})
	after := transport.Buffers.Snapshot()
	gets := (after.Hits + after.Misses) - (before.Hits + before.Misses)
	puts := after.Puts - before.Puts
	if gets != 4 || puts != 4 {
		t.Fatalf("burst of 4 did %d pool gets and %d puts, want 4/4", gets, puts)
	}
	for i, b := range n.burstPkts[:cap(n.burstPkts)] {
		if b != nil {
			t.Fatalf("burstPkts[%d] still aliases a recycled buffer", i)
		}
	}
}
