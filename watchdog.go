package accelring

import (
	"time"
)

// Liveness watchdog. The protocol loop is a single goroutine; if it
// wedges — most plausibly blocked handing an ordered event to an
// application that stopped draining Events, or stuck in a pathological
// transport call — every in-band health check (Submit, Stats, Metrics)
// hangs with it. The watchdog therefore never touches the loop: it
// samples the loop's atomic progress counters and the queues feeding it,
// and flags a stall when a full interval passes with pending work but no
// progress. An idle ring (no pending work) is never a stall.

// StallReport describes one stalled watchdog check.
type StallReport struct {
	// Ring is the shard index when a multi-ring shard watchdog flagged one
	// frozen ring, and -1 for a single node's own protocol loop.
	Ring int
	// Interval is the watchdog's check interval: no progress was observed
	// for at least this long.
	Interval time.Duration
	// PendingData, PendingToken and PendingTimers are the queue depths the
	// stalled loop owes work for: undrained data and token packets, and
	// timer expiries recorded but not consumed.
	PendingData   int
	PendingToken  int
	PendingTimers int
	// EventQueueFull reports that the Events channel was at capacity — the
	// classic wedge: the application stopped draining and the loop is
	// blocked mid-delivery.
	EventQueueFull bool
}

// progress sums the counters that advance whenever the protocol loop
// completes work of any kind. Strictly monotone; sampled lock-free.
func (m *nodeMetrics) progress() uint64 {
	return m.pktData.Load() + m.pktToken.Load() + m.pktJoin.Load() +
		m.pktCommit.Load() + m.timerFires.Load() + m.submits.Load() +
		m.submitErrors.Load() + m.eventsDelivered.Load()
}

// pendingWork samples the work queued for the protocol loop without
// involving it.
func (n *Node) pendingWork() (data, token, timers int, evFull bool) {
	data = len(n.tr.Data())
	token = len(n.tr.Token())
	timers = n.timers.pendingFires()
	evFull = len(n.events) == cap(n.events)
	return
}

// watchdog runs until the node closes, checking every interval. A
// deliberately wedged loop is flagged within two intervals: the first
// tick records the (possibly still-advancing) progress sample, the next
// tick observes it frozen with work pending.
func (n *Node) watchdog(interval time.Duration, onStall func(StallReport)) {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	last := n.nm.progress()
	for {
		select {
		case <-n.done:
			return
		case <-tick.C:
		}
		n.nm.watchdogChecks.Inc()
		cur := n.nm.progress()
		data, token, timers, evFull := n.pendingWork()
		if cur == last && (data > 0 || token > 0 || timers > 0 || evFull) {
			n.nm.watchdogStalls.Inc()
			if onStall != nil {
				onStall(StallReport{
					Ring:           -1,
					Interval:       interval,
					PendingData:    data,
					PendingToken:   token,
					PendingTimers:  timers,
					EventQueueFull: evFull,
				})
			}
		}
		last = cur
	}
}

// shardWatchdog is the multi-ring cross-check: each ring already runs its
// own single-node watchdog, but a ring can also freeze in ways that look
// idle from inside (token lost with failure detection disarmed, transport
// silently dead). Relative progress exposes it: if any ring kept making
// progress over an interval while another ring — previously progressing —
// froze, that shard is stalled relative to the deployment and the merged
// total order is held up behind its skip units.
//
// The per-ring progress probe depends on the engine. A steady-rotation
// engine (accelring) circulates its token even when idle, so a frozen
// token counter alone is a stall. An event-driven engine (ringpaxos)
// deliberately pauses its ring when there is nothing to order, so a
// frozen counter is normal; such a ring is flagged only when its overall
// progress is frozen while it still owes work (queued packets, pending
// timer fires, or a full events channel).
func (mn *MultiNode) shardWatchdog(interval time.Duration, onStall func(StallReport)) {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	probe := func(n *Node) uint64 {
		if n.steadyRotation {
			return n.nm.pktToken.Load()
		}
		return n.nm.progress()
	}
	last := make([]uint64, len(mn.nodes))
	cur := make([]uint64, len(mn.nodes))
	for i, n := range mn.nodes {
		last[i] = probe(n)
	}
	for {
		select {
		case <-mn.router.Done():
			return
		case <-tick.C:
		}
		mn.shardChecks.Add(1)
		advanced := false
		for i, n := range mn.nodes {
			cur[i] = probe(n)
			if cur[i] > last[i] {
				advanced = true
			}
		}
		if advanced {
			for i, n := range mn.nodes {
				if cur[i] != last[i] {
					continue
				}
				if n.steadyRotation {
					// Only a ring that was rotating before (last > 0) can
					// stall; a ring that never formed is a startup
					// condition, not a wedge.
					if last[i] == 0 {
						continue
					}
					mn.shardStalls.Add(1)
					if onStall != nil {
						onStall(StallReport{Ring: i, Interval: interval})
					}
					continue
				}
				// Event-driven ring: frozen is fine unless it owes work.
				data, token, timers, evFull := n.pendingWork()
				if data == 0 && token == 0 && timers == 0 && !evFull {
					continue
				}
				mn.shardStalls.Add(1)
				if onStall != nil {
					onStall(StallReport{
						Ring:           i,
						Interval:       interval,
						PendingData:    data,
						PendingToken:   token,
						PendingTimers:  timers,
						EventQueueFull: evFull,
					})
				}
			}
		}
		copy(last, cur)
	}
}
