package accelring

import (
	"testing"
	"time"
)

// TestWatchdogFlagsWedgedLoop wedges a node's protocol loop the way real
// deployments do it — the application stops draining Events — and asserts
// the watchdog reports the stall within two check intervals of the wedge
// becoming observable, then that the counters surface through Metrics
// once the loop is unwedged.
func TestWatchdogFlagsWedgedLoop(t *testing.T) {
	const interval = 200 * time.Millisecond
	net := NewMemoryNetwork(1)
	members := []ParticipantID{1, 2}
	stalls := make(chan StallReport, 16)

	n1, err := Start(Options{
		ID:                 1,
		Transport:          net.Endpoint(1),
		Members:            members,
		TokenLossTimeout:   200 * time.Millisecond,
		TokenRetransPeriod: 40 * time.Millisecond,
		ConsensusTimeout:   100 * time.Millisecond,
		CommitTimeout:      100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	// Node 2 is the victim: a one-slot event buffer and no draining wedges
	// its loop in deliver() as soon as two ordered events arrive.
	n2, err := Start(Options{
		ID:                 2,
		Transport:          net.Endpoint(2),
		Members:            members,
		TokenLossTimeout:   200 * time.Millisecond,
		TokenRetransPeriod: 40 * time.Millisecond,
		ConsensusTimeout:   100 * time.Millisecond,
		CommitTimeout:      100 * time.Millisecond,
		EventBuffer:        1,
		WatchdogInterval:   interval,
		OnStall:            func(r StallReport) { stalls <- r },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()

	go func() {
		// Keep node 1 submitting so node 2 has deliveries to wedge on; node
		// 1 drains its own events.
		for i := 0; i < 50; i++ {
			n1.Submit([]byte("wedge"), Agreed)
			time.Sleep(5 * time.Millisecond)
		}
	}()
	go func() {
		for range n1.Events() {
		}
	}()

	// The wedge is observable once node 2's event buffer sits full.
	var wedgedAt time.Time
	deadline := time.Now().Add(10 * time.Second)
	for {
		if len(n2.events) == cap(n2.events) {
			wedgedAt = time.Now()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("node 2 never wedged")
		}
		time.Sleep(time.Millisecond)
	}

	select {
	case r := <-stalls:
		if elapsed := time.Since(wedgedAt); elapsed > 2*interval+100*time.Millisecond {
			t.Fatalf("stall reported after %v, want within 2×%v of the wedge", elapsed, interval)
		}
		if r.Ring != -1 {
			t.Fatalf("single-node stall report carries ring %d", r.Ring)
		}
		if !r.EventQueueFull {
			t.Fatalf("stall report %+v does not name the full event queue", r)
		}
	case <-time.After(3 * interval):
		t.Fatalf("watchdog never reported the wedged loop (checks=%d)",
			n2.nm.watchdogChecks.Load())
	}

	// Unwedge and check the counters ride Metrics (which round-trips the
	// loop, so it only answers once the loop is live again).
	go func() {
		for range n2.Events() {
		}
	}()
	m, err := n2.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Runtime.WatchdogStalls == 0 || m.Runtime.WatchdogChecks == 0 {
		t.Fatalf("metrics: checks=%d stalls=%d, want both > 0",
			m.Runtime.WatchdogChecks, m.Runtime.WatchdogStalls)
	}
}

// TestWatchdogQuietWhenHealthy: a live ring (token rotating, events
// drained) must never be flagged, even across many checks.
func TestWatchdogQuietWhenHealthy(t *testing.T) {
	const interval = 20 * time.Millisecond
	net := NewMemoryNetwork(2)
	members := []ParticipantID{1, 2}
	var nodes []*Node
	for _, id := range members {
		n, err := Start(Options{
			ID:                 id,
			Transport:          net.Endpoint(id),
			Members:            members,
			TokenLossTimeout:   200 * time.Millisecond,
			TokenRetransPeriod: 40 * time.Millisecond,
			ConsensusTimeout:   100 * time.Millisecond,
			CommitTimeout:      100 * time.Millisecond,
			WatchdogInterval:   interval,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		go func() {
			for range n.Events() {
			}
		}()
		nodes = append(nodes, n)
	}
	deadline := time.Now().Add(5 * time.Second)
	for nodes[0].nm.watchdogChecks.Load() < 10 {
		if time.Now().After(deadline) {
			t.Fatal("watchdog never accumulated checks")
		}
		time.Sleep(interval)
	}
	for _, n := range nodes {
		if s := n.nm.watchdogStalls.Load(); s != 0 {
			t.Fatalf("node %s: healthy ring flagged %d stalls", n.ID(), s)
		}
	}
}

// TestShardWatchdogFlagsFrozenRing freezes one shard of a multi-ring node
// (its ring node closed out from under the merge layer) and asserts the
// cross-ring watchdog notices it relative to the still-advancing sibling.
func TestShardWatchdogFlagsFrozenRing(t *testing.T) {
	const interval = 100 * time.Millisecond
	hubs := []*MemoryNetwork{NewMemoryNetwork(3), NewMemoryNetwork(4)}
	members := []ParticipantID{1, 2}
	stalls := make(chan StallReport, 64)
	var multis []*MultiNode
	for _, id := range members {
		transports := []Transport{hubs[0].Endpoint(id), hubs[1].Endpoint(id)}
		opts := MultiOptions{
			Node: Options{
				ID:                 id,
				Members:            members,
				TokenLossTimeout:   200 * time.Millisecond,
				TokenRetransPeriod: 40 * time.Millisecond,
				ConsensusTimeout:   100 * time.Millisecond,
				CommitTimeout:      100 * time.Millisecond,
			},
			RingTransports: transports,
			SkipInterval:   time.Millisecond,
		}
		if id == 1 {
			opts.Node.WatchdogInterval = interval
			opts.Node.OnStall = func(r StallReport) {
				select {
				case stalls <- r:
				default:
				}
			}
		}
		mn, err := StartMulti(opts)
		if err != nil {
			t.Fatal(err)
		}
		defer mn.Close()
		go func() {
			for range mn.Events() {
			}
		}()
		multis = append(multis, mn)
	}
	watched := multis[0]

	// Wait for both rings to rotate tokens (the watchdog only trusts
	// relative progress between rings that have rotated before).
	deadline := time.Now().Add(10 * time.Second)
	for watched.Ring(0).nm.pktToken.Load() == 0 || watched.Ring(1).nm.pktToken.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("rings never formed")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Freeze shard 1 under this participant: its ring node dies, the
	// sibling ring keeps rotating.
	watched.Ring(1).Close()

	deadline = time.Now().Add(5 * time.Second)
	for {
		select {
		case r := <-stalls:
			if r.Ring == 1 {
				if watched.shardStalls.Load() == 0 {
					t.Fatal("stall reported but counter is zero")
				}
				return
			}
			// Ring -1 or 0 reports can happen transiently; keep waiting.
		case <-time.After(time.Until(deadline)):
			t.Fatalf("shard watchdog never flagged the frozen ring (checks=%d stalls=%d)",
				watched.shardChecks.Load(), watched.shardStalls.Load())
		}
	}
}
