package accelring

import (
	"testing"
	"time"
)

// TestWatchdogFlagsWedgedLoop wedges a node's protocol loop the way real
// deployments do it — the application stops draining Events — and asserts
// the watchdog reports the stall within two check intervals of the wedge
// becoming observable, then that the counters surface through Metrics
// once the loop is unwedged.
func TestWatchdogFlagsWedgedLoop(t *testing.T) {
	const interval = 200 * time.Millisecond
	net := NewMemoryNetwork(1)
	members := []ParticipantID{1, 2}
	stalls := make(chan StallReport, 16)

	n1, err := Start(Options{
		ID:                 1,
		Transport:          net.Endpoint(1),
		Members:            members,
		TokenLossTimeout:   200 * time.Millisecond,
		TokenRetransPeriod: 40 * time.Millisecond,
		ConsensusTimeout:   100 * time.Millisecond,
		CommitTimeout:      100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	// Node 2 is the victim: a one-slot event buffer and no draining wedges
	// its loop in deliver() as soon as two ordered events arrive.
	n2, err := Start(Options{
		ID:                 2,
		Transport:          net.Endpoint(2),
		Members:            members,
		TokenLossTimeout:   200 * time.Millisecond,
		TokenRetransPeriod: 40 * time.Millisecond,
		ConsensusTimeout:   100 * time.Millisecond,
		CommitTimeout:      100 * time.Millisecond,
		EventBuffer:        1,
		WatchdogInterval:   interval,
		OnStall:            func(r StallReport) { stalls <- r },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()

	go func() {
		// Keep node 1 submitting so node 2 has deliveries to wedge on; node
		// 1 drains its own events.
		for i := 0; i < 50; i++ {
			n1.Submit([]byte("wedge"), Agreed)
			time.Sleep(5 * time.Millisecond)
		}
	}()
	go func() {
		for range n1.Events() {
		}
	}()

	// The wedge is observable once node 2's event buffer sits full.
	var wedgedAt time.Time
	deadline := time.Now().Add(10 * time.Second)
	for {
		if len(n2.events) == cap(n2.events) {
			wedgedAt = time.Now()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("node 2 never wedged")
		}
		time.Sleep(time.Millisecond)
	}

	select {
	case r := <-stalls:
		if elapsed := time.Since(wedgedAt); elapsed > 2*interval+100*time.Millisecond {
			t.Fatalf("stall reported after %v, want within 2×%v of the wedge", elapsed, interval)
		}
		if r.Ring != -1 {
			t.Fatalf("single-node stall report carries ring %d", r.Ring)
		}
		if !r.EventQueueFull {
			t.Fatalf("stall report %+v does not name the full event queue", r)
		}
	case <-time.After(3 * interval):
		t.Fatalf("watchdog never reported the wedged loop (checks=%d)",
			n2.nm.watchdogChecks.Load())
	}

	// Unwedge and check the counters ride Metrics (which round-trips the
	// loop, so it only answers once the loop is live again).
	go func() {
		for range n2.Events() {
		}
	}()
	m, err := n2.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Runtime.WatchdogStalls == 0 || m.Runtime.WatchdogChecks == 0 {
		t.Fatalf("metrics: checks=%d stalls=%d, want both > 0",
			m.Runtime.WatchdogChecks, m.Runtime.WatchdogStalls)
	}
}

// TestWatchdogQuietWhenHealthy: a live ring (token rotating, events
// drained) must never be flagged, even across many checks.
func TestWatchdogQuietWhenHealthy(t *testing.T) {
	const interval = 20 * time.Millisecond
	net := NewMemoryNetwork(2)
	members := []ParticipantID{1, 2}
	var nodes []*Node
	for _, id := range members {
		n, err := Start(Options{
			ID:                 id,
			Transport:          net.Endpoint(id),
			Members:            members,
			TokenLossTimeout:   200 * time.Millisecond,
			TokenRetransPeriod: 40 * time.Millisecond,
			ConsensusTimeout:   100 * time.Millisecond,
			CommitTimeout:      100 * time.Millisecond,
			WatchdogInterval:   interval,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		go func() {
			for range n.Events() {
			}
		}()
		nodes = append(nodes, n)
	}
	deadline := time.Now().Add(5 * time.Second)
	for nodes[0].nm.watchdogChecks.Load() < 10 {
		if time.Now().After(deadline) {
			t.Fatal("watchdog never accumulated checks")
		}
		time.Sleep(interval)
	}
	for _, n := range nodes {
		if s := n.nm.watchdogStalls.Load(); s != 0 {
			t.Fatalf("node %s: healthy ring flagged %d stalls", n.ID(), s)
		}
	}
}

// TestShardWatchdogFlagsFrozenRing freezes one shard of a multi-ring node
// (its ring node closed out from under the merge layer) and asserts the
// cross-ring watchdog notices it relative to the still-advancing sibling.
func TestShardWatchdogFlagsFrozenRing(t *testing.T) {
	const interval = 100 * time.Millisecond
	hubs := []*MemoryNetwork{NewMemoryNetwork(3), NewMemoryNetwork(4)}
	members := []ParticipantID{1, 2}
	stalls := make(chan StallReport, 64)
	var multis []*MultiNode
	for _, id := range members {
		transports := []Transport{hubs[0].Endpoint(id), hubs[1].Endpoint(id)}
		opts := MultiOptions{
			Node: Options{
				ID:                 id,
				Members:            members,
				TokenLossTimeout:   200 * time.Millisecond,
				TokenRetransPeriod: 40 * time.Millisecond,
				ConsensusTimeout:   100 * time.Millisecond,
				CommitTimeout:      100 * time.Millisecond,
			},
			RingTransports: transports,
			SkipInterval:   time.Millisecond,
		}
		if id == 1 {
			opts.Node.WatchdogInterval = interval
			opts.Node.OnStall = func(r StallReport) {
				select {
				case stalls <- r:
				default:
				}
			}
		}
		mn, err := StartMulti(opts)
		if err != nil {
			t.Fatal(err)
		}
		defer mn.Close()
		go func() {
			for range mn.Events() {
			}
		}()
		multis = append(multis, mn)
	}
	watched := multis[0]

	// Wait for both rings to rotate tokens (the watchdog only trusts
	// relative progress between rings that have rotated before).
	deadline := time.Now().Add(10 * time.Second)
	for watched.Ring(0).nm.pktToken.Load() == 0 || watched.Ring(1).nm.pktToken.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("rings never formed")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Freeze shard 1 under this participant: its ring node dies, the
	// sibling ring keeps rotating.
	watched.Ring(1).Close()

	deadline = time.Now().Add(5 * time.Second)
	for {
		select {
		case r := <-stalls:
			if r.Ring == 1 {
				if watched.shardStalls.Load() == 0 {
					t.Fatal("stall reported but counter is zero")
				}
				return
			}
			// Ring -1 or 0 reports can happen transiently; keep waiting.
		case <-time.After(time.Until(deadline)):
			t.Fatalf("shard watchdog never flagged the frozen ring (checks=%d stalls=%d)",
				watched.shardChecks.Load(), watched.shardStalls.Load())
		}
	}
}

// startMixedEngineMultis boots two participants, each running shard 0 on
// accelring and shard 1 on ringpaxos, returning the multi-nodes in member
// order. Only participant 1 runs the shard watchdog.
func startMixedEngineMultis(t *testing.T, interval time.Duration, nodeBuf, mergedBuf int,
	onStall func(StallReport)) []*MultiNode {
	t.Helper()
	hubs := []*MemoryNetwork{NewMemoryNetwork(5), NewMemoryNetwork(6)}
	members := []ParticipantID{1, 2}
	var multis []*MultiNode
	for _, id := range members {
		opts := MultiOptions{
			Node: Options{
				ID:                 id,
				Members:            members,
				EventBuffer:        nodeBuf,
				TokenLossTimeout:   200 * time.Millisecond,
				TokenRetransPeriod: 40 * time.Millisecond,
				JoinPeriod:         20 * time.Millisecond,
				ConsensusTimeout:   100 * time.Millisecond,
				CommitTimeout:      100 * time.Millisecond,
			},
			RingTransports: []Transport{hubs[0].Endpoint(id), hubs[1].Endpoint(id)},
			Engines:        []EngineKind{EngineAccelRing, EngineRingPaxos},
			SkipInterval:   time.Millisecond,
			EventBuffer:    mergedBuf,
		}
		if id == 1 {
			opts.Node.WatchdogInterval = interval
			opts.Node.OnStall = onStall
		}
		mn, err := StartMulti(opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { mn.Close() })
		multis = append(multis, mn)
	}
	return multis
}

// TestShardWatchdogQuietOnIdleRingPaxosShard is the regression test for
// the mixed-engine false positive: a ringpaxos shard pauses its token
// when it has nothing to order, so a frozen token counter next to a
// still-rotating accelring sibling must not be reported as a stall.
func TestShardWatchdogQuietOnIdleRingPaxosShard(t *testing.T) {
	const interval = 100 * time.Millisecond
	stalls := make(chan StallReport, 64)
	multis := startMixedEngineMultis(t, interval, 0, 0, func(r StallReport) {
		select {
		case stalls <- r:
		default:
		}
	})
	for _, mn := range multis {
		mn := mn
		go func() {
			for range mn.Events() {
			}
		}()
	}
	watched := multis[0]

	// Put traffic through the ringpaxos shard so its token counter is
	// nonzero (the pre-fix heuristic only flagged previously-rotating
	// rings), then let it quiesce while the accelring shard keeps
	// rotating.
	for i := 0; i < 10; i++ {
		if err := watched.SubmitShard(1, "g", []byte("x"), Agreed); err != nil {
			t.Fatalf("SubmitShard: %v", err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for watched.Ring(1).nm.pktToken.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("ringpaxos shard never circulated a token")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Observe several watchdog checks during which the accelring shard
	// advances and the idle ringpaxos shard does not.
	start := watched.shardChecks.Load()
	tok0 := watched.Ring(0).nm.pktToken.Load()
	deadline = time.Now().Add(10 * time.Second)
	for watched.shardChecks.Load() < start+5 {
		if time.Now().After(deadline) {
			t.Fatal("watchdog never accumulated checks")
		}
		time.Sleep(interval / 2)
	}
	if watched.Ring(0).nm.pktToken.Load() == tok0 {
		t.Fatal("accelring shard stopped rotating; test premise broken")
	}
	if s := watched.shardStalls.Load(); s != 0 {
		t.Fatalf("idle ringpaxos shard flagged %d stalls", s)
	}
	select {
	case r := <-stalls:
		t.Fatalf("unexpected stall report: %+v", r)
	default:
	}
}

// TestShardWatchdogFlagsWedgedRingPaxosShard checks the event-driven
// heuristic still catches a real wedge: the application stops draining
// the merged stream, the ringpaxos shard blocks mid-delivery with work
// queued, and the sibling accelring shard keeps rotating.
func TestShardWatchdogFlagsWedgedRingPaxosShard(t *testing.T) {
	const interval = 100 * time.Millisecond
	stalls := make(chan StallReport, 64)
	multis := startMixedEngineMultis(t, interval, 4, 4, func(r StallReport) {
		select {
		case stalls <- r:
		default:
		}
	})
	watched, other := multis[0], multis[1]
	// Participant 2 drains; participant 1 (watched) never reads its
	// merged events.
	go func() {
		for range other.Events() {
		}
	}()

	// Flood the ringpaxos shard from the healthy participant until the
	// watched node's buffers (events chan + mux + merged output) fill and
	// its ring-1 loop wedges mid-delivery. Backlog errors just mean the
	// pipe is full — keep nudging so pacing retransmissions keep arriving.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			other.SubmitShard(1, "g", []byte("flood"), Agreed)
			if i%64 == 63 {
				time.Sleep(time.Millisecond)
			}
		}
	}()

	// Wait on the shard watchdog's own counter: OnStall also receives the
	// per-ring node watchdogs' reports (relabeled with their shard index),
	// and the wedged ring's own watchdog typically fires first.
	var sawRingReport bool
	deadline := time.Now().Add(10 * time.Second)
	for {
		select {
		case r := <-stalls:
			if r.Ring != 1 {
				continue // transient per-loop (-1) or ring-0 reports
			}
			if !r.EventQueueFull && r.PendingData == 0 && r.PendingToken == 0 && r.PendingTimers == 0 {
				t.Fatalf("stall report carries no pending work: %+v", r)
			}
			sawRingReport = true
		case <-time.After(50 * time.Millisecond):
		}
		if sawRingReport && watched.shardStalls.Load() > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard watchdog never flagged the wedged ringpaxos shard (checks=%d stalls=%d report=%v)",
				watched.shardChecks.Load(), watched.shardStalls.Load(), sawRingReport)
		}
	}
}
