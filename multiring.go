package accelring

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"accelring/internal/multiring"
	"accelring/internal/wire"
)

// Multi-ring sharding: one token ring saturates at wire speed, so
// production scale partitions the group namespace across M independent
// Accelerated Rings — each with its own token, membership, flow control,
// transport sockets and metrics — and a deterministic merge layer
// (internal/multiring) interleaves the per-ring delivery streams
// round-robin, with skip units on idle rings, into a single total order
// across shards.

// Public aliases so applications never import internal packages.
type (
	// ShardEvent is a merged-stream occurrence: a ShardMessage or a
	// ShardConfigChange.
	ShardEvent = multiring.Event
	// ShardMessage is one message of the merged cross-shard total order.
	ShardMessage = multiring.Delivery
	// ShardConfigChange reports a membership change on one ring; it is
	// forwarded as it happens and is not part of the cross-shard order.
	ShardConfigChange = multiring.ConfigUpdate
	// RouterSnapshot is the merge layer's counter snapshot.
	RouterSnapshot = multiring.Snapshot
	// ShardUnit is one decoded unit of a single ring's ordered stream — an
	// application message or a skip — as seen by the merge layer's taps.
	ShardUnit = multiring.Unit
)

// ShardOf maps a group name onto one of rings shards. It is the pure
// function every node uses for routing, so a group's shard depends only on
// its name and the ring count.
func ShardOf(group string, rings int) int { return multiring.ShardOf(group, rings) }

// MultiOptions configures a multi-ring node.
type MultiOptions struct {
	// Node is the per-ring node template: ID, Members, Protocol, Windows,
	// timers and EventBuffer apply to every ring. Node.Transport is
	// ignored — each ring binds its own entry of RingTransports.
	Node Options
	// RingTransports supplies one transport per ring, in shard order:
	// memnet endpoints from per-ring hubs, udpnet transports on per-ring
	// port sets, or any mix. Required, at least one.
	RingTransports []Transport
	// Engines, when non-empty, selects a per-ring ordering engine in shard
	// order, overriding Node.Engine (every node of the deployment must use
	// the identical list). Its length must match RingTransports. Rings may
	// mix engines freely: the merge layer consumes each ring's totally
	// ordered stream and never sees how it was agreed on.
	Engines []EngineKind
	// SkipInterval is the merge layer's starvation poll period (default
	// 2ms): an idle ring stalls the cross-shard order for at most about
	// one interval plus that ring's ordering latency.
	SkipInterval time.Duration
	// SkipSubmit overrides skip leadership. Nil selects the default: this
	// node leads iff it has the lowest ID in Node.Members (with dynamic
	// membership, every node leads; extra skips are harmless padding).
	SkipSubmit *bool
	// EventBuffer is the merged output channel capacity (default 4096).
	EventBuffer int
	// OnUnit, when non-nil, observes every decoded unit of every ring in
	// that ring's delivery order, before merging — the hook the cross-ring
	// conformance harness builds exact per-ring logs on. Called on the
	// merge goroutine; keep it fast.
	OnUnit func(ring int, u ShardUnit)
	// OnConfig, when non-nil, observes per-ring configuration events in
	// order, on the merge goroutine.
	OnConfig func(ev ShardConfigChange)
}

// MultiNode is a participant in M rings at once, exposing their merged
// total order. Every node of the deployment must run the same ring count
// over pairwise-matching transports.
type MultiNode struct {
	id     ParticipantID
	nodes  []*Node
	router *multiring.Router

	// shardChecks/shardStalls are the shard watchdog's counters: checks
	// performed, and rings caught frozen while a sibling advanced.
	shardChecks atomic.Uint64
	shardStalls atomic.Uint64

	fwdWG     sync.WaitGroup
	closeOnce sync.Once
}

// StartMulti creates the per-ring nodes and begins merged operation.
func StartMulti(opts MultiOptions) (*MultiNode, error) {
	if len(opts.RingTransports) == 0 {
		return nil, errors.New("accelring: MultiOptions.RingTransports is required")
	}
	for i, tr := range opts.RingTransports {
		if tr == nil {
			return nil, fmt.Errorf("accelring: RingTransports[%d] is nil", i)
		}
	}

	nodes := make([]*Node, 0, len(opts.RingTransports))
	fail := func(err error) (*MultiNode, error) {
		for _, n := range nodes {
			n.Close()
		}
		return nil, err
	}
	if len(opts.Engines) != 0 && len(opts.Engines) != len(opts.RingTransports) {
		return nil, fmt.Errorf("accelring: MultiOptions.Engines has %d entries for %d rings",
			len(opts.Engines), len(opts.RingTransports))
	}

	for i, tr := range opts.RingTransports {
		ringOpts := opts.Node
		ringOpts.Transport = tr
		if len(opts.Engines) != 0 {
			ringOpts.Engine = opts.Engines[i]
		}
		if orig := opts.Node.OnStall; orig != nil {
			ring := i
			// Label per-ring loop stalls with their shard index.
			ringOpts.OnStall = func(r StallReport) {
				r.Ring = ring
				orig(r)
			}
		}
		n, err := Start(ringOpts)
		if err != nil {
			return fail(fmt.Errorf("accelring: starting ring %d: %w", i, err))
		}
		nodes = append(nodes, n)
	}

	skipSubmit := true
	if opts.SkipSubmit != nil {
		skipSubmit = *opts.SkipSubmit
	} else if len(opts.Node.Members) > 0 {
		for _, m := range opts.Node.Members {
			if m < opts.Node.ID {
				skipSubmit = false
				break
			}
		}
	}

	mn := &MultiNode{id: opts.Node.ID, nodes: nodes}

	// One muxed event channel: a forwarder per ring translates its node's
	// events in order; the router consumes the mux on its merge goroutine.
	mux := make(chan multiring.TaggedEvent, 256)
	handles := make([]multiring.RingHandle, len(nodes))
	for i, n := range nodes {
		handles[i] = multiring.RingHandle{Submit: n.Submit}
	}
	router, err := multiring.NewRouter(multiring.Options{
		Rings:        handles,
		Events:       mux,
		LocalID:      wire.ParticipantID(opts.Node.ID),
		SubmitSkips:  skipSubmit,
		SkipInterval: opts.SkipInterval,
		EventBuffer:  opts.EventBuffer,
		OnUnit:       opts.OnUnit,
		OnConfig:     opts.OnConfig,
	})
	if err != nil {
		return fail(err)
	}
	mn.router = router

	for i, n := range nodes {
		mn.fwdWG.Add(1)
		go mn.forward(i, n, mux)
	}
	go func() {
		mn.fwdWG.Wait()
		close(mux)
	}()
	if opts.Node.WatchdogInterval > 0 {
		go mn.shardWatchdog(opts.Node.WatchdogInterval, opts.Node.OnStall)
	}
	return mn, nil
}

// forward translates one ring's events into tagged router input, in that
// ring's delivery order. It exits when the ring's event channel closes or
// the router stops consuming.
func (mn *MultiNode) forward(ring int, n *Node, mux chan<- multiring.TaggedEvent) {
	defer mn.fwdWG.Done()
	for ev := range n.Events() {
		var re multiring.RingEvent
		switch e := ev.(type) {
		case Message:
			re = multiring.RingEvent{Sender: e.Sender, Service: e.Service, Payload: e.Payload}
		case ConfigChange:
			re = multiring.RingEvent{
				Config:       true,
				ID:           e.Config.ID,
				Members:      e.Config.Members,
				Transitional: e.Transitional,
			}
		default:
			continue
		}
		select {
		case mux <- multiring.TaggedEvent{Ring: ring, Event: re}:
		case <-mn.router.Done():
			return
		}
	}
}

// ID returns this participant's ID.
func (mn *MultiNode) ID() ParticipantID { return mn.id }

// Rings returns the number of rings (shards).
func (mn *MultiNode) Rings() int { return len(mn.nodes) }

// Ring returns the underlying single-ring node for shard i — an escape
// hatch for per-ring inspection; submitting through it bypasses the merge
// envelope and corrupts the merged stream.
func (mn *MultiNode) Ring(i int) *Node { return mn.nodes[i] }

// Events returns the merged cross-shard stream of ordered messages and
// per-ring membership changes. The channel is closed on shutdown.
func (mn *MultiNode) Events() <-chan ShardEvent { return mn.router.Events() }

// Submit routes one message to its destination groups' shards (one copy
// per addressed ring; unaddressed rings are not involved) for totally
// ordered cross-shard delivery.
func (mn *MultiNode) Submit(groups []string, payload []byte, service Service) error {
	return mn.router.Submit(groups, payload, service)
}

// SubmitShard routes one message to an explicit shard, bypassing the
// group hash.
func (mn *MultiNode) SubmitShard(ring int, group string, payload []byte, service Service) error {
	return mn.router.SubmitShard(ring, group, payload, service)
}

// Close stops the merge layer and every ring.
func (mn *MultiNode) Close() error {
	mn.closeOnce.Do(func() {
		mn.router.Close()
		for _, n := range mn.nodes {
			n.Close()
		}
		mn.fwdWG.Wait()
	})
	return nil
}
