package accelring

import (
	"fmt"
	"testing"
	"time"

	"accelring/internal/evscheck"
)

// startMultiCluster boots n multi-ring nodes, each a participant of rings
// independent memnet rings (one hub per shard). Skip leadership follows the
// library default: the lowest member ID leads.
func startMultiCluster(t *testing.T, n, rings int, seed int64) ([]*MultiNode, []*MemoryNetwork) {
	t.Helper()
	hubs := make([]*MemoryNetwork, rings)
	for r := range hubs {
		hubs[r] = NewMemoryNetwork(seed + int64(r))
	}
	members := make([]ParticipantID, 0, n)
	for i := 1; i <= n; i++ {
		members = append(members, ParticipantID(i))
	}
	nodes := make([]*MultiNode, 0, n)
	for _, id := range members {
		transports := make([]Transport, rings)
		for r := range transports {
			transports[r] = hubs[r].Endpoint(id)
		}
		mn, err := StartMulti(MultiOptions{
			Node: Options{
				ID:                 id,
				Members:            members,
				TokenLossTimeout:   200 * time.Millisecond,
				TokenRetransPeriod: 40 * time.Millisecond,
				JoinPeriod:         20 * time.Millisecond,
				ConsensusTimeout:   100 * time.Millisecond,
				CommitTimeout:      100 * time.Millisecond,
			},
			RingTransports: transports,
			SkipInterval:   time.Millisecond,
		})
		if err != nil {
			t.Fatalf("StartMulti(%d): %v", id, err)
		}
		nodes = append(nodes, mn)
	}
	t.Cleanup(func() {
		for _, mn := range nodes {
			mn.Close()
		}
	})
	return nodes, hubs
}

// collectMerged drains one node's merged stream until want messages
// arrived, returning them (config updates are counted separately).
func collectMerged(t *testing.T, mn *MultiNode, want int, deadline time.Duration) ([]ShardMessage, int) {
	t.Helper()
	var msgs []ShardMessage
	configs := 0
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	for len(msgs) < want {
		select {
		case ev, ok := <-mn.Events():
			if !ok {
				t.Fatalf("node %d: merged stream closed after %d/%d messages", mn.ID(), len(msgs), want)
			}
			switch e := ev.(type) {
			case ShardMessage:
				msgs = append(msgs, e)
			case ShardConfigChange:
				configs++
			}
		case <-timer.C:
			t.Fatalf("node %d: timed out with %d/%d merged messages", mn.ID(), len(msgs), want)
		}
	}
	return msgs, configs
}

// crossKey labels one merged message for the conformance log.
func crossKey(m ShardMessage) string {
	return fmt.Sprintf("%d:%d", m.Sender, m.SenderSeq)
}

// groupOnShard returns a group name hashing to the wanted shard.
func groupOnShard(t *testing.T, shard, rings int) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		g := fmt.Sprintf("group-%d", i)
		if ShardOf(g, rings) == shard {
			return g
		}
	}
	t.Fatalf("no group found for shard %d/%d", shard, rings)
	return ""
}

// TestMultiRingTotalOrder is the tentpole's end-to-end check: three nodes
// on two rings, traffic on both shards plus cross-shard messages, and every
// node must emit the identical merged order — verified structurally and by
// the cross-ring conformance checker in converged mode.
func TestMultiRingTotalOrder(t *testing.T) {
	const n, rings, perNode = 3, 2, 20
	nodes, _ := startMultiCluster(t, n, rings, 7)
	g0 := groupOnShard(t, 0, rings)
	g1 := groupOnShard(t, 1, rings)

	for i := 0; i < perNode; i++ {
		for _, mn := range nodes {
			g := g0
			if i%2 == 1 {
				g = g1
			}
			if err := mn.Submit([]string{g}, []byte(fmt.Sprintf("%d-%d", mn.ID(), i)), Agreed); err != nil {
				t.Fatalf("Submit: %v", err)
			}
		}
	}
	// Cross-shard messages: one copy per ring, one merged emission.
	for _, mn := range nodes {
		if err := mn.Submit([]string{g0, g1}, []byte(fmt.Sprintf("x-%d", mn.ID())), Agreed); err != nil {
			t.Fatalf("cross-shard Submit: %v", err)
		}
	}

	want := n*perNode + n
	streams := make([][]ShardMessage, n)
	for i, mn := range nodes {
		streams[i], _ = collectMerged(t, mn, want, 15*time.Second)
	}

	// Structural agreement: identical key sequence everywhere.
	for i := 1; i < n; i++ {
		for k := range streams[0] {
			if crossKey(streams[i][k]) != crossKey(streams[0][k]) {
				t.Fatalf("merged order differs at %d: %s vs %s",
					k, crossKey(streams[i][k]), crossKey(streams[0][k]))
			}
		}
	}
	// Routing agreement: single-shard messages landed on the hash's ring,
	// cross-shard messages report both shards.
	for _, m := range streams[0] {
		if m.Shards == 1 {
			if want := ShardOf(m.Groups[0], rings); m.Ring != want {
				t.Fatalf("message %s on ring %d, group %q hashes to %d",
					crossKey(m), m.Ring, m.Groups[0], want)
			}
		} else if m.Shards != rings {
			t.Fatalf("cross-shard message %s reports %d shards", crossKey(m), m.Shards)
		}
	}

	// The conformance checker's verdict, in strict mode: no partitions
	// happened and every stream was drained to the same length.
	cl := evscheck.CrossLog{}
	for i, msgs := range streams {
		nl := cl.Node(fmt.Sprint(nodes[i].ID()))
		for _, m := range msgs {
			nl.Deliver(crossKey(m), m.Ring, m.Turn, m.Shards)
		}
	}
	if vs := evscheck.CrossCheck(cl, evscheck.CrossOptions{Converged: true}); len(vs) != 0 {
		t.Fatalf("cross-ring conformance violations: %v", vs)
	}
}

// TestMultiRingUDP runs two nodes on two rings over real loopback UDP
// sockets — each ring gets its own port set — proving the per-ring
// transport binding works beyond memnet.
func TestMultiRingUDP(t *testing.T) {
	const n, rings, perNode = 2, 2, 10
	ports := freePorts(t, 2*n*rings)
	members := []ParticipantID{1, 2}

	nodes := make([]*MultiNode, 0, n)
	for _, id := range members {
		transports := make([]Transport, rings)
		for r := 0; r < rings; r++ {
			peers := make(map[ParticipantID]Peer, n)
			for pi, pid := range members {
				base := 2 * (rings*pi + r)
				peers[pid] = Peer{Host: "127.0.0.1", DataPort: ports[base], TokenPort: ports[base+1]}
			}
			tr, err := NewUDPTransport(UDPOptions{ID: id, Peers: peers})
			if err != nil {
				t.Fatalf("NewUDPTransport(node %d ring %d): %v", id, r, err)
			}
			transports[r] = tr
		}
		mn, err := StartMulti(MultiOptions{
			Node: Options{
				ID:                 id,
				Members:            members,
				TokenLossTimeout:   300 * time.Millisecond,
				TokenRetransPeriod: 60 * time.Millisecond,
			},
			RingTransports: transports,
			SkipInterval:   2 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("StartMulti(%d): %v", id, err)
		}
		nodes = append(nodes, mn)
	}
	t.Cleanup(func() {
		for _, mn := range nodes {
			mn.Close()
		}
	})

	g0 := groupOnShard(t, 0, rings)
	g1 := groupOnShard(t, 1, rings)
	for i := 0; i < perNode; i++ {
		for _, mn := range nodes {
			g := g0
			if i%2 == 1 {
				g = g1
			}
			if err := mn.Submit([]string{g}, []byte(fmt.Sprintf("%d-%d", mn.ID(), i)), Agreed); err != nil {
				t.Fatalf("Submit: %v", err)
			}
		}
	}
	want := n * perNode
	a, _ := collectMerged(t, nodes[0], want, 20*time.Second)
	b, _ := collectMerged(t, nodes[1], want, 20*time.Second)
	for k := range a {
		if crossKey(a[k]) != crossKey(b[k]) || a[k].Turn != b[k].Turn {
			t.Fatalf("UDP merged order differs at %d: %s@%d vs %s@%d",
				k, crossKey(a[k]), a[k].Turn, crossKey(b[k]), b[k].Turn)
		}
	}
}

// TestMultiRingMetricsIsolation is the metrics-aggregation regression test:
// with traffic pinned to shard 0 and skips disabled, ring 1's engine and
// runtime counters must stay untouched — per-ring registries cannot
// cross-contaminate — while the merged view sums the per-ring numbers and
// counts the process-global buffer pool exactly once.
func TestMultiRingMetricsIsolation(t *testing.T) {
	const n, rings, msgs = 2, 2, 15
	hubs := make([]*MemoryNetwork, rings)
	for r := range hubs {
		hubs[r] = NewMemoryNetwork(11 + int64(r))
	}
	members := []ParticipantID{1, 2}
	noSkips := false
	nodes := make([]*MultiNode, 0, n)
	for _, id := range members {
		transports := make([]Transport, rings)
		for r := range transports {
			transports[r] = hubs[r].Endpoint(id)
		}
		mn, err := StartMulti(MultiOptions{
			Node: Options{
				ID:                 id,
				Members:            members,
				TokenLossTimeout:   200 * time.Millisecond,
				TokenRetransPeriod: 40 * time.Millisecond,
			},
			RingTransports: transports,
			SkipSubmit:     &noSkips,
		})
		if err != nil {
			t.Fatalf("StartMulti(%d): %v", id, err)
		}
		nodes = append(nodes, mn)
	}
	t.Cleanup(func() {
		for _, mn := range nodes {
			mn.Close()
		}
	})

	g0 := groupOnShard(t, 0, rings)
	for i := 0; i < msgs; i++ {
		if err := nodes[0].SubmitShard(0, g0, []byte("iso"), Agreed); err != nil {
			t.Fatalf("SubmitShard: %v", err)
		}
	}

	// With skips disabled the merge stalls after the first emission, but
	// ring 0's engine keeps ordering; wait on its delivery counter.
	deadline := time.Now().Add(10 * time.Second)
	var snap MultiMetricsSnapshot
	for {
		var err error
		snap, err = nodes[1].Metrics()
		if err != nil {
			t.Fatalf("Metrics: %v", err)
		}
		if snap.Rings[0].Engine.Delivered >= msgs {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ring 0 delivered %d/%d", snap.Rings[0].Engine.Delivered, msgs)
		}
		time.Sleep(20 * time.Millisecond)
	}

	r0, r1 := snap.Rings[0], snap.Rings[1]
	if r1.Engine.Delivered != 0 || r1.Engine.MsgsSent != 0 || r1.Runtime.PacketsData != 0 || r1.Runtime.Submits != 0 {
		t.Fatalf("idle ring's counters moved: delivered=%d sent=%d data=%d submits=%d",
			r1.Engine.Delivered, r1.Engine.MsgsSent, r1.Runtime.PacketsData, r1.Runtime.Submits)
	}
	if r1.Engine.TokensProcessed == 0 {
		t.Fatal("idle ring's token never rotated — per-ring engines are not independent")
	}
	if snap.Merged.Engine.Delivered != r0.Engine.Delivered+r1.Engine.Delivered {
		t.Fatalf("merged Delivered = %d, want %d",
			snap.Merged.Engine.Delivered, r0.Engine.Delivered+r1.Engine.Delivered)
	}
	if snap.Merged.Engine.TokensProcessed != r0.Engine.TokensProcessed+r1.Engine.TokensProcessed {
		t.Fatal("merged TokensProcessed is not the per-ring sum")
	}
	// The buffer pool is process-global: the merged view must report it
	// once, not once per ring — its counters are shared, so a sum would
	// double every number.
	if snap.Merged.BufferPool != r0.BufferPool {
		t.Fatalf("merged BufferPool %+v != ring 0's %+v", snap.Merged.BufferPool, r0.BufferPool)
	}
	if snap.Router.Rings != rings {
		t.Fatalf("router snapshot reports %d rings", snap.Router.Rings)
	}
	if snap.Router.SkipsSubmitted != 0 {
		t.Fatalf("skips submitted with SkipSubmit disabled: %d", snap.Router.SkipsSubmitted)
	}
}

// TestMergeMetricsSnapshots pins the aggregation rules on synthetic inputs:
// counters add, the window gauge takes the max, transport sums, and the
// shared buffer pool is copied from the first snapshot rather than summed.
func TestMergeMetricsSnapshots(t *testing.T) {
	var a, b MetricsSnapshot
	a.Engine.Delivered, b.Engine.Delivered = 10, 32
	a.Engine.AccelWindow, b.Engine.AccelWindow = 3, 7
	a.Runtime.PacketsData, b.Runtime.PacketsData = 100, 200
	a.ErrorCount, b.ErrorCount = 1, 2
	a.Transport = &TransportSnapshot{DatagramsIn: 5}
	b.Transport = &TransportSnapshot{DatagramsIn: 6}
	a.BufferPool = PoolSnapshot{Hits: 50, Puts: 50}
	b.BufferPool = PoolSnapshot{Hits: 50, Puts: 50} // same global pool, seen twice

	m := MergeMetricsSnapshots(a, b)
	if m.Engine.Delivered != 42 {
		t.Fatalf("Delivered = %d, want 42", m.Engine.Delivered)
	}
	if m.Engine.AccelWindow != 7 {
		t.Fatalf("AccelWindow = %d, want max 7", m.Engine.AccelWindow)
	}
	if m.Runtime.PacketsData != 300 || m.ErrorCount != 3 {
		t.Fatalf("runtime/errors: %d, %d", m.Runtime.PacketsData, m.ErrorCount)
	}
	if m.Transport == nil || m.Transport.DatagramsIn != 11 {
		t.Fatalf("transport: %+v", m.Transport)
	}
	if m.BufferPool.Hits != 50 {
		t.Fatalf("BufferPool.Hits = %d: the global pool was summed per ring", m.BufferPool.Hits)
	}

	if out := MergeMetricsSnapshots(); out.Engine.Delivered != 0 || out.Transport != nil {
		t.Fatalf("empty merge: %+v", out)
	}
}
