package accelring

import (
	"time"

	"accelring/internal/faultplan"
	"accelring/internal/transport"
	"accelring/internal/transport/memnet"
	"accelring/internal/transport/udpnet"
)

// Transport moves protocol packets between participants: multicast for
// data, unicast for the token, received on separate channels.
type Transport = transport.Transport

// Peer is the addressing information for one participant on a UDP network.
type Peer struct {
	// Host is the peer's IP address or hostname.
	Host string
	// DataPort receives data packets when multicast emulation is in use
	// (MulticastGroup empty).
	DataPort int
	// TokenPort receives the unicast token.
	TokenPort int
}

// UDPOptions configures the real-network transport: IP-multicast for data
// messages and UDP unicast for the token, on separate sockets as in the
// paper's implementations.
type UDPOptions struct {
	// ID is this participant.
	ID ParticipantID
	// Peers maps every ring participant (including ID) to its addresses.
	Peers map[ParticipantID]Peer
	// MulticastGroup is the data multicast group, e.g. "239.192.7.4:7400".
	// Leave empty to emulate multicast with unicast fan-out (for networks
	// without IP-multicast, as Spread optionally does).
	MulticastGroup string
	// DisableBatch forces one-datagram-per-syscall send/receive paths even
	// where batched syscalls (recvmmsg/sendmmsg) are available. The batched
	// dataplane is on by default on Linux; this is the control arm for
	// benchmarks and an escape hatch.
	DisableBatch bool
}

// NewUDPTransport opens a UDP/IP-multicast transport.
func NewUDPTransport(opts UDPOptions) (Transport, error) {
	peers := make(map[ParticipantID]udpnet.Peer, len(opts.Peers))
	for id, p := range opts.Peers {
		peers[id] = udpnet.Peer{Host: p.Host, DataPort: p.DataPort, TokenPort: p.TokenPort}
	}
	return udpnet.New(udpnet.Config{
		MyID:           opts.ID,
		Peers:          peers,
		MulticastGroup: opts.MulticastGroup,
		DisableBatch:   opts.DisableBatch,
	})
}

// MemoryNetwork is an in-process network hub for tests, simulations and
// single-process demos. It supports fault injection: packet loss,
// duplication, reordering, network partitions, and declarative fault
// plans — every probabilistic decision drawn from one seeded generator.
type MemoryNetwork struct {
	hub *memnet.Hub
}

// NewMemoryNetwork creates an in-process network. The seed drives the loss
// generator, making fault injection reproducible.
func NewMemoryNetwork(seed int64) *MemoryNetwork {
	return &MemoryNetwork{hub: memnet.NewHub(seed)}
}

// Endpoint attaches a participant to the network.
func (m *MemoryNetwork) Endpoint(id ParticipantID) Transport {
	return m.hub.Join(id)
}

// SetLossRate drops each delivered packet independently with probability p.
func (m *MemoryNetwork) SetLossRate(p float64) { m.hub.SetLossRate(p) }

// SetLatency sets the per-hop delivery latency for endpoints created
// afterwards (default 100µs, a fast LAN).
func (m *MemoryNetwork) SetLatency(d time.Duration) { m.hub.SetLatency(d) }

// SetPartition assigns a participant to a partition group; traffic flows
// only within a group. All participants start in group 0.
func (m *MemoryNetwork) SetPartition(id ParticipantID, group int) {
	m.hub.SetPartition(id, group)
}

// Heal reconnects all partitions.
func (m *MemoryNetwork) Heal() { m.hub.Heal() }

// SetDupRate delivers each packet twice independently with probability p.
func (m *MemoryNetwork) SetDupRate(p float64) { m.hub.SetDupRate(p) }

// SetReorder delays each packet independently with probability p by extra,
// letting later packets overtake it.
func (m *MemoryNetwork) SetReorder(p float64, extra time.Duration) {
	m.hub.SetReorder(p, extra)
}

// ScheduleHeal arranges for Heal to run after the given duration.
func (m *MemoryNetwork) ScheduleHeal(after time.Duration) { m.hub.ScheduleHeal(after) }

// ApplyFaults evaluates a declarative fault plan on every subsequent
// packet; crash and restart events in the plan are ignored. A nil plan
// clears it.
func (m *MemoryNetwork) ApplyFaults(plan *faultplan.Plan) { m.hub.ApplyFaults(plan) }
