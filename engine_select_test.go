package accelring

import (
	"fmt"
	"testing"
	"time"
)

// startEngineCluster boots n nodes of the given engine over one in-memory
// network with a static ring.
func startEngineCluster(t *testing.T, net *MemoryNetwork, n int, engine EngineKind) []*Node {
	t.Helper()
	members := make([]ParticipantID, 0, n)
	for i := 1; i <= n; i++ {
		members = append(members, ParticipantID(i))
	}
	nodes := make([]*Node, 0, n)
	for _, id := range members {
		node, err := Start(Options{
			ID:                 id,
			Transport:          net.Endpoint(id),
			Members:            members,
			Engine:             engine,
			TokenLossTimeout:   200 * time.Millisecond,
			TokenRetransPeriod: 40 * time.Millisecond,
			JoinPeriod:         20 * time.Millisecond,
			ConsensusTimeout:   100 * time.Millisecond,
			CommitTimeout:      100 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("Start(%d): %v", id, err)
		}
		nodes = append(nodes, node)
	}
	t.Cleanup(func() {
		for _, node := range nodes {
			node.Close()
		}
	})
	return nodes
}

func TestParseEngine(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want EngineKind
		err  bool
	}{
		{"", EngineAccelRing, false},
		{"accelring", EngineAccelRing, false},
		{"ringpaxos", EngineRingPaxos, false},
		{"paxos", "", true},
		{"AccelRing", "", true},
	} {
		got, err := ParseEngine(tc.in)
		if tc.err != (err != nil) || got != tc.want {
			t.Errorf("ParseEngine(%q) = %q, %v; want %q, err=%v", tc.in, got, err, tc.want, tc.err)
		}
	}
}

func TestRingPaxosRequiresStaticMembers(t *testing.T) {
	net := NewMemoryNetwork(1)
	if _, err := Start(Options{
		ID:        1,
		Transport: net.Endpoint(1),
		Engine:    EngineRingPaxos,
	}); err == nil {
		t.Fatal("Start with ringpaxos and no Members should fail")
	}
	if _, err := Start(Options{
		ID:        1,
		Transport: net.Endpoint(1),
		Engine:    "totem",
		Members:   []ParticipantID{1},
	}); err == nil {
		t.Fatal("Start with an unknown engine should fail")
	}
}

// TestRingPaxosClusterTotalOrder runs the Ring Paxos engine through the
// full production runtime — protocol goroutine, timers, memnet transport,
// events channel — and checks that every node observes the identical
// total order.
func TestRingPaxosClusterTotalOrder(t *testing.T) {
	net := NewMemoryNetwork(1)
	nodes := startEngineCluster(t, net, 3, EngineRingPaxos)

	const perNode = 40
	for i := 0; i < perNode; i++ {
		for _, node := range nodes {
			if err := node.Submit([]byte(fmt.Sprintf("%s-%d", node.ID(), i)), Agreed); err != nil {
				t.Fatalf("Submit: %v", err)
			}
		}
	}
	want := perNode * len(nodes)
	var streams [][]Message
	for _, node := range nodes {
		msgs, cfgs := collect(t, node, want, 10*time.Second)
		if len(cfgs) == 0 {
			t.Fatalf("node %s got no configuration event", node.ID())
		}
		streams = append(streams, msgs)
	}
	for i := 1; i < len(streams); i++ {
		for k := range streams[0] {
			if string(streams[i][k].Payload) != string(streams[0][k].Payload) {
				t.Fatalf("order differs at %d: %q vs %q", k,
					streams[i][k].Payload, streams[0][k].Payload)
			}
		}
	}

	if got := nodes[0].Engine(); got != EngineRingPaxos {
		t.Fatalf("Engine() = %q, want %q", got, EngineRingPaxos)
	}
	px, err := nodes[0].PaxosStats()
	if err != nil {
		t.Fatalf("PaxosStats: %v", err)
	}
	if px == nil || px.Delivered == 0 {
		t.Fatalf("PaxosStats = %+v, want non-nil with deliveries", px)
	}
	var decides uint64
	for _, node := range nodes {
		p, err := node.PaxosStats()
		if err != nil {
			t.Fatal(err)
		}
		decides += p.QuorumDecides
	}
	if decides == 0 {
		t.Fatal("no node recorded a quorum decide")
	}
	snap, err := nodes[0].Metrics()
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if snap.EngineName != string(EngineRingPaxos) || snap.Paxos == nil {
		t.Fatalf("Metrics engine section = %q/%v, want labeled paxos stats", snap.EngineName, snap.Paxos)
	}
}

// TestAccelRingReportsNoPaxosStats pins the accelring side of the stats
// contract: no paxos section, engine labeled.
func TestAccelRingReportsNoPaxosStats(t *testing.T) {
	net := NewMemoryNetwork(1)
	nodes := startEngineCluster(t, net, 2, EngineAccelRing)
	if got := nodes[0].Engine(); got != EngineAccelRing {
		t.Fatalf("Engine() = %q, want %q", got, EngineAccelRing)
	}
	px, err := nodes[0].PaxosStats()
	if err != nil {
		t.Fatal(err)
	}
	if px != nil {
		t.Fatalf("PaxosStats = %+v, want nil for accelring", px)
	}
	snap, err := nodes[0].Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if snap.EngineName != string(EngineAccelRing) || snap.Paxos != nil {
		t.Fatalf("Metrics engine section = %q/%v", snap.EngineName, snap.Paxos)
	}
}
