package accelring

import (
	"fmt"
	"testing"
	"time"
)

// startCluster boots n nodes over one in-memory network with a static ring.
func startCluster(t *testing.T, net *MemoryNetwork, n int, proto Protocol) []*Node {
	t.Helper()
	members := make([]ParticipantID, 0, n)
	for i := 1; i <= n; i++ {
		members = append(members, ParticipantID(i))
	}
	nodes := make([]*Node, 0, n)
	for _, id := range members {
		node, err := Start(Options{
			ID:                 id,
			Transport:          net.Endpoint(id),
			Members:            members,
			Protocol:           proto,
			TokenLossTimeout:   200 * time.Millisecond,
			TokenRetransPeriod: 40 * time.Millisecond,
			JoinPeriod:         20 * time.Millisecond,
			ConsensusTimeout:   100 * time.Millisecond,
			CommitTimeout:      100 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("Start(%d): %v", id, err)
		}
		nodes = append(nodes, node)
	}
	t.Cleanup(func() {
		for _, node := range nodes {
			node.Close()
		}
	})
	return nodes
}

// collect drains events from a node until want messages arrived or the
// deadline passed, returning messages and config changes separately.
func collect(t *testing.T, node *Node, want int, deadline time.Duration) ([]Message, []ConfigChange) {
	t.Helper()
	var msgs []Message
	var cfgs []ConfigChange
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	for len(msgs) < want {
		select {
		case ev, ok := <-node.Events():
			if !ok {
				t.Fatalf("node %s: events channel closed after %d/%d messages", node.ID(), len(msgs), want)
			}
			switch e := ev.(type) {
			case Message:
				msgs = append(msgs, e)
			case ConfigChange:
				cfgs = append(cfgs, e)
			}
		case <-timer.C:
			t.Fatalf("node %s: timed out with %d/%d messages", node.ID(), len(msgs), want)
		}
	}
	return msgs, cfgs
}

func TestLibraryClusterTotalOrder(t *testing.T) {
	for _, proto := range []Protocol{AcceleratedRing, OriginalRing} {
		t.Run(fmt.Sprint(proto), func(t *testing.T) {
			net := NewMemoryNetwork(1)
			nodes := startCluster(t, net, 3, proto)

			const perNode = 40
			for i := 0; i < perNode; i++ {
				for _, node := range nodes {
					if err := node.Submit([]byte(fmt.Sprintf("%s-%d", node.ID(), i)), Agreed); err != nil {
						t.Fatalf("Submit: %v", err)
					}
				}
			}
			want := perNode * len(nodes)
			var streams [][]Message
			for _, node := range nodes {
				msgs, cfgs := collect(t, node, want, 10*time.Second)
				if len(cfgs) == 0 {
					t.Fatalf("node %s got no configuration event", node.ID())
				}
				streams = append(streams, msgs)
			}
			for i := 1; i < len(streams); i++ {
				for k := range streams[0] {
					if string(streams[i][k].Payload) != string(streams[0][k].Payload) {
						t.Fatalf("order differs at %d: %q vs %q", k,
							streams[i][k].Payload, streams[0][k].Payload)
					}
				}
			}
		})
	}
}

func TestSafeDeliveryOverMemoryNetwork(t *testing.T) {
	net := NewMemoryNetwork(2)
	nodes := startCluster(t, net, 4, AcceleratedRing)
	for i := 0; i < 10; i++ {
		if err := nodes[0].Submit([]byte(fmt.Sprintf("safe-%d", i)), Safe); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	for _, node := range nodes {
		msgs, _ := collect(t, node, 10, 10*time.Second)
		for i, m := range msgs {
			if m.Service != Safe {
				t.Fatalf("message %d delivered with service %v", i, m.Service)
			}
			if want := fmt.Sprintf("safe-%d", i); string(m.Payload) != want {
				t.Fatalf("message %d = %q, want %q", i, m.Payload, want)
			}
		}
	}
}

func TestClusterSurvivesPacketLoss(t *testing.T) {
	net := NewMemoryNetwork(3)
	net.SetLossRate(0.05)
	nodes := startCluster(t, net, 3, AcceleratedRing)
	const perNode = 30
	for i := 0; i < perNode; i++ {
		for _, node := range nodes {
			if err := node.Submit([]byte(fmt.Sprintf("%s-%d", node.ID(), i)), Agreed); err != nil {
				t.Fatalf("Submit: %v", err)
			}
		}
	}
	for _, node := range nodes {
		msgs, _ := collect(t, node, perNode*3, 20*time.Second)
		if len(msgs) != perNode*3 {
			t.Fatalf("node %s delivered %d", node.ID(), len(msgs))
		}
	}
}

func TestDynamicMembershipFormsRing(t *testing.T) {
	net := NewMemoryNetwork(4)
	members := []ParticipantID{1, 2, 3}
	var nodes []*Node
	for _, id := range members {
		node, err := Start(Options{
			ID:               id,
			Transport:        net.Endpoint(id),
			TokenLossTimeout: 200 * time.Millisecond,
			JoinPeriod:       20 * time.Millisecond,
			ConsensusTimeout: 100 * time.Millisecond,
			CommitTimeout:    100 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, node)
		t.Cleanup(func() { node.Close() })
	}
	// Wait for a 3-member configuration at node 1, then message flow.
	deadline := time.After(15 * time.Second)
	for {
		select {
		case ev := <-nodes[0].Events():
			if cc, ok := ev.(ConfigChange); ok && !cc.Transitional && len(cc.Config.Members) == 3 {
				goto formed
			}
		case <-deadline:
			t.Fatal("3-member ring never formed")
		}
	}
formed:
	if err := nodes[1].Submit([]byte("hello"), Agreed); err != nil {
		t.Fatal(err)
	}
	msgs, _ := collect(t, nodes[0], 1, 10*time.Second)
	if string(msgs[0].Payload) != "hello" || msgs[0].Sender != 2 {
		t.Fatalf("got %q from %s", msgs[0].Payload, msgs[0].Sender)
	}
}

func TestCrashedNodeRemovedFromMembership(t *testing.T) {
	net := NewMemoryNetwork(5)
	nodes := startCluster(t, net, 3, AcceleratedRing)
	// Let the ring settle, then kill node 3.
	if err := nodes[0].Submit([]byte("warm"), Agreed); err != nil {
		t.Fatal(err)
	}
	collect(t, nodes[0], 1, 5*time.Second)
	nodes[2].Close()

	// Node 1 must install a 2-member configuration and keep delivering.
	deadline := time.After(15 * time.Second)
	for {
		select {
		case ev, ok := <-nodes[0].Events():
			if !ok {
				t.Fatal("events closed")
			}
			if cc, ok := ev.(ConfigChange); ok && !cc.Transitional && len(cc.Config.Members) == 2 {
				goto reformed
			}
		case <-deadline:
			t.Fatal("2-member ring never formed after crash")
		}
	}
reformed:
	if err := nodes[1].Submit([]byte("after"), Safe); err != nil {
		t.Fatal(err)
	}
	msgs, _ := collect(t, nodes[0], 1, 10*time.Second)
	if string(msgs[0].Payload) != "after" {
		t.Fatalf("got %q", msgs[0].Payload)
	}
}

func TestStatsAndClose(t *testing.T) {
	net := NewMemoryNetwork(6)
	nodes := startCluster(t, net, 2, AcceleratedRing)
	if err := nodes[0].Submit([]byte("x"), Agreed); err != nil {
		t.Fatal(err)
	}
	collect(t, nodes[0], 1, 5*time.Second)
	st, err := nodes[0].Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.MsgsSent == 0 || st.Delivered == 0 {
		t.Fatalf("stats not counting: %+v", st)
	}
	if err := nodes[0].Close(); err != nil {
		t.Fatal(err)
	}
	if err := nodes[0].Submit([]byte("y"), Agreed); err != ErrClosed {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	if _, err := nodes[0].Stats(); err != ErrClosed {
		t.Fatalf("Stats after Close = %v, want ErrClosed", err)
	}
}

func TestStartValidation(t *testing.T) {
	if _, err := Start(Options{ID: 1}); err == nil {
		t.Fatal("Start without transport succeeded")
	}
	net := NewMemoryNetwork(7)
	if _, err := Start(Options{ID: 0, Transport: net.Endpoint(1)}); err == nil {
		t.Fatal("Start with zero ID succeeded")
	}
	if _, err := Start(Options{ID: 1, Transport: net.Endpoint(1), Members: []ParticipantID{2, 3}}); err == nil {
		t.Fatal("Start with membership excluding self succeeded")
	}
}
