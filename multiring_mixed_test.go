package accelring

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"accelring/internal/evscheck"
	"accelring/internal/multiring"
)

// mixedTap records one node's per-ring unit streams (messages and skips,
// in ring delivery order, deep-copied) plus its merged stream. The unit
// streams are the input the merge layer is a pure function of — the
// permuted-arrival replay below re-runs them through a fresh merger.
type mixedTap struct {
	mu     sync.Mutex
	units  [][]ShardUnit
	merged []ShardMessage
}

func (c *mixedTap) onUnit(ring int, u ShardUnit) {
	cp := u
	cp.Payload = append([]byte(nil), u.Payload...)
	cp.Groups = append([]string(nil), u.Groups...)
	c.mu.Lock()
	c.units[ring] = append(c.units[ring], cp)
	c.mu.Unlock()
}

// TestMultiRingMixedEngines runs an accelring shard and a ringpaxos shard
// behind one Router: the two engines order their own shards with their
// own protocols, and the deterministic merge must still give every node
// the identical cross-shard total order — verified structurally, by the
// cross-ring conformance checker, and by replaying the recorded per-ring
// unit streams through a fresh merger under permuted arrival schedules.
func TestMultiRingMixedEngines(t *testing.T) {
	const (
		n       = 3
		rings   = 2
		perNode = 15
		seed    = 23
	)
	hubs := make([]*MemoryNetwork, rings)
	for r := range hubs {
		hubs[r] = NewMemoryNetwork(seed + int64(r))
	}
	members := make([]ParticipantID, 0, n)
	for i := 1; i <= n; i++ {
		members = append(members, ParticipantID(i))
	}
	taps := make([]*mixedTap, n)
	nodes := make([]*MultiNode, 0, n)
	for i, id := range members {
		taps[i] = &mixedTap{units: make([][]ShardUnit, rings)}
		transports := make([]Transport, rings)
		for r := range transports {
			transports[r] = hubs[r].Endpoint(id)
		}
		mn, err := StartMulti(MultiOptions{
			Node: Options{
				ID:                 id,
				Members:            members,
				TokenLossTimeout:   200 * time.Millisecond,
				TokenRetransPeriod: 40 * time.Millisecond,
				JoinPeriod:         20 * time.Millisecond,
				ConsensusTimeout:   100 * time.Millisecond,
				CommitTimeout:      100 * time.Millisecond,
			},
			RingTransports: transports,
			Engines:        []EngineKind{EngineAccelRing, EngineRingPaxos},
			SkipInterval:   time.Millisecond,
			OnUnit:         taps[i].onUnit,
		})
		if err != nil {
			t.Fatalf("StartMulti(%d): %v", id, err)
		}
		nodes = append(nodes, mn)
	}
	t.Cleanup(func() {
		for _, mn := range nodes {
			mn.Close()
		}
	})

	g0 := groupOnShard(t, 0, rings) // accelring shard
	g1 := groupOnShard(t, 1, rings) // ringpaxos shard
	for i := 0; i < perNode; i++ {
		for _, mn := range nodes {
			g := g0
			if i%2 == 1 {
				g = g1
			}
			if err := mn.Submit([]string{g}, []byte(fmt.Sprintf("%d-%d", mn.ID(), i)), Agreed); err != nil {
				t.Fatalf("Submit: %v", err)
			}
		}
	}
	// Cross-shard messages span one shard of each engine.
	for _, mn := range nodes {
		if err := mn.Submit([]string{g0, g1}, []byte(fmt.Sprintf("x-%d", mn.ID())), Agreed); err != nil {
			t.Fatalf("cross-shard Submit: %v", err)
		}
	}

	want := n*perNode + n
	streams := make([][]ShardMessage, n)
	for i, mn := range nodes {
		streams[i], _ = collectMerged(t, mn, want, 15*time.Second)
		taps[i].mu.Lock()
		taps[i].merged = streams[i]
		taps[i].mu.Unlock()
	}

	// Structural agreement: identical (key, ring, turn) sequence on every
	// node, with the single-shard messages on the shard their group hashes
	// to.
	for i := 1; i < n; i++ {
		for k := range streams[0] {
			if crossKey(streams[i][k]) != crossKey(streams[0][k]) ||
				streams[i][k].Turn != streams[0][k].Turn {
				t.Fatalf("merged order differs at %d: %s@%d vs %s@%d", k,
					crossKey(streams[i][k]), streams[i][k].Turn,
					crossKey(streams[0][k]), streams[0][k].Turn)
			}
		}
	}
	for _, m := range streams[0] {
		if m.Shards == 1 {
			if want := ShardOf(m.Groups[0], rings); m.Ring != want {
				t.Fatalf("message %s on ring %d, group %q hashes to %d",
					crossKey(m), m.Ring, m.Groups[0], want)
			}
		}
	}

	// The conformance checker's verdict: the cross-ring axioms are
	// engine-agnostic and apply to the mixed deployment unchanged.
	cl := evscheck.CrossLog{}
	for i, msgs := range streams {
		nl := cl.Node(fmt.Sprint(nodes[i].ID()))
		for _, m := range msgs {
			nl.Deliver(crossKey(m), m.Ring, m.Turn, m.Shards)
		}
	}
	if vs := evscheck.CrossCheck(cl, evscheck.CrossOptions{Converged: true}); len(vs) != 0 {
		t.Fatalf("cross-ring conformance violations: %v", vs)
	}

	// Per-ring engine labeling in the merged metrics view.
	snap, err := nodes[0].Metrics()
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if snap.Rings[0].EngineName != string(EngineAccelRing) || snap.Rings[0].Paxos != nil {
		t.Fatalf("ring 0 metrics: engine %q paxos %v, want plain accelring",
			snap.Rings[0].EngineName, snap.Rings[0].Paxos)
	}
	if snap.Rings[1].EngineName != string(EngineRingPaxos) || snap.Rings[1].Paxos == nil {
		t.Fatalf("ring 1 metrics: engine %q paxos %v, want labeled ringpaxos counters",
			snap.Rings[1].EngineName, snap.Rings[1].Paxos)
	}
	if snap.Rings[1].Paxos.Delivered == 0 {
		t.Fatal("ringpaxos shard reports no deliveries in its engine counters")
	}

	// Permuted-arrival merge determinism: the merged order must be a pure
	// function of the per-ring unit streams. Replay node 0's recorded
	// streams through a fresh merger under several arrival interleavings —
	// round-robin, ring-sequential, reverse, and seeded shuffles — and
	// require the exact observed (key, ring, turn) sequence every time.
	taps[0].mu.Lock()
	units := taps[0].units
	taps[0].mu.Unlock()
	lens := []int{len(units[0]), len(units[1])}
	for name, order := range arrivalSchedules(lens, seed, 3) {
		got := replayMerge(rings, units, order)
		if len(got) != len(streams[0]) {
			t.Fatalf("schedule %s: replay emitted %d messages, observed %d",
				name, len(got), len(streams[0]))
		}
		for k, m := range got {
			obs := streams[0][k]
			if m.Key.Sender != obs.Sender || m.Key.Seq != obs.SenderSeq ||
				m.Ring != obs.Ring || m.Turn != obs.Turn {
				t.Fatalf("schedule %s: replay diverges at %d: %d:%d@%d(ring %d) vs %s@%d(ring %d)",
					name, k, m.Key.Sender, m.Key.Seq, m.Turn, m.Ring,
					crossKey(obs), obs.Turn, obs.Ring)
			}
		}
	}
}

// replayMerge feeds the per-ring unit streams to a fresh merger in the
// given arrival interleaving and returns the emitted message units.
func replayMerge(rings int, streams [][]ShardUnit, order []int) []multiring.Merged {
	m := multiring.NewMerger(rings)
	var out []multiring.Merged
	cursor := make([]int, rings)
	for _, r := range order {
		m.Push(r, streams[r][cursor[r]])
		cursor[r]++
		for {
			d, ok := m.Next()
			if !ok {
				break
			}
			if !d.Skip {
				out = append(out, d)
			}
		}
	}
	return out
}

// arrivalSchedules builds named arrival interleavings of the given
// per-ring stream lengths; each preserves per-ring order (an interleaving
// only decides whose next unit arrives).
func arrivalSchedules(lens []int, seed int64, random int) map[string][]int {
	total := 0
	for _, n := range lens {
		total += n
	}
	rr := make([]int, 0, total)
	cursor := make([]int, len(lens))
	for len(rr) < total {
		for r, n := range lens {
			if cursor[r] < n {
				rr = append(rr, r)
				cursor[r]++
			}
		}
	}
	var seq, rev []int
	for r, n := range lens {
		for i := 0; i < n; i++ {
			seq = append(seq, r)
		}
	}
	for r := len(lens) - 1; r >= 0; r-- {
		for i := 0; i < lens[r]; i++ {
			rev = append(rev, r)
		}
	}
	out := map[string][]int{"round-robin": rr, "sequential": seq, "reverse": rev}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < random; i++ {
		s := append([]int(nil), rr...)
		rng.Shuffle(len(s), func(a, b int) { s[a], s[b] = s[b], s[a] })
		// A shuffle breaks per-ring order; rebuild it as a ring-id
		// multiset walk (the shuffle only permutes whose turn it is).
		out[fmt.Sprintf("shuffle-%d", i)] = s
	}
	return out
}
