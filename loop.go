package accelring

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"accelring/internal/core"
	"accelring/internal/metrics"
	"accelring/internal/transport"
	"accelring/internal/wire"
)

// timerSet tracks the runtime's armed timers on behalf of the engine.
//
// Expiries are recorded per kind in a pending map and the loop is woken
// through a one-slot channel, so a current-generation fire can never be
// lost: the pending entry persists until the loop consumes it, no matter
// how busy the loop is. (The earlier design pushed fires through a bounded
// channel and dropped on overflow — a burst of stale fires could then
// swallow a valid token-loss expiry and stall failure detection until some
// unrelated packet arrived.) The generation number invalidates expiries of
// timers that were re-armed or cancelled after the expiry was recorded.
type timerSet struct {
	wake chan struct{}

	mu      sync.Mutex
	gens    map[core.TimerKind]uint64
	timers  map[core.TimerKind]*time.Timer
	pending map[core.TimerKind]uint64 // kind → generation of an unconsumed fire

	stale *metrics.Counter // expiries discarded as stale (never nil)
}

func newTimerSet(stale *metrics.Counter) *timerSet {
	if stale == nil {
		stale = &metrics.Counter{}
	}
	return &timerSet{
		wake:    make(chan struct{}, 1),
		gens:    make(map[core.TimerKind]uint64),
		timers:  make(map[core.TimerKind]*time.Timer),
		pending: make(map[core.TimerKind]uint64),
		stale:   stale,
	}
}

func (ts *timerSet) set(kind core.TimerKind, after time.Duration) {
	ts.mu.Lock()
	ts.gens[kind]++
	gen := ts.gens[kind]
	if t, ok := ts.timers[kind]; ok {
		t.Stop()
	}
	if _, ok := ts.pending[kind]; ok {
		// An unconsumed fire of the previous generation is stale now.
		delete(ts.pending, kind)
		ts.stale.Inc()
	}
	ts.timers[kind] = time.AfterFunc(after, func() { ts.fire(kind, gen) })
	ts.mu.Unlock()
}

func (ts *timerSet) cancel(kind core.TimerKind) {
	ts.mu.Lock()
	ts.gens[kind]++
	if t, ok := ts.timers[kind]; ok {
		t.Stop()
		delete(ts.timers, kind)
	}
	if _, ok := ts.pending[kind]; ok {
		delete(ts.pending, kind)
		ts.stale.Inc()
	}
	ts.mu.Unlock()
}

// fire records an expiry and wakes the loop. Runs on the timer goroutine.
func (ts *timerSet) fire(kind core.TimerKind, gen uint64) {
	ts.mu.Lock()
	if ts.gens[kind] != gen {
		ts.mu.Unlock()
		ts.stale.Inc()
		return
	}
	ts.pending[kind] = gen
	ts.mu.Unlock()
	select {
	case ts.wake <- struct{}{}:
	default: // already signalled; the pending entry is what matters
	}
}

// takeOne removes and returns one still-current pending fire, validating
// freshness at consumption time (an earlier fire's HandleTimer may have
// re-armed a kind that is also pending). The lowest kind goes first so
// multi-fire draining is deterministic.
func (ts *timerSet) takeOne() (core.TimerKind, bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	for len(ts.pending) > 0 {
		kinds := make([]core.TimerKind, 0, len(ts.pending))
		for k := range ts.pending {
			kinds = append(kinds, k)
		}
		sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
		k := kinds[0]
		gen := ts.pending[k]
		delete(ts.pending, k)
		if ts.gens[k] == gen {
			return k, true
		}
		ts.stale.Inc()
	}
	return 0, false
}

// pendingFires counts expiries recorded but not yet consumed by the loop
// — work the loop owes. The watchdog reads it from outside the protocol
// goroutine.
func (ts *timerSet) pendingFires() int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.pending)
}

func (ts *timerSet) stopAll() {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	for _, t := range ts.timers {
		t.Stop()
	}
}

// loop is the single protocol goroutine: it owns the engine, reads packets
// honoring the token/data priority policy, executes engine actions, and
// serves submissions and stats requests.
func (n *Node) loop(eng core.OrderingEngine, initial []core.Action) {
	ts := n.timers
	// Engines with an eager submit path (Ring Paxos proposers multicast
	// the value immediately) expose Flush; the contract requires calling
	// it after every accepted submission.
	flusher, _ := eng.(core.Flusher)
	defer func() {
		ts.stopAll()
		n.tr.Close()
		close(n.events)
		close(n.done)
	}()

	n.execute(eng, ts, initial)

	dataCh := n.tr.Data()
	tokenCh := n.tr.Token()

	for {
		// Priority pass (Section III-C): while the token has high
		// priority, prefer the token socket; otherwise prefer data.
		if eng.TokenHasPriority() {
			select {
			case pkt, ok := <-tokenCh:
				if !ok {
					return
				}
				n.handlePacket(eng, ts, pkt)
				continue
			default:
			}
		} else {
			select {
			case pkt, ok := <-dataCh:
				if !ok {
					return
				}
				n.handlePacket(eng, ts, pkt)
				continue
			default:
			}
		}

		select {
		case pkt, ok := <-dataCh:
			if !ok {
				return
			}
			n.handlePacket(eng, ts, pkt)
		case pkt, ok := <-tokenCh:
			if !ok {
				return
			}
			n.handlePacket(eng, ts, pkt)
		case <-ts.wake:
			for {
				kind, ok := ts.takeOne()
				if !ok {
					break
				}
				n.nm.timerFires.Inc()
				n.execute(eng, ts, eng.HandleTimer(kind))
			}
		case req := <-n.submitCh:
			err := eng.Submit(req.payload, req.service)
			if err != nil {
				n.nm.submitErrors.Inc()
			} else {
				n.nm.submits.Inc()
			}
			req.errCh <- err
			if err == nil && flusher != nil {
				n.execute(eng, ts, flusher.Flush())
			}
		case ch := <-n.statsCh:
			ch <- statsReplyFor(eng)
		case <-n.stopCh:
			return
		}
	}
}

// handlePacket decodes one packet and feeds it to the engine. The packet
// buffer is returned to the shared pool on exit — the built-in transports
// hand the loop pooled buffers, and the decode paths below never let the
// engine retain a slice of pkt (DecodeData detaches the payload; the token
// decode target's RTR never aliases pkt; join/commit decoders copy their
// sets) — so recycling here is safe and closes the Get-per-receive /
// Put-per-dispatch cycle that keeps the hot path allocation-free.
func (n *Node) handlePacket(eng core.OrderingEngine, ts *timerSet, pkt []byte) {
	defer transport.Buffers.Put(pkt)
	kind, err := wire.PeekKind(pkt)
	if err != nil {
		n.nm.decodeFailures.Inc()
		n.noteErr(fmt.Errorf("accelring: bad packet: %w", err))
		return
	}
	var actions []core.Action
	switch kind {
	case wire.KindData:
		m, err := wire.DecodeData(pkt)
		if err != nil {
			n.nm.decodeFailures.Inc()
			n.noteErr(err)
			return
		}
		n.nm.pktData.Inc()
		actions = eng.HandleData(m)
	case wire.KindToken:
		// Decode into the node's reused token, restoring the RTR scratch
		// backing first: the engine swaps tok.RTR for its own slice during
		// handling, and without the restore the scratch's capacity would be
		// lost after one round.
		t := &n.decTok
		t.RTR = n.rtrScratch
		if err := wire.DecodeTokenInto(t, pkt); err != nil {
			n.rtrScratch = t.RTR
			n.nm.decodeFailures.Inc()
			n.noteErr(err)
			return
		}
		n.rtrScratch = t.RTR
		n.nm.pktToken.Inc()
		// Token rotation time is the interval between consecutive
		// accepted tokens (duplicates filtered by the engine do not
		// count); token handle time is the full cost of processing one,
		// decode through action execution.
		start := time.Now()
		before := eng.Stats().TokensProcessed
		actions = eng.HandleToken(t)
		if eng.Stats().TokensProcessed != before {
			if !n.lastTokenAt.IsZero() {
				n.nm.tokenRotation.Observe(start.Sub(n.lastTokenAt))
			}
			n.lastTokenAt = start
			n.execute(eng, ts, actions)
			n.nm.tokenHandle.Observe(time.Since(start))
			return
		}
	case wire.KindJoin:
		j, err := wire.DecodeJoin(pkt)
		if err != nil {
			n.nm.decodeFailures.Inc()
			n.noteErr(err)
			return
		}
		n.nm.pktJoin.Inc()
		actions = eng.HandleJoin(j)
	case wire.KindCommit:
		c, err := wire.DecodeCommit(pkt)
		if err != nil {
			n.nm.decodeFailures.Inc()
			n.noteErr(err)
			return
		}
		n.nm.pktCommit.Inc()
		actions = eng.HandleCommit(c)
	}
	n.execute(eng, ts, actions)
}

// execute carries out engine actions in order. All four send paths encode
// into the node's reused scratch buffer: the Transport contract says sends
// borrow pkt only for the duration of the call, so the buffer is free again
// by the time the next action encodes.
//
// Runs of two or more consecutive SendData actions are flushed through the
// transport's batched multicast path when it offers one. The engine emits
// exactly such runs at token hand-off — the pre-token retransmission+window
// run, and the post-token accelerated flush of up to AcceleratedWindow
// frames that overlaps with the successor's round — so batching here turns
// the protocol's characteristic bursts into single sendmmsg calls without
// changing action semantics or ordering.
func (n *Node) execute(eng core.OrderingEngine, ts *timerSet, actions []core.Action) {
	for i := 0; i < len(actions); i++ {
		if n.batcher != nil {
			if _, ok := actions[i].(core.SendData); ok {
				j := i + 1
				for j < len(actions) {
					if _, ok := actions[j].(core.SendData); !ok {
						break
					}
					j++
				}
				if j-i >= 2 {
					n.sendBurst(actions[i:j])
					i = j - 1
					continue
				}
			}
		}
		switch act := actions[i].(type) {
		case core.SendData:
			pkt, err := wire.AppendData(n.encBuf[:0], act.Msg)
			if err != nil {
				n.nm.encodeFailures.Inc()
				n.noteErr(err)
				continue
			}
			n.encBuf = pkt
			if err := n.tr.Multicast(pkt); err != nil {
				n.nm.sendFailures.Inc()
				n.noteErr(err)
			}
		case core.SendToken:
			pkt, err := wire.AppendToken(n.encBuf[:0], act.Token)
			if err != nil {
				n.nm.encodeFailures.Inc()
				n.noteErr(err)
				continue
			}
			n.encBuf = pkt
			if err := n.tr.Unicast(act.To, pkt); err != nil {
				n.nm.sendFailures.Inc()
				n.noteErr(err)
			}
		case core.SendJoin:
			pkt, err := wire.AppendJoin(n.encBuf[:0], act.Join)
			if err != nil {
				n.nm.encodeFailures.Inc()
				n.noteErr(err)
				continue
			}
			n.encBuf = pkt
			if err := n.tr.Multicast(pkt); err != nil {
				n.nm.sendFailures.Inc()
				n.noteErr(err)
			}
		case core.SendCommit:
			pkt, err := wire.AppendCommit(n.encBuf[:0], act.Commit)
			if err != nil {
				n.nm.encodeFailures.Inc()
				n.noteErr(err)
				continue
			}
			n.encBuf = pkt
			if err := n.tr.Unicast(act.To, pkt); err != nil {
				n.nm.sendFailures.Inc()
				n.noteErr(err)
			}
		case core.Deliver:
			n.deliver(Message{
				Sender:  act.Msg.PID,
				Service: act.Msg.Service,
				Payload: act.Msg.Payload,
			})
		case core.DeliverConfig:
			n.deliver(ConfigChange{Config: act.Config, Transitional: act.Transitional})
		case core.SetTimer:
			ts.set(act.Kind, act.After)
		case core.CancelTimer:
			n.nm.timerCancels.Inc()
			ts.cancel(act.Kind)
		}
	}
}

// sendBurst encodes a run of SendData actions into pooled buffers and
// flushes them with one MulticastBatch call. The single-packet encode
// scratch cannot back a whole burst (every packet must stay valid until
// the batch call returns), so each frame gets its own pooled buffer,
// borrowed for the duration of the call and recycled immediately after.
// Encode failures skip that frame; the rest of the burst still goes out.
func (n *Node) sendBurst(run []core.Action) {
	n.burstBufs = transport.Buffers.GetBatch(n.burstBufs[:0], len(run))
	pkts := n.burstPkts[:0]
	for k, a := range run {
		act := a.(core.SendData)
		pkt, err := wire.AppendData(n.burstBufs[k][:0], act.Msg)
		if err != nil {
			n.nm.encodeFailures.Inc()
			n.noteErr(err)
			continue
		}
		n.burstBufs[k] = pkt[:cap(pkt)]
		pkts = append(pkts, pkt)
	}
	if len(pkts) > 0 {
		if err := n.batcher.MulticastBatch(pkts); err != nil {
			n.nm.sendFailures.Inc()
			n.noteErr(err)
		}
		n.nm.sendBursts.Inc()
		n.nm.sendBurstMsgs.Add(uint64(len(pkts)))
	}
	transport.Buffers.PutBatch(n.burstBufs)
	n.burstBufs = n.burstBufs[:0]
	for k := range pkts {
		pkts[k] = nil
	}
	n.burstPkts = pkts[:0]
}

// deliver blocks until the application accepts the event (or the node is
// stopped): ordered events must never be dropped.
func (n *Node) deliver(ev Event) {
	select {
	case n.events <- ev:
		n.nm.eventsDelivered.Inc()
	case <-n.stopCh:
	}
}

// errRingCap bounds the recent-error ring. A burst of decode or send
// failures stays visible (count plus the most recent instances) instead of
// collapsing into one overwritten slot.
const errRingCap = 16

func (n *Node) noteErr(err error) {
	n.nm.errors.Inc()
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.errs) < errRingCap {
		n.errs = append(n.errs, err)
		return
	}
	n.errs[n.errHead] = err
	n.errHead = (n.errHead + 1) % errRingCap
}
