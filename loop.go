package accelring

import (
	"fmt"
	"time"

	"accelring/internal/core"
	"accelring/internal/wire"
)

// timerFire carries a timer expiry into the protocol loop. The generation
// number invalidates expiries of timers that were re-armed or cancelled
// after the expiry was already in flight.
type timerFire struct {
	kind core.TimerKind
	gen  uint64
}

// timerSet tracks the runtime's armed timers on behalf of the engine.
type timerSet struct {
	fired  chan timerFire
	gens   map[core.TimerKind]uint64
	timers map[core.TimerKind]*time.Timer
}

func newTimerSet() *timerSet {
	return &timerSet{
		fired:  make(chan timerFire, 16),
		gens:   make(map[core.TimerKind]uint64),
		timers: make(map[core.TimerKind]*time.Timer),
	}
}

func (ts *timerSet) set(kind core.TimerKind, after time.Duration) {
	ts.gens[kind]++
	gen := ts.gens[kind]
	if t, ok := ts.timers[kind]; ok {
		t.Stop()
	}
	ts.timers[kind] = time.AfterFunc(after, func() {
		select {
		case ts.fired <- timerFire{kind: kind, gen: gen}:
		default:
			// The loop is saturated with timer events; this expiry is
			// stale by the time it would be read anyway.
		}
	})
}

func (ts *timerSet) cancel(kind core.TimerKind) {
	ts.gens[kind]++
	if t, ok := ts.timers[kind]; ok {
		t.Stop()
		delete(ts.timers, kind)
	}
}

// current reports whether a fire event is still valid.
func (ts *timerSet) current(f timerFire) bool { return ts.gens[f.kind] == f.gen }

func (ts *timerSet) stopAll() {
	for _, t := range ts.timers {
		t.Stop()
	}
}

// loop is the single protocol goroutine: it owns the engine, reads packets
// honoring the token/data priority policy, executes engine actions, and
// serves submissions and stats requests.
func (n *Node) loop(eng *core.Engine, initial []core.Action) {
	ts := newTimerSet()
	defer func() {
		ts.stopAll()
		n.tr.Close()
		close(n.events)
		close(n.done)
	}()

	n.execute(eng, ts, initial)

	dataCh := n.tr.Data()
	tokenCh := n.tr.Token()

	for {
		// Priority pass (Section III-C): while the token has high
		// priority, prefer the token socket; otherwise prefer data.
		if eng.TokenHasPriority() {
			select {
			case pkt, ok := <-tokenCh:
				if !ok {
					return
				}
				n.handlePacket(eng, ts, pkt)
				continue
			default:
			}
		} else {
			select {
			case pkt, ok := <-dataCh:
				if !ok {
					return
				}
				n.handlePacket(eng, ts, pkt)
				continue
			default:
			}
		}

		select {
		case pkt, ok := <-dataCh:
			if !ok {
				return
			}
			n.handlePacket(eng, ts, pkt)
		case pkt, ok := <-tokenCh:
			if !ok {
				return
			}
			n.handlePacket(eng, ts, pkt)
		case f := <-ts.fired:
			if ts.current(f) {
				n.execute(eng, ts, eng.HandleTimer(f.kind))
			}
		case req := <-n.submitCh:
			req.errCh <- eng.Submit(req.payload, req.service)
		case ch := <-n.statsCh:
			ch <- eng.Stats()
		case <-n.stopCh:
			return
		}
	}
}

// handlePacket decodes one packet and feeds it to the engine.
func (n *Node) handlePacket(eng *core.Engine, ts *timerSet, pkt []byte) {
	kind, err := wire.PeekKind(pkt)
	if err != nil {
		n.noteErr(fmt.Errorf("accelring: bad packet: %w", err))
		return
	}
	var actions []core.Action
	switch kind {
	case wire.KindData:
		m, err := wire.DecodeData(pkt)
		if err != nil {
			n.noteErr(err)
			return
		}
		actions = eng.HandleData(m)
	case wire.KindToken:
		t, err := wire.DecodeToken(pkt)
		if err != nil {
			n.noteErr(err)
			return
		}
		actions = eng.HandleToken(t)
	case wire.KindJoin:
		j, err := wire.DecodeJoin(pkt)
		if err != nil {
			n.noteErr(err)
			return
		}
		actions = eng.HandleJoin(j)
	case wire.KindCommit:
		c, err := wire.DecodeCommit(pkt)
		if err != nil {
			n.noteErr(err)
			return
		}
		actions = eng.HandleCommit(c)
	}
	n.execute(eng, ts, actions)
}

// execute carries out engine actions in order.
func (n *Node) execute(eng *core.Engine, ts *timerSet, actions []core.Action) {
	for _, a := range actions {
		switch act := a.(type) {
		case core.SendData:
			pkt, err := act.Msg.Encode()
			if err != nil {
				n.noteErr(err)
				continue
			}
			if err := n.tr.Multicast(pkt); err != nil {
				n.noteErr(err)
			}
		case core.SendToken:
			pkt, err := act.Token.Encode()
			if err != nil {
				n.noteErr(err)
				continue
			}
			if err := n.tr.Unicast(act.To, pkt); err != nil {
				n.noteErr(err)
			}
		case core.SendJoin:
			pkt, err := act.Join.Encode()
			if err != nil {
				n.noteErr(err)
				continue
			}
			if err := n.tr.Multicast(pkt); err != nil {
				n.noteErr(err)
			}
		case core.SendCommit:
			pkt, err := act.Commit.Encode()
			if err != nil {
				n.noteErr(err)
				continue
			}
			if err := n.tr.Unicast(act.To, pkt); err != nil {
				n.noteErr(err)
			}
		case core.Deliver:
			n.deliver(Message{
				Sender:  act.Msg.PID,
				Service: act.Msg.Service,
				Payload: act.Msg.Payload,
			})
		case core.DeliverConfig:
			n.deliver(ConfigChange{Config: act.Config, Transitional: act.Transitional})
		case core.SetTimer:
			ts.set(act.Kind, act.After)
		case core.CancelTimer:
			ts.cancel(act.Kind)
		}
	}
}

// deliver blocks until the application accepts the event (or the node is
// stopped): ordered events must never be dropped.
func (n *Node) deliver(ev Event) {
	select {
	case n.events <- ev:
	case <-n.stopCh:
	}
}

func (n *Node) noteErr(err error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.lastErr = err
}
