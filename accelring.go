// Package accelring is a Go implementation of the Accelerated Ring
// protocol (Babay & Amir, "Fast Total Ordering for Modern Data Centers",
// ICDCS 2016): reliable, totally ordered multicast with Extended Virtual
// Synchrony semantics over a token-passing logical ring, in which a
// participant may keep multicasting for a bounded window after forwarding
// the token — overlapping its sending with its successor's and cutting
// token rotation time, which simultaneously raises throughput and lowers
// latency on modern data-center networks.
//
// The package offers the library-based deployment style evaluated in the
// paper: the application embeds a Node directly. The daemon-based style
// (Spread-like, with IPC clients and named groups) lives in cmd/ringd and
// internal/daemon.
//
// A Node is created over a Transport (UDP/IP-multicast for real networks,
// an in-memory hub for tests and single-process demos), submits messages
// with Submit, and receives totally ordered deliveries and membership
// events on Events.
package accelring

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"accelring/internal/core"
	"accelring/internal/flowctl"
	"accelring/internal/ringpaxos"
	"accelring/internal/transport"
	"accelring/internal/wire"
)

// Public aliases for the identifier and service types, so applications
// never import internal packages.
type (
	// ParticipantID uniquely identifies a ring participant.
	ParticipantID = wire.ParticipantID
	// Seq is a message sequence number: the position in the total order.
	Seq = wire.Seq
	// Service selects a delivery guarantee.
	Service = wire.Service
	// Configuration is a membership view.
	Configuration = core.Configuration
	// Protocol selects the ordering protocol variant.
	Protocol = core.Protocol
	// Stats exposes the engine's counters.
	Stats = core.Stats
	// Tracer receives protocol-level events (state transitions, token
	// forwards, configuration installs) synchronously on the protocol
	// goroutine; implementations must be fast and non-blocking.
	Tracer = core.Tracer
	// State is the engine's membership state, as reported to tracers.
	State = core.State
)

// Delivery services.
const (
	// FIFO delivery: per-sender order (provided via Agreed).
	FIFO = wire.ServiceFIFO
	// Causal delivery: causality-respecting order (provided via Agreed).
	Causal = wire.ServiceCausal
	// Agreed delivery: a single total order across all participants.
	Agreed = wire.ServiceAgreed
	// Safe delivery: total order plus stability — delivered only once
	// every member of the configuration has received the message.
	Safe = wire.ServiceSafe
)

// Protocol variants.
const (
	// OriginalRing is the Totem-style baseline protocol.
	OriginalRing = core.ProtocolOriginalRing
	// AcceleratedRing is the paper's contribution and the default.
	AcceleratedRing = core.ProtocolAcceleratedRing
)

// EngineKind selects the ordering engine a node runs. Both engines
// satisfy the same engine⇄runtime contract and run over any Transport
// unchanged; they differ in how the total order is agreed on.
type EngineKind string

const (
	// EngineAccelRing is the Accelerated Ring engine (the paper's
	// protocol): token-circulated sequencing with Extended Virtual
	// Synchrony membership. The default; supports dynamic discovery.
	EngineAccelRing EngineKind = "accelring"
	// EngineRingPaxos is the Ring Paxos engine: majority-quorum
	// consensus with a ring-circulated Phase 2, coordinator election by
	// view number, and in-order learner delivery. Requires a static
	// member list (Options.Members) — the member set is the acceptor
	// set. It provides total order and per-sender FIFO but not the full
	// EVS axioms (see docs/PROTOCOL.md).
	EngineRingPaxos EngineKind = "ringpaxos"
)

// ParseEngine maps a command-line spelling to an EngineKind. The empty
// string selects the default (EngineAccelRing).
func ParseEngine(s string) (EngineKind, error) {
	switch EngineKind(s) {
	case "", EngineAccelRing:
		return EngineAccelRing, nil
	case EngineRingPaxos:
		return EngineRingPaxos, nil
	default:
		return "", fmt.Errorf("accelring: unknown engine %q (want %q or %q)",
			s, EngineAccelRing, EngineRingPaxos)
	}
}

// PaxosStats re-exports the Ring Paxos engine's counters so applications
// never import internal packages.
type PaxosStats = ringpaxos.Stats

// Event is a totally ordered occurrence delivered to the application:
// either a Message or a ConfigChange.
type Event interface {
	isEvent()
}

// Message is an ordered application message.
type Message struct {
	// Sender is the participant that initiated the message.
	Sender ParticipantID
	// Service is the delivery guarantee it was sent with.
	Service Service
	// Payload is the application data.
	Payload []byte
}

// ConfigChange reports a membership change. Per Extended Virtual
// Synchrony, a transitional configuration precedes messages that could not
// meet the guarantees of the old configuration.
type ConfigChange struct {
	Config       Configuration
	Transitional bool
}

func (Message) isEvent()      {}
func (ConfigChange) isEvent() {}

// Windows carries the protocol's flow control parameters. The zero value
// selects the defaults.
type Windows struct {
	// Personal is the maximum number of new messages one participant may
	// initiate per token round.
	Personal int
	// Global bounds the total multicasts per token round, ring-wide.
	Global int
	// Accelerated is the maximum number of messages multicast after
	// forwarding the token. Zero with the AcceleratedRing protocol means
	// the default; it is forced to zero by OriginalRing.
	Accelerated int
	// MaxSeqGap bounds how far sequencing may run ahead of stability.
	MaxSeqGap int
}

// Options configures a Node.
type Options struct {
	// ID is this participant's non-zero unique identifier.
	ID ParticipantID
	// Transport connects this node to its peers. Required.
	Transport transport.Transport
	// Members, when non-empty, installs a static ring immediately (every
	// node must be started with the identical list). When empty the node
	// discovers peers through the membership protocol.
	Members []ParticipantID
	// Protocol selects AcceleratedRing (default) or OriginalRing. It only
	// applies to the EngineAccelRing engine.
	Protocol Protocol
	// Engine selects the ordering engine: EngineAccelRing (default) or
	// EngineRingPaxos. Ring Paxos requires a non-empty Members list.
	Engine EngineKind
	// Windows tunes flow control; zero values select defaults.
	Windows Windows
	// TokenLossTimeout overrides the failure-detection timeout.
	TokenLossTimeout time.Duration
	// TokenRetransPeriod, JoinPeriod, ConsensusTimeout and CommitTimeout
	// override the remaining protocol timers (zero values select
	// defaults). Shrink them for fast failover on low-latency networks.
	TokenRetransPeriod time.Duration
	JoinPeriod         time.Duration
	ConsensusTimeout   time.Duration
	CommitTimeout      time.Duration
	// EventBuffer is the capacity of the Events channel (default 16384).
	// The application must drain Events; a full buffer blocks the
	// protocol rather than dropping ordered messages.
	EventBuffer int
	// PackThreshold enables Spread-style message packing: consecutive
	// pending same-service messages are packed into one protocol packet
	// while the container stays at or below this many bytes. Zero
	// disables packing; 1350 packs one MTU frame's worth.
	PackThreshold int
	// Tracer, when non-nil, observes protocol-level events.
	Tracer Tracer
	// WatchdogInterval enables the liveness watchdog: a sampling goroutine
	// that checks every interval whether the protocol loop made progress
	// (packets handled, timers fired, submits accepted, events delivered)
	// while work was pending, and flags a stall otherwise — catching a
	// wedged loop (e.g. blocked on an undrained Events channel) that a
	// liveness check through the loop itself would hang on. Zero disables
	// it. Stalls count in Metrics (Runtime.WatchdogStalls) and are
	// reported to OnStall.
	WatchdogInterval time.Duration
	// OnStall, when non-nil, receives a report for every stalled check.
	// Called from the watchdog goroutine; must not block on the stalled
	// loop (Submit, Stats, Metrics all round-trip it).
	OnStall func(StallReport)
	// AdaptiveWindow enables AIMD adaptation of the accelerated window
	// between 0 and the personal window, replacing hand-tuning: it halves
	// on retransmission bursts and creeps back up on clean streaks.
	AdaptiveWindow bool
}

// Node is one ring participant embedded in the application process.
type Node struct {
	id     ParticipantID
	tr     transport.Transport
	engine EngineKind
	// steadyRotation records whether the engine keeps its token rotating
	// even when idle (core.RotationObserver): true for accelring, false
	// for event-driven engines like ringpaxos. The shard watchdog picks
	// its stall heuristic from it.
	steadyRotation bool
	events         chan Event

	submitCh chan submitReq
	statsCh  chan chan statsReply
	stopCh   chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	// nm is the runtime instrumentation (atomic; shared between the
	// protocol goroutine and Metrics callers). lastTokenAt is owned by the
	// protocol goroutine.
	nm          *nodeMetrics
	lastTokenAt time.Time

	// timers is the runtime timer set. It lives on the Node (not the loop)
	// so the watchdog can count pending unconsumed fires without touching
	// the possibly-wedged protocol goroutine.
	timers *timerSet

	// Protocol-goroutine-owned scratch state keeping the steady-state hot
	// path allocation-free: encBuf is the reused encode buffer for every
	// outgoing packet (the transports borrow it only for the duration of a
	// send), decTok is the reused token decode target (the engine never
	// retains the pointer — it deep-copies what it keeps), and rtrScratch
	// preserves the decoded RTR backing array across rounds because the
	// engine swaps tok.RTR for its own slice while processing.
	encBuf     []byte
	decTok     wire.Token
	rtrScratch []wire.Seq

	// batcher is non-nil when the transport supports batched multicast
	// (udpnet on Linux): runs of consecutive SendData actions — the
	// engine's pre-token window run and post-token accelerated flush —
	// are encoded into pooled buffers and flushed with one MulticastBatch
	// call instead of one syscall per frame. burstBufs and burstPkts are
	// the protocol-goroutine-owned scratch vectors backing a burst in
	// flight; their headers are retained across bursts so the steady state
	// allocates nothing.
	batcher   transport.BatchSender
	burstBufs [][]byte
	burstPkts [][]byte

	mu      sync.Mutex
	errs    []error // ring of recent protocol-loop errors
	errHead int     // index of the oldest entry once the ring is full
	// fanoutSrc, when attached, contributes a client fan-out tier
	// snapshot to Metrics (daemon deployments attach their tier here so
	// one snapshot carries the whole serving path).
	fanoutSrc FanoutSource
}

type submitReq struct {
	payload []byte
	service Service
	errCh   chan error
}

// statsReply is one answer to a stats round-trip: the shared counters
// plus, when the node runs the Ring Paxos engine, its protocol-specific
// counters.
type statsReply struct {
	stats Stats
	paxos *PaxosStats
}

// statsReplyFor snapshots the engine's counters on the protocol
// goroutine.
func statsReplyFor(eng core.OrderingEngine) statsReply {
	r := statsReply{stats: eng.Stats()}
	if pe, ok := eng.(*ringpaxos.Engine); ok {
		px := pe.PaxosStats()
		r.paxos = &px
	}
	return r
}

// Errors.
var (
	// ErrClosed is returned by operations on a closed node.
	ErrClosed = errors.New("accelring: node closed")
)

// Start creates a node and begins protocol operation.
func Start(opts Options) (*Node, error) {
	if opts.Transport == nil {
		return nil, errors.New("accelring: Options.Transport is required")
	}
	cfg := core.Config{
		MyID:               opts.ID,
		Protocol:           opts.Protocol,
		TokenLossTimeout:   opts.TokenLossTimeout,
		TokenRetransPeriod: opts.TokenRetransPeriod,
		JoinPeriod:         opts.JoinPeriod,
		ConsensusTimeout:   opts.ConsensusTimeout,
		CommitTimeout:      opts.CommitTimeout,
		PackThreshold:      opts.PackThreshold,
		Tracer:             opts.Tracer,
		AdaptiveWindow:     opts.AdaptiveWindow,
	}
	if opts.Windows != (Windows{}) {
		flow := flowctl.Default()
		if opts.Windows.Personal != 0 {
			flow.PersonalWindow = opts.Windows.Personal
		}
		if opts.Windows.Global != 0 {
			flow.GlobalWindow = opts.Windows.Global
		}
		if opts.Windows.Accelerated != 0 {
			flow.AcceleratedWindow = opts.Windows.Accelerated
		}
		if opts.Windows.MaxSeqGap != 0 {
			flow.MaxSeqGap = opts.Windows.MaxSeqGap
		}
		cfg.Flow = flow
	}
	engine, err := ParseEngine(string(opts.Engine))
	if err != nil {
		return nil, err
	}
	var eng core.OrderingEngine
	switch engine {
	case EngineRingPaxos:
		if len(opts.Members) == 0 {
			return nil, errors.New("accelring: the ringpaxos engine requires a static Options.Members list")
		}
		// Stamp the incarnation from the wall clock so a restarted
		// process never reuses its predecessor's proposer sequence space
		// (one-second resolution; see core.Config.Incarnation).
		cfg.Incarnation = uint32(time.Now().Unix())
		pe, perr := ringpaxos.New(cfg)
		if perr != nil {
			return nil, fmt.Errorf("accelring: %w", perr)
		}
		eng = pe
	default:
		ae, aerr := core.New(cfg)
		if aerr != nil {
			return nil, fmt.Errorf("accelring: %w", aerr)
		}
		eng = ae
	}
	buf := opts.EventBuffer
	if buf <= 0 {
		buf = 16384
	}
	n := &Node{
		id:       opts.ID,
		tr:       opts.Transport,
		engine:   engine,
		events:   make(chan Event, buf),
		submitCh: make(chan submitReq),
		statsCh:  make(chan chan statsReply),
		stopCh:   make(chan struct{}),
		done:     make(chan struct{}),
		nm:       newNodeMetrics(),
	}
	if bs, ok := opts.Transport.(transport.BatchSender); ok {
		n.batcher = bs
	}
	n.steadyRotation = true
	if ro, ok := eng.(core.RotationObserver); ok {
		n.steadyRotation = ro.SteadyTokenRotation()
	}
	n.timers = newTimerSet(&n.nm.timerStale)

	var initial []core.Action
	if len(opts.Members) > 0 {
		initial, err = eng.StartWithRing(opts.Members)
		if err != nil {
			return nil, fmt.Errorf("accelring: %w", err)
		}
	} else {
		initial = eng.Start()
	}

	go n.loop(eng, initial)
	if opts.WatchdogInterval > 0 {
		go n.watchdog(opts.WatchdogInterval, opts.OnStall)
	}
	return n, nil
}

// ID returns this node's participant ID.
func (n *Node) ID() ParticipantID { return n.id }

// Events returns the stream of ordered deliveries and membership changes.
// The channel is closed when the node shuts down.
func (n *Node) Events() <-chan Event { return n.events }

// errChPool recycles Submit reply channels. A reply channel is strictly
// request-scoped — the loop answers exactly once and the submitter reads
// that answer before returning — so pooling it removes one allocation per
// Submit on the steady-state send path.
var errChPool = sync.Pool{New: func() any { return make(chan error, 1) }}

// Submit queues an application message for totally ordered multicast to
// the ring (including back to this node). It blocks while the protocol
// loop is busy and fails once the engine's backlog is full.
//
// The engine retains payload until the message stabilizes, so the caller
// must not modify it after Submit returns nil.
func (n *Node) Submit(payload []byte, service Service) error {
	errCh := errChPool.Get().(chan error)
	req := submitReq{payload: payload, service: service, errCh: errCh}
	select {
	case n.submitCh <- req:
		err := <-errCh
		errChPool.Put(errCh)
		return err
	case <-n.done:
		errChPool.Put(errCh)
		return ErrClosed
	}
}

// Engine reports which ordering engine this node runs.
func (n *Node) Engine() EngineKind { return n.engine }

// Stats returns a snapshot of the protocol counters.
func (n *Node) Stats() (Stats, error) {
	r, err := n.statsSnapshot()
	return r.stats, err
}

// PaxosStats returns the Ring Paxos-specific counters, or nil when the
// node runs the Accelerated Ring engine.
func (n *Node) PaxosStats() (*PaxosStats, error) {
	r, err := n.statsSnapshot()
	return r.paxos, err
}

func (n *Node) statsSnapshot() (statsReply, error) {
	ch := make(chan statsReply, 1)
	select {
	case n.statsCh <- ch:
		return <-ch, nil
	case <-n.done:
		return statsReply{}, ErrClosed
	}
}

// Err returns the most recent transport or decode error observed by the
// protocol loop, if any. Transient UDP errors do not stop the loop; use
// RecentErrors or Metrics for a fuller picture of an error burst.
func (n *Node) Err() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.errs) == 0 {
		return nil
	}
	if len(n.errs) < errRingCap {
		return n.errs[len(n.errs)-1]
	}
	return n.errs[(n.errHead+errRingCap-1)%errRingCap]
}

// RecentErrors returns a copy of the bounded ring of recent errors the
// protocol loop observed, oldest first. The total (unbounded) error count
// is in Metrics.
func (n *Node) RecentErrors() []error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.errs) == 0 {
		return nil
	}
	out := make([]error, 0, len(n.errs))
	if len(n.errs) < errRingCap {
		return append(out, n.errs...)
	}
	out = append(out, n.errs[n.errHead:]...)
	return append(out, n.errs[:n.errHead]...)
}

// Close stops the protocol loop and releases the transport.
func (n *Node) Close() error {
	n.stopOnce.Do(func() { close(n.stopCh) })
	<-n.done
	return nil
}
