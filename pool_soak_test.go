package accelring

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"accelring/internal/faultplan"
	"accelring/internal/transport"
)

// soakPayload builds a self-describing payload: the first 8 bytes carry a
// sequence number and every remaining byte is derived from it. A pooled
// buffer that gets recycled while still referenced anywhere along the
// submit → transport → decode → deliver chain shows up as a payload whose
// filler no longer matches its header.
func soakPayload(seq uint64) []byte {
	p := make([]byte, 48)
	binary.BigEndian.PutUint64(p, seq)
	fill := byte(seq*31 + 7)
	for i := 8; i < len(p); i++ {
		p[i] = fill
	}
	return p
}

func checkSoakPayload(p []byte) bool {
	if len(p) != 48 {
		return false
	}
	fill := byte(binary.BigEndian.Uint64(p)*31 + 7)
	for i := 8; i < len(p); i++ {
		if p[i] != fill {
			return false
		}
	}
	return true
}

// TestPoolSoakRace exercises the shared buffer pool from every direction at
// once, under the race detector: a memnet ring running a generated fault
// plan, a udpnet pair on real loopback sockets, and goroutines hammering
// transport.Buffers directly. The protocol loops of all nodes Get, Put, and
// recycle buffers from the same process-wide pool throughout; the test
// fails on a data race or on any delivered payload that was corrupted by a
// premature buffer recycle.
func TestPoolSoakRace(t *testing.T) {
	const soak = 1500 * time.Millisecond

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var corrupted atomic.Int64
	var delivered atomic.Int64

	// Leg 1: a memnet ring of three nodes with link faults and partitions
	// injected from a deterministic plan, so membership churn and
	// retransmission paths recycle buffers too.
	memNet := NewMemoryNetwork(42)
	plan := faultplan.Generate(42, 3, soak/2, faultplan.ClassLink|faultplan.ClassPartition)
	memNet.ApplyFaults(&plan)
	memNodes := startCluster(t, memNet, 3, AcceleratedRing)

	// Leg 2: a udpnet pair over real loopback sockets, whose read loops pull
	// from the same pool.
	udpNodes := startUDPCluster(t, 2, "")

	drain := func(n *Node) {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case ev, ok := <-n.Events():
				if !ok {
					return
				}
				if m, isMsg := ev.(Message); isMsg {
					delivered.Add(1)
					if !checkSoakPayload(m.Payload) {
						corrupted.Add(1)
					}
				}
			}
		}
	}
	submit := func(n *Node, seed uint64) {
		defer wg.Done()
		seq := seed
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Submits fail transiently during membership changes forced by
			// the fault plan; back off briefly and keep the load coming.
			if err := n.Submit(soakPayload(seq), Agreed); err != nil {
				time.Sleep(2 * time.Millisecond)
				continue
			}
			seq += 1000003 // step coprime with the fill period, varies the pattern
		}
	}
	for i, n := range append(append([]*Node{}, memNodes...), udpNodes...) {
		wg.Add(2)
		go drain(n)
		go submit(n, uint64(i)*911)
	}

	// Leg 3: direct pool hammer, the way a third transport embedding would
	// use it, with pattern writes to surface double-ownership.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(tag byte) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				buf := transport.Buffers.Get()
				for i := 0; i < 256; i++ {
					buf[i] = tag
				}
				for i := 0; i < 256; i++ {
					if buf[i] != tag {
						corrupted.Add(1)
					}
				}
				transport.Buffers.Put(buf)
			}
		}(byte(0x10 + g))
	}

	time.Sleep(soak)
	close(stop)
	wg.Wait()

	if n := corrupted.Load(); n != 0 {
		t.Fatalf("%d corrupted payloads delivered: pooled buffer recycled while still referenced", n)
	}
	if delivered.Load() == 0 {
		t.Fatal("soak delivered no messages; the ring never made progress")
	}
	snap := transport.Buffers.Snapshot()
	if snap.Puts == 0 || snap.Hits == 0 {
		t.Fatalf("pool saw no recycling during soak: %+v", snap)
	}
}
