package accelring

import (
	"fmt"
	"net"
	"testing"
	"time"
)

// freePorts grabs n distinct free UDP ports on localhost.
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	ports := make([]int, 0, n)
	conns := make([]*net.UDPConn, 0, n)
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	for len(ports) < n {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatalf("allocating port: %v", err)
		}
		conns = append(conns, c)
		ports = append(ports, c.LocalAddr().(*net.UDPAddr).Port)
	}
	return ports
}

// startUDPCluster boots a static ring over real UDP sockets on loopback,
// using unicast emulation of multicast (reliable inside containers).
func startUDPCluster(t *testing.T, n int, multicastGroup string) []*Node {
	t.Helper()
	ports := freePorts(t, 2*n)
	peers := make(map[ParticipantID]Peer, n)
	members := make([]ParticipantID, 0, n)
	for i := 1; i <= n; i++ {
		id := ParticipantID(i)
		members = append(members, id)
		peers[id] = Peer{Host: "127.0.0.1", DataPort: ports[2*(i-1)], TokenPort: ports[2*(i-1)+1]}
	}
	nodes := make([]*Node, 0, n)
	for _, id := range members {
		tr, err := NewUDPTransport(UDPOptions{ID: id, Peers: peers, MulticastGroup: multicastGroup})
		if err != nil {
			t.Fatalf("NewUDPTransport(%s): %v", id, err)
		}
		node, err := Start(Options{
			ID:                 id,
			Transport:          tr,
			Members:            members,
			TokenLossTimeout:   300 * time.Millisecond,
			TokenRetransPeriod: 60 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("Start(%s): %v", id, err)
		}
		nodes = append(nodes, node)
	}
	t.Cleanup(func() {
		for _, node := range nodes {
			node.Close()
		}
	})
	return nodes
}

func TestUDPUnicastEmulationCluster(t *testing.T) {
	nodes := startUDPCluster(t, 3, "")
	const perNode = 20
	for i := 0; i < perNode; i++ {
		for _, node := range nodes {
			if err := node.Submit([]byte(fmt.Sprintf("%s-%d", node.ID(), i)), Agreed); err != nil {
				t.Fatalf("Submit: %v", err)
			}
		}
	}
	var streams [][]Message
	for _, node := range nodes {
		msgs, _ := collect(t, node, perNode*3, 20*time.Second)
		streams = append(streams, msgs)
	}
	for i := 1; i < len(streams); i++ {
		for k := range streams[0] {
			if string(streams[i][k].Payload) != string(streams[0][k].Payload) {
				t.Fatalf("UDP cluster order differs at %d", k)
			}
		}
	}
}

func TestUDPSafeDelivery(t *testing.T) {
	nodes := startUDPCluster(t, 2, "")
	if err := nodes[1].Submit([]byte("stable"), Safe); err != nil {
		t.Fatal(err)
	}
	for _, node := range nodes {
		msgs, _ := collect(t, node, 1, 10*time.Second)
		if string(msgs[0].Payload) != "stable" || msgs[0].Service != Safe {
			t.Fatalf("node %s got %+v", node.ID(), msgs[0])
		}
	}
}

// TestUDPRealMulticast exercises the IP-multicast path. Multicast may be
// unavailable in containerized CI networks, so the test skips (rather than
// fails) if no delivery happens in time.
func TestUDPRealMulticast(t *testing.T) {
	nodes := startUDPCluster(t, 2, "239.192.77.41:17411")
	if err := nodes[0].Submit([]byte("mc"), Agreed); err != nil {
		t.Fatal(err)
	}
	timer := time.NewTimer(5 * time.Second)
	defer timer.Stop()
	for {
		select {
		case ev, ok := <-nodes[1].Events():
			if !ok {
				t.Skip("multicast unavailable in this environment")
			}
			if m, isMsg := ev.(Message); isMsg {
				if string(m.Payload) != "mc" {
					t.Fatalf("got %q", m.Payload)
				}
				return
			}
		case <-timer.C:
			t.Skip("multicast unavailable in this environment (no delivery)")
		}
	}
}
