package accelring

import (
	"testing"
	"time"

	"accelring/internal/core"
)

// takeWithin waits for the timer set to deliver one current fire.
func takeWithin(t *testing.T, ts *timerSet, d time.Duration) (core.TimerKind, bool) {
	t.Helper()
	deadline := time.After(d)
	for {
		select {
		case <-ts.wake:
			if kind, ok := ts.takeOne(); ok {
				return kind, true
			}
		case <-deadline:
			// One final poll: the wake signal may have been consumed by an
			// earlier iteration while the pending entry persisted.
			return ts.takeOne()
		}
	}
}

func TestTimerSetDeliversCurrentFire(t *testing.T) {
	ts := newTimerSet(nil)
	defer ts.stopAll()
	ts.set(core.TimerTokenLoss, time.Millisecond)
	kind, ok := takeWithin(t, ts, 5*time.Second)
	if !ok || kind != core.TimerTokenLoss {
		t.Fatalf("got (%v, %v), want token-loss fire", kind, ok)
	}
}

func TestTimerSetRearmInvalidatesPendingFire(t *testing.T) {
	ts := newTimerSet(nil)
	defer ts.stopAll()
	ts.set(core.TimerTokenLoss, 0)
	// Wait until the expiry has been recorded, then re-arm: the pending
	// fire must be discarded as stale, and the new generation must still
	// be deliverable.
	waitPending(t, ts, core.TimerTokenLoss)
	ts.set(core.TimerTokenLoss, time.Millisecond)
	kind, ok := takeWithin(t, ts, 5*time.Second)
	if !ok || kind != core.TimerTokenLoss {
		t.Fatalf("got (%v, %v), want the re-armed generation's fire", kind, ok)
	}
	if ts.stale.Load() == 0 {
		t.Fatal("stale fire was not counted")
	}
}

// waitPending blocks until an expiry of kind has been recorded.
func waitPending(t *testing.T, ts *timerSet, kind core.TimerKind) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		ts.mu.Lock()
		_, ok := ts.pending[kind]
		ts.mu.Unlock()
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("timer never fired")
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestTimerSetCancel(t *testing.T) {
	ts := newTimerSet(nil)
	defer ts.stopAll()
	ts.set(core.TimerJoin, time.Millisecond)
	ts.cancel(core.TimerJoin)
	if kind, ok := takeWithin(t, ts, 20*time.Millisecond); ok {
		t.Fatalf("cancelled timer delivered a fire: %v", kind)
	}
}

// TestTimerFireSurvivesRearmBurst is the regression test for the lost
// timer-fire bug: the old design pushed expiries through a bounded channel
// and dropped on overflow, so a burst of stale fires (rapid re-arms) could
// swallow the one valid token-loss expiry and stall failure detection.
// The pending-map design must always deliver the latest generation.
func TestTimerFireSurvivesRearmBurst(t *testing.T) {
	ts := newTimerSet(nil)
	defer ts.stopAll()
	// Each re-arm with a zero duration races its own expiry; many of the
	// expiries land as stale entries. Nothing is drained meanwhile.
	for i := 0; i < 64; i++ {
		ts.set(core.TimerTokenLoss, 0)
	}
	kind, ok := takeWithin(t, ts, 5*time.Second)
	if !ok || kind != core.TimerTokenLoss {
		t.Fatalf("got (%v, %v); the current-generation token-loss fire was lost", kind, ok)
	}
}

// TestTokenLossFiresUnderTimerSaturation floods the timer set with
// expiries of every kind without draining, then checks that a token-loss
// fire is still delivered — the scenario in which the old bounded channel
// dropped valid fires.
func TestTokenLossFiresUnderTimerSaturation(t *testing.T) {
	ts := newTimerSet(nil)
	defer ts.stopAll()
	kinds := []core.TimerKind{
		core.TimerTokenRetrans, core.TimerJoin, core.TimerConsensus, core.TimerCommit,
	}
	for i := 0; i < 16; i++ {
		for _, k := range kinds {
			ts.set(k, 0)
		}
	}
	ts.set(core.TimerTokenLoss, time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for {
		kind, ok := takeWithin(t, ts, 50*time.Millisecond)
		if ok && kind == core.TimerTokenLoss {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("token-loss fire lost under saturation")
		}
	}
}

func TestNodeIgnoresGarbagePackets(t *testing.T) {
	net := NewMemoryNetwork(8)
	nodes := startCluster(t, net, 2, AcceleratedRing)

	// A rogue endpoint floods the ring with garbage on both sockets.
	rogue := net.Endpoint(99)
	for i := 0; i < 50; i++ {
		if err := rogue.Multicast([]byte("not a protocol packet")); err != nil {
			t.Fatal(err)
		}
		if err := rogue.Unicast(1, []byte{0xde, 0xad}); err != nil {
			t.Fatal(err)
		}
	}
	// The ring still orders and delivers.
	if err := nodes[0].Submit([]byte("still alive"), Agreed); err != nil {
		t.Fatal(err)
	}
	msgs, _ := collect(t, nodes[1], 1, 10*time.Second)
	if string(msgs[0].Payload) != "still alive" {
		t.Fatalf("got %q", msgs[0].Payload)
	}
	// The garbage was noticed, not swallowed silently.
	if nodes[0].Err() == nil {
		t.Fatal("garbage packets left no trace in Err()")
	}
}

// TestErrorBurstIsAccounted is the regression test for the single-slot
// lastErr bug: a burst of decode failures used to collapse into one
// overwritten error. The ring plus counter must make the burst visible.
func TestErrorBurstIsAccounted(t *testing.T) {
	net := NewMemoryNetwork(13)
	nodes := startCluster(t, net, 2, AcceleratedRing)

	rogue := net.Endpoint(98)
	const garbage = 50
	for i := 0; i < garbage; i++ {
		if err := rogue.Multicast([]byte("garbage packet payload")); err != nil {
			t.Fatal(err)
		}
	}
	// Force a round trip through the loop so the flood has been consumed.
	if err := nodes[0].Submit([]byte("sync"), Agreed); err != nil {
		t.Fatal(err)
	}
	collect(t, nodes[0], 1, 10*time.Second)

	snap, err := nodes[0].Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if snap.ErrorCount < garbage {
		t.Fatalf("error count = %d, want >= %d (burst collapsed)", snap.ErrorCount, garbage)
	}
	if snap.Runtime.DecodeFailures < garbage {
		t.Fatalf("decode failures = %d, want >= %d", snap.Runtime.DecodeFailures, garbage)
	}
	recent := nodes[0].RecentErrors()
	if len(recent) < 2 {
		t.Fatalf("recent errors = %d, want a ring of several", len(recent))
	}
	if len(recent) > errRingCap {
		t.Fatalf("recent errors = %d, want bounded by %d", len(recent), errRingCap)
	}
	if nodes[0].Err() == nil {
		t.Fatal("Err() broke: most recent error missing")
	}
	if len(snap.RecentErrors) == 0 {
		t.Fatal("metrics snapshot carries no recent errors")
	}
}

// TestNodeMetricsSnapshot checks the runtime section of Metrics over a
// live ring: packets by kind, token rotation observations, and engine
// counters all move.
func TestNodeMetricsSnapshot(t *testing.T) {
	net := NewMemoryNetwork(14)
	nodes := startCluster(t, net, 3, AcceleratedRing)
	const perNode = 10
	for i := 0; i < perNode; i++ {
		for _, node := range nodes {
			if err := node.Submit([]byte("payload"), Agreed); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, node := range nodes {
		collect(t, node, perNode*3, 20*time.Second)
	}
	// A rotation interval needs two accepted tokens; the token keeps
	// circulating in steady state, so poll until one is observed.
	var snap MetricsSnapshot
	deadline := time.Now().Add(10 * time.Second)
	for {
		var err error
		snap, err = nodes[0].Metrics()
		if err != nil {
			t.Fatal(err)
		}
		if snap.Runtime.TokenRotation.Count > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no token rotation intervals observed")
		}
		time.Sleep(time.Millisecond)
	}
	if snap.Runtime.PacketsToken == 0 {
		t.Fatal("no token packets counted")
	}
	if snap.Runtime.PacketsData == 0 {
		t.Fatal("no data packets counted")
	}
	if snap.Runtime.TokenHandle.Count == 0 {
		t.Fatal("no token handle durations observed")
	}
	if snap.Runtime.EventsDelivered < perNode*3 {
		t.Fatalf("events delivered = %d, want >= %d", snap.Runtime.EventsDelivered, perNode*3)
	}
	if snap.Runtime.Submits != perNode {
		t.Fatalf("submits = %d, want %d", snap.Runtime.Submits, perNode)
	}
	if snap.Engine.TokensProcessed == 0 {
		t.Fatal("engine counters missing from snapshot")
	}
	if snap.Transport == nil {
		t.Fatal("memnet transport should contribute a snapshot")
	}
	if snap.Transport.DatagramsIn == 0 || snap.Transport.DatagramsOut == 0 {
		t.Fatalf("transport accounting empty: %+v", snap.Transport)
	}
}

func TestNodeDoubleCloseIsSafe(t *testing.T) {
	net := NewMemoryNetwork(9)
	nodes := startCluster(t, net, 2, AcceleratedRing)
	if err := nodes[0].Close(); err != nil {
		t.Fatal(err)
	}
	if err := nodes[0].Close(); err != nil {
		t.Fatal(err)
	}
}

func TestEventsChannelClosesOnClose(t *testing.T) {
	net := NewMemoryNetwork(10)
	nodes := startCluster(t, net, 2, AcceleratedRing)
	nodes[0].Close()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-nodes[0].Events():
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("events channel never closed")
		}
	}
}

func TestWindowsArePassedThrough(t *testing.T) {
	net := NewMemoryNetwork(11)
	node, err := Start(Options{
		ID:        1,
		Transport: net.Endpoint(1),
		Members:   []ParticipantID{1},
		Windows:   Windows{Personal: 10, Global: 50, Accelerated: 5, MaxSeqGap: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if err := node.Submit([]byte("x"), Agreed); err != nil {
		t.Fatal(err)
	}
	msgs, _ := collect(t, node, 1, 5*time.Second)
	if string(msgs[0].Payload) != "x" {
		t.Fatalf("got %q", msgs[0].Payload)
	}
}

func TestInvalidWindowsRejected(t *testing.T) {
	net := NewMemoryNetwork(12)
	_, err := Start(Options{
		ID:        1,
		Transport: net.Endpoint(1),
		Members:   []ParticipantID{1},
		Windows:   Windows{Personal: 5, Accelerated: 50}, // accel > personal
	})
	if err == nil {
		t.Fatal("invalid windows accepted")
	}
}
