package accelring

import (
	"testing"
	"time"

	"accelring/internal/core"
)

func TestTimerSetGenerationsInvalidateStaleFires(t *testing.T) {
	ts := newTimerSet()
	defer ts.stopAll()
	ts.set(core.TimerTokenLoss, time.Millisecond)
	f := <-ts.fired
	if !ts.current(f) {
		t.Fatal("fresh fire reported stale")
	}
	// Re-arming invalidates any in-flight fire of the old generation.
	ts.set(core.TimerTokenLoss, time.Millisecond)
	if ts.current(f) {
		t.Fatal("stale fire reported current after re-arm")
	}
	f2 := <-ts.fired
	if !ts.current(f2) {
		t.Fatal("second fire reported stale")
	}
}

func TestTimerSetCancel(t *testing.T) {
	ts := newTimerSet()
	defer ts.stopAll()
	ts.set(core.TimerJoin, time.Millisecond)
	ts.cancel(core.TimerJoin)
	select {
	case f := <-ts.fired:
		if ts.current(f) {
			t.Fatal("cancelled timer fire reported current")
		}
	case <-time.After(20 * time.Millisecond):
		// Fine: the timer was stopped before firing.
	}
}

func TestNodeIgnoresGarbagePackets(t *testing.T) {
	net := NewMemoryNetwork(8)
	nodes := startCluster(t, net, 2, AcceleratedRing)

	// A rogue endpoint floods the ring with garbage on both sockets.
	rogue := net.Endpoint(99)
	for i := 0; i < 50; i++ {
		if err := rogue.Multicast([]byte("not a protocol packet")); err != nil {
			t.Fatal(err)
		}
		if err := rogue.Unicast(1, []byte{0xde, 0xad}); err != nil {
			t.Fatal(err)
		}
	}
	// The ring still orders and delivers.
	if err := nodes[0].Submit([]byte("still alive"), Agreed); err != nil {
		t.Fatal(err)
	}
	msgs, _ := collect(t, nodes[1], 1, 10*time.Second)
	if string(msgs[0].Payload) != "still alive" {
		t.Fatalf("got %q", msgs[0].Payload)
	}
	// The garbage was noticed, not swallowed silently.
	if nodes[0].Err() == nil {
		t.Fatal("garbage packets left no trace in Err()")
	}
}

func TestNodeDoubleCloseIsSafe(t *testing.T) {
	net := NewMemoryNetwork(9)
	nodes := startCluster(t, net, 2, AcceleratedRing)
	if err := nodes[0].Close(); err != nil {
		t.Fatal(err)
	}
	if err := nodes[0].Close(); err != nil {
		t.Fatal(err)
	}
}

func TestEventsChannelClosesOnClose(t *testing.T) {
	net := NewMemoryNetwork(10)
	nodes := startCluster(t, net, 2, AcceleratedRing)
	nodes[0].Close()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-nodes[0].Events():
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("events channel never closed")
		}
	}
}

func TestWindowsArePassedThrough(t *testing.T) {
	net := NewMemoryNetwork(11)
	node, err := Start(Options{
		ID:        1,
		Transport: net.Endpoint(1),
		Members:   []ParticipantID{1},
		Windows:   Windows{Personal: 10, Global: 50, Accelerated: 5, MaxSeqGap: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if err := node.Submit([]byte("x"), Agreed); err != nil {
		t.Fatal(err)
	}
	msgs, _ := collect(t, node, 1, 5*time.Second)
	if string(msgs[0].Payload) != "x" {
		t.Fatalf("got %q", msgs[0].Payload)
	}
}

func TestInvalidWindowsRejected(t *testing.T) {
	net := NewMemoryNetwork(12)
	_, err := Start(Options{
		ID:        1,
		Transport: net.Endpoint(1),
		Members:   []ParticipantID{1},
		Windows:   Windows{Personal: 5, Accelerated: 50}, // accel > personal
	})
	if err == nil {
		t.Fatal("invalid windows accepted")
	}
}
