package accelring

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"accelring/internal/evscheck"
	"accelring/internal/faultplan"
)

// multiRingConformance is the per-node conformance tap: it records every
// ring's exact unit stream (messages and skips, in ring delivery order) and
// configuration history via the router's OnUnit/OnConfig hooks, plus the
// merged delivery stream off the Events channel. Together they feed both
// checkers: per-ring EVS axioms and the cross-ring total order.
type multiRingConformance struct {
	mu      sync.Mutex
	name    string
	ringLog []*evscheck.NodeLog // one per ring, shared into per-ring Logs
	merged  []ShardMessage
	anon    []uint64 // per-ring counter keying zero-key (pseudo-skip) units
}

func newMultiRingConformance(name string, rings int) *multiRingConformance {
	c := &multiRingConformance{name: name, anon: make([]uint64, rings)}
	for i := 0; i < rings; i++ {
		c.ringLog = append(c.ringLog, &evscheck.NodeLog{})
	}
	return c
}

func (c *multiRingConformance) onUnit(ring int, u ShardUnit) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := fmt.Sprintf("u:%d:%d", u.Key.Sender, u.Key.Seq)
	if u.Key == (ShardUnit{}.Key) {
		c.anon[ring]++
		key = fmt.Sprintf("anon:%d", c.anon[ring])
	}
	c.ringLog[ring].Deliver(key, u.Key.Sender, u.Key.Seq, u.Service)
}

func (c *multiRingConformance) onConfig(ev ShardConfigChange) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ringLog[ev.Ring].Install(ev.ID, ev.Members, ev.Transitional)
}

// TestMultiRingChaosSoak is the seeded chaos soak of the acceptance
// criteria: three nodes on four rings, a deterministic partition/heal plan
// applied to exactly one ring's network, sustained traffic on every shard.
// During the fault window the healthy rings must keep delivering; after
// heal and quiescence, every ring's stream must satisfy the per-ring EVS
// axioms and the merged streams the cross-ring total-order axioms. Run
// under -race in CI; reproduce a failure with the same seed constants.
func TestMultiRingChaosSoak(t *testing.T) {
	const (
		seed     = 2016 // the paper's year; any seed must pass
		n        = 3
		rings    = 4
		hurtRing = 3
	)
	soak := 2500 * time.Millisecond
	if testing.Short() {
		soak = 1200 * time.Millisecond
	}

	hubs := make([]*MemoryNetwork, rings)
	for r := range hubs {
		hubs[r] = NewMemoryNetwork(seed + int64(r))
	}
	// The fault plan partitions and heals participants of one ring only;
	// the other rings never see a fault.
	plan := faultplan.Generate(seed, n, soak/2, faultplan.ClassPartition)
	hubs[hurtRing].ApplyFaults(&plan)

	members := make([]ParticipantID, 0, n)
	for i := 1; i <= n; i++ {
		members = append(members, ParticipantID(i))
	}
	taps := make([]*multiRingConformance, n)
	nodes := make([]*MultiNode, 0, n)
	for i, id := range members {
		taps[i] = newMultiRingConformance(fmt.Sprint(id), rings)
		transports := make([]Transport, rings)
		for r := range transports {
			transports[r] = hubs[r].Endpoint(id)
		}
		mn, err := StartMulti(MultiOptions{
			Node: Options{
				ID:                 id,
				Members:            members,
				TokenLossTimeout:   200 * time.Millisecond,
				TokenRetransPeriod: 40 * time.Millisecond,
				JoinPeriod:         20 * time.Millisecond,
				ConsensusTimeout:   100 * time.Millisecond,
				CommitTimeout:      100 * time.Millisecond,
			},
			RingTransports: transports,
			SkipInterval:   time.Millisecond,
			OnUnit:         taps[i].onUnit,
			OnConfig:       taps[i].onConfig,
		})
		if err != nil {
			t.Fatalf("StartMulti(%d): %v", id, err)
		}
		nodes = append(nodes, mn)
	}
	t.Cleanup(func() {
		for _, mn := range nodes {
			mn.Close()
		}
	})

	groups := make([]string, rings)
	for r := range groups {
		groups[r] = groupOnShard(t, r, rings)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var submitted atomic.Int64
	for i, mn := range nodes {
		wg.Add(2)
		go func(tap *multiRingConformance, mn *MultiNode) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				case ev, ok := <-mn.Events():
					if !ok {
						return
					}
					if m, isMsg := ev.(ShardMessage); isMsg {
						tap.mu.Lock()
						tap.merged = append(tap.merged, m)
						tap.mu.Unlock()
					}
				}
			}
		}(taps[i], mn)
		go func(mn *MultiNode, seed int) {
			defer wg.Done()
			for k := seed; ; k++ {
				select {
				case <-stop:
					return
				default:
				}
				// Round-robin the shards; a submit fails transiently while
				// the hurt ring reforms — back off and keep the load up.
				g := groups[k%rings]
				if err := mn.Submit([]string{g}, []byte(fmt.Sprintf("soak-%d-%d", mn.ID(), k)), Agreed); err != nil {
					time.Sleep(2 * time.Millisecond)
					continue
				}
				submitted.Add(1)
				time.Sleep(500 * time.Microsecond)
			}
		}(mn, i)
	}

	// Mid-fault progress check: while the plan is still partitioning the
	// hurt ring, the healthy rings' engines must keep ordering.
	time.Sleep(soak / 4)
	before, err := nodes[0].Metrics()
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	time.Sleep(soak / 4)
	after, err := nodes[0].Metrics()
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	for r := 0; r < rings; r++ {
		if r == hurtRing {
			continue
		}
		if after.Rings[r].Engine.Delivered <= before.Rings[r].Engine.Delivered {
			t.Errorf("healthy ring %d stalled during the fault window: %d -> %d deliveries",
				r, before.Rings[r].Engine.Delivered, after.Rings[r].Engine.Delivered)
		}
	}

	// Let the plan finish, heal the hurt ring, stop the load, and give the
	// cluster time to reform and drain in-flight traffic.
	time.Sleep(soak / 2)
	hubs[hurtRing].ApplyFaults(nil)
	hubs[hurtRing].Heal()
	time.Sleep(soak / 2)
	close(stop)
	wg.Wait()
	// Stop the routers before reading the tap logs: the merge goroutines
	// append to them. Close is idempotent, so the Cleanup re-Close is fine.
	for _, mn := range nodes {
		mn.Close()
	}

	if submitted.Load() == 0 {
		t.Fatal("soak submitted nothing")
	}

	// Per-ring EVS conformance: each ring's unit streams across the three
	// nodes form one ordinary single-ring history.
	for r := 0; r < rings; r++ {
		l := evscheck.Log{}
		for i := range taps {
			taps[i].mu.Lock()
			l[taps[i].name] = taps[i].ringLog[r]
			taps[i].mu.Unlock()
		}
		if vs := evscheck.Check(l, evscheck.Options{}); len(vs) != 0 {
			t.Fatalf("ring %d EVS violations (seed %d): %v", r, seed, vs)
		}
	}

	// Cross-ring conformance over the merged streams. The hurt ring's
	// partitions may have legitimately diverged the per-ring histories, so
	// the strict converged mode does not apply — the turn-conditioned
	// axioms must still hold.
	cl := evscheck.CrossLog{}
	total := 0
	for i := range taps {
		taps[i].mu.Lock()
		nl := cl.Node(taps[i].name)
		for _, m := range taps[i].merged {
			nl.Deliver(crossKey(m), m.Ring, m.Turn, m.Shards)
		}
		total += len(taps[i].merged)
		taps[i].mu.Unlock()
	}
	if total == 0 {
		t.Fatal("no merged deliveries during the soak")
	}
	if vs := evscheck.CrossCheck(cl, evscheck.CrossOptions{}); len(vs) != 0 {
		t.Fatalf("cross-ring violations (seed %d): %v", seed, vs)
	}
}
