package main

import (
	"testing"

	"accelring"
)

func TestParsePeers(t *testing.T) {
	peers, err := parsePeers("1=10.0.0.1,2=10.0.0.2:7421:7422, 3=hostc")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 3 {
		t.Fatalf("got %d peers", len(peers))
	}
	if p := peers[accelring.ParticipantID(1)]; p.Host != "10.0.0.1" ||
		p.DataPort != defaultDataPort || p.TokenPort != defaultTokenPort {
		t.Fatalf("peer 1 = %+v", p)
	}
	if p := peers[accelring.ParticipantID(2)]; p.Host != "10.0.0.2" ||
		p.DataPort != 7421 || p.TokenPort != 7422 {
		t.Fatalf("peer 2 = %+v", p)
	}
	if p := peers[accelring.ParticipantID(3)]; p.Host != "hostc" {
		t.Fatalf("peer 3 = %+v", p)
	}
}

func TestParsePeersErrors(t *testing.T) {
	cases := []string{
		"",
		"1",            // no =
		"x=host",       // bad id
		"1=host:1",     // partial ports
		"1=host:a:2",   // bad data port
		"1=host:1:b",   // bad token port
		"1=host:1:2:3", // too many fields
	}
	for _, c := range cases {
		if _, err := parsePeers(c); err == nil {
			t.Errorf("parsePeers(%q) succeeded", c)
		}
	}
}
