// Command ringd is the Spread-like daemon deployment of the Accelerated
// Ring protocol: one daemon per machine joins the ring over UDP
// (IP-multicast data, unicast token) and serves local clients over a Unix
// socket, providing named groups, open-group semantics and multi-group
// multicast with totally ordered delivery.
//
// Example 3-daemon ring on three hosts:
//
//	hostA$ ringd -id 1 -peers 1=10.0.0.1,2=10.0.0.2,3=10.0.0.3 -members 1,2,3
//	hostB$ ringd -id 2 -peers 1=10.0.0.1,2=10.0.0.2,3=10.0.0.3 -members 1,2,3
//	hostC$ ringd -id 3 -peers 1=10.0.0.1,2=10.0.0.2,3=10.0.0.3 -members 1,2,3
//
// Omit -members to discover peers dynamically through the membership
// protocol. Without IP-multicast (-mcast ""), multicast is emulated with
// unicast fan-out.
//
// -engine ringpaxos swaps the ordering engine for the Ring Paxos
// comparison baseline (static membership required); the daemon's client
// protocol, fan-out tier and metrics are engine-agnostic.
//
// For a single-host demo ring, give each daemon distinct ports:
//
//	ringd -id 1 -peers 1=127.0.0.1:7411:7412,2=127.0.0.1:7421:7422 -members 1,2 -socket /tmp/ringd1.sock -mcast ""
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"accelring"
	"accelring/internal/daemon"
	"accelring/internal/fanout"
)

const (
	defaultDataPort  = 7411
	defaultTokenPort = 7412
	defaultMcast     = "239.192.74.11:7410"
)

func main() {
	os.Exit(run())
}

func run() int {
	id := flag.Uint("id", 0, "participant ID (1..n), unique per daemon")
	peersFlag := flag.String("peers", "", "comma-separated peers: id=host[:dataPort:tokenPort]")
	membersFlag := flag.String("members", "", "static ring membership (comma-separated IDs); empty = dynamic discovery")
	mcast := flag.String("mcast", defaultMcast, "data multicast group; empty emulates multicast with unicast")
	socket := flag.String("socket", "/tmp/ringd.sock", "Unix socket for local clients")
	protoFlag := flag.String("protocol", "accelerated", "ordering protocol: accelerated or original")
	engineFlag := flag.String("engine", "", "ordering engine: accelring (default) or ringpaxos; ringpaxos requires a static -members list")
	accelWindow := flag.Int("accel-window", 0, "accelerated window override (messages sent post-token)")
	personalWindow := flag.Int("personal-window", 0, "personal window override")
	pack := flag.Int("pack", 1350, "message packing threshold in bytes (0 disables); small client messages sharing a service are packed into one protocol packet")
	verbose := flag.Bool("verbose", false, "log protocol state transitions and configuration installs")
	adaptive := flag.Bool("adaptive-window", false, "adapt the accelerated window automatically (AIMD) instead of hand-tuning")
	fanoutPolicy := flag.String("fanout-policy", "disconnect", "slow-client backpressure policy: disconnect, shed or block")
	fanoutQueue := flag.Int("fanout-queue", 0, "per-client delivery queue depth in frames (0 = default 8192)")
	tokenLoss := flag.Duration("token-loss", 0, "token loss (failure detection) timeout; 0 = protocol default")
	tokenRetrans := flag.Duration("token-retrans", 0, "token retransmission period; 0 = protocol default")
	consensusTimeout := flag.Duration("consensus-timeout", 0, "membership consensus timeout; 0 = protocol default")
	commitTimeout := flag.Duration("commit-timeout", 0, "membership commit timeout; 0 = protocol default")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful drain budget on the first SIGTERM/SIGINT: stop accepting, announce the drain, flush client queues, leave the ring")
	resumeWindow := flag.Duration("resume-window", 30*time.Second, "how long a disconnected client's session (queue, interests, delivery cursor) is held for resume; 0 disables session resume")
	resumeHistory := flag.Int("resume-history", 1024, "per-client history of already-written frames kept for resume replay (0 disables rewind; resumes then report a gap unless the client is fully caught up)")
	watchdogInterval := flag.Duration("watchdog-interval", 5*time.Second, "liveness watchdog check period for the protocol loop; 0 disables")
	flag.Parse()

	logger := log.New(os.Stderr, "ringd: ", log.LstdFlags|log.Lmicroseconds)

	if *id == 0 {
		logger.Print("missing -id")
		return 2
	}
	peers, err := parsePeers(*peersFlag)
	if err != nil {
		logger.Print(err)
		return 2
	}
	if _, ok := peers[accelring.ParticipantID(*id)]; !ok {
		logger.Printf("-peers has no entry for -id %d", *id)
		return 2
	}
	var members []accelring.ParticipantID
	if *membersFlag != "" {
		for _, part := range strings.Split(*membersFlag, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 32)
			if err != nil {
				logger.Printf("bad -members entry %q: %v", part, err)
				return 2
			}
			members = append(members, accelring.ParticipantID(v))
		}
	}
	var protocol accelring.Protocol
	switch *protoFlag {
	case "accelerated":
		protocol = accelring.AcceleratedRing
	case "original":
		protocol = accelring.OriginalRing
	default:
		logger.Printf("unknown -protocol %q", *protoFlag)
		return 2
	}
	engine, err := accelring.ParseEngine(*engineFlag)
	if err != nil {
		logger.Print(err)
		return 2
	}
	if engine == accelring.EngineRingPaxos && len(members) == 0 {
		logger.Print("-engine ringpaxos requires a static -members list")
		return 2
	}
	policy, err := fanout.ParsePolicy(*fanoutPolicy)
	if err != nil {
		logger.Printf("bad -fanout-policy: %v", err)
		return 2
	}

	tr, err := accelring.NewUDPTransport(accelring.UDPOptions{
		ID:             accelring.ParticipantID(*id),
		Peers:          peers,
		MulticastGroup: *mcast,
	})
	if err != nil {
		logger.Print(err)
		return 1
	}
	node, err := accelring.Start(accelring.Options{
		ID:        accelring.ParticipantID(*id),
		Transport: tr,
		Members:   members,
		Protocol:  protocol,
		Engine:    engine,
		Windows: accelring.Windows{
			Personal:    *personalWindow,
			Accelerated: *accelWindow,
		},
		TokenLossTimeout:   *tokenLoss,
		TokenRetransPeriod: *tokenRetrans,
		ConsensusTimeout:   *consensusTimeout,
		CommitTimeout:      *commitTimeout,
		PackThreshold:      *pack,
		Tracer:             maybeTracer(*verbose, logger),
		AdaptiveWindow:     *adaptive,
		WatchdogInterval:   *watchdogInterval,
		OnStall: func(r accelring.StallReport) {
			logger.Printf("watchdog: protocol loop stalled for %s (data=%d token=%d timers=%d eventsFull=%v)",
				r.Interval, r.PendingData, r.PendingToken, r.PendingTimers, r.EventQueueFull)
		},
	})
	if err != nil {
		logger.Print(err)
		return 1
	}

	os.Remove(*socket) // a previous daemon's leftover
	ln, err := net.Listen("unix", *socket)
	if err != nil {
		logger.Print(err)
		node.Close()
		return 1
	}
	d, err := daemon.New(daemon.Config{
		Node:         node,
		Listener:     ln,
		Logger:       logger,
		Fanout:       fanout.Config{QueueDepth: *fanoutQueue, Policy: policy, HistoryDepth: *resumeHistory},
		ResumeWindow: *resumeWindow,
	})
	if err != nil {
		logger.Print(err)
		node.Close()
		return 1
	}
	logger.Printf("daemon %d serving on %s (engine %s, protocol %s, fanout policy %s)", *id, *socket, engine, *protoFlag, policy)

	// First signal: graceful drain — stop accepting, announce the drain to
	// clients, flush the bounded fan-out queues within the budget, then
	// leave the ring. A second signal forces immediate exit.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	logger.Printf("%s: draining (budget %s; signal again to force exit)", s, *drainTimeout)
	drained := make(chan error, 1)
	go func() { drained <- d.Drain(*drainTimeout) }()
	select {
	case err := <-drained:
		if err != nil {
			logger.Printf("drain: %v", err)
			return 1
		}
		return 0
	case s = <-sig:
		logger.Printf("%s: forcing exit", s)
		d.Close()
		return 1
	}
}

// logTracer logs protocol state transitions and configuration installs.
type logTracer struct {
	log *log.Logger
}

func (t *logTracer) StateChanged(from, to accelring.State) {
	t.log.Printf("state %s -> %s", from, to)
}

func (t *logTracer) TokenForwarded(accelring.ParticipantID, accelring.Seq, accelring.Seq, int, int) {
	// Token forwards are far too frequent to log.
}

func (t *logTracer) ConfigurationInstalled(cfg accelring.Configuration, transitional bool) {
	kind := "regular"
	if transitional {
		kind = "transitional"
	}
	t.log.Printf("%s configuration %s: %v", kind, cfg.ID, cfg.Members)
}

func maybeTracer(verbose bool, logger *log.Logger) accelring.Tracer {
	if !verbose {
		return nil
	}
	return &logTracer{log: logger}
}

// parsePeers parses "1=hostA,2=hostB:7421:7422" into a peer map, applying
// default ports where omitted.
func parsePeers(s string) (map[accelring.ParticipantID]accelring.Peer, error) {
	if s == "" {
		return nil, fmt.Errorf("missing -peers")
	}
	peers := make(map[accelring.ParticipantID]accelring.Peer)
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad -peers entry %q (want id=host[:dataPort:tokenPort])", part)
		}
		idv, err := strconv.ParseUint(kv[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad peer id %q: %v", kv[0], err)
		}
		fields := strings.Split(kv[1], ":")
		peer := accelring.Peer{Host: fields[0], DataPort: defaultDataPort, TokenPort: defaultTokenPort}
		switch len(fields) {
		case 1:
		case 3:
			dp, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("bad data port in %q: %v", part, err)
			}
			tp, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("bad token port in %q: %v", part, err)
			}
			peer.DataPort, peer.TokenPort = dp, tp
		default:
			return nil, fmt.Errorf("bad -peers entry %q (want id=host[:dataPort:tokenPort])", part)
		}
		peers[accelring.ParticipantID(idv)] = peer
	}
	return peers, nil
}
