package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"accelring"
	"accelring/internal/client"
	"accelring/internal/ipc"
)

// runSockets polls one or more daemons' IPC sockets for CmdStats
// snapshots and renders the serving-side counters — sessions,
// subscriptions, fan-out shedding — per daemon. Unlike the ring-observer
// modes it adds no hop to the token rotation: it is an ordinary local
// client of each daemon.
func runSockets(logger *log.Logger, sockets []string, interval, connectWait time.Duration) int {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()

	// Shed/disconnect totals are cumulative; report deltas per interval.
	lastShed := make(map[string]uint64, len(sockets))
	lastDisc := make(map[string]uint64, len(sockets))
	for {
		for _, sock := range sockets {
			snap, err := pollStats(sock, connectWait)
			if err != nil {
				fmt.Printf("%s %s: %v\n", time.Now().Format("15:04:05.000"), sock, err)
				continue
			}
			shedDelta := snap.Shed - lastShed[sock]
			discDelta := snap.Disconnects - lastDisc[sock]
			lastShed[sock], lastDisc[sock] = snap.Shed, snap.Disconnects
			fmt.Printf("%s %s [%s]: sessions %d groups %d subscriptions %d | shed %d (+%d) disconnects %d (+%d) policy %s\n",
				time.Now().Format("15:04:05.000"), sock, snap.Daemon,
				snap.Sessions, snap.Groups, snap.Subscriptions,
				snap.Shed, shedDelta, snap.Disconnects, discDelta, snap.FanoutPolicy)
			if snap.Detached > 0 || snap.Resumes > 0 || snap.Draining || snap.DrainMs > 0 {
				fmt.Printf("%s %s resume: detached %d resumes %d gaps %d expired %d draining %v drainMs %d\n",
					time.Now().Format("15:04:05.000"), sock,
					snap.Detached, snap.Resumes, snap.ResumeGaps, snap.ResumeExpired,
					snap.Draining, snap.DrainMs)
			}
			var node accelring.MetricsSnapshot
			if err := json.Unmarshal(snap.Node, &node); err == nil && node.Fanout != nil {
				f := node.Fanout
				fmt.Printf("%s %s fanout: published %d enqueued %d delivered %d maxBacklog %d/%d\n",
					time.Now().Format("15:04:05.000"), sock,
					f.Published, f.Enqueued, f.Delivered, f.MaxBacklog, f.QueueDepth)
			}
			printTopClients(sock, snap)
		}
		select {
		case <-ticker.C:
		case <-sig:
			logger.Print("stopping")
			return 0
		}
	}
}

// pollStats runs one connect/stats/close cycle against a daemon socket, so
// ringmon holds no session between intervals and a daemon restart only
// costs one missed poll.
func pollStats(sock string, connectWait time.Duration) (ipc.StatsSnapshot, error) {
	c, err := client.Dial("unix", sock, fmt.Sprintf("ringmon-%d", os.Getpid()),
		client.Options{ConnectWait: connectWait})
	if err != nil {
		return ipc.StatsSnapshot{}, err
	}
	defer c.Close()
	return c.Stats()
}

// printTopClients lists the busiest client sessions by backlog then
// deliveries — the ones a backpressure policy would act on first. At
// serving scale the daemon omits the per-client map (ClientsOmitted);
// then only the aggregate lines above are available.
func printTopClients(sock string, snap ipc.StatsSnapshot) {
	if snap.ClientsOmitted > 0 {
		fmt.Printf("%s %s clients: %d sessions (per-client detail omitted at this scale)\n",
			time.Now().Format("15:04:05.000"), sock, snap.ClientsOmitted)
		return
	}
	type kv struct {
		name string
		st   ipc.ClientStats
	}
	list := make([]kv, 0, len(snap.Clients))
	for name, st := range snap.Clients {
		list = append(list, kv{name, st})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].st.Backlog != list[j].st.Backlog {
			return list[i].st.Backlog > list[j].st.Backlog
		}
		if list[i].st.Deliveries != list[j].st.Deliveries {
			return list[i].st.Deliveries > list[j].st.Deliveries
		}
		return list[i].name < list[j].name
	})
	const top = 5
	for i, c := range list {
		if i >= top {
			fmt.Printf("%s %s   … %d more clients\n",
				time.Now().Format("15:04:05.000"), sock, len(list)-top)
			break
		}
		fmt.Printf("%s %s   %s: subs %d submits %d deliveries %d shed %d backlog %d (hw %d)\n",
			time.Now().Format("15:04:05.000"), sock, c.name,
			c.st.Subscriptions, c.st.Submits, c.st.Deliveries, c.st.Shed,
			c.st.Backlog, c.st.HighWater)
	}
}
