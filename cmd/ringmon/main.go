// Command ringmon is a monitoring observer for a running ring: it joins
// the ring through the dynamic membership protocol as an extra (read-only)
// participant and reports membership changes and traffic statistics. Note
// that, as in any token ring, an observer is a full ring member — it adds
// one hop to the token's rotation.
//
// With -rings M it observes a sharded deployment instead: ring r binds the
// configured ports plus a stride of 2r (and the multicast port plus 2r),
// matching a multi-ring cluster laid out the same way, and reports the
// merged cross-shard order plus per-ring breakdowns.
//
// With -sockets it instead polls local daemons over their IPC sockets for
// serving-side statistics — sessions, subscriptions, fan-out shedding —
// without joining the ring at all.
//
//	ringmon -id 99 -peers 1=10.0.0.1,2=10.0.0.2,99=10.0.0.9 -interval 2s
//	ringmon -id 99 -rings 4 -peers 1=10.0.0.1,99=10.0.0.9
//	ringmon -sockets /tmp/ringd1.sock,/tmp/ringd2.sock -interval 2s
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"accelring"
)

func main() {
	os.Exit(run())
}

func run() int {
	id := flag.Uint("id", 99, "observer participant ID (unique on the ring)")
	peersFlag := flag.String("peers", "", "comma-separated peers: id=host[:dataPort:tokenPort] (same map as ringd, plus this observer)")
	mcast := flag.String("mcast", "239.192.74.11:7410", "data multicast group; empty emulates multicast")
	interval := flag.Duration("interval", 2*time.Second, "statistics reporting interval")
	rings := flag.Int("rings", 1, "ring (shard) count; ring r strides every port by +2r")
	socketsFlag := flag.String("sockets", "", "comma-separated daemon IPC sockets to poll for serving-side stats instead of joining the ring")
	connectWait := flag.Duration("connect-wait", 0, "-sockets mode: retry a daemon connection with capped backoff for this long before failing the poll (covers daemons still starting up)")
	flag.Parse()

	logger := log.New(os.Stderr, "ringmon: ", log.LstdFlags)
	if *socketsFlag != "" {
		var sockets []string
		for _, s := range strings.Split(*socketsFlag, ",") {
			if s = strings.TrimSpace(s); s != "" {
				sockets = append(sockets, s)
			}
		}
		if len(sockets) == 0 {
			logger.Print("empty -sockets")
			return 2
		}
		return runSockets(logger, sockets, *interval, *connectWait)
	}
	peers, err := parsePeers(*peersFlag)
	if err != nil {
		logger.Print(err)
		return 2
	}
	if *rings < 1 || *rings > 255 {
		logger.Printf("bad -rings %d (want 1..255)", *rings)
		return 2
	}
	if *rings > 1 {
		return runMulti(logger, accelring.ParticipantID(*id), peers, *mcast, *rings, *interval)
	}
	tr, err := accelring.NewUDPTransport(accelring.UDPOptions{
		ID:             accelring.ParticipantID(*id),
		Peers:          peers,
		MulticastGroup: *mcast,
	})
	if err != nil {
		logger.Print(err)
		return 1
	}
	node, err := accelring.Start(accelring.Options{
		ID:        accelring.ParticipantID(*id),
		Transport: tr,
	})
	if err != nil {
		logger.Print(err)
		return 1
	}
	defer node.Close()
	logger.Printf("observer %d joining the ring", *id)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(*interval)
	defer ticker.Stop()

	var msgs, safeMsgs, bytes uint64
	lastReport := time.Now()
	for {
		select {
		case ev, ok := <-node.Events():
			if !ok {
				return 0
			}
			switch e := ev.(type) {
			case accelring.ConfigChange:
				kind := "regular"
				if e.Transitional {
					kind = "transitional"
				}
				fmt.Printf("%s membership (%s): %v\n",
					time.Now().Format("15:04:05.000"), kind, e.Config.Members)
			case accelring.Message:
				msgs++
				bytes += uint64(len(e.Payload))
				if e.Service == accelring.Safe {
					safeMsgs++
				}
			}
		case <-ticker.C:
			elapsed := time.Since(lastReport).Seconds()
			snap, err := node.Metrics()
			if err != nil {
				return 0
			}
			st := snap.Engine
			fmt.Printf("%s rate %.0f msg/s (%.0f safe/s, %.2f Mbps payload) | tokens %d retransPkts %d rtrReqs %d memberships %d\n",
				time.Now().Format("15:04:05.000"),
				float64(msgs)/elapsed, float64(safeMsgs)/elapsed,
				float64(bytes)*8/1e6/elapsed,
				st.TokensProcessed, st.MsgsRetransmitted, st.RTRRequested, st.MembershipChanges)
			rot := snap.Runtime.TokenRotation
			fmt.Printf("%s rotation p50 %v p99 %v (n=%d) | accelFlushes %d throttled %d rtrDeferred %d | errs %d staleTimers %d\n",
				time.Now().Format("15:04:05.000"),
				rot.P50(), rot.P99(), rot.Count,
				st.AccelFlushes, st.FlowThrottledRounds, st.RTRDeferredRounds,
				snap.ErrorCount, snap.Runtime.TimerStaleDrops)
			if tr := snap.Transport; tr != nil {
				fmt.Printf("%s transport in %d out %d | queueDrops %d fanout %d selfFiltered %d\n",
					time.Now().Format("15:04:05.000"),
					tr.DatagramsIn, tr.DatagramsOut,
					tr.RecvQueueDrops, tr.FanoutSends, tr.SelfFiltered)
			}
			if bp := snap.BufferPool; bp.Hits+bp.Misses > 0 {
				fmt.Printf("%s bufpool hits %d misses %d puts %d discards %d\n",
					time.Now().Format("15:04:05.000"),
					bp.Hits, bp.Misses, bp.Puts, bp.Discards)
			}
			msgs, safeMsgs, bytes = 0, 0, 0
			lastReport = time.Now()
		case <-sig:
			logger.Print("leaving the ring")
			return 0
		}
	}
}

// runMulti observes a sharded deployment: one UDP transport per ring on
// strided ports, merged through StartMulti. The observer never initiates
// skips — it is read-only, and skip leadership belongs to the cluster.
func runMulti(logger *log.Logger, id accelring.ParticipantID, peers map[accelring.ParticipantID]accelring.Peer, mcast string, rings int, interval time.Duration) int {
	transports := make([]accelring.Transport, rings)
	for r := 0; r < rings; r++ {
		group, err := strideMcast(mcast, 2*r)
		if err != nil {
			logger.Print(err)
			return 2
		}
		tr, err := accelring.NewUDPTransport(accelring.UDPOptions{
			ID:             id,
			Peers:          stridePeers(peers, 2*r),
			MulticastGroup: group,
		})
		if err != nil {
			logger.Printf("ring %d: %v", r, err)
			for _, t := range transports[:r] {
				t.Close()
			}
			return 1
		}
		transports[r] = tr
	}
	noSkips := false
	node, err := accelring.StartMulti(accelring.MultiOptions{
		Node:           accelring.Options{ID: id},
		RingTransports: transports,
		SkipSubmit:     &noSkips,
	})
	if err != nil {
		logger.Print(err)
		return 1
	}
	defer node.Close()
	logger.Printf("observer %d joining %d rings", id, rings)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()

	var msgs, bytes uint64
	perRing := make([]uint64, rings)
	lastReport := time.Now()
	for {
		select {
		case ev, ok := <-node.Events():
			if !ok {
				return 0
			}
			switch e := ev.(type) {
			case accelring.ShardConfigChange:
				kind := "regular"
				if e.Transitional {
					kind = "transitional"
				}
				fmt.Printf("%s ring %d membership (%s): %v\n",
					time.Now().Format("15:04:05.000"), e.Ring, kind, e.Members)
			case accelring.ShardMessage:
				msgs++
				bytes += uint64(len(e.Payload))
				perRing[e.Ring]++
			}
		case <-ticker.C:
			elapsed := time.Since(lastReport).Seconds()
			snap, err := node.Metrics()
			if err != nil {
				return 0
			}
			rt := snap.Router
			fmt.Printf("%s merged %.0f msg/s (%.2f Mbps payload) | turn %d skipsConsumed %d starvedTicks %d decodeFailures %d\n",
				time.Now().Format("15:04:05.000"),
				float64(msgs)/elapsed, float64(bytes)*8/1e6/elapsed,
				rt.Turns, rt.SkipsConsumed, rt.StarvedTicks, rt.DecodeFailures)
			for r := range perRing {
				st := snap.Rings[r].Engine
				fmt.Printf("%s ring %d: %.0f msg/s | tokens %d retransPkts %d memberships %d errs %d\n",
					time.Now().Format("15:04:05.000"),
					r, float64(perRing[r])/elapsed,
					st.TokensProcessed, st.MsgsRetransmitted, st.MembershipChanges,
					snap.Rings[r].ErrorCount)
				perRing[r] = 0
			}
			msgs, bytes = 0, 0
			lastReport = time.Now()
		case <-sig:
			logger.Print("leaving the rings")
			return 0
		}
	}
}

// stridePeers shifts every peer's port pair by delta, laying ring r onto
// its own port set the same way ringd-style deployments do.
func stridePeers(peers map[accelring.ParticipantID]accelring.Peer, delta int) map[accelring.ParticipantID]accelring.Peer {
	out := make(map[accelring.ParticipantID]accelring.Peer, len(peers))
	for id, p := range peers {
		p.DataPort += delta
		p.TokenPort += delta
		out[id] = p
	}
	return out
}

// strideMcast shifts the multicast group's port by delta; an empty group
// (emulated multicast) passes through.
func strideMcast(group string, delta int) (string, error) {
	if group == "" {
		return "", nil
	}
	host, portStr, err := net.SplitHostPort(group)
	if err != nil {
		return "", fmt.Errorf("bad -mcast %q: %v", group, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return "", fmt.Errorf("bad -mcast port %q: %v", portStr, err)
	}
	return net.JoinHostPort(host, strconv.Itoa(port+delta)), nil
}

// parsePeers parses "1=hostA,2=hostB:7421:7422" (same syntax as ringd).
func parsePeers(s string) (map[accelring.ParticipantID]accelring.Peer, error) {
	if s == "" {
		return nil, fmt.Errorf("missing -peers")
	}
	peers := make(map[accelring.ParticipantID]accelring.Peer)
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad -peers entry %q", part)
		}
		idv, err := strconv.ParseUint(kv[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad peer id %q: %v", kv[0], err)
		}
		fields := strings.Split(kv[1], ":")
		peer := accelring.Peer{Host: fields[0], DataPort: 7411, TokenPort: 7412}
		switch len(fields) {
		case 1:
		case 3:
			if peer.DataPort, err = strconv.Atoi(fields[1]); err != nil {
				return nil, fmt.Errorf("bad data port in %q: %v", part, err)
			}
			if peer.TokenPort, err = strconv.Atoi(fields[2]); err != nil {
				return nil, fmt.Errorf("bad token port in %q: %v", part, err)
			}
		default:
			return nil, fmt.Errorf("bad -peers entry %q", part)
		}
		peers[accelring.ParticipantID(idv)] = peer
	}
	return peers, nil
}
