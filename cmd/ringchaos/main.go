// Command ringchaos runs seeded fault-injection campaigns against the
// discrete-event network simulator and checks every run's delivery log
// against the Extended Virtual Synchrony axioms: total order of agreed
// delivery, duplicate freedom, per-sender FIFO, virtual synchrony and
// safe-delivery stability.
//
// Each seed deterministically generates a fault program — loss bursts,
// duplication, reordering delay, a partition with heal — so a failing
// campaign is reproduced exactly by rerunning its seed:
//
//	ringchaos                      # seeds 1..20, default cluster
//	ringchaos -seeds 100           # longer campaign
//	ringchaos -seed 17 -v          # reproduce one failing seed, verbosely
//	ringchaos -nodes 8 -duration 800ms -offered 300
//	ringchaos -engine ringpaxos    # same campaign against the Ring Paxos engine
//
// With -engine ringpaxos the same fault campaigns drive the Ring Paxos
// engine through the simulator's EngineFactory hook, and the log is
// checked against the total-order profile (Ring Paxos guarantees total
// order, FIFO and duplicate freedom but waives the EVS membership
// axioms — see docs/PROTOCOL.md).
//
// The process exits nonzero on the first conformance violation, printing
// the reproducing seed and command line.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"accelring"
	"accelring/internal/core"
	"accelring/internal/evscheck"
	"accelring/internal/faultplan"
	"accelring/internal/netsim"
	"accelring/internal/ringpaxos"
	"accelring/internal/wire"
)

func main() {
	os.Exit(run())
}

func run() int {
	nodes := flag.Int("nodes", 5, "ring size")
	seeds := flag.Int("seeds", 20, "run seeds 1..N")
	seed := flag.Int64("seed", 0, "run exactly this seed (overrides -seeds)")
	duration := flag.Duration("duration", 400*time.Millisecond, "fault window and measurement length")
	offered := flag.Float64("offered", 150, "aggregate offered load, Mbps")
	engineFlag := flag.String("engine", "", "ordering engine: accelring (default) or ringpaxos")
	verbose := flag.Bool("v", false, "print the fault plan and counters per seed")
	flag.Parse()
	if *nodes < 1 || *duration < time.Millisecond || *offered <= 0 {
		fmt.Fprintf(os.Stderr, "ringchaos: need -nodes >= 1, -duration >= 1ms, -offered > 0 (got %d, %s, %g)\n",
			*nodes, *duration, *offered)
		return 2
	}
	engine, err := accelring.ParseEngine(*engineFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ringchaos: %v\n", err)
		return 2
	}

	var campaign []int64
	if *seed != 0 {
		campaign = []int64{*seed}
	} else {
		for s := int64(1); s <= int64(*seeds); s++ {
			campaign = append(campaign, s)
		}
	}

	for _, s := range campaign {
		if !runSeed(s, *nodes, *duration, *offered, engine, *verbose) {
			fmt.Fprintf(os.Stderr, "\nFAIL: seed %d violated conformance\nreproduce with:\n\n"+
				"\tringchaos -seed %d -nodes %d -duration %s -offered %g -engine %s -v\n",
				s, s, *nodes, *duration, *offered, engine)
			return 1
		}
	}
	fmt.Printf("ok: %d seed(s) conformant\n", len(campaign))
	return 0
}

// runSeed executes one seeded campaign and reports conformance.
func runSeed(seed int64, nodes int, dur time.Duration, offered float64, engine accelring.EngineKind, verbose bool) bool {
	// The simulator has no crash/restart path (its nodes never leave), so
	// campaigns draw from every class but crash; the core harness's chaos
	// tests (go test ./internal/core -run Chaos) cover crash/restart.
	plan := faultplan.Generate(seed, nodes, dur, faultplan.ClassAll&^faultplan.ClassCrash)
	cfg := netsim.Config{
		Nodes:       nodes,
		Network:     netsim.Net1G,
		Profile:     netsim.ProfileLibrary,
		Engine:      core.Config{Protocol: core.ProtocolAcceleratedRing},
		PayloadSize: 1350,
		OfferedMbps: offered,
		Service:     wire.ServiceAgreed,
		Warmup:      50 * time.Millisecond,
		Measure:     dur,
		Faults:      &plan,
		Capture:     true,
	}
	check := evscheck.Options{}
	if engine == accelring.EngineRingPaxos {
		cfg.EngineFactory = func(c core.Config) (core.OrderingEngine, error) { return ringpaxos.New(c) }
		check.Profile = evscheck.ProfileTotalOrder
	}
	res, log, err := netsim.RunCapture(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "seed %d: %v\n", seed, err)
		return false
	}
	if verbose {
		fmt.Printf("seed %4d: %s\n", seed, &plan)
		for _, f := range plan.Links {
			fmt.Printf("           link from=%d to=%d loss=%.3f dup=%.3f delayP=%.3f delay=%s window=[%s,%s)\n",
				f.From, f.To, f.Loss, f.Dup, f.DelayProb, f.Delay, f.Start, f.End)
		}
		for _, ev := range plan.NodeEvents() {
			fmt.Printf("           event %s node=%d group=%d at=%s\n", ev.Kind, ev.Node, ev.Group, ev.At)
		}
	}

	// The run is cut off while tokens still circulate, so tails may be
	// incomplete; the checker verifies every delivered prefix.
	vs := evscheck.Check(log, check)
	for _, v := range vs {
		fmt.Fprintf(os.Stderr, "seed %d: conformance violation: %v\n", seed, v)
	}
	status := "ok"
	if len(vs) > 0 {
		status = "FAIL"
	}
	fmt.Printf("seed %4d: %-4s  drops=%-5d dups=%-4d retrans=%-5d deliveries=%-6d digest=%.12s\n",
		seed, status, res.FaultDrops, res.FaultDups, res.Retransmits, res.Samples, evscheck.Digest(log))
	return len(vs) == 0
}
