// Command ringbench regenerates the paper's evaluation figures on the
// discrete-event simulator and prints latency-vs-throughput tables (or CSV)
// for each.
//
// Usage:
//
//	ringbench [-figure figure1|...|figure7|all] [-ablation <id>|all] [-csv] [-quick] [-claims]
//	ringbench -multiring [-rings 1,2,4,8] [-multiring-nodes 3] [-multiring-payload 512] [-multiring-dur 1s] [-engine accelring|ringpaxos]
//
// Examples:
//
//	ringbench -figure figure1          # one figure, full accuracy
//	ringbench -figure all -quick       # all figures, short measurement windows
//	ringbench -figure figure3 -csv     # machine-readable output
//	ringbench -multiring -metrics-json .   # ring-count scaling sweep -> BENCH_multiring.json
//	ringbench -multiring -engine ringpaxos -rings 1,2,4 -metrics-json .   # Ring Paxos sweep -> BENCH_ringpaxos.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"accelring"
	"accelring/internal/bench"
	"accelring/internal/clusterbench"
)

func main() {
	os.Exit(run())
}

func run() int {
	figureID := flag.String("figure", "all", "figure to regenerate (figure1..figure7, or all)")
	ablationID := flag.String("ablation", "", "ablation to run (accel-window, priority-method, jumbo-frames, arrivals, ring-size, or all)")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	quick := flag.Bool("quick", false, "short measurement windows (faster, noisier)")
	claims := flag.Bool("claims", false, "print each figure's paper claim alongside the data")
	metricsJSON := flag.String("metrics-json", "", "directory to write BENCH_<figure>.json reports into (token rotation, per-round sends, retransmissions, drops)")
	multiring := flag.Bool("multiring", false, "run the multi-ring scaling sweep on real memnet clusters instead of the simulator figures")
	ringsFlag := flag.String("rings", "1,2,4,8", "comma-separated ring counts for -multiring")
	multiNodes := flag.Int("multiring-nodes", 3, "participants per ring for -multiring")
	multiPayload := flag.Int("multiring-payload", 512, "payload bytes per message for -multiring")
	multiDur := flag.Duration("multiring-dur", time.Second, "measurement window per -multiring point")
	engineFlag := flag.String("engine", "", "ordering engine for -multiring: accelring (default) or ringpaxos; the ringpaxos sweep writes BENCH_ringpaxos.json")
	flag.Parse()

	engine, err := accelring.ParseEngine(*engineFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ringbench: %v\n", err)
		return 2
	}
	if *engineFlag != "" && !*multiring {
		fmt.Fprintln(os.Stderr, "ringbench: -engine applies to the -multiring cluster sweep (the simulator figures model the accelerated ring)")
		return 2
	}

	scale := bench.FullScale
	if *quick {
		scale = bench.QuickScale
	}

	if *multiring {
		return runMultiRing(*ringsFlag, *multiNodes, *multiPayload, *multiDur, *quick, *metricsJSON, engine)
	}
	if *ablationID != "" {
		return runAblations(*ablationID, *csv, *metricsJSON)
	}

	var figures []bench.Figure
	if *figureID == "all" {
		figures = bench.Figures()
	} else {
		f, ok := bench.FigureByID(*figureID)
		if !ok {
			fmt.Fprintf(os.Stderr, "ringbench: unknown figure %q (figure1..figure7 or all)\n", *figureID)
			return 2
		}
		figures = []bench.Figure{f}
	}

	for _, f := range figures {
		points, err := bench.RunFigure(f, scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ringbench: %v\n", err)
			return 1
		}
		if *csv {
			fmt.Printf("# %s\n", f.Title)
			bench.WriteCSV(os.Stdout, points)
		} else {
			bench.WriteTable(os.Stdout, f.Title, points)
		}
		if *claims {
			fmt.Printf("paper: %s\n", f.PaperClaim)
		}
		if *metricsJSON != "" {
			path, err := bench.WriteJSONReport(*metricsJSON, f.ID, f.Title, points)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ringbench: %v\n", err)
				return 1
			}
			fmt.Printf("metrics report: %s\n", path)
		}
		fmt.Println()
	}
	return 0
}

func runAblations(id string, csv bool, metricsJSON string) int {
	var ablations []bench.Ablation
	if id == "all" {
		ablations = bench.Ablations()
	} else {
		a, ok := bench.AblationByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "ringbench: unknown ablation %q\n", id)
			return 2
		}
		ablations = []bench.Ablation{a}
	}
	for _, a := range ablations {
		points, err := a.Run(bench.AblationScale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ringbench: %v\n", err)
			return 1
		}
		if csv {
			fmt.Printf("# %s\n", a.Title)
			bench.WriteCSV(os.Stdout, points)
		} else {
			bench.WriteTable(os.Stdout, a.Title, points)
		}
		if metricsJSON != "" {
			path, err := bench.WriteJSONReport(metricsJSON, "ablation_"+a.ID, a.Title, points)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ringbench: %v\n", err)
				return 1
			}
			fmt.Printf("metrics report: %s\n", path)
		}
		fmt.Printf("question: %s\n\n", a.Question)
	}
	return 0
}

// runMultiRing executes the ring-count scaling sweep and optionally writes
// BENCH_multiring.json (or BENCH_<engine>.json for a non-default engine).
func runMultiRing(ringsCSV string, nodes, payload int, dur time.Duration, quick bool, metricsJSON string, engine accelring.EngineKind) int {
	var counts []int
	for _, f := range strings.Split(ringsCSV, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 || n > 255 {
			fmt.Fprintf(os.Stderr, "ringbench: bad ring count %q\n", f)
			return 2
		}
		counts = append(counts, n)
	}
	cfg := clusterbench.MultiRingConfig{
		RingCounts:  counts,
		Nodes:       nodes,
		PayloadSize: payload,
		Measure:     dur,
		Engine:      engine,
	}
	if quick {
		cfg.Warmup = 150 * time.Millisecond
		cfg.Measure = dur / 4
	}
	points, err := clusterbench.RunMultiRingSweep(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ringbench: %v\n", err)
		return 1
	}
	clusterbench.WriteMultiRingTable(os.Stdout, points)
	if metricsJSON != "" {
		path, err := clusterbench.WriteMultiRingReport(metricsJSON, engine, points)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ringbench: %v\n", err)
			return 1
		}
		fmt.Printf("metrics report: %s\n", path)
	}
	return 0
}
