// Command ringperf benchmarks the library-based deployment on a real
// transport, mirroring the paper's library-prototype measurements: it runs
// a ring of in-process nodes over UDP loopback sockets (or the in-memory
// transport), injects fixed-size messages at a target aggregate rate, and
// reports achieved throughput and delivery latency.
//
//	ringperf -nodes 4 -rate 200 -size 1350 -duration 5s -protocol accelerated
//	ringperf -transport mem -rate 500 -service safe
//	ringperf -engine ringpaxos -rate 100    # Ring Paxos comparison baseline
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"accelring"
	"accelring/internal/bench"
	"accelring/internal/stats"
)

func main() {
	os.Exit(run())
}

func run() int {
	nodes := flag.Int("nodes", 4, "ring size")
	rate := flag.Float64("rate", 100, "aggregate offered load in Mbps of payload")
	size := flag.Int("size", 1350, "payload size in bytes (>= 16)")
	duration := flag.Duration("duration", 5*time.Second, "measurement duration")
	protoFlag := flag.String("protocol", "accelerated", "accelerated or original")
	engineFlag := flag.String("engine", "", "ordering engine: accelring (default) or ringpaxos")
	serviceFlag := flag.String("service", "agreed", "agreed or safe")
	transportFlag := flag.String("transport", "udp", "udp (loopback sockets) or mem (in-memory)")
	pack := flag.Int("pack", 0, "message packing threshold (0 disables)")
	metricsJSON := flag.String("metrics-json", "", "directory to write a BENCH_<report-id>.json report into (summary point plus per-node metrics snapshots)")
	reportID := flag.String("report-id", "ringperf", "benchmark id for the metrics report file name and header")
	metricsAppend := flag.Bool("metrics-append", false, "append this run's point to an existing report instead of overwriting it (for multi-arm sweeps like batch vs nobatch)")
	udpNoBatch := flag.Bool("udp-nobatch", false, "disable the batched-syscall dataplane (udp transport only): the control arm for syscall amortization measurements")
	series := flag.String("series", "", "series label override for the report point (default transport/protocol/service)")
	flag.Parse()

	logger := log.New(os.Stderr, "ringperf: ", log.LstdFlags)
	if *size < 16 {
		logger.Print("-size must be >= 16")
		return 2
	}
	protocol := accelring.AcceleratedRing
	if *protoFlag == "original" {
		protocol = accelring.OriginalRing
	} else if *protoFlag != "accelerated" {
		logger.Printf("unknown -protocol %q", *protoFlag)
		return 2
	}
	service := accelring.Agreed
	if *serviceFlag == "safe" {
		service = accelring.Safe
	} else if *serviceFlag != "agreed" {
		logger.Printf("unknown -service %q", *serviceFlag)
		return 2
	}
	engine, err := accelring.ParseEngine(*engineFlag)
	if err != nil {
		logger.Print(err)
		return 2
	}

	members := make([]accelring.ParticipantID, *nodes)
	for i := range members {
		members[i] = accelring.ParticipantID(i + 1)
	}
	transports, err := buildTransports(*transportFlag, members, *udpNoBatch)
	if err != nil {
		logger.Print(err)
		return 1
	}
	ring := make([]*accelring.Node, 0, *nodes)
	for i, id := range members {
		node, err := accelring.Start(accelring.Options{
			ID:            id,
			Transport:     transports[i],
			Members:       members,
			Protocol:      protocol,
			Engine:        engine,
			PackThreshold: *pack,
		})
		if err != nil {
			logger.Print(err)
			return 1
		}
		defer node.Close()
		ring = append(ring, node)
	}

	// Receivers: every node samples latency of every delivery.
	var (
		mu       sync.Mutex
		lat      stats.Sample
		received atomic.Uint64
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for _, node := range ring {
		events := node.Events()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case ev, ok := <-events:
					if !ok {
						return
					}
					m, isMsg := ev.(accelring.Message)
					if !isMsg || len(m.Payload) < 8 {
						continue
					}
					received.Add(1)
					sent := int64(binary.BigEndian.Uint64(m.Payload))
					d := time.Duration(time.Now().UnixNano() - sent)
					mu.Lock()
					lat.Add(d)
					mu.Unlock()
				case <-stop:
					return
				}
			}
		}()
	}

	// Senders: each node injects its share of the aggregate rate.
	perNodeMsgs := *rate * 1e6 / 8 / float64(*size) / float64(*nodes)
	interval := time.Duration(float64(time.Second) / perNodeMsgs)
	logger.Printf("%d nodes (%s/%s over %s), %.0f Mbps aggregate = %.0f msg/s/node",
		*nodes, *protoFlag, *serviceFlag, *transportFlag, *rate, perNodeMsgs)

	// Allocation accounting: difference heap and pool counters across the
	// measurement window to report allocs per message and pool recycling.
	poolBefore := accelring.BufferPoolStats()
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)

	start := time.Now()
	var sent atomic.Uint64
	var sendWg sync.WaitGroup
	for _, node := range ring {
		sendWg.Add(1)
		go func() {
			defer sendWg.Done()
			payload := make([]byte, *size)
			ticker := time.NewTicker(interval)
			defer ticker.Stop()
			for time.Since(start) < *duration {
				<-ticker.C
				binary.BigEndian.PutUint64(payload, uint64(time.Now().UnixNano()))
				if err := node.Submit(payload, service); err != nil {
					logger.Printf("submit at %s: %v", node.ID(), err)
					return
				}
				sent.Add(1)
			}
		}()
	}
	sendWg.Wait()
	time.Sleep(300 * time.Millisecond) // drain in-flight deliveries
	close(stop)
	wg.Wait()

	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)
	poolAfter := accelring.BufferPoolStats()
	poolDelta := accelring.PoolSnapshot{
		Hits:     poolAfter.Hits - poolBefore.Hits,
		Misses:   poolAfter.Misses - poolBefore.Misses,
		Puts:     poolAfter.Puts - poolBefore.Puts,
		Discards: poolAfter.Discards - poolBefore.Discards,
	}
	allocsPerMsg := 0.0
	if n := sent.Load(); n > 0 {
		allocsPerMsg = float64(memAfter.Mallocs-memBefore.Mallocs) / float64(n)
	}

	elapsed := time.Since(start).Seconds()
	wantDeliveries := sent.Load() * uint64(*nodes)
	achieved := float64(sent.Load()) * float64(*size) * 8 / 1e6 / elapsed
	fmt.Printf("sent %d messages; %d deliveries (%.1f%% of expected)\n",
		sent.Load(), received.Load(), 100*float64(received.Load())/float64(wantDeliveries))
	fmt.Printf("achieved %.1f Mbps aggregate payload\n", achieved)
	fmt.Printf("allocs/msg %.1f | bufpool hits %d misses %d puts %d discards %d\n",
		allocsPerMsg, poolDelta.Hits, poolDelta.Misses, poolDelta.Puts, poolDelta.Discards)
	mu.Lock()
	defer mu.Unlock()
	if lat.Count() > 0 {
		fmt.Printf("latency: mean=%v p50=%v p99=%v max=%v (n=%d)\n",
			lat.Mean(), lat.Percentile(50), lat.Percentile(99), lat.Max(), lat.Count())
	}
	if *metricsJSON != "" {
		label := *series
		if label == "" {
			label = fmt.Sprintf("%s/%s/%s", *transportFlag, *protoFlag, *serviceFlag)
			if engine == accelring.EngineRingPaxos {
				label = fmt.Sprintf("%s/%s/%s", *transportFlag, engine, *serviceFlag)
			}
			if *udpNoBatch {
				label += "/nobatch"
			}
		}
		cfg := reportConfig{
			dir:    *metricsJSON,
			id:     *reportID,
			label:  label,
			append: *metricsAppend,
		}
		path, point, err := writeMetricsReport(cfg, ring, *rate, achieved, &lat, sent.Load(), elapsed, poolDelta, allocsPerMsg)
		if err != nil {
			logger.Print(err)
			return 1
		}
		if point.RecvSyscalls+point.SendSyscalls > 0 {
			fmt.Printf("syscalls/msg %.3f (recv %d + send %d syscalls; batch mean recv=%.1f send=%.1f)\n",
				point.SyscallsPerMsg, point.RecvSyscalls, point.SendSyscalls,
				point.RecvBatchMean, point.SendBatchMean)
		}
		fmt.Printf("metrics report: %s\n", path)
	}
	return 0
}

// reportConfig names the output file (BENCH_<id>.json in dir), the series
// label for this run's point, and whether to append to an existing report
// (multi-arm sweeps: the batch and nobatch runs land in one file).
type reportConfig struct {
	dir    string
	id     string
	label  string
	append bool
}

// metricsReport is the on-disk report shape: the shared bench schema plus
// every node's full metrics snapshot for the most recent run.
type metricsReport struct {
	bench.JSONReport
	NodeMetrics []accelring.MetricsSnapshot `json:"node_metrics"`
}

// writeMetricsReport emits (or appends to) a BENCH_<id>.json report: one
// summary point in the shared bench schema plus every node's full metrics
// snapshot.
func writeMetricsReport(cfg reportConfig, ring []*accelring.Node, offered, achieved float64, lat *stats.Sample, sent uint64, elapsed float64, pool accelring.PoolSnapshot, allocsPerMsg float64) (string, bench.JSONPoint, error) {
	point := bench.JSONPoint{
		Series:       cfg.label,
		OfferedMbps:  offered,
		AchievedMbps: achieved,
		Stable:       achieved >= 0.97*offered,
		AvgLatencyUs: float64(lat.Mean()) / float64(time.Microsecond),
		P50LatencyUs: float64(lat.Percentile(50)) / float64(time.Microsecond),
		P99LatencyUs: float64(lat.Percentile(99)) / float64(time.Microsecond),
		Samples:      lat.Count(),
		Nodes:        len(ring),
		PoolHits:     pool.Hits,
		PoolMisses:   pool.Misses,
		PoolPuts:     pool.Puts,
		PoolDiscards: pool.Discards,
		AllocsPerMsg: allocsPerMsg,
	}
	snaps := make([]accelring.MetricsSnapshot, 0, len(ring))
	var rotationNs, rotations int64
	var datagrams, recvBatchSum, sendBatchSum, recvBatchCnt, sendBatchCnt uint64
	for _, node := range ring {
		snap, err := node.Metrics()
		if err != nil {
			return "", point, fmt.Errorf("metrics at %s: %w", node.ID(), err)
		}
		snaps = append(snaps, snap)
		point.TokensHandled += snap.Engine.TokensProcessed
		point.Retransmits += snap.Engine.MsgsRetransmitted
		point.PostTokenMsgs += snap.Engine.MsgsPostToken
		point.AccelFlushes += snap.Engine.AccelFlushes
		point.RTRDeferredRounds += snap.Engine.RTRDeferredRounds
		point.FlowThrottledRounds += snap.Engine.FlowThrottledRounds
		if snap.Transport != nil {
			point.SockDrops += snap.Transport.RecvQueueDrops
			point.RecvSyscalls += snap.Transport.RecvSyscalls
			point.SendSyscalls += snap.Transport.SendSyscalls
			datagrams += snap.Transport.DatagramsIn + snap.Transport.DatagramsOut
			recvBatchSum += snap.Transport.RecvBatch.Sum
			recvBatchCnt += snap.Transport.RecvBatch.Count
			sendBatchSum += snap.Transport.SendBatch.Sum
			sendBatchCnt += snap.Transport.SendBatch.Count
			if m := snap.Transport.RecvBatch.Max; m > point.RecvBatchMax {
				point.RecvBatchMax = m
			}
			if m := snap.Transport.SendBatch.Max; m > point.SendBatchMax {
				point.SendBatchMax = m
			}
		}
		if c := int64(snap.Runtime.TokenRotation.Count); c > 0 {
			rotationNs += snap.Runtime.TokenRotation.MeanNs * c
			rotations += c
		}
	}
	if rotations > 0 {
		point.TokenRotationUs = float64(rotationNs) / float64(rotations) / 1e3
	}
	if rounds := float64(point.TokensHandled) / float64(len(ring)); rounds > 0 {
		point.MsgsPerRound = float64(sent) / rounds
	}
	if datagrams > 0 {
		point.SyscallsPerMsg = float64(point.RecvSyscalls+point.SendSyscalls) / float64(datagrams)
	}
	if elapsed > 0 {
		point.MsgsPerSec = float64(sent) / elapsed
	}
	if recvBatchCnt > 0 {
		point.RecvBatchMean = float64(recvBatchSum) / float64(recvBatchCnt)
	}
	if sendBatchCnt > 0 {
		point.SendBatchMean = float64(sendBatchSum) / float64(sendBatchCnt)
	}

	rep := metricsReport{
		JSONReport: bench.JSONReport{
			Benchmark:     cfg.id,
			Title:         "library-based deployment on a real transport",
			GeneratedUnix: time.Now().Unix(),
			Points:        []bench.JSONPoint{point},
		},
		NodeMetrics: snaps,
	}
	path := filepath.Join(cfg.dir, fmt.Sprintf("BENCH_%s.json", cfg.id))
	if cfg.append {
		if prev, err := os.ReadFile(path); err == nil {
			var old metricsReport
			if err := json.Unmarshal(prev, &old); err != nil {
				return "", point, fmt.Errorf("appending to %s: %w", path, err)
			}
			rep.Points = append(old.Points, point)
			rep.NodeMetrics = append(old.NodeMetrics, snaps...)
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", point, err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", point, err
	}
	return path, point, nil
}

// buildTransports creates one transport per member on the chosen backend.
func buildTransports(kind string, members []accelring.ParticipantID, noBatch bool) ([]accelring.Transport, error) {
	switch kind {
	case "mem":
		network := accelring.NewMemoryNetwork(time.Now().UnixNano())
		out := make([]accelring.Transport, len(members))
		for i, id := range members {
			out[i] = network.Endpoint(id)
		}
		return out, nil
	case "udp":
		peers := make(map[accelring.ParticipantID]accelring.Peer, len(members))
		for _, id := range members {
			dp, err := freePort()
			if err != nil {
				return nil, err
			}
			tp, err := freePort()
			if err != nil {
				return nil, err
			}
			peers[id] = accelring.Peer{Host: "127.0.0.1", DataPort: dp, TokenPort: tp}
		}
		out := make([]accelring.Transport, len(members))
		for i, id := range members {
			tr, err := accelring.NewUDPTransport(accelring.UDPOptions{ID: id, Peers: peers, DisableBatch: noBatch})
			if err != nil {
				return nil, err
			}
			out[i] = tr
		}
		return out, nil
	default:
		return nil, fmt.Errorf("unknown -transport %q (udp or mem)", kind)
	}
}

func freePort() (int, error) {
	c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return 0, err
	}
	defer c.Close()
	return c.LocalAddr().(*net.UDPAddr).Port, nil
}
