// Command ringload is a load generator and latency probe for a running
// ringd deployment: it connects to a local daemon, joins a benchmark
// group, injects fixed-size messages at a target rate, and reports
// delivered throughput and latency percentiles for messages it originated
// (timestamps ride in the payload, so any number of ringload instances can
// run against the same group from different daemons — this mirrors the
// paper's benchmark clients).
//
// Example, 8 daemons each with one sender at 100 Mbps aggregate / 8:
//
//	ringload -socket /tmp/ringd.sock -name probe1 -rate 1157 -size 1350 -duration 10s -service agreed
//
// With -mock-clients N it instead benchmarks the daemon's client fan-out
// tier at serving scale: it self-hosts a single-node ring plus daemon,
// connects N raw IPC subscribers spread across -mock-groups groups (each
// interested in an -interest fraction), optionally forces some of them
// -slow-factor× too slow, floods the groups at -rate, and reports
// delivered throughput, healthy-client delivery ratio and shed counts —
// optionally sweeping client counts and interest fractions into a JSON
// benchmark file:
//
//	ringload -mock-clients 10000 -mock-groups 64 -interest 0.25 \
//	    -slow-clients 1 -slow-factor 100 -fanout-policy shed \
//	    -rate 2000 -duration 10s -bench-json BENCH_fanout.json
package main

import (
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"accelring/internal/client"
	"accelring/internal/stats"
	"accelring/internal/wire"
)

func main() {
	os.Exit(run())
}

func run() int {
	socket := flag.String("socket", "/tmp/ringd.sock", "daemon Unix socket")
	name := flag.String("name", "ringload", "client name (unique per daemon)")
	group := flag.String("group", "bench", "benchmark group")
	rate := flag.Float64("rate", 1000, "messages per second to inject")
	size := flag.Int("size", 1350, "payload size in bytes (>= 16)")
	duration := flag.Duration("duration", 10*time.Second, "measurement duration")
	serviceFlag := flag.String("service", "agreed", "delivery service: fifo, causal, agreed or safe")
	recvOnly := flag.Bool("recv-only", false, "only receive and count; inject nothing")
	mockClients := flag.Int("mock-clients", 0, "fan-out mode: number of mock subscriber clients (0 = classic load mode)")
	mockGroups := flag.Int("mock-groups", 16, "fan-out mode: number of groups")
	interest := flag.Float64("interest", 0.25, "fan-out mode: fraction of groups each mock client subscribes to")
	slowClients := flag.Int("slow-clients", 0, "fan-out mode: how many mock clients read too slowly")
	slowFactor := flag.Int("slow-factor", 100, "fan-out mode: how many times too slow the slow clients read")
	fanoutPolicy := flag.String("fanout-policy", "shed", "fan-out mode: backpressure policy (disconnect, shed, block)")
	fanoutQueue := flag.Int("fanout-queue", 0, "fan-out mode: per-client delivery queue depth (0 = default)")
	benchJSON := flag.String("bench-json", "", "fan-out mode: write scenario results to this JSON file")
	sweepClients := flag.String("sweep-clients", "", "fan-out mode: comma-separated client counts to sweep (overrides -mock-clients after the first)")
	sweepInterest := flag.String("sweep-interest", "", "fan-out mode: comma-separated interest fractions to sweep")
	requireHealthy := flag.Float64("require-healthy", 0, "fan-out mode: fail unless every scenario's healthy delivery ratio reaches this (e.g. 0.99)")
	connectWait := flag.Duration("connect-wait", 0, "retry the initial daemon connection with capped backoff for this long (daemon may still be starting)")
	reconnect := flag.Bool("reconnect", false, "survive daemon restarts: auto-reconnect with session resume instead of exiting on connection loss")
	requireRecovery := flag.Bool("require-recovery", false, "fail unless the connection survived at least one daemon outage and delivered traffic afterwards (implies -reconnect)")
	flag.Parse()
	if *requireRecovery {
		*reconnect = true
	}

	logger := log.New(os.Stderr, "ringload: ", log.LstdFlags)
	if *mockClients > 0 || *sweepClients != "" {
		return runFanout(logger, fanoutOpts{
			clients:        *mockClients,
			groups:         *mockGroups,
			interest:       *interest,
			slowClients:    *slowClients,
			slowFactor:     *slowFactor,
			policy:         *fanoutPolicy,
			queue:          *fanoutQueue,
			rate:           *rate,
			size:           *size,
			duration:       *duration,
			benchJSON:      *benchJSON,
			sweepClients:   *sweepClients,
			sweepInterest:  *sweepInterest,
			requireHealthy: *requireHealthy,
		})
	}
	if *size < 16 {
		logger.Print("-size must be at least 16")
		return 2
	}
	var service wire.Service
	switch *serviceFlag {
	case "fifo":
		service = wire.ServiceFIFO
	case "causal":
		service = wire.ServiceCausal
	case "agreed":
		service = wire.ServiceAgreed
	case "safe":
		service = wire.ServiceSafe
	default:
		logger.Printf("unknown -service %q", *serviceFlag)
		return 2
	}

	conn, err := client.Dial("unix", *socket, *name, client.Options{
		ConnectWait: *connectWait,
		Reconnect:   *reconnect,
	})
	if err != nil {
		logger.Print(err)
		return 1
	}
	defer conn.Close()
	if err := conn.Join(*group); err != nil {
		logger.Print(err)
		return 1
	}
	logger.Printf("connected as %s, group %q, %.0f msg/s × %dB for %v",
		conn.PrivateName(), *group, *rate, *size, *duration)

	var lat stats.Sample
	hist := stats.NewHistogram(100*time.Microsecond, 10)
	received := 0
	recvBytes := 0
	gaps := 0
	sawReconnect := false
	recoveredTraffic := false
	done := make(chan struct{})

	go func() {
		defer close(done)
		for ev := range conn.Events() {
			switch m := ev.(type) {
			case client.Message:
				received++
				recvBytes += len(m.Payload)
				if sawReconnect {
					recoveredTraffic = true
				}
				if m.Sender == conn.PrivateName() && len(m.Payload) >= 8 {
					sent := int64(binary.BigEndian.Uint64(m.Payload))
					d := time.Duration(time.Now().UnixNano() - sent)
					lat.Add(d)
					hist.Add(d)
				}
			case client.Disconnected:
				logger.Printf("disconnected: %v", m.Err)
			case client.Reconnected:
				sawReconnect = true
				logger.Printf("reconnected after %d attempts (session resumed: %v)", m.Attempts, m.Resumed)
			case client.Gap:
				gaps++
				if m.Group != "" {
					logger.Printf("gap: %d messages of group %q lost", m.Missed, m.Group)
				} else {
					logger.Print("gap: stream continuity lost (fresh session or unknown loss)")
				}
			case client.Draining:
				logger.Print("daemon draining")
			}
		}
	}()

	start := time.Now()
	if !*recvOnly {
		payload := make([]byte, *size)
		interval := time.Duration(float64(time.Second) / *rate)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for time.Since(start) < *duration {
			<-ticker.C
			binary.BigEndian.PutUint64(payload, uint64(time.Now().UnixNano()))
			if err := conn.Multicast(service, payload, *group); err != nil {
				if errors.Is(err, client.ErrReconnecting) {
					continue // daemon outage in progress; the supervisor is redialing
				}
				logger.Printf("multicast: %v", err)
				return 1
			}
		}
	} else {
		time.Sleep(*duration)
	}
	// Allow in-flight deliveries to drain.
	time.Sleep(500 * time.Millisecond)
	conn.Close()
	<-done

	elapsed := time.Since(start).Seconds()
	fmt.Printf("received %d messages (%.1f Mbps payload) in %.1fs\n",
		received, float64(recvBytes)*8/1e6/elapsed, elapsed)
	if *reconnect {
		fmt.Printf("reconnects %d resumes %d gaps %d\n", conn.Reconnects(), conn.Resumes(), gaps)
	}
	if *requireRecovery {
		if !sawReconnect || !recoveredTraffic {
			logger.Printf("recovery check FAILED: reconnected=%v traffic after reconnect=%v",
				sawReconnect, recoveredTraffic)
			return 1
		}
		logger.Print("recovery check passed")
	}
	if lat.Count() > 0 {
		fmt.Printf("self-latency: n=%d mean=%v p50=%v p99=%v max=%v\n",
			lat.Count(), lat.Mean(), lat.Percentile(50), lat.Percentile(99), lat.Max())
		fmt.Println("latency histogram:")
		hist.Buckets(func(upper time.Duration, count uint64) {
			if count == 0 {
				return
			}
			if upper == 0 {
				fmt.Printf("  %10s  %d\n", "overflow", count)
				return
			}
			fmt.Printf("  <%9v  %d\n", upper, count)
		})
	}
	return 0
}
