package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"accelring"
	"accelring/internal/client"
	"accelring/internal/daemon"
	"accelring/internal/fanout"
	"accelring/internal/ipc"
	"accelring/internal/wire"
)

// fanoutOpts configures the mock-client fan-out mode: a self-hosted
// single-node ring plus daemon, with -mock-clients raw IPC subscribers
// exercising the daemon's delivery tier at serving scale.
type fanoutOpts struct {
	clients     int
	groups      int
	interest    float64
	slowClients int
	slowFactor  int
	policy      string
	queue       int
	rate        float64
	size        int
	duration    time.Duration

	benchJSON      string
	sweepClients   string
	sweepInterest  string
	requireHealthy float64
}

// benchPoint is one scenario's results, as recorded in BENCH_fanout.json.
type benchPoint struct {
	Subscribers int     `json:"subscribers"`
	Groups      int     `json:"groups"`
	Interest    float64 `json:"interest"`
	Policy      string  `json:"policy"`
	QueueDepth  int     `json:"queue_depth"`
	Rate        float64 `json:"rate"`
	DurationSec float64 `json:"duration_sec"`
	SlowClients int     `json:"slow_clients"`
	SlowFactor  int     `json:"slow_factor,omitempty"`

	Sent            int     `json:"sent"`
	Expected        uint64  `json:"expected"`
	Delivered       uint64  `json:"delivered"`
	DeliveredPerSec float64 `json:"delivered_per_sec"`
	// HealthyRatio is delivered/expected over the non-slow subscribers:
	// 1.0 means the stragglers cost the healthy audience nothing.
	HealthyRatio  float64 `json:"healthy_ratio"`
	SlowDelivered uint64  `json:"slow_delivered,omitempty"`
	Shed          uint64  `json:"shed"`
	Disconnects   uint64  `json:"disconnects"`
	MaxBacklog    int     `json:"max_backlog"`
}

func runFanout(logger *log.Logger, o fanoutOpts) int {
	clientCounts, err := parseIntList(o.sweepClients, o.clients)
	if err != nil {
		logger.Printf("bad -sweep-clients: %v", err)
		return 2
	}
	interests, err := parseFloatList(o.sweepInterest, o.interest)
	if err != nil {
		logger.Printf("bad -sweep-interest: %v", err)
		return 2
	}
	for _, fr := range interests {
		if fr <= 0 || fr > 1 {
			logger.Printf("bad -interest %v (want 0 < f <= 1)", fr)
			return 2
		}
	}
	if o.groups < 1 {
		logger.Printf("bad -mock-groups %d (want >= 1)", o.groups)
		return 2
	}
	maxClients := 0
	for _, n := range clientCounts {
		if n > maxClients {
			maxClients = n
		}
	}
	// Every mock client is one socket on each side, plus headroom.
	raiseFDLimit(logger, uint64(2*maxClients+512))

	var points []benchPoint
	for _, nc := range clientCounts {
		for _, fr := range interests {
			sc := o
			sc.clients, sc.interest = nc, fr
			pt, err := fanoutScenario(logger, sc)
			if err != nil {
				logger.Printf("scenario clients=%d interest=%.2f: %v", nc, fr, err)
				return 1
			}
			points = append(points, pt)
			fmt.Printf("clients=%d groups=%d interest=%.2f policy=%s: sent %d, delivered %d/%d (%.0f msg/s), healthy %.3f, shed %d, disconnects %d, maxBacklog %d\n",
				pt.Subscribers, pt.Groups, pt.Interest, pt.Policy, pt.Sent,
				pt.Delivered, pt.Expected, pt.DeliveredPerSec, pt.HealthyRatio,
				pt.Shed, pt.Disconnects, pt.MaxBacklog)
		}
	}

	if o.benchJSON != "" {
		data, err := json.MarshalIndent(points, "", "  ")
		if err == nil {
			err = os.WriteFile(o.benchJSON, append(data, '\n'), 0644)
		}
		if err != nil {
			logger.Printf("writing %s: %v", o.benchJSON, err)
			return 1
		}
		logger.Printf("wrote %d points to %s", len(points), o.benchJSON)
	}
	if o.requireHealthy > 0 {
		for _, pt := range points {
			if pt.HealthyRatio < o.requireHealthy {
				logger.Printf("healthy ratio %.3f below required %.3f (clients=%d interest=%.2f)",
					pt.HealthyRatio, o.requireHealthy, pt.Subscribers, pt.Interest)
				return 1
			}
		}
	}
	return 0
}

// mockClient is one raw IPC subscriber: unlike the client library it has
// no buffered event channel, so a slow reader exerts real backpressure.
type mockClient struct {
	conn      net.Conn
	private   string
	interests []int // group indices
	slowPause time.Duration

	delivered atomic.Uint64
}

func (m *mockClient) readLoop(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		typ, _, err := ipc.ReadFrame(m.conn)
		if err != nil {
			return
		}
		if typ == ipc.EvtMessage {
			m.delivered.Add(1)
			if m.slowPause > 0 {
				time.Sleep(m.slowPause)
			}
		}
	}
}

func fanoutScenario(logger *log.Logger, o fanoutOpts) (benchPoint, error) {
	policy, err := fanout.ParsePolicy(o.policy)
	if err != nil {
		return benchPoint{}, err
	}
	if o.groups < 1 {
		return benchPoint{}, fmt.Errorf("need at least one group")
	}

	// Self-hosted single-node ring and daemon. Clients normally attach
	// over a temp Unix socket, the production transport; at serving scale
	// the paired socket fds (one per side per client, all in this one
	// process) outgrow RLIMIT_NOFILE, so beyond the fd budget the
	// scenario switches to in-memory pipes, which cost no fds and carry
	// the same synchronous backpressure.
	net0 := accelring.NewMemoryNetwork(1)
	node, err := accelring.Start(accelring.Options{
		ID:        1,
		Transport: net0.Endpoint(1),
		Members:   []accelring.ParticipantID{1},
	})
	if err != nil {
		return benchPoint{}, err
	}
	var ln net.Listener
	var dial func() (net.Conn, error)
	var lim syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim); err == nil && uint64(2*o.clients+512) > lim.Cur {
		pl := newPipeListener()
		ln = pl
		dial = pl.Dial
		logger.Printf("%d clients need ~%d fds but the limit is %d; using in-memory pipe transport",
			o.clients, 2*o.clients+512, lim.Cur)
	} else {
		dir, err := os.MkdirTemp("", "ringload-fanout")
		if err != nil {
			node.Close()
			return benchPoint{}, err
		}
		defer os.RemoveAll(dir)
		sock := filepath.Join(dir, "d.sock")
		ln, err = net.Listen("unix", sock)
		if err != nil {
			node.Close()
			return benchPoint{}, err
		}
		dial = func() (net.Conn, error) {
			// Retry transient dial failures under accept-queue pressure.
			var conn net.Conn
			var err error
			for attempt := 0; attempt < 50; attempt++ {
				conn, err = net.Dial("unix", sock)
				if err == nil {
					return conn, nil
				}
				time.Sleep(time.Duration(10+attempt) * time.Millisecond)
			}
			return nil, err
		}
	}
	d, err := daemon.New(daemon.Config{
		Node:     node,
		Listener: ln,
		Fanout:   fanout.Config{QueueDepth: o.queue, Policy: policy},
	})
	if err != nil {
		node.Close()
		return benchPoint{}, err
	}
	defer d.Close()

	// Interest assignment: client i subscribes to k of the G groups,
	// rotated by i so each group carries ~N·k/G subscribers.
	k := int(o.interest*float64(o.groups) + 0.5)
	if k < 1 {
		k = 1
	}
	if k > o.groups {
		k = o.groups
	}
	groupName := func(g int) string { return fmt.Sprintf("fan%04d", g) }

	// The slow clients' pause is slowFactor× their expected per-message
	// inter-arrival time, making them slowFactor× too slow to keep up.
	perClientRate := o.rate * float64(k) / float64(o.groups)
	var slowPause time.Duration
	if o.slowFactor > 1 && perClientRate > 0 {
		slowPause = time.Duration(float64(time.Second) * float64(o.slowFactor) / perClientRate)
		if slowPause > time.Second {
			slowPause = time.Second
		}
	}

	logger.Printf("connecting %d mock clients (%d groups, %d interests each, %d slow ×%d, policy %s, queue %d)",
		o.clients, o.groups, k, o.slowClients, o.slowFactor, policy, o.queue)
	clients := make([]*mockClient, o.clients)
	var connectWg sync.WaitGroup
	connectErr := make(chan error, 1)
	sem := make(chan struct{}, 256) // bounded connect concurrency
	for i := 0; i < o.clients; i++ {
		connectWg.Add(1)
		go func(i int) {
			defer connectWg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			m, err := connectMock(dial, i, o.groups, k)
			if err != nil {
				select {
				case connectErr <- fmt.Errorf("mock client %d: %w", i, err):
				default:
				}
				return
			}
			if i < o.slowClients {
				m.slowPause = slowPause
			}
			clients[i] = m
		}(i)
	}
	connectWg.Wait()
	select {
	case err := <-connectErr:
		return benchPoint{}, err
	default:
	}
	var readWg sync.WaitGroup
	for _, m := range clients {
		readWg.Add(1)
		go m.readLoop(&readWg)
	}

	// Wait until the daemon has registered every subscription before
	// opening the publisher's tap.
	pubConn, err := dial()
	if err != nil {
		return benchPoint{}, err
	}
	pub, err := client.New(pubConn, "publisher")
	if err != nil {
		return benchPoint{}, err
	}
	defer pub.Close()
	wantSubs := o.clients * k
	for deadline := time.Now().Add(30 * time.Second); ; {
		snap, err := pub.Stats()
		if err != nil {
			return benchPoint{}, err
		}
		if snap.Subscriptions >= wantSubs {
			break
		}
		if !time.Now().Before(deadline) {
			return benchPoint{}, fmt.Errorf("subscriptions stuck at %d/%d", snap.Subscriptions, wantSubs)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Publish round-robin across groups at the target rate, batching
	// ticks when the interval would outrun the timer.
	payload := make([]byte, o.size)
	batch := 1
	interval := time.Duration(float64(time.Second) / o.rate)
	for interval < time.Millisecond {
		batch *= 2
		interval *= 2
	}
	sentPerGroup := make([]int, o.groups)
	sent := 0
	start := time.Now()
	ticker := time.NewTicker(interval)
	for time.Since(start) < o.duration {
		<-ticker.C
		for b := 0; b < batch; b++ {
			g := sent % o.groups
			if err := pub.Multicast(wire.ServiceAgreed, payload, groupName(g)); err != nil {
				ticker.Stop()
				return benchPoint{}, fmt.Errorf("multicast: %v", err)
			}
			sentPerGroup[g]++
			sent++
		}
	}
	ticker.Stop()
	elapsed := time.Since(start)

	// Let deliveries drain: totals settle or the drain window closes
	// (slow clients under the block policy may never settle by design).
	sum := func() uint64 {
		var total uint64
		for _, m := range clients {
			if m != nil {
				total += m.delivered.Load()
			}
		}
		return total
	}
	last := sum()
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		time.Sleep(300 * time.Millisecond)
		cur := sum()
		if cur == last {
			break
		}
		last = cur
	}

	snap, err := pub.Stats()
	if err != nil {
		return benchPoint{}, err
	}
	var nodeSnap accelring.MetricsSnapshot
	maxBacklog := 0
	if err := json.Unmarshal(snap.Node, &nodeSnap); err == nil && nodeSnap.Fanout != nil {
		maxBacklog = nodeSnap.Fanout.MaxBacklog
	}

	// Per-client expectation from the actual assignment — exact, not a
	// fraction-of-total approximation.
	var expected, delivered, healthyExp, healthyDel, slowDel uint64
	for i, m := range clients {
		if m == nil {
			continue
		}
		var exp uint64
		for _, g := range m.interests {
			exp += uint64(sentPerGroup[g])
		}
		del := m.delivered.Load()
		expected += exp
		delivered += del
		if i < o.slowClients {
			slowDel += del
		} else {
			healthyExp += exp
			healthyDel += del
		}
	}
	healthyRatio := 1.0
	if healthyExp > 0 {
		healthyRatio = float64(healthyDel) / float64(healthyExp)
	}

	for _, m := range clients {
		if m != nil {
			m.conn.Close()
		}
	}
	readWg.Wait()

	return benchPoint{
		Subscribers:     o.clients,
		Groups:          o.groups,
		Interest:        o.interest,
		Policy:          policy.String(),
		QueueDepth:      o.queue,
		Rate:            o.rate,
		DurationSec:     elapsed.Seconds(),
		SlowClients:     o.slowClients,
		SlowFactor:      o.slowFactor,
		Sent:            sent,
		Expected:        expected,
		Delivered:       delivered,
		DeliveredPerSec: float64(delivered) / elapsed.Seconds(),
		HealthyRatio:    healthyRatio,
		SlowDelivered:   slowDel,
		Shed:            snap.Shed,
		Disconnects:     snap.Disconnects,
		MaxBacklog:      maxBacklog,
	}, nil
}

// connectMock attaches one raw IPC client and subscribes it to its k
// interest groups (rotated by index). The handshake carries a deadline so
// a wedged daemon surfaces as an error instead of a silent hang.
func connectMock(dial func() (net.Conn, error), idx, groups, k int) (*mockClient, error) {
	conn, err := dial()
	if err != nil {
		return nil, err
	}
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	if err := ipc.WriteFrame(conn, ipc.CmdConnect, ipc.PutString(nil, fmt.Sprintf("m%d", idx))); err != nil {
		conn.Close()
		return nil, err
	}
	typ, body, err := ipc.ReadFrame(conn)
	if err != nil || typ != ipc.EvtWelcome {
		conn.Close()
		return nil, fmt.Errorf("welcome: typ=%d err=%v", typ, err)
	}
	conn.SetDeadline(time.Time{})
	private, _, err := ipc.GetString(body)
	if err != nil {
		conn.Close()
		return nil, err
	}
	m := &mockClient{conn: conn, private: private, interests: make([]int, 0, k)}
	for j := 0; j < k; j++ {
		g := (idx + j) % groups
		if err := ipc.WriteFrame(conn, ipc.CmdSubscribe, ipc.PutString(nil, fmt.Sprintf("fan%04d", g))); err != nil {
			conn.Close()
			return nil, err
		}
		m.interests = append(m.interests, g)
	}
	return m, nil
}

// pipeListener is an in-process net.Listener over net.Pipe: Dial hands
// one pipe end to Accept and returns the other. Connections cost no file
// descriptors, so mock-client counts can exceed RLIMIT_NOFILE; the pipe
// is synchronous, so a stalled reader blocks the daemon's writer exactly
// like a full socket buffer.
type pipeListener struct {
	ch   chan net.Conn
	done chan struct{}
	once sync.Once
}

func newPipeListener() *pipeListener {
	return &pipeListener{ch: make(chan net.Conn), done: make(chan struct{})}
}

func (l *pipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *pipeListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

func (l *pipeListener) Addr() net.Addr { return pipeAddr{} }

func (l *pipeListener) Dial() (net.Conn, error) {
	client, server := net.Pipe()
	select {
	case l.ch <- server:
		return client, nil
	case <-l.done:
		client.Close()
		server.Close()
		return nil, net.ErrClosed
	}
}

type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "pipe" }

// raiseFDLimit lifts RLIMIT_NOFILE toward need; tens of thousands of mock
// clients are tens of thousands of sockets on each side.
func raiseFDLimit(logger *log.Logger, need uint64) {
	var lim syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim); err != nil || lim.Cur >= need {
		return
	}
	want := need
	if want > lim.Max {
		want = lim.Max
	}
	lim.Cur = want
	if err := syscall.Setrlimit(syscall.RLIMIT_NOFILE, &lim); err != nil {
		logger.Printf("cannot raise fd limit to %d: %v (continuing)", want, err)
	} else if want < need {
		logger.Printf("fd limit capped at hard max %d (wanted %d); large scenarios fall back to pipes", want, need)
	}
}

func parseIntList(s string, fallback int) ([]int, error) {
	if s == "" {
		return []int{fallback}, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad entry %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloatList(s string, fallback float64) ([]float64, error) {
	if s == "" {
		return []float64{fallback}, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v <= 0 || v > 1 {
			return nil, fmt.Errorf("bad entry %q (want 0 < f <= 1)", part)
		}
		out = append(out, v)
	}
	return out, nil
}
