module accelring

go 1.23
