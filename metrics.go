package accelring

import (
	"time"

	"accelring/internal/fanout"
	"accelring/internal/metrics"
	"accelring/internal/transport"
)

// HistogramSnapshot re-exports the metrics histogram snapshot so
// applications can consume Node metrics without importing internal
// packages.
type HistogramSnapshot = metrics.HistogramSnapshot

// TransportSnapshot re-exports the transport loss-accounting snapshot.
type TransportSnapshot = transport.Snapshot

// PoolSnapshot re-exports the packet buffer pool counters.
type PoolSnapshot = transport.PoolSnapshot

// FanoutSnapshot re-exports the client fan-out tier's aggregate counters
// (subscriber/subscription totals, delivery and shed accounting).
type FanoutSnapshot = fanout.TierSnapshot

// FanoutSource supplies a fan-out tier snapshot; *fanout.Tier implements
// it. Attach one with Node.AttachFanout.
type FanoutSource interface {
	Snapshot() FanoutSnapshot
}

// RuntimeMetrics is the runtime-loop section of a MetricsSnapshot: what
// the protocol goroutine and its timers observed, as opposed to the
// engine's protocol-level counters.
type RuntimeMetrics struct {
	// Packets handled, by wire kind, after successful decode.
	PacketsData   uint64 `json:"packets_data"`
	PacketsToken  uint64 `json:"packets_token"`
	PacketsJoin   uint64 `json:"packets_join"`
	PacketsCommit uint64 `json:"packets_commit"`
	// DecodeFailures counts received packets that failed header or body
	// decoding (each also lands in the error ring).
	DecodeFailures uint64 `json:"decode_failures"`
	// EncodeFailures and SendFailures count engine actions that could not
	// be carried out.
	EncodeFailures uint64 `json:"encode_failures"`
	SendFailures   uint64 `json:"send_failures"`
	// SendBursts counts runs of consecutive SendData actions flushed
	// through the transport's batched multicast path; SendBurstMsgs is the
	// total frames those bursts carried (so SendBurstMsgs/SendBursts is
	// the mean burst length the engine produced). Zero when the transport
	// has no batch path.
	SendBursts    uint64 `json:"send_bursts"`
	SendBurstMsgs uint64 `json:"send_burst_msgs"`
	// TimerFires counts timer expiries executed; TimerStaleDrops counts
	// expiries discarded because the timer was re-armed or cancelled while
	// the fire was in flight; TimerCancels counts CancelTimer actions.
	TimerFires      uint64 `json:"timer_fires"`
	TimerStaleDrops uint64 `json:"timer_stale_drops"`
	TimerCancels    uint64 `json:"timer_cancels"`
	// Submits and SubmitErrors count application submissions accepted and
	// rejected (backlog full, invalid service) by the engine.
	Submits      uint64 `json:"submits"`
	SubmitErrors uint64 `json:"submit_errors"`
	// EventsDelivered counts ordered events handed to the application.
	EventsDelivered uint64 `json:"events_delivered"`
	// WatchdogChecks and WatchdogStalls count liveness watchdog samples
	// and the subset that found the protocol loop frozen with work
	// pending. Zero when Options.WatchdogInterval is unset.
	WatchdogChecks uint64 `json:"watchdog_checks,omitempty"`
	WatchdogStalls uint64 `json:"watchdog_stalls,omitempty"`
	// Instantaneous queue depths at snapshot time.
	EventQueueLen int `json:"event_queue_len"`
	DataQueueLen  int `json:"data_queue_len"`
	TokenQueueLen int `json:"token_queue_len"`
	// TokenRotation is the distribution of intervals between consecutive
	// accepted tokens at this node — the token rotation time the paper's
	// evaluation is built around (Sections IV–V). TokenHandle is the time
	// spent processing one accepted token (decode through action
	// execution), the per-hop cost of a rotation.
	TokenRotation HistogramSnapshot `json:"token_rotation"`
	TokenHandle   HistogramSnapshot `json:"token_handle"`
}

// MetricsSnapshot is a full observability snapshot of a running node:
// engine counters, runtime-loop counters, transport loss accounting, and
// the recent-error ring. It marshals directly to JSON.
type MetricsSnapshot struct {
	// EngineName identifies the ordering engine producing the Engine
	// counters ("accelring" or "ringpaxos").
	EngineName string `json:"engine_name"`
	Engine     Stats  `json:"engine"`
	// Paxos carries the Ring Paxos engine's protocol-specific counters
	// (view installs, phase rounds, quorum latency); nil for accelring.
	Paxos     *PaxosStats        `json:"paxos,omitempty"`
	Runtime   RuntimeMetrics     `json:"runtime"`
	Transport *TransportSnapshot `json:"transport,omitempty"`
	// BufferPool is the process-wide packet buffer pool's recycling
	// counters. The pool is shared by every node and built-in transport in
	// the process, so the numbers are global, not per-node: a hit rate
	// near 1 means the receive path is running allocation-free.
	BufferPool PoolSnapshot `json:"buffer_pool"`
	// Fanout is the client fan-out tier's aggregate snapshot, present
	// only when a daemon (or other server) attached its tier via
	// AttachFanout: subscriber and subscription totals, queue delivery
	// counters, and shed/disconnect accounting for slow clients.
	Fanout *FanoutSnapshot `json:"fanout,omitempty"`
	// ErrorCount counts every error the protocol loop observed;
	// RecentErrors holds the most recent ones, oldest first.
	ErrorCount   uint64   `json:"error_count"`
	RecentErrors []string `json:"recent_errors,omitempty"`
}

// nodeMetrics is the runtime's hot-path instrumentation: all atomic, so
// the protocol goroutine writes without locks and any goroutine snapshots
// without stopping it.
type nodeMetrics struct {
	pktData, pktToken, pktJoin, pktCommit metrics.Counter
	decodeFailures                        metrics.Counter
	encodeFailures                        metrics.Counter
	sendFailures                          metrics.Counter
	sendBursts                            metrics.Counter
	sendBurstMsgs                         metrics.Counter
	timerFires                            metrics.Counter
	timerStale                            metrics.Counter
	timerCancels                          metrics.Counter
	submits                               metrics.Counter
	submitErrors                          metrics.Counter
	eventsDelivered                       metrics.Counter
	watchdogChecks                        metrics.Counter
	watchdogStalls                        metrics.Counter
	errors                                metrics.Counter
	tokenRotation                         *metrics.Histogram
	tokenHandle                           *metrics.Histogram
}

func newNodeMetrics() *nodeMetrics {
	return &nodeMetrics{
		// Rotation spans fast-LAN rings (~hundreds of µs) through WAN-ish
		// or degraded ones: 50µs..~1.6s.
		tokenRotation: metrics.NewHistogram(50*time.Microsecond, 15),
		// Per-token processing cost: 1µs..~32ms.
		tokenHandle: metrics.NewHistogram(time.Microsecond, 15),
	}
}

// runtimeSnapshot assembles the RuntimeMetrics section; queue depths are
// read live from the node's channels.
func (m *nodeMetrics) runtimeSnapshot(n *Node) RuntimeMetrics {
	return RuntimeMetrics{
		PacketsData:     m.pktData.Load(),
		PacketsToken:    m.pktToken.Load(),
		PacketsJoin:     m.pktJoin.Load(),
		PacketsCommit:   m.pktCommit.Load(),
		DecodeFailures:  m.decodeFailures.Load(),
		EncodeFailures:  m.encodeFailures.Load(),
		SendFailures:    m.sendFailures.Load(),
		SendBursts:      m.sendBursts.Load(),
		SendBurstMsgs:   m.sendBurstMsgs.Load(),
		TimerFires:      m.timerFires.Load(),
		TimerStaleDrops: m.timerStale.Load(),
		TimerCancels:    m.timerCancels.Load(),
		Submits:         m.submits.Load(),
		SubmitErrors:    m.submitErrors.Load(),
		EventsDelivered: m.eventsDelivered.Load(),
		WatchdogChecks:  m.watchdogChecks.Load(),
		WatchdogStalls:  m.watchdogStalls.Load(),
		EventQueueLen:   len(n.events),
		DataQueueLen:    len(n.tr.Data()),
		TokenQueueLen:   len(n.tr.Token()),
		TokenRotation:   m.tokenRotation.Snapshot(),
		TokenHandle:     m.tokenHandle.Snapshot(),
	}
}

// Metrics returns a full observability snapshot: the engine's protocol
// counters (fetched synchronously from the protocol loop), the runtime's
// atomic counters, and the transport's loss accounting when available.
func (n *Node) Metrics() (MetricsSnapshot, error) {
	st, err := n.statsSnapshot()
	if err != nil {
		return MetricsSnapshot{}, err
	}
	snap := MetricsSnapshot{
		EngineName: string(n.engine),
		Engine:     st.stats,
		Paxos:      st.paxos,
		Runtime:    n.nm.runtimeSnapshot(n),
		BufferPool: transport.Buffers.Snapshot(),
		ErrorCount: n.nm.errors.Load(),
	}
	if src, ok := n.tr.(transport.MetricsSource); ok {
		ts := src.MetricsSnapshot()
		snap.Transport = &ts
	}
	n.mu.Lock()
	fanoutSrc := n.fanoutSrc
	n.mu.Unlock()
	if fanoutSrc != nil {
		fs := fanoutSrc.Snapshot()
		snap.Fanout = &fs
	}
	for _, e := range n.RecentErrors() {
		snap.RecentErrors = append(snap.RecentErrors, e.Error())
	}
	return snap, nil
}

// AttachFanout registers a client fan-out tier as a metrics source, so
// Metrics snapshots (and everything built on them — CmdStats, ringmon,
// BENCH reports) carry the serving tier's subscription and shedding
// counters alongside the protocol's. Attach nil to detach.
func (n *Node) AttachFanout(src FanoutSource) {
	n.mu.Lock()
	n.fanoutSrc = src
	n.mu.Unlock()
}

// BufferPoolStats returns the process-wide packet buffer pool counters
// without requiring a running node, so harnesses can difference the
// counters around a measurement window. Node.Metrics embeds the same
// snapshot.
func BufferPoolStats() PoolSnapshot { return transport.Buffers.Snapshot() }
