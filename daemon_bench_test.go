package accelring_test

import (
	"fmt"
	"net"
	"path/filepath"
	"testing"
	"time"

	"accelring"
	"accelring/internal/client"
	"accelring/internal/daemon"
)

// BenchmarkDaemonStack measures the full Spread-like path in real time:
// client → Unix socket → daemon → ring (in-memory transport) → daemons →
// Unix sockets → clients.
func BenchmarkDaemonStack(b *testing.B) {
	dir := b.TempDir()
	network := accelring.NewMemoryNetwork(5)
	network.SetLatency(20 * time.Microsecond)
	members := []accelring.ParticipantID{1, 2, 3}
	var daemons []*daemon.Daemon
	var socks []string
	for _, id := range members {
		node, err := accelring.Start(accelring.Options{
			ID: id, Transport: network.Endpoint(id), Members: members,
		})
		if err != nil {
			b.Fatal(err)
		}
		sock := filepath.Join(dir, fmt.Sprintf("d%d.sock", id))
		ln, err := net.Listen("unix", sock)
		if err != nil {
			b.Fatal(err)
		}
		d, err := daemon.New(daemon.Config{Node: node, Listener: ln})
		if err != nil {
			b.Fatal(err)
		}
		daemons = append(daemons, d)
		socks = append(socks, sock)
	}
	defer func() {
		for _, d := range daemons {
			d.Close()
		}
	}()

	sender, err := client.Connect("unix", socks[0], "sender")
	if err != nil {
		b.Fatal(err)
	}
	defer sender.Close()
	receiver, err := client.Connect("unix", socks[2], "receiver")
	if err != nil {
		b.Fatal(err)
	}
	defer receiver.Close()
	if err := receiver.Join("bench"); err != nil {
		b.Fatal(err)
	}
	// Wait for the view so sends route to the receiver.
	for ev := range receiver.Events() {
		if v, ok := ev.(client.View); ok && v.Group == "bench" {
			break
		}
	}

	payload := make([]byte, 1350)
	b.SetBytes(1350)
	b.ResetTimer()
	done := make(chan struct{})
	go func() {
		defer close(done)
		got := 0
		for ev := range receiver.Events() {
			if _, ok := ev.(client.Message); ok {
				got++
				if got == b.N {
					return
				}
			}
		}
	}()
	for i := 0; i < b.N; i++ {
		if err := sender.Multicast(accelring.Agreed, payload, "bench"); err != nil {
			b.Fatal(err)
		}
	}
	<-done
}
