package metrics

import "sync/atomic"

// batchBuckets is the number of power-of-two buckets in a BatchHistogram:
// sizes 1, 2, 3–4, 5–8, … up to 513–1024, plus one overflow bucket. A
// syscall batch is bounded by the kernel-side vector length (tens of
// messages), so eleven doublings cover every realistic batch with room to
// spare.
const batchBuckets = 12

// BatchHistogram records a distribution of small positive sizes — syscall
// batch lengths, burst sizes — in power-of-two buckets. Unlike Histogram it
// is usable at its zero value, so transports can embed one per direction
// the way they embed Counters, and Observe is a single atomic add with no
// locks or allocation (it runs once per syscall on the receive hot path).
type BatchHistogram struct {
	counts [batchBuckets]atomic.Uint64
	total  atomic.Uint64
	sum    atomic.Uint64
	max    atomic.Uint64
}

// Observe records one batch of n items. Non-positive sizes are ignored.
func (h *BatchHistogram) Observe(n int) {
	if n <= 0 {
		return
	}
	h.counts[batchBucket(n)].Add(1)
	h.total.Add(1)
	h.sum.Add(uint64(n))
	for {
		cur := h.max.Load()
		if uint64(n) <= cur || h.max.CompareAndSwap(cur, uint64(n)) {
			return
		}
	}
}

// batchBucket maps a size to its bucket index: bucket i (i >= 1) holds
// sizes in (2^(i-1), 2^i]; bucket 0 holds size 1; the last bucket is
// overflow.
func batchBucket(n int) int {
	idx := 0
	upper := 1
	for idx < batchBuckets-1 && n > upper {
		idx++
		upper *= 2
	}
	return idx
}

// BatchBucket is one bucket of a BatchSnapshot. Upper is the bucket's
// inclusive upper size bound (0 for the overflow bucket).
type BatchBucket struct {
	Upper int    `json:"upper"`
	Count uint64 `json:"count"`
}

// BatchSnapshot is a point-in-time copy of a BatchHistogram, shaped for
// JSON reports. Mean is Sum/Count — e.g. mean datagrams per syscall.
type BatchSnapshot struct {
	Count   uint64        `json:"count"`
	Sum     uint64        `json:"sum"`
	Max     uint64        `json:"max"`
	Mean    float64       `json:"mean"`
	Buckets []BatchBucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's current state. A histogram with no
// observations snapshots to the zero BatchSnapshot (no bucket list), so
// transports that never batch serialize compactly.
func (h *BatchHistogram) Snapshot() BatchSnapshot {
	s := BatchSnapshot{
		Count: h.total.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	if s.Count == 0 {
		return s
	}
	s.Mean = float64(s.Sum) / float64(s.Count)
	s.Buckets = make([]BatchBucket, batchBuckets)
	upper := 1
	for i := range s.Buckets {
		s.Buckets[i] = BatchBucket{Upper: upper, Count: h.counts[i].Load()}
		upper *= 2
	}
	s.Buckets[batchBuckets-1].Upper = 0 // overflow
	return s
}
