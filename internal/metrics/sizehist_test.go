package metrics

import (
	"sync"
	"testing"
)

func TestBatchHistogramZeroValue(t *testing.T) {
	var h BatchHistogram
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.Max != 0 || s.Mean != 0 || s.Buckets != nil {
		t.Fatalf("zero histogram snapshot not zero: %+v", s)
	}
	h.Observe(0)
	h.Observe(-3)
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("non-positive observations were recorded: %+v", s)
	}
}

func TestBatchHistogramBuckets(t *testing.T) {
	var h BatchHistogram
	// One observation per interesting size: bucket edges and interiors.
	sizes := []int{1, 2, 3, 4, 5, 8, 9, 16, 1024, 1025, 1 << 20}
	for _, n := range sizes {
		h.Observe(n)
	}
	s := h.Snapshot()
	if s.Count != uint64(len(sizes)) {
		t.Fatalf("count = %d, want %d", s.Count, len(sizes))
	}
	wantSum := uint64(0)
	for _, n := range sizes {
		wantSum += uint64(n)
	}
	if s.Sum != wantSum {
		t.Fatalf("sum = %d, want %d", s.Sum, wantSum)
	}
	if s.Max != 1<<20 {
		t.Fatalf("max = %d, want %d", s.Max, 1<<20)
	}
	// bucket[0] holds size 1; bucket[i] holds (2^(i-1), 2^i]; last overflows.
	wantCounts := map[int]uint64{
		0:  1, // 1
		1:  1, // 2
		2:  2, // 3, 4
		3:  2, // 5, 8
		4:  2, // 9, 16
		10: 1, // 1024
		11: 2, // 1025, 1<<20 → overflow
	}
	for i, b := range s.Buckets {
		if b.Count != wantCounts[i] {
			t.Fatalf("bucket %d count = %d, want %d (%+v)", i, b.Count, wantCounts[i], s.Buckets)
		}
	}
	if s.Buckets[len(s.Buckets)-1].Upper != 0 {
		t.Fatal("overflow bucket should report Upper = 0")
	}
	if got, want := s.Mean, float64(wantSum)/float64(len(sizes)); got != want {
		t.Fatalf("mean = %v, want %v", got, want)
	}
}

func TestBatchHistogramConcurrent(t *testing.T) {
	var h BatchHistogram
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(1 + (g+i)%32)
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*per)
	}
	if s.Max > 32 || s.Max == 0 {
		t.Fatalf("max = %d, want in [1,32]", s.Max)
	}
}
