package metrics

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Fatalf("counter = %d, want 5", c.Load())
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if g.Load() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Load())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Load() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Load())
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram(time.Millisecond, 4) // bounds 1,2,4,8ms + overflow
	h.Observe(500 * time.Microsecond)      // bucket 0
	h.Observe(time.Millisecond)            // bucket 1 (bounds are exclusive)
	h.Observe(3 * time.Millisecond)        // bucket 2
	h.Observe(100 * time.Millisecond)      // overflow
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d, want 4", s.Count)
	}
	want := []uint64{1, 1, 1, 0, 1}
	for i, b := range s.Buckets {
		if b.Count != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, b.Count, want[i])
		}
	}
	if s.Buckets[len(s.Buckets)-1].UpperNs != 0 {
		t.Fatal("overflow bucket should have zero upper bound")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(100*time.Microsecond, 10)
	for i := 0; i < 99; i++ {
		h.Observe(150 * time.Microsecond) // lands in [100us,200us)
	}
	h.Observe(30 * time.Millisecond) // lands in [25.6ms,51.2ms)
	s := h.Snapshot()
	if got := s.P50(); got != 200*time.Microsecond {
		t.Fatalf("p50 = %v, want 200µs (bucket upper bound)", got)
	}
	if got := s.P99(); got < 200*time.Microsecond {
		t.Fatalf("p99 = %v, want >= 200µs", got)
	}
	if s.Mean() <= 150*time.Microsecond {
		t.Fatalf("mean = %v, want > 150µs", s.Mean())
	}
}

func TestHistogramEmptySnapshot(t *testing.T) {
	h := NewHistogram(time.Millisecond, 3)
	s := h.Snapshot()
	if s.Count != 0 || s.MeanNs != 0 || s.P50Ns != 0 || s.P99Ns != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(time.Microsecond, 8)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h.Observe(time.Duration(i+1) * time.Microsecond)
			}
		}(i)
	}
	wg.Wait()
	if h.Total() != 2000 {
		t.Fatalf("total = %d, want 2000", h.Total())
	}
}

func TestSnapshotMarshalsToJSON(t *testing.T) {
	h := NewHistogram(time.Millisecond, 2)
	h.Observe(time.Millisecond)
	data, err := json.Marshal(h.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back HistogramSnapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Count != 1 {
		t.Fatalf("round-tripped count = %d, want 1", back.Count)
	}
}
