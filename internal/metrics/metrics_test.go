package metrics

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Fatalf("counter = %d, want 5", c.Load())
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if g.Load() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Load())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Load() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Load())
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram(time.Millisecond, 4) // bounds 1,2,4,8ms + overflow
	h.Observe(500 * time.Microsecond)      // bucket 0
	h.Observe(time.Millisecond)            // bucket 1 (bounds are exclusive)
	h.Observe(3 * time.Millisecond)        // bucket 2
	h.Observe(100 * time.Millisecond)      // overflow
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d, want 4", s.Count)
	}
	want := []uint64{1, 1, 1, 0, 1}
	for i, b := range s.Buckets {
		if b.Count != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, b.Count, want[i])
		}
	}
	if s.Buckets[len(s.Buckets)-1].UpperNs != 0 {
		t.Fatal("overflow bucket should have zero upper bound")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(100*time.Microsecond, 10)
	for i := 0; i < 99; i++ {
		h.Observe(150 * time.Microsecond) // lands in [100us,200us)
	}
	h.Observe(30 * time.Millisecond) // lands in [25.6ms,51.2ms)
	s := h.Snapshot()
	if got := s.P50(); got != 200*time.Microsecond {
		t.Fatalf("p50 = %v, want 200µs (bucket upper bound)", got)
	}
	if got := s.P99(); got < 200*time.Microsecond {
		t.Fatalf("p99 = %v, want >= 200µs", got)
	}
	if s.Mean() <= 150*time.Microsecond {
		t.Fatalf("mean = %v, want > 150µs", s.Mean())
	}
}

func TestHistogramEmptySnapshot(t *testing.T) {
	h := NewHistogram(time.Millisecond, 3)
	s := h.Snapshot()
	if s.Count != 0 || s.MeanNs != 0 || s.P50Ns != 0 || s.P99Ns != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(time.Microsecond, 8)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h.Observe(time.Duration(i+1) * time.Microsecond)
			}
		}(i)
	}
	wg.Wait()
	if h.Total() != 2000 {
		t.Fatalf("total = %d, want 2000", h.Total())
	}
}

func TestSnapshotMarshalsToJSON(t *testing.T) {
	h := NewHistogram(time.Millisecond, 2)
	h.Observe(time.Millisecond)
	data, err := json.Marshal(h.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back HistogramSnapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Count != 1 {
		t.Fatalf("round-tripped count = %d, want 1", back.Count)
	}
}

func TestMergeHistogramsSameShape(t *testing.T) {
	h1 := NewHistogram(time.Millisecond, 4)
	h2 := NewHistogram(time.Millisecond, 4)
	for i := 0; i < 10; i++ {
		h1.Observe(500 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h2.Observe(3 * time.Millisecond)
	}
	m := MergeHistograms(h1.Snapshot(), h2.Snapshot())
	if m.Count != 20 {
		t.Fatalf("count = %d, want 20", m.Count)
	}
	// Bucket-wise merge: 10 in bucket 0, 10 in bucket 2.
	if m.Buckets[0].Count != 10 || m.Buckets[2].Count != 10 {
		t.Fatalf("merged buckets: %+v", m.Buckets)
	}
	// Quantiles re-estimated from the merged distribution: the median sits
	// at the boundary between the two groups, the p99 in the upper group.
	if m.P99() != 4*time.Millisecond {
		t.Fatalf("p99 = %v, want 4ms (upper bound of [2ms,4ms))", m.P99())
	}
	wantMean := (10*int64(500*time.Microsecond) + 10*int64(3*time.Millisecond)) / 20
	if m.MeanNs != wantMean {
		t.Fatalf("mean = %d, want %d", m.MeanNs, wantMean)
	}
}

func TestMergeHistogramsSkipsEmpty(t *testing.T) {
	h := NewHistogram(time.Millisecond, 4)
	h.Observe(time.Millisecond)
	empty := NewHistogram(time.Second, 2) // different shape but zero count
	m := MergeHistograms(empty.Snapshot(), h.Snapshot(), HistogramSnapshot{})
	if m.Count != 1 || m.Buckets == nil {
		t.Fatalf("merge with empties: %+v", m)
	}
	if m.P50Ns != h.Snapshot().P50Ns {
		t.Fatalf("p50 = %d, want %d", m.P50Ns, h.Snapshot().P50Ns)
	}
}

func TestMergeHistogramsShapeMismatch(t *testing.T) {
	big := NewHistogram(time.Millisecond, 4)
	for i := 0; i < 100; i++ {
		big.Observe(3 * time.Millisecond)
	}
	odd := NewHistogram(time.Second, 2)
	odd.Observe(2 * time.Second)
	same := NewHistogram(time.Millisecond, 4)
	same.Observe(time.Millisecond)

	// The mismatched snapshot drops the buckets for good: a later
	// same-shape-as-first snapshot must not resurrect them (its counts
	// would be missing the mismatched contribution).
	m := MergeHistograms(big.Snapshot(), odd.Snapshot(), same.Snapshot())
	if m.Count != 102 {
		t.Fatalf("count = %d, want 102", m.Count)
	}
	if m.Buckets != nil {
		t.Fatalf("buckets survived a shape mismatch: %+v", m.Buckets)
	}
	// Quantiles fall back to the highest-count contributor.
	if m.P99Ns != big.Snapshot().P99Ns {
		t.Fatalf("p99 = %d, want fallback %d", m.P99Ns, big.Snapshot().P99Ns)
	}
}

func TestMergeHistogramsEmptyResult(t *testing.T) {
	m := MergeHistograms()
	if m.Count != 0 || m.Buckets != nil || m.MeanNs != 0 {
		t.Fatalf("empty merge: %+v", m)
	}
	m = MergeHistograms(HistogramSnapshot{}, HistogramSnapshot{})
	if m.Count != 0 || m.P50Ns != 0 {
		t.Fatalf("all-empty merge: %+v", m)
	}
}
