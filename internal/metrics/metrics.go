// Package metrics provides the cheap, lock-free instrumentation primitives
// the runtime threads through every layer: atomic counters, gauges, and
// fixed-bucket latency histograms (the same exponential bucketing as
// internal/stats, but safe for concurrent writers on the hot path).
//
// The paper's entire evaluation (Sections IV–V) rests on measuring token
// rotation time, per-round message counts, retransmissions and delivery
// latency; these types are what make those quantities observable from a
// running node without slowing it down. Writers never allocate and never
// take a lock; readers get a consistent-enough snapshot for monitoring
// (individual fields are atomically read, the set is not cut at one
// instant — fine for counters that only grow).
package metrics

import (
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value. The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram is a fixed-bucket duration histogram with exponentially
// growing bucket bounds, safe for concurrent observers. The zero value is
// not usable; create with NewHistogram.
type Histogram struct {
	bounds []time.Duration // immutable after construction
	counts []atomic.Uint64 // len(bounds)+1; last bucket is overflow
	total  atomic.Uint64
	sum    atomic.Int64 // nanoseconds
}

// NewHistogram builds a histogram with buckets [0,first), [first,2*first),
// doubling n times; observations beyond the last bound land in the
// overflow bucket. It mirrors internal/stats.NewHistogram but with atomic
// counters.
func NewHistogram(first time.Duration, n int) *Histogram {
	if first <= 0 || n <= 0 {
		panic("metrics: histogram needs a positive first bound and bucket count")
	}
	bounds := make([]time.Duration, n)
	b := first
	for i := range bounds {
		bounds[i] = b
		b *= 2
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, n+1)}
}

// Observe records one observation. Exponential bounds make the bucket
// index a handful of compares; no locks, no allocation.
func (h *Histogram) Observe(d time.Duration) {
	idx := 0
	for idx < len(h.bounds) && d >= h.bounds[idx] {
		idx++
	}
	h.counts[idx].Add(1)
	h.total.Add(1)
	h.sum.Add(int64(d))
}

// Total returns the number of observations.
func (h *Histogram) Total() uint64 { return h.total.Load() }

// Bucket is one histogram bucket in a snapshot. UpperNs is the bucket's
// exclusive upper bound in nanoseconds (0 for the overflow bucket).
type Bucket struct {
	UpperNs int64  `json:"upper_ns"`
	Count   uint64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram, shaped for
// JSON reports.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	MeanNs  int64    `json:"mean_ns"`
	P50Ns   int64    `json:"p50_ns"`
	P99Ns   int64    `json:"p99_ns"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Mean returns the snapshot's mean as a duration.
func (s HistogramSnapshot) Mean() time.Duration { return time.Duration(s.MeanNs) }

// P50 returns the snapshot's median estimate as a duration.
func (s HistogramSnapshot) P50() time.Duration { return time.Duration(s.P50Ns) }

// P99 returns the snapshot's 99th-percentile estimate as a duration.
func (s HistogramSnapshot) P99() time.Duration { return time.Duration(s.P99Ns) }

// Snapshot copies the histogram's current state. Quantiles are estimated
// as the upper bound of the bucket containing the quantile rank (the
// overflow bucket reports the largest finite bound), which is the usual
// fixed-bucket approximation.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Buckets: make([]Bucket, len(h.counts))}
	var sum int64
	for i := range h.counts {
		c := h.counts[i].Load()
		upper := int64(0)
		if i < len(h.bounds) {
			upper = int64(h.bounds[i])
		}
		s.Buckets[i] = Bucket{UpperNs: upper, Count: c}
		s.Count += c
	}
	sum = h.sum.Load()
	if s.Count > 0 {
		s.MeanNs = sum / int64(s.Count)
	}
	s.P50Ns = int64(s.quantile(0.50))
	s.P99Ns = int64(s.quantile(0.99))
	return s
}

// MergeHistograms combines snapshots of histograms into one, as if every
// observation had landed in a single histogram. Snapshots with identical
// bucket shapes (the common case: one histogram per ring, all constructed
// alike) merge exactly — bucket counts add and quantiles are re-estimated
// from the merged buckets. A snapshot with a different shape degrades
// gracefully: its count and sum still contribute to Count and MeanNs, and
// the quantiles of the highest-count contributor win.
func MergeHistograms(snaps ...HistogramSnapshot) HistogramSnapshot {
	var out HistogramSnapshot
	var sumNs int64
	var quantileSrc HistogramSnapshot
	shapeBroken := false
	for _, s := range snaps {
		if s.Count == 0 {
			continue
		}
		sumNs += s.MeanNs * int64(s.Count)
		out.Count += s.Count
		switch {
		case shapeBroken:
		case sameBuckets(out.Buckets, s.Buckets):
			for i := range s.Buckets {
				out.Buckets[i].Count += s.Buckets[i].Count
			}
		case out.Buckets == nil && len(s.Buckets) > 0:
			out.Buckets = make([]Bucket, len(s.Buckets))
			copy(out.Buckets, s.Buckets)
		default:
			// Shape mismatch: drop the buckets, keep the aggregate stats.
			out.Buckets = nil
			shapeBroken = true
		}
		if s.Count > quantileSrc.Count {
			quantileSrc = s
		}
	}
	if out.Count > 0 {
		out.MeanNs = sumNs / int64(out.Count)
	}
	if out.Buckets != nil {
		out.P50Ns = int64(out.quantile(0.50))
		out.P99Ns = int64(out.quantile(0.99))
	} else {
		out.P50Ns = quantileSrc.P50Ns
		out.P99Ns = quantileSrc.P99Ns
	}
	return out
}

// sameBuckets reports whether two bucket lists share bounds (and a is
// non-empty, so a zero accumulator never matches).
func sameBuckets(a, b []Bucket) bool {
	if len(a) == 0 || len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].UpperNs != b[i].UpperNs {
			return false
		}
	}
	return true
}

// quantile estimates the q-th quantile from the snapshot's buckets.
func (s HistogramSnapshot) quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var seen uint64
	lastUpper := int64(0)
	for _, b := range s.Buckets {
		seen += b.Count
		if b.UpperNs != 0 {
			lastUpper = b.UpperNs
		}
		if seen > rank {
			if b.UpperNs == 0 {
				return time.Duration(lastUpper) // overflow: clamp to last bound
			}
			return time.Duration(b.UpperNs)
		}
	}
	return time.Duration(lastUpper)
}
