package daemon

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"accelring"
	"accelring/internal/client"
	"accelring/internal/evscheck"
	"accelring/internal/wire"
)

// TestManyClientsTotalOrder stresses the full stack: 3 daemons × 4 clients
// each, all flooding one group concurrently. Every client must observe the
// identical delivery order.
func TestManyClientsTotalOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const (
		daemons       = 3
		clientsPerD   = 4
		perClientMsgs = 25
	)
	c := startDaemons(t, daemons)

	var conns []*client.Conn
	for d := 0; d < daemons; d++ {
		for i := 0; i < clientsPerD; i++ {
			conn := c.connect(d, fmt.Sprintf("c%d", i))
			if err := conn.Join("flood"); err != nil {
				t.Fatal(err)
			}
			conns = append(conns, conn)
		}
	}
	total := daemons * clientsPerD
	for _, conn := range conns {
		waitView(t, conn, "flood", total)
	}

	// All clients send concurrently.
	var wg sync.WaitGroup
	for _, conn := range conns {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClientMsgs; i++ {
				payload := []byte(fmt.Sprintf("%s/%d", conn.PrivateName(), i))
				if err := conn.Multicast(wire.ServiceAgreed, payload, "flood"); err != nil {
					t.Errorf("multicast: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	want := total * perClientMsgs
	streams := make([][]client.Message, len(conns))
	var collectWg sync.WaitGroup
	for i, conn := range conns {
		collectWg.Add(1)
		go func() {
			defer collectWg.Done()
			streams[i] = collectMessages(t, conn, want)
		}()
	}
	collectWg.Wait()
	if t.Failed() {
		return
	}

	for i := 1; i < len(streams); i++ {
		for k := range streams[0] {
			if string(streams[i][k].Payload) != string(streams[0][k].Payload) {
				t.Fatalf("clients 0 and %d disagree at %d: %q vs %q",
					i, k, streams[0][k].Payload, streams[i][k].Payload)
			}
		}
	}
	// Per-sender FIFO within the total order.
	positions := map[string]int{}
	for _, m := range streams[0] {
		sender := m.Sender
		var idx int
		if _, err := fmt.Sscanf(string(m.Payload[len(sender)+1:]), "%d", &idx); err != nil {
			t.Fatalf("bad payload %q", m.Payload)
		}
		if last, ok := positions[sender]; ok && idx != last+1 {
			t.Fatalf("sender %s: message %d delivered after %d", sender, idx, last)
		}
		positions[sender] = idx
	}
}

// TestFloodUnderNetworkFaults floods the full stack — daemons, IPC,
// transport — while the in-memory network loses, duplicates and reorders
// packets, then submits every client's delivery stream to the EVS
// conformance checker: one total order, duplicate-free, per-sender FIFO.
func TestFloodUnderNetworkFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const (
		daemons       = 3
		clientsPerD   = 2
		perClientMsgs = 20
	)
	net0 := accelring.NewMemoryNetwork(777)
	net0.SetLossRate(0.005)
	net0.SetDupRate(0.02)
	net0.SetReorder(0.02, 300*time.Microsecond)
	c := startDaemonsOn(t, daemons, net0)

	var conns []*client.Conn
	for d := 0; d < daemons; d++ {
		for i := 0; i < clientsPerD; i++ {
			conn := c.connect(d, fmt.Sprintf("x%d", i))
			if err := conn.Join("chaos"); err != nil {
				t.Fatal(err)
			}
			conns = append(conns, conn)
		}
	}
	total := daemons * clientsPerD
	for _, conn := range conns {
		waitView(t, conn, "chaos", total)
	}
	senderID := make(map[string]wire.ParticipantID, total)
	for i, conn := range conns {
		senderID[conn.PrivateName()] = wire.ParticipantID(i + 1)
	}

	var wg sync.WaitGroup
	for _, conn := range conns {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClientMsgs; i++ {
				payload := []byte(fmt.Sprintf("%s/%d", conn.PrivateName(), i))
				if err := conn.Multicast(wire.ServiceAgreed, payload, "chaos"); err != nil {
					t.Errorf("multicast: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	want := total * perClientMsgs
	streams := make([][]client.Message, len(conns))
	var collectWg sync.WaitGroup
	for i, conn := range conns {
		collectWg.Add(1)
		go func() {
			defer collectWg.Done()
			streams[i] = collectMessages(t, conn, want)
		}()
	}
	collectWg.Wait()
	if t.Failed() {
		return
	}

	// The client streams carry no configuration events (the view is per
	// group, not per ring), so check them as one uniform configuration.
	log := evscheck.Log{}
	for i, stream := range streams {
		nl := log.Node(fmt.Sprintf("client-%d", i))
		for _, m := range stream {
			var idx int
			if _, err := fmt.Sscanf(string(m.Payload[len(m.Sender)+1:]), "%d", &idx); err != nil {
				t.Fatalf("bad payload %q", m.Payload)
			}
			nl.Deliver(string(m.Payload), senderID[m.Sender], uint64(idx+1), wire.ServiceAgreed)
		}
	}
	if vs := evscheck.CheckUniform(log, evscheck.Options{Quiescent: true}); len(vs) > 0 {
		for _, v := range vs {
			t.Errorf("EVS violation under faults: %v", v)
		}
	}
}

// TestClientReconnectSameName verifies a client can disconnect and
// reconnect under the same name once the daemon has processed the drop.
func TestClientReconnectSameName(t *testing.T) {
	c := startDaemons(t, 1)
	first := c.connect(0, "phoenix")
	if err := first.Join("g"); err != nil {
		t.Fatal(err)
	}
	waitView(t, first, "g", 1)
	first.Close()

	// Reconnection races the daemon noticing the disconnect; retry briefly.
	var second *client.Conn
	var err error
	for attempt := 0; attempt < 100; attempt++ {
		second, err = client.Connect("unix", c.socks[0], "phoenix")
		if err == nil {
			break
		}
	}
	if err != nil {
		t.Fatalf("reconnect failed: %v", err)
	}
	defer second.Close()
	if second.PrivateName() != "phoenix@0.0.0.1" {
		t.Fatalf("private name %q", second.PrivateName())
	}
	if err := second.Join("g2"); err != nil {
		t.Fatal(err)
	}
	waitView(t, second, "g2", 1)
}

func TestConnectValidation(t *testing.T) {
	c := startDaemons(t, 1)
	if _, err := client.Connect("unix", c.socks[0], ""); err == nil {
		t.Fatal("empty name accepted")
	}
	// Names with '@' would break private-name parsing; the daemon must
	// reject them by closing the connection.
	if conn, err := client.Connect("unix", c.socks[0], "bad@name"); err == nil {
		conn.Close()
		t.Fatal("name with @ accepted")
	}
}

func TestSelfDiscard(t *testing.T) {
	c := startDaemons(t, 2)
	a := c.connect(0, "a")
	b := c.connect(1, "b")
	if err := a.Join("g"); err != nil {
		t.Fatal(err)
	}
	if err := b.Join("g"); err != nil {
		t.Fatal(err)
	}
	waitView(t, a, "g", 2)
	waitView(t, b, "g", 2)

	// a sends with self-discard, then plainly; a must see only the second.
	if err := a.MulticastWith(client.MulticastOptions{SelfDiscard: true},
		wire.ServiceAgreed, []byte("discarded"), "g"); err != nil {
		t.Fatal(err)
	}
	if err := a.Multicast(wire.ServiceAgreed, []byte("kept"), "g"); err != nil {
		t.Fatal(err)
	}
	bMsgs := collectMessages(t, b, 2)
	if string(bMsgs[0].Payload) != "discarded" || string(bMsgs[1].Payload) != "kept" {
		t.Fatalf("b got %q then %q", bMsgs[0].Payload, bMsgs[1].Payload)
	}
	aMsgs := collectMessages(t, a, 1)
	if string(aMsgs[0].Payload) != "kept" {
		t.Fatalf("a got %q, want only the non-discarded message", aMsgs[0].Payload)
	}
}
