package daemon

import (
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"

	"accelring"
	"accelring/internal/client"
	"accelring/internal/fanout"
	"accelring/internal/ipc"
	"accelring/internal/wire"
)

// rawClient speaks the IPC protocol directly over a net.Conn, with no
// receive goroutine: unlike the client library (which always drains into a
// large buffer, absorbing backpressure), a rawClient that stops reading
// exerts real backpressure on the daemon — exactly what the slow-client
// policies are about.
type rawClient struct {
	t       *testing.T
	conn    net.Conn
	private string
}

func rawConnect(t *testing.T, sock, name string) *rawClient {
	t.Helper()
	conn, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatalf("raw dial %s: %v", sock, err)
	}
	t.Cleanup(func() { conn.Close() })
	if err := ipc.WriteFrame(conn, ipc.CmdConnect, ipc.PutString(nil, name)); err != nil {
		t.Fatalf("raw connect frame: %v", err)
	}
	typ, body, err := ipc.ReadFrame(conn)
	if err != nil || typ != ipc.EvtWelcome {
		t.Fatalf("raw welcome: typ=%d err=%v", typ, err)
	}
	private, _, err := ipc.GetString(body)
	if err != nil {
		t.Fatalf("raw welcome body: %v", err)
	}
	return &rawClient{t: t, conn: conn, private: private}
}

func (r *rawClient) subscribe(group string) {
	r.t.Helper()
	if err := ipc.WriteFrame(r.conn, ipc.CmdSubscribe, ipc.PutString(nil, group)); err != nil {
		r.t.Fatalf("raw subscribe: %v", err)
	}
}

// readFrames reads up to n frames, returning early on any error.
func (r *rawClient) readFrames(n int) (int, error) {
	for i := 0; i < n; i++ {
		if _, _, err := ipc.ReadFrame(r.conn); err != nil {
			return i, err
		}
	}
	return n, nil
}

// waitSubscriptions polls the daemon's stats through an observer client
// until the named client's subscription count reaches want. Subscribe is
// fire-and-forget, so tests need this barrier before publishing.
func waitSubscriptions(t *testing.T, via *client.Conn, member string, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		snap, err := via.Stats()
		if err != nil {
			t.Fatalf("stats: %v", err)
		}
		if snap.Clients[member].Subscriptions == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("%s never reached %d subscriptions", member, want)
}

// countMessages drains messages until max are seen or the window elapses,
// without failing the test — for asserting that delivery stalls.
func countMessages(c *client.Conn, window time.Duration, max int) int {
	timer := time.After(window)
	n := 0
	for n < max {
		select {
		case ev, ok := <-c.Events():
			if !ok {
				return n
			}
			if _, isMsg := ev.(client.Message); isMsg {
				n++
			}
		case <-timer:
			return n
		}
	}
	return n
}

// TestShedPolicyIsolatesSlowClient: under PolicyShed a subscriber that
// stops reading has its overflow dropped — bounded backlog, shed counter
// ticking — while a healthy member of the same group receives the full
// stream undisturbed.
func TestShedPolicyIsolatesSlowClient(t *testing.T) {
	const depth = 64
	c := startDaemonsWith(t, 1, accelring.NewMemoryNetwork(21),
		fanout.Config{QueueDepth: depth, Policy: fanout.PolicyShed})

	healthy := c.connect(0, "healthy")
	if err := healthy.Join("feed"); err != nil {
		t.Fatal(err)
	}
	waitView(t, healthy, "feed", 1)

	slow := rawConnect(t, c.socks[0], "slow")
	slow.subscribe("feed")
	waitSubscriptions(t, healthy, slow.private, 1)
	// From here on the slow client never reads: its socket buffer fills,
	// its writer wedges, its queue fills, and the tier starts shedding.

	// Paced flood: read back each message before sending the next, so the
	// healthy client provably keeps up (an unpaced burst can overrun even
	// the healthy queue on a slow box, and the shed policy would rightly
	// shed it too). The slow client still never reads.
	const sent = 400
	payload := bytes.Repeat([]byte("x"), 2048)
	for i := 0; i < sent; i++ {
		if err := healthy.Multicast(wire.ServiceAgreed, payload, "feed"); err != nil {
			t.Fatal(err)
		}
		collectMessages(t, healthy, 1)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		snap, err := healthy.Stats()
		if err != nil {
			t.Fatal(err)
		}
		cs := snap.Clients[slow.private]
		if cs.Shed > 0 {
			if cs.Backlog > depth {
				t.Fatalf("slow backlog %d exceeds queue depth %d", cs.Backlog, depth)
			}
			if snap.Shed < cs.Shed {
				t.Fatalf("daemon shed total %d below client shed %d", snap.Shed, cs.Shed)
			}
			if snap.FanoutPolicy != "shed" {
				t.Fatalf("fanout policy = %q, want shed", snap.FanoutPolicy)
			}
			if snap.Disconnects != 0 {
				t.Fatalf("shed policy disconnected %d clients", snap.Disconnects)
			}
			hs := snap.Clients[healthy.PrivateName()]
			if hs.Shed != 0 {
				t.Fatalf("healthy client shed %d messages", hs.Shed)
			}
			return
		}
		if !time.Now().Before(deadline) {
			t.Fatalf("slow client never shed (stats: %+v)", cs)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBlockPolicyStallsDelivery is the acceptance scenario proving the
// policy knob matters: under PolicyBlock one non-reading subscriber stalls
// the daemon's whole delivery path (the publisher blocks on the full
// queue), and draining that subscriber releases the stall with nothing
// lost.
func TestBlockPolicyStallsDelivery(t *testing.T) {
	c := startDaemonsWith(t, 1, accelring.NewMemoryNetwork(22),
		fanout.Config{QueueDepth: 8, Policy: fanout.PolicyBlock})

	healthy := c.connect(0, "healthy")
	if err := healthy.Join("feed"); err != nil {
		t.Fatal(err)
	}
	waitView(t, healthy, "feed", 1)

	slow := rawConnect(t, c.socks[0], "slow")
	slow.subscribe("feed")
	waitSubscriptions(t, healthy, slow.private, 1)

	// 300 × 8KB ≈ 2.4MB per subscriber: far beyond the slow client's
	// 8-frame queue plus whatever the socket buffers absorb.
	const sent = 300
	payload := bytes.Repeat([]byte("y"), 8192)
	sendErr := make(chan error, 1)
	go func() {
		for i := 0; i < sent; i++ {
			if err := healthy.Multicast(wire.ServiceAgreed, payload, "feed"); err != nil {
				sendErr <- err
				return
			}
		}
		sendErr <- nil
	}()

	// The healthy member must stall well short of the full stream while
	// the slow subscriber refuses to read.
	got := countMessages(healthy, 3*time.Second, sent)
	if got >= sent {
		t.Fatalf("block policy did not stall: healthy received all %d messages with a wedged subscriber", sent)
	}
	t.Logf("stalled at %d/%d messages with the slow subscriber wedged", got, sent)

	// Drain the slow client; the stall must release and every message
	// reach both subscribers.
	drained := make(chan error, 1)
	go func() {
		_, err := slow.readFrames(sent)
		drained <- err
	}()
	collectMessages(t, healthy, sent-got)
	if err := <-sendErr; err != nil {
		t.Fatalf("publisher: %v", err)
	}
	if err := <-drained; err != nil {
		t.Fatalf("slow client draining: %v", err)
	}
	snap, err := healthy.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Shed != 0 || snap.Disconnects != 0 {
		t.Fatalf("block policy shed %d / disconnected %d", snap.Shed, snap.Disconnects)
	}
}

// TestDisconnectPolicyDropsSlowClient: the default Spread-style policy
// severs a subscriber that exceeds its queue, keeping the rest of the
// daemon flowing.
func TestDisconnectPolicyDropsSlowClient(t *testing.T) {
	c := startDaemonsWith(t, 1, accelring.NewMemoryNetwork(23),
		fanout.Config{QueueDepth: 16, Policy: fanout.PolicyDisconnect})

	healthy := c.connect(0, "healthy")
	if err := healthy.Join("feed"); err != nil {
		t.Fatal(err)
	}
	waitView(t, healthy, "feed", 1)

	slow := rawConnect(t, c.socks[0], "slow")
	slow.subscribe("feed")
	waitSubscriptions(t, healthy, slow.private, 1)

	// Pace the flood on the healthy member's own deliveries so only the
	// non-reading subscriber accumulates backlog: with a 16-frame queue an
	// unpaced publisher would overflow the healthy client too.
	const sent = 400
	payload := bytes.Repeat([]byte("z"), 4096)
	for i := 0; i < sent; i++ {
		if err := healthy.Multicast(wire.ServiceAgreed, payload, "feed"); err != nil {
			t.Fatal(err)
		}
		collectMessages(t, healthy, 1)
	}

	// The slow client's connection must be severed by the daemon: reading
	// everything buffered eventually hits EOF, well before reading the
	// full stream.
	slow.conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	n, err := slow.readFrames(sent)
	if err == nil {
		t.Fatal("slow client read the entire stream; expected the daemon to disconnect it")
	}
	t.Logf("slow client severed after %d frames: %v", n, err)

	deadline := time.Now().Add(10 * time.Second)
	for {
		snap, serr := healthy.Stats()
		if serr != nil {
			t.Fatal(serr)
		}
		if snap.Disconnects >= 1 && snap.Sessions == 1 {
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatalf("daemon never recorded the disconnect: %+v", snap)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The daemon stays fully functional after shedding the client.
	if err := healthy.Multicast(wire.ServiceAgreed, []byte("after"), "feed"); err != nil {
		t.Fatal(err)
	}
	msgs := collectMessages(t, healthy, 1)
	if string(msgs[0].Payload) != "after" {
		t.Fatalf("got %q after disconnect", msgs[0].Payload)
	}
}

// TestDisconnectDuringDeliveryBurst is the regression test for the stale
// routing-state hazard: a client disconnecting in the middle of a fan-out
// burst must neither corrupt routing for the survivors nor wedge the
// daemon. (The old implementation reused a routed map across fan-outs and
// could leave a stale entry when a session unregistered mid-burst; the
// tier's stamp-generation dedup owns that state under its own lock.)
// Run with -race: the daemon package is in CI's race job.
func TestDisconnectDuringDeliveryBurst(t *testing.T) {
	c := startDaemonsWith(t, 1, accelring.NewMemoryNetwork(24),
		fanout.Config{QueueDepth: 4096, Policy: fanout.PolicyShed})

	survivors := make([]*client.Conn, 3)
	for i := range survivors {
		survivors[i] = c.connect(0, fmt.Sprintf("sur%d", i))
		if err := survivors[i].Join("burst"); err != nil {
			t.Fatal(err)
		}
	}
	victim := c.connect(0, "victim")
	if err := victim.Join("burst"); err != nil {
		t.Fatal(err)
	}
	for _, s := range survivors {
		waitView(t, s, "burst", 4)
	}
	waitView(t, victim, "burst", 4)

	const sent = 300
	sendErr := make(chan error, 1)
	go func() {
		for i := 0; i < sent; i++ {
			if err := survivors[0].Multicast(wire.ServiceAgreed, []byte(fmt.Sprintf("m%d", i)), "burst"); err != nil {
				sendErr <- err
				return
			}
		}
		sendErr <- nil
	}()
	// Yank the victim mid-burst.
	time.Sleep(5 * time.Millisecond)
	victim.Close()
	if err := <-sendErr; err != nil {
		t.Fatalf("publisher: %v", err)
	}

	// Every survivor still receives the complete burst, in one order.
	streams := make([][]client.Message, len(survivors))
	for i, s := range survivors {
		streams[i] = collectMessages(t, s, sent)
	}
	for i := 1; i < len(streams); i++ {
		for k := range streams[0] {
			if string(streams[i][k].Payload) != string(streams[0][k].Payload) {
				t.Fatalf("survivors 0 and %d disagree at %d: %q vs %q",
					i, k, streams[0][k].Payload, streams[i][k].Payload)
			}
		}
	}
	// The group converges to the survivors (collectMessages consumed the
	// view events, so check through stats) and the daemon keeps serving.
	deadline := time.Now().Add(10 * time.Second)
	for {
		snap, err := survivors[0].Stats()
		if err != nil {
			t.Fatal(err)
		}
		if _, gone := snap.Clients[victim.PrivateName()]; !gone && snap.Sessions == len(survivors) {
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatalf("victim session never dropped: %+v", snap)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := survivors[1].Multicast(wire.ServiceAgreed, []byte("post"), "burst"); err != nil {
		t.Fatal(err)
	}
	for _, s := range survivors {
		msgs := collectMessages(t, s, 1)
		if string(msgs[0].Payload) != "post" {
			t.Fatalf("post-disconnect message = %q", msgs[0].Payload)
		}
	}
}

// TestSubscribeDeliversWithoutMembership: an explicit subscription taps a
// group's ordered stream without joining it — no membership views carry
// the subscriber, and unsubscribing stops delivery.
func TestSubscribeDeliversWithoutMembership(t *testing.T) {
	c := startDaemons(t, 2)
	member := c.connect(0, "member")
	observer := c.connect(0, "observer")
	remote := c.connect(1, "remote")

	if err := member.Join("topic"); err != nil {
		t.Fatal(err)
	}
	waitView(t, member, "topic", 1)
	if err := observer.Subscribe("topic"); err != nil {
		t.Fatal(err)
	}
	waitSubscriptions(t, member, observer.PrivateName(), 1)

	// A remote sender's message reaches member and observer identically.
	if err := remote.Multicast(wire.ServiceAgreed, []byte("one"), "topic"); err != nil {
		t.Fatal(err)
	}
	if got := collectMessages(t, member, 1); string(got[0].Payload) != "one" {
		t.Fatalf("member got %q", got[0].Payload)
	}
	got := collectMessages(t, observer, 1)
	if string(got[0].Payload) != "one" {
		t.Fatalf("observer got %q", got[0].Payload)
	}
	if got[0].Sender != remote.PrivateName() {
		t.Fatalf("observer saw sender %q", got[0].Sender)
	}

	// The observer never entered the group: the daemon still tracks one
	// group with one member, and no new view was emitted (the only view
	// the member ever saw is the single-member one consumed above).
	snap, err := member.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Groups != 1 {
		t.Fatalf("groups = %d, want 1", snap.Groups)
	}

	if err := observer.Unsubscribe("topic"); err != nil {
		t.Fatal(err)
	}
	waitSubscriptions(t, member, observer.PrivateName(), 0)
	if err := remote.Multicast(wire.ServiceAgreed, []byte("two"), "topic"); err != nil {
		t.Fatal(err)
	}
	if got := collectMessages(t, member, 1); string(got[0].Payload) != "two" {
		t.Fatalf("member got %q", got[0].Payload)
	}
	// The observer must not see the post-unsubscribe message.
	if n := countMessages(observer, 300*time.Millisecond, 1); n != 0 {
		t.Fatalf("observer received %d messages after unsubscribing", n)
	}
}
