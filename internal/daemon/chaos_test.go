package daemon

import (
	"encoding/binary"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"accelring"
	"accelring/internal/client"
	"accelring/internal/fanout"
	"accelring/internal/wire"
)

// chaosDaemon starts a fresh single-node ring plus daemon on the given
// socket path — used repeatedly on the same path to model a daemon being
// killed and restarted by a supervisor.
func chaosDaemon(t *testing.T, sock string) *Daemon {
	t.Helper()
	node, err := accelring.Start(accelring.Options{
		ID:                 1,
		Transport:          accelring.NewMemoryNetwork(29).Endpoint(1),
		Members:            []accelring.ParticipantID{1},
		TokenLossTimeout:   300 * time.Millisecond,
		TokenRetransPeriod: 60 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("node: %v", err)
	}
	ln, err := net.Listen("unix", sock)
	if err != nil {
		node.Close()
		t.Fatalf("listen: %v", err)
	}
	d, err := New(Config{Node: node, Listener: ln, Fanout: fanout.Config{HistoryDepth: 64}, ResumeWindow: 2 * time.Second})
	if err != nil {
		node.Close()
		t.Fatalf("daemon: %v", err)
	}
	return d
}

const chaosEnd = ^uint64(0)

type chaosResult struct {
	name       string
	reconnects int
	messages   int
	gotEnd     bool
	violations []string
}

// chaosSubscriber consumes one managed client's event stream until the
// END marker, checking the two delivery invariants the resilient serving
// tier promises:
//
//   - no duplicates, ever: the publisher's payload counter must be
//     strictly increasing across the whole stream, including across
//     daemon restarts;
//   - no silent gaps: within an epoch (between reported continuity
//     events — Reconnected, or a typed Gap) consecutive payloads must be
//     exactly contiguous. A hole is only acceptable when the client
//     reported the discontinuity first.
func chaosSubscriber(c *client.Conn, name string, out chan<- chaosResult) {
	res := chaosResult{name: name}
	var last uint64    // highest payload seen overall
	newEpoch := true   // next message may start anywhere (boundary reported)
	var prev uint64    // previous payload within this epoch
	deadline := time.After(60 * time.Second)
	for !res.gotEnd {
		var ev client.Event
		var ok bool
		select {
		case ev, ok = <-c.Events():
			if !ok {
				res.violations = append(res.violations, "events closed before END")
				out <- res
				return
			}
		case <-deadline:
			res.violations = append(res.violations, "timed out before END")
			out <- res
			return
		}
		switch e := ev.(type) {
		case client.Message:
			if len(e.Payload) != 8 {
				continue
			}
			p := binary.BigEndian.Uint64(e.Payload)
			if p == chaosEnd {
				res.gotEnd = true
				break
			}
			res.messages++
			if res.messages > 1 && p <= last {
				res.violations = append(res.violations,
					fmt.Sprintf("duplicate or reordered payload %d after %d", p, last))
			}
			if !newEpoch && p != prev+1 {
				res.violations = append(res.violations,
					fmt.Sprintf("unreported gap: payload %d after %d", p, prev))
			}
			last, prev, newEpoch = p, p, false
		case client.Reconnected:
			res.reconnects++
			newEpoch = true
		case client.Gap:
			// Reported loss — the next payload may jump.
			newEpoch = true
		case client.Disconnected, client.View, client.Draining:
		}
	}
	out <- res
}

// TestChaosKillRestartSoak abruptly kills and restarts the daemon under a
// fleet of managed clients while a publisher keeps injecting a counter
// stream. Every client must survive every outage via auto-reconnect, and
// every delivered stream must be duplicate-free with all discontinuities
// reported as typed events.
func TestChaosKillRestartSoak(t *testing.T) {
	clients, cycles := 24, 2
	if testing.Short() {
		clients, cycles = 8, 1
	}
	sock := filepath.Join(t.TempDir(), "chaos.sock")
	d := chaosDaemon(t, sock)
	defer func() { d.Close() }()

	opts := client.Options{
		Reconnect:  true,
		BackoffMin: 10 * time.Millisecond,
		BackoffMax: 150 * time.Millisecond,
	}
	results := make(chan chaosResult, clients)
	for i := 0; i < clients; i++ {
		name := fmt.Sprintf("sub%d", i)
		c, err := client.Dial("unix", sock, name, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		defer c.Close()
		if err := c.Join("g"); err != nil {
			t.Fatalf("%s join: %v", name, err)
		}
		go chaosSubscriber(c, name, results)
	}

	pub, err := client.Dial("unix", sock, "pub", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	go func() { // drain the publisher's own events
		for range pub.Events() {
		}
	}()

	// The publisher advances the counter only on an accepted send; a send
	// the daemon accepted but never ordered (killed in between) is a
	// legitimate hole that every subscriber experiences at its own epoch
	// boundary.
	var counter uint64
	stopPub := make(chan struct{})
	var pubWG sync.WaitGroup
	pubWG.Add(1)
	go func() {
		defer pubWG.Done()
		payload := make([]byte, 8)
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopPub:
				return
			case <-tick.C:
			}
			select {
			case <-stopPub:
				return
			default:
			}
			binary.BigEndian.PutUint64(payload, counter+1)
			if err := pub.Multicast(wire.ServiceAgreed, payload, "g"); err == nil {
				counter++
			}
		}
	}()

	for cycle := 0; cycle < cycles; cycle++ {
		time.Sleep(400 * time.Millisecond) // stable traffic
		d.Close()                          // abrupt kill: no drain, no goodbye
		os.Remove(sock)
		time.Sleep(200 * time.Millisecond) // outage: clients churn in backoff
		d = chaosDaemon(t, sock)
	}
	time.Sleep(500 * time.Millisecond) // let the fleet re-establish

	// Broadcast the END marker repeatedly until every subscriber reports:
	// a straggler that reconnects late must still see it.
	endPayload := make([]byte, 8)
	binary.BigEndian.PutUint64(endPayload, chaosEnd)
	endTick := time.NewTicker(50 * time.Millisecond)
	defer endTick.Stop()
	got := 0
	all := make([]chaosResult, 0, clients)
	deadline := time.After(90 * time.Second)
	for got < clients {
		select {
		case r := <-results:
			all = append(all, r)
			got++
		case <-endTick.C:
			pub.Multicast(wire.ServiceAgreed, endPayload, "g")
		case <-deadline:
			t.Fatalf("only %d/%d subscribers finished", got, clients)
		}
	}
	close(stopPub)
	pubWG.Wait()

	totalReconnects, totalMsgs := 0, 0
	for _, r := range all {
		if !r.gotEnd {
			t.Errorf("%s: never saw END (%d msgs, %d reconnects): %v",
				r.name, r.messages, r.reconnects, r.violations)
			continue
		}
		if r.reconnects < 1 {
			t.Errorf("%s: no reconnects across %d kill cycles", r.name, cycles)
		}
		for _, v := range r.violations {
			t.Errorf("%s: %s", r.name, v)
		}
		totalReconnects += r.reconnects
		totalMsgs += r.messages
	}
	if pub.Reconnects() < uint64(cycles) {
		t.Errorf("publisher reconnects %d, want >= %d", pub.Reconnects(), cycles)
	}
	t.Logf("soak: %d clients, %d cycles, %d total msgs delivered, %d reconnects, %d published",
		clients, cycles, totalMsgs, totalReconnects, counter)
}
