package daemon

import (
	"errors"
	"net"
	"sync"
	"time"

	"accelring/internal/fanout"
	"accelring/internal/ipc"
)

// Session lifecycle, owned by the main loop: active sessions are in
// d.sessions; a detached session (connection gone, delivery state held for
// the resume window) is in d.detached; a gone session is inert and any
// late unregister for it is ignored.
const (
	sessActive uint8 = iota
	sessDetached
	sessGone
)

// session is one connected client. The read side (readLoop) pumps frames
// into the daemon's main loop; the write side is a fan-out tier
// subscriber whose writer goroutine drains the client's bounded delivery
// queue onto the socket.
type session struct {
	d    *Daemon
	conn net.Conn
	// sub is this session's delivery-tier handle: its queue, its group
	// interests, and its shed/backlog counters. A resumed session adopts
	// the detached predecessor's subscriber, so the queue (and everything
	// accumulated in it) survives the connection change. The main loop
	// swaps it during that adoption while close may read it from any
	// goroutine, hence subMu.
	subMu sync.Mutex
	sub   *fanout.Subscriber

	// member is the client's private name once connected; id its resume
	// session ID (0 when resume is disabled); submits counts this client's
	// ring submissions. goodbye marks a deliberate close (CmdGoodbye), so
	// the disconnect is not held for resume. All owned by the main loop,
	// as are state and detachTimer.
	member  string
	id      uint64
	submits uint64
	goodbye bool
	state   uint8
	// detachTimer expires the detached session at the end of the resume
	// window.
	detachTimer *time.Timer

	closeOnce sync.Once
	closed    chan struct{}
}

// ipcSink adapts a net.Conn to the fan-out tier's frame sink.
type ipcSink struct{ conn net.Conn }

func (k ipcSink) WriteFrame(typ byte, body []byte) error {
	return ipc.WriteFrame(k.conn, typ, body)
}

func newSession(d *Daemon, conn net.Conn) *session {
	s := &session{
		d:      d,
		conn:   conn,
		closed: make(chan struct{}),
	}
	s.sub = d.tier.Register(ipcSink{conn}, s.killFunc(), s.exitFunc())
	return s
}

// killFunc builds the subscriber kill callback (PolicyDisconnect,
// synchronous from Publish): sever the connection so a writer stuck in a
// blocking socket write exits.
func (s *session) killFunc() func() {
	return func() {
		s.d.logf("daemon: disconnecting slow client %s", s.member)
		s.close()
	}
}

// exitFunc builds the subscriber exit callback (writer stopped): hand the
// session to the main loop for teardown or detach. Runs for socket write
// errors, slow-client kills, and plain closes alike.
func (s *session) exitFunc() func(error) {
	return func(err error) {
		if err != nil && !errors.Is(err, fanout.ErrSlowClient) {
			s.d.logf("daemon: client writer: %v", err)
		}
		s.unregister()
	}
}

// readLoop pumps client frames into the daemon's main loop.
func (s *session) readLoop() {
	defer s.unregister()
	for {
		typ, body, err := ipc.ReadFrame(s.conn)
		if err != nil {
			return
		}
		select {
		case s.d.reqCh <- request{sess: s, typ: typ, body: body}:
		case <-s.d.stopCh:
			return
		case <-s.closed:
			return
		}
	}
}

// send enqueues a control frame (welcome, view, stats) for the client.
// Ordered application messages do not come through here — they are routed
// by the fan-out tier, which applies the backpressure policy.
func (s *session) send(typ byte, body []byte) {
	s.sub.Send(typ, body)
}

// unregister asks the main loop to decide this session's fate: drop, or
// detach for the resume window.
func (s *session) unregister() {
	select {
	case s.d.unregCh <- s:
	case <-s.d.stopCh:
		s.close()
	}
}

// close terminates the connection and the delivery queue; safe to call
// multiple times and from any goroutine.
func (s *session) close() {
	s.closeOnce.Do(func() {
		close(s.closed)
		s.subMu.Lock()
		sub := s.sub
		s.subMu.Unlock()
		sub.Close()
		s.conn.Close()
	})
}
