package daemon

import (
	"net"
	"sync"

	"accelring/internal/ipc"
)

// sessionQueue is the outbound frame queue depth per client; a client that
// falls this far behind is disconnected rather than allowed to stall the
// daemon.
const sessionQueue = 8192

// session is one connected client.
type session struct {
	d    *Daemon
	conn net.Conn

	// member is the client's private name once connected; submits and
	// deliveries count this client's ring submissions and the ordered
	// messages delivered to it. All three are owned by the daemon main
	// loop.
	member     string
	submits    uint64
	deliveries uint64

	out       chan outFrame
	closeOnce sync.Once
	closed    chan struct{}
}

type outFrame struct {
	typ  byte
	body []byte
}

func newSession(d *Daemon, conn net.Conn) *session {
	s := &session{
		d:      d,
		conn:   conn,
		out:    make(chan outFrame, sessionQueue),
		closed: make(chan struct{}),
	}
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		s.writeLoop()
	}()
	return s
}

// readLoop pumps client frames into the daemon's main loop.
func (s *session) readLoop() {
	defer s.unregister()
	for {
		typ, body, err := ipc.ReadFrame(s.conn)
		if err != nil {
			return
		}
		select {
		case s.d.reqCh <- request{sess: s, typ: typ, body: body}:
		case <-s.d.stopCh:
			return
		case <-s.closed:
			return
		}
	}
}

// writeLoop drains the outbound queue onto the socket.
func (s *session) writeLoop() {
	for {
		select {
		case f := <-s.out:
			if err := ipc.WriteFrame(s.conn, f.typ, f.body); err != nil {
				s.unregister()
				return
			}
		case <-s.closed:
			return
		}
	}
}

// send enqueues a frame for the client; a client too slow to drain its
// queue is disconnected (ordered delivery to the ring must not block on a
// stuck client).
func (s *session) send(typ byte, body []byte) {
	select {
	case s.out <- outFrame{typ: typ, body: body}:
	case <-s.closed:
	default:
		s.d.logf("daemon: disconnecting slow client %s", s.member)
		s.unregister()
	}
}

// unregister asks the main loop to drop this session.
func (s *session) unregister() {
	select {
	case s.d.unregCh <- s:
	case <-s.d.stopCh:
		s.close()
	}
}

// close terminates the connection; safe to call multiple times and from
// any goroutine.
func (s *session) close() {
	s.closeOnce.Do(func() {
		close(s.closed)
		s.conn.Close()
	})
}
