package daemon

import (
	"errors"
	"net"
	"sync"

	"accelring/internal/fanout"
	"accelring/internal/ipc"
)

// session is one connected client. The read side (readLoop) pumps frames
// into the daemon's main loop; the write side is a fan-out tier
// subscriber whose writer goroutine drains the client's bounded delivery
// queue onto the socket.
type session struct {
	d    *Daemon
	conn net.Conn
	// sub is this session's delivery-tier handle: its queue, its group
	// interests, and its shed/backlog counters.
	sub *fanout.Subscriber

	// member is the client's private name once connected; submits counts
	// this client's ring submissions. Both are owned by the daemon main
	// loop.
	member  string
	submits uint64

	closeOnce sync.Once
	closed    chan struct{}
}

// ipcSink adapts a net.Conn to the fan-out tier's frame sink.
type ipcSink struct{ conn net.Conn }

func (k ipcSink) WriteFrame(typ byte, body []byte) error {
	return ipc.WriteFrame(k.conn, typ, body)
}

func newSession(d *Daemon, conn net.Conn) *session {
	s := &session{
		d:      d,
		conn:   conn,
		closed: make(chan struct{}),
	}
	s.sub = d.tier.Register(ipcSink{conn},
		// onKill (PolicyDisconnect, synchronous from Publish): sever the
		// connection so a writer stuck in a blocking socket write exits.
		func() {
			d.logf("daemon: disconnecting slow client %s", s.member)
			s.close()
		},
		// onExit (writer stopped): hand the session to the main loop for
		// teardown. Runs for socket write errors, slow-client kills, and
		// plain closes alike; dropSession is idempotent.
		func(err error) {
			if err != nil && !errors.Is(err, fanout.ErrSlowClient) {
				d.logf("daemon: client writer: %v", err)
			}
			s.unregister()
		})
	return s
}

// readLoop pumps client frames into the daemon's main loop.
func (s *session) readLoop() {
	defer s.unregister()
	for {
		typ, body, err := ipc.ReadFrame(s.conn)
		if err != nil {
			return
		}
		select {
		case s.d.reqCh <- request{sess: s, typ: typ, body: body}:
		case <-s.d.stopCh:
			return
		case <-s.closed:
			return
		}
	}
}

// send enqueues a control frame (welcome, view, stats) for the client.
// Ordered application messages do not come through here — they are routed
// by the fan-out tier, which applies the backpressure policy.
func (s *session) send(typ byte, body []byte) {
	s.sub.Send(typ, body)
}

// unregister asks the main loop to drop this session.
func (s *session) unregister() {
	select {
	case s.d.unregCh <- s:
	case <-s.d.stopCh:
		s.close()
	}
}

// close terminates the connection and the delivery queue; safe to call
// multiple times and from any goroutine.
func (s *session) close() {
	s.closeOnce.Do(func() {
		close(s.closed)
		s.sub.Close()
		s.conn.Close()
	})
}
