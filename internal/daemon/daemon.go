package daemon

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"accelring"
	"accelring/internal/fanout"
	"accelring/internal/ipc"
	"accelring/internal/wire"
)

// Config configures a daemon.
type Config struct {
	// Node is the daemon's ring participant, already started. The daemon
	// takes ownership of draining its events and closing it.
	Node *accelring.Node
	// Listener accepts client connections (Unix socket for co-located
	// clients, per the paper's recommendation; TCP also works). The
	// daemon takes ownership.
	Listener net.Listener
	// Logger receives operational messages; nil disables logging.
	Logger *log.Logger
	// Fanout configures the client delivery tier: per-client queue depth,
	// the backpressure policy applied to slow clients, and the resume
	// replay history depth. The zero value selects 8192-frame queues with
	// the disconnect policy, the classic Spread-style behavior.
	Fanout fanout.Config
	// ResumeWindow holds a disconnected client's delivery state (queue,
	// group memberships, subscriptions) for this long so the client can
	// reconnect and resume its stream via CmdResume. Zero disables resume:
	// a lost connection drops the session immediately, the pre-resume
	// behavior.
	ResumeWindow time.Duration
}

// Daemon serves local clients, ordering their messages and group
// membership operations through the ring.
type Daemon struct {
	node *accelring.Node
	ln   net.Listener
	log  *log.Logger

	// reqCh funnels client requests into the main loop.
	reqCh chan request
	// unregister removes a dead session.
	unregCh chan *session

	wg       sync.WaitGroup
	stopOnce sync.Once
	stopCh   chan struct{}

	// tier is the client delivery tier: interest registry, bounded
	// per-client queues, backpressure policy. Registration and publishing
	// are driven from the main loop; the tier's writer goroutines drain
	// the queues.
	tier *fanout.Tier

	// resumeWindow mirrors Config.ResumeWindow; expireCh delivers resume
	// window expiries into the main loop; drainCh asks the main loop to
	// announce a drain to every session, closing the ack channel once the
	// announcements are enqueued (so Drain's backlog poll counts them).
	resumeWindow time.Duration
	expireCh     chan uint64
	drainCh      chan chan struct{}

	// Serving-tier availability counters, atomic because Snapshot reads
	// them from arbitrary goroutines while the main loop writes.
	resumes       atomic.Uint64
	resumeGaps    atomic.Uint64
	resumeExpired atomic.Uint64
	draining      atomic.Bool
	drainMs       atomic.Int64

	// state owned by the main loop
	sessions map[*session]bool
	detached map[uint64]*session // session ID → detached session
	groups   map[string][]string // group → sorted private member names
	local    map[string]*session // private member name → session
	ring     accelring.Configuration
	// deliverySeq stamps each routed app message, strictly monotone in
	// delivery order — the global resume cursor clients acknowledge.
	// groupSeq numbers each group's stream; driven purely by the ring's
	// total order, it is identical on every daemon and lets clients detect
	// per-group gaps. Entries are never deleted: the map grows with the
	// number of distinct group names ever addressed, which keeps a group's
	// numbering stable across its membership going empty.
	deliverySeq uint64
	groupSeq    map[string]uint64
}

type request struct {
	sess *session
	typ  byte
	body []byte
}

// New creates a daemon and starts serving.
func New(cfg Config) (*Daemon, error) {
	if cfg.Node == nil || cfg.Listener == nil {
		return nil, fmt.Errorf("daemon: Node and Listener are required")
	}
	cfg.Fanout.Resumable = cfg.ResumeWindow > 0
	d := &Daemon{
		node:         cfg.Node,
		ln:           cfg.Listener,
		log:          cfg.Logger,
		tier:         fanout.NewTier(cfg.Fanout),
		reqCh:        make(chan request, 256),
		unregCh:      make(chan *session, 16),
		stopCh:       make(chan struct{}),
		resumeWindow: cfg.ResumeWindow,
		expireCh:     make(chan uint64, 16),
		drainCh:      make(chan chan struct{}),
		sessions:     make(map[*session]bool),
		detached:     make(map[uint64]*session),
		groups:       make(map[string][]string),
		local:        make(map[string]*session),
		groupSeq:     make(map[string]uint64),
	}
	cfg.Node.AttachFanout(d)
	d.wg.Add(2)
	go d.acceptLoop()
	go d.mainLoop()
	return d, nil
}

// Close shuts the daemon down: client connections, the listener and the
// ring node.
func (d *Daemon) Close() error {
	d.stopOnce.Do(func() { close(d.stopCh) })
	d.ln.Close()
	err := d.node.Close()
	d.wg.Wait()
	return err
}

func (d *Daemon) logf(format string, args ...any) {
	if d.log != nil {
		d.log.Printf(format, args...)
	}
}

// memberName builds the globally unique private name of a local client.
func (d *Daemon) memberName(client string) string {
	return client + "@" + d.node.ID().String()
}

// memberDaemon extracts the daemon part of a private member name.
func memberDaemon(member string) string {
	if i := strings.LastIndexByte(member, '@'); i >= 0 {
		return member[i+1:]
	}
	return ""
}

func (d *Daemon) acceptLoop() {
	defer d.wg.Done()
	for {
		conn, err := d.ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return // listener closed, daemon shutting down
			}
			select {
			case <-d.stopCh:
				return
			default:
			}
			// Transient accept failure — EMFILE under a connect burst,
			// ECONNABORTED from a dial that gave up in the backlog. The
			// listener is still valid: back off briefly and keep serving,
			// otherwise every dial queued behind the failure hangs forever.
			d.logf("accept: %v (retrying)", err)
			time.Sleep(10 * time.Millisecond)
			continue
		}
		s := newSession(d, conn)
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			s.readLoop()
		}()
	}
}

// mainLoop owns all daemon state: it applies ordered ring events and
// serves client requests, strictly serialized.
func (d *Daemon) mainLoop() {
	defer d.wg.Done()
	defer d.closeAllSessions()
	events := d.node.Events()
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				return
			}
			d.applyRingEvent(ev)
		case req := <-d.reqCh:
			d.applyRequest(req)
		case s := <-d.unregCh:
			d.sessionGone(s)
		case id := <-d.expireCh:
			d.expireDetached(id)
		case ack := <-d.drainCh:
			for s := range d.sessions {
				s.send(ipc.EvtDrain, nil)
			}
			close(ack)
		case <-d.stopCh:
			return
		}
	}
}

func (d *Daemon) closeAllSessions() {
	for s := range d.sessions {
		s.close()
	}
	for _, s := range d.detached {
		if s.detachTimer != nil {
			s.detachTimer.Stop()
		}
		s.close()
	}
}

// applyRequest handles one client frame.
func (d *Daemon) applyRequest(req request) {
	s := req.sess
	switch req.typ {
	case ipc.CmdConnect:
		name, _, err := ipc.GetString(req.body)
		if err != nil || !validName(name) {
			s.close()
			return
		}
		private := d.memberName(name)
		if !d.claimName(private) {
			s.close()
			return
		}
		s.member = private
		s.id = d.newSessionID()
		d.sessions[s] = true
		d.local[private] = s
		welcome := ipc.PutString(nil, private)
		welcome = ipc.PutUint64(welcome, s.id)
		s.send(ipc.EvtWelcome, welcome)
	case ipc.CmdResume:
		if s.member != "" {
			s.close()
			return
		}
		d.applyResume(s, req.body)
	case ipc.CmdGoodbye:
		// Deliberate close: tear down now instead of holding the session
		// for the resume window.
		s.goodbye = true
		d.dropSession(s)
	case ipc.CmdJoin, ipc.CmdLeave:
		if s.member == "" {
			s.close()
			return
		}
		group, _, err := ipc.GetString(req.body)
		if err != nil || group == "" || len(group) > wire.MaxGroupName {
			s.close()
			return
		}
		typ := ringJoin
		if req.typ == ipc.CmdLeave {
			typ = ringLeave
		}
		p := membershipPayload{Member: s.member, Group: group}
		if err := d.node.Submit(p.encode(typ), accelring.Agreed); err != nil {
			d.logf("daemon: submit membership: %v", err)
		}
	case ipc.CmdSubscribe, ipc.CmdUnsubscribe:
		// Local-only interest in a group's ordered stream: no ring
		// traffic, no membership views — the scalable path for large
		// read-only audiences.
		if s.member == "" {
			s.close()
			return
		}
		group, _, err := ipc.GetString(req.body)
		if err != nil || group == "" || len(group) > wire.MaxGroupName {
			s.close()
			return
		}
		if req.typ == ipc.CmdSubscribe {
			d.tier.Subscribe(s.sub, group, fanout.SourceExplicit)
		} else {
			d.tier.Unsubscribe(s.sub, group, fanout.SourceExplicit)
		}
	case ipc.CmdMulticast:
		if s.member == "" {
			s.close()
			return
		}
		if len(req.body) < 2 {
			s.close()
			return
		}
		svc := wire.Service(req.body[0])
		flags := req.body[1]
		if !svc.Valid() {
			s.close()
			return
		}
		groups, rest, err := ipc.GetStrings(req.body[2:])
		if err != nil || len(groups) == 0 {
			s.close()
			return
		}
		p := appPayload{Sender: s.member, Flags: flags, Groups: groups, Payload: rest}
		// The encoded payload must be a fresh allocation per submit: the
		// engine retains it until the message stabilizes ring-wide, so no
		// scratch reuse is possible here (encode sizes it exactly instead).
		encoded, err := p.encode()
		if err != nil {
			s.close()
			return
		}
		if err := d.node.Submit(encoded, svc); err != nil {
			d.logf("daemon: submit: %v", err)
			return
		}
		s.submits++
	case ipc.CmdStats:
		if s.member == "" {
			s.close()
			return
		}
		s.send(ipc.EvtStats, d.encodeStats())
	default:
		s.close()
	}
}

// validName screens a client-chosen name: the daemon appends "@<node>" to
// build the private name, so the separator and whitespace are reserved.
func validName(name string) bool {
	return name != "" && !strings.ContainsAny(name, "@ \n")
}

// claimName makes a private name available for a new session: a name held
// by a detached session is reclaimed by evicting it (the client came back
// without resuming — e.g. it restarted and lost its session ID); a name
// held by a live session stays taken. Main loop only.
func (d *Daemon) claimName(private string) bool {
	existing := d.local[private]
	if existing == nil {
		return true
	}
	if existing.state == sessDetached {
		d.evictDetached(existing)
		return true
	}
	return false
}

// newSessionID draws a random non-zero resume session ID, or 0 when
// resume is disabled. Main loop only.
func (d *Daemon) newSessionID() uint64 {
	if d.resumeWindow <= 0 {
		return 0
	}
	var b [8]byte
	for {
		if _, err := rand.Read(b[:]); err != nil {
			// Practically unreachable; fall back to a counter rather than
			// refuse service.
			d.deliverySeq++
			return d.deliverySeq | 1<<63
		}
		id := binary.BigEndian.Uint64(b[:])
		if id != 0 && d.detached[id] == nil {
			return id
		}
	}
}

// applyResume handles a CmdResume handshake on a fresh connection: find
// the detached session, announce the resume (with its gap verdict) ahead
// of the replay, and graft the detached delivery state onto this
// connection. An unknown, expired, or dead session falls back to a fresh
// one under the same name — the client then resets its cursors and
// replays its joins and subscriptions.
func (d *Daemon) applyResume(s *session, body []byte) {
	name, rest, err := ipc.GetString(body)
	if err != nil || !validName(name) {
		s.close()
		return
	}
	id, rest, err := ipc.GetUint64(rest)
	if err != nil {
		s.close()
		return
	}
	stamp, rest, err := ipc.GetUint64(rest)
	if err != nil {
		s.close()
		return
	}
	// Per-group cursors ride along for diagnostics; replay is driven by
	// the global stamp, so they are only validated here.
	if len(rest) < 2 {
		s.close()
		return
	}
	n := int(binary.BigEndian.Uint16(rest))
	rest = rest[2:]
	for i := 0; i < n; i++ {
		if _, rest, err = ipc.GetString(rest); err != nil {
			s.close()
			return
		}
		if _, rest, err = ipc.GetUint64(rest); err != nil {
			s.close()
			return
		}
	}
	private := d.memberName(name)
	old := d.detached[id]
	if id == 0 || old == nil || old.member != private {
		d.resumeFresh(s, private)
		return
	}
	gap, err := d.tier.ResumeGap(old.sub, stamp)
	if err != nil {
		// The session died while away (e.g. PolicyDisconnect overflowed
		// its queue): evict it and fall back to a fresh session.
		d.evictDetached(old)
		d.resumeFresh(s, private)
		return
	}
	// Announce the resume synchronously so it is on the wire before the
	// replay writer starts; the deadline bounds how long a wedged client
	// can hold the main loop.
	flags := ipc.ResumedFlagResumed
	if gap {
		flags |= ipc.ResumedFlagGap
	}
	resp := []byte{flags}
	resp = ipc.PutString(resp, private)
	resp = ipc.PutUint64(resp, id)
	s.conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	werr := ipc.WriteFrame(s.conn, ipc.EvtResumed, resp)
	s.conn.SetWriteDeadline(time.Time{})
	if werr != nil {
		s.close()
		return
	}
	// Retire the placeholder subscriber registered at accept: Detach first
	// clears its callbacks, so closing it cannot fire an unregister for
	// the session that is about to adopt the real one.
	d.tier.Detach(s.sub)
	d.tier.Unregister(s.sub)
	// Adopt the detached session's identity and delivery state.
	if old.detachTimer != nil {
		old.detachTimer.Stop()
		old.detachTimer = nil
	}
	delete(d.detached, id)
	old.state = sessGone
	s.subMu.Lock()
	s.sub = old.sub
	s.subMu.Unlock()
	s.member, s.id, s.submits = old.member, old.id, old.submits
	d.sessions[s] = true
	d.local[private] = s
	if _, err := d.tier.Attach(s.sub, ipcSink{s.conn}, stamp, s.killFunc(), s.exitFunc()); err != nil {
		d.dropSession(s)
		return
	}
	d.resumes.Add(1)
	if gap {
		d.resumeGaps.Add(1)
	}
	d.logf("daemon: resumed session %s (gap=%v)", private, gap)
}

// resumeFresh answers a failed resume with a brand-new session under the
// requested name: EvtResumed without the resumed flag, carrying the new
// private name and session ID.
func (d *Daemon) resumeFresh(s *session, private string) {
	if !d.claimName(private) {
		s.close()
		return
	}
	s.member = private
	s.id = d.newSessionID()
	d.sessions[s] = true
	d.local[private] = s
	resp := []byte{0}
	resp = ipc.PutString(resp, private)
	resp = ipc.PutUint64(resp, s.id)
	s.send(ipc.EvtResumed, resp)
}

// sessionGone decides a disconnected session's fate on the main loop:
// detach (hold for resume) when the window is open and the disconnect was
// not deliberate, drop otherwise. Duplicate notifications — the read loop
// and the writer both report the same death — are ignored.
func (d *Daemon) sessionGone(s *session) {
	if s.state != sessActive {
		return
	}
	if d.resumeWindow > 0 && s.member != "" && d.sessions[s] && !s.goodbye && !d.draining.Load() {
		d.detachSession(s)
		return
	}
	d.dropSession(s)
}

// detachSession parks a disconnected session for the resume window: the
// delivery queue keeps accumulating, group memberships and subscriptions
// stay registered, and the ring is told nothing.
func (d *Daemon) detachSession(s *session) {
	if !d.tier.Detach(s.sub) {
		// Queue already closed (slow-client kill, shutdown): not resumable.
		d.dropSession(s)
		return
	}
	delete(d.sessions, s)
	s.conn.Close()
	s.state = sessDetached
	d.detached[s.id] = s
	id := s.id
	s.detachTimer = time.AfterFunc(d.resumeWindow, func() {
		select {
		case d.expireCh <- id:
		case <-d.stopCh:
		}
	})
	d.logf("daemon: holding session %s for resume", s.member)
}

// expireDetached ends a resume window: the session never came back.
func (d *Daemon) expireDetached(id uint64) {
	s := d.detached[id]
	if s == nil {
		return
	}
	delete(d.detached, id)
	d.resumeExpired.Add(1)
	d.logf("daemon: resume window expired for %s", s.member)
	d.dropSession(s)
}

// evictDetached removes a detached session outside the normal expiry path
// (reclaimed name, dead queue at resume).
func (d *Daemon) evictDetached(s *session) {
	delete(d.detached, s.id)
	d.dropSession(s)
}

// Drain performs a graceful shutdown: stop accepting connections,
// announce the drain to every client (EvtDrain), flush the fan-out queues
// for up to timeout, then close the daemon — which leaves the ring
// cleanly. New disconnects during a drain are dropped, not held for
// resume.
func (d *Daemon) Drain(timeout time.Duration) error {
	start := time.Now()
	d.draining.Store(true)
	d.ln.Close()
	deadline := start.Add(timeout)
	// Hand the announcement to the main loop and wait until it has
	// enqueued EvtDrain everywhere — otherwise the backlog poll below
	// could see an already-empty tier and close sessions before the
	// announcement is even written.
	ack := make(chan struct{})
	select {
	case d.drainCh <- ack:
		select {
		case <-ack:
		case <-d.stopCh:
		case <-time.After(time.Until(deadline)):
		}
	case <-d.stopCh:
	case <-time.After(time.Until(deadline)):
	}
	for time.Now().Before(deadline) {
		if d.tier.Backlog() == 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	d.drainMs.Store(time.Since(start).Milliseconds())
	d.logf("daemon: drain flushed in %dms", d.drainMs.Load())
	return d.Close()
}

// Snapshot implements accelring.FanoutSource: the delivery tier's
// aggregate counters plus the daemon's resume and drain accounting, so
// Node.Metrics (and CmdStats, ringmon, BENCH reports on top of it) carry
// the serving tier's availability counters.
func (d *Daemon) Snapshot() fanout.TierSnapshot {
	fs := d.tier.Snapshot()
	fs.Resumes = d.resumes.Load()
	fs.ResumeGaps = d.resumeGaps.Load()
	fs.ResumeExpired = d.resumeExpired.Load()
	fs.DrainMs = d.drainMs.Load()
	return fs
}

// statsClientCap bounds the per-client detail in one stats snapshot: a
// ~100-byte entry per client times tens of thousands of sessions would
// exceed the IPC frame limit and sever the requesting client. Past the
// cap, only the aggregate tier counters are reported.
const statsClientCap = 256

// encodeStats assembles the daemon's StatsSnapshot as JSON: client
// counters (including each client's fan-out queue state), group/session
// and subscription totals, and the ring node's metrics.
func (d *Daemon) encodeStats() []byte {
	fs := d.Snapshot()
	snap := ipc.StatsSnapshot{
		Daemon:        d.node.ID().String(),
		Sessions:      len(d.sessions),
		Groups:        len(d.groups),
		Subscriptions: fs.Subscriptions,
		Shed:          fs.Shed,
		Disconnects:   fs.Disconnects,
		FanoutPolicy:  fs.Policy,
		Detached:      len(d.detached),
		Resumes:       fs.Resumes,
		ResumeGaps:    fs.ResumeGaps,
		ResumeExpired: fs.ResumeExpired,
		Draining:      d.draining.Load(),
		DrainMs:       fs.DrainMs,
	}
	if len(d.sessions) <= statsClientCap {
		snap.Clients = make(map[string]ipc.ClientStats, len(d.sessions))
		for s := range d.sessions {
			if s.member == "" {
				continue
			}
			st := s.sub.Stats()
			snap.Clients[s.member] = ipc.ClientStats{
				Submits:       s.submits,
				Deliveries:    st.Msgs,
				Shed:          st.Shed,
				Backlog:       st.Backlog,
				HighWater:     st.HighWater,
				Subscriptions: st.Subscriptions,
			}
		}
	} else {
		snap.ClientsOmitted = len(d.sessions)
	}
	if node, err := d.node.Metrics(); err == nil {
		if raw, err := json.Marshal(node); err == nil {
			snap.Node = raw
		}
	}
	body, err := json.Marshal(snap)
	if err != nil {
		d.logf("daemon: encoding stats: %v", err)
		return []byte("{}")
	}
	return body
}

// dropSession removes a disconnected client, multicasting leaves for every
// group it belonged to so all daemons converge.
func (d *Daemon) dropSession(s *session) {
	s.state = sessGone
	if s.detachTimer != nil {
		s.detachTimer.Stop()
		s.detachTimer = nil
	}
	// Always withdraw the delivery-tier registration — even a session
	// that never completed CmdConnect holds one.
	d.tier.Unregister(s.sub)
	if !d.sessions[s] && s.member == "" {
		return
	}
	delete(d.sessions, s)
	if s.member != "" {
		delete(d.local, s.member)
		for group, members := range d.groups {
			if containsString(members, s.member) {
				p := membershipPayload{Member: s.member, Group: group}
				if err := d.node.Submit(p.encode(ringLeave), accelring.Agreed); err != nil {
					d.logf("daemon: submit leave: %v", err)
				}
			}
		}
		s.member = ""
	}
	s.close()
}

// applyRingEvent applies one totally ordered ring event.
func (d *Daemon) applyRingEvent(ev accelring.Event) {
	switch e := ev.(type) {
	case accelring.Message:
		d.applyRingMessage(e)
	case accelring.ConfigChange:
		if !e.Transitional {
			d.applyRingConfig(e.Config)
		}
	}
}

func (d *Daemon) applyRingMessage(m accelring.Message) {
	if len(m.Payload) == 0 {
		return
	}
	typ, body := m.Payload[0], m.Payload[1:]
	switch typ {
	case ringApp:
		p, err := decodeApp(body)
		if err != nil {
			d.logf("daemon: bad app payload from %s: %v", m.Sender, err)
			return
		}
		d.routeApp(p, m.Service)
	case ringJoin, ringLeave:
		p, err := decodeMembership(body)
		if err != nil {
			d.logf("daemon: bad membership payload from %s: %v", m.Sender, err)
			return
		}
		if typ == ringJoin {
			d.applyJoin(p.Member, p.Group)
		} else {
			d.applyLeave(p.Member, p.Group)
		}
	}
}

// routeApp hands an ordered application message to the fan-out tier: the
// frame body is encoded exactly once and routed to every local session
// interested in any of the destination groups — members and explicit
// subscribers alike — exactly once per session, with the tier's
// backpressure policy deciding what happens at full queues. The body must
// stay a fresh allocation because subscriber queues retain it until their
// writers drain it.
func (d *Daemon) routeApp(p *appPayload, svc wire.Service) {
	d.deliverySeq++
	stamp := d.deliverySeq
	body := make([]byte, 0, 32+len(p.Sender)+len(p.Payload)+12*len(p.Groups))
	body = append(body, byte(svc))
	body = ipc.PutUint64(body, stamp)
	body = ipc.PutString(body, p.Sender)
	var cnt [2]byte
	binary.BigEndian.PutUint16(cnt[:], uint16(len(p.Groups)))
	body = append(body, cnt[:]...)
	for _, g := range p.Groups {
		d.groupSeq[g]++
		body = ipc.PutString(body, g)
		body = ipc.PutUint64(body, d.groupSeq[g])
	}
	body = append(body, p.Payload...)
	var skip *fanout.Subscriber
	if p.Flags&flagSelfDiscard != 0 {
		if s := d.local[p.Sender]; s != nil {
			skip = s.sub
		}
	}
	d.tier.Publish(p.Groups, ipc.EvtMessage, body, stamp, skip)
}

// applyJoin updates a group view and notifies local members. A local
// joiner also gains membership-sourced delivery interest in the tier.
func (d *Daemon) applyJoin(member, group string) {
	members := d.groups[group]
	if containsString(members, member) {
		return
	}
	members = append(members, member)
	sort.Strings(members)
	d.groups[group] = members
	if s := d.local[member]; s != nil {
		d.tier.Subscribe(s.sub, group, fanout.SourceMember)
	}
	d.sendView(group)
}

// applyLeave updates a group view and notifies local members. A local
// leaver loses its membership-sourced interest; an explicit subscription
// to the same group, if any, keeps delivering.
func (d *Daemon) applyLeave(member, group string) {
	members := d.groups[group]
	idx := sort.SearchStrings(members, member)
	if idx >= len(members) || members[idx] != member {
		return
	}
	if s := d.local[member]; s != nil {
		d.tier.Unsubscribe(s.sub, group, fanout.SourceMember)
	}
	members = append(members[:idx], members[idx+1:]...)
	if len(members) == 0 {
		delete(d.groups, group)
	} else {
		d.groups[group] = members
	}
	d.sendView(group)
	// The departed member also learns it left, if local.
	if s := d.local[member]; s != nil {
		s.send(ipc.EvtView, encodeView(group, d.groups[group]))
	}
}

// applyRingConfig reconciles groups with a new daemon-level membership:
// clients of daemons that left the configuration are removed from every
// group (their daemons will re-join them through recovery if they merge
// back later).
func (d *Daemon) applyRingConfig(cfg accelring.Configuration) {
	d.ring = cfg
	alive := make(map[string]bool, len(cfg.Members))
	for _, id := range cfg.Members {
		alive[id.String()] = true
	}
	for group, members := range d.groups {
		kept := members[:0]
		changed := false
		for _, m := range members {
			if alive[memberDaemon(m)] {
				kept = append(kept, m)
			} else {
				changed = true
			}
		}
		if !changed {
			continue
		}
		if len(kept) == 0 {
			delete(d.groups, group)
		} else {
			d.groups[group] = kept
		}
		d.sendView(group)
	}
	// Re-announce local memberships to daemons that merged in: joins are
	// idempotent, and ordering them through the ring rebuilds a consistent
	// view everywhere after a partition heal.
	for group, members := range d.groups {
		for _, m := range members {
			if d.local[m] != nil {
				p := membershipPayload{Member: m, Group: group}
				if err := d.node.Submit(p.encode(ringJoin), accelring.Agreed); err != nil {
					d.logf("daemon: re-announce join: %v", err)
				}
			}
		}
	}
}

// sendView sends the current view of a group to its local members.
func (d *Daemon) sendView(group string) {
	members := d.groups[group]
	body := encodeView(group, members)
	for _, m := range members {
		if s := d.local[m]; s != nil {
			s.send(ipc.EvtView, body)
		}
	}
}

func encodeView(group string, members []string) []byte {
	body := ipc.PutString(nil, group)
	return ipc.PutStrings(body, members)
}

func containsString(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}
