package daemon

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"accelring"
	"accelring/internal/fanout"
	"accelring/internal/ipc"
	"accelring/internal/wire"
)

// Config configures a daemon.
type Config struct {
	// Node is the daemon's ring participant, already started. The daemon
	// takes ownership of draining its events and closing it.
	Node *accelring.Node
	// Listener accepts client connections (Unix socket for co-located
	// clients, per the paper's recommendation; TCP also works). The
	// daemon takes ownership.
	Listener net.Listener
	// Logger receives operational messages; nil disables logging.
	Logger *log.Logger
	// Fanout configures the client delivery tier: per-client queue depth
	// and the backpressure policy applied to slow clients. The zero value
	// selects 8192-frame queues with the disconnect policy, the classic
	// Spread-style behavior.
	Fanout fanout.Config
}

// Daemon serves local clients, ordering their messages and group
// membership operations through the ring.
type Daemon struct {
	node *accelring.Node
	ln   net.Listener
	log  *log.Logger

	// reqCh funnels client requests into the main loop.
	reqCh chan request
	// unregister removes a dead session.
	unregCh chan *session

	wg       sync.WaitGroup
	stopOnce sync.Once
	stopCh   chan struct{}

	// tier is the client delivery tier: interest registry, bounded
	// per-client queues, backpressure policy. Registration and publishing
	// are driven from the main loop; the tier's writer goroutines drain
	// the queues.
	tier *fanout.Tier

	// state owned by the main loop
	sessions map[*session]bool
	groups   map[string][]string // group → sorted private member names
	local    map[string]*session // private member name → session
	ring     accelring.Configuration
}

type request struct {
	sess *session
	typ  byte
	body []byte
}

// New creates a daemon and starts serving.
func New(cfg Config) (*Daemon, error) {
	if cfg.Node == nil || cfg.Listener == nil {
		return nil, fmt.Errorf("daemon: Node and Listener are required")
	}
	d := &Daemon{
		node:     cfg.Node,
		ln:       cfg.Listener,
		log:      cfg.Logger,
		tier:     fanout.NewTier(cfg.Fanout),
		reqCh:    make(chan request, 256),
		unregCh:  make(chan *session, 16),
		stopCh:   make(chan struct{}),
		sessions: make(map[*session]bool),
		groups:   make(map[string][]string),
		local:    make(map[string]*session),
	}
	cfg.Node.AttachFanout(d.tier)
	d.wg.Add(2)
	go d.acceptLoop()
	go d.mainLoop()
	return d, nil
}

// Close shuts the daemon down: client connections, the listener and the
// ring node.
func (d *Daemon) Close() error {
	d.stopOnce.Do(func() { close(d.stopCh) })
	d.ln.Close()
	err := d.node.Close()
	d.wg.Wait()
	return err
}

func (d *Daemon) logf(format string, args ...any) {
	if d.log != nil {
		d.log.Printf(format, args...)
	}
}

// memberName builds the globally unique private name of a local client.
func (d *Daemon) memberName(client string) string {
	return client + "@" + d.node.ID().String()
}

// memberDaemon extracts the daemon part of a private member name.
func memberDaemon(member string) string {
	if i := strings.LastIndexByte(member, '@'); i >= 0 {
		return member[i+1:]
	}
	return ""
}

func (d *Daemon) acceptLoop() {
	defer d.wg.Done()
	for {
		conn, err := d.ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return // listener closed, daemon shutting down
			}
			select {
			case <-d.stopCh:
				return
			default:
			}
			// Transient accept failure — EMFILE under a connect burst,
			// ECONNABORTED from a dial that gave up in the backlog. The
			// listener is still valid: back off briefly and keep serving,
			// otherwise every dial queued behind the failure hangs forever.
			d.logf("accept: %v (retrying)", err)
			time.Sleep(10 * time.Millisecond)
			continue
		}
		s := newSession(d, conn)
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			s.readLoop()
		}()
	}
}

// mainLoop owns all daemon state: it applies ordered ring events and
// serves client requests, strictly serialized.
func (d *Daemon) mainLoop() {
	defer d.wg.Done()
	defer d.closeAllSessions()
	events := d.node.Events()
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				return
			}
			d.applyRingEvent(ev)
		case req := <-d.reqCh:
			d.applyRequest(req)
		case s := <-d.unregCh:
			d.dropSession(s)
		case <-d.stopCh:
			return
		}
	}
}

func (d *Daemon) closeAllSessions() {
	for s := range d.sessions {
		s.close()
	}
}

// applyRequest handles one client frame.
func (d *Daemon) applyRequest(req request) {
	s := req.sess
	switch req.typ {
	case ipc.CmdConnect:
		name, _, err := ipc.GetString(req.body)
		if err != nil || name == "" || strings.ContainsAny(name, "@ \n") {
			s.close()
			return
		}
		private := d.memberName(name)
		if _, taken := d.local[private]; taken {
			s.close()
			return
		}
		s.member = private
		d.sessions[s] = true
		d.local[private] = s
		s.send(ipc.EvtWelcome, ipc.PutString(nil, private))
	case ipc.CmdJoin, ipc.CmdLeave:
		if s.member == "" {
			s.close()
			return
		}
		group, _, err := ipc.GetString(req.body)
		if err != nil || group == "" || len(group) > wire.MaxGroupName {
			s.close()
			return
		}
		typ := ringJoin
		if req.typ == ipc.CmdLeave {
			typ = ringLeave
		}
		p := membershipPayload{Member: s.member, Group: group}
		if err := d.node.Submit(p.encode(typ), accelring.Agreed); err != nil {
			d.logf("daemon: submit membership: %v", err)
		}
	case ipc.CmdSubscribe, ipc.CmdUnsubscribe:
		// Local-only interest in a group's ordered stream: no ring
		// traffic, no membership views — the scalable path for large
		// read-only audiences.
		if s.member == "" {
			s.close()
			return
		}
		group, _, err := ipc.GetString(req.body)
		if err != nil || group == "" || len(group) > wire.MaxGroupName {
			s.close()
			return
		}
		if req.typ == ipc.CmdSubscribe {
			d.tier.Subscribe(s.sub, group, fanout.SourceExplicit)
		} else {
			d.tier.Unsubscribe(s.sub, group, fanout.SourceExplicit)
		}
	case ipc.CmdMulticast:
		if s.member == "" {
			s.close()
			return
		}
		if len(req.body) < 2 {
			s.close()
			return
		}
		svc := wire.Service(req.body[0])
		flags := req.body[1]
		if !svc.Valid() {
			s.close()
			return
		}
		groups, rest, err := ipc.GetStrings(req.body[2:])
		if err != nil || len(groups) == 0 {
			s.close()
			return
		}
		p := appPayload{Sender: s.member, Flags: flags, Groups: groups, Payload: rest}
		// The encoded payload must be a fresh allocation per submit: the
		// engine retains it until the message stabilizes ring-wide, so no
		// scratch reuse is possible here (encode sizes it exactly instead).
		encoded, err := p.encode()
		if err != nil {
			s.close()
			return
		}
		if err := d.node.Submit(encoded, svc); err != nil {
			d.logf("daemon: submit: %v", err)
			return
		}
		s.submits++
	case ipc.CmdStats:
		if s.member == "" {
			s.close()
			return
		}
		s.send(ipc.EvtStats, d.encodeStats())
	default:
		s.close()
	}
}

// statsClientCap bounds the per-client detail in one stats snapshot: a
// ~100-byte entry per client times tens of thousands of sessions would
// exceed the IPC frame limit and sever the requesting client. Past the
// cap, only the aggregate tier counters are reported.
const statsClientCap = 256

// encodeStats assembles the daemon's StatsSnapshot as JSON: client
// counters (including each client's fan-out queue state), group/session
// and subscription totals, and the ring node's metrics.
func (d *Daemon) encodeStats() []byte {
	fs := d.tier.Snapshot()
	snap := ipc.StatsSnapshot{
		Daemon:        d.node.ID().String(),
		Sessions:      len(d.sessions),
		Groups:        len(d.groups),
		Subscriptions: fs.Subscriptions,
		Shed:          fs.Shed,
		Disconnects:   fs.Disconnects,
		FanoutPolicy:  fs.Policy,
	}
	if len(d.sessions) <= statsClientCap {
		snap.Clients = make(map[string]ipc.ClientStats, len(d.sessions))
		for s := range d.sessions {
			if s.member == "" {
				continue
			}
			st := s.sub.Stats()
			snap.Clients[s.member] = ipc.ClientStats{
				Submits:       s.submits,
				Deliveries:    st.Msgs,
				Shed:          st.Shed,
				Backlog:       st.Backlog,
				HighWater:     st.HighWater,
				Subscriptions: st.Subscriptions,
			}
		}
	} else {
		snap.ClientsOmitted = len(d.sessions)
	}
	if node, err := d.node.Metrics(); err == nil {
		if raw, err := json.Marshal(node); err == nil {
			snap.Node = raw
		}
	}
	body, err := json.Marshal(snap)
	if err != nil {
		d.logf("daemon: encoding stats: %v", err)
		return []byte("{}")
	}
	return body
}

// dropSession removes a disconnected client, multicasting leaves for every
// group it belonged to so all daemons converge.
func (d *Daemon) dropSession(s *session) {
	// Always withdraw the delivery-tier registration — even a session
	// that never completed CmdConnect holds one.
	d.tier.Unregister(s.sub)
	if !d.sessions[s] && s.member == "" {
		return
	}
	delete(d.sessions, s)
	if s.member != "" {
		delete(d.local, s.member)
		for group, members := range d.groups {
			if containsString(members, s.member) {
				p := membershipPayload{Member: s.member, Group: group}
				if err := d.node.Submit(p.encode(ringLeave), accelring.Agreed); err != nil {
					d.logf("daemon: submit leave: %v", err)
				}
			}
		}
		s.member = ""
	}
	s.close()
}

// applyRingEvent applies one totally ordered ring event.
func (d *Daemon) applyRingEvent(ev accelring.Event) {
	switch e := ev.(type) {
	case accelring.Message:
		d.applyRingMessage(e)
	case accelring.ConfigChange:
		if !e.Transitional {
			d.applyRingConfig(e.Config)
		}
	}
}

func (d *Daemon) applyRingMessage(m accelring.Message) {
	if len(m.Payload) == 0 {
		return
	}
	typ, body := m.Payload[0], m.Payload[1:]
	switch typ {
	case ringApp:
		p, err := decodeApp(body)
		if err != nil {
			d.logf("daemon: bad app payload from %s: %v", m.Sender, err)
			return
		}
		d.routeApp(p, m.Service)
	case ringJoin, ringLeave:
		p, err := decodeMembership(body)
		if err != nil {
			d.logf("daemon: bad membership payload from %s: %v", m.Sender, err)
			return
		}
		if typ == ringJoin {
			d.applyJoin(p.Member, p.Group)
		} else {
			d.applyLeave(p.Member, p.Group)
		}
	}
}

// routeApp hands an ordered application message to the fan-out tier: the
// frame body is encoded exactly once and routed to every local session
// interested in any of the destination groups — members and explicit
// subscribers alike — exactly once per session, with the tier's
// backpressure policy deciding what happens at full queues. The body must
// stay a fresh allocation because subscriber queues retain it until their
// writers drain it.
func (d *Daemon) routeApp(p *appPayload, svc wire.Service) {
	body := make([]byte, 0, 16+len(p.Sender)+len(p.Payload))
	body = append(body, byte(svc))
	body = ipc.PutString(body, p.Sender)
	body = ipc.PutStrings(body, p.Groups)
	body = append(body, p.Payload...)
	var skip *fanout.Subscriber
	if p.Flags&flagSelfDiscard != 0 {
		if s := d.local[p.Sender]; s != nil {
			skip = s.sub
		}
	}
	d.tier.Publish(p.Groups, ipc.EvtMessage, body, skip)
}

// applyJoin updates a group view and notifies local members. A local
// joiner also gains membership-sourced delivery interest in the tier.
func (d *Daemon) applyJoin(member, group string) {
	members := d.groups[group]
	if containsString(members, member) {
		return
	}
	members = append(members, member)
	sort.Strings(members)
	d.groups[group] = members
	if s := d.local[member]; s != nil {
		d.tier.Subscribe(s.sub, group, fanout.SourceMember)
	}
	d.sendView(group)
}

// applyLeave updates a group view and notifies local members. A local
// leaver loses its membership-sourced interest; an explicit subscription
// to the same group, if any, keeps delivering.
func (d *Daemon) applyLeave(member, group string) {
	members := d.groups[group]
	idx := sort.SearchStrings(members, member)
	if idx >= len(members) || members[idx] != member {
		return
	}
	if s := d.local[member]; s != nil {
		d.tier.Unsubscribe(s.sub, group, fanout.SourceMember)
	}
	members = append(members[:idx], members[idx+1:]...)
	if len(members) == 0 {
		delete(d.groups, group)
	} else {
		d.groups[group] = members
	}
	d.sendView(group)
	// The departed member also learns it left, if local.
	if s := d.local[member]; s != nil {
		s.send(ipc.EvtView, encodeView(group, d.groups[group]))
	}
}

// applyRingConfig reconciles groups with a new daemon-level membership:
// clients of daemons that left the configuration are removed from every
// group (their daemons will re-join them through recovery if they merge
// back later).
func (d *Daemon) applyRingConfig(cfg accelring.Configuration) {
	d.ring = cfg
	alive := make(map[string]bool, len(cfg.Members))
	for _, id := range cfg.Members {
		alive[id.String()] = true
	}
	for group, members := range d.groups {
		kept := members[:0]
		changed := false
		for _, m := range members {
			if alive[memberDaemon(m)] {
				kept = append(kept, m)
			} else {
				changed = true
			}
		}
		if !changed {
			continue
		}
		if len(kept) == 0 {
			delete(d.groups, group)
		} else {
			d.groups[group] = kept
		}
		d.sendView(group)
	}
	// Re-announce local memberships to daemons that merged in: joins are
	// idempotent, and ordering them through the ring rebuilds a consistent
	// view everywhere after a partition heal.
	for group, members := range d.groups {
		for _, m := range members {
			if d.local[m] != nil {
				p := membershipPayload{Member: m, Group: group}
				if err := d.node.Submit(p.encode(ringJoin), accelring.Agreed); err != nil {
					d.logf("daemon: re-announce join: %v", err)
				}
			}
		}
	}
}

// sendView sends the current view of a group to its local members.
func (d *Daemon) sendView(group string) {
	members := d.groups[group]
	body := encodeView(group, members)
	for _, m := range members {
		if s := d.local[m]; s != nil {
			s.send(ipc.EvtView, body)
		}
	}
}

func encodeView(group string, members []string) []byte {
	body := ipc.PutString(nil, group)
	return ipc.PutStrings(body, members)
}

func containsString(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}
