package daemon

import (
	"fmt"
	"io"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"accelring"
	"accelring/internal/client"
	"accelring/internal/fanout"
	"accelring/internal/wire"
)

// startDaemonsResume is the cluster fixture with session resume enabled:
// disconnected clients are held for window, with histDepth frames of
// already-written history for replay.
func startDaemonsResume(t *testing.T, n int, window time.Duration, fcfg fanout.Config) *cluster {
	t.Helper()
	net0 := accelring.NewMemoryNetwork(17)
	dir := t.TempDir()
	members := make([]accelring.ParticipantID, 0, n)
	for i := 1; i <= n; i++ {
		members = append(members, accelring.ParticipantID(i))
	}
	c := &cluster{t: t}
	for _, id := range members {
		node, err := accelring.Start(accelring.Options{
			ID:                 id,
			Transport:          net0.Endpoint(id),
			Members:            members,
			TokenLossTimeout:   300 * time.Millisecond,
			TokenRetransPeriod: 60 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("node %d: %v", id, err)
		}
		sock := filepath.Join(dir, fmt.Sprintf("ringd-%d.sock", id))
		ln, err := net.Listen("unix", sock)
		if err != nil {
			t.Fatalf("listen %s: %v", sock, err)
		}
		d, err := New(Config{Node: node, Listener: ln, Fanout: fcfg, ResumeWindow: window})
		if err != nil {
			t.Fatalf("daemon %d: %v", id, err)
		}
		c.daemons = append(c.daemons, d)
		c.socks = append(c.socks, sock)
	}
	t.Cleanup(func() {
		for _, d := range c.daemons {
			d.Close()
		}
	})
	return c
}

// cutProxy forwards a Unix socket to a daemon socket and can sever every
// forwarded connection on demand, simulating a transport drop without
// touching the daemon — the client then redials through the proxy.
type cutProxy struct {
	t      *testing.T
	addr   string
	ln     net.Listener
	mu     sync.Mutex
	wires  []net.Conn
	paused bool
}

func newCutProxy(t *testing.T, target string) *cutProxy {
	t.Helper()
	addr := filepath.Join(t.TempDir(), "proxy.sock")
	ln, err := net.Listen("unix", addr)
	if err != nil {
		t.Fatal(err)
	}
	p := &cutProxy{t: t, addr: addr, ln: ln}
	go func() {
		for {
			up, err := ln.Accept()
			if err != nil {
				return
			}
			p.mu.Lock()
			paused := p.paused
			p.mu.Unlock()
			if paused {
				up.Close()
				continue
			}
			down, err := net.Dial("unix", target)
			if err != nil {
				up.Close()
				continue
			}
			p.mu.Lock()
			p.wires = append(p.wires, up, down)
			p.mu.Unlock()
			go func() { io.Copy(down, up); down.Close() }()
			go func() { io.Copy(up, down); up.Close() }()
		}
	}()
	t.Cleanup(func() { ln.Close(); p.cut() })
	return p
}

// cut severs every live forwarded connection.
func (p *cutProxy) cut() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.wires {
		c.Close()
	}
	p.wires = nil
}

// pause makes new connections fail until resume is called, holding the
// client in its backoff loop.
func (p *cutProxy) pause(v bool) {
	p.mu.Lock()
	p.paused = v
	p.mu.Unlock()
}

func dialResumable(t *testing.T, addr, name string) *client.Conn {
	t.Helper()
	c, err := client.Dial("unix", addr, name, client.Options{
		Reconnect:  true,
		BackoffMin: 10 * time.Millisecond,
		BackoffMax: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// wantPayloads asserts the client's next messages carry exactly these
// payloads in order (views and other events are skipped).
func wantPayloads(t *testing.T, c *client.Conn, want ...string) {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for _, w := range want {
		for {
			var ev client.Event
			var ok bool
			select {
			case ev, ok = <-c.Events():
				if !ok {
					t.Fatalf("events closed waiting for %q", w)
				}
			case <-deadline:
				t.Fatalf("timed out waiting for %q", w)
			}
			m, isMsg := ev.(client.Message)
			if !isMsg {
				continue
			}
			if string(m.Payload) != w {
				t.Fatalf("got payload %q, want %q", m.Payload, w)
			}
			break
		}
	}
}

// TestDaemonResumeMidBurst is the live end-to-end resume path: a client
// loses its transport mid-stream, messages keep flowing while it is away
// (accumulating in its detached delivery queue), and on reconnect the
// daemon resumes the session and replays exactly the suffix after the
// client's acknowledged stamp — no gaps, no duplicates, no re-join.
func TestDaemonResumeMidBurst(t *testing.T) {
	cl := startDaemonsResume(t, 1, 5*time.Second, fanout.Config{HistoryDepth: 64})
	proxy := newCutProxy(t, cl.socks[0])

	sub := dialResumable(t, proxy.addr, "sub")
	if err := sub.Join("g"); err != nil {
		t.Fatal(err)
	}
	waitView(t, sub, "g", 1)

	pub := cl.connect(0, "pub")
	send := func(from, to int) {
		for i := from; i <= to; i++ {
			if err := pub.Multicast(wire.ServiceAgreed, []byte(fmt.Sprintf("m%d", i)), "g"); err != nil {
				t.Fatalf("multicast m%d: %v", i, err)
			}
		}
	}
	send(1, 3)
	wantPayloads(t, sub, "m1", "m2", "m3")

	// Sever the client; hold it off while messages accumulate in the
	// detached session's queue.
	proxy.pause(true)
	proxy.cut()
	ev := <-sub.Events()
	if _, ok := ev.(client.Disconnected); !ok {
		t.Fatalf("expected Disconnected, got %#v", ev)
	}
	send(4, 7)
	// Give the daemon time to route the burst into the detached queue.
	time.Sleep(300 * time.Millisecond)
	proxy.pause(false)

	// The resumed stream is exactly the suffix.
	deadline := time.After(10 * time.Second)
	var rec client.Reconnected
	for {
		var ok bool
		select {
		case ev, okc := <-sub.Events():
			if !okc {
				t.Fatal("events closed waiting for Reconnected")
			}
			rec, ok = ev.(client.Reconnected)
		case <-deadline:
			t.Fatal("never reconnected")
		}
		if ok {
			break
		}
	}
	if !rec.Resumed {
		t.Fatalf("session not resumed: %+v", rec)
	}
	wantPayloads(t, sub, "m4", "m5", "m6", "m7")

	// The stream continues live, and the daemon counted the resume.
	send(8, 8)
	wantPayloads(t, sub, "m8")
	snap, err := pub.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Resumes != 1 || snap.ResumeGaps != 0 {
		t.Fatalf("daemon stats resumes=%d gaps=%d, want 1/0", snap.Resumes, snap.ResumeGaps)
	}
	if got := sub.Resumes(); got != 1 {
		t.Fatalf("client resumes=%d, want 1", got)
	}
}

// TestDaemonResumeExpired: past the resume window the daemon drops the
// detached session; the reconnecting client gets a fresh session and must
// report the continuity break as a Gap.
func TestDaemonResumeExpired(t *testing.T) {
	cl := startDaemonsResume(t, 1, 100*time.Millisecond, fanout.Config{HistoryDepth: 16})
	proxy := newCutProxy(t, cl.socks[0])

	sub := dialResumable(t, proxy.addr, "sub")
	if err := sub.Join("g"); err != nil {
		t.Fatal(err)
	}
	waitView(t, sub, "g", 1)

	proxy.pause(true)
	proxy.cut()
	if ev := <-sub.Events(); ev == nil {
		t.Fatal("no disconnect event")
	}
	time.Sleep(400 * time.Millisecond) // well past the window
	proxy.pause(false)

	deadline := time.After(10 * time.Second)
	var sawFresh, sawGap bool
	for !(sawFresh && sawGap) {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				t.Fatal("events closed")
			}
			switch e := ev.(type) {
			case client.Reconnected:
				if e.Resumed {
					t.Fatal("expired session was resumed")
				}
				sawFresh = true
			case client.Gap:
				sawGap = true
			}
		case <-deadline:
			t.Fatalf("fresh=%v gap=%v after expiry", sawFresh, sawGap)
		}
	}
	// The fresh session replayed the join: the client is a member again.
	waitView(t, sub, "g", 1)
	pub := cl.connect(0, "pub")
	if err := pub.Multicast(wire.ServiceAgreed, []byte("alive"), "g"); err != nil {
		t.Fatal(err)
	}
	wantPayloads(t, sub, "alive")
	snap, err := pub.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if snap.ResumeExpired == 0 {
		t.Fatal("daemon never counted the expired session")
	}
}

// TestDaemonShedWhileDetachedReportsGap: a detached session under the
// shed policy overflows its queue while away; the resume must succeed but
// admit the loss, and the client must surface a typed Gap.
func TestDaemonShedWhileDetachedReportsGap(t *testing.T) {
	cl := startDaemonsResume(t, 1, 5*time.Second,
		fanout.Config{Policy: fanout.PolicyShed, QueueDepth: 8, HistoryDepth: 8})
	proxy := newCutProxy(t, cl.socks[0])

	sub := dialResumable(t, proxy.addr, "sub")
	if err := sub.Join("g"); err != nil {
		t.Fatal(err)
	}
	waitView(t, sub, "g", 1)

	proxy.pause(true)
	proxy.cut()
	<-sub.Events() // Disconnected

	pub := cl.connect(0, "pub")
	for i := 0; i < 64; i++ { // far past QueueDepth 8: most are shed
		if err := pub.Multicast(wire.ServiceAgreed, []byte(fmt.Sprintf("m%d", i)), "g"); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(300 * time.Millisecond)
	proxy.pause(false)

	deadline := time.After(10 * time.Second)
	var resumed, gap bool
	for !(resumed && gap) {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				t.Fatal("events closed")
			}
			switch e := ev.(type) {
			case client.Reconnected:
				if !e.Resumed {
					t.Fatal("resume failed outright; want resumed-with-gap")
				}
				resumed = true
			case client.Gap:
				gap = true
			}
		case <-deadline:
			t.Fatalf("resumed=%v gap=%v", resumed, gap)
		}
	}
	snap, err := pub.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if snap.ResumeGaps == 0 {
		t.Fatal("daemon never counted the resume gap")
	}
}

// TestDrainDeliversQueuedMessages: a draining daemon must announce the
// drain and flush every queued delivery before closing.
func TestDrainDeliversQueuedMessages(t *testing.T) {
	cl := startDaemons(t, 1)
	sub := cl.connect(0, "sub")
	if err := sub.Join("g"); err != nil {
		t.Fatal(err)
	}
	waitView(t, sub, "g", 1)
	pub := cl.connect(0, "pub")
	if err := pub.Join("g"); err != nil {
		t.Fatal(err)
	}
	waitView(t, pub, "g", 2)

	const n = 200
	for i := 0; i < n; i++ {
		if err := pub.Multicast(wire.ServiceAgreed, []byte(fmt.Sprintf("m%d", i)), "g"); err != nil {
			t.Fatal(err)
		}
	}
	// The publisher's own echo of the last message proves the daemon routed
	// the full burst into the delivery queues.
	count := 0
	deadline := time.After(10 * time.Second)
	for count < n {
		select {
		case ev, ok := <-pub.Events():
			if !ok {
				t.Fatal("publisher events closed early")
			}
			if _, isMsg := ev.(client.Message); isMsg {
				count++
			}
		case <-deadline:
			t.Fatalf("publisher saw %d/%d", count, n)
		}
	}

	d := cl.daemons[0]
	if err := d.Drain(5 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// The subscriber must have received the drain announcement and every
	// queued message before its connection closed.
	got, sawDrain := 0, false
	for ev := range sub.Events() {
		switch ev.(type) {
		case client.Message:
			got++
		case client.Draining:
			sawDrain = true
		}
	}
	if got != n {
		t.Fatalf("subscriber got %d/%d messages across the drain", got, n)
	}
	if !sawDrain {
		t.Fatal("subscriber never saw the drain announcement")
	}
	if !d.draining.Load() {
		t.Fatal("draining flag not set")
	}
}
