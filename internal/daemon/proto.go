// Package daemon implements the Spread-like daemon architecture evaluated
// in the paper: a ring participant process that serves local clients over
// IPC sockets, manages named groups whose membership changes are totally
// ordered through the ring, and supports multi-group multicast with
// open-group semantics (senders need not be members).
package daemon

import (
	"fmt"

	"accelring/internal/ipc"
	"accelring/internal/wire"
)

// Ring payload types: what daemons order through the ring on behalf of
// clients. The first byte of every ring payload is one of these.
const (
	ringApp byte = iota + 1
	ringJoin
	ringLeave
)

// Flags carried by application messages through the ring and on the
// client protocol.
const (
	// flagSelfDiscard asks the sender's daemon not to deliver the message
	// back to the sending client (Spread's SELF_DISCARD).
	flagSelfDiscard byte = 1 << iota
)

// appPayload is a client message ordered through the ring.
type appPayload struct {
	Sender  string // private member name, e.g. "alice@0.0.0.1"
	Flags   byte
	Groups  []string
	Payload []byte
}

func (p *appPayload) encode() ([]byte, error) {
	if len(p.Groups) > wire.MaxGroups {
		return nil, fmt.Errorf("daemon: %d groups exceeds %d", len(p.Groups), wire.MaxGroups)
	}
	out := make([]byte, 0, 8+len(p.Sender)+len(p.Payload)+16*len(p.Groups))
	out = append(out, ringApp, p.Flags)
	out = ipc.PutString(out, p.Sender)
	out = ipc.PutStrings(out, p.Groups)
	return append(out, p.Payload...), nil
}

func decodeApp(body []byte) (*appPayload, error) {
	if len(body) < 1 {
		return nil, ipc.ErrBadFrame
	}
	var p appPayload
	p.Flags = body[0]
	body = body[1:]
	var err error
	p.Sender, body, err = ipc.GetString(body)
	if err != nil {
		return nil, err
	}
	p.Groups, body, err = ipc.GetStrings(body)
	if err != nil {
		return nil, err
	}
	p.Payload = body
	return &p, nil
}

// membershipPayload is a group join/leave ordered through the ring.
type membershipPayload struct {
	Member string
	Group  string
}

func (p *membershipPayload) encode(typ byte) []byte {
	out := make([]byte, 0, 8+len(p.Member)+len(p.Group))
	out = append(out, typ)
	out = ipc.PutString(out, p.Member)
	out = ipc.PutString(out, p.Group)
	return out
}

func decodeMembership(body []byte) (*membershipPayload, error) {
	var p membershipPayload
	var err error
	p.Member, body, err = ipc.GetString(body)
	if err != nil {
		return nil, err
	}
	p.Group, body, err = ipc.GetString(body)
	if err != nil {
		return nil, err
	}
	if len(body) != 0 {
		return nil, ipc.ErrBadFrame
	}
	return &p, nil
}
