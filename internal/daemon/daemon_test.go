package daemon

import (
	"encoding/json"
	"fmt"
	"net"
	"path/filepath"
	"testing"
	"time"

	"accelring"
	"accelring/internal/client"
	"accelring/internal/fanout"
	"accelring/internal/wire"
)

// cluster is a test fixture: n daemons over one in-memory network, each
// listening on a Unix socket.
type cluster struct {
	t       *testing.T
	daemons []*Daemon
	socks   []string
}

func startDaemons(t *testing.T, n int) *cluster {
	t.Helper()
	return startDaemonsOn(t, n, accelring.NewMemoryNetwork(11))
}

// startDaemonsOn starts the cluster on a caller-prepared network, letting
// fault-injection tests configure loss, duplication and reordering.
func startDaemonsOn(t *testing.T, n int, net0 *accelring.MemoryNetwork) *cluster {
	t.Helper()
	return startDaemonsWith(t, n, net0, fanout.Config{})
}

// startDaemonsWith additionally configures the client delivery tier, for
// backpressure-policy tests.
func startDaemonsWith(t *testing.T, n int, net0 *accelring.MemoryNetwork, fcfg fanout.Config) *cluster {
	t.Helper()
	dir := t.TempDir()
	members := make([]accelring.ParticipantID, 0, n)
	for i := 1; i <= n; i++ {
		members = append(members, accelring.ParticipantID(i))
	}
	c := &cluster{t: t}
	for _, id := range members {
		node, err := accelring.Start(accelring.Options{
			ID:                 id,
			Transport:          net0.Endpoint(id),
			Members:            members,
			TokenLossTimeout:   300 * time.Millisecond,
			TokenRetransPeriod: 60 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("node %d: %v", id, err)
		}
		sock := filepath.Join(dir, fmt.Sprintf("ringd-%d.sock", id))
		ln, err := net.Listen("unix", sock)
		if err != nil {
			t.Fatalf("listen %s: %v", sock, err)
		}
		d, err := New(Config{Node: node, Listener: ln, Fanout: fcfg})
		if err != nil {
			t.Fatalf("daemon %d: %v", id, err)
		}
		c.daemons = append(c.daemons, d)
		c.socks = append(c.socks, sock)
	}
	t.Cleanup(func() {
		for _, d := range c.daemons {
			d.Close()
		}
	})
	return c
}

func (c *cluster) connect(daemon int, name string) *client.Conn {
	c.t.Helper()
	conn, err := client.Connect("unix", c.socks[daemon], name)
	if err != nil {
		c.t.Fatalf("connect %s to daemon %d: %v", name, daemon, err)
	}
	c.t.Cleanup(func() { conn.Close() })
	return conn
}

// waitView blocks until the client sees a view of the group with the given
// member count.
func waitView(t *testing.T, c *client.Conn, group string, members int) client.View {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case ev, ok := <-c.Events():
			if !ok {
				t.Fatalf("%s: events closed waiting for view of %q", c.PrivateName(), group)
			}
			if v, isView := ev.(client.View); isView && v.Group == group && len(v.Members) == members {
				return v
			}
		case <-deadline:
			t.Fatalf("%s: no view of %q with %d members", c.PrivateName(), group, members)
		}
	}
}

// waitViews blocks until the client has seen, for every listed group, a
// view with the wanted member count (views of other groups are tolerated
// in any interleaving).
func waitViews(t *testing.T, c *client.Conn, want map[string]int) {
	t.Helper()
	got := make(map[string]int, len(want))
	satisfied := func() bool {
		for g, n := range want {
			if got[g] != n {
				return false
			}
		}
		return true
	}
	deadline := time.After(10 * time.Second)
	for !satisfied() {
		select {
		case ev, ok := <-c.Events():
			if !ok {
				t.Fatalf("%s: events closed waiting for views %v", c.PrivateName(), want)
			}
			if v, isView := ev.(client.View); isView {
				got[v.Group] = len(v.Members)
			}
		case <-deadline:
			t.Fatalf("%s: views %v never reached %v", c.PrivateName(), got, want)
		}
	}
}

// collectMessages gathers n ordered messages, skipping views.
func collectMessages(t *testing.T, c *client.Conn, n int) []client.Message {
	t.Helper()
	var out []client.Message
	deadline := time.After(15 * time.Second)
	for len(out) < n {
		select {
		case ev, ok := <-c.Events():
			if !ok {
				t.Fatalf("%s: events closed after %d/%d messages", c.PrivateName(), len(out), n)
			}
			if m, isMsg := ev.(client.Message); isMsg {
				out = append(out, m)
			}
		case <-deadline:
			t.Fatalf("%s: got %d/%d messages", c.PrivateName(), len(out), n)
		}
	}
	return out
}

func TestClientConnectAndPrivateName(t *testing.T) {
	c := startDaemons(t, 1)
	conn := c.connect(0, "alice")
	if want := "alice@0.0.0.1"; conn.PrivateName() != want {
		t.Fatalf("private name = %q, want %q", conn.PrivateName(), want)
	}
}

func TestGroupMessageTotalOrder(t *testing.T) {
	c := startDaemons(t, 3)
	a := c.connect(0, "alice")
	b := c.connect(1, "bob")
	d := c.connect(2, "carol")

	for _, conn := range []*client.Conn{a, b, d} {
		if err := conn.Join("room"); err != nil {
			t.Fatal(err)
		}
	}
	for _, conn := range []*client.Conn{a, b, d} {
		waitView(t, conn, "room", 3)
	}

	const perClient = 20
	for i := 0; i < perClient; i++ {
		for _, conn := range []*client.Conn{a, b, d} {
			if err := conn.Multicast(wire.ServiceAgreed,
				[]byte(fmt.Sprintf("%s-%d", conn.PrivateName(), i)), "room"); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := perClient * 3
	streams := [][]client.Message{
		collectMessages(t, a, want),
		collectMessages(t, b, want),
		collectMessages(t, d, want),
	}
	for i := 1; i < len(streams); i++ {
		for k := range streams[0] {
			if string(streams[i][k].Payload) != string(streams[0][k].Payload) {
				t.Fatalf("clients disagree at position %d: %q vs %q",
					k, streams[i][k].Payload, streams[0][k].Payload)
			}
		}
	}
}

func TestOpenGroupSemantics(t *testing.T) {
	c := startDaemons(t, 2)
	member := c.connect(0, "member")
	outsider := c.connect(1, "outsider")

	if err := member.Join("topic"); err != nil {
		t.Fatal(err)
	}
	waitView(t, member, "topic", 1)

	// The outsider sends without joining.
	if err := outsider.Multicast(wire.ServiceAgreed, []byte("hello from outside"), "topic"); err != nil {
		t.Fatal(err)
	}
	msgs := collectMessages(t, member, 1)
	if string(msgs[0].Payload) != "hello from outside" {
		t.Fatalf("got %q", msgs[0].Payload)
	}
	if msgs[0].Sender != outsider.PrivateName() {
		t.Fatalf("sender = %q, want %q", msgs[0].Sender, outsider.PrivateName())
	}
}

func TestMultiGroupMulticastDeliversOnce(t *testing.T) {
	c := startDaemons(t, 2)
	both := c.connect(0, "both")
	one := c.connect(1, "one")

	for _, g := range []string{"g1", "g2"} {
		if err := both.Join(g); err != nil {
			t.Fatal(err)
		}
	}
	if err := one.Join("g1"); err != nil {
		t.Fatal(err)
	}
	waitViews(t, both, map[string]int{"g1": 2, "g2": 1})
	waitViews(t, one, map[string]int{"g1": 2})

	// One message to both groups: "both" must receive it exactly once.
	if err := one.Multicast(wire.ServiceSafe, []byte("multi"), "g1", "g2"); err != nil {
		t.Fatal(err)
	}
	if err := one.Multicast(wire.ServiceAgreed, []byte("after"), "g1"); err != nil {
		t.Fatal(err)
	}
	msgs := collectMessages(t, both, 2)
	if string(msgs[0].Payload) != "multi" || string(msgs[1].Payload) != "after" {
		t.Fatalf("got %q then %q", msgs[0].Payload, msgs[1].Payload)
	}
	if len(msgs[0].Groups) != 2 {
		t.Fatalf("groups = %v", msgs[0].Groups)
	}
	if msgs[0].Service != wire.ServiceSafe {
		t.Fatalf("service = %v, want safe", msgs[0].Service)
	}
}

func TestLeaveUpdatesViews(t *testing.T) {
	c := startDaemons(t, 2)
	a := c.connect(0, "a")
	b := c.connect(1, "b")
	if err := a.Join("g"); err != nil {
		t.Fatal(err)
	}
	if err := b.Join("g"); err != nil {
		t.Fatal(err)
	}
	waitView(t, a, "g", 2)
	if err := b.Leave("g"); err != nil {
		t.Fatal(err)
	}
	v := waitView(t, a, "g", 1)
	if v.Members[0] != a.PrivateName() {
		t.Fatalf("remaining member = %v", v.Members)
	}
}

func TestDisconnectLeavesGroups(t *testing.T) {
	c := startDaemons(t, 2)
	a := c.connect(0, "a")
	b := c.connect(1, "b")
	if err := a.Join("g"); err != nil {
		t.Fatal(err)
	}
	if err := b.Join("g"); err != nil {
		t.Fatal(err)
	}
	waitView(t, a, "g", 2)
	b.Close()
	v := waitView(t, a, "g", 1)
	if v.Members[0] != a.PrivateName() {
		t.Fatalf("remaining member = %v", v.Members)
	}
}

func TestViewsAreOrderedWithMessages(t *testing.T) {
	// A member that joins after a message was ordered must not receive it;
	// one that joined before must. Total order of joins and messages makes
	// this deterministic cluster-wide.
	c := startDaemons(t, 2)
	early := c.connect(0, "early")
	late := c.connect(1, "late")

	if err := early.Join("g"); err != nil {
		t.Fatal(err)
	}
	waitView(t, early, "g", 1)
	if err := early.Multicast(wire.ServiceAgreed, []byte("before-late"), "g"); err != nil {
		t.Fatal(err)
	}
	msgs := collectMessages(t, early, 1)
	if string(msgs[0].Payload) != "before-late" {
		t.Fatalf("got %q", msgs[0].Payload)
	}
	if err := late.Join("g"); err != nil {
		t.Fatal(err)
	}
	waitView(t, late, "g", 2)
	if err := early.Multicast(wire.ServiceAgreed, []byte("after-late"), "g"); err != nil {
		t.Fatal(err)
	}
	lateMsgs := collectMessages(t, late, 1)
	if string(lateMsgs[0].Payload) != "after-late" {
		t.Fatalf("late client got %q, want only the post-join message", lateMsgs[0].Payload)
	}
}

func TestSameNameDifferentDaemons(t *testing.T) {
	c := startDaemons(t, 2)
	a := c.connect(0, "dup")
	b := c.connect(1, "dup")
	if a.PrivateName() == b.PrivateName() {
		t.Fatalf("private names collide: %q", a.PrivateName())
	}
}

// TestDaemonStatsSnapshot exercises the stats round trip: per-client
// submit/deliver counters over IPC, plus the embedded node's metrics
// snapshot decodable from the raw JSON.
func TestDaemonStatsSnapshot(t *testing.T) {
	c := startDaemons(t, 2)
	alice := c.connect(0, "alice")
	bob := c.connect(1, "bob")
	if err := alice.Join("chat"); err != nil {
		t.Fatal(err)
	}
	waitView(t, alice, "chat", 1)
	const sent = 3
	for i := 0; i < sent; i++ {
		if err := bob.Multicast(wire.ServiceAgreed, []byte("hello"), "chat"); err != nil {
			t.Fatal(err)
		}
	}
	collectMessages(t, alice, sent)

	// Alice's daemon: it delivered `sent` messages to alice locally.
	snap, err := alice.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Sessions != 1 || snap.Groups != 1 {
		t.Fatalf("daemon 0 stats: %+v, want 1 session / 1 group", snap)
	}
	cs, ok := snap.Clients[alice.PrivateName()]
	if !ok {
		t.Fatalf("no counters for %s in %+v", alice.PrivateName(), snap.Clients)
	}
	if cs.Deliveries != sent || cs.Submits != 0 {
		t.Fatalf("alice counters = %+v, want %d deliveries / 0 submits", cs, sent)
	}
	var node accelring.MetricsSnapshot
	if err := json.Unmarshal(snap.Node, &node); err != nil {
		t.Fatalf("decoding node metrics: %v", err)
	}
	if node.Engine.TokensProcessed == 0 {
		t.Fatal("node metrics carry no engine counters")
	}
	if node.Runtime.EventsDelivered == 0 {
		t.Fatal("node metrics carry no runtime counters")
	}

	// Bob's daemon: bob submitted `sent` multicasts and, not being a
	// member of the group, received nothing.
	snap, err = bob.Stats()
	if err != nil {
		t.Fatal(err)
	}
	cs, ok = snap.Clients[bob.PrivateName()]
	if !ok {
		t.Fatalf("no counters for %s in %+v", bob.PrivateName(), snap.Clients)
	}
	if cs.Submits != sent || cs.Deliveries != 0 {
		t.Fatalf("bob counters = %+v, want %d submits / 0 deliveries", cs, sent)
	}

	// A second request keeps working (the stats channel does not wedge).
	if _, err := alice.Stats(); err != nil {
		t.Fatal(err)
	}
}
