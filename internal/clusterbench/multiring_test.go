package clusterbench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"accelring"
)

// TestMultiRingSweepSmoke runs a miniature M=1 vs M=2 sweep end to end —
// real MultiNode clusters over memnet — and round-trips the JSON report.
// It asserts plumbing (deliveries happened, the report is well-formed),
// not performance; scaling claims belong to the full cmd/ringbench run.
func TestMultiRingSweepSmoke(t *testing.T) {
	points, err := RunMultiRingSweep(MultiRingConfig{
		RingCounts: []int{1, 2},
		Nodes:      3,
		Warmup:     150 * time.Millisecond,
		Measure:    300 * time.Millisecond,
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 || points[0].Rings != 1 || points[1].Rings != 2 {
		t.Fatalf("points: %+v", points)
	}
	for _, p := range points {
		if p.Delivered == 0 || p.AggregateMbps <= 0 {
			t.Fatalf("M=%d made no progress: %+v", p.Rings, p)
		}
		if len(p.PerRingMbps) != p.Rings {
			t.Fatalf("M=%d per-ring split has %d entries", p.Rings, len(p.PerRingMbps))
		}
	}

	dir := t.TempDir()
	path, err := WriteMultiRingReport(dir, accelring.EngineAccelRing, points)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep MultiRingReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Benchmark != "multiring" || len(rep.Points) != 2 {
		t.Fatalf("report: %+v", rep)
	}
}

// TestRingPaxosSweepSmoke is the same miniature sweep with every ring on
// the Ring Paxos engine: the points must carry the engine label and the
// report must land in BENCH_ringpaxos.json with the shared shape.
func TestRingPaxosSweepSmoke(t *testing.T) {
	points, err := RunMultiRingSweep(MultiRingConfig{
		RingCounts: []int{1, 2},
		Nodes:      3,
		Warmup:     150 * time.Millisecond,
		Measure:    300 * time.Millisecond,
		Seed:       7,
		Engine:     accelring.EngineRingPaxos,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.Engine != string(accelring.EngineRingPaxos) {
			t.Fatalf("point engine %q, want ringpaxos: %+v", p.Engine, p)
		}
		if p.Delivered == 0 || p.AggregateMbps <= 0 {
			t.Fatalf("M=%d made no progress: %+v", p.Rings, p)
		}
	}

	dir := t.TempDir()
	path, err := WriteMultiRingReport(dir, accelring.EngineRingPaxos, points)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_ringpaxos.json" {
		t.Fatalf("report path %s, want BENCH_ringpaxos.json", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep MultiRingReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Benchmark != "ringpaxos" || len(rep.Points) != 2 {
		t.Fatalf("report: %+v", rep)
	}
}
