// Package clusterbench benchmarks real accelring clusters — actual nodes
// over real transports under wall-clock time — unlike internal/bench,
// whose figure sweeps run the discrete-event simulator model. It lives
// outside internal/bench because it imports the root package (the sim
// bench package stays importable from root-package tests).
package clusterbench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"accelring"
)

// Multi-ring scaling sweep: the same saturating workload driven through
// M = 1, 2, 4, ... independent rings over memnet, measuring the aggregate
// merged-order throughput. One ring's throughput is bounded by its token
// rotation; sharding the group namespace multiplies the ordering capacity,
// and this sweep records by how much on real MultiNode clusters (not the
// netsim model the figure benchmarks use).

// MultiRingConfig configures one scaling sweep.
type MultiRingConfig struct {
	// RingCounts is the sweep grid, e.g. 1, 2, 4, 8.
	RingCounts []int
	// Nodes is the participant count of every ring (default 3).
	Nodes int
	// PayloadSize is the application payload per message (default 512).
	PayloadSize int
	// Warmup and Measure bound each point's run (defaults 300ms / 1s).
	Warmup, Measure time.Duration
	// Latency is the memnet per-hop latency (default 1ms) and
	// PersonalWindow/GlobalWindow the per-rotation flow-control caps
	// (defaults 8/24). Together they make each ring rotation-bound — the
	// regime the paper targets, where one ring's ordering capacity is set
	// by the token round trip times the window, not by host CPU — so M
	// independent tokens genuinely overlap in time and the sweep measures
	// protocol scaling rather than scheduler contention.
	Latency                      time.Duration
	PersonalWindow, GlobalWindow int
	// Seed drives the memnet hubs.
	Seed int64
	// Engine selects the ordering engine every ring runs ("" = accelring).
	// The report file and benchmark id carry the engine name so the
	// accelring and ringpaxos sweeps land in separate BENCH files.
	Engine accelring.EngineKind
}

// MultiRingPoint is one measured ring count.
type MultiRingPoint struct {
	Engine      string  `json:"engine"`
	Rings       int     `json:"rings"`
	Nodes       int     `json:"nodes"`
	PayloadSize int     `json:"payload_size"`
	MeasureSecs float64 `json:"measure_secs"`
	// Delivered counts merged-order messages at the observer during the
	// measurement window; AggregateMbps is their payload throughput, and
	// PerRingMbps splits it by completing ring.
	Delivered     uint64    `json:"delivered"`
	AggregateMbps float64   `json:"aggregate_mbps"`
	PerRingMbps   []float64 `json:"per_ring_mbps"`
	// Merge-layer accounting over the whole run (warmup included).
	MergeTurns     uint64 `json:"merge_turns"`
	SkipsSubmitted uint64 `json:"skips_submitted"`
	SkipsConsumed  uint64 `json:"skips_consumed"`
	DecodeFailures uint64 `json:"decode_failures"`
	Submitted      uint64 `json:"submitted"`
	SubmitErrors   uint64 `json:"submit_errors"`
}

func (cfg *MultiRingConfig) defaults() {
	if len(cfg.RingCounts) == 0 {
		cfg.RingCounts = []int{1, 2, 4, 8}
	}
	if cfg.Nodes <= 0 {
		cfg.Nodes = 3
	}
	if cfg.PayloadSize <= 0 {
		cfg.PayloadSize = 512
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = 300 * time.Millisecond
	}
	if cfg.Measure <= 0 {
		cfg.Measure = time.Second
	}
	if cfg.Latency <= 0 {
		cfg.Latency = 4 * time.Millisecond
	}
	if cfg.PersonalWindow <= 0 {
		cfg.PersonalWindow = 8
	}
	if cfg.GlobalWindow <= 0 {
		cfg.GlobalWindow = 24
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Engine == "" {
		cfg.Engine = accelring.EngineAccelRing
	}
}

// RunMultiRingSweep measures each ring count in turn and returns the
// points.
func RunMultiRingSweep(cfg MultiRingConfig) ([]MultiRingPoint, error) {
	cfg.defaults()
	points := make([]MultiRingPoint, 0, len(cfg.RingCounts))
	for _, m := range cfg.RingCounts {
		p, err := runMultiRingPoint(cfg, m)
		if err != nil {
			return nil, fmt.Errorf("clusterbench: multiring M=%d: %w", m, err)
		}
		points = append(points, p)
	}
	return points, nil
}

// runMultiRingPoint boots one cluster of cfg.Nodes participants over m
// rings, saturates every shard from every node, and measures the merged
// throughput at node 1 after warmup.
func runMultiRingPoint(cfg MultiRingConfig, m int) (MultiRingPoint, error) {
	hubs := make([]*accelring.MemoryNetwork, m)
	for r := range hubs {
		hubs[r] = accelring.NewMemoryNetwork(cfg.Seed + int64(r))
		hubs[r].SetLatency(cfg.Latency)
	}
	members := make([]accelring.ParticipantID, 0, cfg.Nodes)
	for i := 1; i <= cfg.Nodes; i++ {
		members = append(members, accelring.ParticipantID(i))
	}
	nodes := make([]*accelring.MultiNode, 0, cfg.Nodes)
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	engines := make([]accelring.EngineKind, m)
	for r := range engines {
		engines[r] = cfg.Engine
	}
	for _, id := range members {
		transports := make([]accelring.Transport, m)
		for r := range transports {
			transports[r] = hubs[r].Endpoint(id)
		}
		mn, err := accelring.StartMulti(accelring.MultiOptions{
			Node: accelring.Options{
				ID:                 id,
				Members:            members,
				Windows:            accelring.Windows{Personal: cfg.PersonalWindow, Global: cfg.GlobalWindow, Accelerated: cfg.PersonalWindow},
				TokenLossTimeout:   400 * time.Millisecond,
				TokenRetransPeriod: 80 * time.Millisecond,
			},
			RingTransports: transports,
			Engines:        engines,
			SkipInterval:   time.Millisecond,
			EventBuffer:    16384,
		})
		if err != nil {
			return MultiRingPoint{}, err
		}
		nodes = append(nodes, mn)
	}

	// One group per shard so every ring carries load.
	groups := make([]string, m)
	for r := range groups {
		groups[r] = shardGroup(r, m)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var submitted, submitErrs atomic.Uint64

	// Saturating submitters: one goroutine per (node, shard). Submits fail
	// transiently under flow control; back off briefly and keep pushing.
	payload := make([]byte, cfg.PayloadSize)
	for _, mn := range nodes {
		for r := 0; r < m; r++ {
			wg.Add(1)
			go func(mn *accelring.MultiNode, r int) {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if err := mn.SubmitShard(r, groups[r], payload, accelring.Agreed); err != nil {
						submitErrs.Add(1)
						time.Sleep(time.Millisecond)
						continue
					}
					submitted.Add(1)
				}
			}(mn, r)
		}
	}

	// The observer drains node 1's merged stream; measurement gates on the
	// warmup boundary. The other nodes' streams must be drained too or
	// their routers would stall on full output channels.
	var measuring atomic.Bool
	var delivered atomic.Uint64
	var bytes atomic.Uint64
	perRing := make([]atomic.Uint64, m)
	for i, mn := range nodes {
		wg.Add(1)
		go func(mn *accelring.MultiNode, observer bool) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				case ev, ok := <-mn.Events():
					if !ok {
						return
					}
					if !observer || !measuring.Load() {
						continue
					}
					if d, isMsg := ev.(accelring.ShardMessage); isMsg {
						delivered.Add(1)
						bytes.Add(uint64(len(d.Payload)))
						perRing[d.Ring].Add(1)
					}
				}
			}
		}(mn, i == 0)
	}

	time.Sleep(cfg.Warmup)
	measuring.Store(true)
	start := time.Now()
	time.Sleep(cfg.Measure)
	measuring.Store(false)
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()

	snap, err := nodes[0].Metrics()
	if err != nil {
		return MultiRingPoint{}, err
	}
	secs := elapsed.Seconds()
	point := MultiRingPoint{
		Engine:         string(cfg.Engine),
		Rings:          m,
		Nodes:          cfg.Nodes,
		PayloadSize:    cfg.PayloadSize,
		MeasureSecs:    secs,
		Delivered:      delivered.Load(),
		AggregateMbps:  mbps(bytes.Load(), secs),
		PerRingMbps:    make([]float64, m),
		MergeTurns:     snap.Router.Turns,
		SkipsSubmitted: snap.Router.SkipsSubmitted,
		SkipsConsumed:  snap.Router.SkipsConsumed,
		DecodeFailures: snap.Router.DecodeFailures,
		Submitted:      submitted.Load(),
		SubmitErrors:   submitErrs.Load(),
	}
	for r := range perRing {
		point.PerRingMbps[r] = mbps(perRing[r].Load()*uint64(cfg.PayloadSize), secs)
	}
	return point, nil
}

// shardGroup returns a deterministic group name hashing to the wanted
// shard.
func shardGroup(shard, rings int) string {
	for i := 0; ; i++ {
		g := fmt.Sprintf("bench-%d", i)
		if accelring.ShardOf(g, rings) == shard {
			return g
		}
	}
}

func mbps(bytes uint64, secs float64) float64 {
	if secs <= 0 {
		return 0
	}
	return float64(bytes) * 8 / secs / 1e6
}

// MultiRingReport is the BENCH_multiring.json file format.
type MultiRingReport struct {
	Benchmark     string           `json:"benchmark"`
	Title         string           `json:"title"`
	GeneratedUnix int64            `json:"generated_unix"`
	Points        []MultiRingPoint `json:"points"`
}

// WriteMultiRingReport writes the sweep as BENCH_<id>.json in dir and
// returns the file path. The accelring sweep keeps its historical id
// ("multiring" — BENCH_multiring.json); any other engine's sweep is named
// after the engine (BENCH_ringpaxos.json), same shape, so the two reports
// sit side by side.
func WriteMultiRingReport(dir string, engine accelring.EngineKind, points []MultiRingPoint) (string, error) {
	id := "multiring"
	title := "Aggregate ordered throughput vs ring count (memnet)"
	if engine != "" && engine != accelring.EngineAccelRing {
		id = string(engine)
		title = fmt.Sprintf("Aggregate ordered throughput vs ring count (memnet, %s engine)", engine)
	}
	rep := MultiRingReport{
		Benchmark:     id,
		Title:         title,
		GeneratedUnix: time.Now().Unix(),
		Points:        points,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", fmt.Errorf("clusterbench: encoding %s report: %w", id, err)
	}
	path := filepath.Join(dir, "BENCH_"+id+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("clusterbench: writing %s: %w", path, err)
	}
	return path, nil
}

// WriteMultiRingTable renders the sweep as an aligned text table.
func WriteMultiRingTable(w io.Writer, points []MultiRingPoint) {
	fmt.Fprintf(w, "%6s %6s %10s %14s %12s %10s\n",
		"rings", "nodes", "delivered", "aggregate_mbps", "skips_sent", "turns")
	for _, p := range points {
		fmt.Fprintf(w, "%6d %6d %10d %14.1f %12d %10d\n",
			p.Rings, p.Nodes, p.Delivered, p.AggregateMbps, p.SkipsSubmitted, p.MergeTurns)
	}
}
