package multiring

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"reflect"
	"testing"

	"accelring/internal/wire"
)

func msg(sender wire.ParticipantID, seq uint64) Unit {
	return Unit{
		Key:     MsgKey{Sender: sender, Seq: seq},
		Shards:  1,
		Groups:  []string{"g"},
		Service: wire.ServiceAgreed,
		Payload: []byte(fmt.Sprintf("%d/%d", sender, seq)),
	}
}

func multi(sender wire.ParticipantID, seq uint64, shards int) Unit {
	u := msg(sender, seq)
	u.Shards = shards
	return u
}

func skip(count uint32) Unit {
	return Unit{Skip: true, SkipCount: count}
}

// runSchedule feeds the per-ring streams to a fresh merger following one
// arrival interleaving (a sequence of ring indices) and returns the merged
// output. When eager, the merger is drained after every push; otherwise
// only once at the end — both must produce identical results, since the
// merge is a pure function of the streams.
func runSchedule(rings int, streams [][]Unit, order []int, eager bool) []Merged {
	m := NewMerger(rings)
	var out []Merged
	drain := func() {
		for {
			d, ok := m.Next()
			if !ok {
				return
			}
			out = append(out, d)
		}
	}
	cursor := make([]int, rings)
	for _, r := range order {
		m.Push(r, streams[r][cursor[r]])
		cursor[r]++
		if eager {
			drain()
		}
	}
	drain()
	return out
}

// schedules builds arrival interleavings of the given per-ring stream
// lengths: round-robin, ring-sequential, reverse-sequential, and seeded
// random shuffles. All preserve per-ring order by construction (an
// interleaving only says whose next unit arrives).
func schedules(lens []int, seed int64, random int) [][]int {
	var base []int
	for r, n := range lens {
		for i := 0; i < n; i++ {
			base = append(base, r)
		}
	}
	rr := make([]int, 0, len(base))
	cursor := make([]int, len(lens))
	for len(rr) < len(base) {
		for r, n := range lens {
			if cursor[r] < n {
				rr = append(rr, r)
				cursor[r]++
			}
		}
	}
	seq := append([]int(nil), base...)
	rev := make([]int, 0, len(base))
	for r := len(lens) - 1; r >= 0; r-- {
		for i := 0; i < lens[r]; i++ {
			rev = append(rev, r)
		}
	}
	out := [][]int{rr, seq, rev}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < random; i++ {
		s := append([]int(nil), base...)
		rng.Shuffle(len(s), func(a, b int) { s[a], s[b] = s[b], s[a] })
		out = append(out, s)
	}
	return out
}

// TestMergeDeterminism is the table-driven determinism suite: for each
// case, every arrival interleaving of the same per-ring sequences — and
// both eager and lazy draining — must yield the byte-identical merged
// order, including ring and turn assignments.
func TestMergeDeterminism(t *testing.T) {
	cases := []struct {
		name    string
		streams [][]Unit
		// want is the expected (sender, seq, turn) triple sequence; nil
		// skips the golden check and only asserts cross-schedule equality.
		want []Merged
	}{
		{
			name:    "single ring passthrough",
			streams: [][]Unit{{msg(1, 1), msg(2, 1), msg(1, 2)}},
			want: []Merged{
				{Unit: msg(1, 1), Ring: 0, Turn: 0},
				{Unit: msg(2, 1), Ring: 0, Turn: 1},
				{Unit: msg(1, 2), Ring: 0, Turn: 2},
			},
		},
		{
			name: "two rings strict alternation",
			streams: [][]Unit{
				{msg(1, 1), msg(1, 3)},
				{msg(1, 2), msg(1, 4)},
			},
			want: []Merged{
				{Unit: msg(1, 1), Ring: 0, Turn: 0},
				{Unit: msg(1, 2), Ring: 1, Turn: 1},
				{Unit: msg(1, 3), Ring: 0, Turn: 2},
				{Unit: msg(1, 4), Ring: 1, Turn: 3},
			},
		},
		{
			name: "skip unit pads an idle ring",
			streams: [][]Unit{
				{msg(1, 1), msg(1, 2)},
				{skip(1), skip(1)},
			},
			want: []Merged{
				{Unit: msg(1, 1), Ring: 0, Turn: 0},
				{Unit: msg(1, 2), Ring: 0, Turn: 2},
			},
		},
		{
			name: "batched skip grants credits across turns",
			streams: [][]Unit{
				{msg(1, 1), msg(1, 2), msg(1, 3)},
				{skip(3)},
			},
			want: []Merged{
				{Unit: msg(1, 1), Ring: 0, Turn: 0},
				{Unit: msg(1, 2), Ring: 0, Turn: 2},
				{Unit: msg(1, 3), Ring: 0, Turn: 4},
			},
		},
		{
			name: "multi-shard message emitted at last copy",
			streams: [][]Unit{
				{multi(7, 9, 2), msg(1, 1)},
				{msg(1, 2), multi(7, 9, 2)},
			},
			want: []Merged{
				// turn 0: ring0 consumes copy 1/2 of (7,9) — pending.
				{Unit: msg(1, 2), Ring: 1, Turn: 1},
				{Unit: msg(1, 1), Ring: 0, Turn: 2},
				{Unit: multi(7, 9, 2), Ring: 1, Turn: 3},
			},
		},
		{
			name: "four rings mixed skips and messages",
			streams: [][]Unit{
				{msg(1, 1), msg(1, 5)},
				{skip(2)},
				{msg(2, 1), multi(3, 1, 2)},
				{multi(3, 1, 2), skip(1)},
			},
		},
		{
			name: "uneven load with large skip batches",
			streams: [][]Unit{
				{msg(1, 1), msg(1, 2), msg(1, 3), msg(1, 4), msg(1, 5)},
				{skip(5)},
				{skip(2), msg(2, 1), skip(2)},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			lens := make([]int, len(tc.streams))
			for i, s := range tc.streams {
				lens[i] = len(s)
			}
			var ref []Merged
			for si, order := range schedules(lens, 0x5eed, 8) {
				for _, eager := range []bool{false, true} {
					got := runSchedule(len(tc.streams), tc.streams, order, eager)
					if ref == nil {
						ref = got
						if tc.want != nil && !reflect.DeepEqual(got, tc.want) {
							t.Fatalf("golden mismatch:\n got %+v\nwant %+v", got, tc.want)
						}
						continue
					}
					if !reflect.DeepEqual(got, ref) {
						t.Fatalf("schedule %d (eager=%v) diverged:\n got %+v\nref %+v",
							si, eager, got, ref)
					}
				}
			}
		})
	}
}

func TestMergeStallsWithoutInput(t *testing.T) {
	m := NewMerger(2)
	m.Push(0, msg(1, 1))
	d, ok := m.Next()
	if !ok || d.Turn != 0 {
		t.Fatalf("first message should merge at turn 0, got %+v ok=%v", d, ok)
	}
	m.Push(0, msg(1, 2))
	if _, ok := m.Next(); ok {
		t.Fatal("merge advanced past a starved ring")
	}
	if got := m.Starved(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Starved() = %v, want [1]", got)
	}
	m.Push(1, skip(1))
	d, ok = m.Next()
	if !ok || d.Turn != 2 || d.Key != (MsgKey{Sender: 1, Seq: 2}) {
		t.Fatalf("after skip: got %+v ok=%v", d, ok)
	}
}

func TestStarvedIsEmptyWhenIdle(t *testing.T) {
	m := NewMerger(4)
	if got := m.Starved(); got != nil {
		t.Fatalf("idle merger reported starvation: %v", got)
	}
	// Credit alone (queues all empty) is still idle, not starved: skipping
	// idle rings would breed skips forever.
	m.Push(0, skip(8))
	for {
		if _, ok := m.Next(); !ok {
			break
		}
	}
	if m.QueueLen(0) != 0 {
		t.Fatalf("skip not consumed: queue len %d", m.QueueLen(0))
	}
	if got := m.Starved(); got != nil {
		t.Fatalf("credit-only merger reported starvation: %v", got)
	}
}

func TestStarvedIgnoresCreditedRings(t *testing.T) {
	m := NewMerger(2)
	m.Push(1, skip(4))
	m.Push(1, msg(2, 1))
	// Ring 1 has queued units; ring 0 is starved (no credit, no queue).
	if got := m.Starved(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Starved() = %v, want [0]", got)
	}
	// Ring 0's skip(4) covers its turns 0,2,4,6; ring 1's covers 1,3,5,7.
	// The merge then stalls at turn 8 with ring 1's message still queued
	// behind its credits — ring 0 is starved again, ring 1 (queued) is not.
	m.Push(0, skip(4))
	for {
		if _, ok := m.Next(); !ok {
			break
		}
	}
	if got := m.Starved(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Starved() = %v, want [0]", got)
	}
	// One more turn of ring-0 padding and the message merges at turn 9.
	m.Push(0, skip(1))
	d, ok := m.Next()
	if !ok || d.Turn != 9 || d.Key != (MsgKey{Sender: 2, Seq: 1}) {
		t.Fatalf("got %+v ok=%v", d, ok)
	}
}

func TestBacklogAndQueueLen(t *testing.T) {
	m := NewMerger(3)
	for i := 0; i < 5; i++ {
		m.Push(2, msg(1, uint64(i+1)))
	}
	m.Push(0, msg(2, 1))
	if m.Backlog() != 5 {
		t.Fatalf("Backlog() = %d, want 5", m.Backlog())
	}
	if m.QueueLen(2) != 5 || m.QueueLen(0) != 1 || m.QueueLen(1) != 0 {
		t.Fatalf("queue lens = %d,%d,%d", m.QueueLen(0), m.QueueLen(1), m.QueueLen(2))
	}
}

func TestPendingMultiShard(t *testing.T) {
	m := NewMerger(2)
	m.Push(0, multi(1, 1, 2))
	if _, ok := m.Next(); ok {
		t.Fatal("half-arrived multi-shard message was emitted")
	}
	if m.PendingMultiShard() != 1 {
		t.Fatalf("PendingMultiShard() = %d, want 1", m.PendingMultiShard())
	}
	m.Push(1, multi(1, 1, 2))
	d, ok := m.Next()
	if !ok || d.Shards != 2 || d.Turn != 1 {
		t.Fatalf("multi-shard emission: %+v ok=%v", d, ok)
	}
	if m.PendingMultiShard() != 0 {
		t.Fatalf("PendingMultiShard() = %d after emission", m.PendingMultiShard())
	}
}

// TestFifoCompaction pushes and pops enough units through one ring to force
// the fifo's in-place compaction several times over.
func TestFifoCompaction(t *testing.T) {
	m := NewMerger(1)
	next := uint64(1)
	for round := 0; round < 50; round++ {
		for i := 0; i < 40; i++ {
			m.Push(0, msg(1, next))
			next++
		}
		for i := 0; i < 40; i++ {
			d, ok := m.Next()
			if !ok {
				t.Fatalf("round %d: merge stalled at %d", round, i)
			}
			if want := uint64(round*40 + i); d.Turn != want {
				t.Fatalf("turn %d, want %d", d.Turn, want)
			}
		}
	}
}

func TestShardOf(t *testing.T) {
	// Pin the hash to FNV-1a so a silent change — which would split the
	// cluster's routing — fails loudly.
	for _, g := range []string{"orders", "users", "a", "the-longest-group-name-in-the-test"} {
		h := fnv.New32a()
		h.Write([]byte(g))
		for _, rings := range []int{1, 2, 4, 8, 255} {
			want := int(h.Sum32() % uint32(rings))
			if got := ShardOf(g, rings); got != want {
				t.Fatalf("ShardOf(%q, %d) = %d, want %d", g, rings, got, want)
			}
		}
	}
	if ShardOf("anything", 1) != 0 {
		t.Fatal("single-ring shard must be 0")
	}
}
