package multiring

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"accelring/internal/metrics"
	"accelring/internal/wire"
)

// RingHandle is the addressable unit the router drives: one ordering
// engine instance bound to its own transport. It makes the engine⇄runtime
// contract explicit — the router needs exactly a way to inject a payload
// into the ring's total order and a way to shut the instance down; the
// delivery side arrives pre-tagged on the router's event channel.
type RingHandle struct {
	// Submit queues a payload for totally ordered multicast on this ring.
	Submit func(payload []byte, service wire.Service) error
	// Close stops the ring instance. May be nil when the caller owns ring
	// lifecycle itself.
	Close func() error
}

// RingEvent is one event of a single ring's delivery stream, as fed to the
// router: either an ordered data message (the routed envelope inside an
// application payload) or a configuration change.
type RingEvent struct {
	// Config marks a membership event; the message fields are then unused
	// and vice versa.
	Config bool

	// Sender and Service describe a delivered data message; Payload is the
	// enveloped payload, owned by the router from here on.
	Sender  wire.ParticipantID
	Service wire.Service
	Payload []byte

	// ID, Members and Transitional describe a configuration event.
	ID           wire.RingID
	Members      []wire.ParticipantID
	Transitional bool
}

// TaggedEvent is a RingEvent labeled with its ring index, the element type
// of the router's single muxed input channel.
type TaggedEvent struct {
	Ring  int
	Event RingEvent
}

// Delivery is one message of the merged, cross-shard total order.
type Delivery struct {
	// Ring is the ring whose copy completed the message; Turn is the
	// global merge turn it was emitted at (strictly increasing per node,
	// identical across nodes that consumed identical per-ring streams).
	Ring int
	Turn uint64
	// Sender and SenderSeq identify the message globally.
	Sender    wire.ParticipantID
	SenderSeq uint64
	// Shards is the number of rings the message was ordered on.
	Shards int
	// Groups are the destination groups it was submitted to.
	Groups []string
	// Service is the delivery guarantee it was submitted with.
	Service wire.Service
	// Payload is the application payload.
	Payload []byte
}

// ConfigUpdate reports a membership change on one ring. Configuration
// events are per-ring and forwarded as they happen; they are not part of
// the cross-shard total order.
type ConfigUpdate struct {
	Ring         int
	ID           wire.RingID
	Members      []wire.ParticipantID
	Transitional bool
}

// Event is a merged-stream occurrence: a Delivery or a ConfigUpdate.
type Event interface {
	isEvent()
}

func (Delivery) isEvent()     {}
func (ConfigUpdate) isEvent() {}

// Options configures a Router.
type Options struct {
	// Rings are the ring instances, in shard order. Required, at least one.
	Rings []RingHandle
	// Events is the muxed stream of per-ring events. Each ring's events
	// must arrive in that ring's delivery order; interleaving across rings
	// is arbitrary. Closing the channel ends the router cleanly. Required.
	Events <-chan TaggedEvent
	// LocalID is this node's participant ID, used as the sender identity
	// of submitted messages and skips.
	LocalID wire.ParticipantID
	// SubmitSkips makes this node the skip leader: its router answers
	// starved rings with skip units. Exactly correct with any number of
	// leaders (skips are ordered messages; extras are padding), but one
	// per deployment avoids chatter — conventionally the lowest member ID.
	SubmitSkips bool
	// SkipInterval is the starvation poll period (default 2ms).
	SkipInterval time.Duration
	// MaxSkipBatch bounds the turn count of one skip unit (default 1024).
	MaxSkipBatch uint32
	// EventBuffer is the merged output channel capacity (default 4096).
	EventBuffer int
	// OnUnit, when non-nil, observes every decoded unit of every ring in
	// that ring's delivery order, before merging. Called on the merge
	// goroutine; the conformance harness builds exact per-ring logs here.
	OnUnit func(ring int, u Unit)
	// OnConfig, when non-nil, observes per-ring configuration events in
	// order, on the merge goroutine.
	OnConfig func(ev ConfigUpdate)
}

// Snapshot is a point-in-time copy of the router's merge-layer counters.
type Snapshot struct {
	Rings int `json:"rings"`
	// Submits counts application messages routed (SubmitErrors the ones
	// that failed on at least one ring).
	Submits      uint64 `json:"submits"`
	SubmitErrors uint64 `json:"submit_errors"`
	// UnitsIn counts decoded units per ring; Merged counts messages
	// emitted in the cross-shard order; Turns is the global merge turn.
	UnitsIn []uint64 `json:"units_in"`
	Merged  uint64   `json:"merged_deliveries"`
	Turns   uint64   `json:"merge_turns"`
	// SkipsConsumed counts skip units merged away; SkipsSubmitted counts
	// skip units this node initiated; SkipSubmitErrors counts initiations
	// rejected by a ring.
	SkipsConsumed    uint64 `json:"skips_consumed"`
	SkipsSubmitted   uint64 `json:"skips_submitted"`
	SkipSubmitErrors uint64 `json:"skip_submit_errors"`
	// StarvedTicks counts skip-poll ticks that found at least one starved
	// ring; MultiShardPending is the number of multi-shard messages still
	// waiting for copies.
	StarvedTicks      uint64 `json:"starved_ticks"`
	MultiShardPending int    `json:"multi_shard_pending"`
	// DecodeFailures counts delivered payloads that were not well-formed
	// envelopes (each is merged as a one-turn skip to keep all nodes'
	// turn arithmetic aligned).
	DecodeFailures uint64 `json:"decode_failures"`
	// ConfigsForwarded counts per-ring configuration events passed through.
	ConfigsForwarded uint64 `json:"configs_forwarded"`
}

// Router drives M ring instances and exposes their merged total order.
type Router struct {
	opts   Options
	merger *Merger
	out    chan Event

	seq atomic.Uint64 // submission counter, shared across rings

	stopCh   chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	// counters (atomic: written on the merge goroutine or submitters,
	// snapshotted from anywhere)
	submits, submitErrors    metrics.Counter
	unitsIn                  []metrics.Counter
	merged                   metrics.Counter
	skipsConsumed            metrics.Counter
	skipsSubmitted, skipErrs metrics.Counter
	starvedTicks             metrics.Counter
	decodeFailures           metrics.Counter
	configsForwarded         metrics.Counter
	turnsGauge, pendingGauge metrics.Gauge
}

// NewRouter starts a router over the given rings. It owns the merge
// goroutine until Close or until the event channel closes.
func NewRouter(opts Options) (*Router, error) {
	if len(opts.Rings) == 0 {
		return nil, errors.New("multiring: at least one ring required")
	}
	if len(opts.Rings) > 255 {
		return nil, fmt.Errorf("multiring: %d rings exceeds the envelope's shard limit", len(opts.Rings))
	}
	if opts.Events == nil {
		return nil, errors.New("multiring: Options.Events is required")
	}
	if opts.SkipInterval <= 0 {
		opts.SkipInterval = 2 * time.Millisecond
	}
	if opts.MaxSkipBatch == 0 {
		opts.MaxSkipBatch = 1024
	}
	if opts.EventBuffer <= 0 {
		opts.EventBuffer = 4096
	}
	r := &Router{
		opts:    opts,
		merger:  NewMerger(len(opts.Rings)),
		out:     make(chan Event, opts.EventBuffer),
		stopCh:  make(chan struct{}),
		done:    make(chan struct{}),
		unitsIn: make([]metrics.Counter, len(opts.Rings)),
	}
	go r.run()
	return r, nil
}

// Shards returns the number of rings.
func (r *Router) Shards() int { return len(r.opts.Rings) }

// ShardOf maps a group onto this router's shard space.
func (r *Router) ShardOf(group string) int { return ShardOf(group, len(r.opts.Rings)) }

// Events returns the merged cross-shard stream. The channel is closed when
// the router shuts down.
func (r *Router) Events() <-chan Event { return r.out }

// Done is closed when the merge goroutine has exited; event producers use
// it to abandon sends into a stopped router.
func (r *Router) Done() <-chan struct{} { return r.done }

// Submit routes one application message: the destination groups are hashed
// onto their shards and one enveloped copy is submitted to each addressed
// ring — rings no group maps to are not involved. Multi-shard submission
// is not atomic: a failure on a later ring may leave copies on earlier
// ones, which then occupy one turn each but are never emitted (the same
// outcome as a submitter crashing mid-message).
func (r *Router) Submit(groups []string, payload []byte, service wire.Service) error {
	if len(groups) == 0 {
		return errors.New("multiring: at least one destination group required")
	}
	shards := r.shardsOf(groups)
	key := MsgKey{Sender: r.opts.LocalID, Seq: r.seq.Add(1)}
	env, err := AppendMessageEnvelope(nil, key, len(shards), groups, payload)
	if err != nil {
		r.submitErrors.Inc()
		return err
	}
	for _, s := range shards {
		if err := r.opts.Rings[s].Submit(env, service); err != nil {
			r.submitErrors.Inc()
			return fmt.Errorf("multiring: ring %d: %w", s, err)
		}
	}
	r.submits.Inc()
	return nil
}

// SubmitShard routes one message to an explicit ring, bypassing the group
// hash (benchmarks and tests address shards directly).
func (r *Router) SubmitShard(ring int, group string, payload []byte, service wire.Service) error {
	if ring < 0 || ring >= len(r.opts.Rings) {
		return fmt.Errorf("multiring: ring %d out of range [0,%d)", ring, len(r.opts.Rings))
	}
	key := MsgKey{Sender: r.opts.LocalID, Seq: r.seq.Add(1)}
	env, err := AppendMessageEnvelope(nil, key, 1, []string{group}, payload)
	if err != nil {
		r.submitErrors.Inc()
		return err
	}
	if err := r.opts.Rings[ring].Submit(env, service); err != nil {
		r.submitErrors.Inc()
		return err
	}
	r.submits.Inc()
	return nil
}

// shardsOf returns the sorted, deduplicated shard set of a group list.
func (r *Router) shardsOf(groups []string) []int {
	set := make(map[int]struct{}, len(groups))
	for _, g := range groups {
		set[r.ShardOf(g)] = struct{}{}
	}
	out := make([]int, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// Close stops the merge goroutine. Ring instances are closed only if their
// handles carry a Close func.
func (r *Router) Close() error {
	r.stopOnce.Do(func() { close(r.stopCh) })
	<-r.done
	for _, h := range r.opts.Rings {
		if h.Close != nil {
			h.Close()
		}
	}
	return nil
}

// Snapshot returns the merge-layer counters.
func (r *Router) Snapshot() Snapshot {
	s := Snapshot{
		Rings:             len(r.opts.Rings),
		Submits:           r.submits.Load(),
		SubmitErrors:      r.submitErrors.Load(),
		UnitsIn:           make([]uint64, len(r.unitsIn)),
		Merged:            r.merged.Load(),
		Turns:             uint64(r.turnsGauge.Load()),
		SkipsConsumed:     r.skipsConsumed.Load(),
		SkipsSubmitted:    r.skipsSubmitted.Load(),
		SkipSubmitErrors:  r.skipErrs.Load(),
		StarvedTicks:      r.starvedTicks.Load(),
		MultiShardPending: int(r.pendingGauge.Load()),
		DecodeFailures:    r.decodeFailures.Load(),
		ConfigsForwarded:  r.configsForwarded.Load(),
	}
	for i := range r.unitsIn {
		s.UnitsIn[i] = r.unitsIn[i].Load()
	}
	return s
}

// run is the merge goroutine: it decodes tagged ring events into units,
// advances the merger, emits the merged stream, and answers starvation
// with skips when this node is the skip leader.
func (r *Router) run() {
	defer func() {
		close(r.out)
		close(r.done)
	}()
	tick := time.NewTicker(r.opts.SkipInterval)
	defer tick.Stop()
	for {
		select {
		case te, ok := <-r.opts.Events:
			if !ok {
				return
			}
			if !r.handle(te) {
				return
			}
		case <-tick.C:
			r.maybeSkip()
		case <-r.stopCh:
			return
		}
	}
}

// handle processes one tagged event and drains the merger. It returns
// false when delivery was aborted by Close.
func (r *Router) handle(te TaggedEvent) bool {
	if te.Ring < 0 || te.Ring >= len(r.opts.Rings) {
		return true
	}
	ev := te.Event
	if ev.Config {
		r.configsForwarded.Inc()
		cu := ConfigUpdate{
			Ring:         te.Ring,
			ID:           ev.ID,
			Members:      ev.Members,
			Transitional: ev.Transitional,
		}
		if r.opts.OnConfig != nil {
			r.opts.OnConfig(cu)
		}
		return r.deliver(cu)
	}
	u, err := DecodeEnvelope(ev.Payload)
	if err != nil {
		// Every node sees the identical bytes, so every node pads the
		// identical turn: alignment survives a malformed envelope.
		r.decodeFailures.Inc()
		u = Unit{Skip: true, SkipCount: 1}
	}
	u.Service = ev.Service
	if u.Skip {
		r.skipsConsumed.Inc()
	}
	r.unitsIn[te.Ring].Inc()
	if r.opts.OnUnit != nil {
		r.opts.OnUnit(te.Ring, u)
	}
	r.merger.Push(te.Ring, u)
	for {
		m, ok := r.merger.Next()
		if !ok {
			break
		}
		r.merged.Inc()
		d := Delivery{
			Ring:      m.Ring,
			Turn:      m.Turn,
			Sender:    m.Key.Sender,
			SenderSeq: m.Key.Seq,
			Shards:    m.Shards,
			Groups:    m.Groups,
			Service:   m.Service,
			Payload:   m.Payload,
		}
		if !r.deliver(d) {
			return false
		}
	}
	r.turnsGauge.Set(int64(r.merger.Turn()))
	r.pendingGauge.Set(int64(r.merger.PendingMultiShard()))
	return true
}

// deliver blocks until the application accepts the event or the router is
// stopped: merged events must never be dropped.
func (r *Router) deliver(ev Event) bool {
	select {
	case r.out <- ev:
		return true
	case <-r.stopCh:
		return false
	}
}

// maybeSkip answers starved rings with skip units when this node is the
// skip leader. The batch covers the busiest ring's backlog so the merge
// drains without a skip round-trip per message.
func (r *Router) maybeSkip() {
	starved := r.merger.Starved()
	if len(starved) == 0 {
		return
	}
	r.starvedTicks.Inc()
	if !r.opts.SubmitSkips {
		return
	}
	count := uint32(r.merger.Backlog())
	if count < 1 {
		count = 1
	}
	if count > r.opts.MaxSkipBatch {
		count = r.opts.MaxSkipBatch
	}
	for _, ring := range starved {
		key := MsgKey{Sender: r.opts.LocalID, Seq: r.seq.Add(1)}
		env, err := AppendSkipEnvelope(nil, key, count)
		if err != nil {
			r.skipErrs.Inc()
			continue
		}
		if err := r.opts.Rings[ring].Submit(env, wire.ServiceAgreed); err != nil {
			// The ring is busy or reforming; the next tick retries.
			r.skipErrs.Inc()
			continue
		}
		r.skipsSubmitted.Inc()
	}
}
