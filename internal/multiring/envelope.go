package multiring

import (
	"errors"
	"fmt"

	"accelring/internal/wire"
)

// The shard envelope is the small header the router prepends to every
// payload it submits to a ring, inside the ring's ordinary data message.
// It carries what the merge layer needs: the unit kind (message or skip),
// the message identity (sender + submission counter, shared by all copies
// of a multi-shard message), the shard fan-out, and the destination
// groups.
//
// Layout (big-endian):
//
//	message: magic(1) kind(1) shards(1) ngroups(1) sender(4) seq(8)
//	         then per group: len(1) bytes, then the application payload
//	skip:    magic(1) kind(1) count(4) sender(4) seq(8)
const (
	envMagic    = 0xB7
	envKindMsg  = 1
	envKindSkip = 2

	envMsgHeader = 1 + 1 + 1 + 1 + 4 + 8
	envSkipLen   = 1 + 1 + 4 + 4 + 8
	// EnvelopeOverhead is the worst-case envelope size for a single-group
	// message, for payload budget arithmetic.
	EnvelopeOverhead = envMsgHeader + 1 + wire.MaxGroupName
)

// Envelope errors.
var (
	// ErrBadEnvelope reports a payload that is not a well-formed shard
	// envelope.
	ErrBadEnvelope = errors.New("multiring: bad shard envelope")
)

// AppendMessageEnvelope appends a message envelope to dst and returns the
// extended slice. The payload is copied in; groups must respect
// wire.MaxGroups and wire.MaxGroupName.
func AppendMessageEnvelope(dst []byte, key MsgKey, shards int, groups []string, payload []byte) ([]byte, error) {
	if shards < 1 || shards > 255 {
		return nil, fmt.Errorf("multiring: shard count %d out of range", shards)
	}
	if len(groups) == 0 || len(groups) > wire.MaxGroups {
		return nil, fmt.Errorf("multiring: %d groups (want 1..%d)", len(groups), wire.MaxGroups)
	}
	for _, g := range groups {
		if len(g) == 0 || len(g) > wire.MaxGroupName {
			return nil, fmt.Errorf("multiring: group name length %d (want 1..%d)", len(g), wire.MaxGroupName)
		}
	}
	dst = append(dst, envMagic, envKindMsg, byte(shards), byte(len(groups)))
	dst = append(dst,
		byte(key.Sender>>24), byte(key.Sender>>16), byte(key.Sender>>8), byte(key.Sender))
	dst = appendUint64(dst, key.Seq)
	for _, g := range groups {
		dst = append(dst, byte(len(g)))
		dst = append(dst, g...)
	}
	return append(dst, payload...), nil
}

// AppendSkipEnvelope appends a skip envelope covering count merge turns.
func AppendSkipEnvelope(dst []byte, key MsgKey, count uint32) ([]byte, error) {
	if count < 1 {
		return nil, fmt.Errorf("multiring: skip count %d out of range", count)
	}
	dst = append(dst, envMagic, envKindSkip,
		byte(count>>24), byte(count>>16), byte(count>>8), byte(count))
	dst = append(dst,
		byte(key.Sender>>24), byte(key.Sender>>16), byte(key.Sender>>8), byte(key.Sender))
	return appendUint64(dst, key.Seq), nil
}

// DecodeEnvelope parses one delivered ring payload into a merge unit. The
// returned unit's Payload aliases pkt (group names are copied); the caller
// copies if it retains it past the packet's lifetime — ring deliveries
// hand the consumer an owned payload, so aliasing is the common case and
// free.
func DecodeEnvelope(pkt []byte) (Unit, error) {
	if len(pkt) < 2 || pkt[0] != envMagic {
		return Unit{}, ErrBadEnvelope
	}
	switch pkt[1] {
	case envKindSkip:
		if len(pkt) != envSkipLen {
			return Unit{}, fmt.Errorf("%w: skip length %d", ErrBadEnvelope, len(pkt))
		}
		count := uint32(pkt[2])<<24 | uint32(pkt[3])<<16 | uint32(pkt[4])<<8 | uint32(pkt[5])
		if count < 1 {
			return Unit{}, fmt.Errorf("%w: zero skip count", ErrBadEnvelope)
		}
		return Unit{
			Skip:      true,
			SkipCount: count,
			Key:       MsgKey{Sender: readPID(pkt[6:]), Seq: readUint64(pkt[10:])},
		}, nil
	case envKindMsg:
		if len(pkt) < envMsgHeader {
			return Unit{}, fmt.Errorf("%w: message header truncated", ErrBadEnvelope)
		}
		shards := int(pkt[2])
		ngroups := int(pkt[3])
		if shards < 1 || ngroups < 1 || ngroups > wire.MaxGroups {
			return Unit{}, fmt.Errorf("%w: shards=%d groups=%d", ErrBadEnvelope, shards, ngroups)
		}
		u := Unit{
			Shards: shards,
			Key:    MsgKey{Sender: readPID(pkt[4:]), Seq: readUint64(pkt[8:])},
			Groups: make([]string, 0, ngroups),
		}
		off := envMsgHeader
		for i := 0; i < ngroups; i++ {
			if off >= len(pkt) {
				return Unit{}, fmt.Errorf("%w: group %d truncated", ErrBadEnvelope, i)
			}
			n := int(pkt[off])
			off++
			if n == 0 || n > wire.MaxGroupName || off+n > len(pkt) {
				return Unit{}, fmt.Errorf("%w: group %d length %d", ErrBadEnvelope, i, n)
			}
			u.Groups = append(u.Groups, string(pkt[off:off+n]))
			off += n
		}
		u.Payload = pkt[off:]
		return u, nil
	default:
		return Unit{}, fmt.Errorf("%w: kind %d", ErrBadEnvelope, pkt[1])
	}
}

func appendUint64(dst []byte, v uint64) []byte {
	return append(dst,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func readPID(b []byte) wire.ParticipantID {
	return wire.ParticipantID(uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]))
}

func readUint64(b []byte) uint64 {
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}
