package multiring

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"accelring/internal/wire"
)

func TestMessageEnvelopeRoundTrip(t *testing.T) {
	key := MsgKey{Sender: 0xDEADBEEF, Seq: 0x1122334455667788}
	groups := []string{"orders", "users", strings.Repeat("g", wire.MaxGroupName)}
	payload := []byte("the application payload, opaque to the router")

	env, err := AppendMessageEnvelope(nil, key, 3, groups, payload)
	if err != nil {
		t.Fatal(err)
	}
	u, err := DecodeEnvelope(env)
	if err != nil {
		t.Fatal(err)
	}
	if u.Skip {
		t.Fatal("message decoded as skip")
	}
	if u.Key != key || u.Shards != 3 {
		t.Fatalf("key/shards mismatch: %+v", u)
	}
	if !reflect.DeepEqual(u.Groups, groups) {
		t.Fatalf("groups = %v, want %v", u.Groups, groups)
	}
	if !bytes.Equal(u.Payload, payload) {
		t.Fatalf("payload mismatch: %q", u.Payload)
	}
}

func TestMessageEnvelopeEmptyPayload(t *testing.T) {
	env, err := AppendMessageEnvelope(nil, MsgKey{Sender: 1, Seq: 1}, 1, []string{"g"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	u, err := DecodeEnvelope(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Payload) != 0 {
		t.Fatalf("payload = %q, want empty", u.Payload)
	}
}

func TestSkipEnvelopeRoundTrip(t *testing.T) {
	key := MsgKey{Sender: 42, Seq: 7}
	env, err := AppendSkipEnvelope(nil, key, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(env) != envSkipLen {
		t.Fatalf("skip envelope is %d bytes, want %d", len(env), envSkipLen)
	}
	u, err := DecodeEnvelope(env)
	if err != nil {
		t.Fatal(err)
	}
	if !u.Skip || u.SkipCount != 1024 || u.Key != key {
		t.Fatalf("skip decoded as %+v", u)
	}
}

func TestAppendEnvelopeRejects(t *testing.T) {
	key := MsgKey{Sender: 1, Seq: 1}
	long := strings.Repeat("x", wire.MaxGroupName+1)
	many := make([]string, wire.MaxGroups+1)
	for i := range many {
		many[i] = "g"
	}
	cases := []struct {
		name   string
		shards int
		groups []string
	}{
		{"zero shards", 0, []string{"g"}},
		{"too many shards", 256, []string{"g"}},
		{"no groups", 1, nil},
		{"too many groups", 1, many},
		{"empty group name", 1, []string{""}},
		{"oversized group name", 1, []string{long}},
	}
	for _, tc := range cases {
		if _, err := AppendMessageEnvelope(nil, key, tc.shards, tc.groups, nil); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
	if _, err := AppendSkipEnvelope(nil, key, 0); err == nil {
		t.Error("zero skip count: no error")
	}
}

func TestDecodeEnvelopeRejects(t *testing.T) {
	good, err := AppendMessageEnvelope(nil, MsgKey{Sender: 1, Seq: 1}, 1, []string{"group"}, []byte("p"))
	if err != nil {
		t.Fatal(err)
	}
	skipEnv, _ := AppendSkipEnvelope(nil, MsgKey{Sender: 1, Seq: 2}, 3)

	badMagic := append([]byte(nil), good...)
	badMagic[0] = 0x00
	badKind := append([]byte(nil), good...)
	badKind[1] = 9
	zeroShards := append([]byte(nil), good...)
	zeroShards[2] = 0
	truncGroup := good[:envMsgHeader+2] // group length says 5, two bytes follow
	shortSkip := skipEnv[:envSkipLen-1]
	zeroSkip := append([]byte(nil), skipEnv...)
	zeroSkip[2], zeroSkip[3], zeroSkip[4], zeroSkip[5] = 0, 0, 0, 0

	cases := []struct {
		name string
		pkt  []byte
	}{
		{"empty", nil},
		{"one byte", []byte{envMagic}},
		{"bad magic", badMagic},
		{"bad kind", badKind},
		{"zero shards", zeroShards},
		{"truncated header", good[:envMsgHeader-1]},
		{"truncated group", truncGroup},
		{"short skip", shortSkip},
		{"zero skip count", zeroSkip},
	}
	for _, tc := range cases {
		if _, err := DecodeEnvelope(tc.pkt); !errors.Is(err, ErrBadEnvelope) {
			t.Errorf("%s: err = %v, want ErrBadEnvelope", tc.name, err)
		}
	}
}

func TestEnvelopeOverheadBudget(t *testing.T) {
	// The documented worst case for a single-group message must hold, so
	// callers can budget payloads against wire.MaxPayload.
	g := strings.Repeat("n", wire.MaxGroupName)
	env, err := AppendMessageEnvelope(nil, MsgKey{Sender: 1, Seq: 1}, 1, []string{g}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(env) != EnvelopeOverhead {
		t.Fatalf("worst-case single-group envelope is %d bytes, constant says %d", len(env), EnvelopeOverhead)
	}
}
