// Package multiring partitions the group namespace across M independent
// Accelerated Ring engines and merges their per-ring total orders into one
// total order across shards.
//
// Each ring is a complete protocol instance — its own token, membership,
// flow control, transport sockets and metrics. The router (router.go)
// hashes destination groups onto rings, so a message only occupies
// ordering capacity on the rings it addresses (FlexCast's genuineness
// principle), and a deterministic merge layer (this file) interleaves the
// per-ring delivery streams round-robin into a single cross-shard order.
// Because the merge is a pure function of the per-ring sequences — never
// of arrival timing — every node that consumes the same per-ring streams
// produces the identical merged stream, which is what makes the result a
// total order rather than M unrelated ones.
//
// An idle ring would stall the round-robin at its turn, so the skip-leader
// node multicasts skip units on starved rings (Multi-Ring Paxos's
// round-robin-with-skip, "Stretching Multi-Ring Paxos"). A skip is an
// ordinary ordered message on its ring, so all nodes agree on exactly
// which turns it pads; it carries a count so one message can cover a
// backlog of turns.
package multiring

import (
	"accelring/internal/wire"
)

// MsgKey globally identifies a routed message: the submitting participant
// and its submission counter. Copies of a multi-shard message on different
// rings share the key; the merger uses it to emit the message exactly once.
type MsgKey struct {
	Sender wire.ParticipantID
	Seq    uint64
}

// Unit is one slot of a ring's ordered unit stream: every data message
// delivered on a multiring ring is exactly one unit, either an application
// message or a skip. The merge consumes one unit (or one skip credit) per
// turn of its ring.
type Unit struct {
	// Skip marks a padding unit; SkipCount is the number of merge turns it
	// covers (minimum 1). The message fields below are then unused.
	Skip      bool
	SkipCount uint32

	// Key identifies the message across rings.
	Key MsgKey
	// Shards is the number of rings the message was submitted to. The
	// merger emits the message when the last copy reaches its turn.
	Shards int
	// Groups are the destination groups.
	Groups []string
	// Service is the delivery guarantee the message was submitted with.
	Service wire.Service
	// Payload is the application payload.
	Payload []byte
}

// Merged is one emission of the merge layer: a message unit plus its merge
// coordinates.
type Merged struct {
	Unit
	// Ring is the ring whose copy completed the message (for single-shard
	// messages, the ring it was ordered on).
	Ring int
	// Turn is the global merge turn at which the message was emitted.
	// Turns increase strictly within one node's merged stream, and two
	// nodes that consumed identical per-ring streams assign identical
	// turns — the cross-ring conformance checker is built on this.
	Turn uint64
}

// fifo is an amortized O(1) pop-front queue of units.
type fifo struct {
	buf  []Unit
	head int
}

func (q *fifo) push(u Unit) { q.buf = append(q.buf, u) }

func (q *fifo) len() int { return len(q.buf) - q.head }

func (q *fifo) pop() (Unit, bool) {
	if q.head >= len(q.buf) {
		return Unit{}, false
	}
	u := q.buf[q.head]
	q.buf[q.head] = Unit{} // release references
	q.head++
	if q.head > 64 && q.head*2 >= len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	return u, true
}

// Merger deterministically interleaves M per-ring unit streams. It is not
// safe for concurrent use; the router owns one on its merge goroutine.
//
// The merge rule: global turn t belongs to ring t mod M. At its turn a
// ring consumes one unit of skip credit if it has any; otherwise it
// consumes its next queued unit — a skip unit grants SkipCount-1 further
// credits, a message unit is emitted (multi-shard messages on the turn of
// their last copy). A ring with neither credit nor a queued unit stalls
// the merge until input arrives or a skip is ordered on it.
type Merger struct {
	rings   int
	queues  []fifo
	credit  []uint64
	turn    uint64
	pending map[MsgKey]int
}

// NewMerger builds a merger over the given number of rings.
func NewMerger(rings int) *Merger {
	if rings <= 0 {
		panic("multiring: merger needs at least one ring")
	}
	return &Merger{
		rings:   rings,
		queues:  make([]fifo, rings),
		credit:  make([]uint64, rings),
		pending: make(map[MsgKey]int),
	}
}

// Rings returns the number of rings the merger interleaves.
func (m *Merger) Rings() int { return m.rings }

// Turn returns the current global merge turn (the next turn to consume).
func (m *Merger) Turn() uint64 { return m.turn }

// Push appends one unit to a ring's stream. Units of one ring must be
// pushed in that ring's delivery order; interleaving across rings is
// irrelevant to the merged output.
func (m *Merger) Push(ring int, u Unit) {
	m.queues[ring].push(u)
}

// Next pops the next merged message if the merge can advance without
// waiting for input, consuming skip units and credits along the way.
func (m *Merger) Next() (Merged, bool) {
	for {
		r := int(m.turn % uint64(m.rings))
		if m.credit[r] > 0 {
			m.credit[r]--
			m.turn++
			continue
		}
		u, ok := m.queues[r].pop()
		if !ok {
			return Merged{}, false
		}
		t := m.turn
		m.turn++
		if u.Skip {
			if u.SkipCount > 1 {
				m.credit[r] += uint64(u.SkipCount - 1)
			}
			continue
		}
		if u.Shards > 1 {
			seen := m.pending[u.Key] + 1
			if seen < u.Shards {
				m.pending[u.Key] = seen
				continue
			}
			delete(m.pending, u.Key)
		}
		return Merged{Unit: u, Ring: r, Turn: t}, true
	}
}

// Starved returns the rings the merge is waiting on — no queued unit and
// no skip credit — while at least one other ring has units queued. The
// skip leader answers a starved ring with a skip unit. When every queue is
// empty the merge is idle, not starved, and the result is empty: skipping
// then would only breed skips (each skip is itself a queued unit on
// arrival, starving the other rings in turn).
func (m *Merger) Starved() []int {
	busy := false
	for i := range m.queues {
		if m.queues[i].len() > 0 {
			busy = true
			break
		}
	}
	if !busy {
		return nil
	}
	var out []int
	for i := range m.queues {
		if m.queues[i].len() == 0 && m.credit[i] == 0 {
			out = append(out, i)
		}
	}
	return out
}

// Backlog returns the largest queued unit count across rings — the skip
// batch size that would let the merge drain the busiest ring without
// another skip round-trip.
func (m *Merger) Backlog() int {
	max := 0
	for i := range m.queues {
		if n := m.queues[i].len(); n > max {
			max = n
		}
	}
	return max
}

// QueueLen returns the number of units queued for one ring.
func (m *Merger) QueueLen(ring int) int { return m.queues[ring].len() }

// PendingMultiShard returns the number of multi-shard messages waiting for
// copies on further rings.
func (m *Merger) PendingMultiShard() int { return len(m.pending) }

// ShardOf maps a group name onto one of rings shards (FNV-1a). Every node
// must agree on the mapping, so it is a pure function of the name and the
// ring count.
func ShardOf(group string, rings int) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(group); i++ {
		h ^= uint32(group[i])
		h *= prime32
	}
	return int(h % uint32(rings))
}
