package multiring

import (
	"sync"
	"testing"
	"time"

	"accelring/internal/wire"
)

// loopback simulates M instantly-ordering rings: every submitted envelope
// is echoed straight back as that ring's next delivery. Per-ring order is
// the submission order, which is exactly the contract a real ring provides.
type loopback struct {
	mu     sync.Mutex
	mux    chan TaggedEvent
	closed bool
}

func newLoopback(rings int) *loopback {
	return &loopback{mux: make(chan TaggedEvent, 1024)}
}

func (lb *loopback) handle(ring int, id wire.ParticipantID) RingHandle {
	return RingHandle{
		Submit: func(payload []byte, service wire.Service) error {
			lb.mu.Lock()
			defer lb.mu.Unlock()
			if lb.closed {
				return nil
			}
			lb.mux <- TaggedEvent{Ring: ring, Event: RingEvent{
				Sender: id, Service: service, Payload: payload,
			}}
			return nil
		},
	}
}

func (lb *loopback) inject(te TaggedEvent) {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	if !lb.closed {
		lb.mux <- te
	}
}

func (lb *loopback) close() {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	if !lb.closed {
		lb.closed = true
		close(lb.mux)
	}
}

func startLoopbackRouter(t *testing.T, rings int, submitSkips bool) (*Router, *loopback) {
	t.Helper()
	lb := newLoopback(rings)
	handles := make([]RingHandle, rings)
	for i := range handles {
		handles[i] = lb.handle(i, 1)
	}
	r, err := NewRouter(Options{
		Rings:        handles,
		Events:       lb.mux,
		LocalID:      1,
		SubmitSkips:  submitSkips,
		SkipInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		lb.close()
		r.Close()
	})
	return r, lb
}

func nextDelivery(t *testing.T, r *Router) Delivery {
	t.Helper()
	for {
		select {
		case ev, ok := <-r.Events():
			if !ok {
				t.Fatal("router closed while waiting for a delivery")
			}
			if d, isD := ev.(Delivery); isD {
				return d
			}
		case <-time.After(5 * time.Second):
			t.Fatal("timed out waiting for a delivery")
		}
	}
}

func TestRouterSingleRing(t *testing.T) {
	r, _ := startLoopbackRouter(t, 1, false)
	for i := 0; i < 3; i++ {
		if err := r.Submit([]string{"g"}, []byte{byte(i)}, wire.ServiceAgreed); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		d := nextDelivery(t, r)
		if d.Turn != uint64(i) || d.Ring != 0 || len(d.Payload) != 1 || d.Payload[0] != byte(i) {
			t.Fatalf("delivery %d: %+v", i, d)
		}
		if d.Sender != 1 || d.Shards != 1 || d.Groups[0] != "g" {
			t.Fatalf("delivery %d metadata: %+v", i, d)
		}
	}
}

// twoShardGroups finds two group names hashing to shards 0 and 1 of a
// two-ring deployment.
func twoShardGroups(t *testing.T) (g0, g1 string) {
	t.Helper()
	names := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	for _, n := range names {
		switch ShardOf(n, 2) {
		case 0:
			if g0 == "" {
				g0 = n
			}
		case 1:
			if g1 == "" {
				g1 = n
			}
		}
	}
	if g0 == "" || g1 == "" {
		t.Fatal("could not find groups on both shards")
	}
	return g0, g1
}

func TestRouterMultiShardDelivery(t *testing.T) {
	r, _ := startLoopbackRouter(t, 2, false)
	g0, g1 := twoShardGroups(t)
	if err := r.Submit([]string{g0, g1}, []byte("both"), wire.ServiceAgreed); err != nil {
		t.Fatal(err)
	}
	d := nextDelivery(t, r)
	if d.Shards != 2 || d.Turn != 1 || d.Ring != 1 {
		t.Fatalf("multi-shard delivery: %+v", d)
	}
	if string(d.Payload) != "both" {
		t.Fatalf("payload = %q", d.Payload)
	}
	s := r.Snapshot()
	if s.Merged != 1 || s.UnitsIn[0] != 1 || s.UnitsIn[1] != 1 || s.MultiShardPending != 0 {
		t.Fatalf("snapshot: %+v", s)
	}
}

func TestRouterSkipLeaderUnstallsIdleRing(t *testing.T) {
	r, _ := startLoopbackRouter(t, 2, true)
	g0, _ := twoShardGroups(t)
	// Two messages on shard 0 only: the second needs ring 1 padded past
	// turn 1, which only the skip leader provides.
	for i := 0; i < 2; i++ {
		if err := r.Submit([]string{g0}, []byte{byte(i)}, wire.ServiceAgreed); err != nil {
			t.Fatal(err)
		}
	}
	d0 := nextDelivery(t, r)
	d1 := nextDelivery(t, r)
	if d0.Turn != 0 || d1.Turn <= d0.Turn {
		t.Fatalf("turns %d then %d", d0.Turn, d1.Turn)
	}
	s := r.Snapshot()
	if s.SkipsSubmitted == 0 || s.SkipsConsumed == 0 {
		t.Fatalf("no skips recorded: %+v", s)
	}
	if s.StarvedTicks == 0 {
		t.Fatalf("no starved ticks recorded: %+v", s)
	}
}

func TestRouterNonLeaderDoesNotSkip(t *testing.T) {
	r, lb := startLoopbackRouter(t, 2, false)
	g0, _ := twoShardGroups(t)
	for i := 0; i < 2; i++ {
		if err := r.Submit([]string{g0}, []byte{byte(i)}, wire.ServiceAgreed); err != nil {
			t.Fatal(err)
		}
	}
	d0 := nextDelivery(t, r)
	if d0.Turn != 0 {
		t.Fatalf("first delivery at turn %d", d0.Turn)
	}
	// The second message must stall until a skip arrives from outside
	// (here: injected manually, standing in for the leader node).
	select {
	case ev := <-r.Events():
		t.Fatalf("non-leader unstalled itself: %+v", ev)
	case <-time.After(50 * time.Millisecond):
	}
	env, err := AppendSkipEnvelope(nil, MsgKey{Sender: 2, Seq: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	lb.inject(TaggedEvent{Ring: 1, Event: RingEvent{Sender: 2, Service: wire.ServiceAgreed, Payload: env}})
	if d1 := nextDelivery(t, r); d1.Turn != 2 {
		t.Fatalf("post-skip delivery at turn %d, want 2", d1.Turn)
	}
	if s := r.Snapshot(); s.SkipsSubmitted != 0 {
		t.Fatalf("non-leader submitted %d skips", s.SkipsSubmitted)
	}
}

func TestRouterDecodeFailureBecomesSkip(t *testing.T) {
	r, lb := startLoopbackRouter(t, 2, false)
	g0, _ := twoShardGroups(t)
	if err := r.Submit([]string{g0}, []byte("first"), wire.ServiceAgreed); err != nil {
		t.Fatal(err)
	}
	if d := nextDelivery(t, r); d.Turn != 0 {
		t.Fatalf("first delivery at turn %d", d.Turn)
	}
	// Garbage on ring 1 pads turn 1, exactly like a skip, so the next
	// shard-0 message merges at turn 2 — on every node, since all see the
	// same bytes.
	lb.inject(TaggedEvent{Ring: 1, Event: RingEvent{Sender: 9, Service: wire.ServiceAgreed, Payload: []byte("not an envelope")}})
	if err := r.Submit([]string{g0}, []byte("second"), wire.ServiceAgreed); err != nil {
		t.Fatal(err)
	}
	if d := nextDelivery(t, r); d.Turn != 2 {
		t.Fatalf("post-garbage delivery at turn %d, want 2", d.Turn)
	}
	if s := r.Snapshot(); s.DecodeFailures != 1 {
		t.Fatalf("DecodeFailures = %d, want 1", s.DecodeFailures)
	}
}

func TestRouterForwardsConfigImmediately(t *testing.T) {
	var seen []ConfigUpdate
	var mu sync.Mutex
	lb := newLoopback(2)
	r, err := NewRouter(Options{
		Rings:   []RingHandle{lb.handle(0, 1), lb.handle(1, 1)},
		Events:  lb.mux,
		LocalID: 1,
		// The OnConfig tap fires on the merge goroutine before channel
		// delivery.
		OnConfig: func(cu ConfigUpdate) {
			mu.Lock()
			seen = append(seen, cu)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		lb.close()
		r.Close()
	})
	lb.inject(TaggedEvent{Ring: 1, Event: RingEvent{
		Config:  true,
		ID:      wire.RingID{Rep: 3, Seq: 14},
		Members: []wire.ParticipantID{1, 2},
	}})
	select {
	case ev := <-r.Events():
		cu, ok := ev.(ConfigUpdate)
		if !ok {
			t.Fatalf("got %T, want ConfigUpdate", ev)
		}
		if cu.Ring != 1 || cu.ID != (wire.RingID{Rep: 3, Seq: 14}) || len(cu.Members) != 2 {
			t.Fatalf("config update: %+v", cu)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("config update never delivered")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 1 {
		t.Fatalf("OnConfig fired %d times", len(seen))
	}
	if s := r.Snapshot(); s.ConfigsForwarded != 1 {
		t.Fatalf("ConfigsForwarded = %d", s.ConfigsForwarded)
	}
}

func TestRouterOnUnitSeesPerRingOrder(t *testing.T) {
	var mu sync.Mutex
	perRing := make(map[int][]uint64)
	lb := newLoopback(2)
	handles := []RingHandle{lb.handle(0, 1), lb.handle(1, 1)}
	r, err := NewRouter(Options{
		Rings:   handles,
		Events:  lb.mux,
		LocalID: 1,
		OnUnit: func(ring int, u Unit) {
			mu.Lock()
			perRing[ring] = append(perRing[ring], u.Key.Seq)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		lb.close()
		r.Close()
	}()
	g0, g1 := twoShardGroups(t)
	for i := 0; i < 3; i++ {
		if err := r.Submit([]string{g0}, nil, wire.ServiceAgreed); err != nil {
			t.Fatal(err)
		}
		if err := r.Submit([]string{g1}, nil, wire.ServiceAgreed); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		nextDelivery(t, r)
	}
	mu.Lock()
	defer mu.Unlock()
	for ring, seqs := range perRing {
		for i := 1; i < len(seqs); i++ {
			if seqs[i] <= seqs[i-1] {
				t.Fatalf("ring %d units out of order: %v", ring, seqs)
			}
		}
	}
	if len(perRing[0]) != 3 || len(perRing[1]) != 3 {
		t.Fatalf("per-ring unit counts: %v", perRing)
	}
}

func TestRouterRejects(t *testing.T) {
	if _, err := NewRouter(Options{}); err == nil {
		t.Fatal("no rings accepted")
	}
	lb := newLoopback(1)
	if _, err := NewRouter(Options{Rings: []RingHandle{lb.handle(0, 1)}}); err == nil {
		t.Fatal("nil events channel accepted")
	}
	r, _ := startLoopbackRouter(t, 2, false)
	if err := r.Submit(nil, nil, wire.ServiceAgreed); err == nil {
		t.Fatal("empty group list accepted")
	}
	if err := r.SubmitShard(5, "g", nil, wire.ServiceAgreed); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
}
