package netsim

import (
	"encoding/binary"
	"strconv"
	"time"

	"accelring/internal/core"
	"accelring/internal/wire"
)

// packet is a message in flight. The simulator never serializes messages;
// it carries typed messages plus their modeled wire size.
type packet struct {
	kind   wire.Kind
	tok    *wire.Token
	data   *wire.DataMessage
	join   *wire.JoinMessage
	commit *wire.CommitToken
	bytes  int
	frags  int
}

// simNode is one ring participant: a single-threaded protocol process with
// bounded receive socket buffers, a NIC, and a local sending client.
type simNode struct {
	sim *Sim
	eng core.OrderingEngine
	idx int // index into sim.nodes and sim.ports

	cpuFree time.Duration
	running bool // a run event is scheduled

	tokenQ      []packet
	dataQ       []packet
	tokenQBytes int
	dataQBytes  int
	submitQ     []time.Duration // client submit times awaiting daemon pickup

	nicFree time.Duration

	sendSeq uint32 // per-node submission counter for captured runs

	timers map[core.TimerKind]time.Duration
}

func newSimNode(s *Sim, eng core.OrderingEngine) *simNode {
	return &simNode{
		sim:    s,
		eng:    eng,
		idx:    int(eng.Config().MyID) - 1,
		timers: make(map[core.TimerKind]time.Duration),
	}
}

// injectSubmission models the client handing one message to the daemon: the
// submit timestamp is taken at the client, and the submission reaches the
// daemon's queue one IPC delay later.
func (n *simNode) injectSubmission(clientTime time.Duration) {
	if clientTime >= n.sim.measureFrom && clientTime <= n.sim.measureTo {
		n.sim.submitted++
	}
	arrival := clientTime + n.sim.cfg.Profile.IPCDelay
	n.sim.schedule(arrival, func() {
		n.submitQ = append(n.submitQ, clientTime)
		n.scheduleRun()
	})
}

// receive enqueues an arriving packet into the appropriate bounded socket
// buffer (tokens and data use separate sockets, as in the real
// implementations) and wakes the processing loop.
func (n *simNode) receive(p packet) {
	switch p.kind {
	case wire.KindToken, wire.KindCommit:
		if n.tokenQBytes+p.bytes > n.sim.cfg.Network.SockBufToken {
			n.sim.sockDrops++
			return
		}
		n.tokenQ = append(n.tokenQ, p)
		n.tokenQBytes += p.bytes
	default:
		if n.dataQBytes+p.bytes > n.sim.cfg.Network.SockBufData {
			n.sim.sockDrops++
			return
		}
		n.dataQ = append(n.dataQ, p)
		n.dataQBytes += p.bytes
	}
	n.scheduleRun()
}

// scheduleRun arranges for the node's processing loop to run as soon as its
// CPU is free.
func (n *simNode) scheduleRun() {
	if n.running {
		return
	}
	n.running = true
	at := n.cpuFree
	if at < n.sim.now {
		at = n.sim.now
	}
	n.sim.schedule(at, n.run)
}

// run processes exactly one input (token, data message, or a small batch of
// client submissions) per invocation, honoring the engine's token/data
// priority policy, then re-schedules itself while work remains.
func (n *simNode) run() {
	n.running = false
	now := n.sim.now
	if n.cpuFree < now {
		n.cpuFree = now
	}

	prof := &n.sim.cfg.Profile
	switch {
	case n.eng.TokenHasPriority() && len(n.tokenQ) > 0:
		n.processToken(prof)
	case len(n.dataQ) > 0:
		n.processData(prof)
	case len(n.tokenQ) > 0:
		n.processToken(prof)
	case len(n.submitQ) > 0:
		n.processSubmissions(prof, 8)
	default:
		return
	}

	// Keep client submissions from starving while the network is busy:
	// after each network message, accept a couple of queued submissions.
	if len(n.submitQ) > 0 {
		n.processSubmissions(prof, 2)
	}

	if len(n.tokenQ) > 0 || len(n.dataQ) > 0 || len(n.submitQ) > 0 {
		n.running = true
		n.sim.schedule(n.cpuFree, n.run)
	}
}

func (n *simNode) processToken(prof *Profile) {
	p := n.tokenQ[0]
	n.tokenQ = n.tokenQ[1:]
	n.tokenQBytes -= p.bytes
	n.cpuFree += prof.TokenCost
	switch p.kind {
	case wire.KindToken:
		n.execute(n.eng.HandleToken(p.tok))
	case wire.KindCommit:
		n.execute(n.eng.HandleCommit(p.commit))
	}
}

func (n *simNode) processData(prof *Profile) {
	p := n.dataQ[0]
	n.dataQ = n.dataQ[1:]
	n.dataQBytes -= p.bytes
	n.cpuFree += prof.DataRecvCost
	if p.kind == wire.KindData {
		n.cpuFree += perKB(prof.RecvPerKB, n.sim.cfg.PayloadSize)
	}
	if p.frags > 0 {
		n.cpuFree += time.Duration(p.frags) * prof.RecvPerFrag
	}
	switch p.kind {
	case wire.KindData:
		n.execute(n.eng.HandleData(p.data))
	case wire.KindJoin:
		n.execute(n.eng.HandleJoin(p.join))
	}
}

func (n *simNode) processSubmissions(prof *Profile, limit int) {
	for i := 0; i < limit && len(n.submitQ) > 0; i++ {
		clientTime := n.submitQ[0]
		n.submitQ = n.submitQ[1:]
		n.cpuFree += prof.SubmitCost
		size := 8
		if n.sim.capture != nil {
			size = 16
		}
		payload := make([]byte, size)
		binary.BigEndian.PutUint64(payload, uint64(clientTime))
		if n.sim.capture != nil {
			// Captured runs also tag the payload with (sender, sequence) so
			// the conformance checker can key deliveries and check FIFO.
			n.sendSeq++
			binary.BigEndian.PutUint32(payload[8:12], uint32(n.idx+1))
			binary.BigEndian.PutUint32(payload[12:16], n.sendSeq)
		}
		// The engine never inspects payloads; the simulator models the
		// configured payload size on the wire while carrying only the
		// submit timestamp (and capture tag) in memory.
		if err := n.eng.Submit(payload, n.sim.cfg.Service); err != nil {
			// The backlog cap is sized so this cannot happen in a valid
			// experiment; losing the message only lowers achieved
			// throughput, which the stability check reports.
			return
		}
		// Engines with an eager submit path (Ring Paxos proposers
		// multicast the value immediately) hand that output back via
		// Flush, per the OrderingEngine contract.
		if fl, ok := n.eng.(core.Flusher); ok {
			n.execute(fl.Flush())
		}
	}
}

// execute carries out the engine's actions in order, advancing the node's
// CPU for every send and delivery. The position of the token send among the
// data sends is what produces (or, for the original protocol, forbids)
// sending overlap between ring neighbours.
func (n *simNode) execute(actions []core.Action) {
	prof := &n.sim.cfg.Profile
	for _, a := range actions {
		switch act := a.(type) {
		case core.SendData:
			n.cpuFree += prof.SendCost + perKB(prof.SendPerKB, n.sim.cfg.PayloadSize)
			body := prof.HeaderBytes + n.sim.cfg.PayloadSize
			pkt := packet{kind: wire.KindData, data: act.Msg,
				bytes: n.sim.wireBytes(body), frags: n.sim.fragments(body)}
			n.transmit(pkt, -1)
		case core.SendToken:
			n.cpuFree += prof.SendCost
			pkt := packet{kind: wire.KindToken, tok: act.Token, bytes: n.sim.wireBytes(act.Token.EncodedSize())}
			n.transmit(pkt, int(act.To)-1)
		case core.SendJoin:
			n.cpuFree += prof.SendCost
			n.transmit(packet{kind: wire.KindJoin, join: act.Join, bytes: n.sim.wireBytes(act.Join.EncodedSize())}, -1)
		case core.SendCommit:
			n.cpuFree += prof.SendCost
			pkt := packet{kind: wire.KindCommit, commit: act.Commit, bytes: n.sim.wireBytes(act.Commit.EncodedSize())}
			n.transmit(pkt, int(act.To)-1)
		case core.Deliver:
			n.cpuFree += prof.DeliverCost + perKB(prof.DeliverPerKB, n.sim.cfg.PayloadSize)
			n.recordDelivery(act.Msg)
			n.captureDelivery(act.Msg)
		case core.DeliverConfig:
			// Configuration events are not measured, but captured runs log
			// them so the conformance checker can segment delivery epochs.
			if n.sim.capture != nil {
				n.sim.capture.Node(n.logName()).Install(act.Config.ID, act.Config.Members, act.Transitional)
			}
		case core.SetTimer:
			n.setTimer(act.Kind, act.After)
		case core.CancelTimer:
			delete(n.timers, act.Kind)
		}
	}
}

// transmit serializes a packet out of the node's NIC and through the
// switch. dst < 0 multicasts to every other node (the switch replicates to
// each output port); otherwise the packet is unicast to the given node
// index. A unicast to self (singleton ring) is looped back locally.
func (n *simNode) transmit(p packet, dst int) {
	txStart := n.cpuFree
	if n.nicFree > txStart {
		txStart = n.nicFree
	}
	txEnd := txStart + n.sim.txDuration(p.bytes)
	n.nicFree = txEnd

	if dst == n.idx {
		target := n.sim.nodes[dst]
		n.sim.schedule(txEnd, func() { target.receive(p) })
		return
	}
	for i := range n.sim.nodes {
		if i == n.idx {
			continue
		}
		if dst >= 0 && i != dst {
			continue
		}
		arrive, dropped := n.sim.forward(txEnd, i, p.bytes)
		if dropped {
			continue
		}
		target := n.sim.nodes[i]
		if f := n.sim.fault; f != nil {
			// The injected fault acts on the wire between switch and
			// destination NIC: loss discards the copy after it consumed
			// port bandwidth; duplication and delay add delivery events.
			v := f.Decide(txEnd, wire.ParticipantID(n.idx+1), wire.ParticipantID(i+1), p.kind)
			if v.Drop {
				n.sim.faultDrops++
				continue
			}
			arrive += v.Delay
			if v.Dup {
				n.sim.faultDups++
				n.sim.schedule(arrive, func() { target.receive(p) })
			}
		}
		n.sim.schedule(arrive, func() { target.receive(p) })
	}
}

// recordDelivery samples end-to-end latency: client submit time (embedded
// in the payload) to the moment the receiving client sees the message, one
// IPC delay after the daemon delivers it.
func (n *simNode) recordDelivery(m *wire.DataMessage) {
	if len(m.Payload) < 8 {
		return
	}
	clientTime := time.Duration(binary.BigEndian.Uint64(m.Payload))
	if clientTime < n.sim.measureFrom || clientTime > n.sim.measureTo {
		return
	}
	clientRecv := n.cpuFree + n.sim.cfg.Profile.IPCDelay
	n.sim.latency.Add(clientRecv - clientTime)
	if n.idx == 0 {
		n.sim.delivered++
	}
}

// logName is the node's name in the captured delivery log.
func (n *simNode) logName() string {
	return strconv.Itoa(n.idx + 1)
}

// captureDelivery appends the delivery to the run's conformance log, keyed
// by the (sender, sequence) tag embedded in captured payloads.
func (n *simNode) captureDelivery(m *wire.DataMessage) {
	if n.sim.capture == nil || len(m.Payload) < 16 {
		return
	}
	sender := binary.BigEndian.Uint32(m.Payload[8:12])
	seq := binary.BigEndian.Uint32(m.Payload[12:16])
	key := strconv.Itoa(int(sender)) + "-" + strconv.Itoa(int(seq))
	n.sim.capture.Node(n.logName()).Deliver(key, wire.ParticipantID(sender), uint64(seq), m.Service)
}

// perKB scales a per-kilobyte cost to the given byte count.
func perKB(d time.Duration, bytes int) time.Duration {
	return d * time.Duration(bytes) / 1024
}

func (n *simNode) setTimer(kind core.TimerKind, after time.Duration) {
	deadline := n.sim.now + after
	if n.cpuFree > n.sim.now {
		deadline = n.cpuFree + after
	}
	n.timers[kind] = deadline
	n.sim.schedule(deadline, func() {
		if d, ok := n.timers[kind]; ok && d == deadline {
			delete(n.timers, kind)
			n.execute(n.eng.HandleTimer(kind))
		}
	})
}
