package netsim

import (
	"testing"
	"time"

	"accelring/internal/core"
	"accelring/internal/evscheck"
	"accelring/internal/faultplan"
)

// lossyPlan injects a steady mix of loss, duplication and reordering delay
// on every link for the whole run.
func lossyPlan(seed int64) *faultplan.Plan {
	return &faultplan.Plan{
		Seed: seed,
		Links: []faultplan.LinkFault{{
			Loss:      0.02,
			Dup:       0.01,
			DelayProb: 0.02,
			Delay:     200 * time.Microsecond,
		}},
	}
}

func TestLossyRunRecoversAndConforms(t *testing.T) {
	cfg := quickCfg(core.ProtocolAcceleratedRing, Net1G, ProfileLibrary, 200)
	cfg.Faults = lossyPlan(42)
	cfg.Capture = true
	res, log, err := RunCapture(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultDrops == 0 {
		t.Fatal("fault plan injected no drops")
	}
	if res.FaultDups == 0 {
		t.Fatal("fault plan injected no duplicates")
	}
	if res.Retransmits == 0 {
		t.Fatal("packet loss should force retransmissions")
	}
	if res.Samples == 0 {
		t.Fatal("no deliveries completed under loss")
	}
	// The run is cut off mid-flight (tokens circulate forever), so tails
	// may be incomplete; every delivered prefix must still conform.
	if vs := evscheck.Check(log, evscheck.Options{}); len(vs) > 0 {
		for _, v := range vs {
			t.Errorf("EVS violation: %v", v)
		}
	}
	if len(log) != cfg.Nodes {
		t.Fatalf("captured %d node logs, want %d", len(log), cfg.Nodes)
	}
}

func TestLossyRunIsDeterministic(t *testing.T) {
	run := func() (Result, string) {
		cfg := quickCfg(core.ProtocolAcceleratedRing, Net1G, ProfileLibrary, 150)
		cfg.Faults = lossyPlan(7)
		cfg.Capture = true
		res, log, err := RunCapture(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res, evscheck.Digest(log)
	}
	resA, digA := run()
	resB, digB := run()
	if resA != resB {
		t.Fatalf("two identical lossy runs disagree:\n%v\n%v", resA, resB)
	}
	if digA != digB {
		t.Fatalf("two identical lossy runs delivered different traces:\n%s\n%s", digA, digB)
	}
}

func TestCrashPlanRejected(t *testing.T) {
	cfg := quickCfg(core.ProtocolAcceleratedRing, Net1G, ProfileLibrary, 100)
	cfg.Faults = &faultplan.Plan{Events: []faultplan.NodeEvent{
		{At: time.Millisecond, Kind: faultplan.EventCrash, Node: 1},
	}}
	if _, err := Run(cfg); err == nil {
		t.Fatal("crash events must be rejected by the simulator")
	}
}

func TestCaptureRequiresRoomForTag(t *testing.T) {
	cfg := quickCfg(core.ProtocolAcceleratedRing, Net1G, ProfileLibrary, 100)
	cfg.PayloadSize = 12
	cfg.Capture = true
	if _, _, err := RunCapture(cfg); err == nil {
		t.Fatal("capture with a 12-byte payload must be rejected")
	}
}

// TestCapturedCleanRunQuiescent verifies the capture path itself: a clean
// captured run must conform and deliver every submission at every node.
func TestCapturedCleanRunQuiescent(t *testing.T) {
	cfg := quickCfg(core.ProtocolAcceleratedRing, Net1G, ProfileLibrary, 100)
	cfg.Capture = true
	res, log, err := RunCapture(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples == 0 {
		t.Fatal("no deliveries captured")
	}
	if vs := evscheck.Check(log, evscheck.Options{}); len(vs) > 0 {
		for _, v := range vs {
			t.Errorf("EVS violation: %v", v)
		}
	}
	// Every node must have logged the initial configuration.
	for name, nl := range log {
		if len(nl.Events) == 0 || !nl.Events[0].Config {
			t.Fatalf("node %s log does not start with a configuration", name)
		}
	}
}
