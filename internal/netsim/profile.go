// Package netsim is a discrete-event simulator that runs the real protocol
// engine (internal/core) over a modeled data-center network: NICs that
// serialize at line rate, a store-and-forward switch with bounded per-port
// output buffers, and single-threaded protocol CPUs with per-message
// processing costs. It stands in for the paper's 8-server 1-gigabit /
// 10-gigabit testbed (see DESIGN.md §3 for the substitution argument) and
// regenerates the latency-vs-throughput profiles of the paper's figures.
package netsim

import "time"

// Profile models the per-message CPU costs and header overhead of one of
// the paper's three implementations: the library-based prototype, the
// daemon-based prototype, and the full Spread toolkit. The relative
// ordering (library cheapest, Spread most expensive, with client IPC and
// group-name-analysis delivery costs dominating Spread's profile) follows
// Section IV of the paper; absolute values are calibrated so that maximum
// throughputs land in the ranges the paper reports.
type Profile struct {
	// Name identifies the profile in benchmark output.
	Name string
	// HeaderBytes is the protocol header size added to each payload on
	// the wire. Spread's large headers (descriptive group and sender
	// names) are the reason its "clean payload" saturation point sits
	// below the line rate.
	HeaderBytes int
	// DataRecvCost is the CPU time to receive and process one data
	// message (socket read, decode, buffer insertion).
	DataRecvCost time.Duration
	// TokenCost is the CPU time to process a received token, excluding
	// the per-message send costs of the round.
	TokenCost time.Duration
	// SendCost is the CPU time to prepare and hand one multicast to the
	// NIC.
	SendCost time.Duration
	// DeliverCost is the CPU time to deliver one message to local
	// clients. For Spread this includes group-name analysis and the IPC
	// write, and it is what puts delivery on the critical path of the
	// original protocol (Section IV-A1).
	DeliverCost time.Duration
	// SubmitCost is the CPU time to accept one client submission (IPC
	// read and enqueue).
	SubmitCost time.Duration
	// RecvPerFrag is the CPU cost per network frame of a received
	// datagram (interrupt and reassembly work): a 9000-byte datagram on a
	// 1500-byte MTU pays it seven times, on a jumbo-frame network once.
	// This is what the paper's "jumbo frames may improve performance
	// further" remark is about.
	RecvPerFrag time.Duration
	// RecvPerKB, DeliverPerKB and SendPerKB add size-dependent CPU cost
	// (copies, checksums, IPC writes) per kilobyte of payload. They are
	// what keeps the large-datagram experiments (Section IV-A3) from
	// scaling past the paper's maxima: bigger messages amortize the fixed
	// per-message costs but still pay for every byte touched.
	RecvPerKB    time.Duration
	DeliverPerKB time.Duration
	SendPerKB    time.Duration
	// IPCDelay is the one-way client↔daemon latency added outside the
	// daemon's CPU (scheduling and socket wakeups). It is charged once on
	// submission and once on delivery for daemon-based profiles.
	IPCDelay time.Duration
}

// The three implementation profiles evaluated in the paper.
var (
	// ProfileLibrary models the library-based prototype: the application
	// links the protocol directly, so there is no client communication
	// at all.
	ProfileLibrary = Profile{
		Name:         "library",
		HeaderBytes:  52,
		DataRecvCost: 700 * time.Nanosecond,
		TokenCost:    2000 * time.Nanosecond,
		SendCost:     900 * time.Nanosecond,
		DeliverCost:  400 * time.Nanosecond,
		SubmitCost:   300 * time.Nanosecond,
		RecvPerFrag:  200 * time.Nanosecond,
		RecvPerKB:    600 * time.Nanosecond,
		DeliverPerKB: 400 * time.Nanosecond,
		SendPerKB:    250 * time.Nanosecond,
		IPCDelay:     0,
	}

	// ProfileDaemon models the daemon-based prototype: clients connect
	// over IPC sockets, but the daemon supports only a single group and
	// none of Spread's heavyweight features.
	ProfileDaemon = Profile{
		Name:         "daemon",
		HeaderBytes:  76,
		DataRecvCost: 1000 * time.Nanosecond,
		TokenCost:    2200 * time.Nanosecond,
		SendCost:     1000 * time.Nanosecond,
		DeliverCost:  900 * time.Nanosecond,
		SubmitCost:   800 * time.Nanosecond,
		RecvPerFrag:  200 * time.Nanosecond,
		RecvPerKB:    650 * time.Nanosecond,
		DeliverPerKB: 450 * time.Nanosecond,
		SendPerKB:    250 * time.Nanosecond,
		IPCDelay:     12 * time.Microsecond,
	}

	// ProfileSpread models the full Spread toolkit: large headers for
	// descriptive group/sender names, expensive delivery (group-name
	// analysis, per-client routing) and heavier client handling.
	ProfileSpread = Profile{
		Name:         "spread",
		HeaderBytes:  122,
		DataRecvCost: 1600 * time.Nanosecond,
		TokenCost:    2600 * time.Nanosecond,
		SendCost:     1200 * time.Nanosecond,
		DeliverCost:  2100 * time.Nanosecond,
		SubmitCost:   1300 * time.Nanosecond,
		RecvPerFrag:  250 * time.Nanosecond,
		RecvPerKB:    600 * time.Nanosecond,
		DeliverPerKB: 500 * time.Nanosecond,
		SendPerKB:    300 * time.Nanosecond,
		IPCDelay:     16 * time.Microsecond,
	}
)

// Network models the wire: line rate, per-hop forwarding latency and the
// switch's per-output-port buffering.
type Network struct {
	// Name identifies the network in benchmark output.
	Name string
	// RateBps is the line rate in bits per second.
	RateBps float64
	// PropDelay is the one-hop latency: NIC to switch to NIC, including
	// the switch's forwarding latency.
	PropDelay time.Duration
	// SwitchPortBuf is the switch's output buffer per port, in bytes.
	// Drop-tail beyond it. This buffering is what absorbs the accelerated
	// protocol's controlled sending overlap.
	SwitchPortBuf int
	// SockBufData and SockBufToken are the receive socket buffers, in
	// bytes; packets arriving while they are full are lost.
	SockBufData  int
	SockBufToken int
	// FrameOverhead is the per-packet wire overhead in bytes (Ethernet
	// preamble, header, CRC, inter-frame gap, IP and UDP headers).
	FrameOverhead int
	// MTU is the largest UDP datagram carried in one simulated packet.
	// Larger datagrams are fragmented into MTU-sized frames by the kernel
	// (Section IV-A3 runs with 9000-byte datagrams on a 1500-byte MTU
	// network); the simulator charges wire time per fragment but a single
	// receive cost, and losing any fragment loses the datagram.
	MTU int
}

// Jumbo returns a copy of the network with a 9000-byte MTU (jumbo
// frames), the configuration the paper declines to require but notes may
// improve performance further (Section IV-B).
func (n Network) Jumbo() Network {
	n.Name += "+jumbo"
	n.MTU = 9000
	return n
}

// The two testbed networks of the paper's evaluation.
var (
	// Net1G models the 1-gigabit Catalyst 2960 testbed.
	Net1G = Network{
		Name:          "1GbE",
		RateBps:       1e9,
		PropDelay:     45 * time.Microsecond,
		SwitchPortBuf: 512 * 1024,
		SockBufData:   4 * 1024 * 1024,
		SockBufToken:  256 * 1024,
		FrameOverhead: 66,
		MTU:           1500,
	}

	// Net10G models the 10-gigabit Arista 7100T testbed: ten times the
	// throughput, but far less than ten times lower latency (the trade-off
	// shift the paper is built around).
	Net10G = Network{
		Name:          "10GbE",
		RateBps:       10e9,
		PropDelay:     20 * time.Microsecond,
		SwitchPortBuf: 1024 * 1024,
		SockBufData:   8 * 1024 * 1024,
		SockBufToken:  256 * 1024,
		FrameOverhead: 66,
		MTU:           1500,
	}
)
