package netsim

import (
	"testing"
	"time"

	"accelring/internal/core"
	"accelring/internal/wire"
)

func quickCfg(protocol core.Protocol, network Network, profile Profile, offered float64) Config {
	return Config{
		Nodes:       8,
		Network:     network,
		Profile:     profile,
		Engine:      core.Config{Protocol: protocol},
		PayloadSize: 1350,
		OfferedMbps: offered,
		Service:     wire.ServiceAgreed,
		Warmup:      100 * time.Millisecond,
		Measure:     200 * time.Millisecond,
	}
}

func TestRunValidatesConfig(t *testing.T) {
	if _, err := Run(Config{OfferedMbps: -1, Network: Net1G, Profile: ProfileLibrary}); err == nil {
		t.Fatal("accepted negative offered load")
	}
}

func TestModestLoadIsStable(t *testing.T) {
	res, err := Run(quickCfg(core.ProtocolAcceleratedRing, Net1G, ProfileLibrary, 300))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stable {
		t.Fatalf("300 Mbps on 1GbE should be stable: %v", res)
	}
	if res.Samples == 0 {
		t.Fatal("no latency samples collected")
	}
	if res.AvgLatency <= 0 || res.AvgLatency > 50*time.Millisecond {
		t.Fatalf("implausible latency: %v", res.AvgLatency)
	}
	if res.TokensHandled == 0 {
		t.Fatal("no tokens processed")
	}
}

func TestOverloadIsDetected(t *testing.T) {
	res, err := Run(quickCfg(core.ProtocolAcceleratedRing, Net1G, ProfileLibrary, 2000))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stable {
		t.Fatalf("2 Gbps offered on a 1 Gbps link cannot be stable: %v", res)
	}
	if res.AchievedMbps > 1000 {
		t.Fatalf("achieved %v Mbps exceeds the line rate", res.AchievedMbps)
	}
}

func TestAcceleratedUsesPostTokenPhase(t *testing.T) {
	res, err := Run(quickCfg(core.ProtocolAcceleratedRing, Net1G, ProfileLibrary, 500))
	if err != nil {
		t.Fatal(err)
	}
	if res.PostTokenMsgs == 0 {
		t.Fatal("accelerated run sent nothing post-token")
	}
	orig, err := Run(quickCfg(core.ProtocolOriginalRing, Net1G, ProfileLibrary, 500))
	if err != nil {
		t.Fatal(err)
	}
	if orig.PostTokenMsgs != 0 {
		t.Fatalf("original protocol sent %d post-token messages", orig.PostTokenMsgs)
	}
}

func TestDeterministic(t *testing.T) {
	a, err := Run(quickCfg(core.ProtocolAcceleratedRing, Net10G, ProfileDaemon, 800))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quickCfg(core.ProtocolAcceleratedRing, Net10G, ProfileDaemon, 800))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("two identical runs disagree:\n%v\n%v", a, b)
	}
}

func TestSafeLatencyExceedsAgreed(t *testing.T) {
	agreed, err := Run(quickCfg(core.ProtocolAcceleratedRing, Net1G, ProfileSpread, 400))
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg(core.ProtocolAcceleratedRing, Net1G, ProfileSpread, 400)
	cfg.Service = wire.ServiceSafe
	safe, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if safe.AvgLatency <= agreed.AvgLatency {
		t.Fatalf("safe latency %v should exceed agreed latency %v", safe.AvgLatency, agreed.AvgLatency)
	}
}

func TestLargePayloadsRaiseMaxThroughput(t *testing.T) {
	small := quickCfg(core.ProtocolAcceleratedRing, Net10G, ProfileSpread, 4000)
	res1350, err := Run(small)
	if err != nil {
		t.Fatal(err)
	}
	large := small
	large.PayloadSize = 8850
	res8850, err := Run(large)
	if err != nil {
		t.Fatal(err)
	}
	if res8850.AchievedMbps <= res1350.AchievedMbps {
		t.Fatalf("8850B payloads achieved %.0f Mbps, 1350B achieved %.0f — larger payloads must amortize processing",
			res8850.AchievedMbps, res1350.AchievedMbps)
	}
}
