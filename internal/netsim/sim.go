package netsim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"accelring/internal/core"
	"accelring/internal/evscheck"
	"accelring/internal/faultplan"
	"accelring/internal/stats"
	"accelring/internal/wire"
)

// Config describes one simulated experiment: a ring of identical nodes on
// one network, driven at a fixed aggregate offered load.
type Config struct {
	// Nodes is the ring size; the paper's evaluation uses 8.
	Nodes int
	// Network selects the modeled testbed network.
	Network Network
	// Profile selects the implementation cost profile.
	Profile Profile
	// Engine is the protocol configuration template (MyID is overwritten
	// per node). Zero value means accelerated-ring defaults.
	Engine core.Config
	// EngineFactory, when non-nil, constructs each node's ordering engine
	// from its per-node config — the hook that runs a different protocol
	// (e.g. ringpaxos.New) through the same simulated network. Nil means
	// the Accelerated Ring engine (core.New).
	EngineFactory func(core.Config) (core.OrderingEngine, error)
	// PayloadSize is the clean application payload per message, in bytes
	// (1350 and 8850 in the paper).
	PayloadSize int
	// OfferedMbps is the aggregate offered load in megabits per second of
	// clean payload, split evenly across the nodes' sending clients.
	OfferedMbps float64
	// Service is the delivery service whose latency is measured.
	Service wire.Service
	// Warmup is virtual time to run before measuring; Measure is the
	// measured window. Zero values mean 200ms and 500ms.
	Warmup, Measure time.Duration
	// Arrivals selects the client injection process; zero means CBR.
	Arrivals Arrivals
	// Seed drives the Poisson arrival process (ignored for CBR).
	Seed int64
	// Faults optionally injects link faults (loss, duplication, delay) and
	// partitions per the plan. Crash/restart events are not supported by
	// the simulator (its nodes have no rejoin path) and are rejected.
	Faults *faultplan.Plan
	// Capture records every delivery and configuration change into an
	// evscheck.Log so the run's total-order guarantees can be verified.
	// Captured runs embed a sender/sequence tag in each payload.
	Capture bool
}

// Arrivals selects the workload's arrival process.
type Arrivals uint8

// Arrival processes.
const (
	// ArrivalCBR injects at a constant bit rate with per-node phase
	// offsets (the paper's benchmark clients).
	ArrivalCBR Arrivals = iota
	// ArrivalPoisson injects with exponentially distributed interarrival
	// times at the same mean rate — a burstier, more open-loop workload.
	ArrivalPoisson
)

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 8
	}
	if c.PayloadSize == 0 {
		c.PayloadSize = 1350
	}
	if c.Service == 0 {
		c.Service = wire.ServiceAgreed
	}
	if c.Warmup == 0 {
		c.Warmup = 200 * time.Millisecond
	}
	if c.Measure == 0 {
		c.Measure = 500 * time.Millisecond
	}
	if c.Engine.MaxPending == 0 {
		// The generator needs room to outrun a saturated ring without
		// Submit failing; saturation is detected from achieved throughput.
		c.Engine.MaxPending = 1 << 20
	}
	return c
}

// Result summarizes one simulated experiment.
type Result struct {
	// OfferedMbps and AchievedMbps are aggregate clean-payload rates; a
	// run is Stable when achieved tracks offered.
	OfferedMbps  float64
	AchievedMbps float64
	Stable       bool
	// Latency statistics over all deliveries, at all nodes, of messages
	// submitted inside the measurement window.
	AvgLatency time.Duration
	P50Latency time.Duration
	P99Latency time.Duration
	Samples    int
	// Loss and protocol counters, summed over nodes.
	SwitchDrops   uint64
	SockDrops     uint64
	TokensHandled uint64
	Retransmits   uint64
	PostTokenMsgs uint64
	// Nodes echoes the ring size. TokenRotation is the mean rotation time
	// over the run (simulated time divided by rounds, where one round is
	// TokensHandled/Nodes token hops per node); MsgsPerRound is the mean
	// number of client messages sequenced per rotation, ring-wide. These
	// are the derived quantities the paper's Sections IV–V reason with.
	Nodes         int
	TokenRotation time.Duration
	MsgsPerRound  float64
	// Observability counters summed over nodes: rounds where the
	// retransmission-caution rule deferred requests, rounds throttled by
	// flow control, and rounds with a post-token (accelerated) flush.
	RTRDeferredRounds   uint64
	FlowThrottledRounds uint64
	AccelFlushes        uint64
	// Submitted counts client submissions during the measurement window;
	// BacklogLeft is the total unsent backlog at the end of the run — a
	// saturated ring leaves a large backlog.
	Submitted   uint64
	BacklogLeft int
	// FaultDrops/FaultDups count injected packet faults (Config.Faults).
	FaultDrops uint64
	FaultDups  uint64
}

// String renders the result as one table row.
func (r Result) String() string {
	return fmt.Sprintf("offered %7.0f Mbps  achieved %7.0f Mbps  avg %8.0f us  p99 %8.0f us  stable=%v",
		r.OfferedMbps, r.AchievedMbps,
		float64(r.AvgLatency)/float64(time.Microsecond),
		float64(r.P99Latency)/float64(time.Microsecond), r.Stable)
}

// event is one entry of the simulator's virtual-time agenda.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Sim is one simulation run.
type Sim struct {
	cfg    Config
	now    time.Duration
	events eventQueue
	evSeq  uint64

	nodes []*simNode
	ports []swPort // switch output port per node (index = node index)

	latency     stats.Sample
	submitted   uint64
	delivered   uint64 // unique messages delivered at the reference node
	switchDrops uint64
	sockDrops   uint64

	fault      *faultplan.Injector
	faultDrops uint64
	faultDups  uint64
	capture    evscheck.Log // nil unless Config.Capture

	measureFrom time.Duration
	measureTo   time.Duration
}

// swPort is a switch output port: a drop-tail queue draining at line rate.
type swPort struct {
	freeAt time.Duration // when the port finishes its current backlog
}

// Errors returned by Run.
var errBadConfig = errors.New("netsim: invalid configuration")

// Run executes one experiment and returns its result.
func Run(cfg Config) (Result, error) {
	res, _, err := RunCapture(cfg)
	return res, err
}

// RunCapture executes one experiment and additionally returns the captured
// delivery log (nil unless cfg.Capture), suitable for evscheck.Check.
func RunCapture(cfg Config) (Result, evscheck.Log, error) {
	cfg = cfg.withDefaults()
	if cfg.Nodes <= 0 || cfg.PayloadSize <= 8 || cfg.OfferedMbps <= 0 {
		return Result{}, nil, fmt.Errorf("%w: nodes %d payload %d offered %.1f",
			errBadConfig, cfg.Nodes, cfg.PayloadSize, cfg.OfferedMbps)
	}
	if cfg.Capture && cfg.PayloadSize < 16 {
		return Result{}, nil, fmt.Errorf("%w: capture needs PayloadSize >= 16", errBadConfig)
	}
	if cfg.Faults != nil {
		for _, ev := range cfg.Faults.Events {
			if ev.Kind == faultplan.EventCrash || ev.Kind == faultplan.EventRestart {
				return Result{}, nil, fmt.Errorf("%w: simulator does not support %v events", errBadConfig, ev.Kind)
			}
		}
	}
	s := &Sim{
		cfg:         cfg,
		nodes:       make([]*simNode, cfg.Nodes),
		ports:       make([]swPort, cfg.Nodes),
		measureFrom: cfg.Warmup,
		measureTo:   cfg.Warmup + cfg.Measure,
	}
	if cfg.Faults != nil {
		s.fault = cfg.Faults.Injector()
	}
	if cfg.Capture {
		s.capture = evscheck.Log{}
	}

	members := make([]wire.ParticipantID, cfg.Nodes)
	for i := range members {
		members[i] = wire.ParticipantID(i + 1)
	}
	newEngine := cfg.EngineFactory
	if newEngine == nil {
		newEngine = func(c core.Config) (core.OrderingEngine, error) { return core.New(c) }
	}
	for i := range s.nodes {
		ecfg := cfg.Engine
		ecfg.MyID = members[i]
		eng, err := newEngine(ecfg)
		if err != nil {
			return Result{}, nil, fmt.Errorf("netsim: %w", err)
		}
		s.nodes[i] = newSimNode(s, eng)
	}
	for _, n := range s.nodes {
		actions, err := n.eng.StartWithRing(members)
		if err != nil {
			return Result{}, nil, fmt.Errorf("netsim: %w", err)
		}
		n.execute(actions)
	}

	s.startGenerators()

	// Run to the end of the measurement window plus a drain period so that
	// in-flight measured messages can complete.
	end := s.measureTo + 100*time.Millisecond
	for s.events.Len() > 0 {
		ev := s.events[0]
		if ev.at > end {
			break
		}
		heap.Pop(&s.events)
		s.now = ev.at
		ev.fn()
	}

	res := Result{
		OfferedMbps: cfg.OfferedMbps,
		AvgLatency:  s.latency.Mean(),
		P50Latency:  s.latency.Percentile(50),
		P99Latency:  s.latency.Percentile(99),
		Samples:     s.latency.Count(),
		SwitchDrops: s.switchDrops,
		SockDrops:   s.sockDrops,
	}
	res.AchievedMbps = float64(s.delivered*uint64(cfg.PayloadSize)*8) /
		(cfg.Measure.Seconds() * 1e6)
	res.Stable = res.AchievedMbps >= 0.97*cfg.OfferedMbps
	res.Submitted = s.submitted
	res.FaultDrops = s.faultDrops
	res.FaultDups = s.faultDups
	for _, n := range s.nodes {
		st := n.eng.Stats()
		res.TokensHandled += st.TokensProcessed
		res.Retransmits += st.MsgsRetransmitted
		res.PostTokenMsgs += st.MsgsPostToken
		res.RTRDeferredRounds += st.RTRDeferredRounds
		res.FlowThrottledRounds += st.FlowThrottledRounds
		res.AccelFlushes += st.AccelFlushes
		res.BacklogLeft += n.eng.PendingLen()
	}
	res.Nodes = cfg.Nodes
	if rounds := float64(res.TokensHandled) / float64(cfg.Nodes); rounds > 0 {
		res.TokenRotation = time.Duration(float64(end) / rounds)
		res.MsgsPerRound = float64(res.Submitted) * float64(res.TokenRotation) /
			float64(cfg.Measure)
	}
	return res, s.capture, nil
}

func (s *Sim) schedule(at time.Duration, fn func()) {
	if at < s.now {
		at = s.now
	}
	s.evSeq++
	heap.Push(&s.events, &event{at: at, seq: s.evSeq, fn: fn})
}

// startGenerators schedules the sending clients: each node's client injects
// equal-size messages at the configured rate — constant-rate with per-node
// phase offsets (the paper's benchmark clients), or Poisson for a burstier
// open-loop workload.
func (s *Sim) startGenerators() {
	perNodeBps := s.cfg.OfferedMbps * 1e6 / float64(s.cfg.Nodes)
	interval := time.Duration(float64(s.cfg.PayloadSize*8) / perNodeBps * float64(time.Second))
	if interval <= 0 {
		interval = time.Nanosecond
	}
	for i, n := range s.nodes {
		if s.cfg.Arrivals == ArrivalPoisson {
			rng := rand.New(rand.NewSource(s.cfg.Seed + int64(i)))
			s.schedulePoisson(n, expDelay(rng, interval), interval, rng)
			continue
		}
		phase := interval * time.Duration(i) / time.Duration(s.cfg.Nodes)
		s.scheduleInjection(n, phase, interval)
	}
}

func (s *Sim) scheduleInjection(n *simNode, at time.Duration, interval time.Duration) {
	if at > s.measureTo {
		return
	}
	s.schedule(at, func() {
		n.injectSubmission(s.now)
		s.scheduleInjection(n, at+interval, interval)
	})
}

func (s *Sim) schedulePoisson(n *simNode, at time.Duration, mean time.Duration, rng *rand.Rand) {
	if at > s.measureTo {
		return
	}
	s.schedule(at, func() {
		n.injectSubmission(s.now)
		s.schedulePoisson(n, at+expDelay(rng, mean), mean, rng)
	})
}

// expDelay draws an exponentially distributed delay with the given mean.
func expDelay(rng *rand.Rand, mean time.Duration) time.Duration {
	d := time.Duration(-math.Log(1-rng.Float64()) * float64(mean))
	if d <= 0 {
		return time.Nanosecond
	}
	return d
}

// fragments returns how many network frames carry body bytes of protocol
// payload on this network's MTU.
func (s *Sim) fragments(body int) int {
	mtuPayload := s.cfg.Network.MTU - 28 // IP+UDP headers per fragment
	frags := (body + mtuPayload - 1) / mtuPayload
	if frags < 1 {
		frags = 1
	}
	return frags
}

// wireBytes returns the on-the-wire size of a packet carrying body bytes of
// protocol payload (headers included), accounting for kernel fragmentation
// of datagrams larger than the MTU.
func (s *Sim) wireBytes(body int) int {
	return body + s.fragments(body)*s.cfg.Network.FrameOverhead
}

// txDuration returns the serialization time of n wire bytes at line rate.
func (s *Sim) txDuration(n int) time.Duration {
	return time.Duration(float64(n) * 8 / s.cfg.Network.RateBps * float64(time.Second))
}

// forward models the switch: the packet leaves the sender's NIC at txEnd,
// then queues at the destination's output port, which drains at line rate
// with a bounded drop-tail buffer. It returns the arrival time at the
// destination and whether the packet was dropped.
func (s *Sim) forward(txEnd time.Duration, dst int, bytes int) (time.Duration, bool) {
	port := &s.ports[dst]
	backlog := port.freeAt - txEnd
	if backlog < 0 {
		backlog = 0
		port.freeAt = txEnd
	}
	backlogBytes := float64(backlog) / float64(time.Second) * s.cfg.Network.RateBps / 8
	if int(backlogBytes)+bytes > s.cfg.Network.SwitchPortBuf {
		s.switchDrops++
		return 0, true
	}
	port.freeAt += s.txDuration(bytes)
	return port.freeAt + s.cfg.Network.PropDelay, false
}
