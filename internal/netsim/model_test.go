package netsim

import (
	"testing"
	"time"

	"accelring/internal/core"
	"accelring/internal/wire"
)

func testSim(network Network) *Sim {
	cfg := Config{Network: network, Profile: ProfileLibrary, OfferedMbps: 100, PayloadSize: 1350}
	return &Sim{cfg: cfg.withDefaults(), ports: make([]swPort, 8)}
}

func TestWireBytesSingleFrame(t *testing.T) {
	s := testSim(Net1G)
	// 1350B payload + small headers fits one frame: body + one overhead.
	if got, want := s.wireBytes(1400), 1400+Net1G.FrameOverhead; got != want {
		t.Fatalf("wireBytes(1400) = %d, want %d", got, want)
	}
}

func TestWireBytesFragmented(t *testing.T) {
	s := testSim(Net10G)
	// A 9000-byte datagram on a 1500 MTU: ceil(9000/1472) = 7 fragments.
	if got, want := s.wireBytes(9000), 9000+7*Net10G.FrameOverhead; got != want {
		t.Fatalf("wireBytes(9000) = %d, want %d", got, want)
	}
}

func TestTxDuration(t *testing.T) {
	s := testSim(Net1G)
	// 1250 bytes at 1 Gbps = 10µs.
	if got := s.txDuration(1250); got != 10*time.Microsecond {
		t.Fatalf("txDuration = %v, want 10µs", got)
	}
	s10 := testSim(Net10G)
	if got := s10.txDuration(1250); got != 1*time.Microsecond {
		t.Fatalf("txDuration@10G = %v, want 1µs", got)
	}
}

func TestForwardSerializesThroughPort(t *testing.T) {
	s := testSim(Net1G)
	// Two back-to-back packets to the same port: the second must queue
	// behind the first.
	a1, drop1 := s.forward(0, 3, 1250)
	if drop1 {
		t.Fatal("first packet dropped")
	}
	a2, drop2 := s.forward(0, 3, 1250)
	if drop2 {
		t.Fatal("second packet dropped")
	}
	if want := 10*time.Microsecond + Net1G.PropDelay; a1 != want {
		t.Fatalf("first arrival %v, want %v", a1, want)
	}
	if want := 20*time.Microsecond + Net1G.PropDelay; a2 != want {
		t.Fatalf("second arrival %v, want %v (queued)", a2, want)
	}
	// A different port is independent.
	a3, _ := s.forward(0, 4, 1250)
	if a3 != a1 {
		t.Fatalf("independent port arrival %v, want %v", a3, a1)
	}
}

func TestForwardDropsOnBufferOverflow(t *testing.T) {
	s := testSim(Net1G)
	// Stuff the port far beyond its buffer within one instant.
	pkt := 1500
	drops := 0
	for i := 0; i < 2*Net1G.SwitchPortBuf/pkt; i++ {
		if _, dropped := s.forward(0, 0, pkt); dropped {
			drops++
		}
	}
	if drops == 0 {
		t.Fatal("switch buffer never overflowed")
	}
	if s.switchDrops != uint64(drops) {
		t.Fatalf("drop counter %d, want %d", s.switchDrops, drops)
	}
	// After the backlog drains, forwarding works again.
	s.now = s.ports[0].freeAt + time.Millisecond
	if _, dropped := s.forward(s.now, 0, pkt); dropped {
		t.Fatal("packet dropped after the backlog drained")
	}
}

func TestPerKB(t *testing.T) {
	if got := perKB(1024*time.Nanosecond, 1350); got != 1350*time.Nanosecond {
		t.Fatalf("perKB = %v, want 1350ns", got)
	}
	if got := perKB(0, 5000); got != 0 {
		t.Fatalf("perKB(0) = %v", got)
	}
}

func TestProfilesAreOrdered(t *testing.T) {
	// The paper's implementation ordering: library cheapest, Spread most
	// expensive (receive+deliver path), with header sizes to match.
	recvDeliver := func(p Profile) time.Duration { return p.DataRecvCost + p.DeliverCost }
	if !(recvDeliver(ProfileLibrary) < recvDeliver(ProfileDaemon) &&
		recvDeliver(ProfileDaemon) < recvDeliver(ProfileSpread)) {
		t.Fatal("profile cost ordering violated")
	}
	if !(ProfileLibrary.HeaderBytes < ProfileDaemon.HeaderBytes &&
		ProfileDaemon.HeaderBytes < ProfileSpread.HeaderBytes) {
		t.Fatal("profile header ordering violated")
	}
	// 1350B payload plus the largest header must still fit one MTU frame
	// (the paper chose 1350 for exactly this).
	if 1350+ProfileSpread.HeaderBytes > Net1G.MTU-28 {
		t.Fatal("spread header pushes a 1350B payload past the MTU")
	}
}

func TestAcceleratedBeatsOriginalAtHighLoad1G(t *testing.T) {
	// The headline qualitative claim of Figures 1-2 in one assertion:
	// at 800 Mbps on 1GbE, the accelerated protocol's latency is well
	// below the original's.
	run := func(proto core.Protocol) Result {
		res, err := Run(Config{
			Network: Net1G, Profile: ProfileSpread,
			Engine:      core.Config{Protocol: proto},
			PayloadSize: 1350, OfferedMbps: 800, Service: wire.ServiceAgreed,
			Warmup: 100 * time.Millisecond, Measure: 200 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	orig := run(core.ProtocolOriginalRing)
	accel := run(core.ProtocolAcceleratedRing)
	if accel.AvgLatency*2 >= orig.AvgLatency {
		t.Fatalf("accelerated %v vs original %v at 800 Mbps: want at least 2x better",
			accel.AvgLatency, orig.AvgLatency)
	}
}

func TestFigure7CrossoverMechanism(t *testing.T) {
	// At very low Safe-delivery load the original protocol must win (the
	// accelerated aru lags seq and costs an extra round), per Figure 7.
	run := func(proto core.Protocol) Result {
		res, err := Run(Config{
			Network: Net10G, Profile: ProfileSpread,
			Engine:      core.Config{Protocol: proto},
			PayloadSize: 1350, OfferedMbps: 100, Service: wire.ServiceSafe,
			Warmup: 100 * time.Millisecond, Measure: 200 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	orig := run(core.ProtocolOriginalRing)
	accel := run(core.ProtocolAcceleratedRing)
	if orig.AvgLatency >= accel.AvgLatency {
		t.Fatalf("at 100 Mbps safe: original %v should beat accelerated %v",
			orig.AvgLatency, accel.AvgLatency)
	}
}

func TestJumboNetworkSingleFragment(t *testing.T) {
	s := testSim(Net10G.Jumbo())
	// An 8850B payload plus the largest protocol header (8972B) fits one
	// 9000B jumbo frame (9000 − 28 IP/UDP = 8972).
	if got := s.fragments(8972); got != 1 {
		t.Fatalf("jumbo fragments(8972) = %d, want 1", got)
	}
	if got, want := s.wireBytes(8972), 8972+Net10G.FrameOverhead; got != want {
		t.Fatalf("jumbo wireBytes(8972) = %d, want %d", got, want)
	}
	// One byte past the jumbo MTU payload splits into two frames.
	if got := s.fragments(8973); got != 2 {
		t.Fatalf("jumbo fragments(8973) = %d, want 2", got)
	}
}

func TestJumboReducesLargePayloadLatency(t *testing.T) {
	run := func(network Network) Result {
		res, err := Run(Config{
			Network: network, Profile: ProfileSpread,
			Engine:      core.Config{Protocol: core.ProtocolAcceleratedRing},
			PayloadSize: 8850, OfferedMbps: 4000, Service: wire.ServiceAgreed,
			Warmup: 60 * time.Millisecond, Measure: 150 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	std := run(Net10G)
	jumbo := run(Net10G.Jumbo())
	if jumbo.AvgLatency >= std.AvgLatency {
		t.Fatalf("jumbo latency %v >= standard %v at 4 Gbps / 8850B", jumbo.AvgLatency, std.AvgLatency)
	}
}

func TestPoissonArrivalsDeliverTheLoad(t *testing.T) {
	res, err := Run(Config{
		Network: Net10G, Profile: ProfileLibrary,
		Engine:      core.Config{Protocol: core.ProtocolAcceleratedRing},
		PayloadSize: 1350, OfferedMbps: 1000, Service: wire.ServiceAgreed,
		Arrivals: ArrivalPoisson, Seed: 7,
		Warmup: 60 * time.Millisecond, Measure: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Poisson injection has ±sqrt(n) noise; demand within 5% of offered.
	if res.AchievedMbps < 950 || res.AchievedMbps > 1050 {
		t.Fatalf("poisson achieved %.0f Mbps, want ≈1000", res.AchievedMbps)
	}
	if res.Samples == 0 {
		t.Fatal("no samples")
	}
}

func TestPoissonLatencyExceedsCBR(t *testing.T) {
	run := func(a Arrivals) Result {
		res, err := Run(Config{
			Network: Net10G, Profile: ProfileSpread,
			Engine:      core.Config{Protocol: core.ProtocolAcceleratedRing},
			PayloadSize: 1350, OfferedMbps: 1500, Service: wire.ServiceAgreed,
			Arrivals: a, Seed: 11,
			Warmup: 60 * time.Millisecond, Measure: 200 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cbr := run(ArrivalCBR)
	poisson := run(ArrivalPoisson)
	// Bursty arrivals queue behind token visits; p99 must reflect it.
	if poisson.P99Latency <= cbr.P99Latency {
		t.Fatalf("poisson p99 %v <= cbr p99 %v", poisson.P99Latency, cbr.P99Latency)
	}
}
