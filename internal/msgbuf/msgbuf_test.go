package msgbuf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"accelring/internal/wire"
)

func msg(seq wire.Seq, svc wire.Service) *wire.DataMessage {
	return &wire.DataMessage{Seq: seq, PID: 1, Service: svc}
}

func TestNewCursors(t *testing.T) {
	b := New(10)
	if b.LocalARU() != 10 || b.Delivered() != 10 || b.Stable() != 10 || b.HighSeq() != 10 {
		t.Fatalf("cursors = aru %d delivered %d stable %d high %d, want all 10",
			b.LocalARU(), b.Delivered(), b.Stable(), b.HighSeq())
	}
}

func TestInsertAdvancesARUContiguously(t *testing.T) {
	b := New(0)
	if !b.Insert(msg(1, wire.ServiceAgreed)) {
		t.Fatal("Insert(1) reported duplicate")
	}
	if b.LocalARU() != 1 {
		t.Fatalf("aru = %d, want 1", b.LocalARU())
	}
	b.Insert(msg(3, wire.ServiceAgreed))
	if b.LocalARU() != 1 {
		t.Fatalf("aru = %d, want 1 (gap at 2)", b.LocalARU())
	}
	b.Insert(msg(2, wire.ServiceAgreed))
	if b.LocalARU() != 3 {
		t.Fatalf("aru = %d, want 3 after filling gap", b.LocalARU())
	}
	if b.HighSeq() != 3 {
		t.Fatalf("high = %d, want 3", b.HighSeq())
	}
}

func TestInsertDuplicate(t *testing.T) {
	b := New(0)
	b.Insert(msg(1, wire.ServiceAgreed))
	if b.Insert(msg(1, wire.ServiceAgreed)) {
		t.Fatal("duplicate insert reported new")
	}
}

func TestInsertBelowStableIgnored(t *testing.T) {
	b := New(5)
	if b.Insert(msg(3, wire.ServiceAgreed)) {
		t.Fatal("insert below stability bound reported new")
	}
	if b.Len() != 0 {
		t.Fatal("stale message was stored")
	}
}

func TestMissing(t *testing.T) {
	b := New(0)
	b.Insert(msg(1, wire.ServiceAgreed))
	b.Insert(msg(3, wire.ServiceAgreed))
	b.Insert(msg(6, wire.ServiceAgreed))
	got := b.Missing(nil, 7, 0)
	want := []wire.Seq{2, 4, 5, 7}
	if len(got) != len(want) {
		t.Fatalf("Missing = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Missing = %v, want %v", got, want)
		}
	}
}

func TestMissingLimit(t *testing.T) {
	b := New(0)
	b.Insert(msg(10, wire.ServiceAgreed))
	got := b.Missing(nil, 10, 3)
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("Missing with limit = %v, want [1 2 3]", got)
	}
}

func TestMissingAppendsToDst(t *testing.T) {
	b := New(0)
	b.Insert(msg(2, wire.ServiceAgreed))
	got := b.Missing([]wire.Seq{99}, 2, 0)
	if len(got) != 2 || got[0] != 99 || got[1] != 1 {
		t.Fatalf("Missing = %v, want [99 1]", got)
	}
}

func TestDeliveryInOrder(t *testing.T) {
	b := New(0)
	b.Insert(msg(2, wire.ServiceAgreed))
	if m := b.NextDeliverable(0); m != nil {
		t.Fatalf("deliverable %d before seq 1 arrives", m.Seq)
	}
	b.Insert(msg(1, wire.ServiceAgreed))
	m := b.NextDeliverable(0)
	if m == nil || m.Seq != 1 {
		t.Fatalf("NextDeliverable = %v, want seq 1", m)
	}
	b.Advance(1)
	m = b.NextDeliverable(0)
	if m == nil || m.Seq != 2 {
		t.Fatalf("NextDeliverable = %v, want seq 2", m)
	}
	b.Advance(2)
	if b.NextDeliverable(0) != nil {
		t.Fatal("deliverable after draining buffer")
	}
}

func TestSafeBlocksUntilStable(t *testing.T) {
	b := New(0)
	b.Insert(msg(1, wire.ServiceSafe))
	b.Insert(msg(2, wire.ServiceAgreed))
	if m := b.NextDeliverable(0); m != nil {
		t.Fatalf("safe message %d delivered before stability", m.Seq)
	}
	// Raising the safe bound unblocks the safe message and the agreed
	// message behind it.
	m := b.NextDeliverable(1)
	if m == nil || m.Seq != 1 {
		t.Fatalf("NextDeliverable = %v, want safe seq 1", m)
	}
	b.Advance(1)
	m = b.NextDeliverable(1)
	if m == nil || m.Seq != 2 {
		t.Fatalf("NextDeliverable = %v, want agreed seq 2 after safe delivered", m)
	}
}

func TestAgreedDeliversAheadOfSafeBound(t *testing.T) {
	b := New(0)
	b.Insert(msg(1, wire.ServiceAgreed))
	b.Insert(msg(2, wire.ServiceAgreed))
	// Agreed messages deliver regardless of the safe bound.
	for want := wire.Seq(1); want <= 2; want++ {
		m := b.NextDeliverable(0)
		if m == nil || m.Seq != want {
			t.Fatalf("NextDeliverable = %v, want %d", m, want)
		}
		b.Advance(want)
	}
}

func TestAdvanceOutOfOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance out of order did not panic")
		}
	}()
	b := New(0)
	b.Insert(msg(1, wire.ServiceAgreed))
	b.Insert(msg(2, wire.ServiceAgreed))
	b.Advance(2)
}

func TestDiscardStable(t *testing.T) {
	b := New(0)
	for s := wire.Seq(1); s <= 5; s++ {
		b.Insert(msg(s, wire.ServiceAgreed))
	}
	for s := wire.Seq(1); s <= 4; s++ {
		b.Advance(s)
	}
	if n := b.DiscardStable(3); n != 3 {
		t.Fatalf("discarded %d, want 3", n)
	}
	if b.Stable() != 3 || b.Len() != 2 {
		t.Fatalf("stable %d len %d, want 3 and 2", b.Stable(), b.Len())
	}
	if b.Has(3) || !b.Has(4) {
		t.Fatal("wrong messages discarded")
	}
}

func TestDiscardClampedToDelivered(t *testing.T) {
	b := New(0)
	b.Insert(msg(1, wire.ServiceAgreed))
	b.Insert(msg(2, wire.ServiceAgreed))
	b.Advance(1)
	if n := b.DiscardStable(2); n != 1 {
		t.Fatalf("discarded %d, want 1 (clamped to delivered)", n)
	}
	if b.Stable() != 1 {
		t.Fatalf("stable = %d, want 1", b.Stable())
	}
	if !b.Has(2) {
		t.Fatal("undelivered message was discarded")
	}
}

func TestDiscardIdempotent(t *testing.T) {
	b := New(0)
	b.Insert(msg(1, wire.ServiceAgreed))
	b.Advance(1)
	b.DiscardStable(1)
	if n := b.DiscardStable(1); n != 0 {
		t.Fatalf("second discard removed %d messages", n)
	}
}

func TestRange(t *testing.T) {
	b := New(0)
	for _, s := range []wire.Seq{1, 2, 4, 6} {
		b.Insert(msg(s, wire.ServiceAgreed))
	}
	var got []wire.Seq
	b.Range(2, 6, func(m *wire.DataMessage) bool {
		got = append(got, m.Seq)
		return true
	})
	want := []wire.Seq{2, 4, 6}
	if len(got) != len(want) {
		t.Fatalf("Range visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range visited %v, want %v", got, want)
		}
	}
}

func TestRangeEarlyStop(t *testing.T) {
	b := New(0)
	for s := wire.Seq(1); s <= 5; s++ {
		b.Insert(msg(s, wire.ServiceAgreed))
	}
	count := 0
	b.Range(1, 5, func(*wire.DataMessage) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("Range visited %d messages after early stop, want 2", count)
	}
}

func TestRangeSkipsStable(t *testing.T) {
	b := New(0)
	for s := wire.Seq(1); s <= 3; s++ {
		b.Insert(msg(s, wire.ServiceAgreed))
		b.Advance(s)
	}
	b.DiscardStable(2)
	var got []wire.Seq
	b.Range(1, 3, func(m *wire.DataMessage) bool {
		got = append(got, m.Seq)
		return true
	})
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("Range = %v, want [3]", got)
	}
}

// TestQuickInvariants inserts a random permutation with random gaps and
// checks the documented buffer invariants after every operation.
func TestQuickInvariants(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%64) + 1
		seqs := make([]wire.Seq, 0, n)
		for s := wire.Seq(1); int(s) <= n; s++ {
			if rng.Intn(4) != 0 { // leave ~25% gaps
				seqs = append(seqs, s)
			}
		}
		rng.Shuffle(len(seqs), func(i, j int) { seqs[i], seqs[j] = seqs[j], seqs[i] })
		b := New(0)
		check := func() bool {
			if b.Stable() > b.Delivered() || b.Delivered() > b.LocalARU() || b.LocalARU() > b.HighSeq() {
				return false
			}
			// Everything in (stable, localARU] must be present.
			for s := b.Stable() + 1; s <= b.LocalARU(); s++ {
				if !b.Has(s) {
					return false
				}
			}
			// localARU+1 must be absent by definition.
			return !b.Has(b.LocalARU() + 1)
		}
		for _, s := range seqs {
			svc := wire.ServiceAgreed
			if rng.Intn(3) == 0 {
				svc = wire.ServiceSafe
			}
			b.Insert(msg(s, svc))
			if !check() {
				return false
			}
			// Deliver whatever is deliverable with a random safe bound.
			bound := wire.Seq(rng.Intn(n + 1))
			for {
				m := b.NextDeliverable(bound)
				if m == nil {
					break
				}
				b.Advance(m.Seq)
			}
			b.DiscardStable(bound)
			if !check() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeliveryIsTotalOrder verifies that regardless of arrival order,
// messages are delivered in strictly increasing contiguous sequence order.
func TestQuickDeliveryIsTotalOrder(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%100) + 1
		order := rng.Perm(n)
		b := New(0)
		var delivered []wire.Seq
		for _, idx := range order {
			b.Insert(msg(wire.Seq(idx+1), wire.ServiceAgreed))
			for {
				m := b.NextDeliverable(0)
				if m == nil {
					break
				}
				delivered = append(delivered, m.Seq)
				b.Advance(m.Seq)
			}
		}
		if len(delivered) != n {
			return false
		}
		for i, s := range delivered {
			if s != wire.Seq(i+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
