// Package msgbuf implements the sequenced message store at the heart of a
// ring protocol participant: received data messages indexed by sequence
// number, the participant's local all-received-up-to (ARU) value, the
// in-order delivery cursor, and garbage collection up to the stability
// bound established by the token.
//
// The buffer is not safe for concurrent use; the protocol engine that owns
// it is single-goroutine by design.
package msgbuf

import (
	"fmt"

	"accelring/internal/wire"
)

// Buffer stores the data messages of one ring configuration.
//
// Invariants maintained between calls:
//
//	stable  ≤ delivered (messages are delivered before being discarded)
//	stable  ≤ localARU  (only contiguously received messages stabilize)
//	localARU ≤ highSeq
//	every seq in (stable, localARU] is present in the store
type Buffer struct {
	msgs map[wire.Seq]*wire.DataMessage

	// stable is the highest sequence number discarded so far: every
	// message with seq ≤ stable was delivered (or predates this member's
	// membership) and has been garbage-collected.
	stable wire.Seq
	// localARU is the highest seq such that this participant has received
	// every message with a sequence number ≤ localARU.
	localARU wire.Seq
	// delivered is the delivery cursor: every message with seq ≤ delivered
	// has been handed to the application, strictly in sequence order.
	delivered wire.Seq
	// highSeq is the highest sequence number received so far.
	highSeq wire.Seq
}

// New creates a buffer for a fresh ring whose sequence numbers start at
// start+1. All cursors (stable, ARU, delivered) begin at start.
func New(start wire.Seq) *Buffer {
	return &Buffer{
		msgs:      make(map[wire.Seq]*wire.DataMessage),
		stable:    start,
		localARU:  start,
		delivered: start,
		highSeq:   start,
	}
}

// Insert stores a received message. It reports whether the message was new
// (not a duplicate and not already stabilized). Messages at or below the
// stability bound are ignored: every participant already has them.
func (b *Buffer) Insert(m *wire.DataMessage) bool {
	if m.Seq <= b.stable {
		return false
	}
	if _, ok := b.msgs[m.Seq]; ok {
		return false
	}
	b.msgs[m.Seq] = m
	if m.Seq > b.highSeq {
		b.highSeq = m.Seq
	}
	// Advance the contiguous-receipt frontier.
	for {
		if _, ok := b.msgs[b.localARU+1]; !ok {
			break
		}
		b.localARU++
	}
	return true
}

// Has reports whether the message with the given sequence number is
// available (still buffered).
func (b *Buffer) Has(seq wire.Seq) bool {
	_, ok := b.msgs[seq]
	return ok
}

// Get returns the buffered message with the given sequence number, or nil.
func (b *Buffer) Get(seq wire.Seq) *wire.DataMessage {
	return b.msgs[seq]
}

// LocalARU returns the participant's local all-received-up-to value.
func (b *Buffer) LocalARU() wire.Seq { return b.localARU }

// Delivered returns the delivery cursor.
func (b *Buffer) Delivered() wire.Seq { return b.delivered }

// Stable returns the garbage-collection bound.
func (b *Buffer) Stable() wire.Seq { return b.stable }

// HighSeq returns the highest sequence number received.
func (b *Buffer) HighSeq() wire.Seq { return b.highSeq }

// Len returns the number of buffered messages.
func (b *Buffer) Len() int { return len(b.msgs) }

// Missing appends to dst the sequence numbers in (localARU, upTo] that have
// not been received, up to limit entries, and returns the extended slice.
// These are the gaps a participant requests for retransmission. Passing a
// limit ≤ 0 means no limit (bounded only by the scan range).
func (b *Buffer) Missing(dst []wire.Seq, upTo wire.Seq, limit int) []wire.Seq {
	for s := b.localARU + 1; s <= upTo; s++ {
		if _, ok := b.msgs[s]; !ok {
			dst = append(dst, s)
			if limit > 0 && len(dst) >= limit {
				break
			}
		}
	}
	return dst
}

// NextDeliverable returns the next message to deliver in total order, or nil
// if none is deliverable yet. A message is deliverable when it is the next
// sequence number after the delivery cursor and either requires only Agreed
// delivery or has stabilized (seq ≤ safeBound). A Safe message that has not
// stabilized blocks everything behind it, preserving total order.
//
// The caller must invoke Advance after actually delivering the returned
// message.
func (b *Buffer) NextDeliverable(safeBound wire.Seq) *wire.DataMessage {
	m, ok := b.msgs[b.delivered+1]
	if !ok {
		return nil
	}
	if m.Service.RequiresSafe() && m.Seq > safeBound {
		return nil
	}
	return m
}

// Advance moves the delivery cursor past seq. It panics if delivery is
// attempted out of order — a protocol engine bug, not a runtime condition.
func (b *Buffer) Advance(seq wire.Seq) {
	if seq != b.delivered+1 {
		panic(fmt.Sprintf("msgbuf: out-of-order delivery: cursor %d, delivering %d", b.delivered, seq))
	}
	b.delivered = seq
}

// DiscardStable garbage-collects every message with seq ≤ upTo and raises
// the stability bound. Messages must have been delivered first; the bound
// is clamped to the delivery cursor to make violating that impossible.
// It returns the number of messages discarded.
func (b *Buffer) DiscardStable(upTo wire.Seq) int {
	if upTo > b.delivered {
		upTo = b.delivered
	}
	if upTo <= b.stable {
		return 0
	}
	n := 0
	for s := b.stable + 1; s <= upTo; s++ {
		if _, ok := b.msgs[s]; ok {
			delete(b.msgs, s)
			n++
		}
	}
	b.stable = upTo
	return n
}

// Range calls fn for every buffered message with seq in [from, to], in
// ascending sequence order, stopping early if fn returns false. Membership
// recovery uses it to enumerate the old ring's surviving messages.
func (b *Buffer) Range(from, to wire.Seq, fn func(*wire.DataMessage) bool) {
	if from <= b.stable {
		from = b.stable + 1
	}
	for s := from; s <= to; s++ {
		if m, ok := b.msgs[s]; ok {
			if !fn(m) {
				return
			}
		}
	}
}
