package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// JSONPoint is one sweep point of a machine-readable benchmark report.
// Latencies and the token rotation time are in microseconds, matching the
// CSV output.
type JSONPoint struct {
	Series       string  `json:"series"`
	OfferedMbps  float64 `json:"offered_mbps"`
	AchievedMbps float64 `json:"achieved_mbps"`
	Stable       bool    `json:"stable"`
	AvgLatencyUs float64 `json:"avg_latency_us"`
	P50LatencyUs float64 `json:"p50_latency_us"`
	P99LatencyUs float64 `json:"p99_latency_us"`
	Samples      int     `json:"samples"`
	// Protocol-level observability: the rotation time and per-round send
	// count the paper's analysis centers on, plus loss accounting.
	Nodes               int     `json:"nodes"`
	TokenRotationUs     float64 `json:"token_rotation_us"`
	MsgsPerRound        float64 `json:"msgs_per_round"`
	TokensHandled       uint64  `json:"tokens_handled"`
	Retransmits         uint64  `json:"retransmits"`
	PostTokenMsgs       uint64  `json:"post_token_msgs"`
	AccelFlushes        uint64  `json:"accel_flushes"`
	RTRDeferredRounds   uint64  `json:"rtr_deferred_rounds"`
	FlowThrottledRounds uint64  `json:"flow_throttled_rounds"`
	SwitchDrops         uint64  `json:"switch_drops"`
	SockDrops           uint64  `json:"sock_drops"`
	// Allocation observability: process-wide buffer-pool recycling counters
	// and the measured heap allocations per submitted message, filled by
	// harnesses that sample runtime.MemStats around the measurement window.
	PoolHits     uint64  `json:"pool_hits,omitempty"`
	PoolMisses   uint64  `json:"pool_misses,omitempty"`
	PoolPuts     uint64  `json:"pool_puts,omitempty"`
	PoolDiscards uint64  `json:"pool_discards,omitempty"`
	AllocsPerMsg float64 `json:"allocs_per_msg,omitempty"`
	// Syscall-batching observability (udpnet's recvmmsg/sendmmsg dataplane),
	// summed across nodes: syscall totals, the derived syscalls-per-datagram
	// ratio (total syscalls over total datagrams moved — the amortization
	// the batched paths exist to improve), the achieved submitted-message
	// rate, and batch-size distribution summaries per direction.
	RecvSyscalls   uint64  `json:"recv_syscalls,omitempty"`
	SendSyscalls   uint64  `json:"send_syscalls,omitempty"`
	SyscallsPerMsg float64 `json:"syscalls_per_msg,omitempty"`
	MsgsPerSec     float64 `json:"msgs_per_sec,omitempty"`
	RecvBatchMean  float64 `json:"recv_batch_mean,omitempty"`
	SendBatchMean  float64 `json:"send_batch_mean,omitempty"`
	RecvBatchMax   uint64  `json:"recv_batch_max,omitempty"`
	SendBatchMax   uint64  `json:"send_batch_max,omitempty"`
}

// JSONReport is the BENCH_<id>.json file format shared by ringbench and
// ringperf: one benchmark identifier plus its sweep points.
type JSONReport struct {
	Benchmark     string      `json:"benchmark"`
	Title         string      `json:"title,omitempty"`
	GeneratedUnix int64       `json:"generated_unix"`
	Points        []JSONPoint `json:"points"`
}

// toJSONPoint converts a sweep point.
func toJSONPoint(p Point) JSONPoint {
	return JSONPoint{
		Series:              p.Series,
		OfferedMbps:         p.OfferedMbps,
		AchievedMbps:        p.AchievedMbps,
		Stable:              p.Stable,
		AvgLatencyUs:        us(p.AvgLatency),
		P50LatencyUs:        us(p.P50Latency),
		P99LatencyUs:        us(p.P99Latency),
		Samples:             p.Samples,
		Nodes:               p.Nodes,
		TokenRotationUs:     us(p.TokenRotation),
		MsgsPerRound:        p.MsgsPerRound,
		TokensHandled:       p.TokensHandled,
		Retransmits:         p.Retransmits,
		PostTokenMsgs:       p.PostTokenMsgs,
		AccelFlushes:        p.AccelFlushes,
		RTRDeferredRounds:   p.RTRDeferredRounds,
		FlowThrottledRounds: p.FlowThrottledRounds,
		SwitchDrops:         p.SwitchDrops,
		SockDrops:           p.SockDrops,
	}
}

// WriteJSONReport writes points as BENCH_<id>.json in dir and returns the
// file path.
func WriteJSONReport(dir, id, title string, points []Point) (string, error) {
	rep := JSONReport{
		Benchmark:     id,
		Title:         title,
		GeneratedUnix: time.Now().Unix(),
		Points:        make([]JSONPoint, 0, len(points)),
	}
	for _, p := range points {
		rep.Points = append(rep.Points, toJSONPoint(p))
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", fmt.Errorf("bench: encoding %s report: %w", id, err)
	}
	path := filepath.Join(dir, fmt.Sprintf("BENCH_%s.json", id))
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("bench: writing %s: %w", path, err)
	}
	return path, nil
}
