// Package bench defines the experiments that regenerate every figure of
// the paper's evaluation section (Figures 1–7), as sweeps of the netsim
// simulator, and renders their results as text tables or CSV.
package bench

import (
	"fmt"
	"io"
	"time"

	"accelring/internal/core"
	"accelring/internal/netsim"
	"accelring/internal/wire"
)

// Scale shrinks or stretches the simulated warmup/measurement windows;
// benchmarks use a small scale for speed, cmd/ringbench the full one.
type Scale struct {
	Warmup  time.Duration
	Measure time.Duration
}

// Scales used by the bench harness.
var (
	// FullScale is used by cmd/ringbench for publication-quality numbers.
	FullScale = Scale{Warmup: 200 * time.Millisecond, Measure: 500 * time.Millisecond}
	// QuickScale is used by `go test -bench` so a full figure regenerates
	// in seconds.
	QuickScale = Scale{Warmup: 60 * time.Millisecond, Measure: 150 * time.Millisecond}
)

// Series is one curve of a figure: an implementation profile and protocol
// variant swept across offered loads.
type Series struct {
	// Label names the curve, e.g. "spread/accelerated".
	Label string
	// Profile and Protocol select the simulated implementation.
	Profile  netsim.Profile
	Protocol core.Protocol
	// PayloadSize is the clean payload per message.
	PayloadSize int
	// Service is the delivery service measured.
	Service wire.Service
	// Network is the modeled testbed.
	Network netsim.Network
	// Offered is the sweep grid, in aggregate payload Mbps.
	Offered []float64
}

// Point is one measured sweep point.
type Point struct {
	Series string
	netsim.Result
}

// Figure groups the series that regenerate one of the paper's figures.
type Figure struct {
	// ID is the benchmark identifier, e.g. "figure1".
	ID string
	// Title is the paper's caption.
	Title string
	// PaperClaim summarizes what the paper's version of the figure shows,
	// for EXPERIMENTS.md comparison.
	PaperClaim string
	Series     []Series
}

// RunSeries sweeps one series, stopping two points after the first
// unstable (saturated) one so that every curve shows its knee without
// wasting time deep in overload.
func RunSeries(s Series, sc Scale) ([]Point, error) {
	points := make([]Point, 0, len(s.Offered))
	unstable := 0
	for _, off := range s.Offered {
		cfg := netsim.Config{
			Network:     s.Network,
			Profile:     s.Profile,
			Engine:      core.Config{Protocol: s.Protocol},
			PayloadSize: s.PayloadSize,
			OfferedMbps: off,
			Service:     s.Service,
			Warmup:      sc.Warmup,
			Measure:     sc.Measure,
		}
		res, err := netsim.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: series %s at %.0f Mbps: %w", s.Label, off, err)
		}
		points = append(points, Point{Series: s.Label, Result: res})
		if !res.Stable {
			unstable++
			if unstable >= 2 {
				break
			}
		}
	}
	return points, nil
}

// RunFigure runs every series of a figure.
func RunFigure(f Figure, sc Scale) ([]Point, error) {
	var out []Point
	for _, s := range f.Series {
		pts, err := RunSeries(s, sc)
		if err != nil {
			return nil, err
		}
		out = append(out, pts...)
	}
	return out, nil
}

// MaxStableMbps returns the highest achieved throughput among the stable
// points of the given series (0 if none).
func MaxStableMbps(points []Point, series string) float64 {
	max := 0.0
	for _, p := range points {
		if p.Series == series && p.Stable && p.AchievedMbps > max {
			max = p.AchievedMbps
		}
	}
	return max
}

// LatencyAt returns the average latency of the stable point of a series
// whose offered load is closest to the target (ok=false if the series has
// no stable points).
func LatencyAt(points []Point, series string, offeredMbps float64) (time.Duration, bool) {
	best := time.Duration(0)
	bestDist := 0.0
	found := false
	for _, p := range points {
		if p.Series != series || !p.Stable {
			continue
		}
		dist := p.OfferedMbps - offeredMbps
		if dist < 0 {
			dist = -dist
		}
		if !found || dist < bestDist {
			best, bestDist, found = p.AvgLatency, dist, true
		}
	}
	return best, found
}

// WriteTable renders points as an aligned text table.
func WriteTable(w io.Writer, title string, points []Point) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-28s %10s %10s %10s %10s %10s %7s\n",
		"series", "offered", "achieved", "avg-lat", "p50-lat", "p99-lat", "stable")
	for _, p := range points {
		fmt.Fprintf(w, "%-28s %7.0f Mb %7.0f Mb %7.0f us %7.0f us %7.0f us %7v\n",
			p.Series, p.OfferedMbps, p.AchievedMbps,
			us(p.AvgLatency), us(p.P50Latency), us(p.P99Latency), p.Stable)
	}
}

// WriteCSV renders points as CSV with a header row.
func WriteCSV(w io.Writer, points []Point) {
	fmt.Fprintln(w, "series,offered_mbps,achieved_mbps,avg_latency_us,p50_latency_us,p99_latency_us,stable,switch_drops,sock_drops,retransmits")
	for _, p := range points {
		fmt.Fprintf(w, "%s,%.0f,%.1f,%.1f,%.1f,%.1f,%v,%d,%d,%d\n",
			p.Series, p.OfferedMbps, p.AchievedMbps,
			us(p.AvgLatency), us(p.P50Latency), us(p.P99Latency),
			p.Stable, p.SwitchDrops, p.SockDrops, p.Retransmits)
	}
}

func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
