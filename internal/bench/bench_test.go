package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"accelring/internal/core"
	"accelring/internal/netsim"
	"accelring/internal/wire"
)

// tinyScale keeps unit tests fast; the statistics are noisy but the
// plumbing is fully exercised.
var tinyScale = Scale{Warmup: 20 * time.Millisecond, Measure: 50 * time.Millisecond}

func tinySeries() Series {
	return Series{
		Label:       "library/accelerated",
		Profile:     netsim.ProfileLibrary,
		Protocol:    core.ProtocolAcceleratedRing,
		PayloadSize: 1350,
		Service:     wire.ServiceAgreed,
		Network:     netsim.Net1G,
		Offered:     []float64{100, 300},
	}
}

func TestRunSeries(t *testing.T) {
	pts, err := RunSeries(tinySeries(), tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	for _, p := range pts {
		if p.Series != "library/accelerated" {
			t.Fatalf("series label %q", p.Series)
		}
		if p.Samples == 0 {
			t.Fatal("point has no latency samples")
		}
	}
}

func TestRunSeriesStopsAfterSaturation(t *testing.T) {
	s := tinySeries()
	// Grossly oversubscribed from the start: the sweep must cut off after
	// two unstable points instead of running the whole grid.
	s.Offered = []float64{3000, 4000, 5000, 6000, 7000}
	pts, err := RunSeries(s, tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) > 3 {
		t.Fatalf("sweep ran %d points past saturation", len(pts))
	}
}

func TestFiguresDefinitions(t *testing.T) {
	figs := Figures()
	if len(figs) != 7 {
		t.Fatalf("got %d figures, want 7 (the paper has 7)", len(figs))
	}
	seen := map[string]bool{}
	for _, f := range figs {
		if f.ID == "" || f.Title == "" || f.PaperClaim == "" {
			t.Fatalf("figure %q missing metadata", f.ID)
		}
		if seen[f.ID] {
			t.Fatalf("duplicate figure id %q", f.ID)
		}
		seen[f.ID] = true
		if len(f.Series) == 0 {
			t.Fatalf("figure %q has no series", f.ID)
		}
		for _, s := range f.Series {
			if len(s.Offered) == 0 {
				t.Fatalf("figure %q series %q has an empty grid", f.ID, s.Label)
			}
		}
	}
	for _, id := range []string{"figure1", "figure7"} {
		if _, ok := FigureByID(id); !ok {
			t.Fatalf("FigureByID(%q) not found", id)
		}
	}
	if _, ok := FigureByID("figure99"); ok {
		t.Fatal("FigureByID accepted an unknown id")
	}
}

func TestProtocolFiguresHaveBothVariants(t *testing.T) {
	f, _ := FigureByID("figure1")
	var orig, accel int
	for _, s := range f.Series {
		if s.Protocol == core.ProtocolOriginalRing {
			orig++
		} else {
			accel++
		}
	}
	if orig != 3 || accel != 3 {
		t.Fatalf("figure1 has %d original and %d accelerated series, want 3+3", orig, accel)
	}
}

func TestPayloadFiguresCompareSizes(t *testing.T) {
	f, _ := FigureByID("figure4")
	sizes := map[int]int{}
	for _, s := range f.Series {
		sizes[s.PayloadSize]++
		if s.Protocol != core.ProtocolAcceleratedRing {
			t.Fatal("payload comparison figures use the accelerated protocol only")
		}
	}
	if sizes[1350] != 3 || sizes[8850] != 3 {
		t.Fatalf("payload series counts = %v", sizes)
	}
}

func TestMaxStableAndLatencyAt(t *testing.T) {
	pts := []Point{
		{Series: "a", Result: netsim.Result{OfferedMbps: 100, AchievedMbps: 100, AvgLatency: 100 * time.Microsecond, Stable: true}},
		{Series: "a", Result: netsim.Result{OfferedMbps: 200, AchievedMbps: 199, AvgLatency: 150 * time.Microsecond, Stable: true}},
		{Series: "a", Result: netsim.Result{OfferedMbps: 400, AchievedMbps: 250, AvgLatency: 9 * time.Millisecond, Stable: false}},
		{Series: "b", Result: netsim.Result{OfferedMbps: 300, AchievedMbps: 300, Stable: true}},
	}
	if got := MaxStableMbps(pts, "a"); got != 199 {
		t.Fatalf("MaxStableMbps = %v, want 199", got)
	}
	if got := MaxStableMbps(pts, "missing"); got != 0 {
		t.Fatalf("MaxStableMbps(missing) = %v", got)
	}
	lat, ok := LatencyAt(pts, "a", 210)
	if !ok || lat != 150*time.Microsecond {
		t.Fatalf("LatencyAt = %v/%v, want 150µs", lat, ok)
	}
	if _, ok := LatencyAt(pts, "missing", 100); ok {
		t.Fatal("LatencyAt found a missing series")
	}
}

func TestWriteTableAndCSV(t *testing.T) {
	pts := []Point{{Series: "x/y", Result: netsim.Result{
		OfferedMbps: 100, AchievedMbps: 99.5, AvgLatency: 123 * time.Microsecond, Stable: true,
	}}}
	var tbl bytes.Buffer
	WriteTable(&tbl, "T", pts)
	if !strings.Contains(tbl.String(), "x/y") || !strings.Contains(tbl.String(), "123") {
		t.Fatalf("table output missing fields:\n%s", tbl.String())
	}
	var csv bytes.Buffer
	WriteCSV(&csv, pts)
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv has %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[1], "x/y,100,99.5,123.0") {
		t.Fatalf("csv row = %q", lines[1])
	}
}

func TestAblationDefinitions(t *testing.T) {
	abls := Ablations()
	if len(abls) != 5 {
		t.Fatalf("got %d ablations", len(abls))
	}
	for _, a := range abls {
		if a.ID == "" || a.Title == "" || a.Question == "" || a.Run == nil {
			t.Fatalf("ablation %+v missing metadata", a.ID)
		}
	}
	if _, ok := AblationByID("accel-window"); !ok {
		t.Fatal("accel-window ablation missing")
	}
	if _, ok := AblationByID("nope"); ok {
		t.Fatal("AblationByID accepted unknown id")
	}
}

func TestAccelWindowAblationRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	a, _ := AblationByID("accel-window")
	pts, err := a.Run(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 8 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[0].Series != "window=0" {
		t.Fatalf("first series %q", pts[0].Series)
	}
	// Window 0 (the original protocol's sending pattern) must not beat a
	// healthy accelerated window on latency at this load.
	if pts[0].AvgLatency < pts[5].AvgLatency {
		t.Logf("note: window=0 latency %v < window=20 latency %v (noisy tiny scale)",
			pts[0].AvgLatency, pts[5].AvgLatency)
	}
}
