package bench

import (
	"accelring/internal/core"
	"accelring/internal/netsim"
	"accelring/internal/wire"
)

// Sweep grids (aggregate clean-payload Mbps).
var (
	grid1G       = []float64{100, 200, 300, 400, 500, 600, 700, 800, 850, 900, 950}
	grid10G      = []float64{100, 250, 500, 750, 1000, 1250, 1500, 1750, 2000, 2500, 3000, 3500, 4000, 4500, 5000, 5500}
	grid10GLarge = []float64{500, 1000, 1500, 2000, 2500, 3000, 3500, 4000, 4500, 5000, 5500, 6000, 6500, 7000, 7500, 8000}
	grid10GLow   = []float64{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000}
)

var allProfiles = []netsim.Profile{netsim.ProfileLibrary, netsim.ProfileDaemon, netsim.ProfileSpread}

var protoNames = map[core.Protocol]string{
	core.ProtocolOriginalRing:    "original",
	core.ProtocolAcceleratedRing: "accelerated",
}

// protocolSeries builds one series per implementation × protocol.
func protocolSeries(network netsim.Network, payload int, svc wire.Service, grid []float64) []Series {
	var out []Series
	for _, prof := range allProfiles {
		for _, proto := range []core.Protocol{core.ProtocolOriginalRing, core.ProtocolAcceleratedRing} {
			out = append(out, Series{
				Label:       prof.Name + "/" + protoNames[proto],
				Profile:     prof,
				Protocol:    proto,
				PayloadSize: payload,
				Service:     svc,
				Network:     network,
				Offered:     grid,
			})
		}
	}
	return out
}

// payloadSeries builds accelerated-protocol series per implementation ×
// payload size (the large-datagram comparison of Figures 4 and 6).
func payloadSeries(network netsim.Network, svc wire.Service) []Series {
	var out []Series
	for _, prof := range allProfiles {
		for _, payload := range []int{1350, 8850} {
			grid := grid10G
			if payload == 8850 {
				grid = grid10GLarge
			}
			out = append(out, Series{
				Label:       fmt8(prof.Name, payload),
				Profile:     prof,
				Protocol:    core.ProtocolAcceleratedRing,
				PayloadSize: payload,
				Service:     svc,
				Network:     network,
				Offered:     grid,
			})
		}
	}
	return out
}

func fmt8(name string, payload int) string {
	if payload == 8850 {
		return name + "/8850B"
	}
	return name + "/1350B"
}

// Figures returns the definitions of all seven figures of the paper's
// evaluation, in order.
func Figures() []Figure {
	return []Figure{
		{
			ID:    "figure1",
			Title: "Fig. 1: Agreed delivery latency vs. throughput, 1-gigabit network",
			PaperClaim: "Original Ring knees near 500-600 Mbps with >1 ms latency; " +
				"Accelerated reaches 800+ Mbps at ~720 us and >920 Mbps max " +
				"(simultaneous ~60% throughput and ~45% latency improvement). " +
				"Spread/original shows distinctly higher latency than the prototypes; " +
				"the gap disappears under acceleration.",
			Series: protocolSeries(netsim.Net1G, 1350, wire.ServiceAgreed, grid1G),
		},
		{
			ID:    "figure2",
			Title: "Fig. 2: Safe delivery latency vs. throughput, 1-gigabit network",
			PaperClaim: "Original supports up to ~600 Mbps at 3.7-4.7 ms; Accelerated " +
				"supports 800 Mbps at ~2 ms (>30% throughput and >45% latency " +
				"improvement) and exceeds 900 Mbps in all implementations.",
			Series: protocolSeries(netsim.Net1G, 1350, wire.ServiceSafe, grid1G),
		},
		{
			ID:    "figure3",
			Title: "Fig. 3: Agreed delivery latency vs. throughput, 10-gigabit network",
			PaperClaim: "Implementation overhead dominates: library > daemon > Spread in " +
				"max throughput (4.6 / 3.2-3.3 / 2.1-2.3 Gbps). Spread: original ~1 Gbps " +
				"at 385 us vs accelerated 1.2 Gbps at ~310 us (+20%/-20%). Daemon: " +
				"original 2 Gbps at ~390 us vs accelerated 2.8 Gbps at ~265 us (+40%/-30%).",
			Series: protocolSeries(netsim.Net10G, 1350, wire.ServiceAgreed, grid10G),
		},
		{
			ID:    "figure4",
			Title: "Fig. 4: Throughput vs agreed latency, 1350 vs 8850 byte messages, 10-gigabit network",
			PaperClaim: "8850-byte payloads amortize processing: Spread 2.1 -> 5.3 Gbps " +
				"(+150%), daemon 3.2 -> 6 Gbps (+87%), library 4.6 -> 7.3 Gbps (+58%); " +
				"the biggest relative gain goes to the most processing-heavy implementation.",
			Series: payloadSeries(netsim.Net10G, wire.ServiceAgreed),
		},
		{
			ID:    "figure5",
			Title: "Fig. 5: Safe delivery latency vs. throughput, 10-gigabit network",
			PaperClaim: "Same ordering as Agreed with higher latencies and slightly higher " +
				"max throughputs (delivery off the critical path). Spread: 1.1 Gbps at 930 us " +
				"(original) vs 25% lower latency accelerated; daemon: 2.5 Gbps/1.5 ms original " +
				"vs 3.1 Gbps/980 us accelerated (+25%/-35%).",
			Series: protocolSeries(netsim.Net10G, 1350, wire.ServiceSafe, grid10G),
		},
		{
			ID:         "figure6",
			Title:      "Fig. 6: Throughput vs safe latency, 1350 vs 8850 byte messages, 10-gigabit network",
			PaperClaim: "Improvements from large payloads mirror Figure 4 for Safe delivery.",
			Series:     payloadSeries(netsim.Net10G, wire.ServiceSafe),
		},
		{
			ID:    "figure7",
			Title: "Fig. 7: Safe delivery latency for low throughputs, 10-gigabit network",
			PaperClaim: "At very low load the original protocol beats the accelerated one " +
				"for Safe delivery (raising the aru costs the accelerated protocol up to an " +
				"extra round): at 100 Mbps Spread original ~520 us vs accelerated ~620 us " +
				"(~20% worse); the curves cross by 400-500 Mbps (4-5% of capacity) and the " +
				"accelerated protocol wins beyond.",
			Series: protocolSeries(netsim.Net10G, 1350, wire.ServiceSafe, grid10GLow),
		},
	}
}

// FigureByID returns the figure with the given ID.
func FigureByID(id string) (Figure, bool) {
	for _, f := range Figures() {
		if f.ID == id {
			return f, true
		}
	}
	return Figure{}, false
}
