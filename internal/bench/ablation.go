package bench

import (
	"fmt"
	"time"

	"accelring/internal/core"
	"accelring/internal/flowctl"
	"accelring/internal/netsim"
	"accelring/internal/wire"
)

// Ablation is a named experiment probing one of the protocol's design
// choices outside the paper's headline figures.
type Ablation struct {
	// ID is the experiment identifier, e.g. "accel-window".
	ID string
	// Title describes the experiment.
	Title string
	// Question is the design question the ablation answers.
	Question string
	// Run executes the experiment at the given scale.
	Run func(sc Scale) ([]Point, error)
}

// Ablations returns the ablation experiments.
func Ablations() []Ablation {
	return []Ablation{
		{
			ID:    "accel-window",
			Title: "Accelerated window sweep, daemon profile, 10GbE, 2.5 Gbps agreed",
			Question: "How much post-token sending is enough? Window 0 is the original " +
				"protocol; the paper tunes the window per deployment and warns that " +
				"too much overlap can exhaust buffers.",
			Run: runAccelWindowSweep,
		},
		{
			ID:    "priority-method",
			Title: "Priority switching methods, spread profile, 10GbE, safe delivery",
			Question: "The aggressive method (prototypes) processes the token at the " +
				"earliest safe moment; the conservative method (Spread) waits for a " +
				"post-token message. What does each cost across load levels?",
			Run: runPriorityComparison,
		},
		{
			ID:    "jumbo-frames",
			Title: "Jumbo frames (9000B MTU) vs standard 1500B MTU, 8850B payloads, 10GbE",
			Question: "The paper avoids requiring jumbo frames but notes they 'may " +
				"improve performance further': with large datagrams, how much does " +
				"eliminating kernel fragmentation (7 frames -> 1 per datagram) buy?",
			Run: runJumboComparison,
		},
		{
			ID:    "arrivals",
			Title: "CBR vs Poisson arrivals, spread profile, 10GbE, agreed delivery",
			Question: "The paper's clients inject at fixed rates; how does the " +
				"latency profile change under bursty (Poisson) arrivals at the " +
				"same mean load?",
			Run: runArrivalComparison,
		},
		{
			ID:    "ring-size",
			Title: "Ring size scaling, library profile, 10GbE, 2 Gbps agreed",
			Question: "Token rings serialize sending permission: how do latency and " +
				"the accelerated protocol's advantage scale with participant count?",
			Run: runRingSizeSweep,
		},
	}
}

// AblationByID returns the ablation with the given ID.
func AblationByID(id string) (Ablation, bool) {
	for _, a := range Ablations() {
		if a.ID == id {
			return a, true
		}
	}
	return Ablation{}, false
}

func runAccelWindowSweep(sc Scale) ([]Point, error) {
	var out []Point
	for _, window := range []int{0, 1, 2, 5, 10, 20, 40, 60} {
		flow := flowctl.Default()
		flow.AcceleratedWindow = window
		cfg := netsim.Config{
			Network:     netsim.Net10G,
			Profile:     netsim.ProfileDaemon,
			Engine:      core.Config{Protocol: core.ProtocolAcceleratedRing, Flow: flow},
			PayloadSize: 1350,
			OfferedMbps: 2500,
			Service:     wire.ServiceAgreed,
			Warmup:      sc.Warmup,
			Measure:     sc.Measure,
		}
		res, err := netsim.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: accel window %d: %w", window, err)
		}
		out = append(out, Point{Series: fmt.Sprintf("window=%d", window), Result: res})
	}
	return out, nil
}

func runPriorityComparison(sc Scale) ([]Point, error) {
	var out []Point
	for _, method := range []core.PriorityMethod{core.PriorityAggressive, core.PriorityConservative} {
		for _, offered := range []float64{500, 1000, 1500, 2000} {
			cfg := netsim.Config{
				Network: netsim.Net10G,
				Profile: netsim.ProfileSpread,
				Engine: core.Config{
					Protocol: core.ProtocolAcceleratedRing,
					Priority: method,
				},
				PayloadSize: 1350,
				OfferedMbps: offered,
				Service:     wire.ServiceSafe,
				Warmup:      sc.Warmup,
				Measure:     sc.Measure,
			}
			res, err := netsim.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("bench: priority %s at %.0f: %w", method, offered, err)
			}
			out = append(out, Point{Series: method.String(), Result: res})
		}
	}
	return out, nil
}

func runRingSizeSweep(sc Scale) ([]Point, error) {
	var out []Point
	for _, nodes := range []int{2, 4, 8, 16, 24} {
		for _, proto := range []core.Protocol{core.ProtocolOriginalRing, core.ProtocolAcceleratedRing} {
			cfg := netsim.Config{
				Nodes:       nodes,
				Network:     netsim.Net10G,
				Profile:     netsim.ProfileLibrary,
				Engine:      core.Config{Protocol: proto},
				PayloadSize: 1350,
				OfferedMbps: 2000,
				Service:     wire.ServiceAgreed,
				Warmup:      sc.Warmup,
				Measure:     sc.Measure,
			}
			res, err := netsim.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("bench: ring size %d: %w", nodes, err)
			}
			out = append(out, Point{
				Series: fmt.Sprintf("n=%d/%s", nodes, protoNames[proto]),
				Result: res,
			})
		}
	}
	return out, nil
}

func runJumboComparison(sc Scale) ([]Point, error) {
	var out []Point
	for _, prof := range allProfiles {
		for _, jumbo := range []bool{false, true} {
			network := netsim.Net10G
			if jumbo {
				network = network.Jumbo()
			}
			for _, offered := range []float64{4000, 5000, 6000, 7000, 8000} {
				cfg := netsim.Config{
					Network:     network,
					Profile:     prof,
					Engine:      core.Config{Protocol: core.ProtocolAcceleratedRing},
					PayloadSize: 8850,
					OfferedMbps: offered,
					Service:     wire.ServiceAgreed,
					Warmup:      sc.Warmup,
					Measure:     sc.Measure,
				}
				res, err := netsim.Run(cfg)
				if err != nil {
					return nil, fmt.Errorf("bench: jumbo %v at %.0f: %w", jumbo, offered, err)
				}
				out = append(out, Point{Series: prof.Name + "/" + network.Name, Result: res})
				if !res.Stable {
					break
				}
			}
		}
	}
	return out, nil
}

func runArrivalComparison(sc Scale) ([]Point, error) {
	var out []Point
	for _, arrivals := range []netsim.Arrivals{netsim.ArrivalCBR, netsim.ArrivalPoisson} {
		name := "cbr"
		if arrivals == netsim.ArrivalPoisson {
			name = "poisson"
		}
		for _, offered := range []float64{500, 1000, 1500, 2000} {
			cfg := netsim.Config{
				Network:     netsim.Net10G,
				Profile:     netsim.ProfileSpread,
				Engine:      core.Config{Protocol: core.ProtocolAcceleratedRing},
				PayloadSize: 1350,
				OfferedMbps: offered,
				Service:     wire.ServiceAgreed,
				Arrivals:    arrivals,
				Seed:        42,
				Warmup:      sc.Warmup,
				Measure:     sc.Measure,
			}
			res, err := netsim.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("bench: arrivals %s at %.0f: %w", name, offered, err)
			}
			out = append(out, Point{Series: name, Result: res})
		}
	}
	return out, nil
}

// AblationScale is the default scale for ablations (they have many cells).
var AblationScale = Scale{Warmup: 100 * time.Millisecond, Measure: 250 * time.Millisecond}
