// Package client is the library applications use to talk to a ringd
// daemon over its IPC socket: connect under a name, join and leave named
// groups, multicast to any set of groups (open-group semantics), and
// receive totally ordered messages and group membership views.
package client

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"

	"accelring/internal/ipc"
	"accelring/internal/wire"
)

// Event is something the daemon delivers to a client: a Message or a View.
type Event interface {
	isEvent()
}

// Message is a totally ordered group message.
type Message struct {
	// Sender is the private name of the sending client.
	Sender string
	// Groups are the destination groups.
	Groups []string
	// Service is the delivery guarantee the message was sent with.
	Service wire.Service
	// Payload is the application data.
	Payload []byte
}

// View is a group membership view, delivered to members whenever the
// group's membership changes, in the same total order at every member.
type View struct {
	// Group is the group name.
	Group string
	// Members are the private names of the current members, sorted.
	Members []string
}

func (Message) isEvent() {}
func (View) isEvent()    {}

// Conn is a client connection to a daemon.
type Conn struct {
	conn    net.Conn
	private string

	events chan Event
	// statsCh carries EvtStats bodies to a waiting Stats call; done is
	// closed when the read loop exits. statsMu serializes Stats callers.
	statsCh chan []byte
	done    chan struct{}
	statsMu sync.Mutex

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// ErrClosed is returned by operations on a closed connection.
var ErrClosed = errors.New("client: connection closed")

// eventQueue is the receive buffer; the daemon disconnects clients that
// fall too far behind, so the client should drain Events promptly.
const eventQueue = 8192

// Connect dials a daemon and registers under the given name. network/addr
// are as in net.Dial ("unix", "/tmp/ringd.sock" for co-located clients).
func Connect(network, addr, name string) (*Conn, error) {
	if name == "" {
		return nil, errors.New("client: empty name")
	}
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	return New(conn, name)
}

// New registers under the given name over an already established
// connection (an in-memory pipe, a pre-dialed socket) and takes ownership
// of it. On error the connection is closed.
func New(conn net.Conn, name string) (*Conn, error) {
	if name == "" {
		conn.Close()
		return nil, errors.New("client: empty name")
	}
	if err := ipc.WriteFrame(conn, ipc.CmdConnect, ipc.PutString(nil, name)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("client: connect frame: %w", err)
	}
	typ, body, err := ipc.ReadFrame(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("client: reading welcome: %w", err)
	}
	if typ != ipc.EvtWelcome {
		conn.Close()
		return nil, fmt.Errorf("client: unexpected frame %d before welcome", typ)
	}
	private, _, err := ipc.GetString(body)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("client: bad welcome: %w", err)
	}
	c := &Conn{
		conn:    conn,
		private: private,
		events:  make(chan Event, eventQueue),
		statsCh: make(chan []byte, 1),
		done:    make(chan struct{}),
	}
	c.wg.Add(1)
	go c.readLoop()
	return c, nil
}

// PrivateName returns the globally unique name the daemon assigned, e.g.
// "alice@0.0.0.1".
func (c *Conn) PrivateName() string { return c.private }

// Events returns the stream of ordered messages and views. It is closed
// when the connection drops.
func (c *Conn) Events() <-chan Event { return c.events }

// Join subscribes this client to a group. The resulting view arrives on
// Events, totally ordered with all other group operations and messages.
func (c *Conn) Join(group string) error {
	return c.sendFrame(ipc.CmdJoin, ipc.PutString(nil, group))
}

// Leave unsubscribes this client from a group.
func (c *Conn) Leave(group string) error {
	return c.sendFrame(ipc.CmdLeave, ipc.PutString(nil, group))
}

// Subscribe registers local delivery interest in a group's ordered
// message stream without joining the group: this client receives every
// message addressed to the group, in the same total order as the
// members, but never appears in its membership views and adds no ring
// traffic. Subscriptions are daemon-local, so at serving scale a large
// read-only audience costs the ring nothing — use Join only when the
// other members must know you are there.
func (c *Conn) Subscribe(group string) error {
	return c.sendFrame(ipc.CmdSubscribe, ipc.PutString(nil, group))
}

// Unsubscribe withdraws a Subscribe. A concurrent membership of the same
// group (via Join) keeps delivering.
func (c *Conn) Unsubscribe(group string) error {
	return c.sendFrame(ipc.CmdUnsubscribe, ipc.PutString(nil, group))
}

// MulticastOptions modify a multicast.
type MulticastOptions struct {
	// SelfDiscard asks the daemon not to deliver the message back to this
	// client even if it is a member of a destination group (Spread's
	// SELF_DISCARD).
	SelfDiscard bool
}

// Multicast sends a message to every member of every listed group, with
// the requested delivery service. The sender need not be a member of any
// of the groups (open-group semantics).
func (c *Conn) Multicast(service wire.Service, payload []byte, groups ...string) error {
	return c.MulticastWith(MulticastOptions{}, service, payload, groups...)
}

// MulticastWith is Multicast with options.
func (c *Conn) MulticastWith(opts MulticastOptions, service wire.Service, payload []byte, groups ...string) error {
	if len(groups) == 0 {
		return errors.New("client: no destination groups")
	}
	if !service.Valid() {
		return fmt.Errorf("client: invalid service %d", uint8(service))
	}
	var flags byte
	if opts.SelfDiscard {
		flags |= 1 // keep in sync with the daemon's flagSelfDiscard
	}
	body := make([]byte, 0, 10+len(payload))
	body = append(body, byte(service), flags)
	body = ipc.PutStrings(body, groups)
	body = append(body, payload...)
	return c.sendFrame(ipc.CmdMulticast, body)
}

// Stats requests the daemon's observability snapshot: per-client submit
// and delivery counters, group/session totals, and the ring node's full
// metrics (StatsSnapshot.Node, as raw JSON decodable into
// accelring.MetricsSnapshot). Concurrent callers are serialized.
func (c *Conn) Stats() (ipc.StatsSnapshot, error) {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	select {
	case <-c.statsCh: // discard a stale response from an abandoned call
	default:
	}
	if err := c.sendFrame(ipc.CmdStats, nil); err != nil {
		return ipc.StatsSnapshot{}, err
	}
	select {
	case body := <-c.statsCh:
		var snap ipc.StatsSnapshot
		if err := json.Unmarshal(body, &snap); err != nil {
			return ipc.StatsSnapshot{}, fmt.Errorf("client: bad stats frame: %w", err)
		}
		return snap, nil
	case <-c.done:
		return ipc.StatsSnapshot{}, ErrClosed
	}
}

// Close terminates the connection.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	c.wg.Wait()
	return err
}

func (c *Conn) sendFrame(typ byte, body []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if err := ipc.WriteFrame(c.conn, typ, body); err != nil {
		return fmt.Errorf("client: %w", err)
	}
	return nil
}

func (c *Conn) readLoop() {
	defer c.wg.Done()
	defer close(c.events)
	defer close(c.done)
	for {
		typ, body, err := ipc.ReadFrame(c.conn)
		if err != nil {
			return
		}
		switch typ {
		case ipc.EvtMessage:
			m, err := decodeMessage(body)
			if err != nil {
				return
			}
			c.events <- m
		case ipc.EvtView:
			v, err := decodeView(body)
			if err != nil {
				return
			}
			c.events <- v
		case ipc.EvtStats:
			select {
			case c.statsCh <- body:
			default: // no Stats call waiting; drop the response
			}
		}
	}
}

func decodeMessage(body []byte) (Message, error) {
	var m Message
	if len(body) < 1 {
		return m, ipc.ErrBadFrame
	}
	m.Service = wire.Service(body[0])
	body = body[1:]
	var err error
	m.Sender, body, err = ipc.GetString(body)
	if err != nil {
		return m, err
	}
	m.Groups, body, err = ipc.GetStrings(body)
	if err != nil {
		return m, err
	}
	m.Payload = body
	return m, nil
}

func decodeView(body []byte) (View, error) {
	var v View
	var err error
	v.Group, body, err = ipc.GetString(body)
	if err != nil {
		return v, err
	}
	v.Members, _, err = ipc.GetStrings(body)
	if err != nil {
		return v, err
	}
	return v, nil
}
