// Package client is the library applications use to talk to a ringd
// daemon over its IPC socket: connect under a name, join and leave named
// groups, multicast to any set of groups (open-group semantics), and
// receive totally ordered messages and group membership views.
//
// Connections come in two flavors. Connect/New give the classic
// fail-stop connection: when it drops, the Events channel closes and the
// Conn is dead. Dial/DialContext with Options.Reconnect give a managed
// connection that survives daemon restarts: it redials with capped
// exponential backoff, resumes its session (CmdResume) so the daemon
// replays the delivery stream from the client's last acknowledged stamp,
// replays joins and subscriptions from tracked interest state when the
// session could not be resumed, and reports the transitions as typed
// Disconnected/Reconnected/Gap/Draining events on the same Events
// channel.
package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"accelring/internal/ipc"
	"accelring/internal/wire"
)

// Event is something delivered on the Events channel: an ordered Message
// or View from the daemon, or — on managed connections — a connection
// lifecycle event (Disconnected, Reconnected, Gap, Draining).
type Event interface {
	isEvent()
}

// Message is a totally ordered group message.
type Message struct {
	// Sender is the private name of the sending client.
	Sender string
	// Groups are the destination groups; Seqs are the corresponding
	// per-group sequence numbers (Seqs[i] numbers this message in
	// Groups[i]'s stream). Identical at every daemon, they are what gap
	// detection is verified against.
	Groups []string
	Seqs   []uint64
	// Stamp is the daemon's global delivery stamp — strictly increasing
	// across every message this connection receives from one daemon
	// incarnation; the resume cursor.
	Stamp uint64
	// Service is the delivery guarantee the message was sent with.
	Service wire.Service
	// Payload is the application data.
	Payload []byte
}

// View is a group membership view, delivered to members whenever the
// group's membership changes, in the same total order at every member.
type View struct {
	// Group is the group name.
	Group string
	// Members are the private names of the current members, sorted.
	Members []string
}

// Disconnected reports that a managed connection lost its transport; the
// client is now redialing with backoff. Err is the read error that ended
// the connection.
type Disconnected struct{ Err error }

// Reconnected reports that a managed connection is serving again.
// Resumed means the daemon kept the session and the delivery stream
// continues where it left off (any loss is reported separately as Gap);
// false means a fresh session was created — cursors reset, joins and
// subscriptions replayed. Attempts counts the dials this outage took.
type Reconnected struct {
	Resumed  bool
	Attempts int
}

// Gap reports lost messages on a managed connection. With a Group, the
// daemon's per-group sequence numbers jumped: Missed messages of that
// group's stream were dropped (shed under backpressure, or lost across a
// resume). With Group empty, stream continuity was lost wholesale — the
// session could not be resumed, or the daemon dropped an unknown number
// of frames while the client was away — and Missed is 0 (unknown).
type Gap struct {
	Group  string
	Missed uint64
}

// Draining reports that the daemon announced a graceful drain: it will
// flush pending deliveries and close. A managed connection will reconnect
// (to the restarted daemon) when the connection ends.
type Draining struct{}

func (Message) isEvent()      {}
func (View) isEvent()         {}
func (Disconnected) isEvent() {}
func (Reconnected) isEvent()  {}
func (Gap) isEvent()          {}
func (Draining) isEvent()     {}

// Errors returned by connection operations.
var (
	// ErrClosed is returned by operations on a closed connection — closed
	// by Close, a dead unmanaged connection, or a managed connection that
	// exhausted Options.MaxAttempts.
	ErrClosed = errors.New("client: connection closed")
	// ErrReconnecting is returned by operations that need a live transport
	// (Multicast, Stats) while a managed connection is between attempts.
	// Join/Leave/Subscribe/Unsubscribe succeed while reconnecting: they
	// update the tracked interest state and are replayed on reconnect.
	ErrReconnecting = errors.New("client: reconnecting")
)

// Defaults for Options zero values.
const (
	DefaultDialTimeout = 10 * time.Second
	DefaultBackoffMin  = 100 * time.Millisecond
	DefaultBackoffMax  = 5 * time.Second
)

// Options configures Dial/DialContext.
type Options struct {
	// DialTimeout bounds each dial attempt; zero selects
	// DefaultDialTimeout.
	DialTimeout time.Duration
	// ConnectWait keeps retrying the initial connection (daemon socket
	// not up yet) for this long before giving up; zero makes the first
	// dial the only one.
	ConnectWait time.Duration
	// Reconnect selects the managed mode: on connection loss the client
	// redials with capped exponential backoff and jitter, resumes or
	// re-establishes its session, and emits typed lifecycle events
	// instead of closing the Events channel.
	Reconnect bool
	// BackoffMin and BackoffMax bound the exponential backoff between
	// reconnect attempts; zeroes select DefaultBackoffMin/Max.
	BackoffMin time.Duration
	BackoffMax time.Duration
	// MaxAttempts caps the dials per outage; past it the connection gives
	// up and behaves as closed. Zero means retry forever.
	MaxAttempts int
}

func (o *Options) fill() {
	if o.DialTimeout <= 0 {
		o.DialTimeout = DefaultDialTimeout
	}
	if o.BackoffMin <= 0 {
		o.BackoffMin = DefaultBackoffMin
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = DefaultBackoffMax
	}
	if o.BackoffMax < o.BackoffMin {
		o.BackoffMax = o.BackoffMin
	}
}

// eventQueue is the receive buffer; the daemon disconnects clients that
// fall too far behind, so the client should drain Events promptly.
const eventQueue = 8192

// Conn is a client connection to a daemon.
type Conn struct {
	network, addr, name string
	opts                Options
	managed             bool

	events  chan Event
	statsCh chan []byte
	statsMu sync.Mutex
	done     chan struct{}
	doneOnce sync.Once

	mu        sync.Mutex
	conn      net.Conn // nil while a managed connection is redialing
	private   string
	sessionID uint64
	closed    bool
	// lastStamp and groupSeqs are the delivery cursors: the resume point
	// acknowledged to the daemon, and each interesting group's last seen
	// sequence number for gap detection.
	lastStamp uint64
	groupSeqs map[string]uint64
	// joined and subscribed track desired interest for replay;
	// pendingLeaves/pendingUnsubs remember withdrawals made while
	// disconnected so a resumed session applies them.
	joined        map[string]bool
	subscribed    map[string]bool
	pendingLeaves map[string]bool
	pendingUnsubs map[string]bool
	// reconnects and resumes count outages survived and sessions resumed.
	reconnects uint64
	resumes    uint64

	wg sync.WaitGroup
}

// Connect dials a daemon and registers under the given name. network/addr
// are as in net.Dial ("unix", "/tmp/ringd.sock" for co-located clients).
// The dial is bounded by DefaultDialTimeout; the connection is unmanaged
// (Events closes when it drops). Use Dial for timeouts, initial-connect
// retry, and the managed reconnecting mode.
func Connect(network, addr, name string) (*Conn, error) {
	return Dial(network, addr, name, Options{})
}

// Dial connects to a daemon with the given options.
func Dial(network, addr, name string, opts Options) (*Conn, error) {
	return DialContext(context.Background(), network, addr, name, opts)
}

// DialContext connects to a daemon, bounded by ctx: dialing (including
// the Options.ConnectWait retry window) stops when ctx is done.
func DialContext(ctx context.Context, network, addr, name string, opts Options) (*Conn, error) {
	if name == "" {
		return nil, errors.New("client: empty name")
	}
	opts.fill()
	conn, err := dialInitial(ctx, network, addr, opts)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	c, err := newConn(conn, name)
	if err != nil {
		return nil, err
	}
	c.network, c.addr, c.opts = network, addr, opts
	c.managed = opts.Reconnect
	c.start()
	return c, nil
}

// dialInitial dials with the per-attempt timeout, retrying transport
// errors for up to opts.ConnectWait (the daemon socket may not be up
// yet).
func dialInitial(ctx context.Context, network, addr string, opts Options) (net.Conn, error) {
	d := net.Dialer{Timeout: opts.DialTimeout}
	deadline := time.Now().Add(opts.ConnectWait)
	backoff := opts.BackoffMin
	for {
		conn, err := d.DialContext(ctx, network, addr)
		if err == nil {
			return conn, nil
		}
		if opts.ConnectWait <= 0 || !time.Now().Add(backoff).Before(deadline) {
			return nil, err
		}
		select {
		case <-time.After(jitter(backoff)):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if backoff *= 2; backoff > opts.BackoffMax {
			backoff = opts.BackoffMax
		}
	}
}

// New registers under the given name over an already established
// connection (an in-memory pipe, a pre-dialed socket) and takes ownership
// of it. On error the connection is closed. The result is unmanaged: it
// cannot redial a transport it did not create.
func New(conn net.Conn, name string) (*Conn, error) {
	c, err := newConn(conn, name)
	if err != nil {
		return nil, err
	}
	c.start()
	return c, nil
}

// newConn performs the handshake and builds the Conn without starting its
// reader, so DialContext can flip it to managed mode first.
func newConn(conn net.Conn, name string) (*Conn, error) {
	if name == "" {
		conn.Close()
		return nil, errors.New("client: empty name")
	}
	private, sessionID, err := handshake(conn, name)
	if err != nil {
		conn.Close()
		return nil, err
	}
	c := &Conn{
		name:          name,
		conn:          conn,
		private:       private,
		sessionID:     sessionID,
		events:        make(chan Event, eventQueue),
		statsCh:       make(chan []byte, 1),
		done:          make(chan struct{}),
		groupSeqs:     make(map[string]uint64),
		joined:        make(map[string]bool),
		subscribed:    make(map[string]bool),
		pendingLeaves: make(map[string]bool),
		pendingUnsubs: make(map[string]bool),
	}
	return c, nil
}

// start launches the connection's reader (and, in managed mode, its
// supervisor).
func (c *Conn) start() {
	c.wg.Add(1)
	go c.run()
}

// handshake performs the CmdConnect/EvtWelcome exchange. The welcome
// carries the private name and, from resume-capable daemons, a session ID
// (0 when absent: resume unavailable).
func handshake(conn net.Conn, name string) (private string, sessionID uint64, err error) {
	if err := ipc.WriteFrame(conn, ipc.CmdConnect, ipc.PutString(nil, name)); err != nil {
		return "", 0, fmt.Errorf("client: connect frame: %w", err)
	}
	typ, body, err := ipc.ReadFrame(conn)
	if err != nil {
		return "", 0, fmt.Errorf("client: reading welcome: %w", err)
	}
	if typ != ipc.EvtWelcome {
		return "", 0, fmt.Errorf("client: unexpected frame %d before welcome", typ)
	}
	private, rest, err := ipc.GetString(body)
	if err != nil {
		return "", 0, fmt.Errorf("client: bad welcome: %w", err)
	}
	if len(rest) >= 8 {
		sessionID, _, _ = ipc.GetUint64(rest)
	}
	return private, sessionID, nil
}

// PrivateName returns the globally unique name the daemon assigned, e.g.
// "alice@0.0.0.1".
func (c *Conn) PrivateName() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.private
}

// SessionID returns the daemon-issued resume session ID (0 when the
// daemon has resume disabled).
func (c *Conn) SessionID() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sessionID
}

// Reconnects returns how many outages this managed connection has
// survived; Resumes how many of those kept the session.
func (c *Conn) Reconnects() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reconnects
}

// Resumes returns how many reconnects resumed the existing session.
func (c *Conn) Resumes() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resumes
}

// Events returns the stream of ordered messages and views, plus lifecycle
// events on managed connections. It closes when the connection is dead:
// dropped (unmanaged), Closed, or out of reconnect attempts (managed).
func (c *Conn) Events() <-chan Event { return c.events }

// Join subscribes this client to a group. The resulting view arrives on
// Events, totally ordered with all other group operations and messages.
// On a managed connection Join succeeds while reconnecting: the interest
// is recorded and replayed.
func (c *Conn) Join(group string) error {
	return c.interestOp(ipc.CmdJoin, group)
}

// Leave unsubscribes this client from a group.
func (c *Conn) Leave(group string) error {
	return c.interestOp(ipc.CmdLeave, group)
}

// Subscribe registers local delivery interest in a group's ordered
// message stream without joining the group: this client receives every
// message addressed to the group, in the same total order as the
// members, but never appears in its membership views and adds no ring
// traffic. Subscriptions are daemon-local, so at serving scale a large
// read-only audience costs the ring nothing — use Join only when the
// other members must know you are there.
func (c *Conn) Subscribe(group string) error {
	return c.interestOp(ipc.CmdSubscribe, group)
}

// Unsubscribe withdraws a Subscribe. A concurrent membership of the same
// group (via Join) keeps delivering.
func (c *Conn) Unsubscribe(group string) error {
	return c.interestOp(ipc.CmdUnsubscribe, group)
}

// interestOp updates the tracked interest state and forwards the frame.
// While a managed connection is redialing the update alone succeeds — the
// supervisor reconciles the daemon on reconnect.
func (c *Conn) interestOp(typ byte, group string) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	switch typ {
	case ipc.CmdJoin:
		c.joined[group] = true
		delete(c.pendingLeaves, group)
	case ipc.CmdLeave:
		delete(c.joined, group)
		if !c.subscribed[group] {
			delete(c.groupSeqs, group)
		}
		if c.conn == nil {
			c.pendingLeaves[group] = true
		}
	case ipc.CmdSubscribe:
		c.subscribed[group] = true
		delete(c.pendingUnsubs, group)
	case ipc.CmdUnsubscribe:
		delete(c.subscribed, group)
		if !c.joined[group] {
			delete(c.groupSeqs, group)
		}
		if c.conn == nil {
			c.pendingUnsubs[group] = true
		}
	}
	conn := c.conn
	if conn == nil {
		c.mu.Unlock()
		if c.managed {
			return nil
		}
		return ErrClosed
	}
	err := ipc.WriteFrame(conn, typ, ipc.PutString(nil, group))
	c.mu.Unlock()
	return c.normalize(err)
}

// MulticastOptions modify a multicast.
type MulticastOptions struct {
	// SelfDiscard asks the daemon not to deliver the message back to this
	// client even if it is a member of a destination group (Spread's
	// SELF_DISCARD).
	SelfDiscard bool
}

// Multicast sends a message to every member of every listed group, with
// the requested delivery service. The sender need not be a member of any
// of the groups (open-group semantics).
func (c *Conn) Multicast(service wire.Service, payload []byte, groups ...string) error {
	return c.MulticastWith(MulticastOptions{}, service, payload, groups...)
}

// MulticastWith is Multicast with options. While a managed connection is
// between attempts it fails with ErrReconnecting — messages are not
// queued for an absent daemon.
func (c *Conn) MulticastWith(opts MulticastOptions, service wire.Service, payload []byte, groups ...string) error {
	if len(groups) == 0 {
		return errors.New("client: no destination groups")
	}
	if !service.Valid() {
		return fmt.Errorf("client: invalid service %d", uint8(service))
	}
	var flags byte
	if opts.SelfDiscard {
		flags |= 1 // keep in sync with the daemon's flagSelfDiscard
	}
	body := make([]byte, 0, 10+len(payload))
	body = append(body, byte(service), flags)
	body = ipc.PutStrings(body, groups)
	body = append(body, payload...)
	return c.sendFrame(ipc.CmdMulticast, body)
}

// Stats requests the daemon's observability snapshot: per-client submit
// and delivery counters, group/session totals, and the ring node's full
// metrics (StatsSnapshot.Node, as raw JSON decodable into
// accelring.MetricsSnapshot). Concurrent callers are serialized.
func (c *Conn) Stats() (ipc.StatsSnapshot, error) {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	select {
	case <-c.statsCh: // discard a stale response from an abandoned call
	default:
	}
	if err := c.sendFrame(ipc.CmdStats, nil); err != nil {
		return ipc.StatsSnapshot{}, err
	}
	select {
	case body := <-c.statsCh:
		var snap ipc.StatsSnapshot
		if err := json.Unmarshal(body, &snap); err != nil {
			return ipc.StatsSnapshot{}, fmt.Errorf("client: bad stats frame: %w", err)
		}
		return snap, nil
	case <-c.done:
		return ipc.StatsSnapshot{}, ErrClosed
	}
}

// Close terminates the connection: a best-effort goodbye tells the daemon
// to drop the session now rather than hold it for the resume window.
// Close is idempotent and concurrent-safe; operations after it return
// ErrClosed.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conn := c.conn
	if conn != nil {
		conn.SetWriteDeadline(time.Now().Add(time.Second))
		ipc.WriteFrame(conn, ipc.CmdGoodbye, nil)
	}
	c.mu.Unlock()
	c.doneOnce.Do(func() { close(c.done) })
	if conn != nil {
		conn.Close()
	}
	c.wg.Wait()
	return nil
}

// sendFrame writes one frame on the live transport.
func (c *Conn) sendFrame(typ byte, body []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if c.conn == nil {
		if c.managed {
			return ErrReconnecting
		}
		return ErrClosed
	}
	return c.normalize(ipc.WriteFrame(c.conn, typ, body))
}

// normalize maps transport errors racing a Close to ErrClosed. Caller may
// hold c.mu (closed is also checked locklessly under it).
func (c *Conn) normalize(err error) error {
	if err == nil {
		return nil
	}
	select {
	case <-c.done:
		return ErrClosed
	default:
	}
	return fmt.Errorf("client: %w", err)
}

// emit delivers a lifecycle or data event, giving up when the connection
// closes so a consumer that stopped draining cannot wedge the supervisor
// forever.
func (c *Conn) emit(ev Event) {
	select {
	case c.events <- ev:
	case <-c.done:
	}
}

// isClosed reports whether Close ran or reconnects are exhausted.
func (c *Conn) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// run is the connection lifecycle: read until the transport drops, then —
// unmanaged — close the Events channel, or — managed — hand the outage to
// the supervisor.
func (c *Conn) run() {
	defer c.wg.Done()
	conn := c.conn // set before start; never nil here
	err := c.readConn(conn)
	if c.managed {
		c.supervise(conn, err)
		return
	}
	c.doneOnce.Do(func() { close(c.done) })
	close(c.events)
}

// supervise owns a managed connection's lifecycle after its first
// transport failure: emit Disconnected, redial with backoff, resume or
// re-establish the session, emit Reconnected (and Gap when continuity
// broke), then read until the next failure.
func (c *Conn) supervise(conn net.Conn, err error) {
	defer close(c.events)
	for {
		if c.isClosed() {
			return
		}
		conn.Close()
		c.mu.Lock()
		c.conn = nil
		c.mu.Unlock()
		c.emit(Disconnected{Err: err})
		next, resumed, gap, attempts := c.reconnect()
		if next == nil {
			// Closed, or attempts exhausted: the connection is dead.
			c.mu.Lock()
			c.closed = true
			c.mu.Unlock()
			c.doneOnce.Do(func() { close(c.done) })
			return
		}
		c.emit(Reconnected{Resumed: resumed, Attempts: attempts})
		if gap {
			c.emit(Gap{})
		}
		conn = next
		err = c.readConn(conn)
	}
}

// reconnect dials until a session is serving again. It returns the new
// transport, whether the session was resumed, whether stream continuity
// broke (fresh session, or the daemon dropped frames while away), and the
// attempt count — or a nil transport when closed or out of attempts.
func (c *Conn) reconnect() (conn net.Conn, resumed, gap bool, attempts int) {
	backoff := c.opts.BackoffMin
	for {
		if c.isClosed() {
			return nil, false, false, attempts
		}
		if c.opts.MaxAttempts > 0 && attempts >= c.opts.MaxAttempts {
			return nil, false, false, attempts
		}
		attempts++
		conn, resumed, gap, err := c.tryConnect()
		if err == nil {
			return conn, resumed, gap, attempts
		}
		select {
		case <-time.After(jitter(backoff)):
		case <-c.done:
			return nil, false, false, attempts
		}
		if backoff *= 2; backoff > c.opts.BackoffMax {
			backoff = c.opts.BackoffMax
		}
	}
}

// tryConnect makes one reconnect attempt: dial, resume the session if one
// exists (CmdResume), fall back to a fresh handshake otherwise, reconcile
// interest state, and install the transport.
func (c *Conn) tryConnect() (net.Conn, bool, bool, error) {
	d := net.Dialer{Timeout: c.opts.DialTimeout}
	conn, err := d.Dial(c.network, c.addr)
	if err != nil {
		return nil, false, false, err
	}
	conn.SetDeadline(time.Now().Add(c.opts.DialTimeout))
	c.mu.Lock()
	sid, stamp, name := c.sessionID, c.lastStamp, c.name
	seqs := make(map[string]uint64, len(c.groupSeqs))
	for g, s := range c.groupSeqs {
		seqs[g] = s
	}
	c.mu.Unlock()

	resumed, gap := false, false
	var private string
	var newSid uint64
	if sid != 0 {
		body := ipc.PutString(nil, name)
		body = ipc.PutUint64(body, sid)
		body = ipc.PutUint64(body, stamp)
		body = putSeqs(body, seqs)
		if err := ipc.WriteFrame(conn, ipc.CmdResume, body); err != nil {
			conn.Close()
			return nil, false, false, err
		}
		typ, resp, err := ipc.ReadFrame(conn)
		if err != nil || typ != ipc.EvtResumed || len(resp) < 1 {
			conn.Close()
			return nil, false, false, fmt.Errorf("client: resume handshake failed (frame %d, %v)", typ, err)
		}
		flags := resp[0]
		private, resp, err = ipc.GetString(resp[1:])
		if err != nil {
			conn.Close()
			return nil, false, false, err
		}
		newSid, _, _ = ipc.GetUint64(resp)
		resumed = flags&ipc.ResumedFlagResumed != 0
		gap = !resumed || flags&ipc.ResumedFlagGap != 0
	} else {
		// Daemon without resume: plain fresh handshake, continuity lost.
		private, newSid, err = handshake(conn, name)
		if err != nil {
			conn.Close()
			return nil, false, false, err
		}
		gap = true
	}
	conn.SetDeadline(time.Time{})

	c.mu.Lock()
	c.private = private
	if newSid != 0 {
		c.sessionID = newSid
	}
	if !resumed {
		// Fresh session: the old stream is gone, cursors restart.
		c.lastStamp = 0
		c.groupSeqs = make(map[string]uint64)
		c.pendingLeaves = make(map[string]bool)
		c.pendingUnsubs = make(map[string]bool)
	}
	replay := c.replayFrames(resumed)
	c.mu.Unlock()

	for _, f := range replay {
		if err := ipc.WriteFrame(conn, f.typ, f.body); err != nil {
			conn.Close()
			return nil, false, false, err
		}
	}
	c.mu.Lock()
	c.conn = conn
	c.reconnects++
	if resumed {
		c.resumes++
	}
	c.mu.Unlock()
	return conn, resumed, gap, nil
}

type rawFrame struct {
	typ  byte
	body []byte
}

// replayFrames assembles the interest reconciliation for a fresh
// transport: joins and subscriptions always (idempotent at the daemon),
// plus — on a resumed session — the leaves and unsubscribes issued while
// disconnected. Caller holds c.mu.
func (c *Conn) replayFrames(resumed bool) []rawFrame {
	var out []rawFrame
	for g := range c.joined {
		out = append(out, rawFrame{ipc.CmdJoin, ipc.PutString(nil, g)})
	}
	for g := range c.subscribed {
		out = append(out, rawFrame{ipc.CmdSubscribe, ipc.PutString(nil, g)})
	}
	if resumed {
		for g := range c.pendingLeaves {
			out = append(out, rawFrame{ipc.CmdLeave, ipc.PutString(nil, g)})
		}
		for g := range c.pendingUnsubs {
			out = append(out, rawFrame{ipc.CmdUnsubscribe, ipc.PutString(nil, g)})
		}
	}
	c.pendingLeaves = make(map[string]bool)
	c.pendingUnsubs = make(map[string]bool)
	return out
}

// putSeqs encodes the per-group cursor list of a CmdResume body.
func putSeqs(dst []byte, seqs map[string]uint64) []byte {
	var cnt [2]byte
	cnt[0] = byte(len(seqs) >> 8)
	cnt[1] = byte(len(seqs))
	dst = append(dst, cnt[:]...)
	for g, s := range seqs {
		dst = ipc.PutString(dst, g)
		dst = ipc.PutUint64(dst, s)
	}
	return dst
}

// readConn pumps frames from one transport until it fails, emitting
// events; on managed connections it also dedups replayed messages by
// stamp and flags per-group sequence gaps.
func (c *Conn) readConn(conn net.Conn) error {
	for {
		typ, body, err := ipc.ReadFrame(conn)
		if err != nil {
			return err
		}
		switch typ {
		case ipc.EvtMessage:
			m, err := decodeMessage(body)
			if err != nil {
				return err
			}
			if c.managed {
				gaps, dup := c.trackMessage(&m)
				for _, g := range gaps {
					c.emit(g)
				}
				if dup {
					continue
				}
				c.emit(m)
			} else {
				c.events <- m
			}
		case ipc.EvtView:
			v, err := decodeView(body)
			if err != nil {
				return err
			}
			if c.managed {
				c.emit(v)
			} else {
				c.events <- v
			}
		case ipc.EvtStats:
			select {
			case c.statsCh <- body:
			default: // no Stats call waiting; drop the response
			}
		case ipc.EvtDrain:
			if c.managed {
				c.emit(Draining{})
			} else {
				c.events <- Draining{}
			}
		case ipc.EvtResumed:
			// Only expected during the reconnect handshake; mid-stream it
			// is a protocol error, but harmless — ignore.
		}
	}
}

// trackMessage advances the delivery cursors: duplicates (stamp at or
// below the resume point — the daemon replayed frames the client already
// had) are suppressed, and sequence jumps in groups this client tracks
// become Gap events. Messages for groups of transient interest (left
// since) still pass through, untracked.
func (c *Conn) trackMessage(m *Message) (gaps []Event, dup bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m.Stamp != 0 {
		if m.Stamp <= c.lastStamp {
			return nil, true
		}
		c.lastStamp = m.Stamp
	}
	for i, g := range m.Groups {
		if i >= len(m.Seqs) {
			break
		}
		if !c.joined[g] && !c.subscribed[g] {
			continue
		}
		seq := m.Seqs[i]
		if prev := c.groupSeqs[g]; prev != 0 && seq > prev+1 {
			gaps = append(gaps, Gap{Group: g, Missed: seq - prev - 1})
		}
		if seq > c.groupSeqs[g] {
			c.groupSeqs[g] = seq
		}
	}
	return gaps, false
}

// jitter spreads a backoff delay over [3d/4, 5d/4) so a daemon restart
// does not see every client redial in lockstep.
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return 3*d/4 + time.Duration(rand.Int63n(int64(d)/2+1))
}

func decodeMessage(body []byte) (Message, error) {
	var m Message
	if len(body) < 1 {
		return m, ipc.ErrBadFrame
	}
	m.Service = wire.Service(body[0])
	body = body[1:]
	var err error
	m.Stamp, body, err = ipc.GetUint64(body)
	if err != nil {
		return m, err
	}
	m.Sender, body, err = ipc.GetString(body)
	if err != nil {
		return m, err
	}
	if len(body) < 2 {
		return m, ipc.ErrBadFrame
	}
	n := int(body[0])<<8 | int(body[1])
	body = body[2:]
	if n > wire.MaxGroups {
		return m, ipc.ErrBadFrame
	}
	m.Groups = make([]string, 0, n)
	m.Seqs = make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		var g string
		var s uint64
		g, body, err = ipc.GetString(body)
		if err != nil {
			return m, err
		}
		s, body, err = ipc.GetUint64(body)
		if err != nil {
			return m, err
		}
		m.Groups = append(m.Groups, g)
		m.Seqs = append(m.Seqs, s)
	}
	m.Payload = body
	return m, nil
}

func decodeView(body []byte) (View, error) {
	var v View
	var err error
	v.Group, body, err = ipc.GetString(body)
	if err != nil {
		return v, err
	}
	v.Members, _, err = ipc.GetStrings(body)
	if err != nil {
		return v, err
	}
	return v, nil
}
