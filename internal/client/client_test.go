package client

import (
	"errors"
	"net"
	"path/filepath"
	"testing"
	"time"

	"accelring/internal/ipc"
	"accelring/internal/wire"
)

// msgBody builds an EvtMessage body in the daemon's stamped wire format:
// [service][stamp][sender][count][(group, seq)...][payload].
func msgBody(svc wire.Service, stamp uint64, sender string, groups []string, seqs []uint64, payload string) []byte {
	body := []byte{byte(svc)}
	body = ipc.PutUint64(body, stamp)
	body = ipc.PutString(body, sender)
	body = append(body, byte(len(groups)>>8), byte(len(groups)))
	for i, g := range groups {
		body = ipc.PutString(body, g)
		body = ipc.PutUint64(body, seqs[i])
	}
	return append(body, []byte(payload)...)
}

func TestDecodeMessage(t *testing.T) {
	body := msgBody(wire.ServiceSafe, 7, "alice@0.0.0.1", []string{"g1", "g2"}, []uint64{3, 9}, "payload")
	m, err := decodeMessage(body)
	if err != nil {
		t.Fatal(err)
	}
	if m.Sender != "alice@0.0.0.1" || m.Service != wire.ServiceSafe || m.Stamp != 7 {
		t.Fatalf("decoded %+v", m)
	}
	if len(m.Groups) != 2 || m.Groups[0] != "g1" || m.Groups[1] != "g2" {
		t.Fatalf("groups %v", m.Groups)
	}
	if len(m.Seqs) != 2 || m.Seqs[0] != 3 || m.Seqs[1] != 9 {
		t.Fatalf("seqs %v", m.Seqs)
	}
	if string(m.Payload) != "payload" {
		t.Fatalf("payload %q", m.Payload)
	}
}

func TestDecodeMessageTruncated(t *testing.T) {
	full := msgBody(wire.ServiceAgreed, 5, "a@1", []string{"g"}, []uint64{1}, "")
	for n := 0; n < len(full); n++ {
		if _, err := decodeMessage(full[:n]); err == nil {
			t.Errorf("decodeMessage of %d/%d bytes succeeded", n, len(full))
		}
	}
}

func TestDecodeView(t *testing.T) {
	body := ipc.PutString(nil, "room")
	body = ipc.PutStrings(body, []string{"a@1", "b@2"})
	v, err := decodeView(body)
	if err != nil {
		t.Fatal(err)
	}
	if v.Group != "room" || len(v.Members) != 2 {
		t.Fatalf("decoded %+v", v)
	}
}

func TestDecodeViewTruncated(t *testing.T) {
	if _, err := decodeView([]byte{0}); err == nil {
		t.Fatal("accepted truncated view")
	}
}

func TestConnectValidatesName(t *testing.T) {
	if _, err := Connect("unix", "/nonexistent.sock", ""); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestConnectDialFailure(t *testing.T) {
	if _, err := Connect("unix", "/nonexistent-accelring.sock", "x"); err == nil {
		t.Fatal("dial to nonexistent socket succeeded")
	}
}

func TestMulticastValidation(t *testing.T) {
	c := &Conn{} // not connected; validation happens before any I/O
	if err := c.Multicast(wire.ServiceAgreed, []byte("x")); err == nil {
		t.Fatal("multicast with no groups accepted")
	}
	if err := c.Multicast(wire.Service(99), []byte("x"), "g"); err == nil {
		t.Fatal("invalid service accepted")
	}
}

func TestJitterBounds(t *testing.T) {
	d := 100 * time.Millisecond
	for i := 0; i < 100; i++ {
		j := jitter(d)
		if j < 3*d/4 || j > 5*d/4 {
			t.Fatalf("jitter(%v) = %v out of [3d/4, 5d/4]", d, j)
		}
	}
}

func TestTrackMessageDedupAndGap(t *testing.T) {
	c := &Conn{
		managed:   true,
		groupSeqs: map[string]uint64{},
		joined:    map[string]bool{"g": true},
		subscribed: map[string]bool{},
	}
	deliver := func(stamp, seq uint64) ([]Event, bool) {
		m := Message{Stamp: stamp, Groups: []string{"g"}, Seqs: []uint64{seq}}
		return c.trackMessage(&m)
	}
	if gaps, dup := deliver(1, 1); dup || len(gaps) != 0 {
		t.Fatalf("first message: gaps=%v dup=%v", gaps, dup)
	}
	if _, dup := deliver(1, 1); !dup {
		t.Fatal("replayed stamp not suppressed")
	}
	if gaps, dup := deliver(2, 2); dup || len(gaps) != 0 {
		t.Fatalf("in-order message: gaps=%v dup=%v", gaps, dup)
	}
	gaps, dup := deliver(5, 5)
	if dup {
		t.Fatal("new stamp treated as dup")
	}
	if len(gaps) != 1 {
		t.Fatalf("expected one gap event, got %v", gaps)
	}
	if g := gaps[0].(Gap); g.Group != "g" || g.Missed != 2 {
		t.Fatalf("gap %+v, want group g missed 2", g)
	}
	// An uninteresting group's sequence numbers are not tracked.
	m := Message{Stamp: 6, Groups: []string{"other"}, Seqs: []uint64{50}}
	if gaps, _ := c.trackMessage(&m); len(gaps) != 0 {
		t.Fatalf("untracked group produced gaps %v", gaps)
	}
}

// fakeDaemon accepts IPC connections on a unix socket and lets tests
// script the daemon side of the protocol.
type fakeDaemon struct {
	t     *testing.T
	ln    net.Listener
	addr  string
	conns chan net.Conn
}

func newFakeDaemon(t *testing.T) *fakeDaemon {
	t.Helper()
	addr := filepath.Join(t.TempDir(), "ringd.sock")
	ln, err := net.Listen("unix", addr)
	if err != nil {
		t.Fatal(err)
	}
	f := &fakeDaemon{t: t, ln: ln, addr: addr, conns: make(chan net.Conn, 8)}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			f.conns <- c
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return f
}

func (f *fakeDaemon) accept() net.Conn {
	f.t.Helper()
	select {
	case c := <-f.conns:
		return c
	case <-time.After(5 * time.Second):
		f.t.Fatal("no connection arrived")
		return nil
	}
}

func (f *fakeDaemon) expect(conn net.Conn, typ byte) []byte {
	f.t.Helper()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	got, body, err := ipc.ReadFrame(conn)
	if err != nil {
		f.t.Fatalf("reading frame (want type %d): %v", typ, err)
	}
	if got != typ {
		f.t.Fatalf("frame type %d, want %d", got, typ)
	}
	return body
}

// serveWelcome answers the next connection's CmdConnect handshake in the
// background (Dial blocks until the welcome arrives, so the test cannot
// serve it inline) and hands the served connection back.
func (f *fakeDaemon) serveWelcome(private string, sid uint64) <-chan net.Conn {
	ch := make(chan net.Conn, 1)
	go func() {
		select {
		case conn := <-f.conns:
			conn.SetReadDeadline(time.Now().Add(5 * time.Second))
			typ, _, err := ipc.ReadFrame(conn)
			if err != nil || typ != ipc.CmdConnect {
				conn.Close()
				return
			}
			conn.SetReadDeadline(time.Time{})
			body := ipc.PutString(nil, private)
			body = ipc.PutUint64(body, sid)
			if ipc.WriteFrame(conn, ipc.EvtWelcome, body) == nil {
				ch <- conn
			}
		case <-time.After(5 * time.Second):
		}
	}()
	return ch
}

func recvConn(t *testing.T, ch <-chan net.Conn) net.Conn {
	t.Helper()
	select {
	case c := <-ch:
		return c
	case <-time.After(5 * time.Second):
		t.Fatal("fake daemon never served the handshake")
		return nil
	}
}

func nextEvent(t *testing.T, c *Conn) Event {
	t.Helper()
	select {
	case ev, ok := <-c.Events():
		if !ok {
			t.Fatal("events channel closed")
		}
		return ev
	case <-time.After(5 * time.Second):
		t.Fatal("no event arrived")
		return nil
	}
}

func TestHandshakeParsesSessionID(t *testing.T) {
	f := newFakeDaemon(t)
	ch := f.serveWelcome("n@0.0.0.1", 42)
	c, err := Connect("unix", f.addr, "n")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	recvConn(t, ch)
	if c.PrivateName() != "n@0.0.0.1" {
		t.Fatalf("private name %q", c.PrivateName())
	}
	if c.SessionID() != 42 {
		t.Fatalf("session ID %d, want 42", c.SessionID())
	}
}

func TestCloseIdempotentAndGoodbye(t *testing.T) {
	f := newFakeDaemon(t)
	ch := f.serveWelcome("n@0.0.0.1", 1)
	c, err := Connect("unix", f.addr, "n")
	if err != nil {
		t.Fatal(err)
	}
	conn := recvConn(t, ch)
	if err := c.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	f.expect(conn, ipc.CmdGoodbye)
	if err := c.Join("g"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Join after close: %v, want ErrClosed", err)
	}
	if err := c.Multicast(wire.ServiceAgreed, nil, "g"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Multicast after close: %v, want ErrClosed", err)
	}
	if _, err := c.Stats(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Stats after close: %v, want ErrClosed", err)
	}
}

func TestConnectWaitRetriesInitialDial(t *testing.T) {
	dir := t.TempDir()
	addr := filepath.Join(dir, "late.sock")
	// Bring the socket up only after the client has started dialing.
	go func() {
		time.Sleep(150 * time.Millisecond)
		ln, err := net.Listen("unix", addr)
		if err != nil {
			return
		}
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		_, _, _ = ipc.ReadFrame(conn) // CmdConnect
		body := ipc.PutString(nil, "n@0.0.0.1")
		body = ipc.PutUint64(body, 1)
		ipc.WriteFrame(conn, ipc.EvtWelcome, body)
	}()
	c, err := Dial("unix", addr, "n", Options{
		ConnectWait: 5 * time.Second,
		BackoffMin:  20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("dial with ConnectWait failed: %v", err)
	}
	c.Close()

	// Without ConnectWait the same situation fails immediately.
	if _, err := Dial("unix", filepath.Join(dir, "never.sock"), "n", Options{}); err == nil {
		t.Fatal("dial to absent socket without ConnectWait succeeded")
	}
}

// TestManagedResume drives a full outage: the fake daemon drops the
// connection mid-stream, honors the resume handshake, and replays from
// the client's stamp. The client must dedup the replayed frame and emit
// Disconnected/Reconnected{Resumed:true} with no Gap.
func TestManagedResume(t *testing.T) {
	f := newFakeDaemon(t)
	ch := f.serveWelcome("n@0.0.0.1", 42)
	c, err := dialManaged(t, f)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	conn1 := recvConn(t, ch)
	if err := c.Join("g"); err != nil {
		t.Fatal(err)
	}
	f.expect(conn1, ipc.CmdJoin)

	// Two messages, then the daemon drops the connection.
	ipc.WriteFrame(conn1, ipc.EvtMessage, msgBody(wire.ServiceAgreed, 1, "a@1", []string{"g"}, []uint64{1}, "m1"))
	ipc.WriteFrame(conn1, ipc.EvtMessage, msgBody(wire.ServiceAgreed, 2, "a@1", []string{"g"}, []uint64{2}, "m2"))
	wantMsg(t, c, "m1")
	wantMsg(t, c, "m2")
	conn1.Close()

	if _, ok := nextEvent(t, c).(Disconnected); !ok {
		t.Fatal("expected Disconnected")
	}

	// Serve the resume: expect CmdResume with session 42, stamp 2.
	conn2 := f.accept()
	body := f.expect(conn2, ipc.CmdResume)
	name, rest, err := ipc.GetString(body)
	if err != nil || name != "n" {
		t.Fatalf("resume name %q err %v", name, err)
	}
	sid, rest, _ := ipc.GetUint64(rest)
	stamp, rest, _ := ipc.GetUint64(rest)
	if sid != 42 || stamp != 2 {
		t.Fatalf("resume sid=%d stamp=%d, want 42/2", sid, stamp)
	}
	if len(rest) < 2 || int(rest[0])<<8|int(rest[1]) != 1 {
		t.Fatalf("resume cursor count bytes %v, want one group", rest)
	}
	resp := []byte{ipc.ResumedFlagResumed}
	resp = ipc.PutString(resp, "n@0.0.0.1")
	resp = ipc.PutUint64(resp, 42)
	ipc.WriteFrame(conn2, ipc.EvtResumed, resp)
	// The client reconciles interest on every reconnect; drain the join.
	f.expect(conn2, ipc.CmdJoin)

	rec, ok := nextEvent(t, c).(Reconnected)
	if !ok || !rec.Resumed {
		t.Fatalf("expected Reconnected{Resumed:true}, got %#v", rec)
	}
	// Daemon replays from its queue tail: stamp 2 again (dup), then 3.
	ipc.WriteFrame(conn2, ipc.EvtMessage, msgBody(wire.ServiceAgreed, 2, "a@1", []string{"g"}, []uint64{2}, "m2"))
	ipc.WriteFrame(conn2, ipc.EvtMessage, msgBody(wire.ServiceAgreed, 3, "a@1", []string{"g"}, []uint64{3}, "m3"))
	wantMsg(t, c, "m3") // m2 deduped
	if got := c.Reconnects(); got != 1 {
		t.Fatalf("Reconnects() = %d, want 1", got)
	}
	if got := c.Resumes(); got != 1 {
		t.Fatalf("Resumes() = %d, want 1", got)
	}
}

// TestManagedFreshFallback: the daemon cannot resume (EvtResumed without
// the resumed flag) — the client must reset cursors, replay its joins,
// and report the break as a Gap.
func TestManagedFreshFallback(t *testing.T) {
	f := newFakeDaemon(t)
	ch := f.serveWelcome("n@0.0.0.1", 42)
	c, err := dialManaged(t, f)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	conn1 := recvConn(t, ch)
	if err := c.Join("g"); err != nil {
		t.Fatal(err)
	}
	f.expect(conn1, ipc.CmdJoin)
	ipc.WriteFrame(conn1, ipc.EvtMessage, msgBody(wire.ServiceAgreed, 9, "a@1", []string{"g"}, []uint64{5}, "m"))
	wantMsg(t, c, "m")
	conn1.Close()
	if _, ok := nextEvent(t, c).(Disconnected); !ok {
		t.Fatal("expected Disconnected")
	}

	conn2 := f.accept()
	f.expect(conn2, ipc.CmdResume)
	resp := []byte{0} // not resumed: fresh session
	resp = ipc.PutString(resp, "n@0.0.0.2")
	resp = ipc.PutUint64(resp, 77)
	ipc.WriteFrame(conn2, ipc.EvtResumed, resp)
	f.expect(conn2, ipc.CmdJoin) // interest replayed into the fresh session

	rec, ok := nextEvent(t, c).(Reconnected)
	if !ok || rec.Resumed {
		t.Fatalf("expected Reconnected{Resumed:false}, got %#v", rec)
	}
	gap, ok := nextEvent(t, c).(Gap)
	if !ok || gap.Group != "" {
		t.Fatalf("expected session-loss Gap, got %#v", gap)
	}
	if c.SessionID() != 77 || c.PrivateName() != "n@0.0.0.2" {
		t.Fatalf("fresh identity not adopted: sid=%d private=%q", c.SessionID(), c.PrivateName())
	}
	// Cursors reset: a low stamp must not be treated as a duplicate.
	ipc.WriteFrame(conn2, ipc.EvtMessage, msgBody(wire.ServiceAgreed, 1, "a@1", []string{"g"}, []uint64{1}, "fresh"))
	wantMsg(t, c, "fresh")
}

// TestManagedResumeGapFlag: daemon resumes but admits loss — the client
// surfaces it as a Gap event.
func TestManagedResumeGapFlag(t *testing.T) {
	f := newFakeDaemon(t)
	ch := f.serveWelcome("n@0.0.0.1", 42)
	c, err := dialManaged(t, f)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	conn1 := recvConn(t, ch)
	conn1.Close()
	if _, ok := nextEvent(t, c).(Disconnected); !ok {
		t.Fatal("expected Disconnected")
	}
	conn2 := f.accept()
	f.expect(conn2, ipc.CmdResume)
	resp := []byte{ipc.ResumedFlagResumed | ipc.ResumedFlagGap}
	resp = ipc.PutString(resp, "n@0.0.0.1")
	resp = ipc.PutUint64(resp, 42)
	ipc.WriteFrame(conn2, ipc.EvtResumed, resp)
	if rec, ok := nextEvent(t, c).(Reconnected); !ok || !rec.Resumed {
		t.Fatalf("expected Reconnected{Resumed:true}, got %#v", rec)
	}
	if gap, ok := nextEvent(t, c).(Gap); !ok || gap.Group != "" || gap.Missed != 0 {
		t.Fatalf("expected unknown-size Gap, got %#v", gap)
	}
}

// TestOpsWhileReconnecting: interest ops succeed (recorded for replay),
// transport ops fail with ErrReconnecting.
func TestOpsWhileReconnecting(t *testing.T) {
	f := newFakeDaemon(t)
	ch := f.serveWelcome("n@0.0.0.1", 42)
	c, err := dialManaged(t, f)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	conn1 := recvConn(t, ch)
	conn1.Close()
	if _, ok := nextEvent(t, c).(Disconnected); !ok {
		t.Fatal("expected Disconnected")
	}
	// No daemon is accepting resumes yet (the accept loop holds conns in a
	// channel; the handshake stalls), so the client is between attempts at
	// some point. Poll until the transport observably drops.
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := c.Multicast(wire.ServiceAgreed, []byte("x"), "g")
		if errors.Is(err, ErrReconnecting) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("Multicast never returned ErrReconnecting (last: %v)", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := c.Join("g2"); err != nil {
		t.Fatalf("Join while reconnecting: %v", err)
	}
	if err := c.Leave("g2"); err != nil {
		t.Fatalf("Leave while reconnecting: %v", err)
	}
	if err := c.Subscribe("s"); err != nil {
		t.Fatalf("Subscribe while reconnecting: %v", err)
	}
}

// TestMaxAttemptsGivesUp: a managed connection with a bounded retry
// budget eventually closes its Events channel.
func TestMaxAttemptsGivesUp(t *testing.T) {
	f := newFakeDaemon(t)
	ch := f.serveWelcome("n@0.0.0.1", 42)
	c, err := Dial("unix", f.addr, "n", Options{
		Reconnect:   true,
		BackoffMin:  5 * time.Millisecond,
		BackoffMax:  10 * time.Millisecond,
		MaxAttempts: 3,
		DialTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	conn1 := recvConn(t, ch)
	// Kill the daemon entirely: no more accepts.
	f.ln.Close()
	conn1.Close()
	if _, ok := nextEvent(t, c).(Disconnected); !ok {
		t.Fatal("expected Disconnected")
	}
	deadline := time.After(10 * time.Second)
	for {
		select {
		case _, ok := <-c.Events():
			if !ok {
				if err := c.Join("g"); !errors.Is(err, ErrClosed) {
					t.Fatalf("Join after give-up: %v, want ErrClosed", err)
				}
				return
			}
		case <-deadline:
			t.Fatal("events channel never closed after MaxAttempts")
		}
	}
}

func dialManaged(t *testing.T, f *fakeDaemon) (*Conn, error) {
	t.Helper()
	return Dial("unix", f.addr, "n", Options{
		Reconnect:   true,
		BackoffMin:  5 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
		DialTimeout: 2 * time.Second,
	})
}

func wantMsg(t *testing.T, c *Conn, payload string) {
	t.Helper()
	for {
		ev := nextEvent(t, c)
		switch m := ev.(type) {
		case Message:
			if string(m.Payload) != payload {
				t.Fatalf("message %q, want %q", m.Payload, payload)
			}
			return
		case View:
			// membership noise; skip
		default:
			t.Fatalf("unexpected event %#v while waiting for message %q", ev, payload)
		}
	}
}
