package client

import (
	"testing"

	"accelring/internal/ipc"
	"accelring/internal/wire"
)

func TestDecodeMessage(t *testing.T) {
	body := []byte{byte(wire.ServiceSafe)}
	body = ipc.PutString(body, "alice@0.0.0.1")
	body = ipc.PutStrings(body, []string{"g1", "g2"})
	body = append(body, []byte("payload")...)

	m, err := decodeMessage(body)
	if err != nil {
		t.Fatal(err)
	}
	if m.Sender != "alice@0.0.0.1" || m.Service != wire.ServiceSafe {
		t.Fatalf("decoded %+v", m)
	}
	if len(m.Groups) != 2 || m.Groups[0] != "g1" {
		t.Fatalf("groups %v", m.Groups)
	}
	if string(m.Payload) != "payload" {
		t.Fatalf("payload %q", m.Payload)
	}
}

func TestDecodeMessageTruncated(t *testing.T) {
	cases := [][]byte{
		{},
		{byte(wire.ServiceAgreed)},
		{byte(wire.ServiceAgreed), 0},
		{byte(wire.ServiceAgreed), 0, 5, 'a'},
	}
	for _, c := range cases {
		if _, err := decodeMessage(c); err == nil {
			t.Errorf("decodeMessage(%v) succeeded", c)
		}
	}
}

func TestDecodeView(t *testing.T) {
	body := ipc.PutString(nil, "room")
	body = ipc.PutStrings(body, []string{"a@1", "b@2"})
	v, err := decodeView(body)
	if err != nil {
		t.Fatal(err)
	}
	if v.Group != "room" || len(v.Members) != 2 {
		t.Fatalf("decoded %+v", v)
	}
}

func TestDecodeViewTruncated(t *testing.T) {
	if _, err := decodeView([]byte{0}); err == nil {
		t.Fatal("accepted truncated view")
	}
}

func TestConnectValidatesName(t *testing.T) {
	if _, err := Connect("unix", "/nonexistent.sock", ""); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestConnectDialFailure(t *testing.T) {
	if _, err := Connect("unix", "/nonexistent-accelring.sock", "x"); err == nil {
		t.Fatal("dial to nonexistent socket succeeded")
	}
}

func TestMulticastValidation(t *testing.T) {
	c := &Conn{} // not connected; validation happens before any I/O
	if err := c.Multicast(wire.ServiceAgreed, []byte("x")); err == nil {
		t.Fatal("multicast with no groups accepted")
	}
	if err := c.Multicast(wire.Service(99), []byte("x"), "g"); err == nil {
		t.Fatal("invalid service accepted")
	}
}
