package evscheck

import "testing"

// baseCrossLog builds a clean three-node merged history over two rings:
// every node emitted the same five cross-shard messages at the same merge
// turns. Message "c" was ordered on both rings (Shards = 2).
func baseCrossLog() CrossLog {
	l := CrossLog{}
	for _, name := range []string{"1", "2", "3"} {
		nl := l.Node(name)
		nl.Deliver("a", 0, 0, 1)
		nl.Deliver("b", 1, 1, 1)
		nl.Deliver("c", 1, 3, 2)
		nl.Deliver("d", 0, 4, 1)
		nl.Deliver("e", 1, 5, 1)
	}
	return l
}

func TestCrossCleanLogPasses(t *testing.T) {
	l := baseCrossLog()
	if vs := CrossCheck(l, CrossOptions{}); len(vs) != 0 {
		t.Fatalf("clean log flagged: %v", vs)
	}
	if vs := CrossCheck(l, CrossOptions{Converged: true}); len(vs) != 0 {
		t.Fatalf("clean converged log flagged: %v", vs)
	}
}

// TestCrossSwappedDeliveriesDetected is the mutation self-test of the
// acceptance criteria: swapping two cross-shard deliveries on one node
// must be flagged. The swap moves the keys but keeps the positional turns
// (the node's buggy merge really emitted them at those turns), which is
// what a broken interleave looks like on the wire.
func TestCrossSwappedDeliveriesDetected(t *testing.T) {
	l := baseCrossLog()
	ds := l["2"].Deliveries
	ds[1].Key, ds[3].Key = ds[3].Key, ds[1].Key // node 2 swaps "b" and "d"

	vs := CrossCheck(l, CrossOptions{Converged: true})
	expectViolation(t, vs, "cross-order")
	expectViolation(t, vs, "cross-turn-agreement")
	expectViolation(t, vs, "cross-completeness")
}

// TestCrossSwappedWholeEntriesDetected swaps the full delivery records —
// keys and turns travel together — which breaks per-node turn
// monotonicity and is caught without any convergence assumption.
func TestCrossSwappedWholeEntriesDetected(t *testing.T) {
	l := baseCrossLog()
	ds := l["2"].Deliveries
	ds[1], ds[3] = ds[3], ds[1]
	expectViolation(t, CrossCheck(l, CrossOptions{}), "cross-turn-order")
}

func TestCrossDuplicateDetected(t *testing.T) {
	l := baseCrossLog()
	nl := l["1"]
	// A multi-shard message emitted once per copy instead of once total.
	nl.Deliver("c", 0, 6, 2)
	expectViolation(t, CrossCheck(l, CrossOptions{}), "cross-duplicate")
}

func TestCrossTurnRegressionDetected(t *testing.T) {
	l := baseCrossLog()
	l["3"].Deliver("f", 0, 2, 1) // turn 2 after turn 5
	expectViolation(t, CrossCheck(l, CrossOptions{}), "cross-turn-order")
}

func TestCrossMissingDeliveryConvergedOnly(t *testing.T) {
	l := baseCrossLog()
	nl := l["2"]
	nl.Deliveries = nl.Deliveries[:4] // node 2 never emitted "e"
	if vs := CrossCheck(l, CrossOptions{}); len(vs) != 0 {
		t.Fatalf("incomplete log flagged without convergence: %v", vs)
	}
	expectViolation(t, CrossCheck(l, CrossOptions{Converged: true}), "cross-completeness")
}

func TestCrossCrashedNodeWaivesCompleteness(t *testing.T) {
	l := baseCrossLog()
	nl := l["2"]
	nl.Deliveries = nl.Deliveries[:4]
	nl.Crashed = true
	if vs := CrossCheck(l, CrossOptions{Converged: true}); len(vs) != 0 {
		t.Fatalf("crashed node's shorter stream flagged: %v", vs)
	}
}

// TestCrossPartitionDivergenceTolerated models an EVS partition: the two
// sides deliver disjoint suffixes with conflicting turns. Without the
// convergence assertion that is legitimate and must pass.
func TestCrossPartitionDivergenceTolerated(t *testing.T) {
	l := CrossLog{}
	for _, name := range []string{"1", "2"} {
		nl := l.Node(name)
		nl.Deliver("a", 0, 0, 1)
		nl.Deliver("b", 1, 1, 1)
	}
	// Partition: side 1 orders x then y, side 2 only z — different turns
	// for different messages.
	l["1"].Deliver("x", 0, 2, 1)
	l["1"].Deliver("y", 1, 3, 1)
	l["2"].Deliver("z", 0, 2, 1)
	if vs := CrossCheck(l, CrossOptions{}); len(vs) != 0 {
		t.Fatalf("partition divergence flagged: %v", vs)
	}
	// The same history asserted converged is a contradiction.
	vs := CrossCheck(l, CrossOptions{Converged: true})
	expectViolation(t, vs, "cross-completeness")
}

// TestCrossOrderScopedToAgreedTurns: outside converged runs the pairwise
// order check must only bind messages whose merge turns both nodes agree
// on. A full reordering whose turns all disagree is exactly what partition
// divergence produces — tolerated without the convergence assertion,
// flagged with it.
func TestCrossOrderScopedToAgreedTurns(t *testing.T) {
	l := CrossLog{}
	a := l.Node("1")
	a.Deliver("p", 0, 0, 1)
	a.Deliver("m", 0, 2, 1)
	a.Deliver("q", 0, 4, 1)
	b := l.Node("2")
	b.Deliver("q", 0, 1, 1)
	b.Deliver("m", 0, 3, 1)
	b.Deliver("p", 0, 5, 1)
	// Every common message carries different turns on the two nodes, so
	// the agreed subsequence is empty: nothing to flag.
	if vs := CrossCheck(l, CrossOptions{}); len(vs) != 0 {
		t.Fatalf("turn-disagreeing reorder flagged without convergence: %v", vs)
	}
	// Asserted converged, the same reversal must be caught as an order
	// violation (not just as turn disagreement).
	expectViolation(t, CrossCheck(l, CrossOptions{Converged: true}), "cross-order")
}
