// Package evscheck verifies Extended Virtual Synchrony conformance over
// the per-node delivery logs of a whole cluster run, independent of the
// substrate that produced them: the virtual-time harness, the
// discrete-event simulator, the in-memory daemon stack, or a live
// deployment. Every chaos campaign ends with the same machine-checked
// verdict.
//
// The checked axioms, per node and across nodes:
//
//  1. Configuration sequencing: messages are delivered only after a first
//     regular configuration; at most one transitional configuration
//     between regular ones.
//  2. No duplicate delivery of a message at a node (within one
//     incarnation; a restarted process is a new log).
//  3. Agreement: nodes that install the same regular configuration
//     deliver prefix-consistent message sequences within it, and nodes
//     sharing the same transitional membership extend that consistency
//     through the transitional configuration.
//  4. Per-sender FIFO over each node's whole history.
//  5. Virtual synchrony: nodes that move together from the same regular
//     configuration to the same next regular configuration deliver the
//     identical message sequence in between.
//  6. Safe-delivery stability: a Safe message delivered in a regular
//     configuration C must be delivered by every member of C that
//     completed C (installed a later regular configuration, or — in a
//     quiescent run — survived to the end of the log).
package evscheck

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"accelring/internal/wire"
)

// Event is one entry of a node's history: a message delivery or a
// configuration install.
type Event struct {
	// Config marks a configuration event; the delivery fields are then
	// unused and vice versa.
	Config bool

	// Key identifies the message globally (e.g. its payload, or a
	// sender/counter pair). Two deliveries with equal keys are deliveries
	// of the same message.
	Key string
	// Sender is the message initiator; zero disables the FIFO check for
	// this event.
	Sender wire.ParticipantID
	// SenderSeq is the sender-local submission counter; zero disables the
	// FIFO check for this event. It must be strictly increasing per
	// sender (gaps are fine: a submission may legitimately be lost with
	// its crashed sender).
	SenderSeq uint64
	// Service is the delivery guarantee the message was sent with.
	Service wire.Service

	// Ring identifies the installed configuration.
	Ring wire.RingID
	// Members is the configuration's member set.
	Members []wire.ParticipantID
	// Transitional marks a transitional configuration.
	Transitional bool
}

// NodeLog is one node incarnation's complete, ordered history.
type NodeLog struct {
	Events []Event
	// Crashed marks an incarnation that was stopped mid-run (crash or
	// shutdown): end-of-log completeness guarantees are waived for it.
	Crashed bool
}

// Deliver appends a message delivery.
func (nl *NodeLog) Deliver(key string, sender wire.ParticipantID, senderSeq uint64, svc wire.Service) {
	nl.Events = append(nl.Events, Event{Key: key, Sender: sender, SenderSeq: senderSeq, Service: svc})
}

// Install appends a configuration event.
func (nl *NodeLog) Install(ring wire.RingID, members []wire.ParticipantID, transitional bool) {
	ms := make([]wire.ParticipantID, len(members))
	copy(ms, members)
	nl.Events = append(nl.Events, Event{Config: true, Ring: ring, Members: ms, Transitional: transitional})
}

// Log maps a node label (participant ID, plus an incarnation suffix after
// a restart) to that incarnation's history.
type Log map[string]*NodeLog

// Node returns the named log, creating it if needed.
func (l Log) Node(name string) *NodeLog {
	nl, ok := l[name]
	if !ok {
		nl = &NodeLog{}
		l[name] = nl
	}
	return nl
}

// Profile selects which axioms a run is held to. Different ordering
// engines make different guarantees; checking an engine against axioms it
// never promised produces noise, not verdicts.
type Profile int

const (
	// ProfileEVS checks the full Extended Virtual Synchrony axiom set —
	// the Accelerated Ring engine's contract. The zero value.
	ProfileEVS Profile = iota
	// ProfileTotalOrder checks the Ring Paxos engine's contract: total
	// order and per-sender FIFO, without membership-coupled guarantees.
	//
	// Kept as-is: configuration sequencing, no-duplicate, FIFO.
	// Weakened: agreement becomes pairwise relative-order consistency
	// over the keys two nodes both delivered (a learner may start
	// mid-stream after a fast-forward, so prefix alignment is not
	// promised); quiescent completeness becomes aligned-suffix equality
	// (every non-crashed node ends on the identical final stretch of the
	// global order).
	// Waived: virtual synchrony (views are not delivery-synchronized
	// barriers — the engine keeps delivering across view changes) and
	// safe-stability (Safe is ordered but not stability-gated; see
	// docs/PROTOCOL.md).
	ProfileTotalOrder
)

// Options tunes the strictness of Check.
type Options struct {
	// Quiescent asserts the run ended with no traffic in flight: every
	// non-crashed node has delivered everything it ever will. Enables
	// end-of-log completeness checks (final-epoch set equality and safe
	// stability against nodes still in their final configuration).
	Quiescent bool
	// Profile selects the axiom set (default ProfileEVS).
	Profile Profile
}

// Violation is one detected axiom violation.
type Violation struct {
	// Axiom names the violated guarantee.
	Axiom string
	// Node is the offending node label (or "a|b" for pairwise axioms).
	Node string
	// Detail is a human-readable description.
	Detail string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("[%s] node %s: %s", v.Axiom, v.Node, v.Detail)
}

// segment is the stretch of one node's history within one regular
// configuration: the deliveries in the regular part, then (optionally) a
// transitional configuration and its deliveries.
type segment struct {
	ring    wire.RingID
	members []wire.ParticipantID

	regular []Event
	// hasTrans marks that a transitional configuration was installed.
	hasTrans     bool
	transMembers []wire.ParticipantID
	trans        []Event

	// next is the ring installed after this segment, nil for the last
	// segment of a log.
	next *wire.RingID
	last bool
}

// keys returns the keys of all deliveries in the segment, regular then
// transitional.
func (s *segment) keys() []string {
	out := make([]string, 0, len(s.regular)+len(s.trans))
	for _, e := range s.regular {
		out = append(out, e.Key)
	}
	for _, e := range s.trans {
		out = append(out, e.Key)
	}
	return out
}

// parse splits a node's history into segments, reporting per-node axiom
// violations (sequencing, duplicates, FIFO) as it goes.
func parse(name string, nl *NodeLog, report func(axiom, detail string)) []*segment {
	var segs []*segment
	var cur *segment
	seen := make(map[string]bool)
	lastSenderSeq := make(map[wire.ParticipantID]uint64)
	for _, e := range nl.Events {
		if e.Config {
			if e.Transitional {
				if cur == nil {
					report("config-sequencing", "transitional configuration before any regular one")
					continue
				}
				if cur.hasTrans {
					report("config-sequencing", fmt.Sprintf(
						"two transitional configurations after ring %v without a regular one", cur.ring))
					continue
				}
				cur.hasTrans = true
				cur.transMembers = e.Members
				continue
			}
			if cur != nil {
				id := e.Ring
				cur.next = &id
			}
			cur = &segment{ring: e.Ring, members: e.Members}
			segs = append(segs, cur)
			continue
		}
		if cur == nil {
			report("config-sequencing", fmt.Sprintf("delivery of %q before any configuration", e.Key))
			continue
		}
		if seen[e.Key] {
			report("no-duplicate", fmt.Sprintf("message %q delivered twice", e.Key))
		}
		seen[e.Key] = true
		if e.Sender != 0 && e.SenderSeq != 0 {
			if prev, ok := lastSenderSeq[e.Sender]; ok && e.SenderSeq <= prev {
				report("fifo", fmt.Sprintf("sender %s: seq %d delivered after %d",
					e.Sender, e.SenderSeq, prev))
			}
			lastSenderSeq[e.Sender] = e.SenderSeq
		}
		if cur.hasTrans {
			cur.trans = append(cur.trans, e)
		} else {
			cur.regular = append(cur.regular, e)
		}
	}
	if cur != nil {
		cur.last = true
	}
	return segs
}

// Check verifies the EVS axioms over the whole cluster's logs and returns
// every violation found, in a deterministic order. An empty result is a
// clean verdict.
func Check(l Log, opt Options) []Violation {
	var vs []Violation
	names := make([]string, 0, len(l))
	for name := range l {
		names = append(names, name)
	}
	sort.Strings(names)

	segsOf := make(map[string][]*segment, len(l))
	for _, name := range names {
		n := name
		segsOf[n] = parse(n, l[n], func(axiom, detail string) {
			vs = append(vs, Violation{Axiom: axiom, Node: n, Detail: detail})
		})
	}

	if opt.Profile == ProfileTotalOrder {
		for i, a := range names {
			for _, b := range names[i+1:] {
				vs = append(vs, checkPairTotalOrder(a, b, l[a], l[b], opt)...)
			}
		}
		return vs
	}

	for i, a := range names {
		for _, b := range names[i+1:] {
			vs = append(vs, checkPair(a, b, segsOf[a], segsOf[b], l[a], l[b], opt)...)
		}
	}
	vs = append(vs, checkSafeStability(names, segsOf, l, opt)...)
	return vs
}

// deliveryKeys flattens a log to its delivered message keys in order.
func deliveryKeys(nl *NodeLog) []string {
	var out []string
	for _, e := range nl.Events {
		if !e.Config {
			out = append(out, e.Key)
		}
	}
	return out
}

// checkPairTotalOrder applies ProfileTotalOrder's pairwise axioms.
func checkPairTotalOrder(a, b string, la, lb *NodeLog, opt Options) []Violation {
	var vs []Violation
	pair := a + "|" + b
	ka, kb := deliveryKeys(la), deliveryKeys(lb)

	// Agreement: the keys both nodes delivered appear in the same
	// relative order at each.
	pos := make(map[string]int, len(ka))
	for i, k := range ka {
		pos[k] = i
	}
	last := -1
	for _, k := range kb {
		pa, ok := pos[k]
		if !ok {
			continue
		}
		if pa <= last {
			vs = append(vs, Violation{Axiom: "agreement", Node: pair, Detail: fmt.Sprintf(
				"common message %q delivered out of relative order", k)})
			break
		}
		last = pa
	}

	// Quiescent completeness: every non-crashed node ends on the identical
	// final stretch of the global order (a late-started incarnation may
	// miss a prefix, never a suffix).
	if opt.Quiescent && !la.Crashed && !lb.Crashed {
		n := len(ka)
		if len(kb) < n {
			n = len(kb)
		}
		for i := 1; i <= n; i++ {
			if ka[len(ka)-i] != kb[len(kb)-i] {
				vs = append(vs, Violation{Axiom: "completeness", Node: pair, Detail: fmt.Sprintf(
					"aligned suffixes diverge %d from the end: %q vs %q",
					i, ka[len(ka)-i], kb[len(kb)-i])})
				break
			}
		}
	}
	return vs
}

// checkPair applies the pairwise axioms (agreement, virtual synchrony,
// quiescent completeness) to two nodes' segment lists.
func checkPair(a, b string, sa, sb []*segment, la, lb *NodeLog, opt Options) []Violation {
	var vs []Violation
	pair := a + "|" + b
	for _, ea := range sa {
		for _, eb := range sb {
			if ea.ring != eb.ring {
				continue
			}
			// Agreement: prefix consistency of the regular parts.
			if v, ok := firstDivergence(ea.regular, eb.regular); !ok {
				vs = append(vs, Violation{Axiom: "agreement", Node: pair, Detail: fmt.Sprintf(
					"ring %v: regular deliveries diverge at %d: %q vs %q",
					ea.ring, v, keyAt(ea.regular, v), keyAt(eb.regular, v))})
			} else if ea.hasTrans && eb.hasTrans && idSetEqual(ea.transMembers, eb.transMembers) {
				// Same transitional membership: consistency extends
				// through the transitional configuration.
				if v, ok := firstDivergence(concat(ea), concat(eb)); !ok {
					vs = append(vs, Violation{Axiom: "agreement", Node: pair, Detail: fmt.Sprintf(
						"ring %v (transitional): deliveries diverge at %d: %q vs %q",
						ea.ring, v, keyAt(concat(ea), v), keyAt(concat(eb), v))})
				}
			}
			// Virtual synchrony: both moved to the same next regular
			// configuration — identical sequences in between.
			if ea.next != nil && eb.next != nil && *ea.next == *eb.next {
				if !sliceEqual(ea.keys(), eb.keys()) {
					vs = append(vs, Violation{Axiom: "virtual-synchrony", Node: pair, Detail: fmt.Sprintf(
						"ring %v → %v: delivered %d vs %d messages or different sequences",
						ea.ring, *ea.next, len(ea.keys()), len(eb.keys()))})
				}
			}
			// Quiescent completeness: both ended the run in this
			// configuration with nothing in flight — identical sequences.
			if opt.Quiescent && ea.last && eb.last && !la.Crashed && !lb.Crashed {
				if !sliceEqual(ea.keys(), eb.keys()) {
					vs = append(vs, Violation{Axiom: "completeness", Node: pair, Detail: fmt.Sprintf(
						"final ring %v: delivered %d vs %d messages or different sequences",
						ea.ring, len(ea.keys()), len(eb.keys()))})
				}
			}
		}
	}
	return vs
}

// checkSafeStability verifies axiom 6: Safe messages delivered in a
// regular configuration reached every member that completed it.
func checkSafeStability(names []string, segsOf map[string][]*segment, l Log, opt Options) []Violation {
	var vs []Violation
	for _, a := range names {
		for _, sa := range segsOf[a] {
			for _, e := range sa.regular {
				if !e.Service.RequiresSafe() {
					continue
				}
				for _, b := range names {
					if b == a {
						continue
					}
					for _, sb := range segsOf[b] {
						if sb.ring != sa.ring {
							continue
						}
						completed := sb.next != nil ||
							(opt.Quiescent && sb.last && !l[b].Crashed)
						if !completed {
							continue
						}
						if !containsKey(sb, e.Key) {
							vs = append(vs, Violation{Axiom: "safe-stability", Node: b, Detail: fmt.Sprintf(
								"ring %v: safe message %q delivered by %s but missing at %s, which completed the configuration",
								sa.ring, e.Key, a, b)})
						}
					}
				}
			}
		}
	}
	return vs
}

// CheckUniform checks logs from a run with a single, never-changing
// configuration whose install events were not captured (e.g. client-side
// delivery streams): it prepends a synthetic shared regular configuration
// to every log and runs Check.
func CheckUniform(l Log, opt Options) []Violation {
	synthetic := Log{}
	ring := wire.RingID{Rep: 0, Seq: 1}
	for name, nl := range l {
		cp := &NodeLog{Crashed: nl.Crashed, Events: make([]Event, 0, len(nl.Events)+1)}
		cp.Events = append(cp.Events, Event{Config: true, Ring: ring})
		cp.Events = append(cp.Events, nl.Events...)
		synthetic[name] = cp
	}
	return Check(synthetic, opt)
}

// Digest returns a hex digest of the log's canonical serialization. Two
// runs with identical histories (same nodes, same events, same order)
// have equal digests — the chaos tests use this to prove a seed replays
// the identical event trace.
func Digest(l Log) string {
	names := make([]string, 0, len(l))
	for name := range l {
		names = append(names, name)
	}
	sort.Strings(names)
	h := sha256.New()
	for _, name := range names {
		nl := l[name]
		fmt.Fprintf(h, "node %s crashed=%v\n", name, nl.Crashed)
		for _, e := range nl.Events {
			if e.Config {
				ms := make([]string, len(e.Members))
				for i, m := range e.Members {
					ms[i] = m.String()
				}
				fmt.Fprintf(h, "C %v trans=%v members=%s\n", e.Ring, e.Transitional, strings.Join(ms, ","))
			} else {
				fmt.Fprintf(h, "D %q %d %d %d\n", e.Key, e.Sender, e.SenderSeq, e.Service)
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// firstDivergence compares the Keys of two event sequences up to the
// shorter length; it returns (index, false) at the first mismatch and
// (0, true) if they are prefix-consistent.
func firstDivergence(a, b []Event) (int, bool) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i].Key != b[i].Key {
			return i, false
		}
	}
	return 0, true
}

func keyAt(evs []Event, i int) string {
	if i < len(evs) {
		return evs[i].Key
	}
	return "<none>"
}

func concat(s *segment) []Event {
	out := make([]Event, 0, len(s.regular)+len(s.trans))
	out = append(out, s.regular...)
	out = append(out, s.trans...)
	return out
}

func containsKey(s *segment, key string) bool {
	for _, e := range s.regular {
		if e.Key == key {
			return true
		}
	}
	for _, e := range s.trans {
		if e.Key == key {
			return true
		}
	}
	return false
}

func sliceEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// idSetEqual compares two member lists as sets.
func idSetEqual(a, b []wire.ParticipantID) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[wire.ParticipantID]bool, len(a))
	for _, id := range a {
		set[id] = true
	}
	for _, id := range b {
		if !set[id] {
			return false
		}
	}
	return true
}
