package evscheck

import (
	"fmt"
	"sort"
)

// Cross-ring conformance: the multiring merge layer claims that the
// deterministic round-robin-with-skip interleave of per-ring total orders
// is itself a total order — any two nodes deliver any two cross-shard
// messages in the same relative order. This file checks that claim over
// the merged delivery streams of a whole cluster run, complementing the
// per-ring EVS axioms (which are checked, unchanged, on each ring's
// stream by Check).
//
// The checkable invariant rests on merge turns. The merger assigns every
// emitted message the global round-robin turn it was consumed at, which is
// a pure function of (ring index, cumulative unit count on that ring) —
// never of arrival timing. Two nodes that consumed identical per-ring
// streams therefore assign identical turns, and identical merged orders.
// Under partitions the per-ring streams themselves may legitimately
// diverge (EVS permits different configurations to deliver different
// sets), so the unconditional cross-node checks are scoped to what must
// hold regardless, and CrossOptions.Converged arms the strict ones.
//
// Checked axioms:
//
//  1. cross-duplicate: a node's merged stream emits each message at most
//     once (multi-shard copies collapse into one emission).
//  2. cross-turn-order: merge turns are strictly increasing within one
//     node's merged stream — emission order is turn order.
//  3. cross-order: two nodes that both delivered messages x and y, and
//     agree on both messages' merge turns, deliver them in the same
//     relative order. With Converged, the turn-agreement precondition is
//     dropped: relative order must match for every common pair.
//  4. cross-turn-agreement (Converged only): a message common to two
//     nodes carries the same merge turn at both.
//  5. cross-completeness (Converged only): non-crashed nodes emitted
//     identical merged streams.
type CrossDelivery struct {
	// Key identifies the message globally.
	Key string
	// Ring is the ring whose copy completed the message.
	Ring int
	// Turn is the global merge turn at emission.
	Turn uint64
	// Shards is the number of rings the message was ordered on.
	Shards int
}

// CrossNodeLog is one node's complete merged delivery stream.
type CrossNodeLog struct {
	Deliveries []CrossDelivery
	// Crashed marks a node stopped mid-run: completeness guarantees are
	// waived for it.
	Crashed bool
}

// Deliver appends one merged delivery.
func (nl *CrossNodeLog) Deliver(key string, ring int, turn uint64, shards int) {
	nl.Deliveries = append(nl.Deliveries, CrossDelivery{Key: key, Ring: ring, Turn: turn, Shards: shards})
}

// CrossLog maps a node label to its merged stream.
type CrossLog map[string]*CrossNodeLog

// Node returns the named log, creating it if needed.
func (l CrossLog) Node(name string) *CrossNodeLog {
	nl, ok := l[name]
	if !ok {
		nl = &CrossNodeLog{}
		l[name] = nl
	}
	return nl
}

// CrossOptions tunes the strictness of CrossCheck.
type CrossOptions struct {
	// Converged asserts every node consumed identical per-ring streams:
	// no partition divergence and the run ended quiescent. Arms the
	// turn-agreement and completeness axioms and makes the pairwise order
	// check unconditional.
	Converged bool
}

// CrossCheck verifies the cross-ring total-order axioms over the merged
// streams of a whole cluster and returns every violation found, in a
// deterministic order. An empty result is a clean verdict.
func CrossCheck(l CrossLog, opt CrossOptions) []Violation {
	var vs []Violation
	names := make([]string, 0, len(l))
	for name := range l {
		names = append(names, name)
	}
	sort.Strings(names)

	// Per-node: duplicates and turn monotonicity.
	pos := make(map[string]map[string]int, len(l))      // node → key → index
	turns := make(map[string]map[string]uint64, len(l)) // node → key → turn
	for _, name := range names {
		nl := l[name]
		p := make(map[string]int, len(nl.Deliveries))
		tn := make(map[string]uint64, len(nl.Deliveries))
		lastTurn := uint64(0)
		haveLast := false
		for i, d := range nl.Deliveries {
			if _, dup := p[d.Key]; dup {
				vs = append(vs, Violation{Axiom: "cross-duplicate", Node: name, Detail: fmt.Sprintf(
					"message %q emitted twice in the merged stream", d.Key)})
			} else {
				p[d.Key] = i
				tn[d.Key] = d.Turn
			}
			if haveLast && d.Turn <= lastTurn {
				vs = append(vs, Violation{Axiom: "cross-turn-order", Node: name, Detail: fmt.Sprintf(
					"message %q at merge turn %d emitted after turn %d", d.Key, d.Turn, lastTurn)})
			}
			lastTurn, haveLast = d.Turn, true
		}
		pos[name] = p
		turns[name] = tn
	}

	// Pairwise: relative order (and, when converged, turn agreement and
	// completeness).
	for i, a := range names {
		for _, b := range names[i+1:] {
			vs = append(vs, crossCheckPair(a, b, l, pos, turns, opt)...)
		}
	}
	return vs
}

// crossCheckPair applies the pairwise cross-ring axioms to two nodes.
func crossCheckPair(a, b string, l CrossLog, pos map[string]map[string]int, turns map[string]map[string]uint64, opt CrossOptions) []Violation {
	var vs []Violation
	pair := a + "|" + b
	pa, pb := pos[a], pos[b]
	ta, tb := turns[a], turns[b]

	// Common keys in a's emission order.
	common := make([]string, 0, len(pa))
	for k := range pa {
		if _, ok := pb[k]; ok {
			common = append(common, k)
		}
	}
	sort.Slice(common, func(i, j int) bool { return pa[common[i]] < pa[common[j]] })

	if opt.Converged {
		for _, k := range common {
			if ta[k] != tb[k] {
				vs = append(vs, Violation{Axiom: "cross-turn-agreement", Node: pair, Detail: fmt.Sprintf(
					"message %q at merge turn %d on %s but %d on %s", k, ta[k], a, tb[k], b)})
			}
		}
	}

	// Relative order: walking the common messages in a's order, b's
	// positions must be increasing. Outside converged runs the check is
	// scoped to the subsequence whose merge turns both nodes agree on —
	// per-ring divergence legitimately reorders the rest.
	ordered := common
	if !opt.Converged {
		ordered = make([]string, 0, len(common))
		for _, k := range common {
			if ta[k] == tb[k] {
				ordered = append(ordered, k)
			}
		}
	}
	prev := ""
	for _, k := range ordered {
		if prev != "" && pb[k] < pb[prev] {
			vs = append(vs, Violation{Axiom: "cross-order", Node: pair, Detail: fmt.Sprintf(
				"messages %q and %q delivered in opposite orders", prev, k)})
		}
		prev = k
	}

	if opt.Converged && !l[a].Crashed && !l[b].Crashed {
		da, db := l[a].Deliveries, l[b].Deliveries
		if len(da) != len(db) {
			vs = append(vs, Violation{Axiom: "cross-completeness", Node: pair, Detail: fmt.Sprintf(
				"merged streams have %d vs %d deliveries", len(da), len(db))})
		} else {
			for i := range da {
				if da[i].Key != db[i].Key {
					vs = append(vs, Violation{Axiom: "cross-completeness", Node: pair, Detail: fmt.Sprintf(
						"merged streams diverge at %d: %q vs %q", i, da[i].Key, db[i].Key)})
					break
				}
			}
		}
	}
	return vs
}
