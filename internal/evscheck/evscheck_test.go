package evscheck

import (
	"strings"
	"testing"

	"accelring/internal/wire"
)

// baseLog builds a clean three-node history: all deliver m1..m4 in ring
// C1, node 3 crashes, nodes 1 and 2 move through a transitional
// configuration into ring C2 and deliver m5.
func baseLog() Log {
	c1 := wire.RingID{Rep: 1, Seq: 4}
	c2 := wire.RingID{Rep: 1, Seq: 8}
	all := []wire.ParticipantID{1, 2, 3}
	survivors := []wire.ParticipantID{1, 2}

	l := Log{}
	for _, name := range []string{"1", "2", "3"} {
		nl := l.Node(name)
		nl.Install(c1, all, false)
		nl.Deliver("m1", 1, 1, wire.ServiceAgreed)
		nl.Deliver("m2", 2, 1, wire.ServiceAgreed)
		nl.Deliver("m3", 1, 2, wire.ServiceSafe)
		nl.Deliver("m4", 3, 1, wire.ServiceAgreed)
	}
	l["3"].Crashed = true
	for _, name := range []string{"1", "2"} {
		nl := l[name]
		nl.Install(c1, survivors, true)
		nl.Deliver("m4b", 2, 2, wire.ServiceAgreed)
		nl.Install(c2, survivors, false)
		nl.Deliver("m5", 1, 3, wire.ServiceAgreed)
	}
	return l
}

func expectViolation(t *testing.T, vs []Violation, axiom string) {
	t.Helper()
	for _, v := range vs {
		if v.Axiom == axiom {
			return
		}
	}
	t.Fatalf("expected a %q violation, got %v", axiom, vs)
}

func TestCleanLogPasses(t *testing.T) {
	if vs := Check(baseLog(), Options{Quiescent: true}); len(vs) != 0 {
		t.Fatalf("clean log flagged: %v", vs)
	}
}

func TestSwappedAgreedPairDetected(t *testing.T) {
	// The mutation self-test of the acceptance criteria: one deliberately
	// swapped pair of agreed messages at one node must be a violation.
	l := baseLog()
	evs := l["2"].Events
	evs[1], evs[2] = evs[2], evs[1] // swap m1 and m2 at node 2
	expectViolation(t, Check(l, Options{}), "agreement")
}

func TestViolatedSafeDeliveryBoundDetected(t *testing.T) {
	// m3 is Safe and node 2 completed C1 (it installed C2), so omitting
	// m3 from node 2's history violates safe-delivery stability.
	l := baseLog()
	nl := l["2"]
	var kept []Event
	for _, e := range nl.Events {
		if e.Key == "m3" {
			continue
		}
		kept = append(kept, e)
	}
	nl.Events = kept
	expectViolation(t, Check(l, Options{}), "safe-stability")
}

func TestDuplicateDeliveryDetected(t *testing.T) {
	l := baseLog()
	l["1"].Deliver("m5", 1, 3, wire.ServiceAgreed) // second delivery of m5
	expectViolation(t, Check(l, Options{}), "no-duplicate")
}

func TestFIFOViolationDetected(t *testing.T) {
	l := baseLog()
	// Sender 1's counter goes 1,2,3 at node 1; append a stale 2.
	l["1"].Deliver("m6", 1, 2, wire.ServiceAgreed)
	expectViolation(t, Check(l, Options{}), "fifo")
}

func TestVirtualSynchronyViolationDetected(t *testing.T) {
	// Nodes 1 and 2 both move C1 → C2, so their C1 histories must be
	// identical; dropping node 2's last transitional delivery (m4b) is a
	// virtual-synchrony violation even though prefixes stay consistent.
	l := baseLog()
	nl := l["2"]
	var kept []Event
	for _, e := range nl.Events {
		if e.Key == "m4b" {
			continue
		}
		kept = append(kept, e)
	}
	nl.Events = kept
	expectViolation(t, Check(l, Options{}), "virtual-synchrony")
}

func TestQuiescentCompletenessDetected(t *testing.T) {
	// Node 2 never delivers m5 but shares node 1's final configuration: a
	// quiescent run must flag the missing tail, a non-quiescent run must
	// tolerate it (m5 could still be in flight).
	l := baseLog()
	nl := l["2"]
	nl.Events = nl.Events[:len(nl.Events)-1]
	if vs := Check(l, Options{}); len(vs) != 0 {
		t.Fatalf("in-flight tail flagged without Quiescent: %v", vs)
	}
	expectViolation(t, Check(l, Options{Quiescent: true}), "completeness")
}

func TestCrashWaivesEndOfLogGuarantees(t *testing.T) {
	// Node 3 is crashed: its shorter history must not trip completeness
	// or safe-stability even in a quiescent run.
	l := baseLog()
	if vs := Check(l, Options{Quiescent: true}); len(vs) != 0 {
		t.Fatalf("crashed node flagged: %v", vs)
	}
}

func TestDeliveryBeforeConfigDetected(t *testing.T) {
	l := Log{}
	l.Node("1").Deliver("m1", 1, 1, wire.ServiceAgreed)
	expectViolation(t, Check(l, Options{}), "config-sequencing")
}

func TestTwoTransitionalsDetected(t *testing.T) {
	l := Log{}
	nl := l.Node("1")
	ring := wire.RingID{Rep: 1, Seq: 4}
	nl.Install(ring, []wire.ParticipantID{1, 2}, false)
	nl.Install(ring, []wire.ParticipantID{1}, true)
	nl.Install(ring, []wire.ParticipantID{1}, true)
	expectViolation(t, Check(l, Options{}), "config-sequencing")
}

func TestCheckUniform(t *testing.T) {
	l := Log{}
	for _, name := range []string{"a", "b"} {
		nl := l.Node(name)
		nl.Deliver("x", 1, 1, wire.ServiceAgreed)
		nl.Deliver("y", 2, 1, wire.ServiceAgreed)
	}
	if vs := CheckUniform(l, Options{Quiescent: true}); len(vs) != 0 {
		t.Fatalf("clean uniform log flagged: %v", vs)
	}
	evs := l["b"].Events
	evs[0], evs[1] = evs[1], evs[0]
	expectViolation(t, CheckUniform(l, Options{}), "agreement")
}

func TestDigestDetectsTraceDifferences(t *testing.T) {
	a, b := baseLog(), baseLog()
	if Digest(a) != Digest(b) {
		t.Fatal("identical logs digest differently")
	}
	b["1"].Deliver("extra", 2, 9, wire.ServiceAgreed)
	if Digest(a) == Digest(b) {
		t.Fatal("different logs digest equal")
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Axiom: "agreement", Node: "1|2", Detail: "diverge"}
	if s := v.String(); !strings.Contains(s, "agreement") || !strings.Contains(s, "1|2") {
		t.Fatalf("uninformative violation string %q", s)
	}
}

// paxosLog builds a clean total-order-profile history: a static ring, one
// node starting mid-stream (fast-forwarded learner), everyone ending on
// the same suffix.
func paxosLog() Log {
	ring := wire.RingID{Rep: 1, Seq: 4}
	all := []wire.ParticipantID{1, 2, 3}
	l := Log{}
	for _, name := range []string{"1", "2"} {
		nl := l.Node(name)
		nl.Install(ring, all, false)
		nl.Deliver("m1", 1, 1, wire.ServiceAgreed)
		nl.Deliver("m2", 2, 1, wire.ServiceAgreed)
		nl.Deliver("m3", 1, 2, wire.ServiceAgreed)
		nl.Deliver("m4", 3, 1, wire.ServiceAgreed)
	}
	// Node 3 restarted and fast-forwarded past m1/m2: a prefix miss the
	// profile tolerates.
	nl := l.Node("3")
	nl.Install(ring, all, false)
	nl.Deliver("m3", 1, 2, wire.ServiceAgreed)
	nl.Deliver("m4", 3, 1, wire.ServiceAgreed)
	return l
}

func TestTotalOrderProfileCleanLogPasses(t *testing.T) {
	opt := Options{Quiescent: true, Profile: ProfileTotalOrder}
	if vs := Check(paxosLog(), opt); len(vs) != 0 {
		t.Fatalf("clean total-order log flagged: %v", vs)
	}
	// The same log fails the full EVS profile (node 3's prefix miss is a
	// completeness violation there) — the waiver is what the profile is
	// for.
	expectViolation(t, Check(paxosLog(), Options{Quiescent: true}), "completeness")
}

func TestTotalOrderProfileRelativeOrderDetected(t *testing.T) {
	// Mutation self-test: swapping two common messages at one node must be
	// an agreement violation even under the weakened profile.
	l := paxosLog()
	evs := l["2"].Events
	evs[1], evs[2] = evs[2], evs[1] // swap m1 and m2 at node 2
	expectViolation(t, Check(l, Options{Profile: ProfileTotalOrder}), "agreement")
}

func TestTotalOrderProfileSuffixCompletenessDetected(t *testing.T) {
	// A non-crashed node missing the tail of the order (m4) is flagged in
	// a quiescent run and tolerated otherwise.
	l := paxosLog()
	nl := l["2"]
	nl.Events = nl.Events[:len(nl.Events)-1]
	if vs := Check(l, Options{Profile: ProfileTotalOrder}); len(vs) != 0 {
		t.Fatalf("in-flight tail flagged without Quiescent: %v", vs)
	}
	expectViolation(t, Check(l, Options{Quiescent: true, Profile: ProfileTotalOrder}), "completeness")
	// A crashed incarnation's short log is waived.
	l["2"].Crashed = true
	if vs := Check(l, Options{Quiescent: true, Profile: ProfileTotalOrder}); len(vs) != 0 {
		t.Fatalf("crashed node flagged: %v", vs)
	}
}

func TestTotalOrderProfileKeepsPerNodeAxioms(t *testing.T) {
	l := paxosLog()
	l["1"].Deliver("m3", 1, 2, wire.ServiceAgreed) // duplicate
	expectViolation(t, Check(l, Options{Profile: ProfileTotalOrder}), "no-duplicate")

	l = paxosLog()
	l["1"].Deliver("m9", 1, 1, wire.ServiceAgreed) // stale sender counter
	expectViolation(t, Check(l, Options{Profile: ProfileTotalOrder}), "fifo")

	l = Log{}
	l.Node("1").Deliver("m1", 1, 1, wire.ServiceAgreed)
	expectViolation(t, Check(l, Options{Profile: ProfileTotalOrder}), "config-sequencing")
}

func TestTotalOrderProfileWaivesMembershipAxioms(t *testing.T) {
	// The full-EVS baseLog mutations for virtual synchrony and safe
	// stability must NOT be violations under ProfileTotalOrder: the Ring
	// Paxos engine never promised them.
	l := baseLog()
	var kept []Event
	for _, e := range l["2"].Events {
		if e.Key == "m4b" || e.Key == "m3" {
			continue // drops a transitional delivery and a Safe message
		}
		kept = append(kept, e)
	}
	l["2"].Events = kept
	for _, v := range Check(l, Options{Profile: ProfileTotalOrder}) {
		if v.Axiom == "virtual-synchrony" || v.Axiom == "safe-stability" {
			t.Fatalf("waived axiom flagged: %v", v)
		}
	}
}
