package core

import (
	"math/rand"
	"testing"
	"time"

	"accelring/internal/wire"
)

func accelConfig() Config {
	return Config{Protocol: ProtocolAcceleratedRing}
}

func origConfig() Config {
	return Config{Protocol: ProtocolOriginalRing}
}

func TestStaticRingDeliversInTotalOrder(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"accelerated", accelConfig()},
		{"original", origConfig()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			h := newHarness(t, 4, tc.cfg)
			h.startStatic()
			for i := 0; i < 25; i++ {
				for id := wire.ParticipantID(1); id <= 4; id++ {
					h.submit(id, payload(id, i), wire.ServiceAgreed)
				}
			}
			h.run(2 * time.Second)
			h.checkAllDelivered(100, 1, 2, 3, 4)
			h.checkTotalOrder(1, 2, 3, 4)
		})
	}
}

func TestStaticRingDeliversConfigEventFirst(t *testing.T) {
	h := newHarness(t, 3, accelConfig())
	h.startStatic()
	h.run(100 * time.Millisecond)
	for _, n := range h.nodes {
		if len(n.delivered) == 0 || n.delivered[0].msg != nil {
			t.Fatalf("node %s: first event is not a configuration", n.id)
		}
		cfg := n.delivered[0].config
		if n.delivered[0].trans {
			t.Fatalf("node %s: initial configuration marked transitional", n.id)
		}
		if len(cfg.Members) != 3 {
			t.Fatalf("node %s: initial configuration has %d members, want 3", n.id, len(cfg.Members))
		}
	}
}

func TestSafeDeliveryReachesAll(t *testing.T) {
	h := newHarness(t, 3, accelConfig())
	h.startStatic()
	for i := 0; i < 10; i++ {
		h.submit(1, payload(1, i), wire.ServiceSafe)
	}
	h.run(2 * time.Second)
	h.checkAllDelivered(10, 1, 2, 3)
	h.checkTotalOrder(1, 2, 3)
	for _, n := range h.nodes {
		if got := n.eng.Stats().SafeDelivered; got != 10 {
			t.Fatalf("node %s SafeDelivered = %d, want 10", n.id, got)
		}
	}
}

func TestSafeDeliveryLagsAgreed(t *testing.T) {
	// Submit one Safe and one Agreed message at the same instant from
	// different nodes; both must be delivered, and the Safe one must not
	// be delivered anywhere before the token has established stability
	// (token stats let us verify it took extra rounds, indirectly: the
	// delivery still happens, which is the liveness half; the ordering
	// half is covered by checkTotalOrder).
	h := newHarness(t, 3, accelConfig())
	h.startStatic()
	h.submit(1, []byte("safe"), wire.ServiceSafe)
	h.submit(2, []byte("agreed"), wire.ServiceAgreed)
	h.run(1 * time.Second)
	h.checkAllDelivered(2, 1, 2, 3)
	h.checkTotalOrder(1, 2, 3)
}

func TestMixedServicesPreserveTotalOrder(t *testing.T) {
	h := newHarness(t, 4, accelConfig())
	h.startStatic()
	svcs := []wire.Service{wire.ServiceAgreed, wire.ServiceSafe, wire.ServiceFIFO, wire.ServiceCausal}
	for i := 0; i < 20; i++ {
		for id := wire.ParticipantID(1); id <= 4; id++ {
			h.submit(id, payload(id, i), svcs[(i+int(id))%len(svcs)])
		}
	}
	h.run(3 * time.Second)
	h.checkAllDelivered(80, 1, 2, 3, 4)
	h.checkTotalOrder(1, 2, 3, 4)
}

func TestDeliveryRespectsSenderFIFO(t *testing.T) {
	h := newHarness(t, 3, accelConfig())
	h.startStatic()
	for i := 0; i < 30; i++ {
		h.submit(2, payload(2, i), wire.ServiceAgreed)
	}
	h.run(2 * time.Second)
	h.checkAllDelivered(30, 1, 2, 3)
	// Messages from one sender must be delivered in submission order.
	for _, n := range h.nodes {
		msgs := n.appMsgs()
		for i, m := range msgs {
			if string(m.Payload) != string(payload(2, i)) {
				t.Fatalf("node %s: position %d has %q, want %q", n.id, i, m.Payload, payload(2, i))
			}
		}
	}
}

func TestRetransmissionRecoversLoss(t *testing.T) {
	h := newHarness(t, 4, accelConfig())
	h.dropData = lossEvery(7) // drop every 7th data transmission
	h.startStatic()
	for i := 0; i < 50; i++ {
		for id := wire.ParticipantID(1); id <= 4; id++ {
			h.submit(id, payload(id, i), wire.ServiceAgreed)
		}
	}
	h.run(5 * time.Second)
	h.checkAllDelivered(200, 1, 2, 3, 4)
	h.checkTotalOrder(1, 2, 3, 4)
	retrans := uint64(0)
	for _, n := range h.nodes {
		retrans += n.eng.Stats().MsgsRetransmitted
	}
	if retrans == 0 {
		t.Fatal("loss was injected but no retransmissions happened")
	}
}

func TestHeavyRandomLossStillConsistent(t *testing.T) {
	for _, proto := range []Config{accelConfig(), origConfig()} {
		h := newHarness(t, 4, proto)
		h.dropData = randomLoss(42, 0.10)
		h.startStatic()
		for i := 0; i < 40; i++ {
			for id := wire.ParticipantID(1); id <= 4; id++ {
				h.submit(id, payload(id, i), wire.ServiceSafe)
			}
		}
		h.run(10 * time.Second)
		h.checkAllDelivered(160, 1, 2, 3, 4)
		h.checkTotalOrder(1, 2, 3, 4)
	}
}

func TestTokenRetransmissionSurvivesTokenLoss(t *testing.T) {
	h := newHarness(t, 3, accelConfig())
	dropped := 0
	h.dropToken = func(from, to wire.ParticipantID, tok *wire.Token) bool {
		// Drop exactly two token transmissions early on.
		if dropped < 2 && tok.TokenSeq > 3 {
			dropped++
			return true
		}
		return false
	}
	h.startStatic()
	for i := 0; i < 20; i++ {
		h.submit(1, payload(1, i), wire.ServiceAgreed)
	}
	h.run(2 * time.Second)
	if dropped != 2 {
		t.Fatalf("wanted to drop 2 tokens, dropped %d", dropped)
	}
	h.checkAllDelivered(20, 1, 2, 3)
	h.checkTotalOrder(1, 2, 3)
	retrans := uint64(0)
	changes := uint64(0)
	for _, n := range h.nodes {
		retrans += n.eng.Stats().TokenRetransmits
		changes += n.eng.Stats().MembershipChanges
	}
	if retrans == 0 {
		t.Fatal("tokens were dropped but never retransmitted")
	}
	// Token retransmission should have recovered without a membership
	// change (each node counts 1 for the initial static installation).
	if changes != 3 {
		t.Fatalf("membership changes = %d, want 3 (initial only)", changes)
	}
}

func TestAcceleratedSendsPostToken(t *testing.T) {
	h := newHarness(t, 3, accelConfig())
	h.startStatic()
	for i := 0; i < 100; i++ {
		for id := wire.ParticipantID(1); id <= 3; id++ {
			h.submit(id, payload(id, i), wire.ServiceAgreed)
		}
	}
	h.run(3 * time.Second)
	post := uint64(0)
	for _, n := range h.nodes {
		post += n.eng.Stats().MsgsPostToken
	}
	if post == 0 {
		t.Fatal("accelerated protocol sent no post-token messages")
	}
}

func TestOriginalSendsNothingPostToken(t *testing.T) {
	h := newHarness(t, 3, origConfig())
	h.startStatic()
	for i := 0; i < 100; i++ {
		for id := wire.ParticipantID(1); id <= 3; id++ {
			h.submit(id, payload(id, i), wire.ServiceAgreed)
		}
	}
	h.run(3 * time.Second)
	for _, n := range h.nodes {
		if got := n.eng.Stats().MsgsPostToken; got != 0 {
			t.Fatalf("original protocol node %s sent %d post-token messages", n.id, got)
		}
	}
}

func TestSingletonRing(t *testing.T) {
	h := newHarness(t, 1, accelConfig())
	h.startStatic()
	for i := 0; i < 10; i++ {
		h.submit(1, payload(1, i), wire.ServiceSafe)
	}
	h.run(1 * time.Second)
	h.checkAllDelivered(10, 1)
}

func TestTwoNodeRing(t *testing.T) {
	h := newHarness(t, 2, accelConfig())
	h.startStatic()
	for i := 0; i < 20; i++ {
		h.submit(1, payload(1, i), wire.ServiceAgreed)
		h.submit(2, payload(2, i), wire.ServiceSafe)
	}
	h.run(2 * time.Second)
	h.checkAllDelivered(40, 1, 2)
	h.checkTotalOrder(1, 2)
}

func TestLargeRing(t *testing.T) {
	h := newHarness(t, 12, accelConfig())
	h.startStatic()
	for i := 0; i < 5; i++ {
		for id := wire.ParticipantID(1); id <= 12; id++ {
			h.submit(id, payload(id, i), wire.ServiceAgreed)
		}
	}
	h.run(3 * time.Second)
	ids := make([]wire.ParticipantID, 0, 12)
	for i := wire.ParticipantID(1); i <= 12; i++ {
		ids = append(ids, i)
	}
	h.checkAllDelivered(60, ids...)
	h.checkTotalOrder(ids...)
}

func TestBacklogBackpressure(t *testing.T) {
	cfg := accelConfig()
	cfg.MaxPending = 5
	eng, err := New(Config{MyID: 1, Protocol: ProtocolAcceleratedRing, MaxPending: 5})
	if err != nil {
		t.Fatal(err)
	}
	_ = cfg
	for i := 0; i < 5; i++ {
		if err := eng.Submit([]byte("x"), wire.ServiceAgreed); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	if err := eng.Submit([]byte("x"), wire.ServiceAgreed); err != ErrBacklogFull {
		t.Fatalf("Submit over cap = %v, want ErrBacklogFull", err)
	}
}

func TestGarbageCollectionBoundsBuffers(t *testing.T) {
	h := newHarness(t, 3, accelConfig())
	h.startStatic()
	for i := 0; i < 200; i++ {
		for id := wire.ParticipantID(1); id <= 3; id++ {
			h.submit(id, payload(id, i), wire.ServiceAgreed)
		}
	}
	h.run(5 * time.Second)
	h.checkAllDelivered(600, 1, 2, 3)
	for _, n := range h.nodes {
		if got := n.eng.Stats().Discarded; got == 0 {
			t.Fatalf("node %s never garbage-collected stable messages", n.id)
		}
		if n.eng.buf.Len() > n.eng.cfg.Flow.MaxSeqGap {
			t.Fatalf("node %s buffer holds %d messages, beyond the seq gap bound", n.id, n.eng.buf.Len())
		}
	}
}

func TestDuplicatedPacketsAreIdempotent(t *testing.T) {
	h := newHarness(t, 3, accelConfig())
	count := 0
	h.dupData = func(from, to wire.ParticipantID, m *wire.DataMessage) bool {
		count++
		return count%3 == 0 // duplicate every third delivery
	}
	h.startStatic()
	for i := 0; i < 40; i++ {
		for id := wire.ParticipantID(1); id <= 3; id++ {
			h.submit(id, payload(id, i), wire.ServiceSafe)
		}
	}
	h.run(3 * time.Second)
	h.checkAllDelivered(120, 1, 2, 3)
	h.checkTotalOrder(1, 2, 3)
	dups := uint64(0)
	for _, n := range h.nodes {
		dups += n.eng.Stats().MsgsDuplicate
	}
	if dups == 0 {
		t.Fatal("duplicates were injected but never detected")
	}
}

func TestReorderedPacketsStillTotallyOrdered(t *testing.T) {
	h := newHarness(t, 4, accelConfig())
	rng := rand.New(rand.NewSource(77))
	h.jitter = func() time.Duration {
		// Up to 3 hop-delays of jitter: heavy in-flight reordering.
		return time.Duration(rng.Intn(3)) * defaultHopDelay
	}
	h.startStatic()
	for i := 0; i < 40; i++ {
		for id := wire.ParticipantID(1); id <= 4; id++ {
			h.submit(id, payload(id, i), wire.ServiceAgreed)
		}
	}
	h.run(5 * time.Second)
	h.checkAllDelivered(160, 1, 2, 3, 4)
	h.checkTotalOrder(1, 2, 3, 4)
	h.checkEVS()
}

func TestReorderingPlusLossPlusDuplication(t *testing.T) {
	// The full UDP pathology menu at once.
	h := newHarness(t, 3, accelConfig())
	rng := rand.New(rand.NewSource(99))
	h.dropData = randomLoss(3, 0.05)
	h.dupData = func(from, to wire.ParticipantID, m *wire.DataMessage) bool {
		return rng.Intn(10) == 0
	}
	h.jitter = func() time.Duration {
		return time.Duration(rng.Intn(2)) * defaultHopDelay
	}
	h.startStatic()
	for i := 0; i < 30; i++ {
		for id := wire.ParticipantID(1); id <= 3; id++ {
			h.submit(id, payload(id, i), wire.ServiceSafe)
		}
	}
	h.run(10 * time.Second)
	h.checkAllDelivered(90, 1, 2, 3)
	h.checkTotalOrder(1, 2, 3)
	h.checkEVS()
}
