package core

import (
	"fmt"
	"testing"
	"time"

	"accelring/internal/evscheck"
	"accelring/internal/faultplan"
	"accelring/internal/wire"
)

// Chaos soak: each seed deterministically generates a fault program (loss
// bursts, duplication, reordering delay, a partition with heal, a crash
// with restart), runs a five-node ring under deterministic traffic while
// the program executes, then demands a clean EVS verdict on the merged
// delivery logs of every incarnation. Every seed runs twice and the two
// event traces must be bit-identical — a failure therefore reproduces with
//
//	go test ./internal/core -run 'TestChaosCampaign/seed=<N>' -v
//
// chaosNodes and chaosFaultWindow are part of the reproduction contract:
// changing them changes every seed's trace.
const (
	chaosNodes       = 5
	chaosFaultWindow = 600 * time.Millisecond
	chaosMsgsPerNode = 40
)

// runChaosSeed executes one seeded chaos run to quiescence and returns the
// digest of the full event trace.
func runChaosSeed(t *testing.T, seed int64) string {
	t.Helper()
	plan := faultplan.Generate(seed, chaosNodes, chaosFaultWindow, faultplan.ClassAll)
	h := newHarness(t, chaosNodes, accelConfig())
	h.applyPlan(&plan)
	h.startStatic()

	// Deterministic traffic: every node submits a message each 10ms of
	// virtual time, staggered per node, every fifth one with Safe service.
	// Submissions at crashed nodes are silently lost, as in a real outage.
	for id := wire.ParticipantID(1); id <= chaosNodes; id++ {
		for i := 0; i < chaosMsgsPerNode; i++ {
			id, i := id, i
			at := time.Duration(i)*10*time.Millisecond + time.Duration(id)*time.Millisecond
			svc := wire.ServiceAgreed
			if i%5 == 0 {
				svc = wire.ServiceSafe
			}
			h.schedule(at, func() { h.trySubmit(id, payload(id, i), svc) })
		}
	}

	// Run through the fault window, then settle: all faults end and all
	// crashed nodes restart within the window, so the full ring re-forms
	// and drains every pending message well within the settle period.
	h.run(chaosFaultWindow + 5*time.Second)
	h.checkEVSQuiescent()
	return evscheck.Digest(h.evLog())
}

func TestChaosCampaign(t *testing.T) {
	seeds := make([]int64, 24)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	if testing.Short() {
		seeds = seeds[:6]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			first := runChaosSeed(t, seed)
			again := runChaosSeed(t, seed)
			if first != again {
				t.Fatalf("seed %d is not deterministic: two runs produced different event traces\n"+
					"first:  %s\nsecond: %s", seed, first, again)
			}
		})
	}
}

// TestChaosCrashPartitionSeedStable picks the first seed whose generated
// plan combines a partition with a crash/restart (the heaviest fault mix)
// and verifies that seed replays to an identical trace. The search is
// deterministic, so the chosen seed is stable for a given generator.
func TestChaosCrashPartitionSeedStable(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	pin := int64(-1)
	for seed := int64(1); seed <= 200; seed++ {
		plan := faultplan.Generate(seed, chaosNodes, chaosFaultWindow, faultplan.ClassAll)
		var hasCrash, hasPartition bool
		for _, ev := range plan.Events {
			switch ev.Kind {
			case faultplan.EventCrash:
				hasCrash = true
			case faultplan.EventPartition:
				hasPartition = true
			}
		}
		if hasCrash && hasPartition {
			pin = seed
			break
		}
	}
	if pin < 0 {
		t.Fatal("no seed in 1..200 generates crash+partition; generator probabilities broken")
	}
	t.Logf("pinned crash+partition seed: %d", pin)
	if runChaosSeed(t, pin) != runChaosSeed(t, pin) {
		t.Fatalf("seed %d is not deterministic", pin)
	}
}
