package core

import (
	"testing"
	"time"

	"accelring/internal/wire"
)

// TestFiveNodeCrashReformation is a regression test for a membership
// livelock: after a crash, nodes that bounced from Commit back to Gather
// used to reset their proc sets to {self}, and their next joins bounced
// already-committed peers back to Gather indefinitely. Formation knowledge
// must be preserved across failed attempts.
func TestFiveNodeCrashReformation(t *testing.T) {
	h := newHarness(t, 5, accelConfig())
	h.startStatic()
	h.run(100 * time.Millisecond)
	h.crash(5)
	h.waitConfig(3*time.Second, []wire.ParticipantID{1, 2, 3, 4}, 1, 2, 3, 4)

	for i := 0; i < 10; i++ {
		for id := wire.ParticipantID(1); id <= 4; id++ {
			h.submit(id, payload(id, i), wire.ServiceSafe)
		}
	}
	h.run(2 * time.Second)
	h.checkAllDelivered(40, 1, 2, 3, 4)
	h.checkTotalOrder(1, 2, 3, 4)
}
