package core

import "accelring/internal/wire"

// OrderingEngine is the engine ⇄ runtime contract every total-order
// protocol implementation in this repository satisfies. An engine is a
// deterministic, single-goroutine state machine: the runtime (the live
// protocol loop over memnet/udpnet, or the discrete-event simulator) owns
// exactly one goroutine per engine, feeds it inputs one at a time, and
// carries out the returned actions strictly in order. The engine never
// touches sockets, clocks or goroutines itself — time reaches it only
// through HandleTimer, the network only through the Handle* methods.
//
// The contract, beyond the method signatures:
//
//   - Inputs are serialized. The runtime never calls two methods
//     concurrently; the engine needs no locks.
//   - Actions are executed in slice order. The position of SendToken among
//     SendData actions is protocol-relevant (the Accelerated Ring's
//     post-token phase, Ring Paxos's assignment-before-ack ordering).
//   - The engine must not retain mutable references handed to Handle*
//     beyond the call (decode targets are runtime-owned scratch); whatever
//     it keeps, it copies.
//   - Timer kinds are engine-defined reuses of the shared TimerKind set;
//     at most one timer per kind is armed at a time.
//
// *Engine (the Accelerated Ring implementation) and
// ringpaxos.Engine both satisfy this interface.
type OrderingEngine interface {
	// Config returns the engine's (defaulted) configuration.
	Config() Config
	// State reports the membership/protocol state for tracing.
	State() State
	// Ring returns the current configuration (view) of the engine.
	Ring() Configuration
	// Stats returns the shared counter snapshot. Engines map their own
	// notions onto it (for Ring Paxos, TokensProcessed counts Phase 2
	// circulation acks) so substrate-level instrumentation — rotation
	// histograms, bench reports — works unchanged across engines.
	Stats() Stats
	// PendingLen reports the backlog of submitted-but-unordered messages.
	PendingLen() int
	// TokenHasPriority reports whether the runtime should prefer the
	// token socket over the data socket right now.
	TokenHasPriority() bool

	// Submit queues one application payload for total ordering.
	Submit(payload []byte, service wire.Service) error
	// Start begins operation with dynamic membership discovery.
	Start() []Action
	// StartWithRing begins operation with a static member list (every
	// participant must be started with the identical list).
	StartWithRing(members []wire.ParticipantID) ([]Action, error)

	// HandleData processes one received data message.
	HandleData(m *wire.DataMessage) []Action
	// HandleToken processes one received regular token.
	HandleToken(t *wire.Token) []Action
	// HandleJoin processes one received membership join message.
	HandleJoin(j *wire.JoinMessage) []Action
	// HandleCommit processes one received commit token.
	HandleCommit(c *wire.CommitToken) []Action
	// HandleTimer processes the expiry of the given timer kind.
	HandleTimer(kind TimerKind) []Action
}

// Flusher is an optional extension of OrderingEngine for engines whose
// Submit path produces immediate protocol output. The Accelerated Ring
// engine sends only when it holds the token, so Submit just queues; a Ring
// Paxos proposer must multicast the value right away, but Submit's
// signature cannot return actions. A runtime that sees this interface MUST
// call Flush after every successful Submit (and may call it at any other
// quiescent point) and execute the returned actions as usual.
type Flusher interface {
	Flush() []Action
}

// RotationObserver is an optional extension reporting the engine's token
// circulation discipline. Engines whose ring message keeps rotating even
// when idle (the token ring: loss of rotation is loss of liveness) return
// true; the shard watchdog may then treat a frozen token counter as a
// wedge whenever a sibling ring advanced. Engines that quiesce their ring
// traffic when idle (Ring Paxos pauses Phase 2 circulation with nothing to
// decide) return false, and the watchdog must fall back to
// progress-with-pending-work detection. Absence of the interface means
// steady rotation (the historical assumption).
type RotationObserver interface {
	SteadyTokenRotation() bool
}

// Compile-time check: the Accelerated Ring engine satisfies the contract.
var _ OrderingEngine = (*Engine)(nil)
