package core

import (
	"testing"

	"accelring/internal/flowctl"
	"accelring/internal/wire"
)

// newMember builds an operational engine that is participant `id` of a
// static ring [1..n], without injecting a token (use id != 1 so the engine
// just waits for tokens we hand-craft).
func newMember(t *testing.T, id wire.ParticipantID, n int, cfg Config) *Engine {
	t.Helper()
	cfg.MyID = id
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	members := make([]wire.ParticipantID, 0, n)
	for i := 1; i <= n; i++ {
		members = append(members, wire.ParticipantID(i))
	}
	if _, err := eng.StartWithRing(members); err != nil {
		t.Fatal(err)
	}
	return eng
}

// ringToken builds a token for the engine's current ring.
func ringToken(e *Engine, tokenSeq uint64, round wire.Round, seq, aru wire.Seq) *wire.Token {
	return &wire.Token{
		RingID:   e.ring.ID,
		TokenSeq: tokenSeq,
		Round:    round,
		Seq:      seq,
		ARU:      aru,
	}
}

// actionsByType splits an action list for inspection.
func findToken(actions []Action) (*wire.Token, int) {
	for i, a := range actions {
		if st, ok := a.(SendToken); ok {
			return st.Token, i
		}
	}
	return nil, -1
}

func dataSends(actions []Action) []SendData {
	var out []SendData
	for _, a := range actions {
		if sd, ok := a.(SendData); ok {
			out = append(out, sd)
		}
	}
	return out
}

func deliveries(actions []Action) []Deliver {
	var out []Deliver
	for _, a := range actions {
		if d, ok := a.(Deliver); ok {
			out = append(out, d)
		}
	}
	return out
}

func mustSubmit(t *testing.T, e *Engine, n int, svc wire.Service) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := e.Submit(payload(e.cfg.MyID, i), svc); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTokenSplitsPreAndPostPhases(t *testing.T) {
	cfg := Config{Protocol: ProtocolAcceleratedRing,
		Flow: flowctl.Config{PersonalWindow: 50, GlobalWindow: 200, AcceleratedWindow: 3, MaxSeqGap: 1000}}
	e := newMember(t, 2, 3, cfg)
	mustSubmit(t, e, 10, wire.ServiceAgreed)

	actions := e.HandleToken(ringToken(e, 5, 1, 0, 0))
	tok, ti := findToken(actions)
	if tok == nil {
		t.Fatal("no token forwarded")
	}
	sends := dataSends(actions)
	if len(sends) != 10 {
		t.Fatalf("sent %d messages, want 10", len(sends))
	}
	pre, post := 0, 0
	for i, a := range actions {
		sd, ok := a.(SendData)
		if !ok {
			continue
		}
		if i < ti {
			pre++
			if sd.Msg.PostToken {
				t.Fatal("pre-token message carries PostToken flag")
			}
		} else {
			post++
			if !sd.Msg.PostToken {
				t.Fatal("post-token message missing PostToken flag")
			}
		}
	}
	if pre != 7 || post != 3 {
		t.Fatalf("pre/post = %d/%d, want 7/3", pre, post)
	}
	if tok.Seq != 10 {
		t.Fatalf("token seq = %d, want 10 (reflects post-token messages too)", tok.Seq)
	}
}

func TestTokenAllWithinAcceleratedWindow(t *testing.T) {
	cfg := Config{Protocol: ProtocolAcceleratedRing,
		Flow: flowctl.Config{PersonalWindow: 50, GlobalWindow: 200, AcceleratedWindow: 5, MaxSeqGap: 1000}}
	e := newMember(t, 2, 3, cfg)
	mustSubmit(t, e, 4, wire.ServiceAgreed)

	actions := e.HandleToken(ringToken(e, 5, 1, 0, 0))
	_, ti := findToken(actions)
	for i, a := range actions {
		if _, ok := a.(SendData); ok && i < ti {
			t.Fatal("messages within the accelerated window must all go post-token")
		}
	}
	if got := len(dataSends(actions)); got != 4 {
		t.Fatalf("sent %d, want 4", got)
	}
}

func TestOriginalProtocolSendsAllPreToken(t *testing.T) {
	e := newMember(t, 2, 3, Config{Protocol: ProtocolOriginalRing})
	mustSubmit(t, e, 10, wire.ServiceAgreed)

	actions := e.HandleToken(ringToken(e, 5, 1, 0, 0))
	_, ti := findToken(actions)
	for i, a := range actions {
		if _, ok := a.(SendData); ok && i > ti {
			t.Fatal("original protocol multicast after forwarding the token")
		}
	}
	if got := len(dataSends(actions)); got != 10 {
		t.Fatalf("sent %d, want 10", got)
	}
}

func TestTokenForwardedToSuccessor(t *testing.T) {
	e := newMember(t, 2, 3, accelConfig())
	actions := e.HandleToken(ringToken(e, 5, 1, 0, 0))
	for _, a := range actions {
		if st, ok := a.(SendToken); ok {
			if st.To != 3 {
				t.Fatalf("token sent to %s, want 3", st.To)
			}
			return
		}
	}
	t.Fatal("no token forwarded")
}

func TestLastMemberWrapsToRepresentative(t *testing.T) {
	e := newMember(t, 3, 3, accelConfig())
	actions := e.HandleToken(ringToken(e, 5, 2, 0, 0))
	tok, _ := findToken(actions)
	for _, a := range actions {
		if st, ok := a.(SendToken); ok && st.To != 1 {
			t.Fatalf("token sent to %s, want 1", st.To)
		}
	}
	if tok == nil {
		t.Fatal("no token forwarded")
	}
}

func TestDuplicateTokenDiscarded(t *testing.T) {
	e := newMember(t, 2, 3, accelConfig())
	if got := e.HandleToken(ringToken(e, 5, 1, 0, 0)); len(got) == 0 {
		t.Fatal("first token produced no actions")
	}
	if got := e.HandleToken(ringToken(e, 5, 1, 0, 0)); got != nil {
		t.Fatalf("duplicate token produced %d actions", len(got))
	}
	if e.Stats().TokensDuplicate != 1 {
		t.Fatalf("TokensDuplicate = %d, want 1", e.Stats().TokensDuplicate)
	}
}

func TestForeignTokenIgnored(t *testing.T) {
	e := newMember(t, 2, 3, accelConfig())
	tok := ringToken(e, 5, 1, 0, 0)
	tok.RingID = wire.RingID{Rep: 9, Seq: 99}
	if got := e.HandleToken(tok); got != nil {
		t.Fatalf("foreign token produced %d actions", len(got))
	}
}

func TestTokenSeqAndRoundAdvance(t *testing.T) {
	e := newMember(t, 2, 3, accelConfig())
	actions := e.HandleToken(ringToken(e, 5, 7, 0, 0))
	tok, _ := findToken(actions)
	if tok.TokenSeq != 6 {
		t.Fatalf("forwarded TokenSeq = %d, want 6", tok.TokenSeq)
	}
	if tok.Round != 8 {
		t.Fatalf("forwarded Round = %d, want 8", tok.Round)
	}
}

func TestRetransmissionAnsweredPreToken(t *testing.T) {
	e := newMember(t, 2, 3, accelConfig())
	// Receive message 1 from node 3 so we can answer a request for it.
	m := &wire.DataMessage{RingID: e.ring.ID, Seq: 1, PID: 3, Round: 1, Service: wire.ServiceAgreed, Payload: []byte("x")}
	e.HandleData(m)

	tok := ringToken(e, 5, 3, 1, 0)
	tok.RTR = []wire.Seq{1}
	actions := e.HandleToken(tok)
	_, ti := findToken(actions)
	sends := dataSends(actions)
	if len(sends) != 1 || !sends[0].Msg.Retrans || sends[0].Msg.Seq != 1 {
		t.Fatalf("expected one retransmission of seq 1, got %+v", sends)
	}
	for i, a := range actions {
		if sd, ok := a.(SendData); ok && sd.Msg.Retrans && i > ti {
			t.Fatal("retransmission sent after the token")
		}
	}
	out, _ := findToken(actions)
	if len(out.RTR) != 0 {
		t.Fatalf("answered request still on token: %v", out.RTR)
	}
	if e.Stats().MsgsRetransmitted != 1 {
		t.Fatalf("MsgsRetransmitted = %d, want 1", e.Stats().MsgsRetransmitted)
	}
}

func TestUnansweredRequestStaysOnToken(t *testing.T) {
	e := newMember(t, 2, 3, accelConfig())
	tok := ringToken(e, 5, 3, 2, 0)
	tok.RTR = []wire.Seq{1, 2}
	actions := e.HandleToken(tok)
	out, _ := findToken(actions)
	if len(out.RTR) != 2 {
		t.Fatalf("token RTR = %v, want both requests kept", out.RTR)
	}
}

func TestRTROnlyRequestsUpToPreviousTokenSeq(t *testing.T) {
	// The accelerated protocol's retransmission caution (Section III-A2):
	// gaps up to the *previous* round's token seq may be requested; gaps
	// only covered by the current token's seq may not — those messages may
	// simply not have been sent yet.
	e := newMember(t, 2, 3, accelConfig())

	// Round 1: token says seq=5, we have nothing. prevTokenSeq was 0, so
	// no requests are allowed yet.
	actions := e.HandleToken(ringToken(e, 5, 1, 5, 0))
	out, _ := findToken(actions)
	if len(out.RTR) != 0 {
		t.Fatalf("round 1 requested %v; must not request beyond previous token seq", out.RTR)
	}

	// Round 2: token seq=9. Now requests up to 5 (last round's seq) are
	// allowed, but not 6..9.
	actions = e.HandleToken(ringToken(e, 6, 4, 9, 0))
	out, _ = findToken(actions)
	want := []wire.Seq{1, 2, 3, 4, 5}
	if len(out.RTR) != len(want) {
		t.Fatalf("round 2 RTR = %v, want %v", out.RTR, want)
	}
	for i, s := range want {
		if out.RTR[i] != s {
			t.Fatalf("round 2 RTR = %v, want %v", out.RTR, want)
		}
	}
	if e.Stats().RTRRequested != 5 {
		t.Fatalf("RTRRequested = %d, want 5", e.Stats().RTRRequested)
	}
}

func TestRTRNoDuplicateRequests(t *testing.T) {
	e := newMember(t, 2, 3, accelConfig())
	e.HandleToken(ringToken(e, 5, 1, 3, 0))
	// Someone else already requested 2; we miss 1,2,3 up to prev seq 3.
	tok := ringToken(e, 6, 4, 3, 0)
	tok.RTR = []wire.Seq{2}
	actions := e.HandleToken(tok)
	out, _ := findToken(actions)
	seen := map[wire.Seq]int{}
	for _, s := range out.RTR {
		seen[s]++
	}
	for s, n := range seen {
		if n > 1 {
			t.Fatalf("seq %d requested %d times", s, n)
		}
	}
	if len(out.RTR) != 3 {
		t.Fatalf("RTR = %v, want 3 distinct requests", out.RTR)
	}
}

func TestARULoweredWhenMissingMessages(t *testing.T) {
	e := newMember(t, 2, 3, accelConfig())
	actions := e.HandleToken(ringToken(e, 5, 1, 5, 5))
	out, _ := findToken(actions)
	if out.ARU != 0 {
		t.Fatalf("token ARU = %d, want 0 (we have nothing)", out.ARU)
	}
	if out.ARUID != 2 {
		t.Fatalf("token ARUID = %s, want 2 (we lowered)", out.ARUID)
	}
}

func TestARURaisedByPreviousLowerer(t *testing.T) {
	e := newMember(t, 2, 3, accelConfig())
	// Round 1: lower aru to 0.
	e.HandleToken(ringToken(e, 5, 1, 5, 5))
	// We catch up on messages 1..5.
	for s := wire.Seq(1); s <= 5; s++ {
		e.HandleData(&wire.DataMessage{RingID: e.ring.ID, Seq: s, PID: 3, Round: 1, Service: wire.ServiceAgreed})
	}
	// Round 2: aru still held down by us; we must raise it.
	tok := ringToken(e, 6, 4, 5, 0)
	tok.ARUID = 2
	actions := e.HandleToken(tok)
	out, _ := findToken(actions)
	if out.ARU != 5 {
		t.Fatalf("token ARU = %d, want 5 (raised to local aru)", out.ARU)
	}
	if out.ARUID != 0 {
		t.Fatalf("token ARUID = %s, want cleared", out.ARUID)
	}
}

func TestARURidesWithSeqWhenCaughtUp(t *testing.T) {
	e := newMember(t, 2, 3, accelConfig())
	mustSubmit(t, e, 5, wire.ServiceAgreed)
	actions := e.HandleToken(ringToken(e, 5, 1, 0, 0))
	out, _ := findToken(actions)
	if out.Seq != 5 {
		t.Fatalf("token seq = %d, want 5", out.Seq)
	}
	if out.ARU != 5 {
		t.Fatalf("token ARU = %d, want 5 (rides with seq when aru==seq)", out.ARU)
	}
}

func TestARUDoesNotRideWhenBehind(t *testing.T) {
	e := newMember(t, 2, 3, accelConfig())
	mustSubmit(t, e, 5, wire.ServiceAgreed)
	// Received token aru (2) != seq (4): aru must not jump with our sends.
	// We hold 1..2 only.
	for s := wire.Seq(1); s <= 2; s++ {
		e.HandleData(&wire.DataMessage{RingID: e.ring.ID, Seq: s, PID: 3, Round: 1, Service: wire.ServiceAgreed})
	}
	actions := e.HandleToken(ringToken(e, 5, 1, 4, 2))
	out, _ := findToken(actions)
	if out.Seq != 9 {
		t.Fatalf("token seq = %d, want 9", out.Seq)
	}
	if out.ARU != 2 {
		t.Fatalf("token ARU = %d, want 2", out.ARU)
	}
}

func TestFCCAccounting(t *testing.T) {
	e := newMember(t, 2, 3, accelConfig())
	mustSubmit(t, e, 8, wire.ServiceAgreed)
	actions := e.HandleToken(ringToken(e, 5, 1, 0, 0))
	out, _ := findToken(actions)
	if out.FCC != 8 {
		t.Fatalf("round 1 FCC = %d, want 8", out.FCC)
	}
	// Round 2: incoming fcc 20 (8 of which are ours from last round); we
	// send 3 new.
	mustSubmit(t, e, 3, wire.ServiceAgreed)
	tok := ringToken(e, 6, 4, 20, 0)
	tok.FCC = 20
	actions = e.HandleToken(tok)
	out, _ = findToken(actions)
	if out.FCC != 15 {
		t.Fatalf("round 2 FCC = %d, want 20-8+3 = 15", out.FCC)
	}
}

func TestPersonalWindowLimitsRound(t *testing.T) {
	cfg := Config{Protocol: ProtocolAcceleratedRing,
		Flow: flowctl.Config{PersonalWindow: 4, GlobalWindow: 100, AcceleratedWindow: 2, MaxSeqGap: 500}}
	e := newMember(t, 2, 3, cfg)
	mustSubmit(t, e, 50, wire.ServiceAgreed)
	actions := e.HandleToken(ringToken(e, 5, 1, 0, 0))
	if got := len(dataSends(actions)); got != 4 {
		t.Fatalf("sent %d, want personal window 4", got)
	}
	if e.PendingLen() != 46 {
		t.Fatalf("pending = %d, want 46", e.PendingLen())
	}
}

func TestGlobalWindowLimitsRound(t *testing.T) {
	cfg := Config{Protocol: ProtocolAcceleratedRing,
		Flow: flowctl.Config{PersonalWindow: 50, GlobalWindow: 60, AcceleratedWindow: 5, MaxSeqGap: 500}}
	e := newMember(t, 2, 3, cfg)
	mustSubmit(t, e, 50, wire.ServiceAgreed)
	tok := ringToken(e, 5, 1, 100, 100)
	tok.FCC = 55
	actions := e.HandleToken(tok)
	if got := len(dataSends(actions)); got != 5 {
		t.Fatalf("sent %d, want 60-55 = 5", got)
	}
}

func TestSeqGapLimitsRound(t *testing.T) {
	cfg := Config{Protocol: ProtocolAcceleratedRing,
		Flow: flowctl.Config{PersonalWindow: 50, GlobalWindow: 100, AcceleratedWindow: 5, MaxSeqGap: 100}}
	e := newMember(t, 2, 3, cfg)
	mustSubmit(t, e, 50, wire.ServiceAgreed)
	// Token aru is 0 after we lower it (we hold nothing of 1..95), so the
	// gap budget is 0+100-95 = 5.
	actions := e.HandleToken(ringToken(e, 5, 1, 95, 95))
	if got := len(dataSends(actions)); got != 5 {
		t.Fatalf("sent %d, want gap budget 5", got)
	}
}

func TestAgreedDeliveredImmediatelyWhenContiguous(t *testing.T) {
	e := newMember(t, 2, 3, accelConfig())
	mustSubmit(t, e, 3, wire.ServiceAgreed)
	actions := e.HandleToken(ringToken(e, 5, 1, 0, 0))
	if got := len(deliveries(actions)); got != 3 {
		t.Fatalf("delivered %d own messages, want 3", got)
	}
}

func TestSafeNotDeliveredUntilStable(t *testing.T) {
	e := newMember(t, 2, 3, accelConfig())
	mustSubmit(t, e, 3, wire.ServiceSafe)
	actions := e.HandleToken(ringToken(e, 5, 1, 0, 0))
	if got := len(deliveries(actions)); got != 0 {
		t.Fatalf("delivered %d safe messages without stability, want 0", got)
	}
	// Next round: the token comes back with aru == seq == 3 (everyone got
	// them). Safe bound becomes min(3, 3) = 3 → deliverable.
	actions = e.HandleToken(ringToken(e, 6, 4, 3, 3))
	if got := len(deliveries(actions)); got != 3 {
		t.Fatalf("delivered %d, want 3 after stability", got)
	}
}

func TestSafeBoundIsMinOfTwoRounds(t *testing.T) {
	e := newMember(t, 2, 3, accelConfig())
	mustSubmit(t, e, 2, wire.ServiceSafe)
	// Round 1: we send 2; aru rides to 2 (sent aru=2). safeBound =
	// min(2, aruSentLast=0) = 0.
	e.HandleToken(ringToken(e, 5, 1, 0, 0))
	if e.safeBound != 0 {
		t.Fatalf("safeBound = %d, want 0 after one round", e.safeBound)
	}
	// Round 2: token back with aru=seq=2: safeBound = min(2, 2) = 2.
	actions := e.HandleToken(ringToken(e, 6, 4, 2, 2))
	if e.safeBound != 2 {
		t.Fatalf("safeBound = %d, want 2", e.safeBound)
	}
	if got := len(deliveries(actions)); got != 2 {
		t.Fatalf("delivered %d, want 2", got)
	}
}

func TestStableMessagesDiscarded(t *testing.T) {
	e := newMember(t, 2, 3, accelConfig())
	mustSubmit(t, e, 3, wire.ServiceAgreed)
	e.HandleToken(ringToken(e, 5, 1, 0, 0))
	e.HandleToken(ringToken(e, 6, 4, 3, 3))
	if e.buf.Len() != 0 {
		t.Fatalf("buffer holds %d messages after stability, want 0", e.buf.Len())
	}
	if e.Stats().Discarded != 3 {
		t.Fatalf("Discarded = %d, want 3", e.Stats().Discarded)
	}
}

func TestTimerActionsOnToken(t *testing.T) {
	e := newMember(t, 2, 3, accelConfig())
	actions := e.HandleToken(ringToken(e, 5, 1, 0, 0))
	var kinds []TimerKind
	for _, a := range actions {
		if st, ok := a.(SetTimer); ok {
			kinds = append(kinds, st.Kind)
		}
	}
	hasLoss, hasRetrans := false, false
	for _, k := range kinds {
		if k == TimerTokenLoss {
			hasLoss = true
		}
		if k == TimerTokenRetrans {
			hasRetrans = true
		}
	}
	if !hasLoss || !hasRetrans {
		t.Fatalf("token handling armed %v, want token-loss and token-retrans", kinds)
	}
}

func TestTokenRetransTimerResendsSavedToken(t *testing.T) {
	e := newMember(t, 2, 3, accelConfig())
	actions := e.HandleToken(ringToken(e, 5, 1, 0, 0))
	sent, _ := findToken(actions)
	retry := e.HandleTimer(TimerTokenRetrans)
	rt, _ := findToken(retry)
	if rt == nil {
		t.Fatal("retransmission timer did not resend the token")
	}
	if rt.TokenSeq != sent.TokenSeq {
		t.Fatalf("retransmitted TokenSeq = %d, want %d (identical token)", rt.TokenSeq, sent.TokenSeq)
	}
	if e.Stats().TokenRetransmits != 1 {
		t.Fatalf("TokenRetransmits = %d, want 1", e.Stats().TokenRetransmits)
	}
}

func TestDownstreamProgressCancelsRetransTimer(t *testing.T) {
	e := newMember(t, 2, 3, accelConfig())
	e.HandleToken(ringToken(e, 5, 3, 0, 0)) // we process round 4
	// A message from node 3 in round 5 proves the token moved on.
	actions := e.HandleData(&wire.DataMessage{RingID: e.ring.ID, Seq: 1, PID: 3, Round: 5, Service: wire.ServiceAgreed})
	found := false
	for _, a := range actions {
		if ct, ok := a.(CancelTimer); ok && ct.Kind == TimerTokenRetrans {
			found = true
		}
	}
	if !found {
		t.Fatal("downstream progress did not cancel the token retransmission timer")
	}
}

func TestSubmitValidation(t *testing.T) {
	e := newMember(t, 2, 3, accelConfig())
	if err := e.Submit([]byte("x"), 0); err == nil {
		t.Fatal("Submit accepted invalid service")
	}
	if err := e.Submit(make([]byte, wire.MaxPayload+1), wire.ServiceAgreed); err == nil {
		t.Fatal("Submit accepted oversized payload")
	}
}

func TestStartWithRingValidation(t *testing.T) {
	eng, err := New(Config{MyID: 5, Protocol: ProtocolAcceleratedRing})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.StartWithRing(nil); err == nil {
		t.Fatal("accepted empty membership")
	}
	if _, err := eng.StartWithRing([]wire.ParticipantID{1, 2}); err == nil {
		t.Fatal("accepted membership not containing self")
	}
	if _, err := eng.StartWithRing([]wire.ParticipantID{5, 5}); err == nil {
		t.Fatal("accepted duplicate members")
	}
}

func TestConfigDefaultsAndValidation(t *testing.T) {
	if _, err := New(Config{}); err != ErrNoID {
		t.Fatalf("New(empty) err = %v, want ErrNoID", err)
	}
	e, err := New(Config{MyID: 1})
	if err != nil {
		t.Fatal(err)
	}
	if e.Config().Protocol != ProtocolAcceleratedRing {
		t.Fatal("default protocol should be accelerated")
	}
	if e.Config().Priority != PriorityAggressive {
		t.Fatal("default priority for accelerated should be aggressive")
	}
	o, err := New(Config{MyID: 1, Protocol: ProtocolOriginalRing})
	if err != nil {
		t.Fatal(err)
	}
	if o.Config().Flow.AcceleratedWindow != 0 {
		t.Fatal("original protocol must force accelerated window to 0")
	}
	if o.Config().Priority != PriorityConservative {
		t.Fatal("original protocol must force conservative priority")
	}
}

func TestRTRBoundedByMaxRTR(t *testing.T) {
	// A gap wider than MaxRTR must produce a bounded, encodable request
	// list rather than an unbounded token.
	e := newMember(t, 2, 3, accelConfig())
	wideSeq := wire.Seq(wire.MaxRTR + 500)
	e.HandleToken(ringToken(e, 5, 1, wideSeq, 0))
	actions := e.HandleToken(ringToken(e, 6, 4, wideSeq, 0))
	out, _ := findToken(actions)
	if len(out.RTR) > wire.MaxRTR {
		t.Fatalf("token carries %d rtr entries, cap is %d", len(out.RTR), wire.MaxRTR)
	}
	if len(out.RTR) == 0 {
		t.Fatal("no retransmission requests despite a huge gap")
	}
	if _, err := out.Encode(); err != nil {
		t.Fatalf("capped token does not encode: %v", err)
	}
}

func TestMaxPayloadSubmission(t *testing.T) {
	e := newMember(t, 2, 3, accelConfig())
	if err := e.Submit(make([]byte, wire.MaxPayload), wire.ServiceAgreed); err != nil {
		t.Fatalf("max payload rejected: %v", err)
	}
	actions := e.HandleToken(ringToken(e, 5, 1, 0, 0))
	sends := dataSends(actions)
	if len(sends) != 1 || len(sends[0].Msg.Payload) != wire.MaxPayload {
		t.Fatalf("max payload not sent intact")
	}
	if _, err := sends[0].Msg.Encode(); err != nil {
		t.Fatalf("max payload message does not encode: %v", err)
	}
}

func TestTokenRetransStopsAfterMembershipChange(t *testing.T) {
	// Once the engine abandons a ring, a stale token-retransmission timer
	// must not resend the old ring's token.
	e := newMember(t, 2, 3, accelConfig())
	e.HandleToken(ringToken(e, 5, 1, 0, 0))
	e.HandleTimer(TimerTokenLoss) // enter gather
	if got := e.HandleTimer(TimerTokenRetrans); got != nil {
		t.Fatalf("token retransmitted while gathering: %d actions", len(got))
	}
}

func TestDuplicateDataCounted(t *testing.T) {
	e := newMember(t, 2, 3, accelConfig())
	m := &wire.DataMessage{RingID: e.ring.ID, Seq: 1, PID: 3, Round: 1, Service: wire.ServiceAgreed}
	e.HandleData(m)
	cp := *m
	e.HandleData(&cp)
	if e.Stats().MsgsDuplicate != 1 {
		t.Fatalf("MsgsDuplicate = %d, want 1", e.Stats().MsgsDuplicate)
	}
	if e.Stats().MsgsReceived != 1 {
		t.Fatalf("MsgsReceived = %d, want 1", e.Stats().MsgsReceived)
	}
}
