package core

import (
	"testing"
	"time"

	"accelring/internal/flowctl"
	"accelring/internal/wire"
)

func adaptiveConfig() Config {
	return Config{
		Protocol:       ProtocolAcceleratedRing,
		AdaptiveWindow: true,
		Flow:           flowctl.Config{PersonalWindow: 50, GlobalWindow: 300, AcceleratedWindow: 20, MaxSeqGap: 4000},
	}
}

func TestAdaptiveWindowHalvesOnRetransBurst(t *testing.T) {
	e := newMember(t, 2, 3, adaptiveConfig())
	if e.Stats().AccelWindow != 20 {
		t.Fatalf("initial window = %d, want 20", e.Stats().AccelWindow)
	}
	// A token carrying a burst of retransmission requests (none of which
	// we can answer) signals buffer overrun somewhere on the ring.
	tok := ringToken(e, 5, 1, 100, 0)
	for s := wire.Seq(1); s <= 10; s++ {
		tok.RTR = append(tok.RTR, s)
	}
	e.HandleToken(tok)
	if got := e.Stats().AccelWindow; got != 10 {
		t.Fatalf("window after burst = %d, want 10", got)
	}
	if e.Stats().WindowDecreases != 1 {
		t.Fatalf("WindowDecreases = %d, want 1", e.Stats().WindowDecreases)
	}
	// Another burst halves again; repeated bursts drive it to zero (the
	// original protocol's behaviour).
	for i := 0; i < 8; i++ {
		tok := ringToken(e, uint64(6+i), wire.Round(4+3*i), 100, 0)
		for s := wire.Seq(1); s <= 10; s++ {
			tok.RTR = append(tok.RTR, s)
		}
		e.HandleToken(tok)
	}
	if got := e.Stats().AccelWindow; got != 0 {
		t.Fatalf("window after sustained bursts = %d, want 0", got)
	}
}

func TestAdaptiveWindowGrowsAfterCleanStreak(t *testing.T) {
	e := newMember(t, 2, 3, adaptiveConfig())
	// Force it down first.
	tok := ringToken(e, 5, 1, 100, 0)
	for s := wire.Seq(1); s <= 10; s++ {
		tok.RTR = append(tok.RTR, s)
	}
	e.HandleToken(tok)
	if e.Stats().AccelWindow != 10 {
		t.Fatalf("window = %d, want 10", e.Stats().AccelWindow)
	}
	// 64 clean rounds → +1.
	for i := 0; i < 64; i++ {
		e.HandleToken(ringToken(e, uint64(6+i), wire.Round(4+3*i), 100, 100))
	}
	if got := e.Stats().AccelWindow; got != 11 {
		t.Fatalf("window after clean streak = %d, want 11", got)
	}
	if e.Stats().WindowIncreases != 1 {
		t.Fatalf("WindowIncreases = %d, want 1", e.Stats().WindowIncreases)
	}
}

func TestAdaptiveWindowCappedByPersonalWindow(t *testing.T) {
	cfg := adaptiveConfig()
	cfg.Flow.PersonalWindow = 21
	e := newMember(t, 2, 3, cfg)
	// 2 × 64 clean rounds: one increase to 21, then capped.
	for i := 0; i < 128; i++ {
		e.HandleToken(ringToken(e, uint64(5+i), wire.Round(1+3*i), 100, 100))
	}
	if got := e.Stats().AccelWindow; got != 21 {
		t.Fatalf("window = %d, want capped at 21", got)
	}
}

func TestAdaptiveWindowDisabledByDefault(t *testing.T) {
	e := newMember(t, 2, 3, accelConfig())
	tok := ringToken(e, 5, 1, 100, 0)
	for s := wire.Seq(1); s <= 10; s++ {
		tok.RTR = append(tok.RTR, s)
	}
	e.HandleToken(tok)
	if got := e.Stats().AccelWindow; got != flowctl.DefaultAcceleratedWindow {
		t.Fatalf("window moved without AdaptiveWindow: %d", got)
	}
	if e.Stats().WindowDecreases != 0 {
		t.Fatal("decrease counted while disabled")
	}
}

func TestAdaptiveClusterStillOrders(t *testing.T) {
	cfg := adaptiveConfig()
	h := newHarness(t, 4, cfg)
	h.dropData = randomLoss(99, 0.05)
	h.startStatic()
	for i := 0; i < 40; i++ {
		for id := wire.ParticipantID(1); id <= 4; id++ {
			h.submit(id, payload(id, i), wire.ServiceAgreed)
		}
	}
	h.run(5 * time.Second)
	h.checkAllDelivered(160, 1, 2, 3, 4)
	h.checkTotalOrder(1, 2, 3, 4)
}
