package core

import (
	"fmt"
	"testing"
	"time"

	"accelring/internal/wire"
)

// recordingTracer captures trace callbacks for assertions.
type recordingTracer struct {
	states  []string
	tokens  int
	configs []string
}

func (r *recordingTracer) StateChanged(from, to State) {
	r.states = append(r.states, fmt.Sprintf("%s->%s", from, to))
}

func (r *recordingTracer) TokenForwarded(to wire.ParticipantID, seq, aru wire.Seq, retrans, newMsgs int) {
	r.tokens++
}

func (r *recordingTracer) ConfigurationInstalled(cfg Configuration, transitional bool) {
	kind := "regular"
	if transitional {
		kind = "transitional"
	}
	r.configs = append(r.configs, fmt.Sprintf("%s:%d", kind, len(cfg.Members)))
}

func TestTracerSeesTokenForwards(t *testing.T) {
	tr := &recordingTracer{}
	cfg := accelConfig()
	cfg.Tracer = tr
	e := newMember(t, 2, 3, cfg)
	e.HandleToken(ringToken(e, 5, 1, 0, 0))
	e.HandleToken(ringToken(e, 6, 4, 0, 0))
	if tr.tokens != 2 {
		t.Fatalf("tracer saw %d token forwards, want 2", tr.tokens)
	}
	if len(tr.configs) != 1 || tr.configs[0] != "regular:3" {
		t.Fatalf("tracer configs = %v", tr.configs)
	}
	// Static start transitions straight to operational.
	if len(tr.states) != 1 || tr.states[0] != "state(0)->operational" {
		t.Fatalf("tracer states = %v", tr.states)
	}
}

func TestTracerSeesMembershipCycle(t *testing.T) {
	tracers := map[wire.ParticipantID]*recordingTracer{}
	tmpl := accelConfig()
	h := newHarness(t, 3, tmpl)
	// Attach tracers post-construction is impossible (config is copied),
	// so rebuild node 1's engine with one.
	tr := &recordingTracer{}
	cfg := h.nodes[0].eng.Config()
	cfg.Tracer = tr
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.nodes[0].eng = eng
	tracers[1] = tr

	h.startStatic()
	h.run(100 * time.Millisecond)
	h.crash(3)
	h.waitConfig(3*time.Second, []wire.ParticipantID{1, 2}, 1, 2)

	// Node 1 must have walked operational -> gather -> commit -> recovery
	// -> operational.
	want := []string{
		"state(0)->operational",
		"operational->gather",
		"gather->commit",
		"commit->recovery",
		"recovery->operational",
	}
	if len(tr.states) < len(want) {
		t.Fatalf("tracer states = %v, want at least %v", tr.states, want)
	}
	for i, w := range want {
		if tr.states[i] != w {
			t.Fatalf("state transition %d = %q, want %q (all: %v)", i, tr.states[i], w, tr.states)
		}
	}
	// Config events: initial regular:3, then transitional:2 + regular:2.
	if tr.configs[0] != "regular:3" {
		t.Fatalf("configs = %v", tr.configs)
	}
	foundTrans, foundReg2 := false, false
	for _, c := range tr.configs[1:] {
		if c == "transitional:2" {
			foundTrans = true
		}
		if c == "regular:2" {
			foundReg2 = true
		}
	}
	if !foundTrans || !foundReg2 {
		t.Fatalf("configs = %v, want transitional:2 and regular:2", tr.configs)
	}
}
