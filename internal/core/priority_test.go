package core

import (
	"testing"

	"accelring/internal/wire"
)

func dataFrom(e *Engine, pid wire.ParticipantID, seq wire.Seq, round wire.Round, postToken bool) *wire.DataMessage {
	return &wire.DataMessage{
		RingID:    e.ring.ID,
		Seq:       seq,
		PID:       pid,
		Round:     round,
		PostToken: postToken,
		Service:   wire.ServiceAgreed,
	}
}

func TestPriorityStartsWithToken(t *testing.T) {
	e := newMember(t, 2, 3, accelConfig())
	if !e.TokenHasPriority() {
		t.Fatal("a fresh member must process the first token promptly")
	}
}

func TestDataGetsPriorityAfterToken(t *testing.T) {
	e := newMember(t, 2, 3, accelConfig())
	e.HandleToken(ringToken(e, 5, 1, 0, 0))
	if e.TokenHasPriority() {
		t.Fatal("token must lose priority right after being processed")
	}
}

func TestAggressiveRaisesOnAnyNextRoundPredecessorMessage(t *testing.T) {
	cfg := accelConfig()
	cfg.Priority = PriorityAggressive
	e := newMember(t, 2, 3, cfg) // ring 1,2,3; predecessor of 2 is 1
	e.HandleToken(ringToken(e, 5, 1, 0, 0))

	// A pre-token message from the predecessor's *next* round (round 5 >
	// our round 2) raises priority even without the post-token flag.
	e.HandleData(dataFrom(e, 1, 1, 5, false))
	if !e.TokenHasPriority() {
		t.Fatal("aggressive method must raise token priority on any next-round predecessor message")
	}
}

func TestConservativeWaitsForPostTokenMessage(t *testing.T) {
	cfg := accelConfig()
	cfg.Priority = PriorityConservative
	e := newMember(t, 2, 3, cfg)
	e.HandleToken(ringToken(e, 5, 1, 0, 0))

	e.HandleData(dataFrom(e, 1, 1, 5, false))
	if e.TokenHasPriority() {
		t.Fatal("conservative method must not raise priority on a pre-token message")
	}
	e.HandleData(dataFrom(e, 1, 2, 5, true))
	if !e.TokenHasPriority() {
		t.Fatal("conservative method must raise priority on a post-token next-round message")
	}
}

func TestPriorityIgnoresNonPredecessor(t *testing.T) {
	cfg := accelConfig()
	cfg.Priority = PriorityAggressive
	e := newMember(t, 2, 3, cfg) // predecessor is 1, not 3
	e.HandleToken(ringToken(e, 5, 1, 0, 0))
	e.HandleData(dataFrom(e, 3, 1, 9, true))
	if e.TokenHasPriority() {
		t.Fatal("messages from non-predecessors must not raise token priority")
	}
}

func TestPriorityIgnoresCurrentRoundMessages(t *testing.T) {
	cfg := accelConfig()
	cfg.Priority = PriorityAggressive
	e := newMember(t, 2, 3, cfg)
	e.HandleToken(ringToken(e, 5, 3, 0, 0)) // we process round 4
	// The predecessor's messages for the round whose token we already
	// processed (its round 3) must not raise priority.
	e.HandleData(dataFrom(e, 1, 1, 3, true))
	if e.TokenHasPriority() {
		t.Fatal("stale-round predecessor messages must not raise token priority")
	}
}

func TestPriorityCycleOverRounds(t *testing.T) {
	cfg := accelConfig()
	cfg.Priority = PriorityAggressive
	e := newMember(t, 2, 3, cfg)

	e.HandleToken(ringToken(e, 5, 1, 0, 0)) // round 2
	if e.TokenHasPriority() {
		t.Fatal("data should have priority after token")
	}
	e.HandleData(dataFrom(e, 1, 1, 5, false)) // predecessor round 5 (next)
	if !e.TokenHasPriority() {
		t.Fatal("token priority should rise before next token")
	}
	e.HandleToken(ringToken(e, 6, 4, 1, 0)) // round 5
	if e.TokenHasPriority() {
		t.Fatal("data should regain priority after the next token")
	}
}
