package core

import (
	"testing"
	"time"

	"accelring/internal/wire"
)

// TestRestartRejoinsRing crashes a node mid-stream, lets the survivors
// reconfigure, then revives it with a fresh engine: the new incarnation
// must rejoin through the membership protocol, the full ring must order
// traffic again, and the merged delivery logs of all incarnations must
// pass the conformance checker.
func TestRestartRejoinsRing(t *testing.T) {
	h := newHarness(t, 3, accelConfig())
	h.startStatic()
	for i := 0; i < 10; i++ {
		for id := wire.ParticipantID(1); id <= 3; id++ {
			h.submit(id, payload(id, i), wire.ServiceAgreed)
		}
	}
	h.run(100 * time.Millisecond)

	h.crash(3)
	h.waitConfig(5*time.Second, []wire.ParticipantID{1, 2}, 1, 2)
	for i := 100; i < 110; i++ {
		h.submit(1, payload(1, i), wire.ServiceAgreed)
		h.submit(2, payload(2, i), wire.ServiceSafe)
	}
	h.run(200 * time.Millisecond)

	h.restart(3)
	h.waitConfig(10*time.Second, []wire.ParticipantID{1, 2, 3}, 1, 2, 3)
	for i := 200; i < 210; i++ {
		for id := wire.ParticipantID(1); id <= 3; id++ {
			h.submit(id, payload(id, i), wire.ServiceAgreed)
		}
	}
	h.run(2 * time.Second)

	// The restarted incarnation must have delivered everything submitted
	// after the rejoin, in the same order as the survivors.
	n3 := h.node(3)
	var tail []*wire.DataMessage
	for _, m := range n3.appMsgs() {
		tail = append(tail, m)
	}
	if len(tail) < 30 {
		t.Fatalf("restarted node delivered %d messages, want at least the 30 post-rejoin ones", len(tail))
	}
	// Cross-node order is checked per configuration epoch by the EVS
	// checker (prefix alignment from index 0 would be wrong across
	// incarnations: the new incarnation's history starts at the rejoin).
	h.checkEVSQuiescent()

	// The archived first incarnation must be part of the checked log.
	if len(n3.prior) != 1 || len(n3.prior[0]) == 0 {
		t.Fatalf("first incarnation history not archived: %d prior logs", len(n3.prior))
	}
}

// TestRestartAfterTotalSilence restarts a node that crashed before the
// survivors noticed: the membership merge must still converge.
func TestDoubleRestart(t *testing.T) {
	h := newHarness(t, 3, accelConfig())
	h.startStatic()
	h.run(50 * time.Millisecond)

	for round := 0; round < 2; round++ {
		h.crash(2)
		h.waitConfig(5*time.Second, []wire.ParticipantID{1, 3}, 1, 3)
		h.restart(2)
		h.waitConfig(10*time.Second, []wire.ParticipantID{1, 2, 3}, 1, 2, 3)
	}
	for i := 0; i < 5; i++ {
		for id := wire.ParticipantID(1); id <= 3; id++ {
			h.submit(id, payload(id, i), wire.ServiceAgreed)
		}
	}
	h.run(1 * time.Second)
	h.checkAllDelivered(15, 1, 2, 3)
	h.checkEVSQuiescent()

	if len(h.node(2).prior) != 2 {
		t.Fatalf("node 2 should have 2 archived incarnations, has %d", len(h.node(2).prior))
	}
}
