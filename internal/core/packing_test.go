package core

import (
	"fmt"
	"testing"
	"time"

	"accelring/internal/wire"
)

func packedConfig(threshold int) Config {
	return Config{Protocol: ProtocolAcceleratedRing, PackThreshold: threshold}
}

func TestPackingCombinesSmallMessages(t *testing.T) {
	cfg := packedConfig(1350)
	cfg.MyID = 2
	e := newMember(t, 2, 3, cfg)
	for i := 0; i < 10; i++ {
		if err := e.Submit([]byte(fmt.Sprintf("small-%d", i)), wire.ServiceAgreed); err != nil {
			t.Fatal(err)
		}
	}
	actions := e.HandleToken(ringToken(e, 5, 1, 0, 0))
	sends := dataSends(actions)
	if len(sends) != 1 {
		t.Fatalf("sent %d packets, want 1 packed container", len(sends))
	}
	if !sends[0].Msg.Packed {
		t.Fatal("container not marked Packed")
	}
	// The container delivers as 10 individual messages.
	dels := deliveries(actions)
	if len(dels) != 10 {
		t.Fatalf("delivered %d messages, want 10", len(dels))
	}
	for i, d := range dels {
		if want := fmt.Sprintf("small-%d", i); string(d.Msg.Payload) != want {
			t.Fatalf("delivery %d = %q, want %q", i, d.Msg.Payload, want)
		}
		if d.Msg.Packed {
			t.Fatal("unpacked delivery still flagged Packed")
		}
	}
	if e.Stats().PayloadsPacked != 10 {
		t.Fatalf("PayloadsPacked = %d, want 10", e.Stats().PayloadsPacked)
	}
}

func TestPackingRespectsThreshold(t *testing.T) {
	cfg := packedConfig(100)
	cfg.MyID = 2
	e := newMember(t, 2, 3, cfg)
	// Each payload is 40 bytes; container overhead is 2 + 4/entry, so two
	// fit under 100 bytes (2+44+44=90) but three (134) do not.
	for i := 0; i < 6; i++ {
		if err := e.Submit(make([]byte, 40), wire.ServiceAgreed); err != nil {
			t.Fatal(err)
		}
	}
	actions := e.HandleToken(ringToken(e, 5, 1, 0, 0))
	sends := dataSends(actions)
	if len(sends) != 3 {
		t.Fatalf("sent %d packets, want 3 containers of 2", len(sends))
	}
	for _, s := range sends {
		if !s.Msg.Packed {
			t.Fatal("container not marked Packed")
		}
	}
	if got := len(deliveries(actions)); got != 6 {
		t.Fatalf("delivered %d, want 6", got)
	}
}

func TestPackingNeverMixesServices(t *testing.T) {
	cfg := packedConfig(1350)
	cfg.MyID = 2
	e := newMember(t, 2, 3, cfg)
	if err := e.Submit([]byte("a1"), wire.ServiceAgreed); err != nil {
		t.Fatal(err)
	}
	if err := e.Submit([]byte("a2"), wire.ServiceAgreed); err != nil {
		t.Fatal(err)
	}
	if err := e.Submit([]byte("s1"), wire.ServiceSafe); err != nil {
		t.Fatal(err)
	}
	if err := e.Submit([]byte("a3"), wire.ServiceAgreed); err != nil {
		t.Fatal(err)
	}
	actions := e.HandleToken(ringToken(e, 5, 1, 0, 0))
	sends := dataSends(actions)
	// a1+a2 pack; s1 alone (different service); a3 alone (after the break).
	if len(sends) != 3 {
		t.Fatalf("sent %d packets, want 3", len(sends))
	}
	if !sends[0].Msg.Packed || sends[0].Msg.Service != wire.ServiceAgreed {
		t.Fatalf("first packet: packed=%v service=%v", sends[0].Msg.Packed, sends[0].Msg.Service)
	}
	if sends[1].Msg.Packed || sends[1].Msg.Service != wire.ServiceSafe {
		t.Fatalf("second packet: packed=%v service=%v", sends[1].Msg.Packed, sends[1].Msg.Service)
	}
	if sends[2].Msg.Packed {
		t.Fatal("third packet should be a plain single message")
	}
}

func TestPackingDisabledByDefault(t *testing.T) {
	e := newMember(t, 2, 3, accelConfig())
	for i := 0; i < 5; i++ {
		if err := e.Submit([]byte("x"), wire.ServiceAgreed); err != nil {
			t.Fatal(err)
		}
	}
	actions := e.HandleToken(ringToken(e, 5, 1, 0, 0))
	if got := len(dataSends(actions)); got != 5 {
		t.Fatalf("sent %d packets without packing, want 5", got)
	}
}

func TestPackingLargeMessagePassesThrough(t *testing.T) {
	cfg := packedConfig(200)
	cfg.MyID = 2
	e := newMember(t, 2, 3, cfg)
	big := make([]byte, 500) // exceeds the threshold alone
	if err := e.Submit(big, wire.ServiceAgreed); err != nil {
		t.Fatal(err)
	}
	if err := e.Submit([]byte("tiny"), wire.ServiceAgreed); err != nil {
		t.Fatal(err)
	}
	actions := e.HandleToken(ringToken(e, 5, 1, 0, 0))
	sends := dataSends(actions)
	if len(sends) != 2 {
		t.Fatalf("sent %d packets, want 2", len(sends))
	}
	if sends[0].Msg.Packed {
		t.Fatal("oversized message must not be packed")
	}
	if len(sends[0].Msg.Payload) != 500 {
		t.Fatalf("first packet payload %d bytes", len(sends[0].Msg.Payload))
	}
}

func TestPackedClusterEndToEnd(t *testing.T) {
	cfg := packedConfig(1350)
	h := newHarness(t, 3, cfg)
	h.startStatic()
	const perNode = 50
	for i := 0; i < perNode; i++ {
		for id := wire.ParticipantID(1); id <= 3; id++ {
			h.submit(id, payload(id, i), wire.ServiceAgreed)
		}
	}
	h.run(2 * time.Second)
	h.checkAllDelivered(perNode*3, 1, 2, 3)
	h.checkTotalOrder(1, 2, 3)
	packed := uint64(0)
	for _, n := range h.nodes {
		packed += n.eng.Stats().PayloadsPacked
	}
	if packed == 0 {
		t.Fatal("no payloads travelled packed")
	}
}

func TestPackedClusterSafeDelivery(t *testing.T) {
	cfg := packedConfig(1350)
	h := newHarness(t, 3, cfg)
	h.startStatic()
	for i := 0; i < 30; i++ {
		h.submit(1, payload(1, i), wire.ServiceSafe)
	}
	h.run(2 * time.Second)
	h.checkAllDelivered(30, 1, 2, 3)
	for _, n := range h.nodes {
		if got := n.eng.Stats().SafeDelivered; got != 30 {
			t.Fatalf("node %s SafeDelivered = %d, want 30", n.id, got)
		}
	}
}

func TestPackedSurvivesLossAndRetransmission(t *testing.T) {
	cfg := packedConfig(1350)
	h := newHarness(t, 3, cfg)
	h.dropData = lossEvery(5)
	h.startStatic()
	for i := 0; i < 40; i++ {
		for id := wire.ParticipantID(1); id <= 3; id++ {
			h.submit(id, payload(id, i), wire.ServiceAgreed)
		}
	}
	h.run(5 * time.Second)
	h.checkAllDelivered(120, 1, 2, 3)
	h.checkTotalOrder(1, 2, 3)
}

func TestPackedSurvivesMembershipChange(t *testing.T) {
	cfg := packedConfig(1350)
	h := newHarness(t, 3, cfg)
	h.startStatic()
	for i := 0; i < 30; i++ {
		h.submit(1, payload(1, i), wire.ServiceAgreed)
		h.submit(2, payload(2, i), wire.ServiceAgreed)
	}
	h.run(2 * time.Millisecond)
	h.crash(3)
	h.waitConfig(3*time.Second, []wire.ParticipantID{1, 2}, 1, 2)
	h.run(2 * time.Second)
	h.checkAllDelivered(60, 1, 2)
	h.checkTotalOrder(1, 2)
}

func TestPackThresholdValidation(t *testing.T) {
	if _, err := New(Config{MyID: 1, PackThreshold: -1}); err == nil {
		t.Fatal("negative threshold accepted")
	}
	if _, err := New(Config{MyID: 1, PackThreshold: wire.MaxPayload + 1}); err == nil {
		t.Fatal("oversized threshold accepted")
	}
}
