// Package core implements the Accelerated Ring ordering protocol of Babay
// and Amir ("Fast Total Ordering for Modern Data Centers", ICDCS 2016),
// together with the Totem-style membership algorithm that gives it Extended
// Virtual Synchrony semantics, and the original Ring protocol baseline the
// paper compares against.
//
// The engine is a deterministic, single-goroutine state machine. It owns no
// sockets, timers or goroutines: every input (a decoded packet, a timer
// expiry, an application submission) is a method call, and every output is
// a slice of Actions the caller must execute in order. The same engine code
// therefore runs over real UDP multicast sockets, an in-memory test
// transport, and the discrete-event network simulator used to regenerate
// the paper's figures.
package core

import (
	"fmt"

	"accelring/internal/flowctl"
	"accelring/internal/msgbuf"
	"accelring/internal/wire"
)

// State is the engine's membership state.
type State uint8

// Engine states, following the Totem membership algorithm.
const (
	// StateGather: exchanging join messages to agree on a membership.
	StateGather State = iota + 1
	// StateCommit: circulating the commit token for a proposed ring.
	StateCommit
	// StateRecovery: exchanging old-ring messages on the new ring.
	StateRecovery
	// StateOperational: normal-case total ordering on an installed ring.
	StateOperational
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateGather:
		return "gather"
	case StateCommit:
		return "commit"
	case StateRecovery:
		return "recovery"
	case StateOperational:
		return "operational"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// submission is an application message waiting to be initiated.
type submission struct {
	payload []byte
	service wire.Service
}

// Engine is one protocol participant. It is not safe for concurrent use;
// the runtime that owns it must serialize all calls.
type Engine struct {
	cfg  Config
	flow *flowctl.Controller

	state         State
	tokenPriority bool

	// Current ring (the ring whose token circulates; during Recovery this
	// is already the ring being formed, even though the application-level
	// configuration change is delivered only when recovery completes).
	ring    Configuration
	myIndex int
	buf     *msgbuf.Buffer

	// Application backlog (head-indexed queue).
	pending     []submission
	pendingHead int

	// accelWindow is the effective accelerated window; fixed at
	// Flow.AcceleratedWindow unless AdaptiveWindow is enabled.
	accelWindow int
	// cleanRounds counts consecutive token receipts without a
	// retransmission burst, for adaptive window increase.
	cleanRounds int

	// Operational/recovery per-ring state.
	round        wire.Round // hop count of the last token processed
	lastTokenSeq uint64     // highest TokenSeq accepted (duplicate filter)
	prevTokenSeq wire.Seq   // seq of the token received in the previous round
	aruSentLast  wire.Seq   // aru on the token forwarded last round
	safeBound    wire.Seq   // min(aru sent this round, aru sent last round)
	sentToken    *wire.Token

	// Per-round scratch, reused so the steady-state token round does not
	// allocate: newMsgsScratch backs handleRegularToken's new-message list
	// (only the *DataMessage pointers escape into actions, never the slice)
	// and packBatch backs nextOperationalMessage's packing batch (the
	// packed container itself is freshly allocated — it is retained in the
	// message buffer until stability).
	newMsgsScratch []*wire.DataMessage
	packBatch      [][]byte

	// Gather state.
	procSet    map[wire.ParticipantID]bool
	failSet    map[wire.ParticipantID]bool
	joins      map[wire.ParticipantID]*wire.JoinMessage
	maxRingSeq uint64

	// Commit / Recovery state.
	pendingRing     Configuration
	commitInfo      []wire.CommitMember
	oldRing         Configuration
	oldBuf          *msgbuf.Buffer
	oldSafeBound    wire.Seq
	obligations     []*wire.DataMessage
	obligationsHead int
	markerSent      bool
	recoveryMarkers map[wire.ParticipantID]wire.Seq

	stats Stats
}

// New creates an engine. The engine starts idle: call Start to begin
// membership formation, or StartWithRing to install a static ring (the
// paper's normal-case evaluation setup).
func New(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Engine{
		cfg:           cfg,
		flow:          flowctl.NewController(cfg.Flow),
		accelWindow:   cfg.Flow.AcceleratedWindow,
		tokenPriority: true,
	}, nil
}

// Config returns the engine's effective (defaulted) configuration.
func (e *Engine) Config() Config { return e.cfg }

// State returns the engine's membership state (zero before Start).
func (e *Engine) State() State { return e.state }

// Ring returns a copy of the current ring configuration. During membership
// formation it is the last ring whose token circulated (possibly the ring
// being formed, before its configuration event has been delivered).
func (e *Engine) Ring() Configuration { return e.ring.Clone() }

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	st := e.stats
	st.AccelWindow = e.accelWindow
	return st
}

// PendingLen returns the number of submitted-but-uninitiated messages.
func (e *Engine) PendingLen() int { return len(e.pending) - e.pendingHead }

// TokenHasPriority reports whether the runtime should prefer reading from
// the token socket over the data socket when both have input available
// (Section III-C). While false, the token must be processed only when no
// data message is available.
func (e *Engine) TokenHasPriority() bool { return e.tokenPriority }

// Submit queues an application message for totally ordered multicast. The
// message will be initiated on a future token visit, ordered, and delivered
// back to all ring members (including this one). Submit fails when the
// backlog is full, providing backpressure.
func (e *Engine) Submit(payload []byte, service wire.Service) error {
	if !service.Valid() {
		return fmt.Errorf("core: invalid service %d", uint8(service))
	}
	if len(payload) > wire.MaxPayload {
		return fmt.Errorf("core: payload %d exceeds maximum %d", len(payload), wire.MaxPayload)
	}
	if e.PendingLen() >= e.cfg.MaxPending {
		return ErrBacklogFull
	}
	// FIFO and Causal are provided via the Agreed machinery: the token
	// ring's total order respects causality (Section II).
	if service == wire.ServiceFIFO || service == wire.ServiceCausal {
		service = wire.ServiceAgreed
	}
	e.pending = append(e.pending, submission{payload: payload, service: service})
	return nil
}

// popPending removes and returns the oldest backlog entry. The caller must
// ensure the backlog is non-empty.
func (e *Engine) popPending() submission {
	s := e.pending[e.pendingHead]
	e.pending[e.pendingHead] = submission{} // release payload
	e.pendingHead++
	if e.pendingHead > 64 && e.pendingHead*2 >= len(e.pending) {
		n := copy(e.pending, e.pending[e.pendingHead:])
		e.pending = e.pending[:n]
		e.pendingHead = 0
	}
	return s
}

// Start begins membership formation from scratch: the engine multicasts
// join messages and will eventually install a ring — a singleton one if no
// other participant is reachable.
func (e *Engine) Start() []Action {
	return e.enterGather()
}

// StartWithRing installs a static ring directly, skipping membership
// formation: every participant must be started with the identical member
// list, and the representative (the smallest ID, which must be first after
// sorting) injects the first token. This mirrors the paper's protocol
// description, which assumes membership has been established and the first
// regular token sent. The installed configuration is delivered as an
// application-visible event.
func (e *Engine) StartWithRing(members []wire.ParticipantID) ([]Action, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("%w: empty member list", ErrBadMembership)
	}
	sorted := sortedIDs(members)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return nil, fmt.Errorf("%w: duplicate member %s", ErrBadMembership, sorted[i])
		}
	}
	cfg := Configuration{ID: wire.RingID{Rep: sorted[0], Seq: 4}, Members: sorted}
	idx := cfg.indexOf(e.cfg.MyID)
	if idx < 0 {
		return nil, fmt.Errorf("%w: %s not in member list", ErrBadMembership, e.cfg.MyID)
	}
	e.installRing(cfg)
	e.setState(StateOperational)
	e.stats.MembershipChanges++
	e.traceConfig(cfg, false)
	actions := []Action{
		DeliverConfig{Config: cfg.Clone(), Transitional: false},
		SetTimer{Kind: TimerTokenLoss, After: e.cfg.TokenLossTimeout},
	}
	if idx == 0 {
		// The representative injects the first token by processing a
		// synthetic initial token locally.
		initial := &wire.Token{RingID: cfg.ID, TokenSeq: 1}
		actions = append(actions, e.handleRegularToken(initial)...)
	}
	return actions, nil
}

// installRing resets all per-ring protocol state for a newly installed or
// forming ring. The caller sets e.state.
func (e *Engine) installRing(cfg Configuration) {
	e.ring = cfg
	e.myIndex = cfg.indexOf(e.cfg.MyID)
	e.buf = msgbuf.New(0)
	e.round = 0
	e.lastTokenSeq = 0
	e.prevTokenSeq = 0
	e.aruSentLast = 0
	e.safeBound = 0
	e.sentToken = nil
	e.markerSent = false
	e.recoveryMarkers = nil
	e.tokenPriority = true
	e.flow.Reset()
}

// successor returns the next participant on the ring after this one.
func (e *Engine) successor() wire.ParticipantID {
	return e.ring.Members[(e.myIndex+1)%len(e.ring.Members)]
}

// predecessor returns the previous participant on the ring.
func (e *Engine) predecessor() wire.ParticipantID {
	n := len(e.ring.Members)
	return e.ring.Members[(e.myIndex+n-1)%n]
}

// HandleTimer processes a timer expiry previously requested via SetTimer.
func (e *Engine) HandleTimer(kind TimerKind) []Action {
	switch kind {
	case TimerTokenLoss:
		if e.state == StateOperational || e.state == StateRecovery {
			return e.enterGather()
		}
	case TimerTokenRetrans:
		if (e.state == StateOperational || e.state == StateRecovery) && e.sentToken != nil {
			e.stats.TokenRetransmits++
			return []Action{
				SendToken{To: e.successor(), Token: e.sentToken.Clone()},
				SetTimer{Kind: TimerTokenRetrans, After: e.cfg.TokenRetransPeriod},
			}
		}
	case TimerJoin:
		if e.state == StateGather {
			return []Action{
				SendJoin{Join: e.makeJoin()},
				SetTimer{Kind: TimerJoin, After: e.cfg.JoinPeriod},
			}
		}
	case TimerConsensus:
		if e.state == StateGather {
			return e.consensusTimeout()
		}
	case TimerCommit:
		if e.state == StateCommit {
			return e.enterGather()
		}
	}
	return nil
}

// sortedIDs returns a sorted copy of ids.
func sortedIDs(ids []wire.ParticipantID) []wire.ParticipantID {
	out := make([]wire.ParticipantID, len(ids))
	copy(out, ids)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func minSeq(a, b wire.Seq) wire.Seq {
	if a < b {
		return a
	}
	return b
}
