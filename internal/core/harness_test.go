package core

import (
	"container/heap"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"accelring/internal/evscheck"
	"accelring/internal/faultplan"
	"accelring/internal/wire"
)

// The tests in this file drive whole rings of engines through a
// deterministic, virtual-time harness: engine actions are executed
// immediately, sends become future events on a priority queue, and timers
// are modelled exactly as a runtime would. No goroutines, no wall clock.

const defaultHopDelay = 100 * time.Microsecond

// delivery records one application-visible event at a node.
type delivery struct {
	msg    *wire.DataMessage // nil for configuration events
	config Configuration
	trans  bool
}

type hevent struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type heventQueue []*hevent

func (q heventQueue) Len() int { return len(q) }
func (q heventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q heventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *heventQueue) Push(x any)   { *q = append(*q, x.(*hevent)) }
func (q *heventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

type hnode struct {
	id        wire.ParticipantID
	eng       *Engine
	timers    map[TimerKind]time.Duration // armed deadline per kind
	delivered []delivery
	crashed   bool
	// prior holds the delivery histories of earlier incarnations of this
	// node (one entry per crash that was followed by a restart).
	prior [][]delivery
}

// appMsgs returns the node's delivered application messages.
func (n *hnode) appMsgs() []*wire.DataMessage {
	var out []*wire.DataMessage
	for _, d := range n.delivered {
		if d.msg != nil {
			out = append(out, d.msg)
		}
	}
	return out
}

// configs returns the node's delivered configuration events.
func (n *hnode) configs() []delivery {
	var out []delivery
	for _, d := range n.delivered {
		if d.msg == nil {
			out = append(out, d)
		}
	}
	return out
}

type harness struct {
	t      *testing.T
	tmpl   Config
	nodes  []*hnode
	byID   map[wire.ParticipantID]*hnode
	now    time.Duration
	events heventQueue
	evSeq  uint64
	delay  time.Duration

	// fault, when non-nil, is consulted for every packet transmission; it
	// can drop, duplicate or delay packets and enforces the fault plan's
	// partition schedule. Installed by applyPlan.
	fault *faultplan.Injector

	// partition maps node ID to a group number; messages only flow between
	// nodes in the same group. Empty map means fully connected.
	partition map[wire.ParticipantID]int
	// dropData, when non-nil, decides whether a multicast data message is
	// lost on the way from one node to another.
	dropData func(from, to wire.ParticipantID, m *wire.DataMessage) bool
	// dropToken, when non-nil, decides whether a token transmission is
	// lost.
	dropToken func(from, to wire.ParticipantID, tok *wire.Token) bool
	// checkInvariantsEveryStep runs the engine invariant checker after
	// every handler invocation.
	checkInvariantsEveryStep bool
	// dupData, when non-nil, decides whether to deliver a data message
	// twice (UDP can duplicate packets).
	dupData func(from, to wire.ParticipantID, m *wire.DataMessage) bool
	// jitter, when non-nil, returns extra per-packet delivery delay;
	// unequal delays reorder packets in flight, as UDP may.
	jitter func() time.Duration
}

// newHarness builds n engines with IDs 1..n and the given config template
// (MyID is filled in per node).
func newHarness(t *testing.T, n int, tmpl Config) *harness {
	t.Helper()
	h := &harness{
		t:         t,
		tmpl:      tmpl,
		byID:      make(map[wire.ParticipantID]*hnode, n),
		delay:     defaultHopDelay,
		partition: map[wire.ParticipantID]int{},
	}
	for i := 1; i <= n; i++ {
		cfg := h.nodeConfig(wire.ParticipantID(i))
		eng, err := New(cfg)
		if err != nil {
			t.Fatalf("New engine %d: %v", i, err)
		}
		node := &hnode{id: cfg.MyID, eng: eng, timers: make(map[TimerKind]time.Duration)}
		h.nodes = append(h.nodes, node)
		h.byID[cfg.MyID] = node
	}
	return h
}

// nodeConfig instantiates the harness config template for one node, with
// short timers so membership tests run in small virtual time.
func (h *harness) nodeConfig(id wire.ParticipantID) Config {
	cfg := h.tmpl
	cfg.MyID = id
	if cfg.TokenLossTimeout == 0 {
		cfg.TokenLossTimeout = 50 * time.Millisecond
	}
	if cfg.TokenRetransPeriod == 0 {
		cfg.TokenRetransPeriod = 10 * time.Millisecond
	}
	if cfg.JoinPeriod == 0 {
		cfg.JoinPeriod = 5 * time.Millisecond
	}
	if cfg.ConsensusTimeout == 0 {
		cfg.ConsensusTimeout = 25 * time.Millisecond
	}
	if cfg.CommitTimeout == 0 {
		cfg.CommitTimeout = 25 * time.Millisecond
	}
	return cfg
}

func (h *harness) node(id wire.ParticipantID) *hnode { return h.byID[id] }

func (h *harness) schedule(after time.Duration, fn func()) {
	h.evSeq++
	heap.Push(&h.events, &hevent{at: h.now + after, seq: h.evSeq, fn: fn})
}

// connected reports whether traffic flows from a to b.
func (h *harness) connected(a, b wire.ParticipantID) bool {
	if h.node(a) == nil || h.node(b) == nil || h.node(a).crashed || h.node(b).crashed {
		return false
	}
	return h.partition[a] == h.partition[b]
}

// execute runs an action list produced by node's engine.
func (h *harness) execute(n *hnode, actions []Action) {
	if h.checkInvariantsEveryStep {
		n.eng.checkInvariants(h.t)
	}
	for _, a := range actions {
		switch act := a.(type) {
		case SendData:
			h.multicastData(n, act.Msg)
		case SendToken:
			h.sendToken(n, act.To, act.Token)
		case SendJoin:
			h.multicastJoin(n, act.Join)
		case SendCommit:
			h.sendCommit(n, act.To, act.Commit)
		case Deliver:
			n.delivered = append(n.delivered, delivery{msg: act.Msg})
		case DeliverConfig:
			n.delivered = append(n.delivered, delivery{config: act.Config, trans: act.Transitional})
		case SetTimer:
			deadline := h.now + act.After
			n.timers[act.Kind] = deadline
			kind := act.Kind
			h.schedule(act.After, func() {
				if n.crashed {
					return
				}
				if d, ok := n.timers[kind]; ok && d == deadline {
					delete(n.timers, kind)
					h.execute(n, n.eng.HandleTimer(kind))
				}
			})
		case CancelTimer:
			delete(n.timers, act.Kind)
		default:
			h.t.Fatalf("unknown action %T", a)
		}
	}
}

// faultVerdict consults the installed fault plan for one transmission.
func (h *harness) faultVerdict(from, to wire.ParticipantID, kind wire.Kind) faultplan.Verdict {
	if h.fault == nil {
		return faultplan.Verdict{}
	}
	return h.fault.Decide(h.now, from, to, kind)
}

func (h *harness) multicastData(from *hnode, m *wire.DataMessage) {
	for _, to := range h.nodes {
		if to.id == from.id || !h.connected(from.id, to.id) {
			continue
		}
		if h.dropData != nil && h.dropData(from.id, to.id, m) {
			continue
		}
		v := h.faultVerdict(from.id, to.id, wire.KindData)
		if v.Drop {
			continue
		}
		copies := 1
		if v.Dup || (h.dupData != nil && h.dupData(from.id, to.id, m)) {
			copies = 2
		}
		for c := 0; c < copies; c++ {
			cp := *m
			target := to
			delay := h.delay + v.Delay
			if h.jitter != nil {
				delay += h.jitter()
			}
			h.schedule(delay, func() {
				if !target.crashed {
					h.execute(target, target.eng.HandleData(&cp))
				}
			})
		}
	}
}

func (h *harness) sendToken(from *hnode, toID wire.ParticipantID, tok *wire.Token) {
	if !h.connected(from.id, toID) && toID != from.id {
		return
	}
	if h.dropToken != nil && h.dropToken(from.id, toID, tok) {
		return
	}
	v := h.faultVerdict(from.id, toID, wire.KindToken)
	if v.Drop {
		return
	}
	target := h.node(toID)
	copies := 1
	if v.Dup {
		copies = 2
	}
	for c := 0; c < copies; c++ {
		cp := tok.Clone()
		h.schedule(h.delay+v.Delay, func() {
			if target != nil && !target.crashed {
				h.execute(target, target.eng.HandleToken(cp))
			}
		})
	}
}

func (h *harness) multicastJoin(from *hnode, j *wire.JoinMessage) {
	for _, to := range h.nodes {
		if to.id == from.id || !h.connected(from.id, to.id) {
			continue
		}
		v := h.faultVerdict(from.id, to.id, wire.KindJoin)
		if v.Drop {
			continue
		}
		cp := *j
		target := to
		h.schedule(h.delay+v.Delay, func() {
			if !target.crashed {
				h.execute(target, target.eng.HandleJoin(&cp))
			}
		})
	}
}

func (h *harness) sendCommit(from *hnode, toID wire.ParticipantID, ct *wire.CommitToken) {
	if !h.connected(from.id, toID) && toID != from.id {
		return
	}
	v := h.faultVerdict(from.id, toID, wire.KindCommit)
	if v.Drop {
		return
	}
	cp := ct.Clone()
	target := h.node(toID)
	h.schedule(h.delay+v.Delay, func() {
		if target != nil && !target.crashed {
			h.execute(target, target.eng.HandleCommit(cp))
		}
	})
}

// startStatic boots every node with the same static ring (all node IDs).
func (h *harness) startStatic() {
	members := make([]wire.ParticipantID, 0, len(h.nodes))
	for _, n := range h.nodes {
		members = append(members, n.id)
	}
	for _, n := range h.nodes {
		actions, err := n.eng.StartWithRing(members)
		if err != nil {
			h.t.Fatalf("StartWithRing(%s): %v", n.id, err)
		}
		h.execute(n, actions)
	}
}

// startGather boots every node through membership formation.
func (h *harness) startGather() {
	for _, n := range h.nodes {
		h.execute(n, n.eng.Start())
	}
}

// submit queues an application message at a node immediately.
func (h *harness) submit(id wire.ParticipantID, payload []byte, svc wire.Service) {
	n := h.node(id)
	if err := n.eng.Submit(payload, svc); err != nil {
		h.t.Fatalf("Submit at %s: %v", id, err)
	}
}

// run advances virtual time by d, processing all events due in that span.
func (h *harness) run(d time.Duration) {
	deadline := h.now + d
	for h.events.Len() > 0 {
		next := h.events[0]
		if next.at > deadline {
			break
		}
		heap.Pop(&h.events)
		h.now = next.at
		next.fn()
	}
	h.now = deadline
}

// crash marks a node dead: it stops receiving, sending and firing timers.
func (h *harness) crash(id wire.ParticipantID) {
	h.node(id).crashed = true
}

// restart revives a crashed node with a fresh engine (a new incarnation):
// the old delivery history is archived, all timers are cleared, and the
// new engine starts membership formation to rejoin the ring.
func (h *harness) restart(id wire.ParticipantID) {
	n := h.node(id)
	if !n.crashed {
		h.t.Fatalf("restart(%s): node is not crashed", id)
	}
	eng, err := New(h.nodeConfig(id))
	if err != nil {
		h.t.Fatalf("restart(%s): %v", id, err)
	}
	n.prior = append(n.prior, n.delivered)
	n.delivered = nil
	n.eng = eng
	n.timers = make(map[TimerKind]time.Duration)
	n.crashed = false
	h.execute(n, eng.Start())
}

// applyPlan installs a fault plan: link faults and partitions are enforced
// on every future transmission, and the plan's crash/restart events are
// scheduled at their virtual times. Call before starting the nodes.
func (h *harness) applyPlan(p *faultplan.Plan) {
	h.fault = p.Injector()
	for _, ev := range p.NodeEvents() {
		ev := ev
		switch ev.Kind {
		case faultplan.EventCrash:
			h.schedule(ev.At-h.now, func() { h.crash(ev.Node) })
		case faultplan.EventRestart:
			h.schedule(ev.At-h.now, func() { h.restart(ev.Node) })
			// Partition and heal events are enforced by the injector on
			// every transmission; nothing to schedule here.
		}
	}
}

// trySubmit queues an application message at a node, tolerating crashed
// nodes and full backlogs (chaos traffic generators must not abort the
// test when the plan has just killed their node).
func (h *harness) trySubmit(id wire.ParticipantID, payload []byte, svc wire.Service) bool {
	n := h.node(id)
	if n.crashed {
		return false
	}
	return n.eng.Submit(payload, svc) == nil
}

// payload builds a distinguishable payload.
func payload(node wire.ParticipantID, i int) []byte {
	return []byte(fmt.Sprintf("m-%d-%d", node, i))
}

// checkTotalOrder verifies that the application message streams delivered
// by the given nodes are consistent: each pair's payload sequences must be
// equal up to the length of the shorter one.
func (h *harness) checkTotalOrder(ids ...wire.ParticipantID) {
	h.t.Helper()
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			a := h.node(ids[i]).appMsgs()
			b := h.node(ids[j]).appMsgs()
			n := len(a)
			if len(b) < n {
				n = len(b)
			}
			for k := 0; k < n; k++ {
				if string(a[k].Payload) != string(b[k].Payload) {
					h.t.Fatalf("total order violated: node %s delivered %q at %d, node %s delivered %q",
						ids[i], a[k].Payload, k, ids[j], b[k].Payload)
				}
			}
		}
	}
}

// checkAllDelivered verifies that each listed node delivered exactly want
// application messages.
func (h *harness) checkAllDelivered(want int, ids ...wire.ParticipantID) {
	h.t.Helper()
	for _, id := range ids {
		if got := len(h.node(id).appMsgs()); got != want {
			h.t.Fatalf("node %s delivered %d messages, want %d", id, got, want)
		}
	}
}

// evLog converts every node's history (all incarnations) into the
// conformance checker's log format. Harness payloads ("m-<sender>-<idx>")
// provide the message key and the per-sender FIFO counter; other payloads
// are checked for ordering and duplication only.
func (h *harness) evLog() evscheck.Log {
	l := evscheck.Log{}
	for _, n := range h.nodes {
		for inc, hist := range n.prior {
			nl := l.Node(logName(n.id, inc))
			nl.Crashed = true // an archived incarnation ended in a crash
			appendEvents(nl, hist)
		}
		nl := l.Node(logName(n.id, len(n.prior)))
		nl.Crashed = n.crashed
		appendEvents(nl, n.delivered)
	}
	return l
}

// logName labels one incarnation of a node: "3" for the first, "3#2" for
// the second (after one restart), and so on.
func logName(id wire.ParticipantID, incarnation int) string {
	if incarnation == 0 {
		return fmt.Sprintf("%d", uint32(id))
	}
	return fmt.Sprintf("%d#%d", uint32(id), incarnation+1)
}

func appendEvents(nl *evscheck.NodeLog, hist []delivery) {
	for _, d := range hist {
		if d.msg == nil {
			nl.Install(d.config.ID, d.config.Members, d.trans)
			continue
		}
		key := string(d.msg.Payload)
		var sender, idx int
		if _, err := fmt.Sscanf(key, "m-%d-%d", &sender, &idx); err == nil {
			nl.Deliver(key, wire.ParticipantID(sender), uint64(idx)+1, d.msg.Service)
		} else {
			nl.Deliver(key, 0, 0, d.msg.Service)
		}
	}
}

// lossEvery returns a drop function that drops every k-th matching data
// message deterministically.
func lossEvery(k int) func(from, to wire.ParticipantID, m *wire.DataMessage) bool {
	count := 0
	return func(from, to wire.ParticipantID, m *wire.DataMessage) bool {
		count++
		return count%k == 0
	}
}

// randomLoss returns a drop function with probability p and a fixed seed.
func randomLoss(seed int64, p float64) func(from, to wire.ParticipantID, m *wire.DataMessage) bool {
	rng := rand.New(rand.NewSource(seed))
	return func(from, to wire.ParticipantID, m *wire.DataMessage) bool {
		return rng.Float64() < p
	}
}
