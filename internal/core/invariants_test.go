package core

import (
	"testing"
	"time"

	"accelring/internal/wire"
)

// checkInvariants asserts the engine's internal consistency conditions.
// The harness calls it after every handler invocation (see execute), so
// any protocol step that breaks an invariant fails the test at the exact
// step that broke it.
func (e *Engine) checkInvariants(t *testing.T) {
	t.Helper()
	switch e.state {
	case StateOperational, StateRecovery:
		if e.buf == nil {
			t.Fatalf("%s: %s state without a buffer", e.cfg.MyID, e.state)
		}
		if e.myIndex < 0 || e.myIndex >= len(e.ring.Members) || e.ring.Members[e.myIndex] != e.cfg.MyID {
			t.Fatalf("%s: bad ring index %d in %v", e.cfg.MyID, e.myIndex, e.ring.Members)
		}
		// The safe bound can never exceed what this node itself holds
		// contiguously: it is the min over everyone's acknowledged state.
		if e.safeBound > e.buf.LocalARU() {
			t.Fatalf("%s: safeBound %d > localARU %d", e.cfg.MyID, e.safeBound, e.buf.LocalARU())
		}
		// Buffer-internal ordering (delivery never outruns receipt etc.)
		if e.buf.Stable() > e.buf.Delivered() || e.buf.Delivered() > e.buf.LocalARU() ||
			e.buf.LocalARU() > e.buf.HighSeq() {
			t.Fatalf("%s: buffer cursors disordered: stable %d delivered %d aru %d high %d",
				e.cfg.MyID, e.buf.Stable(), e.buf.Delivered(), e.buf.LocalARU(), e.buf.HighSeq())
		}
	case StateGather:
		if e.procSet == nil || !e.procSet[e.cfg.MyID] {
			t.Fatalf("%s: gather without self in proc set", e.cfg.MyID)
		}
		if e.failSet[e.cfg.MyID] {
			t.Fatalf("%s: self in own fail set", e.cfg.MyID)
		}
	case StateCommit:
		if !e.pendingRing.Contains(e.cfg.MyID) {
			t.Fatalf("%s: committing to a ring that excludes self: %v",
				e.cfg.MyID, e.pendingRing.Members)
		}
	}
	if e.pendingHead > len(e.pending) {
		t.Fatalf("%s: pending head %d beyond queue %d", e.cfg.MyID, e.pendingHead, len(e.pending))
	}
	if e.state == StateRecovery {
		if e.obligationsHead > len(e.obligations) {
			t.Fatalf("%s: obligations head %d beyond %d",
				e.cfg.MyID, e.obligationsHead, len(e.obligations))
		}
		if e.recoveryMarkers == nil {
			t.Fatalf("%s: recovery without marker tracking", e.cfg.MyID)
		}
	}
}

// TestInvariantsUnderLoad drives the mixed-fault gauntlet with invariant
// checking enabled on every step of every node.
func TestInvariantsUnderLoad(t *testing.T) {
	h := newHarness(t, 4, accelConfig())
	h.checkInvariantsEveryStep = true
	h.dropData = randomLoss(5, 0.05)
	h.startStatic()
	for i := 0; i < 30; i++ {
		for id := wire.ParticipantID(1); id <= 4; id++ {
			svc := wire.ServiceAgreed
			if i%2 == 0 {
				svc = wire.ServiceSafe
			}
			h.submit(id, payload(id, i), svc)
		}
	}
	h.run(5 * time.Millisecond)
	h.crash(4)
	h.waitConfig(5*time.Second, []wire.ParticipantID{1, 2, 3}, 1, 2, 3)
	h.run(3 * time.Second)
	h.checkTotalOrder(1, 2, 3)
}

// TestInvariantsUnderPartitionMerge does the same across a partition and
// merge cycle.
func TestInvariantsUnderPartitionMerge(t *testing.T) {
	h := newHarness(t, 4, accelConfig())
	h.checkInvariantsEveryStep = true
	h.startStatic()
	h.run(50 * time.Millisecond)
	h.partition[3] = 1
	h.partition[4] = 1
	h.waitConfig(3*time.Second, []wire.ParticipantID{1, 2}, 1, 2)
	h.waitConfig(3*time.Second, []wire.ParticipantID{3, 4}, 3, 4)
	for i := 0; i < 5; i++ {
		h.submit(1, payload(1, i), wire.ServiceSafe)
		h.submit(3, payload(3, i), wire.ServiceSafe)
	}
	h.run(500 * time.Millisecond)
	h.partition = map[wire.ParticipantID]int{}
	h.submit(2, payload(2, 50), wire.ServiceAgreed)
	all := []wire.ParticipantID{1, 2, 3, 4}
	h.waitConfig(10*time.Second, all, all...)
	h.run(1 * time.Second)
	h.checkEVS()
}
