package core

import (
	"accelring/internal/wire"
)

// HandleToken processes a received regular token.
func (e *Engine) HandleToken(tok *wire.Token) []Action {
	switch e.state {
	case StateOperational, StateRecovery:
		if tok.RingID != e.ring.ID {
			// A token from another ring is always stale: tokens are
			// unicast along a ring we are (or were) part of. Drop it;
			// merges are driven by multicast joins and data messages.
			return nil
		}
		if tok.TokenSeq <= e.lastTokenSeq {
			e.stats.TokensDuplicate++
			return nil
		}
		return e.handleRegularToken(tok)
	default:
		// Tokens are meaningless while gathering or committing.
		return nil
	}
}

// handleRegularToken implements Section III-A of the paper: pre-token
// multicasting (retransmissions plus the new messages that exceed the
// accelerated window), token update and forwarding, post-token
// multicasting, and delivery/discard. In the Recovery state the same
// machinery runs, but the messages initiated are wrapped old-ring messages
// and application delivery is deferred until recovery completes.
//
// The returned action order is the protocol: everything appended before the
// SendToken action is the pre-token phase, everything after it the
// post-token phase.
func (e *Engine) handleRegularToken(tok *wire.Token) []Action {
	e.stats.TokensProcessed++
	e.adaptWindow(len(tok.RTR))
	e.lastTokenSeq = tok.TokenSeq
	e.round = tok.Round + 1
	tok.Round = e.round
	tok.TokenSeq++

	actions := make([]Action, 0, 8)

	// --- Pre-token phase 1: answer retransmission requests. All
	// retransmissions must be sent before the token; otherwise they may be
	// requested again (Section III-A1).
	var unanswered []wire.Seq
	numRetrans := 0
	for _, s := range tok.RTR {
		if m := e.buf.Get(s); m != nil {
			rm := *m
			rm.Retrans = true
			actions = append(actions, SendData{Msg: &rm})
			numRetrans++
		} else {
			unanswered = append(unanswered, s)
		}
	}
	e.stats.MsgsRetransmitted += uint64(numRetrans)

	// --- ARU update, part 1: lowering (rules of the Totem Ring protocol).
	receivedSeq := tok.Seq
	receivedFCC := int(tok.FCC)
	localARU := e.buf.LocalARU()
	lowered := false
	if localARU < tok.ARU {
		tok.ARU = localARU
		tok.ARUID = e.cfg.MyID
		lowered = true
	} else if tok.ARUID == e.cfg.MyID {
		// We held the aru down in a previous round and nobody else has
		// touched it since; raise it to our current local aru.
		tok.ARU = minSeq(localARU, tok.Seq)
		if tok.ARU == tok.Seq {
			tok.ARUID = 0
		}
	}
	// If the aru has (now) caught up with the received seq and we did not
	// need to lower it, it rides along with seq as we sequence new messages
	// below — we hold our own messages by construction. Evaluating this
	// after the raise step preserves the invariant that a forwarded token
	// always has aru == seq or a live ARUID owner; otherwise the aru can
	// freeze forever at (aru < seq, no owner) and the max-seq-gap flow
	// control chokes all sending.
	rideARU := !lowered && tok.ARU == receivedSeq

	// --- Pre-token phase 2: choose and sequence this round's new
	// messages. The flow control budget follows Section III-A1; the
	// global-aru estimate is the token's (post-lowering) aru.
	waiting := e.sourceLen()
	budget := e.flow.Budget(waiting, numRetrans, receivedFCC, tok.Seq, tok.ARU)
	if budget < waiting {
		e.stats.FlowThrottledRounds++
	}
	newMsgs := e.newMsgsScratch[:0]
	// With packing enabled one protocol packet may consume several backlog
	// entries, so the loop is bounded both by the budget and by the source
	// actually draining.
	for i := 0; i < budget && e.sourceLen() > 0; i++ {
		m := e.nextMessage()
		m.RingID = e.ring.ID
		m.Seq = tok.Seq + 1
		m.PID = e.cfg.MyID
		m.Round = e.round
		tok.Seq++
		e.buf.Insert(m)
		if e.state == StateRecovery && m.Recovered && len(m.Payload) == 0 {
			// Our own end-of-recovery marker.
			e.recoveryMarkers[e.cfg.MyID] = m.Seq
		}
		newMsgs = append(newMsgs, m)
	}
	// The last accelWindow packets of the round go out after the token
	// (Section III-A1); everything before them is the pre-token phase.
	preCount := len(newMsgs) - e.accelWindow
	if preCount < 0 {
		preCount = 0
	}
	for i := preCount; i < len(newMsgs); i++ {
		newMsgs[i].PostToken = true
	}
	e.stats.MsgsSent += uint64(len(newMsgs))
	e.stats.MsgsPostToken += uint64(len(newMsgs) - preCount)
	if len(newMsgs) > preCount {
		e.stats.AccelFlushes++
	}

	// --- ARU update, part 2: the ride decided above.
	if rideARU {
		tok.ARU = tok.Seq
		tok.ARUID = 0
	}

	// --- Retransmission requests: add our gaps, but only up to the seq of
	// the token received in the PREVIOUS round. Under acceleration the
	// current token's seq may cover messages that have not been sent yet;
	// requesting those would cause useless retransmissions (Section
	// III-A2).
	rtr := unanswered
	localARU = e.buf.LocalARU()
	if e.prevTokenSeq > localARU {
		before := len(rtr)
		rtr = e.appendMissing(rtr, e.prevTokenSeq)
		e.stats.RTRRequested += uint64(len(rtr) - before)
	}
	if receivedSeq > e.prevTokenSeq && receivedSeq > localARU {
		// The caution rule capped our requests at last round's frontier;
		// gaps between it and the received seq (if any) wait one round.
		e.stats.RTRDeferredRounds++
	}
	if len(rtr) > wire.MaxRTR {
		rtr = rtr[:wire.MaxRTR]
	}
	tok.RTR = rtr
	e.prevTokenSeq = receivedSeq

	// --- Flow control count.
	tok.FCC = uint32(e.flow.RoundFCC(receivedFCC, numRetrans+len(newMsgs)))

	// --- Emit: pre-token messages, the token, then the post-token phase.
	for _, m := range newMsgs[:preCount] {
		actions = append(actions, SendData{Msg: m})
	}
	e.sentToken = tok.CloneInto(e.sentToken)
	e.traceTokenForwarded(e.successor(), tok, numRetrans, len(newMsgs))
	actions = append(actions, SendToken{To: e.successor(), Token: tok})
	for _, m := range newMsgs[preCount:] {
		actions = append(actions, SendData{Msg: m})
	}

	// --- Delivery and discard (Section III-A4). A Safe message is
	// deliverable once every participant is known to have received it:
	// at or below the minimum of the aru on the token we forwarded this
	// round and last round.
	aruSentThis := tok.ARU
	e.safeBound = minSeq(aruSentThis, e.aruSentLast)
	e.aruSentLast = aruSentThis

	if e.state == StateRecovery {
		actions = e.recoveryRoundEnd(actions)
	} else {
		actions = e.deliverReady(actions)
		if n := e.buf.DiscardStable(e.safeBound); n > 0 {
			e.stats.Discarded += uint64(n)
		}
	}

	// --- Receive-side policy: after processing a token, data messages
	// have high priority until the predecessor is seen in the next round
	// (Section III-C).
	e.tokenPriority = false

	actions = append(actions,
		SetTimer{Kind: TimerTokenLoss, After: e.cfg.TokenLossTimeout},
		SetTimer{Kind: TimerTokenRetrans, After: e.cfg.TokenRetransPeriod},
	)
	// Keep the (possibly grown) new-message list as next round's scratch.
	// Only the individual *DataMessage pointers escaped into actions; the
	// slice itself is round-local.
	e.newMsgsScratch = newMsgs
	return actions
}

// adaptWindow applies AIMD control to the accelerated window: a burst of
// retransmission requests on the received token is evidence that the
// ring's sending overlap is overrunning buffers, so the window halves; a
// long clean streak grows it back by one, up to the personal window.
func (e *Engine) adaptWindow(rtrLen int) {
	if !e.cfg.AdaptiveWindow {
		return
	}
	const (
		burstThreshold = 8  // rtr entries on one token that count as a burst
		cleanStreak    = 64 // clean rounds per additive increase
	)
	if rtrLen >= burstThreshold {
		e.cleanRounds = 0
		if e.accelWindow > 0 {
			e.accelWindow /= 2
			e.stats.WindowDecreases++
		}
		return
	}
	e.cleanRounds++
	if e.cleanRounds >= cleanStreak && e.accelWindow < e.cfg.Flow.PersonalWindow {
		e.cleanRounds = 0
		e.accelWindow++
		e.stats.WindowIncreases++
	}
}

// sourceLen returns the number of messages waiting to be initiated: the
// application backlog when operational; during recovery, the remaining
// retransmission obligations plus the end-of-recovery marker.
func (e *Engine) sourceLen() int {
	if e.state == StateRecovery {
		n := len(e.obligations) - e.obligationsHead
		if !e.markerSent {
			n++
		}
		return n
	}
	return e.PendingLen()
}

// nextMessage produces the next message to initiate, without ring/sequence
// fields (the caller stamps those). During recovery it wraps the next
// old-ring obligation — or, once the obligations have drained, emits this
// participant's end-of-recovery marker (an empty wrapper); otherwise it
// takes from the application backlog.
func (e *Engine) nextMessage() *wire.DataMessage {
	if e.state == StateRecovery {
		if e.obligationsHead >= len(e.obligations) {
			e.markerSent = true
			return &wire.DataMessage{Recovered: true, Service: wire.ServiceAgreed}
		}
		old := e.obligations[e.obligationsHead]
		e.obligations[e.obligationsHead] = nil
		e.obligationsHead++
		encoded, err := old.Encode()
		if err != nil {
			// Old messages were received off the wire or produced by this
			// engine; both are always encodable.
			panic("core: failed to encode recovered message: " + err.Error())
		}
		return &wire.DataMessage{
			Recovered: true,
			Service:   wire.ServiceAgreed,
			Payload:   encoded,
		}
	}
	return e.nextOperationalMessage()
}

// nextOperationalMessage takes the next application message from the
// backlog — packing consecutive same-service small messages into one
// container when packing is enabled (Spread's message packing).
func (e *Engine) nextOperationalMessage() *wire.DataMessage {
	first := e.popPending()
	thr := e.cfg.PackThreshold
	if thr <= 0 || e.PendingLen() == 0 {
		return &wire.DataMessage{Service: first.service, Payload: first.payload}
	}
	size := 2 + 4 + len(first.payload)
	if size > thr {
		return &wire.DataMessage{Service: first.service, Payload: first.payload}
	}
	batch := append(e.packBatch[:0], first.payload)
	for e.PendingLen() > 0 && len(batch) < wire.MaxPacked {
		next := e.pending[e.pendingHead]
		if next.service != first.service || size+4+len(next.payload) > thr {
			break
		}
		size += 4 + len(next.payload)
		batch = append(batch, next.payload)
		e.popPending()
	}
	if len(batch) == 1 {
		e.packBatch = batch[:0]
		return &wire.DataMessage{Service: first.service, Payload: first.payload}
	}
	// The container must be a fresh allocation — it becomes the message's
	// payload and is retained in the buffer until stability — but the batch
	// slice collecting the inputs is reusable scratch.
	packed, err := wire.PackPayloads(batch)
	if err != nil {
		// Unreachable: the batch is size-bounded by the validated
		// threshold and count-bounded by MaxPacked.
		panic("core: packing failed: " + err.Error())
	}
	e.stats.PayloadsPacked += uint64(len(batch))
	for i := range batch {
		batch[i] = nil // do not pin submitted payloads past this round
	}
	e.packBatch = batch[:0]
	return &wire.DataMessage{Service: first.service, Payload: packed, Packed: true}
}

// appendMissing adds this participant's receive gaps up to bound to rtr,
// skipping sequence numbers already present.
func (e *Engine) appendMissing(rtr []wire.Seq, bound wire.Seq) []wire.Seq {
	have := make(map[wire.Seq]bool, len(rtr))
	for _, s := range rtr {
		have[s] = true
	}
	missing := e.buf.Missing(nil, bound, wire.MaxRTR)
	for _, s := range missing {
		if !have[s] {
			rtr = append(rtr, s)
		}
	}
	return rtr
}

// deliverReady drains every message that is now deliverable in total order,
// appending Deliver actions. Wrapped recovery messages left over in the
// buffer from the recovery phase are consumed silently.
func (e *Engine) deliverReady(actions []Action) []Action {
	for {
		m := e.buf.NextDeliverable(e.safeBound)
		if m == nil {
			return actions
		}
		e.buf.Advance(m.Seq)
		if m.Recovered {
			continue
		}
		actions = e.emitDeliver(actions, m)
	}
}

// emitDeliver appends the Deliver action(s) for one ordered message,
// unpacking containers into their individual application messages.
func (e *Engine) emitDeliver(actions []Action, m *wire.DataMessage) []Action {
	if !m.Packed {
		e.stats.Delivered++
		if m.Service.RequiresSafe() {
			e.stats.SafeDelivered++
		}
		return append(actions, Deliver{Msg: m})
	}
	payloads, err := wire.UnpackPayloads(m.Payload)
	if err != nil {
		// A peer sent a corrupt container; the protocol stays live, the
		// container's contents are unrecoverable.
		return actions
	}
	for _, p := range payloads {
		sub := &wire.DataMessage{
			RingID:  m.RingID,
			Seq:     m.Seq,
			PID:     m.PID,
			Round:   m.Round,
			Service: m.Service,
			Payload: p,
		}
		e.stats.Delivered++
		if m.Service.RequiresSafe() {
			e.stats.SafeDelivered++
		}
		actions = append(actions, Deliver{Msg: sub})
	}
	return actions
}
