package core

import (
	"accelring/internal/wire"
)

// HandleData processes a received data message.
func (e *Engine) HandleData(m *wire.DataMessage) []Action {
	switch e.state {
	case StateOperational, StateGather, StateCommit:
		// In Gather/Commit the previous ring's data messages are still
		// useful: buffering them reduces recovery work, and contiguous
		// Agreed messages may still be delivered — the configuration
		// change has not been delivered yet, so they belong to the old
		// (still current) configuration.
		if e.buf == nil || m.RingID != e.ring.ID {
			return e.handleForeignData(m)
		}
		return e.handleRingData(m)
	case StateRecovery:
		return e.handleRecoveryData(m)
	default:
		return nil
	}
}

// handleRingData processes a data message belonging to the current ring.
func (e *Engine) handleRingData(m *wire.DataMessage) []Action {
	if !e.buf.Insert(m) {
		e.stats.MsgsDuplicate++
		return nil
	}
	e.stats.MsgsReceived++
	e.maybeRaiseTokenPriority(m)
	// Evidence of downstream progress: somebody processed a later token
	// than ours, so the token we forwarded was not lost.
	var actions []Action
	if m.Round > e.round && e.sentToken != nil {
		actions = append(actions, CancelTimer{Kind: TimerTokenRetrans})
	}
	return e.deliverReady(actions)
}

// maybeRaiseTokenPriority implements the two priority-switching methods of
// Section III-C. The token regains high priority when this participant
// processes a data message its ring predecessor sent in a round after the
// round of the last token processed here — for the conservative method,
// only if the message was sent in the predecessor's post-token phase.
func (e *Engine) maybeRaiseTokenPriority(m *wire.DataMessage) {
	if e.tokenPriority || e.state != StateOperational {
		return
	}
	if m.PID != e.predecessor() || m.Round <= e.round {
		return
	}
	if e.cfg.Priority == PriorityConservative && !m.PostToken {
		return
	}
	e.tokenPriority = true
}

// handleForeignData reacts to a data message from a different ring: either
// a stale packet from an earlier configuration of ours, or evidence of a
// foreign ring that should trigger a membership merge.
func (e *Engine) handleForeignData(m *wire.DataMessage) []Action {
	if m.RingID.Seq < e.ring.ID.Seq && e.ring.Contains(m.PID) {
		// A straggler from one of our own earlier rings; ignore.
		return nil
	}
	if e.state != StateOperational {
		// Already working on a membership change.
		return nil
	}
	return e.enterGather()
}

// handleRecoveryData processes data messages while in Recovery: messages on
// the ring being formed are buffered (and wrapped old-ring messages
// unwrapped into the old buffer), while old-ring stragglers are added to
// the old buffer directly. Nothing is delivered until recovery completes.
func (e *Engine) handleRecoveryData(m *wire.DataMessage) []Action {
	switch m.RingID {
	case e.ring.ID:
		if !e.buf.Insert(m) {
			e.stats.MsgsDuplicate++
			return nil
		}
		e.stats.MsgsReceived++
		if m.Recovered {
			if len(m.Payload) == 0 {
				e.recoveryMarkers[m.PID] = m.Seq
			} else {
				e.unwrapRecovered(m)
			}
		}
		if m.Round > e.round && e.sentToken != nil {
			return []Action{CancelTimer{Kind: TimerTokenRetrans}}
		}
	case e.oldRing.ID:
		if e.oldBuf != nil {
			e.oldBuf.Insert(m)
		}
	default:
		// Foreign traffic during recovery: ignore; if a merge is needed it
		// will surface again once we are operational.
	}
	return nil
}

// unwrapRecovered decodes a wrapped old-ring message and, if it belongs to
// the old ring this participant came from, stores it for delivery at the
// end of recovery. Messages from other groups' old rings are not delivered
// here (this participant was not a member of those configurations).
func (e *Engine) unwrapRecovered(m *wire.DataMessage) {
	old, err := wire.DecodeData(m.Payload)
	if err != nil {
		// A peer wrapped something unparseable; EVS cannot recover this
		// message, but the protocol remains live without it.
		return
	}
	if e.oldBuf != nil && old.RingID == e.oldRing.ID {
		e.oldBuf.Insert(old)
	}
}
