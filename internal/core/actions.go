package core

import (
	"fmt"
	"time"

	"accelring/internal/wire"
)

// Action is an instruction the engine hands back to its runtime (real
// sockets, the in-memory test transport, or the discrete-event simulator).
// The runtime MUST execute actions in the order returned: the position of
// SendToken within the slice — before the post-token multicasts — is
// precisely what implements the Accelerated Ring protocol.
type Action interface {
	isAction()
}

// SendData instructs the runtime to multicast a data message to the ring.
type SendData struct {
	Msg *wire.DataMessage
}

// SendToken instructs the runtime to unicast the regular token to the
// participant To (this participant's ring successor).
type SendToken struct {
	To    wire.ParticipantID
	Token *wire.Token
}

// SendJoin instructs the runtime to multicast a membership join message.
type SendJoin struct {
	Join *wire.JoinMessage
}

// SendCommit instructs the runtime to unicast a commit token to To.
type SendCommit struct {
	To     wire.ParticipantID
	Commit *wire.CommitToken
}

// Deliver hands a totally ordered message to the application.
type Deliver struct {
	Msg *wire.DataMessage
}

// DeliverConfig delivers a membership (configuration change) event to the
// application. Transitional configurations precede messages that could not
// meet the old configuration's guarantees, per Extended Virtual Synchrony.
type DeliverConfig struct {
	Config       Configuration
	Transitional bool
}

// SetTimer asks the runtime to (re-)arm the timer of the given kind; when
// it expires the runtime must call Engine.HandleTimer with the kind.
// Re-arming an already armed timer resets it.
type SetTimer struct {
	Kind  TimerKind
	After time.Duration
}

// CancelTimer asks the runtime to disarm the timer of the given kind.
type CancelTimer struct {
	Kind TimerKind
}

func (SendData) isAction()      {}
func (SendToken) isAction()     {}
func (SendJoin) isAction()      {}
func (SendCommit) isAction()    {}
func (Deliver) isAction()       {}
func (DeliverConfig) isAction() {}
func (SetTimer) isAction()      {}
func (CancelTimer) isAction()   {}

// TimerKind identifies the protocol timers the runtime maintains on the
// engine's behalf. At most one timer per kind is armed at a time.
type TimerKind uint8

// Timer kinds.
const (
	// TimerTokenLoss fires when no token has been seen for the token-loss
	// timeout; the engine abandons the ring and starts membership
	// formation.
	TimerTokenLoss TimerKind = iota + 1
	// TimerTokenRetrans fires when, after forwarding the token, no
	// evidence of further progress was observed; the engine retransmits
	// the saved token to its successor.
	TimerTokenRetrans
	// TimerJoin paces re-multicasting of join messages while in the
	// Gather state.
	TimerJoin
	// TimerConsensus fires when membership consensus has not been reached
	// in time; unresponsive participants are added to the fail set.
	TimerConsensus
	// TimerCommit fires when a commit token appears to have been lost.
	TimerCommit
)

// String implements fmt.Stringer.
func (k TimerKind) String() string {
	switch k {
	case TimerTokenLoss:
		return "token-loss"
	case TimerTokenRetrans:
		return "token-retrans"
	case TimerJoin:
		return "join"
	case TimerConsensus:
		return "consensus"
	case TimerCommit:
		return "commit"
	default:
		return fmt.Sprintf("timer(%d)", uint8(k))
	}
}

// Configuration is a membership view: the ring identifier and the member
// set, in ring order (ascending participant ID; the representative first).
type Configuration struct {
	ID      wire.RingID
	Members []wire.ParticipantID
}

// Clone returns a deep copy of the configuration.
func (c Configuration) Clone() Configuration {
	out := Configuration{ID: c.ID}
	if c.Members != nil {
		out.Members = make([]wire.ParticipantID, len(c.Members))
		copy(out.Members, c.Members)
	}
	return out
}

// Contains reports whether id is a member of the configuration.
func (c Configuration) Contains(id wire.ParticipantID) bool {
	for _, m := range c.Members {
		if m == id {
			return true
		}
	}
	return false
}

// indexOf returns the position of id in the member list, or -1.
func (c Configuration) indexOf(id wire.ParticipantID) int {
	for i, m := range c.Members {
		if m == id {
			return i
		}
	}
	return -1
}
