package core

import (
	"testing"

	"accelring/internal/msgbuf"
	"accelring/internal/wire"
)

// buildRecoveryEngine assembles an engine that is about to compute its
// recovery obligations: oldBuf holds the listed sequence numbers from the
// old ring, and commitInfo describes each peer's (aru, high) from the old
// ring.
func buildRecoveryEngine(t *testing.T, myID wire.ParticipantID, have []wire.Seq, info []wire.CommitMember) *Engine {
	t.Helper()
	eng, err := New(Config{MyID: myID, Protocol: ProtocolAcceleratedRing})
	if err != nil {
		t.Fatal(err)
	}
	oldRing := wire.RingID{Rep: 1, Seq: 4}
	eng.oldRing = Configuration{ID: oldRing, Members: []wire.ParticipantID{1, 2, 3}}
	eng.oldBuf = msgbuf.New(0)
	for _, s := range have {
		eng.oldBuf.Insert(&wire.DataMessage{RingID: oldRing, Seq: s, PID: 1, Service: wire.ServiceAgreed})
	}
	eng.commitInfo = info
	return eng
}

func member(id wire.ParticipantID, aru, high wire.Seq) wire.CommitMember {
	return wire.CommitMember{
		ID: id, OldRingID: wire.RingID{Rep: 1, Seq: 4},
		MyARU: aru, HighSeq: high, Filled: true,
	}
}

func obligationSeqs(msgs []*wire.DataMessage) []wire.Seq {
	out := make([]wire.Seq, 0, len(msgs))
	for _, m := range msgs {
		out = append(out, m.Seq)
	}
	return out
}

func TestObligationsDesignatedSender(t *testing.T) {
	// Peers: node 1 (aru 10, high 10), node 2 (aru 6, high 10). Node 2 is
	// missing 7..10; the lowest-ID member whose aru covers each of those is
	// node 1, so node 1 retransmits them all and node 2 sends nothing.
	info := []wire.CommitMember{member(1, 10, 10), member(2, 6, 10)}

	e1 := buildRecoveryEngine(t, 1, seqRange(1, 10), info)
	if got := obligationSeqs(e1.computeObligations()); !seqsEqual(got, []wire.Seq{7, 8, 9, 10}) {
		t.Fatalf("node 1 obligations = %v, want [7 8 9 10]", got)
	}

	e2 := buildRecoveryEngine(t, 2, seqRange(1, 6), info)
	if got := e2.computeObligations(); len(got) != 0 {
		t.Fatalf("node 2 obligations = %v, want none", obligationSeqs(got))
	}
}

func TestObligationsGapRegionSentByAllHolders(t *testing.T) {
	// Seq 9 is above everyone's aru (gap region): every member that holds
	// it must send it; receivers drop duplicates.
	info := []wire.CommitMember{member(1, 6, 9), member(2, 6, 9)}

	e1 := buildRecoveryEngine(t, 1, append(seqRange(1, 6), 9), info)
	if got := obligationSeqs(e1.computeObligations()); !seqsEqual(got, []wire.Seq{9}) {
		t.Fatalf("node 1 obligations = %v, want [9]", got)
	}
	e2 := buildRecoveryEngine(t, 2, append(seqRange(1, 6), 9), info)
	if got := obligationSeqs(e2.computeObligations()); !seqsEqual(got, []wire.Seq{9}) {
		t.Fatalf("node 2 obligations = %v, want [9]", got)
	}
	// A member that does not hold it sends nothing.
	e3 := buildRecoveryEngine(t, 2, seqRange(1, 6), info)
	if got := e3.computeObligations(); len(got) != 0 {
		t.Fatalf("holder-less obligations = %v, want none", obligationSeqs(got))
	}
}

func TestObligationsNothingBelowCommonARU(t *testing.T) {
	// Everything at or below min(aru) is held by every old-ring peer: no
	// exchange needed.
	info := []wire.CommitMember{member(1, 8, 8), member(2, 8, 8)}
	e := buildRecoveryEngine(t, 1, seqRange(1, 8), info)
	if got := e.computeObligations(); len(got) != 0 {
		t.Fatalf("obligations = %v, want none", obligationSeqs(got))
	}
}

func TestObligationsLonelySurvivor(t *testing.T) {
	// The only member from its old ring has nobody to exchange with.
	info := []wire.CommitMember{
		member(1, 5, 9),
		{ID: 2, OldRingID: wire.RingID{Rep: 2, Seq: 8}, MyARU: 3, HighSeq: 3, Filled: true},
	}
	e := buildRecoveryEngine(t, 1, seqRange(1, 9), info)
	if got := e.computeObligations(); len(got) != 0 {
		t.Fatalf("obligations = %v, want none", obligationSeqs(got))
	}
}

func TestObligationsFreshEngineNone(t *testing.T) {
	eng, err := New(Config{MyID: 5, Protocol: ProtocolAcceleratedRing})
	if err != nil {
		t.Fatal(err)
	}
	eng.commitInfo = []wire.CommitMember{member(1, 5, 9)}
	if got := eng.computeObligations(); got != nil {
		t.Fatalf("fresh engine obligations = %v, want nil", obligationSeqs(got))
	}
}

func TestTokenIgnoredOutsideOperational(t *testing.T) {
	eng, err := New(Config{MyID: 1, Protocol: ProtocolAcceleratedRing})
	if err != nil {
		t.Fatal(err)
	}
	eng.Start() // Gather
	tok := &wire.Token{RingID: wire.RingID{Rep: 1, Seq: 4}, TokenSeq: 1}
	if got := eng.HandleToken(tok); got != nil {
		t.Fatalf("token in Gather produced %d actions", len(got))
	}
}

func TestCommitIgnoredWhenNotMember(t *testing.T) {
	eng, err := New(Config{MyID: 9, Protocol: ProtocolAcceleratedRing})
	if err != nil {
		t.Fatal(err)
	}
	eng.Start()
	ct := &wire.CommitToken{
		RingID:   wire.RingID{Rep: 1, Seq: 8},
		Rotation: 1,
		Members:  []wire.CommitMember{{ID: 1}, {ID: 2}},
	}
	if got := eng.HandleCommit(ct); got != nil {
		t.Fatalf("foreign commit produced %d actions", len(got))
	}
}

func TestForeignDataTriggersGather(t *testing.T) {
	e := newMember(t, 2, 3, accelConfig())
	if e.State() != StateOperational {
		t.Fatal("not operational")
	}
	// Data from an unknown ring with a higher seq: evidence of another
	// ring out there — merge via gather.
	m := &wire.DataMessage{
		RingID: wire.RingID{Rep: 9, Seq: 100}, Seq: 1, PID: 9,
		Service: wire.ServiceAgreed,
	}
	actions := e.HandleData(m)
	if e.State() != StateGather {
		t.Fatalf("state = %s, want gather", e.State())
	}
	foundJoin := false
	for _, a := range actions {
		if _, ok := a.(SendJoin); ok {
			foundJoin = true
		}
	}
	if !foundJoin {
		t.Fatal("gather entry did not multicast a join")
	}
}

func TestStaleOwnRingDataIgnored(t *testing.T) {
	e := newMember(t, 2, 3, accelConfig())
	// A straggler from an earlier ring of ours (lower seq, sender is a
	// current member) must not trigger a membership change.
	m := &wire.DataMessage{
		RingID: wire.RingID{Rep: 1, Seq: 0}, Seq: 1, PID: 3,
		Service: wire.ServiceAgreed,
	}
	if got := e.HandleData(m); got != nil {
		t.Fatalf("stale data produced %d actions", len(got))
	}
	if e.State() != StateOperational {
		t.Fatalf("state = %s, want operational", e.State())
	}
}

func TestRingReturnsClone(t *testing.T) {
	e := newMember(t, 2, 3, accelConfig())
	cfg := e.Ring()
	cfg.Members[0] = 99
	if e.Ring().Members[0] == 99 {
		t.Fatal("Ring() exposes internal member slice")
	}
}

func seqRange(from, to wire.Seq) []wire.Seq {
	out := make([]wire.Seq, 0, to-from+1)
	for s := from; s <= to; s++ {
		out = append(out, s)
	}
	return out
}

func seqsEqual(a, b []wire.Seq) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
