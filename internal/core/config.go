package core

import (
	"errors"
	"fmt"
	"time"

	"accelring/internal/flowctl"
	"accelring/internal/wire"
)

// Protocol selects the ordering protocol variant.
type Protocol uint8

// Protocol variants. ProtocolOriginalRing is the Totem-style baseline the
// paper compares against: it is exactly the accelerated engine with an
// accelerated window of zero and the conservative priority method, which
// the paper notes is identical to the original Ring protocol.
const (
	ProtocolOriginalRing Protocol = iota + 1
	ProtocolAcceleratedRing
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case ProtocolOriginalRing:
		return "original"
	case ProtocolAcceleratedRing:
		return "accelerated"
	default:
		return fmt.Sprintf("protocol(%d)", uint8(p))
	}
}

// PriorityMethod selects how a participant decides when to raise the
// processing priority of a received token above received data messages
// (Section III-C of the paper).
type PriorityMethod uint8

const (
	// PriorityAggressive (the paper's first method) raises token priority
	// as soon as any data message the ring predecessor sent in the next
	// round is processed. It maximizes token speed and is used by the
	// paper's prototypes.
	PriorityAggressive PriorityMethod = iota + 1
	// PriorityConservative (the paper's second method) waits for a data
	// message the predecessor sent in its post-token phase of the next
	// round. It is the method shipped in Spread: less sensitive to
	// misconfiguration, and with an accelerated window of zero it renders
	// the engine identical to the original Ring protocol.
	PriorityConservative
)

// String implements fmt.Stringer.
func (m PriorityMethod) String() string {
	switch m {
	case PriorityAggressive:
		return "aggressive"
	case PriorityConservative:
		return "conservative"
	default:
		return fmt.Sprintf("priority(%d)", uint8(m))
	}
}

// Default protocol timing. These suit LAN/data-center deployments; the
// simulator and tests shrink them.
const (
	DefaultTokenLossTimeout   = 1 * time.Second
	DefaultTokenRetransPeriod = 100 * time.Millisecond
	DefaultJoinPeriod         = 250 * time.Millisecond
	DefaultConsensusTimeout   = 2 * time.Second
	DefaultCommitTimeout      = 1 * time.Second
	DefaultMaxPending         = 50000
)

// Config configures a protocol engine.
type Config struct {
	// MyID is this participant's unique, non-zero identifier.
	MyID wire.ParticipantID
	// Protocol selects accelerated or original-ring behaviour. If it is
	// ProtocolOriginalRing the accelerated window is forced to zero and
	// the priority method to PriorityConservative.
	Protocol Protocol
	// Flow carries the flow control windows. Zero value means defaults.
	Flow flowctl.Config
	// Priority selects the token/data priority switching method. Zero
	// value means PriorityAggressive for the accelerated protocol (the
	// paper's prototype setting) and PriorityConservative for the
	// original.
	Priority PriorityMethod

	// TokenLossTimeout, TokenRetransPeriod, JoinPeriod, ConsensusTimeout
	// and CommitTimeout configure the protocol timers; zero values mean
	// defaults.
	TokenLossTimeout   time.Duration
	TokenRetransPeriod time.Duration
	JoinPeriod         time.Duration
	ConsensusTimeout   time.Duration
	CommitTimeout      time.Duration

	// MaxPending bounds the queue of submitted-but-unsent application
	// messages; Submit fails once it is full. Zero means the default.
	MaxPending int

	// AdaptiveWindow enables AIMD adaptation of the accelerated window:
	// the window starts at Flow.AcceleratedWindow, halves when a received
	// token carries a burst of retransmission requests (evidence that the
	// sending overlap is overrunning buffers), and creeps back up by one
	// after every clean streak, bounded by the personal window. It
	// automates the hand-tuning the paper performs per deployment.
	AdaptiveWindow bool

	// Tracer, when non-nil, receives protocol-level events (state
	// transitions, token forwards, configuration installs) synchronously
	// on the protocol goroutine.
	Tracer Tracer

	// PackThreshold enables Spread-style message packing: consecutive
	// pending messages with the same service are packed into one protocol
	// packet while the container payload stays at or below this many
	// bytes, amortizing per-message costs for small messages. Zero
	// disables packing. A typical value is 1350 (one protocol packet per
	// MTU frame).
	PackThreshold int

	// Incarnation distinguishes successive restarts of the same
	// participant. The ring engines derive freshness from their membership
	// protocol and ignore it; the Ring Paxos engine folds it into the high
	// bits of its proposer sequence numbers so a restarted proposer never
	// collides with its previous incarnation's value keys. The root
	// runtime stamps it from the wall clock at one-second resolution
	// (restarts inside the same second fall back to pre-incarnation
	// behaviour); the simulator and tests leave it zero or set it
	// explicitly to stay deterministic.
	Incarnation uint32
}

// Config validation errors.
var (
	ErrNoID          = errors.New("core: participant ID must be non-zero")
	ErrBadProtocol   = errors.New("core: unknown protocol variant")
	ErrBacklogFull   = errors.New("core: pending message backlog is full")
	ErrBadMembership = errors.New("core: invalid ring membership")
)

// withDefaults returns a copy of c with zero values replaced by defaults
// and the protocol variant's constraints applied.
func (c Config) withDefaults() Config {
	if c.Protocol == 0 {
		c.Protocol = ProtocolAcceleratedRing
	}
	if c.Flow == (flowctl.Config{}) {
		c.Flow = flowctl.Default()
	}
	if c.Protocol == ProtocolOriginalRing {
		c.Flow.AcceleratedWindow = 0
		c.Priority = PriorityConservative
	}
	if c.Priority == 0 {
		c.Priority = PriorityAggressive
	}
	if c.TokenLossTimeout == 0 {
		c.TokenLossTimeout = DefaultTokenLossTimeout
	}
	if c.TokenRetransPeriod == 0 {
		c.TokenRetransPeriod = DefaultTokenRetransPeriod
	}
	if c.JoinPeriod == 0 {
		c.JoinPeriod = DefaultJoinPeriod
	}
	if c.ConsensusTimeout == 0 {
		c.ConsensusTimeout = DefaultConsensusTimeout
	}
	if c.CommitTimeout == 0 {
		c.CommitTimeout = DefaultCommitTimeout
	}
	if c.MaxPending == 0 {
		c.MaxPending = DefaultMaxPending
	}
	return c
}

// validate checks a defaulted config.
func (c Config) validate() error {
	if c.MyID == 0 {
		return ErrNoID
	}
	if c.Protocol != ProtocolOriginalRing && c.Protocol != ProtocolAcceleratedRing {
		return fmt.Errorf("%w: %d", ErrBadProtocol, uint8(c.Protocol))
	}
	if err := c.Flow.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if c.PackThreshold < 0 || c.PackThreshold > wire.MaxPayload {
		return fmt.Errorf("core: pack threshold %d out of range [0, %d]", c.PackThreshold, wire.MaxPayload)
	}
	return nil
}

// Stats counts protocol events; all counters are cumulative over the
// engine's lifetime.
type Stats struct {
	// TokensProcessed counts regular tokens accepted and handled.
	TokensProcessed uint64
	// TokensDuplicate counts duplicate (retransmitted) tokens discarded.
	TokensDuplicate uint64
	// TokenRetransmits counts tokens this participant retransmitted after
	// a token-retransmission timeout.
	TokenRetransmits uint64
	// MsgsSent counts new data messages this participant initiated.
	MsgsSent uint64
	// MsgsPostToken counts the subset of MsgsSent multicast after the
	// token (the accelerated phase).
	MsgsPostToken uint64
	// MsgsRetransmitted counts retransmissions answered.
	MsgsRetransmitted uint64
	// MsgsReceived counts data messages received (new to this node).
	MsgsReceived uint64
	// MsgsDuplicate counts duplicate data messages discarded.
	MsgsDuplicate uint64
	// RTRRequested counts retransmission requests this participant added
	// to the token.
	RTRRequested uint64
	// RTRDeferredRounds counts rounds in which the accelerated-ring
	// retransmission-caution rule (Section III-A2) bounded this
	// participant's requests below the received token's sequence frontier:
	// messages between the previous round's seq and the current one may
	// still be in flight post-token, so requesting them would trigger
	// useless retransmissions.
	RTRDeferredRounds uint64
	// FlowThrottledRounds counts rounds in which flow control granted a
	// smaller sending budget than the number of messages waiting to be
	// initiated (personal/global window or max-seq-gap pressure).
	FlowThrottledRounds uint64
	// AccelFlushes counts rounds with at least one post-token multicast;
	// MsgsPostToken / AccelFlushes is the mean accelerated flush size.
	AccelFlushes uint64
	// Delivered counts messages delivered to the application (packed
	// sub-messages count individually).
	Delivered uint64
	// PayloadsPacked counts application payloads that travelled inside
	// packed containers.
	PayloadsPacked uint64
	// SafeDelivered counts the subset of Delivered with Safe service.
	SafeDelivered uint64
	// Discarded counts messages garbage-collected after stabilizing.
	Discarded uint64
	// MembershipChanges counts regular configuration installations.
	MembershipChanges uint64
	// AccelWindow is the current effective accelerated window (a gauge;
	// it only moves when AdaptiveWindow is enabled).
	AccelWindow int
	// WindowDecreases counts multiplicative decreases of the adaptive
	// window; WindowIncreases counts additive increases.
	WindowDecreases uint64
	WindowIncreases uint64
}
