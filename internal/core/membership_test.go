package core

import (
	"testing"
	"time"

	"accelring/internal/wire"
)

// waitOperational runs the harness until every non-crashed node is
// operational (or the deadline passes).
func (h *harness) waitOperational(d time.Duration, ids ...wire.ParticipantID) {
	h.t.Helper()
	step := 10 * time.Millisecond
	for elapsed := time.Duration(0); elapsed < d; elapsed += step {
		h.run(step)
		all := true
		for _, id := range ids {
			if h.node(id).eng.State() != StateOperational {
				all = false
				break
			}
		}
		if all {
			return
		}
	}
	states := map[wire.ParticipantID]State{}
	for _, id := range ids {
		states[id] = h.node(id).eng.State()
	}
	h.t.Fatalf("nodes not operational after %v: %v", d, states)
}

// waitConfig runs the harness until every listed node has installed a
// regular configuration with exactly the given members.
func (h *harness) waitConfig(d time.Duration, members []wire.ParticipantID, ids ...wire.ParticipantID) {
	h.t.Helper()
	step := 10 * time.Millisecond
	for elapsed := time.Duration(0); elapsed < d; elapsed += step {
		h.run(step)
		all := true
		for _, id := range ids {
			cfg, ok := h.node(id).lastRegularConfig()
			if !ok || !idSliceEqual(cfg.Members, members) {
				all = false
				break
			}
		}
		if all {
			return
		}
	}
	for _, id := range ids {
		cfg, _ := h.node(id).lastRegularConfig()
		h.t.Logf("node %s: state %s config %v", id, h.node(id).eng.State(), cfg)
	}
	h.t.Fatalf("nodes %v did not install config %v within %v", ids, members, d)
}

// lastRegularConfig returns the node's most recent regular configuration.
func (n *hnode) lastRegularConfig() (Configuration, bool) {
	for i := len(n.delivered) - 1; i >= 0; i-- {
		d := n.delivered[i]
		if d.msg == nil && !d.trans {
			return d.config, true
		}
	}
	return Configuration{}, false
}

func TestGatherFormsRingFromScratch(t *testing.T) {
	h := newHarness(t, 3, accelConfig())
	h.startGather()
	h.waitOperational(2*time.Second, 1, 2, 3)
	for _, n := range h.nodes {
		cfg, ok := n.lastRegularConfig()
		if !ok {
			t.Fatalf("node %s has no regular configuration", n.id)
		}
		if len(cfg.Members) != 3 {
			t.Fatalf("node %s installed %d members, want 3 (cfg %v)", n.id, len(cfg.Members), cfg)
		}
	}
	// The formed ring must carry traffic.
	for i := 0; i < 10; i++ {
		for id := wire.ParticipantID(1); id <= 3; id++ {
			h.submit(id, payload(id, i), wire.ServiceAgreed)
		}
	}
	h.run(2 * time.Second)
	h.checkAllDelivered(30, 1, 2, 3)
	h.checkTotalOrder(1, 2, 3)
}

func TestSingleNodeFormsSingletonRing(t *testing.T) {
	h := newHarness(t, 1, accelConfig())
	h.startGather()
	h.waitOperational(2*time.Second, 1)
	cfg, ok := h.node(1).lastRegularConfig()
	if !ok || len(cfg.Members) != 1 || cfg.Members[0] != 1 {
		t.Fatalf("singleton config = %v, ok=%v", cfg, ok)
	}
	h.submit(1, []byte("solo"), wire.ServiceSafe)
	h.run(1 * time.Second)
	h.checkAllDelivered(1, 1)
}

func TestCrashTriggersReformation(t *testing.T) {
	h := newHarness(t, 3, accelConfig())
	h.startStatic()
	for i := 0; i < 10; i++ {
		h.submit(1, payload(1, i), wire.ServiceAgreed)
	}
	h.run(500 * time.Millisecond)
	h.checkAllDelivered(10, 1, 2, 3)

	h.crash(3)
	h.waitConfig(3*time.Second, []wire.ParticipantID{1, 2}, 1, 2)
	// The survivors received a transitional configuration first.
	for _, id := range []wire.ParticipantID{1, 2} {
		foundTrans := false
		for _, d := range h.node(id).configs() {
			if d.trans {
				foundTrans = true
				if len(d.config.Members) != 2 {
					t.Fatalf("node %s transitional members = %v, want {1,2}", id, d.config.Members)
				}
			}
		}
		if !foundTrans {
			t.Fatalf("node %s never delivered a transitional configuration", id)
		}
	}
	// The reduced ring still orders messages.
	for i := 0; i < 10; i++ {
		h.submit(1, payload(1, 100+i), wire.ServiceSafe)
		h.submit(2, payload(2, 100+i), wire.ServiceSafe)
	}
	h.run(2 * time.Second)
	h.checkAllDelivered(30, 1, 2)
	h.checkTotalOrder(1, 2)
}

func TestMessagesInFlightSurviveMembershipChange(t *testing.T) {
	// Submit messages, crash a node mid-stream, and verify the survivors
	// still deliver everything the ring ordered, consistently.
	h := newHarness(t, 4, accelConfig())
	h.startStatic()
	for i := 0; i < 30; i++ {
		for id := wire.ParticipantID(1); id <= 4; id++ {
			h.submit(id, payload(id, i), wire.ServiceAgreed)
		}
	}
	h.run(2 * time.Millisecond) // let a little traffic flow, then crash
	h.crash(4)
	h.waitConfig(3*time.Second, []wire.ParticipantID{1, 2, 3}, 1, 2, 3)
	h.run(2 * time.Second)
	h.checkTotalOrder(1, 2, 3)
	// All messages from surviving senders must be delivered exactly once.
	for _, id := range []wire.ParticipantID{1, 2, 3} {
		msgs := h.node(id).appMsgs()
		seen := map[string]int{}
		for _, m := range msgs {
			seen[string(m.Payload)]++
		}
		for p, n := range seen {
			if n != 1 {
				t.Fatalf("node %s delivered %q %d times", id, p, n)
			}
		}
		for _, sender := range []wire.ParticipantID{1, 2, 3} {
			for i := 0; i < 30; i++ {
				if seen[string(payload(sender, i))] != 1 {
					t.Fatalf("node %s missed message %s/%d", id, sender, i)
				}
			}
		}
	}
}

func TestPartitionFormsTwoRings(t *testing.T) {
	h := newHarness(t, 4, accelConfig())
	h.startStatic()
	h.run(100 * time.Millisecond)

	// Partition {1,2} from {3,4}.
	h.partition[3] = 1
	h.partition[4] = 1
	h.waitConfig(3*time.Second, []wire.ParticipantID{1, 2}, 1, 2)
	h.waitConfig(3*time.Second, []wire.ParticipantID{3, 4}, 3, 4)

	cfgA, _ := h.node(1).lastRegularConfig()
	cfgB, _ := h.node(3).lastRegularConfig()
	if len(cfgA.Members) != 2 || cfgA.Members[0] != 1 || cfgA.Members[1] != 2 {
		t.Fatalf("partition A config = %v, want {1,2}", cfgA)
	}
	if len(cfgB.Members) != 2 || cfgB.Members[0] != 3 || cfgB.Members[1] != 4 {
		t.Fatalf("partition B config = %v, want {3,4}", cfgB)
	}
	if cfgA.ID == cfgB.ID {
		t.Fatal("the two partitions share a ring ID")
	}

	// Both partitions make progress independently (EVS allows it).
	for i := 0; i < 5; i++ {
		h.submit(1, payload(1, i), wire.ServiceSafe)
		h.submit(3, payload(3, i), wire.ServiceSafe)
	}
	h.run(2 * time.Second)
	h.checkAllDelivered(5, 1, 2)
	h.checkAllDelivered(5, 3, 4)
	h.checkTotalOrder(1, 2)
	h.checkTotalOrder(3, 4)
}

func TestPartitionHealMergesRings(t *testing.T) {
	h := newHarness(t, 4, accelConfig())
	h.startStatic()
	h.run(100 * time.Millisecond)

	h.partition[3] = 1
	h.partition[4] = 1
	h.waitConfig(3*time.Second, []wire.ParticipantID{1, 2}, 1, 2)
	h.waitConfig(3*time.Second, []wire.ParticipantID{3, 4}, 3, 4)
	for i := 0; i < 5; i++ {
		h.submit(1, payload(1, i), wire.ServiceAgreed)
		h.submit(3, payload(3, i), wire.ServiceAgreed)
	}
	h.run(1 * time.Second)

	// Heal. The sides discover each other via joins (periodic joins have
	// stopped — both sides are operational — but any ambient traffic is
	// foreign to the other side and triggers a merge).
	h.partition = map[wire.ParticipantID]int{}
	for i := 0; i < 5; i++ {
		h.submit(1, payload(1, 100+i), wire.ServiceAgreed)
		h.submit(3, payload(3, 100+i), wire.ServiceAgreed)
	}
	h.waitConfig(5*time.Second, []wire.ParticipantID{1, 2, 3, 4}, 1, 2, 3, 4)
	h.run(2 * time.Second)

	for _, n := range h.nodes {
		cfg, ok := n.lastRegularConfig()
		if !ok || len(cfg.Members) != 4 {
			t.Fatalf("node %s post-merge config = %v, want 4 members", n.id, cfg)
		}
	}
	// Messages submitted after the merge are totally ordered across all.
	for i := 0; i < 5; i++ {
		for id := wire.ParticipantID(1); id <= 4; id++ {
			h.submit(id, payload(id, 200+i), wire.ServiceSafe)
		}
	}
	h.run(2 * time.Second)
	// Compare only the post-merge suffix: drop everything delivered before
	// the final configuration at each node.
	var suffixes [][]string
	for _, n := range h.nodes {
		var suffix []string
		inFinal := false
		for _, d := range n.delivered {
			if d.msg == nil && !d.trans && len(d.config.Members) == 4 {
				inFinal = true
				suffix = nil
				continue
			}
			if inFinal && d.msg != nil {
				suffix = append(suffix, string(d.msg.Payload))
			}
		}
		suffixes = append(suffixes, suffix)
	}
	for i := 1; i < len(suffixes); i++ {
		a, b := suffixes[0], suffixes[i]
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		for k := 0; k < n; k++ {
			if a[k] != b[k] {
				t.Fatalf("post-merge order differs at %d: node 1 %q vs node %d %q", k, a[k], i+1, b[k])
			}
		}
	}
	// Everyone must have delivered the 20 post-merge messages.
	for i, s := range suffixes {
		count := 0
		for _, p := range s {
			if len(p) > 0 && (p[len(p)-3:] == "200" || p[len(p)-3:] == "201" || p[len(p)-3:] == "202" || p[len(p)-3:] == "203" || p[len(p)-3:] == "204") {
				count++
			}
		}
		if count < 20 {
			t.Fatalf("node %d delivered %d of the 20 post-merge messages", i+1, count)
		}
	}
}

func TestSafeMessagesNotLostAcrossMembershipChange(t *testing.T) {
	// Safe messages in flight when a member crashes must be delivered by
	// the survivors (in the transitional configuration if stability in the
	// old configuration could not be established).
	h := newHarness(t, 3, accelConfig())
	h.startStatic()
	for i := 0; i < 20; i++ {
		h.submit(1, payload(1, i), wire.ServiceSafe)
	}
	h.run(1 * time.Millisecond) // barely any progress yet
	h.crash(3)
	h.waitConfig(3*time.Second, []wire.ParticipantID{1, 2}, 1, 2)
	h.run(2 * time.Second)
	h.checkAllDelivered(20, 1, 2)
	h.checkTotalOrder(1, 2)
}

func TestLateJoinerMergesIntoRunningRing(t *testing.T) {
	h := newHarness(t, 3, accelConfig())
	// Only nodes 1 and 2 start as a static ring; node 3 is isolated.
	h.partition[3] = 1
	members := []wire.ParticipantID{1, 2}
	for _, id := range members {
		n := h.node(id)
		actions, err := n.eng.StartWithRing(members)
		if err != nil {
			t.Fatal(err)
		}
		h.execute(n, actions)
	}
	h.execute(h.node(3), h.node(3).eng.Start())
	h.waitOperational(2*time.Second, 1, 2, 3) // 3 forms a singleton
	for i := 0; i < 5; i++ {
		h.submit(1, payload(1, i), wire.ServiceAgreed)
	}
	h.run(500 * time.Millisecond)
	h.checkAllDelivered(5, 1, 2)

	// Node 3 becomes reachable; its traffic/joins trigger a merge.
	h.partition = map[wire.ParticipantID]int{}
	h.submit(3, []byte("hello"), wire.ServiceAgreed)
	h.waitConfig(5*time.Second, []wire.ParticipantID{1, 2, 3}, 1, 2, 3)
	h.run(1 * time.Second)
	for _, n := range h.nodes {
		cfg, ok := n.lastRegularConfig()
		if !ok || len(cfg.Members) != 3 {
			t.Fatalf("node %s post-join config = %v, want 3 members", n.id, cfg)
		}
	}
	// New traffic flows to all three.
	for i := 0; i < 5; i++ {
		h.submit(2, payload(2, 100+i), wire.ServiceSafe)
	}
	before1 := len(h.node(1).appMsgs())
	before3 := len(h.node(3).appMsgs())
	h.run(2 * time.Second)
	if got := len(h.node(1).appMsgs()) - before1; got != 5 {
		t.Fatalf("node 1 delivered %d new messages, want 5", got)
	}
	if got := len(h.node(3).appMsgs()) - before3; got != 5 {
		t.Fatalf("node 3 delivered %d new messages, want 5", got)
	}
}

func TestCascadingCrashes(t *testing.T) {
	h := newHarness(t, 5, accelConfig())
	h.startStatic()
	h.run(100 * time.Millisecond)
	h.crash(5)
	h.waitConfig(3*time.Second, []wire.ParticipantID{1, 2, 3, 4}, 1, 2, 3, 4)
	h.crash(4)
	h.waitConfig(3*time.Second, []wire.ParticipantID{1, 2, 3}, 1, 2, 3)
	h.crash(3)
	h.waitConfig(3*time.Second, []wire.ParticipantID{1, 2}, 1, 2)
	for i := 0; i < 5; i++ {
		h.submit(1, payload(1, i), wire.ServiceSafe)
	}
	h.run(2 * time.Second)
	h.checkAllDelivered(5, 1, 2)
	cfg, _ := h.node(1).lastRegularConfig()
	if len(cfg.Members) != 2 {
		t.Fatalf("final config = %v, want {1,2}", cfg)
	}
}

func TestTotalCrashLeavesSingleton(t *testing.T) {
	h := newHarness(t, 3, accelConfig())
	h.startStatic()
	h.run(100 * time.Millisecond)
	h.crash(2)
	h.crash(3)
	h.waitConfig(3*time.Second, []wire.ParticipantID{1}, 1)
	cfg, _ := h.node(1).lastRegularConfig()
	if len(cfg.Members) != 1 {
		t.Fatalf("config after losing all peers = %v, want singleton", cfg)
	}
	h.submit(1, []byte("alone"), wire.ServiceSafe)
	h.run(1 * time.Second)
	h.checkAllDelivered(1, 1)
}

func TestEVSSameOldRingMembersAgreeOnOldMessages(t *testing.T) {
	// Extended Virtual Synchrony: members that move together from one
	// configuration to the next must deliver the same set of the old
	// configuration's messages before the new configuration is installed.
	h := newHarness(t, 4, accelConfig())
	h.dropData = randomLoss(7, 0.05)
	h.startStatic()
	for i := 0; i < 40; i++ {
		for id := wire.ParticipantID(1); id <= 4; id++ {
			h.submit(id, payload(id, i), wire.ServiceAgreed)
		}
	}
	h.run(3 * time.Millisecond)
	h.crash(4)
	h.waitConfig(5*time.Second, []wire.ParticipantID{1, 2, 3}, 1, 2, 3)
	h.run(3 * time.Second)

	// For each survivor, split deliveries at the final regular config.
	oldSets := map[wire.ParticipantID]map[string]bool{}
	for _, id := range []wire.ParticipantID{1, 2, 3} {
		n := h.node(id)
		set := map[string]bool{}
		for _, d := range n.delivered {
			if d.msg == nil && !d.trans && len(d.config.Members) == 3 {
				break
			}
			if d.msg != nil {
				set[string(d.msg.Payload)] = true
			}
		}
		oldSets[id] = set
	}
	for _, id := range []wire.ParticipantID{2, 3} {
		if len(oldSets[id]) != len(oldSets[1]) {
			t.Fatalf("node %s delivered %d old-config messages, node 1 delivered %d",
				id, len(oldSets[id]), len(oldSets[1]))
		}
		for p := range oldSets[1] {
			if !oldSets[id][p] {
				t.Fatalf("node %s missing old-config message %q", id, p)
			}
		}
	}
	h.checkTotalOrder(1, 2, 3)
}

func TestThreeWayPartitionAndFullMerge(t *testing.T) {
	h := newHarness(t, 6, accelConfig())
	h.startStatic()
	h.run(100 * time.Millisecond)

	// Split into {1,2}, {3,4}, {5,6}.
	h.partition[3], h.partition[4] = 1, 1
	h.partition[5], h.partition[6] = 2, 2
	h.waitConfig(3*time.Second, []wire.ParticipantID{1, 2}, 1, 2)
	h.waitConfig(3*time.Second, []wire.ParticipantID{3, 4}, 3, 4)
	h.waitConfig(3*time.Second, []wire.ParticipantID{5, 6}, 5, 6)

	// Each partition makes independent progress.
	for i := 0; i < 3; i++ {
		h.submit(1, payload(1, i), wire.ServiceSafe)
		h.submit(3, payload(3, i), wire.ServiceSafe)
		h.submit(5, payload(5, i), wire.ServiceSafe)
	}
	h.run(1 * time.Second)
	h.checkAllDelivered(3, 1, 2)
	h.checkAllDelivered(3, 3, 4)
	h.checkAllDelivered(3, 5, 6)

	// Heal everything at once; ambient traffic triggers a three-way merge.
	h.partition = map[wire.ParticipantID]int{}
	for i := 0; i < 3; i++ {
		h.submit(1, payload(1, 100+i), wire.ServiceAgreed)
		h.submit(3, payload(3, 100+i), wire.ServiceAgreed)
		h.submit(5, payload(5, 100+i), wire.ServiceAgreed)
	}
	all := []wire.ParticipantID{1, 2, 3, 4, 5, 6}
	h.waitConfig(10*time.Second, all, all...)

	// Post-merge traffic reaches everyone in one total order.
	for i := 0; i < 5; i++ {
		for _, id := range all {
			h.submit(id, payload(id, 200+i), wire.ServiceSafe)
		}
	}
	h.run(3 * time.Second)
	var suffixes [][]string
	for _, id := range all {
		var suffix []string
		inFinal := false
		for _, d := range h.node(id).delivered {
			if d.msg == nil && !d.trans && len(d.config.Members) == 6 {
				inFinal = true
				suffix = nil
				continue
			}
			if inFinal && d.msg != nil {
				suffix = append(suffix, string(d.msg.Payload))
			}
		}
		if len(suffix) < 30 {
			t.Fatalf("node %s delivered only %d post-merge messages", id, len(suffix))
		}
		suffixes = append(suffixes, suffix)
	}
	for i := 1; i < len(suffixes); i++ {
		n := len(suffixes[0])
		if len(suffixes[i]) < n {
			n = len(suffixes[i])
		}
		for k := 0; k < n; k++ {
			if suffixes[i][k] != suffixes[0][k] {
				t.Fatalf("post-merge divergence at %d", k)
			}
		}
	}
}

func TestTransitionalPeersComeFromSameOldRing(t *testing.T) {
	// After a merge of two rings, a member's transitional configuration
	// must contain only members that came from ITS old ring (per EVS),
	// not everyone in both rings.
	h := newHarness(t, 4, accelConfig())
	h.startStatic()
	h.run(100 * time.Millisecond)
	h.partition[3] = 1
	h.partition[4] = 1
	h.waitConfig(3*time.Second, []wire.ParticipantID{1, 2}, 1, 2)
	h.waitConfig(3*time.Second, []wire.ParticipantID{3, 4}, 3, 4)

	h.partition = map[wire.ParticipantID]int{}
	h.submit(1, []byte("wake"), wire.ServiceAgreed)
	all := []wire.ParticipantID{1, 2, 3, 4}
	h.waitConfig(10*time.Second, all, all...)

	// Node 1's LAST transitional config (for the merge) must be {1,2}.
	var lastTrans Configuration
	for _, d := range h.node(1).delivered {
		if d.msg == nil && d.trans {
			lastTrans = d.config
		}
	}
	if !idSliceEqual(lastTrans.Members, []wire.ParticipantID{1, 2}) {
		t.Fatalf("node 1 merge transitional = %v, want {1,2}", lastTrans.Members)
	}
	var lastTrans3 Configuration
	for _, d := range h.node(3).delivered {
		if d.msg == nil && d.trans {
			lastTrans3 = d.config
		}
	}
	if !idSliceEqual(lastTrans3.Members, []wire.ParticipantID{3, 4}) {
		t.Fatalf("node 3 merge transitional = %v, want {3,4}", lastTrans3.Members)
	}
}

func TestSubmissionsDuringMembershipChangeAreDelivered(t *testing.T) {
	// Messages submitted while the ring is reforming must be queued and
	// ordered once the new configuration installs.
	h := newHarness(t, 3, accelConfig())
	h.startStatic()
	h.run(50 * time.Millisecond)
	h.crash(3)
	// Let token loss fire so the survivors are mid-gather, then submit.
	h.run(60 * time.Millisecond)
	if h.node(1).eng.State() == StateOperational {
		t.Skip("reformation finished too quickly to catch mid-gather")
	}
	for i := 0; i < 10; i++ {
		h.submit(1, payload(1, i), wire.ServiceSafe)
	}
	h.waitConfig(3*time.Second, []wire.ParticipantID{1, 2}, 1, 2)
	h.run(2 * time.Second)
	h.checkAllDelivered(10, 1, 2)
	h.checkTotalOrder(1, 2)
}
