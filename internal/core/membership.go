package core

import (
	"accelring/internal/wire"
)

// ringSeqIncrement is added to the largest known ring sequence number when
// forming a new ring, following Totem's convention.
const ringSeqIncrement = 4

// enterGather abandons the current activity and begins membership
// formation: multicast joins, collect everyone's proposed membership, and
// wait for consensus. If a recovery was in progress, the engine first
// reverts to the old ring — its configuration change was never delivered,
// so from the application's perspective the old configuration is still the
// current one and its undelivered messages must survive into the next
// recovery attempt.
func (e *Engine) enterGather() []Action {
	// A formation attempt that failed (from Commit or Recovery) keeps the
	// gathered proc/fail sets: resetting them to {me} makes this node's
	// next join advertise a smaller set, bouncing already-committed peers
	// back to Gather and livelocking the whole membership. Only a fresh
	// entry from Operational starts from scratch. The joins map is always
	// cleared so that members must re-advertise and dead ones are failed
	// by the consensus timeout.
	preserve := e.state == StateCommit || e.state == StateRecovery
	if e.state == StateRecovery {
		e.ring = e.oldRing
		e.myIndex = e.ring.indexOf(e.cfg.MyID)
		e.buf = e.oldBuf
		e.safeBound = e.oldSafeBound
		e.oldRing = Configuration{}
		e.oldBuf = nil
		e.obligations = nil
		e.obligationsHead = 0
	}
	e.setState(StateGather)
	e.tokenPriority = true
	e.sentToken = nil
	if !preserve || e.procSet == nil {
		// Seed the proposal with the old ring's membership: consensus then
		// waits (up to the consensus timeout) for every old member to join
		// or be failed, so that all survivors of a crash reform together
		// instead of the fastest pair racing ahead and merging later.
		e.procSet = map[wire.ParticipantID]bool{e.cfg.MyID: true}
		for _, p := range e.ring.Members {
			e.procSet[p] = true
		}
		e.failSet = make(map[wire.ParticipantID]bool)
	}
	e.joins = make(map[wire.ParticipantID]*wire.JoinMessage)
	if e.ring.ID.Seq > e.maxRingSeq {
		e.maxRingSeq = e.ring.ID.Seq
	}
	return []Action{
		SendJoin{Join: e.makeJoin()},
		SetTimer{Kind: TimerJoin, After: e.cfg.JoinPeriod},
		SetTimer{Kind: TimerConsensus, After: e.cfg.ConsensusTimeout},
		CancelTimer{Kind: TimerTokenLoss},
		CancelTimer{Kind: TimerTokenRetrans},
		CancelTimer{Kind: TimerCommit},
	}
}

// makeJoin builds this participant's current join message.
func (e *Engine) makeJoin() *wire.JoinMessage {
	return &wire.JoinMessage{
		Sender:  e.cfg.MyID,
		ProcSet: setToSorted(e.procSet),
		FailSet: setToSorted(e.failSet),
		RingSeq: e.ring.ID.Seq,
	}
}

// HandleJoin processes a received membership join message.
func (e *Engine) HandleJoin(j *wire.JoinMessage) []Action {
	if j.Sender == e.cfg.MyID {
		return nil // our own multicast looped back
	}
	switch e.state {
	case StateOperational:
		if j.RingSeq < e.ring.ID.Seq && e.ring.Contains(j.Sender) {
			// A straggler join from before our current ring formed.
			return nil
		}
		actions := e.enterGather()
		return append(actions, e.processJoin(j)...)
	case StateGather:
		return e.processJoin(j)
	case StateCommit:
		if !e.pendingRing.Contains(j.Sender) {
			// A newcomer: let the current formation finish; its periodic
			// joins will trigger a merge once we are operational.
			return nil
		}
		if idSliceEqual(j.ProcSet, setToSorted(e.procSet)) &&
			idSliceEqual(j.FailSet, setToSorted(e.failSet)) {
			// The member simply has not seen the commit token yet.
			return nil
		}
		// A proposed member restarted gathering with different sets: the
		// formation cannot complete. Reconverge.
		actions := e.enterGather()
		return append(actions, e.processJoin(j)...)
	case StateRecovery:
		if !e.ring.Contains(j.Sender) {
			return nil
		}
		// A member of the forming ring is gathering again: recovery
		// cannot complete. Abort (restoring the old ring) and reconverge.
		actions := e.enterGather()
		return append(actions, e.processJoin(j)...)
	default:
		return nil
	}
}

// processJoin merges a join message into the Gather state and checks for
// consensus.
func (e *Engine) processJoin(j *wire.JoinMessage) []Action {
	for _, p := range j.FailSet {
		if p == e.cfg.MyID {
			// The sender has declared us failed; we cannot join it.
			return nil
		}
	}
	if j.RingSeq > e.maxRingSeq {
		e.maxRingSeq = j.RingSeq
	}
	changed := false
	if !e.procSet[j.Sender] {
		e.procSet[j.Sender] = true
		changed = true
	}
	for _, p := range j.ProcSet {
		if !e.procSet[p] {
			e.procSet[p] = true
			changed = true
		}
	}
	for _, p := range j.FailSet {
		if p != e.cfg.MyID && !e.failSet[p] {
			e.failSet[p] = true
			changed = true
		}
	}
	e.joins[j.Sender] = j

	var actions []Action
	if changed {
		// Our proposal grew: re-advertise and give consensus more time.
		actions = append(actions,
			SendJoin{Join: e.makeJoin()},
			SetTimer{Kind: TimerJoin, After: e.cfg.JoinPeriod},
			SetTimer{Kind: TimerConsensus, After: e.cfg.ConsensusTimeout},
		)
	}
	return append(actions, e.checkConsensus()...)
}

// checkConsensus tests whether every live proposed member has advertised
// identical proc and fail sets; if so the membership is agreed and the
// commit phase begins.
func (e *Engine) checkConsensus() []Action {
	live := e.liveSet()
	if len(live) == 0 {
		return nil
	}
	myProc := setToSorted(e.procSet)
	myFail := setToSorted(e.failSet)
	for _, p := range live {
		if p == e.cfg.MyID {
			continue
		}
		j := e.joins[p]
		if j == nil || !idSliceEqual(j.ProcSet, myProc) || !idSliceEqual(j.FailSet, myFail) {
			return nil
		}
	}
	return e.formRing(live)
}

// liveSet returns the sorted proposed membership: procSet minus failSet.
func (e *Engine) liveSet() []wire.ParticipantID {
	live := make([]wire.ParticipantID, 0, len(e.procSet))
	for p := range e.procSet {
		if !e.failSet[p] {
			live = append(live, p)
		}
	}
	return sortedIDs(live)
}

// consensusTimeout declares every proposed member that has not sent any
// join failed, re-advertises, and re-arms the timer. A participant that is
// alone (or whose peers all already match) can reach consensus here.
func (e *Engine) consensusTimeout() []Action {
	changed := false
	for _, p := range e.liveSet() {
		if p != e.cfg.MyID && e.joins[p] == nil {
			e.failSet[p] = true
			changed = true
		}
	}
	var actions []Action
	if changed {
		actions = append(actions, SendJoin{Join: e.makeJoin()})
	}
	actions = append(actions, SetTimer{Kind: TimerConsensus, After: e.cfg.ConsensusTimeout})
	return append(actions, e.checkConsensus()...)
}

// formRing begins the commit phase for the agreed membership. The
// representative (smallest ID) creates the commit token and circulates it;
// everyone else waits for it.
func (e *Engine) formRing(live []wire.ParticipantID) []Action {
	ringID := wire.RingID{Rep: live[0], Seq: e.maxRingSeq + ringSeqIncrement}
	e.pendingRing = Configuration{ID: ringID, Members: live}
	e.setState(StateCommit)
	actions := []Action{
		CancelTimer{Kind: TimerJoin},
		CancelTimer{Kind: TimerConsensus},
		SetTimer{Kind: TimerCommit, After: e.cfg.CommitTimeout},
	}
	if live[0] != e.cfg.MyID {
		return actions
	}
	ct := &wire.CommitToken{RingID: ringID, Rotation: 1, Members: make([]wire.CommitMember, len(live))}
	for i, p := range live {
		ct.Members[i].ID = p
	}
	e.fillCommitEntry(ct)
	if len(live) == 1 {
		// Singleton ring: both rotations are trivially complete.
		return append(actions, e.repCompleteRotation1(ct)...)
	}
	return append(actions, SendCommit{To: live[1], Commit: ct})
}

// fillCommitEntry records this participant's old-ring state in its commit
// token entry.
func (e *Engine) fillCommitEntry(ct *wire.CommitToken) {
	for i := range ct.Members {
		m := &ct.Members[i]
		if m.ID != e.cfg.MyID {
			continue
		}
		m.OldRingID = e.ring.ID
		if e.buf != nil {
			m.MyARU = e.buf.LocalARU()
			m.HighSeq = e.buf.HighSeq()
			m.HighDelivered = e.buf.Delivered()
		}
		m.Filled = true
		return
	}
}

// HandleCommit processes a received commit token.
func (e *Engine) HandleCommit(ct *wire.CommitToken) []Action {
	idx := -1
	for i := range ct.Members {
		if ct.Members[i].ID == e.cfg.MyID {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil // not for us
	}
	rep := ct.RingID.Rep == e.cfg.MyID

	switch e.state {
	case StateGather, StateCommit:
		if e.state == StateCommit && ct.RingID != e.pendingRing.ID {
			return nil // a stale commit token from an abandoned formation
		}
		switch ct.Rotation {
		case 1:
			if rep {
				// The collection rotation returned to us; it is only valid
				// if it is the one we issued for the current formation.
				if e.state != StateCommit || !allFilled(ct) {
					return nil
				}
				return e.repCompleteRotation1(ct)
			}
			ct = ct.Clone()
			e.fillCommitEntry(ct)
			e.setState(StateCommit)
			e.pendingRing = commitConfiguration(ct)
			next := ct.Members[(idx+1)%len(ct.Members)].ID
			return []Action{
				CancelTimer{Kind: TimerJoin},
				CancelTimer{Kind: TimerConsensus},
				SetTimer{Kind: TimerCommit, After: e.cfg.CommitTimeout},
				SendCommit{To: next, Commit: ct},
			}
		case 2:
			if rep || e.state != StateCommit || !allFilled(ct) {
				return nil
			}
			// Everyone's old-ring state is known: shift to recovery and
			// pass the confirmation on.
			actions := e.enterRecovery(ct)
			next := ct.Members[(idx+1)%len(ct.Members)].ID
			return append(actions, SendCommit{To: next, Commit: ct.Clone()})
		}
	case StateRecovery:
		if rep && ct.Rotation == 2 && ct.RingID == e.ring.ID && e.lastTokenSeq == 0 {
			// The confirmation rotation returned: every member is in
			// recovery. Inject the first regular token of the new ring by
			// processing it locally.
			initial := &wire.Token{RingID: e.ring.ID, TokenSeq: 1}
			return e.handleRegularToken(initial)
		}
	}
	return nil
}

// repCompleteRotation1 is the representative's transition at the end of the
// commit token's collection rotation: switch to recovery and start the
// confirmation rotation (or, on a singleton ring, inject the first regular
// token immediately).
func (e *Engine) repCompleteRotation1(ct *wire.CommitToken) []Action {
	ct = ct.Clone()
	ct.Rotation = 2
	actions := e.enterRecovery(ct)
	if len(ct.Members) == 1 {
		initial := &wire.Token{RingID: e.ring.ID, TokenSeq: 1}
		return append(actions, e.handleRegularToken(initial)...)
	}
	return append(actions, SendCommit{To: ct.Members[1].ID, Commit: ct})
}

// commitConfiguration extracts the new ring's configuration from a commit
// token.
func commitConfiguration(ct *wire.CommitToken) Configuration {
	members := make([]wire.ParticipantID, len(ct.Members))
	for i := range ct.Members {
		members[i] = ct.Members[i].ID
	}
	return Configuration{ID: ct.RingID, Members: members}
}

func allFilled(ct *wire.CommitToken) bool {
	for i := range ct.Members {
		if !ct.Members[i].Filled {
			return false
		}
	}
	return true
}

// enterRecovery installs the forming ring for token circulation (the
// application-visible configuration change is delivered only when recovery
// completes), saves the old ring's state, and computes this participant's
// retransmission obligations: the old-ring messages it must re-multicast so
// that every member arriving from the same old ring ends up with identical
// message sets (Extended Virtual Synchrony).
func (e *Engine) enterRecovery(ct *wire.CommitToken) []Action {
	e.commitInfo = make([]wire.CommitMember, len(ct.Members))
	copy(e.commitInfo, ct.Members)

	e.oldRing = e.ring
	e.oldBuf = e.buf
	e.oldSafeBound = e.safeBound

	e.installRing(commitConfiguration(ct))
	e.setState(StateRecovery)
	e.obligations = e.computeObligations()
	e.obligationsHead = 0
	e.recoveryMarkers = make(map[wire.ParticipantID]wire.Seq, len(e.ring.Members))

	return []Action{
		CancelTimer{Kind: TimerJoin},
		CancelTimer{Kind: TimerConsensus},
		CancelTimer{Kind: TimerCommit},
		SetTimer{Kind: TimerTokenLoss, After: e.cfg.TokenLossTimeout},
	}
}

// computeObligations selects the old-ring messages this participant will
// re-multicast during recovery. For each sequence number in the recovery
// range (between the lowest aru and the highest seq reported by members of
// our old ring), the designated retransmitter is the lowest-ID member
// guaranteed to have the message (aru ≥ seq); if no member's aru covers it,
// every member that happens to have it sends it and receivers drop
// duplicates.
func (e *Engine) computeObligations() []*wire.DataMessage {
	if e.oldBuf == nil || e.oldRing.ID == (wire.RingID{}) {
		return nil
	}
	var peers []wire.CommitMember
	for _, m := range e.commitInfo {
		if m.OldRingID == e.oldRing.ID {
			peers = append(peers, m)
		}
	}
	if len(peers) <= 1 {
		return nil // nobody else survived from our old ring
	}
	low := peers[0].MyARU
	high := peers[0].HighSeq
	for _, p := range peers[1:] {
		if p.MyARU < low {
			low = p.MyARU
		}
		if p.HighSeq > high {
			high = p.HighSeq
		}
	}
	var out []*wire.DataMessage
	for s := low + 1; s <= high; s++ {
		m := e.oldBuf.Get(s)
		if m == nil {
			continue
		}
		designated := wire.ParticipantID(0)
		for _, p := range peers {
			if p.MyARU >= s && (designated == 0 || p.ID < designated) {
				designated = p.ID
			}
		}
		if designated == 0 || designated == e.cfg.MyID {
			out = append(out, m)
		}
	}
	return out
}

// recoveryRoundEnd runs after the token-handling core while in Recovery.
// Recovery is complete for this participant once it holds an
// end-of-recovery marker from every member of the forming ring and its safe
// bound covers the highest marker: at that point every message any member
// re-multicast (all of which precede that member's marker in the new ring's
// total order) is known to be held by every member, so the transitional
// configuration's guarantees can be met. Members that complete early and
// begin sending application traffic do not disturb stragglers — the safe
// bound keeps advancing regardless.
func (e *Engine) recoveryRoundEnd(actions []Action) []Action {
	if len(e.recoveryMarkers) < len(e.ring.Members) {
		return actions
	}
	var maxMarker wire.Seq
	for _, s := range e.recoveryMarkers {
		if s > maxMarker {
			maxMarker = s
		}
	}
	if e.safeBound < maxMarker {
		return actions
	}
	return e.completeRecovery(actions)
}

// completeRecovery finishes the membership change per Extended Virtual
// Synchrony: deliver the old configuration's remaining messages that meet
// its guarantees, then the transitional configuration, then the messages
// that could only be recovered under the transitional guarantees, then the
// new regular configuration — and finally anything already buffered on the
// new ring.
func (e *Engine) completeRecovery(actions []Action) []Action {
	if e.oldBuf != nil && e.oldRing.ID != (wire.RingID{}) {
		// Messages deliverable under the old configuration's own rules:
		// contiguous, with Safe messages only up to the old safe bound.
		for {
			m := e.oldBuf.NextDeliverable(e.oldSafeBound)
			if m == nil {
				break
			}
			e.oldBuf.Advance(m.Seq)
			if m.Recovered {
				continue
			}
			actions = e.emitDeliver(actions, m)
		}
		// The transitional configuration: the members of the new ring that
		// arrived together from this participant's old ring (per the
		// commit token's old-ring identifiers — a member present in both
		// rings may still have travelled through an intermediate ring, in
		// which case it is not a transitional peer).
		transMembers := make([]wire.ParticipantID, 0, len(e.commitInfo))
		for _, m := range e.commitInfo {
			if m.OldRingID == e.oldRing.ID {
				transMembers = append(transMembers, m.ID)
			}
		}
		trans := Configuration{ID: e.oldRing.ID, Members: transMembers}
		e.traceConfig(trans, true)
		actions = append(actions, DeliverConfig{Config: trans, Transitional: true})
		// Everything else we hold from the old ring, in sequence order.
		// Recovery quiescence guarantees every transitional member holds
		// these, so Safe messages now satisfy their guarantee with respect
		// to the transitional membership.
		e.oldBuf.Range(e.oldBuf.Delivered()+1, e.oldBuf.HighSeq(), func(m *wire.DataMessage) bool {
			if m.Recovered {
				return true
			}
			actions = e.emitDeliver(actions, m)
			return true
		})
	}

	e.oldRing = Configuration{}
	e.oldBuf = nil
	e.obligations = nil
	e.obligationsHead = 0
	e.commitInfo = nil
	e.recoveryMarkers = nil
	e.setState(StateOperational)
	e.stats.MembershipChanges++
	e.traceConfig(e.ring, false)
	actions = append(actions, DeliverConfig{Config: e.ring.Clone(), Transitional: false})
	// Members that completed earlier may already be sending application
	// messages on the new ring.
	return e.deliverReady(actions)
}

// setToSorted converts a participant set to a sorted slice.
func setToSorted(set map[wire.ParticipantID]bool) []wire.ParticipantID {
	out := make([]wire.ParticipantID, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	return sortedIDs(out)
}

// idSliceEqual reports whether two sorted ID slices are equal.
func idSliceEqual(a, b []wire.ParticipantID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
