package core

import (
	"testing"
	"testing/quick"
	"time"

	"accelring/internal/wire"
)

// TestQuickTotalOrderUnderRandomLoss runs rings of random size under random
// message loss and verifies the fundamental invariant: all participants
// deliver the same messages in the same order (prefix consistency), and
// nothing is delivered twice.
func TestQuickTotalOrderUnderRandomLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed int64, sizeRaw, lossRaw uint8) bool {
		size := int(sizeRaw%4) + 2          // 2..5 nodes
		loss := float64(lossRaw%20) / 100.0 // 0..19% loss
		h := newHarness(t, size, accelConfig())
		h.dropData = randomLoss(seed, loss)
		h.startStatic()
		perNode := 15
		for i := 0; i < perNode; i++ {
			for id := 1; id <= size; id++ {
				svc := wire.ServiceAgreed
				if (i+id)%3 == 0 {
					svc = wire.ServiceSafe
				}
				h.submit(wire.ParticipantID(id), payload(wire.ParticipantID(id), i), svc)
			}
		}
		h.run(20 * time.Second)

		want := perNode * size
		for _, n := range h.nodes {
			msgs := n.appMsgs()
			if len(msgs) != want {
				t.Logf("seed %d size %d loss %.2f: node %s delivered %d, want %d",
					seed, size, loss, n.id, len(msgs), want)
				return false
			}
			seen := map[string]bool{}
			for _, m := range msgs {
				if seen[string(m.Payload)] {
					t.Logf("duplicate delivery %q at node %s", m.Payload, n.id)
					return false
				}
				seen[string(m.Payload)] = true
			}
		}
		ref := h.nodes[0].appMsgs()
		for _, n := range h.nodes[1:] {
			msgs := n.appMsgs()
			for k := range ref {
				if string(msgs[k].Payload) != string(ref[k].Payload) {
					t.Logf("order divergence at %d between nodes 1 and %s", k, n.id)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickConsistencyUnderCrash crashes a random node at a random point in
// the stream and checks the survivors' delivery sequences stay consistent
// and complete for surviving senders' messages.
func TestQuickConsistencyUnderCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed int64, victimRaw, whenRaw uint8) bool {
		const size = 4
		victim := wire.ParticipantID(victimRaw%size) + 1
		when := time.Duration(whenRaw%40) * 100 * time.Microsecond
		h := newHarness(t, size, accelConfig())
		h.dropData = randomLoss(seed, 0.03)
		h.startStatic()
		for i := 0; i < 20; i++ {
			for id := 1; id <= size; id++ {
				h.submit(wire.ParticipantID(id), payload(wire.ParticipantID(id), i), wire.ServiceAgreed)
			}
		}
		h.run(when)
		h.crash(victim)
		h.run(20 * time.Second)

		var survivors []wire.ParticipantID
		for id := wire.ParticipantID(1); id <= size; id++ {
			if id != victim {
				survivors = append(survivors, id)
			}
		}
		// Prefix consistency across survivors.
		ref := h.node(survivors[0]).appMsgs()
		for _, id := range survivors[1:] {
			msgs := h.node(id).appMsgs()
			n := len(ref)
			if len(msgs) < n {
				n = len(msgs)
			}
			for k := 0; k < n; k++ {
				if string(msgs[k].Payload) != string(ref[k].Payload) {
					t.Logf("seed %d victim %s when %v: divergence at %d", seed, victim, when, k)
					return false
				}
			}
		}
		// Survivors' own messages must all be delivered at every survivor.
		for _, id := range survivors {
			seen := map[string]bool{}
			for _, m := range h.node(id).appMsgs() {
				seen[string(m.Payload)] = true
			}
			for _, sender := range survivors {
				for i := 0; i < 20; i++ {
					if !seen[string(payload(sender, i))] {
						t.Logf("seed %d victim %s when %v: node %s missing %s/%d",
							seed, victim, when, id, sender, i)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
