package core

import (
	"fmt"
	"testing"
	"time"

	"accelring/internal/wire"
)

// This file implements a checker for the Extended Virtual Synchrony axioms
// over the event histories the harness records, and applies it to a rough
// mixed-fault scenario. The checker verifies, per node and across nodes:
//
//  1. sane configuration sequencing: messages are only delivered after a
//     first regular configuration; at most one transitional configuration
//     between regular ones;
//  2. no duplicate deliveries at a node;
//  3. agreement: two nodes that install the same regular configuration
//     (same ring ID) deliver prefix-consistent message sequences between
//     that installation and their respective next configuration event;
//  4. per-sender FIFO within each node's whole history.

// epoch is the stretch of messages one node delivered in one regular
// configuration.
type epoch struct {
	id   wire.RingID
	msgs []string
}

// nodeEpochs splits a node's history into per-configuration epochs.
// It fails the test on axiom 1 or 2 violations.
func nodeEpochs(t *testing.T, n *hnode) []epoch {
	t.Helper()
	var epochs []epoch
	var cur *epoch
	transSinceRegular := 0
	seen := map[string]bool{}
	for _, d := range n.delivered {
		if d.msg == nil {
			if d.trans {
				transSinceRegular++
				if transSinceRegular > 1 {
					t.Fatalf("node %s: two transitional configs without a regular one", n.id)
				}
				// Messages after the transitional config belong to the
				// transitional epoch; we close the regular epoch here.
				cur = nil
				continue
			}
			transSinceRegular = 0
			epochs = append(epochs, epoch{id: d.config.ID})
			cur = &epochs[len(epochs)-1]
			continue
		}
		if cur == nil && len(epochs) == 0 {
			t.Fatalf("node %s: delivery before any configuration", n.id)
		}
		key := string(d.msg.Payload)
		if seen[key] {
			t.Fatalf("node %s: duplicate delivery %q", n.id, key)
		}
		seen[key] = true
		if cur != nil {
			cur.msgs = append(cur.msgs, key)
		}
	}
	return epochs
}

// checkEVS applies the axioms across all nodes of the harness.
func (h *harness) checkEVS() {
	h.t.Helper()
	perNode := make(map[wire.ParticipantID][]epoch, len(h.nodes))
	for _, n := range h.nodes {
		perNode[n.id] = nodeEpochs(h.t, n)
	}
	// Axiom 3: prefix consistency within shared regular configurations.
	for i, a := range h.nodes {
		for _, b := range h.nodes[i+1:] {
			for _, ea := range perNode[a.id] {
				for _, eb := range perNode[b.id] {
					if ea.id != eb.id {
						continue
					}
					n := len(ea.msgs)
					if len(eb.msgs) < n {
						n = len(eb.msgs)
					}
					for k := 0; k < n; k++ {
						if ea.msgs[k] != eb.msgs[k] {
							h.t.Fatalf("config %v: nodes %s and %s diverge at %d: %q vs %q",
								ea.id, a.id, b.id, k, ea.msgs[k], eb.msgs[k])
						}
					}
				}
			}
		}
	}
	// Axiom 4: per-sender FIFO over each node's full history.
	for _, n := range h.nodes {
		last := map[wire.ParticipantID]int{}
		for _, d := range n.delivered {
			if d.msg == nil {
				continue
			}
			var sender, idx int
			if _, err := fmt.Sscanf(string(d.msg.Payload), "m-%d-%d", &sender, &idx); err != nil {
				continue // not a harness payload
			}
			pid := wire.ParticipantID(sender)
			if prev, ok := last[pid]; ok && idx <= prev {
				h.t.Fatalf("node %s: sender %s FIFO violated: %d after %d", n.id, pid, idx, prev)
			}
			last[pid] = idx
		}
	}
}

func TestEVSCheckerOnCleanRun(t *testing.T) {
	h := newHarness(t, 4, accelConfig())
	h.startStatic()
	for i := 0; i < 20; i++ {
		for id := wire.ParticipantID(1); id <= 4; id++ {
			h.submit(id, payload(id, i), wire.ServiceAgreed)
		}
	}
	h.run(2 * time.Second)
	h.checkAllDelivered(80, 1, 2, 3, 4)
	h.checkEVS()
}

func TestEVSUnderMixedFaults(t *testing.T) {
	// The gauntlet: loss from the start, a crash mid-stream, a partition,
	// more traffic in both halves, then a merge — EVS axioms must hold
	// throughout for every node that is still alive.
	h := newHarness(t, 5, accelConfig())
	h.dropData = randomLoss(1234, 0.03)
	h.startStatic()

	send := func(base int) {
		for i := 0; i < 10; i++ {
			for id := wire.ParticipantID(1); id <= 5; id++ {
				if h.node(id).crashed {
					continue
				}
				h.submit(id, payload(id, base+i), wire.ServiceAgreed)
			}
		}
	}
	send(0)
	h.run(5 * time.Millisecond)
	h.crash(5)
	h.waitConfig(5*time.Second, []wire.ParticipantID{1, 2, 3, 4}, 1, 2, 3, 4)
	send(100)
	h.run(500 * time.Millisecond)

	// Partition {1,2} / {3,4}.
	h.partition[3] = 1
	h.partition[4] = 1
	h.waitConfig(5*time.Second, []wire.ParticipantID{1, 2}, 1, 2)
	h.waitConfig(5*time.Second, []wire.ParticipantID{3, 4}, 3, 4)
	for i := 0; i < 10; i++ {
		h.submit(1, payload(1, 200+i), wire.ServiceSafe)
		h.submit(3, payload(3, 200+i), wire.ServiceSafe)
	}
	h.run(1 * time.Second)

	// Merge back and push more traffic.
	h.partition = map[wire.ParticipantID]int{}
	h.submit(2, payload(2, 300), wire.ServiceAgreed)
	h.waitConfig(10*time.Second, []wire.ParticipantID{1, 2, 3, 4}, 1, 2, 3, 4)
	send(400)
	h.run(3 * time.Second)

	// The crashed node's history must also satisfy the axioms up to its
	// death; checkEVS covers all nodes including it.
	h.checkEVS()
}

func TestEVSUnderTokenLossStorm(t *testing.T) {
	// Repeated token loss forces membership churn without any crash; the
	// ring must keep re-forming with all members and histories must stay
	// consistent.
	h := newHarness(t, 3, accelConfig())
	dropped := 0
	h.dropToken = func(from, to wire.ParticipantID, tok *wire.Token) bool {
		dropped++
		return dropped%40 == 0 // periodic token loss bursts past retransmission
	}
	h.startStatic()
	for i := 0; i < 60; i++ {
		for id := wire.ParticipantID(1); id <= 3; id++ {
			h.submit(id, payload(id, i), wire.ServiceAgreed)
		}
	}
	h.run(10 * time.Second)
	h.checkAllDelivered(180, 1, 2, 3)
	h.checkEVS()
}
