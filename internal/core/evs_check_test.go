package core

import (
	"testing"
	"time"

	"accelring/internal/evscheck"
	"accelring/internal/wire"
)

// The EVS conformance checker itself lives in internal/evscheck (with its
// own mutation self-tests); the harness exposes it as one call so every
// scenario and chaos campaign ends with the same machine-checked verdict.

// checkEVS applies the EVS axioms across all nodes (and all incarnations)
// of the harness.
func (h *harness) checkEVS() {
	h.t.Helper()
	h.checkEVSOptions(evscheck.Options{})
}

// checkEVSQuiescent additionally enforces end-of-run completeness: every
// live node sharing the final configuration must have delivered the
// identical message sequence. Only valid after the run has settled with no
// traffic in flight.
func (h *harness) checkEVSQuiescent() {
	h.t.Helper()
	h.checkEVSOptions(evscheck.Options{Quiescent: true})
}

func (h *harness) checkEVSOptions(opt evscheck.Options) {
	h.t.Helper()
	if vs := evscheck.Check(h.evLog(), opt); len(vs) > 0 {
		for _, v := range vs {
			h.t.Errorf("EVS violation: %v", v)
		}
		h.t.FailNow()
	}
}

func TestEVSCheckerOnCleanRun(t *testing.T) {
	h := newHarness(t, 4, accelConfig())
	h.startStatic()
	for i := 0; i < 20; i++ {
		for id := wire.ParticipantID(1); id <= 4; id++ {
			h.submit(id, payload(id, i), wire.ServiceAgreed)
		}
	}
	h.run(2 * time.Second)
	h.checkAllDelivered(80, 1, 2, 3, 4)
	h.checkEVS()
}

func TestEVSUnderMixedFaults(t *testing.T) {
	// The gauntlet: loss from the start, a crash mid-stream, a partition,
	// more traffic in both halves, then a merge — EVS axioms must hold
	// throughout for every node that is still alive.
	h := newHarness(t, 5, accelConfig())
	h.dropData = randomLoss(1234, 0.03)
	h.startStatic()

	send := func(base int) {
		for i := 0; i < 10; i++ {
			for id := wire.ParticipantID(1); id <= 5; id++ {
				if h.node(id).crashed {
					continue
				}
				h.submit(id, payload(id, base+i), wire.ServiceAgreed)
			}
		}
	}
	send(0)
	h.run(5 * time.Millisecond)
	h.crash(5)
	h.waitConfig(5*time.Second, []wire.ParticipantID{1, 2, 3, 4}, 1, 2, 3, 4)
	send(100)
	h.run(500 * time.Millisecond)

	// Partition {1,2} / {3,4}.
	h.partition[3] = 1
	h.partition[4] = 1
	h.waitConfig(5*time.Second, []wire.ParticipantID{1, 2}, 1, 2)
	h.waitConfig(5*time.Second, []wire.ParticipantID{3, 4}, 3, 4)
	for i := 0; i < 10; i++ {
		h.submit(1, payload(1, 200+i), wire.ServiceSafe)
		h.submit(3, payload(3, 200+i), wire.ServiceSafe)
	}
	h.run(1 * time.Second)

	// Merge back and push more traffic.
	h.partition = map[wire.ParticipantID]int{}
	h.submit(2, payload(2, 300), wire.ServiceAgreed)
	h.waitConfig(10*time.Second, []wire.ParticipantID{1, 2, 3, 4}, 1, 2, 3, 4)
	send(400)
	h.run(3 * time.Second)

	// The crashed node's history must also satisfy the axioms up to its
	// death; checkEVS covers all nodes including it.
	h.checkEVS()
}

func TestEVSUnderTokenLossStorm(t *testing.T) {
	// Repeated token loss forces membership churn without any crash; the
	// ring must keep re-forming with all members and histories must stay
	// consistent.
	h := newHarness(t, 3, accelConfig())
	dropped := 0
	h.dropToken = func(from, to wire.ParticipantID, tok *wire.Token) bool {
		dropped++
		return dropped%40 == 0 // periodic token loss bursts past retransmission
	}
	h.startStatic()
	for i := 0; i < 60; i++ {
		for id := wire.ParticipantID(1); id <= 3; id++ {
			h.submit(id, payload(id, i), wire.ServiceAgreed)
		}
	}
	h.run(10 * time.Second)
	h.checkAllDelivered(180, 1, 2, 3)
	h.checkEVS()
}
