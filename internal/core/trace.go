package core

import (
	"accelring/internal/wire"
)

// Tracer receives protocol-level events for observability and debugging.
// All callbacks run synchronously on the protocol goroutine: implementations
// must be fast and must not call back into the engine. A nil tracer
// disables tracing with no overhead beyond a nil check.
type Tracer interface {
	// StateChanged reports a membership state transition.
	StateChanged(from, to State)
	// TokenForwarded reports a regular token leaving this participant:
	// destination, the forwarded seq/aru, and how many retransmissions and
	// new messages this round produced.
	TokenForwarded(to wire.ParticipantID, seq, aru wire.Seq, retrans, newMsgs int)
	// ConfigurationInstalled reports a configuration delivery (regular or
	// transitional).
	ConfigurationInstalled(cfg Configuration, transitional bool)
}

// setState transitions the membership state, notifying the tracer.
func (e *Engine) setState(s State) {
	if e.state == s {
		return
	}
	if e.cfg.Tracer != nil {
		e.cfg.Tracer.StateChanged(e.state, s)
	}
	e.state = s
}

func (e *Engine) traceTokenForwarded(to wire.ParticipantID, tok *wire.Token, retrans, newMsgs int) {
	if e.cfg.Tracer != nil {
		e.cfg.Tracer.TokenForwarded(to, tok.Seq, tok.ARU, retrans, newMsgs)
	}
}

func (e *Engine) traceConfig(cfg Configuration, transitional bool) {
	if e.cfg.Tracer != nil {
		e.cfg.Tracer.ConfigurationInstalled(cfg, transitional)
	}
}
