package ringpaxos

import (
	"sort"

	"accelring/internal/core"
	"accelring/internal/wire"
)

// Phase 2 rides the token frame. The coordinator opens a circulation by
// sending a token to its active-ring successor; each member learns the
// decided watermark from it, folds its own acceptance vote in, and
// forwards it; when the token returns, the aggregated vote is the new
// decided watermark. Field mapping:
//
//	RingID   – the static configuration identity (transport routing)
//	TokenSeq – circulation counter, restarting at 1 per view
//	Round    – the view
//	Seq      – highest assigned instance (the window's right edge)
//	ARU      – decided watermark at circulation start
//	ARUID    – the coordinator
//	FCC      – number of votes folded in (sanity only; the min is safe
//	           regardless)
//	RTR[0]   – the vote aggregate: the minimum, over members so far, of
//	           each member's consecutive current-view accepted prefix
//	RTR[1:]  – missing-instance retransmission requests, answered and
//	           removed by members along the ring
//
// A member's vote is the largest P such that every instance in
// (decided, P] has an assignment accepted in the current view. Votes are
// prefixes, so the aggregate minimum over the whole ring means every
// active member accepted everything up to it — and the active ring
// contains a majority, so those instances are decided (ring-is-quorum).
// Decision happens only at the coordinator, only when its own token
// returns.
const maxTokenRetrans = 5

// buildToken constructs the token for the next circulation. The
// coordinator's own vote is folded at build time: its accepted prefix is
// always the full window (it authored every assignment), so RTR[0]
// starts at high.
func (e *Engine) buildToken() *wire.Token {
	e.circ++
	return &wire.Token{
		RingID:   e.ringID,
		TokenSeq: e.circ,
		Round:    wire.Round(e.view),
		Seq:      wire.Seq(e.high),
		ARU:      wire.Seq(e.decided),
		ARUID:    e.cfg.MyID,
		FCC:      1,
		RTR:      []wire.Seq{wire.Seq(e.high)},
	}
}

// sendTokenTo emits the token to its destination and retains a clone for
// retransmission until evidence of onward progress arrives.
func (e *Engine) sendTokenTo(to wire.ParticipantID, tok *wire.Token, acts []core.Action) []core.Action {
	e.sentToken = tok.Clone()
	e.sentTokenTo = to
	e.sentRetrans = 0
	acts = append(acts, core.SendToken{To: to, Token: tok})
	if !e.retransArmed {
		e.retransArmed = true
		acts = append(acts, core.SetTimer{Kind: core.TimerTokenRetrans, After: e.cfg.TokenRetransPeriod})
	}
	return acts
}

// HandleToken processes a received Phase 2 token.
func (e *Engine) HandleToken(t *wire.Token) []core.Action {
	if !e.started || t.RingID != e.ringID || e.inViewChange {
		return nil
	}
	view := uint64(t.Round)
	if view != e.view || len(t.RTR) == 0 {
		if view > e.promised {
			// Circulating traffic for a view we never installed.
			return []core.Action{core.SendData{Msg: e.nackFrame(true)}}
		}
		e.px.StaleTokens++
		return nil
	}
	if t.TokenSeq <= e.lastTokSeq {
		e.stats.TokensDuplicate++
		return nil
	}
	if e.isCoordinator() {
		return e.handleTokenReturn(t)
	}
	if e.myActiveIdx < 0 {
		// Off-ring members never vote; seeing a token here means the
		// coordinator's view of the ring and ours disagree. The ARU is
		// still trustworthy — learn from it, then drop.
		e.lastTokSeq = t.TokenSeq
		return e.advanceDecided(uint64(t.ARU), nil)
	}
	e.lastTokSeq = t.TokenSeq
	e.stats.TokensProcessed++
	e.px.Phase2Tokens++

	var acts []core.Action
	// Learn: everything up to the coordinator's decided watermark is
	// decided.
	acts = e.advanceDecided(uint64(t.ARU), acts)
	if uint64(t.Seq) > e.high {
		e.high = uint64(t.Seq)
	}

	// Vote: extend the aggregate with our current-view accepted prefix.
	prefix := e.votePrefix()
	if prefix < uint64(t.RTR[0]) {
		t.RTR[0] = wire.Seq(prefix)
	}
	if prefix < e.high {
		e.px.VoteAbstains++
	}
	t.FCC++

	// Serve retransmission requests we can answer, removing them so
	// members later in the ring do not answer again.
	acts, t.RTR = e.answerTokenRTR(acts, t.RTR)

	// Append our own missing instances (decided but undeliverable here).
	t.RTR = e.appendMissing(t.RTR)

	acts = e.sendTokenTo(e.successor(), t.Clone(), acts)
	acts = e.armLiveness(acts)
	return acts
}

// votePrefix computes this member's Phase 2b vote: the end of the
// consecutive run of current-view acceptances just above the decided
// watermark.
func (e *Engine) votePrefix() uint64 {
	p := e.decided
	for {
		ent, ok := e.log[p+1]
		if !ok || ent.view != e.view {
			return p
		}
		p++
	}
}

// answerTokenRTR serves requests from the token's RTR tail (RTR[0] is the
// vote slot). Answered requests are removed; the rest are carried on.
func (e *Engine) answerTokenRTR(acts []core.Action, rtr []wire.Seq) ([]core.Action, []wire.Seq) {
	kept := rtr[:1]
	answered := 0
	for _, s := range rtr[1:] {
		inst := uint64(s)
		if answered < perTokenRTRAnswers && inst <= e.decided && e.canDeliver(inst) {
			e.px.ValueRetransmits++
			acts = append(acts, core.SendData{Msg: e.decidedFrame(inst)})
			answered++
			continue
		}
		kept = append(kept, s)
	}
	return acts, kept
}

// appendMissing adds this member's undeliverable decided instances to the
// token's request list, deduplicating against requests already aboard.
func (e *Engine) appendMissing(rtr []wire.Seq) []wire.Seq {
	if e.delivered >= e.decided {
		return rtr
	}
	aboard := make(map[wire.Seq]bool, len(rtr)-1)
	for _, s := range rtr[1:] {
		aboard[s] = true
	}
	added := 0
	for i := e.delivered + 1; i <= e.decided && added < perTokenRTRAdds && len(rtr) < wire.MaxRTR; i++ {
		if e.canDeliver(i) || aboard[wire.Seq(i)] {
			continue
		}
		rtr = append(rtr, wire.Seq(i))
		added++
	}
	if added > 0 {
		e.stats.RTRRequested += uint64(added)
	}
	return rtr
}

// handleTokenReturn is the coordinator's side of a completed circulation:
// the aggregate vote decides, new work is assigned, and either the next
// circulation starts or an idle ring pauses.
func (e *Engine) handleTokenReturn(t *wire.Token) []core.Action {
	if !e.awaitReturn || t.TokenSeq != e.circ {
		e.stats.TokensDuplicate++
		return nil
	}
	e.awaitReturn = false
	e.provenRing = true // a full circulation returned in this view
	e.lastTokSeq = t.TokenSeq
	e.stats.TokensProcessed++
	e.px.Phase2Tokens++
	e.sentToken = nil // stop retransmitting the circulation we got back

	var acts []core.Action
	prevDecided := e.decided

	// Decide: the aggregate vote is the full ring's accepted prefix.
	voteMin := uint64(t.RTR[0])
	if voteMin > e.decided {
		e.px.QuorumDecides += voteMin - e.decided
	}
	acts = e.advanceDecided(voteMin, acts)

	// Serve what the ring could not.
	acts, _ = e.answerTokenRTR(acts, t.RTR)

	if e.decided > prevDecided || voteMin < e.high || e.outstanding() {
		e.idleCircs = 0
	} else {
		e.idleCircs++
	}
	if e.idleCircs >= idlePauseCirculations {
		// Everything is decided and delivered, and the final watermark has
		// made a full lap in the ARU field: quiesce. maybeResume restarts
		// the circulation on new work.
		e.paused = true
		acts = append(acts, core.CancelTimer{Kind: core.TimerTokenRetrans})
		e.retransArmed = false
	} else {
		acts = e.circulate(acts, voteMin)
	}
	acts = e.armLiveness(acts)
	acts = e.armExpansion(acts)
	return acts
}

// circulate assigns new instances, repairs assignment loss, and opens the
// next circulation.
func (e *Engine) circulate(acts []core.Action, voteMin uint64) []core.Action {
	// Repair: a vote short of the window means some member is missing
	// assignments — re-multicast a slice of the window above the vote.
	if voteMin < e.high {
		end := voteMin + uint64(e.cfg.Flow.PersonalWindow)
		if end > e.high {
			end = e.high
		}
		acts = append(acts, e.reassignRange(voteMin+1, end)...)
	}

	// Assign fresh values from the pool, within the instance window.
	batch := e.assignBatch()
	if len(batch) > 0 {
		base := e.high - uint64(len(batch)) + 1
		acts = append(acts, core.SendData{Msg: e.assignFrame(base, batch)})
	}

	tok := e.buildToken()
	e.awaitReturn = true
	e.px.Phase2Circulations++
	return e.sendTokenTo(e.successor(), tok, acts)
}

// reassignRange re-multicasts the (dense) assignment window [lo, hi].
func (e *Engine) reassignRange(lo, hi uint64) []core.Action {
	if hi < lo {
		return nil
	}
	keys := make([]valKey, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		ent, ok := e.log[i]
		if !ok {
			break // window not dense here (should not happen); stop clean
		}
		keys = append(keys, ent.key)
	}
	if len(keys) == 0 {
		return nil
	}
	e.stats.MsgsRetransmitted++
	return []core.Action{core.SendData{Msg: e.assignFrame(lo, keys)}}
}

// assignBatch drains the pool into consecutive fresh instances. Fresh
// assignment requires the coordinator to be fully caught up (delivered ==
// decided): only then is its per-proposer delivery history complete, and
// the nextAssign floor provably excludes every value that was ever
// decided — the invariant that keeps any value from being decided at two
// instances. Per-proposer order is preserved; proposers are interleaved
// in ascending ID order for determinism.
func (e *Engine) assignBatch() []valKey {
	if !e.provenRing {
		// Unproven view-0 ring (see the field comment): circulate an
		// empty probe first; assignment resumes once it returns.
		return nil
	}
	if e.delivered != e.decided || e.poolSize == 0 {
		return nil
	}
	budget := e.cfg.Flow.PersonalWindow
	window := e.decided + uint64(e.cfg.Flow.MaxSeqGap)
	if e.high >= window {
		return nil
	}
	if room := window - e.high; uint64(budget) > room {
		budget = int(room)
	}

	pids := make([]wire.ParticipantID, 0, len(e.pool))
	for p := range e.pool {
		pids = append(pids, p)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })

	var keys []valKey
	for len(keys) < budget {
		assignedAny := false
		for _, p := range pids {
			if len(keys) >= budget {
				break
			}
			sp := e.pool[p]
			next := e.freshAssignFloor(p)
			prop, ok := sp[next]
			if !ok {
				// Drop pool entries below the floor (already assigned or
				// delivered through another path).
				for s := range sp {
					if s < next {
						delete(sp, s)
						e.poolSize--
					}
				}
			}
			if !ok {
				// Incarnation jump: the proposer restarted, so its new
				// incarnation's first value (counter 1) sits above a gap
				// the dead incarnation can never fill. Jump the floor to
				// it and drop whatever is pooled in between — those
				// values are above the floor, hence provably never
				// decided, so skipping them cannot reorder or duplicate
				// anything; their proposer is gone, so holding them would
				// stall this proposer's pool forever.
				if head, found := incarnationHead(sp, next); found {
					for s := range sp {
						if s < head {
							delete(sp, s)
							e.poolSize--
						}
					}
					next = head
					prop, ok = sp[next]
				}
			}
			if !ok {
				continue
			}
			k := valKey{pid: p, seq: next}
			e.values[k] = prop
			delete(sp, next)
			e.poolSize--
			e.nextAssign[p] = next + 1
			keys = append(keys, k)
			assignedAny = true
		}
		if !assignedAny {
			break
		}
	}
	if len(keys) == 0 {
		return nil
	}
	if TestMutateAssignOrder.Load() && len(keys) >= 2 {
		keys[0], keys[1] = keys[1], keys[0]
	}
	// Accept locally: the coordinator is an acceptor too.
	for _, k := range keys {
		e.high++
		e.log[e.high] = entry{key: k, view: e.view}
		e.assignCirc[e.high] = e.circ
		e.markAssigned(k)
	}
	e.px.AssignBatches++
	return keys
}

// freshAssignFloor is the smallest proposer sequence of p that may be
// freshly assigned: above everything delivered and everything currently
// assigned in the window.
func (e *Engine) freshAssignFloor(p wire.ParticipantID) uint64 {
	f := e.lastDelivered[p] + 1
	if n := e.nextAssign[p]; n > f {
		f = n
	}
	return f
}

// incarnationHead returns the smallest pooled sequence that starts an
// incarnation newer than the floor's (counter exactly 1), if any. A
// counter above 1 means the new incarnation's earlier values are still in
// flight — the live proposer retransmits them, so waiting is correct;
// only a counter-1 head proves the pool can resume in proposer order.
func incarnationHead(sp map[uint64]*proposal, floor uint64) (uint64, bool) {
	var best uint64
	found := false
	for s := range sp {
		if s > floor && incOf(s) > incOf(floor) && uint32(s) == 1 {
			if !found || s < best {
				best = s
				found = true
			}
		}
	}
	return best, found
}

// maybeResume restarts a paused circulation when the coordinator has new
// work: pooled values, an unfinished window, or undelivered decisions.
func (e *Engine) maybeResume(acts []core.Action) []core.Action {
	if !e.isCoordinator() || e.inViewChange || !e.paused {
		return acts
	}
	if e.poolSize == 0 && e.high <= e.decided && e.delivered >= e.decided {
		return acts
	}
	e.paused = false
	e.idleCircs = 0
	if len(e.active) == 1 {
		return e.soloRounds(acts)
	}
	acts = e.circulate(acts, e.high)
	acts = e.armLiveness(acts)
	return acts
}

// soloRounds handles the degenerate single-member active ring: the
// coordinator is the entire quorum, so assignment is decision. Loops
// until the pool is drained, then pauses again.
func (e *Engine) soloRounds(acts []core.Action) []core.Action {
	for {
		e.circ++
		batch := e.assignBatch()
		if len(batch) > 0 {
			base := e.high - uint64(len(batch)) + 1
			acts = append(acts, core.SendData{Msg: e.assignFrame(base, batch)})
		}
		prev := e.decided
		acts = e.advanceDecided(e.high, acts)
		e.px.QuorumDecides += e.decided - prev
		if len(batch) == 0 {
			break
		}
	}
	e.paused = true
	return acts
}
