// Package ringpaxos implements Ring Paxos (Marandi, Primi, Schiper &
// Pedone, "Ring Paxos: A High-Throughput Atomic Broadcast Protocol") as a
// second ordering engine behind this repository's engine ⇄ runtime
// contract (core.OrderingEngine). It speaks the same four wire frames as
// the Accelerated Ring engine — proposals and protocol control messages
// travel as data frames, the ring-circulated Phase 2 ack travels as the
// token frame — so it runs over memnet, netsim and udpnet unmodified and
// slots behind multiring.RingHandle.
//
// Protocol shape, mapped onto the paper:
//
//   - The member set is static (StartWithRing's list) and doubles as the
//     acceptor set. A view (the paper's "ring configuration", a Paxos
//     ballot) has a coordinator — members[view mod n] — and an active
//     ring: the ≥-majority subset of members that answered the view's
//     Phase 1. The ring IS the quorum: every active-ring member must
//     accept an instance before it is decided (the paper's c-coordinator /
//     ring-of-acceptors arrangement, with quorum = ring ⊇ majority).
//   - Proposers ip-multicast values to everyone (one data frame per
//     value). The coordinator assigns values to consecutive consensus
//     instances and multicasts compact assignment batches (Phase 2a:
//     instance → value-id, not the value bytes again). The Phase 2b acks
//     circulate on the ring inside the token frame: each member extends
//     its accepted prefix and min-aggregates it into the token; when the
//     token returns to the coordinator, the minimum is the new decided
//     watermark, published in the next token's ARU field. Learners
//     deliver decided instances in order.
//   - Failure of the coordinator or an active-ring member breaks the
//     circulation; liveness timeouts trigger Phase 1 for the next view
//     (viewchange.go), which re-collects accepted state from a majority,
//     re-proposes the undecided window, and installs a fresh active ring
//     of the responders. Lagging or restarted learners catch up via the
//     token's retransmission-request list and multicast nacks.
//
// The engine makes no Extended Virtual Synchrony view guarantees: it
// delivers exactly one configuration event (the static membership) per
// incarnation and never delivers transitional configurations. Safe
// service is delivered on decision (majority-stable), not on all-member
// stability. The evscheck ProfileTotalOrder waives exactly those axioms;
// docs/PROTOCOL.md's engine appendix has the full table.
package ringpaxos

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"accelring/internal/core"
	"accelring/internal/wire"
)

// ringSeq is the static configuration's ring sequence number, mirroring
// the Accelerated Ring engine's StartWithRing choice so both engines
// report the same configuration identity for the same member list.
const ringSeq = 4

// maxReportEntries bounds the accepted-suffix entries one Phase 1b report
// can carry: each entry is 28 bytes ({instance, view, key}) plus a
// 21-byte header, and 21 + 28*2300 = 64421 fits wire.MaxPayload (65024).
// The undecided window is clamped below it so a report never needs
// truncation — see the safety note in viewchange.go.
const maxReportEntries = 2300

// perTokenRTRAnswers caps how many retransmission requests one node
// answers per token (each answer is an assignment frame plus a value
// frame), keeping the catch-up bandwidth bounded.
const perTokenRTRAnswers = 32

// perTokenRTRAdds caps how many missing instances one node appends to the
// token's request list per circulation.
const perTokenRTRAdds = 128

// idlePauseCirculations is how many consecutive no-work circulations the
// coordinator completes before pausing the ring. Two guarantees that the
// final decided watermark made one full lap in the ARU field first, so
// every active member delivered everything before the ring goes quiet.
const idlePauseCirculations = 2

// TestMutateAssignOrder is a test-only fault injector: when set, the
// coordinator swaps the first two value assignments of every batch of two
// or more — a deliberate total-order bug that every honest learner
// follows identically. The cross-engine differential suite must catch it
// as a divergence from the Accelerated Ring engine's order; nothing else
// in the repository sets it.
var TestMutateAssignOrder atomic.Bool

// valKey identifies one proposed value: proposer and proposer-local
// 64-bit submission sequence. The sequence's high 32 bits are the
// proposer's incarnation (core.Config.Incarnation, stamped per process
// start) and the low 32 bits its submission counter, so a restarted
// proposer — whose counter restarts at zero — can never reissue a key its
// previous incarnation already used. The packed comparison order
// (incarnation first, counter second) matches submission chronology, so
// every ordering rule keyed on seq carries over unchanged.
type valKey struct {
	pid wire.ParticipantID
	seq uint64
}

// incOf extracts the incarnation half of a proposer sequence.
func incOf(seq uint64) uint32 { return uint32(seq >> 32) }

// proposal is one value awaiting or holding an instance assignment.
type proposal struct {
	service wire.Service
	payload []byte
}

// entry is one instance's accepted assignment.
type entry struct {
	key  valKey
	view uint64 // view in which the assignment was accepted
}

// Engine is a Ring Paxos participant. Deterministic single-goroutine
// state machine per the core.OrderingEngine contract.
type Engine struct {
	cfg     core.Config
	ringID  wire.RingID
	members []wire.ParticipantID // full static member set, ascending
	n       int
	major   int // majority of the full member set

	started bool

	// View state.
	view        uint64
	promised    uint64 // highest view promised; ≥ view
	coordinator wire.ParticipantID
	active      []wire.ParticipantID // the view's ring (ascending); ⊇ majority
	myActiveIdx int                  // index in active, -1 when off-ring

	// Phase 1 state (viewchange.go).
	inViewChange bool
	vcView       uint64
	vcReports    map[wire.ParticipantID]*report

	// Instance log. Instances are 1-based; log holds accepted assignments
	// (sparse below the decided watermark after a view change or restart),
	// values holds proposal bytes keyed by value id.
	log       map[uint64]entry
	values    map[valKey]*proposal
	high      uint64 // highest instance known assigned (token Seq field)
	decided   uint64 // instances ≤ decided are decided
	delivered uint64 // instances ≤ delivered are delivered (or skipped)

	// Delivery dedup: the highest proposer-sequence delivered per
	// proposer. A value re-assigned after a view change (its first
	// assignment was invisible to the new coordinator) is delivered once —
	// every learner walks the same instance sequence, so the skip rule is
	// identical everywhere.
	lastDelivered map[wire.ParticipantID]uint64

	// Proposer state: own submissions not yet observed assigned, in
	// submission order (retransmitted on a TimerJoin pace until assigned).
	// mySeq starts at Incarnation<<32 so every incarnation's keys are
	// disjoint (see valKey).
	mySeq      uint64
	myUnsent   []valKey // submitted, not yet multicast (drained by Flush)
	myPending  map[valKey]bool
	myPendOrd  []valKey // myPending in submission order
	maxPending int

	// Coordinator state: per-proposer holdback pools so values are
	// assigned in proposer order, plus the next sequence to assign.
	pool       map[wire.ParticipantID]map[uint64]*proposal
	poolSize   int
	nextAssign map[wire.ParticipantID]uint64

	// Phase 2 circulation state.
	circ         uint64 // coordinator's circulation counter (token TokenSeq)
	lastTokSeq   uint64
	awaitReturn  bool        // coordinator sent a token and awaits its return
	sentToken    *wire.Token // saved for retransmission
	sentTokenTo  wire.ParticipantID
	sentRetrans  int // retransmissions of sentToken so far
	retransArmed bool
	liveArmed    bool
	liveMark     uint64 // progress marker at the last liveness (re-)arm
	paused       bool   // coordinator paused an idle ring
	// provenRing gates fresh assignment on evidence that the active ring
	// really is at this view. Views installed by Phase 1 are proven by
	// the majority of reports; the implicit view 0 from StartWithRing is
	// not — a restarted members[0] also boots believing it coordinates
	// view 0 while the real cluster is views ahead, and letting it assign
	// its pooled values at instance 1 would poison history the cluster
	// already decided. In view 0 the coordinator therefore sends one
	// empty probe circulation first: only a ring genuinely at view 0
	// returns it (everyone else rejects the stale token), so its return
	// proves fresh assignment is safe. A solo ring is proven at start —
	// there are no survivors that could hold conflicting state.
	provenRing bool
	idleCircs  int               // consecutive circulations with nothing to do
	assignCirc map[uint64]uint64 // instance → circulation it was assigned in
	gcFloor    uint64            // instances ≤ gcFloor are garbage-collected

	// Ring-expansion backoff: set when an off-ring member shows signs of
	// life; a TimerCommit fire folds it into one view change.
	expansionWanted bool
	expansionArmed  bool

	// Catch-up: TimerJoin also paces multicast nacks while a delivery gap
	// persists (off-ring learners have no token to put requests on).
	nackArmed bool

	scratch []core.Action

	stats core.Stats
	px    Stats
}

// Config validation errors.
var (
	ErrNeedsMembers = errors.New("ringpaxos: static membership required (StartWithRing)")
	ErrNotMember    = errors.New("ringpaxos: participant not in member list")
)

// Interface conformance: the full engine ⇄ runtime contract plus both
// optional extensions (eager proposal flush, event-driven rotation).
var (
	_ core.OrderingEngine   = (*Engine)(nil)
	_ core.Flusher          = (*Engine)(nil)
	_ core.RotationObserver = (*Engine)(nil)
)

// New creates an engine. The config is the same struct the Accelerated
// Ring engine takes; the timer fields are reinterpreted per the table in
// the package comment (TokenLossTimeout = liveness, TokenRetransPeriod =
// token retransmit, JoinPeriod = proposal/nack/report pacing,
// ConsensusTimeout = view-change retry, CommitTimeout = ring-expansion
// delay), and Flow.PersonalWindow bounds assignments per circulation
// while Flow.MaxSeqGap (clamped to maxReportEntries) bounds the undecided
// window.
func New(cfg core.Config) (*Engine, error) {
	full := cfg
	if full.MyID == 0 {
		return nil, core.ErrNoID
	}
	// Reuse core's defaulting for timers, flow windows and backlog bounds.
	probe, err := core.New(full)
	if err != nil {
		return nil, fmt.Errorf("ringpaxos: %w", err)
	}
	cfg = probe.Config()
	if cfg.Flow.MaxSeqGap > maxReportEntries {
		cfg.Flow.MaxSeqGap = maxReportEntries
	}
	e := &Engine{
		cfg:           cfg,
		log:           make(map[uint64]entry),
		values:        make(map[valKey]*proposal),
		lastDelivered: make(map[wire.ParticipantID]uint64),
		myPending:     make(map[valKey]bool),
		pool:          make(map[wire.ParticipantID]map[uint64]*proposal),
		nextAssign:    make(map[wire.ParticipantID]uint64),
		vcReports:     make(map[wire.ParticipantID]*report),
		assignCirc:    make(map[uint64]uint64),
		maxPending:    cfg.MaxPending,
		myActiveIdx:   -1,
		mySeq:         uint64(cfg.Incarnation) << 32,
	}
	return e, nil
}

// Config returns the engine's defaulted configuration.
func (e *Engine) Config() core.Config { return e.cfg }

// State maps the engine's condition onto the shared State enum: Phase 1
// (view change) reports as Gather, normal operation as Operational.
func (e *Engine) State() core.State {
	if !e.started {
		return core.StateGather
	}
	if e.inViewChange {
		return core.StateGather
	}
	return core.StateOperational
}

// Ring returns the static configuration.
func (e *Engine) Ring() core.Configuration {
	cfg := core.Configuration{ID: e.ringID}
	cfg.Members = append([]wire.ParticipantID(nil), e.members...)
	return cfg
}

// Stats returns the shared counter view (see the mapping notes on the
// fields it fills). PaxosStats carries the engine-specific counters.
func (e *Engine) Stats() core.Stats {
	st := e.stats
	st.MembershipChanges = 1 + e.px.ViewInstalls
	return st
}

// PaxosStats returns the Ring Paxos-specific counters.
func (e *Engine) PaxosStats() Stats {
	px := e.px
	px.View = e.view
	px.Decided = e.decided
	px.Delivered = e.delivered
	return px
}

// PendingLen reports this proposer's submitted-but-unassigned backlog.
func (e *Engine) PendingLen() int { return len(e.myPendOrd) }

// TokenHasPriority is constant: the Phase 2b ack should always be
// processed promptly (a held ack delays every decision a full extra
// circulation), and unlike the token ring there is no post-token sending
// phase whose receipt should outrank it.
func (e *Engine) TokenHasPriority() bool { return true }

// SteadyTokenRotation reports false: an idle Ring Paxos ring pauses its
// circulation entirely, so a frozen token counter is not evidence of a
// wedge (core.RotationObserver).
func (e *Engine) SteadyTokenRotation() bool { return false }

// Start (dynamic membership discovery) is not supported: Ring Paxos
// needs the static acceptor set to compute majorities. The root package
// rejects the combination before the engine is built; this returns no
// actions so a misuse is inert rather than undefined.
func (e *Engine) Start() []core.Action { return nil }

// StartWithRing installs the static member set and delivers the initial
// configuration. The ring starts quiescent: no token circulates until the
// first value needs ordering.
func (e *Engine) StartWithRing(members []wire.ParticipantID) ([]core.Action, error) {
	if len(members) == 0 || len(members) > wire.MaxMembers {
		return nil, ErrNeedsMembers
	}
	ms := append([]wire.ParticipantID(nil), members...)
	sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
	for i := 1; i < len(ms); i++ {
		if ms[i] == ms[i-1] {
			return nil, fmt.Errorf("ringpaxos: duplicate member %s", ms[i])
		}
	}
	idx := -1
	for i, m := range ms {
		if m == e.cfg.MyID {
			idx = i
		}
	}
	if idx < 0 {
		return nil, ErrNotMember
	}
	e.members = ms
	e.n = len(ms)
	e.major = e.n/2 + 1
	e.ringID = wire.RingID{Rep: ms[0], Seq: ringSeq}
	e.started = true
	e.installActiveRing(0, ms)
	e.paused = true
	e.provenRing = e.n == 1
	cfg := core.Configuration{ID: e.ringID, Members: append([]wire.ParticipantID(nil), ms...)}
	return []core.Action{core.DeliverConfig{Config: cfg}}, nil
}

// installActiveRing records a view's coordinator and active ring.
func (e *Engine) installActiveRing(view uint64, active []wire.ParticipantID) {
	prev := e.coordinator
	e.view = view
	if view > e.promised {
		e.promised = view
	}
	e.coordinator = e.coordinatorOf(view)
	e.active = append(e.active[:0], active...)
	sort.Slice(e.active, func(i, j int) bool { return e.active[i] < e.active[j] })
	e.myActiveIdx = -1
	for i, m := range e.active {
		if m == e.cfg.MyID {
			e.myActiveIdx = i
		}
	}
	if prev != 0 && prev != e.coordinator {
		e.px.CoordinatorChanges++
	}
	if e.coordinator != e.cfg.MyID && e.poolSize > 0 {
		// The holdback pool is coordinator state. A demoted node (most
		// often a restarted impostor that briefly believed it coordinated
		// view 0) would otherwise carry it forever — nothing but a
		// coordinator drains it, so it would keep outstanding() true and
		// the failure detector armed on an idle ring. Dropping it is
		// safe: proposers retransmit unordered values, and the real
		// coordinator pools them on receipt.
		e.pool = make(map[wire.ParticipantID]map[uint64]*proposal)
		e.poolSize = 0
	}
}

// coordinatorOf returns the coordinator of a view: round-robin over the
// full member set, so every member eventually leads if its predecessors
// keep failing.
func (e *Engine) coordinatorOf(view uint64) wire.ParticipantID {
	return e.members[int(view%uint64(uint(e.n)))]
}

// successor returns the next active-ring member after this one.
func (e *Engine) successor() wire.ParticipantID {
	return e.active[(e.myActiveIdx+1)%len(e.active)]
}

// isCoordinator reports whether this participant leads the current view.
func (e *Engine) isCoordinator() bool { return e.coordinator == e.cfg.MyID }

// Submit queues one value for total ordering. The value is multicast on
// the next Flush (the runtime calls Flush after every accepted Submit,
// per the core.Flusher contract).
func (e *Engine) Submit(payload []byte, service wire.Service) error {
	if !service.Valid() {
		return fmt.Errorf("ringpaxos: invalid service %d", service)
	}
	if len(payload) > wire.MaxPayload {
		return fmt.Errorf("ringpaxos: payload %d exceeds %d", len(payload), wire.MaxPayload)
	}
	if len(e.myPendOrd) >= e.maxPending {
		return core.ErrBacklogFull
	}
	e.mySeq++
	k := valKey{pid: e.cfg.MyID, seq: e.mySeq}
	p := &proposal{service: service, payload: payload}
	e.values[k] = p
	e.myPending[k] = true
	e.myPendOrd = append(e.myPendOrd, k)
	e.myUnsent = append(e.myUnsent, k)
	e.stats.MsgsSent++
	return nil
}

// Flush emits the protocol output of recent submissions: the value
// multicasts, and — on the coordinator — the assignment work they enable.
func (e *Engine) Flush() []core.Action {
	if !e.started || len(e.myUnsent) == 0 {
		return nil
	}
	acts := e.scratch[:0]
	for _, k := range e.myUnsent {
		acts = append(acts, core.SendData{Msg: e.proposalFrame(k, false)})
	}
	e.myUnsent = e.myUnsent[:0]
	if e.isCoordinator() && !e.inViewChange {
		for _, k := range e.myPendOrd {
			if e.myPending[k] {
				e.offerToPool(k)
			}
		}
		acts = e.maybeResume(acts)
		acts = e.armLiveness(acts)
	} else {
		// Liveness: a proposer with outstanding work must detect a dead
		// coordinator; the pacing timer retransmits unassigned proposals.
		acts = e.armLiveness(acts)
		acts = e.armPacing(acts)
	}
	e.scratch = acts[:0]
	return acts
}

// proposalFrame builds the data frame carrying one value.
func (e *Engine) proposalFrame(k valKey, retrans bool) *wire.DataMessage {
	p := e.values[k]
	return &wire.DataMessage{
		RingID:  e.ringID,
		Seq:     wire.Seq(k.seq),
		PID:     k.pid,
		Retrans: retrans,
		Service: p.service,
		Payload: p.payload,
	}
}

// offerToPool hands a value to the coordinator's assignment pool
// (proposer-order holdback). Values already assigned or delivered are
// ignored.
func (e *Engine) offerToPool(k valKey) {
	if next, ok := e.nextAssign[k.pid]; ok && k.seq < next {
		return
	}
	sp := e.pool[k.pid]
	if sp == nil {
		sp = make(map[uint64]*proposal)
		e.pool[k.pid] = sp
	}
	if _, dup := sp[k.seq]; dup {
		return
	}
	if e.poolSize >= e.maxPending {
		return // proposer retransmits; the pool drains as instances decide
	}
	sp[k.seq] = e.values[k]
	e.poolSize++
}

// advanceDecided raises the decided watermark and delivers what it can.
func (e *Engine) advanceDecided(d uint64, acts []core.Action) []core.Action {
	if d > e.decided {
		if e.isCoordinator() {
			for i := e.decided + 1; i <= d; i++ {
				if c, ok := e.assignCirc[i]; ok {
					e.px.DecideRoundsSum += e.circ - c
					e.px.DecideRoundsCount++
					delete(e.assignCirc, i)
				}
			}
		}
		e.decided = d
		retain := uint64(e.cfg.Flow.MaxSeqGap)
		if e.delivered == 0 && e.px.FastForwards == 0 && d > retain {
			// Fresh incarnation joining mid-stream, too far behind for
			// catch-up (peers have garbage-collected the old values):
			// start delivering from inside the retention window. The
			// no-double-decide invariant (see assignBatch) makes the
			// skipped prefix irrecoverable but harmless — no skipped value
			// can reappear later in the order.
			e.delivered = d - retain/2
			e.gcFloor = e.delivered
			e.px.FastForwards++
		}
	}
	return e.advanceDelivery(acts)
}

// advanceDelivery delivers decided instances in order, as far as local
// assignments and values allow. The per-proposer dedup skip is identical
// at every learner (same instance walk, same rule), so skipping preserves
// agreement.
func (e *Engine) advanceDelivery(acts []core.Action) []core.Action {
	for e.delivered < e.decided {
		i := e.delivered + 1
		ent, ok := e.log[i]
		if !ok {
			break
		}
		if ent.key.pid == 0 {
			// Noop gap filler from a view change: consumes the instance,
			// delivers nothing.
			e.delivered = i
			continue
		}
		p, ok := e.values[ent.key]
		if !ok {
			break
		}
		e.delivered = i
		if ent.key.seq <= e.lastDelivered[ent.key.pid] {
			e.px.DupSuppressed++
			continue
		}
		e.lastDelivered[ent.key.pid] = ent.key.seq
		if ent.key.pid == e.cfg.MyID {
			e.clearMyPending(ent.key)
		}
		e.stats.Delivered++
		if p.service.RequiresSafe() {
			e.stats.SafeDelivered++
		}
		acts = append(acts, core.Deliver{Msg: &wire.DataMessage{
			RingID:  e.ringID,
			Seq:     wire.Seq(i),
			PID:     ent.key.pid,
			Service: p.service,
			Payload: p.payload,
		}})
	}
	e.gc()
	return acts
}

// clearMyPending drops one own value from the unassigned tracking.
func (e *Engine) clearMyPending(k valKey) {
	if !e.myPending[k] {
		return
	}
	delete(e.myPending, k)
	for i, q := range e.myPendOrd {
		if q == k {
			e.myPendOrd = append(e.myPendOrd[:i], e.myPendOrd[i+1:]...)
			break
		}
	}
}

// markAssigned notes that a proposer's value was assigned (observed in an
// assignment batch): the proposer stops retransmitting it.
func (e *Engine) markAssigned(k valKey) {
	if k.pid == e.cfg.MyID {
		e.clearMyPending(k)
	}
}

// gc discards values every learner this node can still help has
// delivered. Retention below the delivered watermark is one undecided
// window: laggards further behind recover via other members or, beyond
// everyone's retention, fast-forward (see advanceDecided). The cursor
// makes each call incremental rather than a full log scan.
func (e *Engine) gc() {
	retain := uint64(e.cfg.Flow.MaxSeqGap)
	if e.delivered <= retain {
		return
	}
	floor := e.delivered - retain
	for i := e.gcFloor + 1; i <= floor; i++ {
		if ent, ok := e.log[i]; ok {
			if ent.key.pid != 0 {
				delete(e.values, ent.key)
			}
			delete(e.log, i)
			e.stats.Discarded++
		}
	}
	e.gcFloor = floor
}

// outstanding reports whether protocol work is pending from this node's
// perspective — the condition under which liveness timers stay armed and
// the coordinator keeps the token circulating.
func (e *Engine) outstanding() bool {
	return e.high > e.decided || e.delivered < e.decided ||
		len(e.myPendOrd) > 0 || e.poolSize > 0
}

// armLiveness arms the coordinator-failure detector iff work is pending.
//
// The runtime's SetTimer resets the countdown, so re-issuing it on every
// call would let any periodic activity — the 20ms pacing tick, a stream
// of incoming proposals — push the deadline out forever and starve
// failure detection exactly when the coordinator is dead. The deadline is
// therefore extended only when the engine observed ordering progress
// (decides or token arrivals) since the last arm: a live coordinator
// keeps resetting it for free, a dead one lets it expire.
func (e *Engine) armLiveness(acts []core.Action) []core.Action {
	if e.inViewChange {
		return acts
	}
	if e.outstanding() {
		mark := e.decided + e.px.Phase2Tokens
		if e.liveArmed && mark == e.liveMark {
			return acts // no progress since arming: let the detector run out
		}
		e.liveArmed = true
		e.liveMark = mark
		return append(acts, core.SetTimer{Kind: core.TimerTokenLoss, After: e.cfg.TokenLossTimeout})
	}
	if e.liveArmed {
		e.liveArmed = false
		return append(acts, core.CancelTimer{Kind: core.TimerTokenLoss})
	}
	return acts
}

// armPacing arms the JoinPeriod pacing timer when this node has proposals
// to retransmit or a delivery gap to nack about.
func (e *Engine) armPacing(acts []core.Action) []core.Action {
	want := len(e.myPendOrd) > 0 || e.deliveryGap()
	if want && !e.nackArmed {
		e.nackArmed = true
		return append(acts, core.SetTimer{Kind: core.TimerJoin, After: e.cfg.JoinPeriod})
	}
	return acts
}

// deliveryGap reports whether this node knows of decided instances it has
// not been able to deliver (missing assignment or value).
func (e *Engine) deliveryGap() bool { return e.delivered < e.decided }

// armExpansion schedules the deferred ring-expansion view change when an
// off-ring member has shown signs of life.
func (e *Engine) armExpansion(acts []core.Action) []core.Action {
	if e.expansionWanted && !e.expansionArmed && e.isCoordinator() && !e.inViewChange {
		e.expansionArmed = true
		return append(acts, core.SetTimer{Kind: core.TimerCommit, After: e.cfg.CommitTimeout})
	}
	return acts
}

// HandleJoin is inert: Ring Paxos never emits join frames (its membership
// is static; view changes use data-frame reports). A stray join is noise.
func (e *Engine) HandleJoin(j *wire.JoinMessage) []core.Action { return nil }

// HandleCommit is inert for the same reason as HandleJoin.
func (e *Engine) HandleCommit(c *wire.CommitToken) []core.Action { return nil }

// HandleTimer dispatches the engine's five timer kinds.
func (e *Engine) HandleTimer(kind core.TimerKind) []core.Action {
	if !e.started {
		return nil
	}
	switch kind {
	case core.TimerTokenLoss:
		e.liveArmed = false
		if e.inViewChange || !e.outstanding() {
			return nil
		}
		// The coordinator is unresponsive (or we are the coordinator and
		// the ring is broken): start Phase 1 for the next view.
		return e.initiateViewChange(e.promised + 1)
	case core.TimerTokenRetrans:
		e.retransArmed = false
		if e.inViewChange || e.sentToken == nil || e.paused {
			return nil
		}
		if e.sentRetrans >= maxTokenRetrans {
			// Give up; if work is outstanding the liveness timeout takes
			// over (view change), otherwise the loss is harmless.
			e.sentToken = nil
			return nil
		}
		e.sentRetrans++
		e.stats.TokenRetransmits++
		tok := e.sentToken.Clone()
		e.retransArmed = true
		return []core.Action{
			core.SendToken{To: e.sentTokenTo, Token: tok},
			core.SetTimer{Kind: core.TimerTokenRetrans, After: e.cfg.TokenRetransPeriod},
		}
	case core.TimerJoin:
		e.nackArmed = false
		return e.pacingFire()
	case core.TimerConsensus:
		if !e.inViewChange {
			return nil
		}
		// The view we were forming did not install (its coordinator-elect
		// may be the next casualty): try the following view.
		return e.initiateViewChange(e.promised + 1)
	case core.TimerCommit:
		e.expansionArmed = false
		if e.expansionWanted && !e.inViewChange && e.isCoordinator() {
			e.expansionWanted = false
			return e.initiateViewChange(e.promised + 1)
		}
		e.expansionWanted = false
		return nil
	}
	return nil
}

// pacingFire is the JoinPeriod tick outside view changes: retransmit
// unassigned own proposals and nack persistent delivery gaps.
func (e *Engine) pacingFire() []core.Action {
	if e.inViewChange {
		// View-change report pacing is handled in viewchange.go.
		return e.viewChangePacing()
	}
	var acts []core.Action
	const maxRetrans = 16
	for i, k := range e.myPendOrd {
		if i >= maxRetrans {
			break
		}
		if _, ok := e.values[k]; !ok {
			continue
		}
		e.stats.MsgsRetransmitted++
		acts = append(acts, core.SendData{Msg: e.proposalFrame(k, true)})
	}
	if e.deliveryGap() {
		acts = append(acts, core.SendData{Msg: e.nackFrame(false)})
	}
	acts = e.armPacing(acts)
	acts = e.armLiveness(acts)
	return acts
}
