package ringpaxos

import (
	"fmt"
	"testing"

	"accelring/internal/core"
	"accelring/internal/wire"
)

// The in-package harness wires several engines together directly through
// their action outputs — no goroutines, no clocks, no sockets — so every
// test is a deterministic single-threaded execution. Messages travel
// through the real wire codec (encode + decode per receiver) to keep the
// aliasing rules honest; timers are fired explicitly by tests.

// rec is one delivered message as observed by the application.
type rec struct {
	pid     wire.ParticipantID
	seq     uint64
	payload string
}

func (r rec) String() string { return fmt.Sprintf("%d/%d:%s", uint32(r.pid), r.seq, r.payload) }

// event is one in-flight frame.
type event struct {
	from, to wire.ParticipantID
	data     []byte // encoded data frame, nil for tokens
	tok      []byte // encoded token, nil for data
}

type cluster struct {
	t         *testing.T
	ids       []wire.ParticipantID
	engines   map[wire.ParticipantID]*Engine
	queue     []event
	delivered map[wire.ParticipantID][]rec
	configs   map[wire.ParticipantID]int
	timers    map[wire.ParticipantID]map[core.TimerKind]bool
	crashed   map[wire.ParticipantID]bool
	// starts counts engine creations per id; restarts get a fresh
	// incarnation, mimicking the root runtime's wall-clock stamp.
	starts map[wire.ParticipantID]uint32
	// dropData/dropToken, when set, discard matching frames in flight.
	dropData  func(from, to wire.ParticipantID) bool
	dropToken func(from, to wire.ParticipantID) bool
	// dupAll re-enqueues every frame a second time when set.
	dupAll bool
	steps  int
}

func newCluster(t *testing.T, n int) *cluster {
	t.Helper()
	c := &cluster{
		t:         t,
		engines:   make(map[wire.ParticipantID]*Engine),
		delivered: make(map[wire.ParticipantID][]rec),
		configs:   make(map[wire.ParticipantID]int),
		timers:    make(map[wire.ParticipantID]map[core.TimerKind]bool),
		crashed:   make(map[wire.ParticipantID]bool),
		starts:    make(map[wire.ParticipantID]uint32),
	}
	for i := 1; i <= n; i++ {
		c.ids = append(c.ids, wire.ParticipantID(i*100))
	}
	for _, id := range c.ids {
		c.addEngine(id)
	}
	return c
}

// addEngine creates (or re-creates, for restart tests) the engine for id
// and starts it with the cluster's member list.
func (c *cluster) addEngine(id wire.ParticipantID) {
	c.t.Helper()
	eng, err := New(core.Config{MyID: id, Incarnation: c.starts[id]})
	if err != nil {
		c.t.Fatalf("New(%v): %v", id, err)
	}
	c.starts[id]++
	acts, err := eng.StartWithRing(c.ids)
	if err != nil {
		c.t.Fatalf("StartWithRing(%v): %v", id, err)
	}
	c.engines[id] = eng
	c.timers[id] = make(map[core.TimerKind]bool)
	c.crashed[id] = false
	c.exec(id, acts)
}

// exec carries out engine actions in order.
func (c *cluster) exec(from wire.ParticipantID, acts []core.Action) {
	c.t.Helper()
	for _, a := range acts {
		switch a := a.(type) {
		case core.SendData:
			enc, err := a.Msg.Encode()
			if err != nil {
				c.t.Fatalf("encode data from %v: %v", from, err)
			}
			for _, to := range c.ids {
				if to == from {
					continue
				}
				c.queue = append(c.queue, event{from: from, to: to, data: enc})
				if c.dupAll {
					c.queue = append(c.queue, event{from: from, to: to, data: enc})
				}
			}
		case core.SendToken:
			enc, err := a.Token.Encode()
			if err != nil {
				c.t.Fatalf("encode token from %v: %v", from, err)
			}
			c.queue = append(c.queue, event{from: from, to: a.To, tok: enc})
			if c.dupAll {
				c.queue = append(c.queue, event{from: from, to: a.To, tok: enc})
			}
		case core.Deliver:
			c.delivered[from] = append(c.delivered[from], rec{
				pid:     a.Msg.PID,
				seq:     uint64(a.Msg.Seq),
				payload: string(a.Msg.Payload),
			})
		case core.DeliverConfig:
			c.configs[from]++
		case core.SetTimer:
			c.timers[from][a.Kind] = true
		case core.CancelTimer:
			delete(c.timers[from], a.Kind)
		default:
			c.t.Fatalf("unexpected action %T from %v", a, from)
		}
	}
}

// step delivers the head-of-queue frame. Returns false when idle.
func (c *cluster) step() bool {
	c.t.Helper()
	if len(c.queue) == 0 {
		return false
	}
	ev := c.queue[0]
	c.queue = c.queue[1:]
	c.steps++
	if c.crashed[ev.to] || c.crashed[ev.from] {
		return true
	}
	eng := c.engines[ev.to]
	if ev.data != nil {
		if c.dropData != nil && c.dropData(ev.from, ev.to) {
			return true
		}
		m, err := wire.DecodeData(ev.data)
		if err != nil {
			c.t.Fatalf("decode data: %v", err)
		}
		c.exec(ev.to, eng.HandleData(m))
	} else {
		if c.dropToken != nil && c.dropToken(ev.from, ev.to) {
			return true
		}
		tok, err := wire.DecodeToken(ev.tok)
		if err != nil {
			c.t.Fatalf("decode token: %v", err)
		}
		c.exec(ev.to, eng.HandleToken(tok))
	}
	return true
}

// run drains the queue, failing the test on livelock.
func (c *cluster) run() {
	c.t.Helper()
	const maxSteps = 200000
	for i := 0; c.step(); i++ {
		if i > maxSteps {
			c.t.Fatalf("livelock: %d steps without quiescing", maxSteps)
		}
	}
}

// fire triggers one armed timer, if armed.
func (c *cluster) fire(id wire.ParticipantID, kind core.TimerKind) {
	c.t.Helper()
	if c.crashed[id] || !c.timers[id][kind] {
		return
	}
	delete(c.timers[id], kind)
	c.exec(id, c.engines[id].HandleTimer(kind))
}

// submit feeds one value in at id and flushes its protocol output.
func (c *cluster) submit(id wire.ParticipantID, payload string) {
	c.t.Helper()
	eng := c.engines[id]
	if err := eng.Submit([]byte(payload), wire.ServiceAgreed); err != nil {
		c.t.Fatalf("submit at %v: %v", id, err)
	}
	c.exec(id, eng.Flush())
}

// pump drives the cluster to convergence: drain the queue, then fire
// pacing timers (join/retransmit/commit) round-robin; if a full round
// makes no progress, escalate to the failure detectors (token loss, then
// consensus retry). Fails the test if maxRounds rounds do not converge.
func (c *cluster) pump(maxRounds int) {
	c.t.Helper()
	lastProgress := c.progress()
	quiet := 0
	for r := 0; r < maxRounds; r++ {
		c.run()
		for _, id := range c.ids {
			c.fire(id, core.TimerJoin)
			c.fire(id, core.TimerTokenRetrans)
			c.fire(id, core.TimerCommit)
		}
		c.run()
		if p := c.progress(); p != lastProgress {
			lastProgress = p
			quiet = 0
			continue
		}
		quiet++
		if quiet >= 2 {
			if c.allIdle() {
				return
			}
			// No pacing progress for two rounds: escalate.
			for _, id := range c.ids {
				c.fire(id, core.TimerTokenLoss)
			}
			c.run()
			for _, id := range c.ids {
				c.fire(id, core.TimerConsensus)
			}
			c.run()
			if p := c.progress(); p != lastProgress {
				lastProgress = p
				quiet = 0
			}
		}
	}
	if !c.allIdle() {
		c.t.Fatalf("pump: no convergence after %d rounds", maxRounds)
	}
}

// progress is a monotone fingerprint of cluster state used to detect
// forward motion.
func (c *cluster) progress() string {
	s := ""
	for _, id := range c.ids {
		if c.crashed[id] {
			s += "x;"
			continue
		}
		e := c.engines[id]
		s += fmt.Sprintf("%d,%d,%d,%d;", e.decided, e.delivered, e.view, len(c.delivered[id]))
	}
	return s
}

// allIdle reports whether every live node has no undelivered decisions
// and no pending submissions.
func (c *cluster) allIdle() bool {
	for _, id := range c.ids {
		if c.crashed[id] {
			continue
		}
		e := c.engines[id]
		if e.delivered < e.decided || len(e.myPendOrd) > 0 || e.poolSize > 0 || e.high > e.decided {
			return false
		}
	}
	return true
}

// crash marks a node dead: frames to and from it vanish.
func (c *cluster) crash(id wire.ParticipantID) { c.crashed[id] = true }

// checkAgreement verifies pairwise relative-order agreement and
// per-sender FIFO across all live nodes' delivery logs.
func (c *cluster) checkAgreement() {
	c.t.Helper()
	for _, id := range c.ids {
		if c.crashed[id] {
			continue
		}
		seen := make(map[wire.ParticipantID]uint64)
		for _, r := range c.delivered[id] {
			if r.seq <= seen[r.pid] {
				c.t.Fatalf("node %v: FIFO violation for sender %v: %d after %d", id, r.pid, r.seq, seen[r.pid])
			}
			seen[r.pid] = r.seq
		}
	}
	for i := 0; i < len(c.ids); i++ {
		for j := i + 1; j < len(c.ids); j++ {
			a, b := c.ids[i], c.ids[j]
			if c.crashed[a] || c.crashed[b] {
				continue
			}
			c.checkPairOrder(a, b)
		}
	}
}

// checkPairOrder verifies that the messages delivered by both a and b
// appear in the same relative order at each.
func (c *cluster) checkPairOrder(a, b wire.ParticipantID) {
	c.t.Helper()
	type key struct {
		pid wire.ParticipantID
		seq uint64
	}
	posA := make(map[key]int)
	for i, r := range c.delivered[a] {
		posA[key{r.pid, r.seq}] = i
	}
	lastA := -1
	for _, r := range c.delivered[b] {
		pa, ok := posA[key{r.pid, r.seq}]
		if !ok {
			continue
		}
		if pa <= lastA {
			c.t.Fatalf("order divergence between %v and %v at %v", a, b, r)
		}
		lastA = pa
	}
}

// deliveredAt returns node id's delivery log rendered as strings.
func (c *cluster) deliveredAt(id wire.ParticipantID) []string {
	out := make([]string, len(c.delivered[id]))
	for i, r := range c.delivered[id] {
		out[i] = r.String()
	}
	return out
}
