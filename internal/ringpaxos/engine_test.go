package ringpaxos

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"accelring/internal/core"
	"accelring/internal/wire"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(core.Config{}); err == nil {
		t.Fatal("New with zero MyID should fail")
	}
	eng, err := New(core.Config{MyID: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.StartWithRing(nil); err == nil {
		t.Fatal("StartWithRing with no members should fail")
	}
	if _, err := eng.StartWithRing([]wire.ParticipantID{2, 3}); err == nil {
		t.Fatal("StartWithRing without self should fail")
	}
	if _, err := eng.StartWithRing([]wire.ParticipantID{1, 2, 2}); err == nil {
		t.Fatal("StartWithRing with duplicate member should fail")
	}
	if acts := eng.Start(); acts != nil {
		t.Fatal("dynamic Start must be inert for ring paxos")
	}
}

func TestSoloOrdering(t *testing.T) {
	c := newCluster(t, 1)
	id := c.ids[0]
	for i := 0; i < 10; i++ {
		c.submit(id, fmt.Sprintf("v%d", i))
	}
	c.run()
	if got := len(c.delivered[id]); got != 10 {
		t.Fatalf("delivered %d of 10", got)
	}
	for i, r := range c.delivered[id] {
		if want := fmt.Sprintf("v%d", i); r.payload != want {
			t.Fatalf("delivery %d = %q, want %q", i, r.payload, want)
		}
	}
	if st := c.engines[id].PaxosStats(); st.QuorumDecides != 10 {
		t.Fatalf("QuorumDecides = %d, want 10", st.QuorumDecides)
	}
}

func TestThreeNodeOrdering(t *testing.T) {
	c := newCluster(t, 3)
	for i := 0; i < 10; i++ {
		for _, id := range c.ids {
			c.submit(id, fmt.Sprintf("p%d-v%d", uint32(id), i))
		}
	}
	c.pump(50)
	for _, id := range c.ids {
		if got := len(c.delivered[id]); got != 30 {
			t.Fatalf("node %v delivered %d of 30: %v", id, got, c.deliveredAt(id))
		}
	}
	c.checkAgreement()
	// All logs identical, not merely order-compatible, since nobody
	// crashed.
	for _, id := range c.ids[1:] {
		if !reflect.DeepEqual(c.delivered[c.ids[0]], c.delivered[id]) {
			t.Fatalf("logs differ:\n%v\n%v", c.deliveredAt(c.ids[0]), c.deliveredAt(id))
		}
	}
	// The ring must have quiesced: no node believes work is pending.
	for _, id := range c.ids {
		if !c.engines[id].SteadyTokenRotation() {
			// sanity: the rotation-observer answer is fixed
			continue
		}
		t.Fatal("ring paxos must report event-driven rotation")
	}
}

func TestFiveNodeInterleavedBursts(t *testing.T) {
	c := newCluster(t, 5)
	for burst := 0; burst < 4; burst++ {
		for k, id := range c.ids {
			if (burst+k)%2 == 0 {
				c.submit(id, fmt.Sprintf("b%d-p%d", burst, uint32(id)))
			}
		}
		c.pump(50)
	}
	total := len(c.delivered[c.ids[0]])
	if total == 0 {
		t.Fatal("nothing delivered")
	}
	for _, id := range c.ids[1:] {
		if len(c.delivered[id]) != total {
			t.Fatalf("node %v delivered %d, node %v delivered %d",
				c.ids[0], total, id, len(c.delivered[id]))
		}
	}
	c.checkAgreement()
}

func TestCoordinatorCrashFailover(t *testing.T) {
	c := newCluster(t, 3)
	a, b, victim := c.ids[1], c.ids[2], c.ids[0] // ids[0] coordinates view 0
	c.submit(a, "before-1")
	c.submit(b, "before-2")
	c.pump(50)

	c.crash(victim)
	c.submit(a, "after-1")
	c.submit(b, "after-2")
	// The survivors' liveness timers notice the dead coordinator; pump
	// escalates to TimerTokenLoss and drives the view change.
	c.pump(80)

	for _, id := range []wire.ParticipantID{a, b} {
		got := c.deliveredAt(id)
		if len(got) != 4 {
			t.Fatalf("node %v delivered %v, want 4 messages", id, got)
		}
	}
	c.checkAgreement()
	if !reflect.DeepEqual(c.delivered[a], c.delivered[b]) {
		t.Fatalf("survivor logs differ:\n%v\n%v", c.deliveredAt(a), c.deliveredAt(b))
	}
	st := c.engines[a].PaxosStats()
	if st.ViewInstalls == 0 {
		t.Fatal("expected at least one view install after coordinator crash")
	}
	if st.View == 0 {
		t.Fatal("view should have advanced past 0")
	}
}

func TestCrashMidStreamNoLossForSurvivors(t *testing.T) {
	c := newCluster(t, 5)
	victim := c.ids[0]
	// Submissions in flight when the coordinator dies.
	for i := 0; i < 5; i++ {
		for _, id := range c.ids[1:] {
			c.submit(id, fmt.Sprintf("s%d-p%d", i, uint32(id)))
		}
	}
	// Let a little of the protocol run, then kill the coordinator with
	// the pipeline full.
	for i := 0; i < 25; i++ {
		c.step()
	}
	c.crash(victim)
	c.pump(120)

	want := 20 // survivors' submissions must all survive
	for _, id := range c.ids[1:] {
		if got := len(c.delivered[id]); got != want {
			t.Fatalf("node %v delivered %d of %d: %v", id, got, want, c.deliveredAt(id))
		}
	}
	c.checkAgreement()
}

func TestLaggingLearnerCatchUp(t *testing.T) {
	c := newCluster(t, 3)
	laggard := c.ids[2]
	c.dropData = func(from, to wire.ParticipantID) bool { return to == laggard }
	c.dropToken = func(from, to wire.ParticipantID) bool { return to == laggard }
	for i := 0; i < 8; i++ {
		c.submit(c.ids[0], fmt.Sprintf("v%d", i))
	}
	c.pump(50)
	if got := len(c.delivered[laggard]); got != 0 {
		t.Fatalf("laggard delivered %d while partitioned", got)
	}

	// Heal; the next submission resumes the ring, whose assignment frame
	// carries the decided watermark — the laggard nacks and catches up.
	c.dropData, c.dropToken = nil, nil
	c.submit(c.ids[0], "v8")
	c.pump(80)

	for _, id := range c.ids {
		if got := len(c.delivered[id]); got != 9 {
			t.Fatalf("node %v delivered %d of 9: %v", id, got, c.deliveredAt(id))
		}
	}
	c.checkAgreement()
	if st := c.engines[laggard].PaxosStats(); st.Delivered != 9 {
		t.Fatalf("laggard watermark %d, want 9", st.Delivered)
	}
}

func TestDuplicateFramesSuppressed(t *testing.T) {
	c := newCluster(t, 3)
	c.dupAll = true
	for i := 0; i < 6; i++ {
		c.submit(c.ids[i%3], fmt.Sprintf("v%d", i))
	}
	c.pump(50)
	for _, id := range c.ids {
		if got := len(c.delivered[id]); got != 6 {
			t.Fatalf("node %v delivered %d of 6", id, got)
		}
	}
	c.checkAgreement()
	var dupTok, dupMsg uint64
	for _, id := range c.ids {
		st := c.engines[id].Stats()
		dupTok += st.TokensDuplicate
		dupMsg += st.MsgsDuplicate
	}
	if dupTok == 0 {
		t.Fatal("expected duplicate tokens to be counted")
	}
	if dupMsg == 0 {
		t.Fatal("expected duplicate values to be counted")
	}
}

func TestTokenLossRepairedByRetransmission(t *testing.T) {
	c := newCluster(t, 3)
	// Drop the first few tokens between ids[1] and ids[2]; the sender's
	// retransmit timer (fired by pump) must repair the circulation
	// without a view change.
	losses := 2
	c.dropToken = func(from, to wire.ParticipantID) bool {
		if from == c.ids[1] && to == c.ids[2] && losses > 0 {
			losses--
			return true
		}
		return false
	}
	for i := 0; i < 5; i++ {
		c.submit(c.ids[0], fmt.Sprintf("v%d", i))
	}
	c.pump(60)
	for _, id := range c.ids {
		if got := len(c.delivered[id]); got != 5 {
			t.Fatalf("node %v delivered %d of 5", id, got)
		}
	}
	c.checkAgreement()
}

func TestRestartRejoinsAsFreshIncarnation(t *testing.T) {
	c := newCluster(t, 3)
	for i := 0; i < 6; i++ {
		c.submit(c.ids[0], fmt.Sprintf("a%d", i))
	}
	c.pump(50)

	// Restart ids[2]: new engine, same identity, empty state.
	restarted := c.ids[2]
	c.addEngine(restarted)
	c.delivered[restarted] = nil

	for i := 0; i < 6; i++ {
		c.submit(c.ids[0], fmt.Sprintf("b%d", i))
	}
	c.pump(100)

	// The fresh incarnation must deliver the post-restart traffic and
	// stay order-consistent with the others on whatever it delivers.
	got := c.deliveredAt(restarted)
	if len(got) < 6 {
		t.Fatalf("restarted node delivered %v, want at least the 6 new messages", got)
	}
	c.checkAgreement()
}

// TestRestartedProposerValuesDeliverEverywhere is the regression test for
// the incarnation key collision: a restarted proposer's submission
// counter restarts at zero, so without the incarnation tag its new values
// reuse the keys of its previous incarnation's — the survivors' delivery
// dedup then suppresses the new values as duplicates, and retransmitted
// old values can be re-decided late. The chaos soak (root package) caught
// this as a FIFO violation after a crash/restart under loss.
func TestRestartedProposerValuesDeliverEverywhere(t *testing.T) {
	c := newCluster(t, 3)
	prop := c.ids[2]
	for i := 0; i < 6; i++ {
		c.submit(prop, fmt.Sprintf("a%d", i))
	}
	c.pump(50)

	// Restart the proposer: fresh engine, same identity, higher
	// incarnation (addEngine stamps it like the root runtime would).
	c.addEngine(prop)
	c.delivered[prop] = nil
	for i := 0; i < 4; i++ {
		c.submit(prop, fmt.Sprintf("b%d", i))
	}
	c.pump(100)

	// Every live node must deliver all four post-restart values, after
	// its a-values, and nobody may see any a-value twice.
	for _, id := range c.ids {
		var bs []string
		seen := make(map[string]int)
		for _, r := range c.delivered[id] {
			seen[r.payload]++
			if strings.HasPrefix(r.payload, "b") {
				bs = append(bs, r.payload)
			}
		}
		if want := []string{"b0", "b1", "b2", "b3"}; !reflect.DeepEqual(bs, want) {
			t.Fatalf("node %v delivered post-restart values %v, want %v (full log %v)",
				id, bs, want, c.deliveredAt(id))
		}
		for p, n := range seen {
			if n > 1 {
				t.Fatalf("node %v delivered %q %d times", id, p, n)
			}
		}
	}
	c.checkAgreement()
}

// TestRestartedCoordinatorCannotPoisonHistory is the regression test for
// the view-0 impostor bug: StartWithRing boots every engine believing the
// ring is at view 0, so a restarted members[0] thinks it is the current
// coordinator and — without the probe-circulation gate — self-assigns its
// first pooled value at instance 1, an instance the real cluster decided
// long ago. When catch-up then raises its decided watermark it delivers
// its own value ahead of the entire history, diverging from the
// survivors. The chaos soak (root package) caught this as a relative-
// order violation after a coordinator crash/restart.
func TestRestartedCoordinatorCannotPoisonHistory(t *testing.T) {
	c := newCluster(t, 3)
	victim := c.ids[0] // coordinates view 0
	for i := 0; i < 6; i++ {
		c.submit(c.ids[1], fmt.Sprintf("a%d", i))
	}
	c.pump(50)

	// Crash the view-0 coordinator; the survivors reform via Phase 1 and
	// keep ordering, so instance 1 is long settled when it comes back.
	c.crash(victim)
	for i := 0; i < 4; i++ {
		c.submit(c.ids[1], fmt.Sprintf("m%d", i))
	}
	c.pump(80)

	// Restart it and submit immediately, before it can learn the real
	// view — the poisoning window.
	c.addEngine(victim)
	c.delivered[victim] = nil
	c.submit(victim, "r0")
	c.pump(120)

	// r0 must be ordered after the settled history at every node — for
	// the impostor too, whose unproven view-0 self-assignment would have
	// put it first.
	for _, id := range c.ids {
		got := c.deliveredAt(id)
		if len(got) == 0 {
			t.Fatalf("node %v delivered nothing", id)
		}
		n := 0
		for _, r := range c.delivered[id] {
			if r.payload == "r0" {
				n++
			}
		}
		if n != 1 {
			t.Fatalf("node %v delivered r0 %d times: %v", id, n, got)
		}
		if last := c.delivered[id][len(c.delivered[id])-1]; last.payload != "r0" {
			t.Fatalf("node %v: r0 not last: %v", id, got)
		}
	}
	c.checkAgreement()
}

func TestMutationHookFlipsOrderConsistently(t *testing.T) {
	run := func(mutate bool) map[wire.ParticipantID][]rec {
		TestMutateAssignOrder.Store(mutate)
		defer TestMutateAssignOrder.Store(false)
		c := newCluster(t, 3)
		// Two proposers submit concurrently so assignment batches hold ≥ 2
		// values for the mutation to swap.
		for i := 0; i < 6; i++ {
			c.submit(c.ids[1], fmt.Sprintf("x%d", i))
			c.submit(c.ids[2], fmt.Sprintf("y%d", i))
		}
		c.pump(50)
		for _, id := range c.ids {
			if got := len(c.delivered[id]); got != 12 {
				t.Fatalf("node %v delivered %d of 12", id, got)
			}
		}
		c.checkAgreement() // mutated or not, the cluster must agree with itself
		return c.delivered
	}
	honest := run(false)
	mutated := run(true)
	if reflect.DeepEqual(honest[100], mutated[100]) {
		t.Fatal("mutation hook did not change the total order")
	}
}

func TestStateAndRingAccessors(t *testing.T) {
	c := newCluster(t, 3)
	id := c.ids[0]
	eng := c.engines[id]
	if got := eng.State(); got != core.StateOperational {
		t.Fatalf("State = %v, want operational", got)
	}
	ring := eng.Ring()
	if len(ring.Members) != 3 || ring.ID.Rep != c.ids[0] {
		t.Fatalf("Ring = %+v", ring)
	}
	if eng.TokenHasPriority() != true {
		t.Fatal("TokenHasPriority should be constant true")
	}
	if c.configs[id] != 1 {
		t.Fatalf("configs delivered = %d, want exactly 1", c.configs[id])
	}
	st := eng.Stats()
	if st.MembershipChanges != 1 {
		t.Fatalf("MembershipChanges = %d, want 1 (initial)", st.MembershipChanges)
	}
}

func TestBacklogBounded(t *testing.T) {
	eng, err := New(core.Config{MyID: 7, MaxPending: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.StartWithRing([]wire.ParticipantID{7}); err != nil {
		t.Fatal(err)
	}
	// Discard flush output: values stay pending forever (no peers in the
	// harness here, submissions decide instantly in solo mode — so use a
	// two-member ring where nothing can decide).
	eng2, _ := New(core.Config{MyID: 7, MaxPending: 4})
	if _, err := eng2.StartWithRing([]wire.ParticipantID{7, 9}); err != nil {
		t.Fatal(err)
	}
	var got error
	for i := 0; i < 10; i++ {
		if err := eng2.Submit([]byte("x"), wire.ServiceAgreed); err != nil {
			got = err
			break
		}
	}
	if got == nil {
		t.Fatal("expected backlog-full error")
	}
}
