package ringpaxos

import (
	"encoding/binary"

	"accelring/internal/core"
	"accelring/internal/wire"
)

// Ring Paxos control traffic rides in ordinary data frames so the engine
// needs no new wire kinds and every existing transport carries it
// untouched. A control frame is distinguished from a value (proposal)
// frame by the Recovered flag — a flag the Accelerated Ring engine only
// uses during membership recovery and Ring Paxos never needs for its
// original purpose. The frame's Round field carries the relevant view and
// payload[0] is the control subkind:
//
//	subAssign  (1): coordinator → all. Phase 2a assignment batch:
//	               decided watermark, base instance, then packed value
//	               keys for consecutive instances base, base+1, …
//	subReport  (2): member → all. Phase 1b report for view Round:
//	               decided watermark, highest known instance, then
//	               {instance, accepted view, key} triples.
//	subNack    (3): lagging learner → all. Flags (bit 0: sender needs the
//	               view install), the sender's promised view, then the
//	               instances it cannot deliver.
//	subInstall (4): view coordinator → all. View installation: the active
//	               ring member list for view Round.
//	subDecided (5): catch-up answer → all. One decided instance: its key
//	               and (for non-noop slots) the value bytes inline.
//
// Value frames are plain data frames: PID = proposer, Seq = the
// proposer's incarnation-tagged 64-bit submission sequence (see valKey).
// Noop slots (gap filler after a view change) use the reserved key pid 0
// and carry no value.
const (
	subAssign  = 1
	subReport  = 2
	subNack    = 3
	subInstall = 4
	subDecided = 5
)

// reportEntry is one accepted assignment in a Phase 1b report.
type reportEntry struct {
	instance uint64
	view     uint64
	key      valKey
}

// report is one member's parsed Phase 1b response.
type report struct {
	decided uint64
	high    uint64
	entries []reportEntry
}

// controlFrame wraps a control payload in a data frame.
func (e *Engine) controlFrame(view uint64, payload []byte) *wire.DataMessage {
	return &wire.DataMessage{
		RingID:    e.ringID,
		PID:       e.cfg.MyID,
		Round:     wire.Round(view),
		Recovered: true,
		Service:   wire.ServiceAgreed,
		Payload:   payload,
	}
}

func putU64(b []byte, v uint64) { binary.BigEndian.PutUint64(b, v) }
func getU64(b []byte) uint64    { return binary.BigEndian.Uint64(b) }
func putU32(b []byte, v uint32) { binary.BigEndian.PutUint32(b, v) }
func getU32(b []byte) uint32    { return binary.BigEndian.Uint32(b) }

// keyWireSize is the encoded size of one valKey: proposer ID (u32) plus
// the 64-bit incarnation-tagged submission sequence.
const keyWireSize = 12

func putKey(b []byte, k valKey) {
	putU32(b, uint32(k.pid))
	putU64(b[4:], k.seq)
}

func getKey(b []byte) valKey {
	return valKey{pid: wire.ParticipantID(getU32(b)), seq: getU64(b[4:])}
}

// assignFrame encodes a Phase 2a batch: count consecutive instances from
// base, in key order. The decided watermark rides along so off-ring
// learners (who never see the token) still learn decisions.
func (e *Engine) assignFrame(base uint64, keys []valKey) *wire.DataMessage {
	p := make([]byte, 21+keyWireSize*len(keys))
	p[0] = subAssign
	putU64(p[1:], e.decided)
	putU64(p[9:], base)
	putU32(p[17:], uint32(len(keys)))
	for i, k := range keys {
		putKey(p[21+keyWireSize*i:], k)
	}
	return e.controlFrame(e.view, p)
}

// parseAssign decodes a Phase 2a batch.
func parseAssign(p []byte) (decided, base uint64, keys []valKey, ok bool) {
	if len(p) < 21 {
		return 0, 0, nil, false
	}
	n := int(getU32(p[17:]))
	if n < 0 || len(p) != 21+keyWireSize*n {
		return 0, 0, nil, false
	}
	keys = make([]valKey, n)
	for i := range keys {
		keys[i] = getKey(p[21+keyWireSize*i:])
	}
	return getU64(p[1:]), getU64(p[9:]), keys, true
}

// reportFrame encodes this member's Phase 1b report for the given view:
// everything accepted in (decided, decided+MaxSeqGap]. The window
// invariant (high ≤ decided_coordinator + MaxSeqGap, enforced at
// assignment time in every view, and a member's decided at vote time is
// at most MaxSeqGap below any instance it voted for) guarantees every
// instance that may have been decided lies inside some majority
// reporter's window, so the cut-off above decided+MaxSeqGap never drops
// a decided entry — see the safety note on maxReportEntries.
func (e *Engine) reportFrame(view uint64) *wire.DataMessage {
	limit := e.decided + uint64(e.cfg.Flow.MaxSeqGap)
	var ents []reportEntry
	for i := e.decided + 1; i <= limit && i <= e.high; i++ {
		if ent, ok := e.log[i]; ok {
			ents = append(ents, reportEntry{instance: i, view: ent.view, key: ent.key})
		}
	}
	p := make([]byte, 21+(16+keyWireSize)*len(ents))
	p[0] = subReport
	putU64(p[1:], e.decided)
	putU64(p[9:], e.high)
	putU32(p[17:], uint32(len(ents)))
	for i, ent := range ents {
		off := 21 + (16+keyWireSize)*i
		putU64(p[off:], ent.instance)
		putU64(p[off+8:], ent.view)
		putKey(p[off+16:], ent.key)
	}
	return e.controlFrame(view, p)
}

// parseReport decodes a Phase 1b report.
func parseReport(p []byte) (*report, bool) {
	if len(p) < 21 {
		return nil, false
	}
	n := int(getU32(p[17:]))
	if n < 0 || len(p) != 21+(16+keyWireSize)*n {
		return nil, false
	}
	r := &report{decided: getU64(p[1:]), high: getU64(p[9:])}
	r.entries = make([]reportEntry, n)
	for i := range r.entries {
		off := 21 + (16+keyWireSize)*i
		r.entries[i] = reportEntry{
			instance: getU64(p[off:]),
			view:     getU64(p[off+8:]),
			key:      getKey(p[off+16:]),
		}
	}
	return r, true
}

// nackFlagNeedInstall asks the coordinator to re-multicast the current
// view installation (set when the nacker's promised view lags traffic it
// has seen).
const nackFlagNeedInstall = 1

// maxNackInstances caps the instance list of one nack frame.
const maxNackInstances = 256

// nackFrame encodes a catch-up request: the instances in (delivered,
// decided] this node cannot deliver, plus optionally a view-install
// request.
func (e *Engine) nackFrame(needInstall bool) *wire.DataMessage {
	var missing []uint64
	for i := e.delivered + 1; i <= e.decided && len(missing) < maxNackInstances; i++ {
		if !e.canDeliver(i) {
			missing = append(missing, i)
		}
	}
	p := make([]byte, 14+8*len(missing))
	p[0] = subNack
	if needInstall {
		p[1] = nackFlagNeedInstall
	}
	putU64(p[2:], e.promised)
	putU32(p[10:], uint32(len(missing)))
	for i, inst := range missing {
		putU64(p[14+8*i:], inst)
	}
	return e.controlFrame(e.view, p)
}

// parseNack decodes a catch-up request.
func parseNack(p []byte) (needInstall bool, promised uint64, missing []uint64, ok bool) {
	if len(p) < 14 {
		return false, 0, nil, false
	}
	n := int(getU32(p[10:]))
	if n < 0 || n > maxNackInstances || len(p) != 14+8*n {
		return false, 0, nil, false
	}
	missing = make([]uint64, n)
	for i := range missing {
		missing[i] = getU64(p[14+8*i:])
	}
	return p[1]&nackFlagNeedInstall != 0, getU64(p[2:]), missing, true
}

// canDeliver reports whether instance i's assignment and value are both
// locally available (noop slots need no value).
func (e *Engine) canDeliver(i uint64) bool {
	ent, ok := e.log[i]
	if !ok {
		return false
	}
	if ent.key.pid == 0 {
		return true
	}
	_, ok = e.values[ent.key]
	return ok
}

// installFrame encodes the installation of a view: its active ring, plus
// the sender's decided watermark so a rejoiner immediately knows how far
// the log extends (off-ring members never see the token's ARU, and an
// idle ring may never send another frame).
func (e *Engine) installFrame(view uint64, active []wire.ParticipantID) *wire.DataMessage {
	p := make([]byte, 13+4*len(active))
	p[0] = subInstall
	putU64(p[1:], e.decided)
	putU32(p[9:], uint32(len(active)))
	for i, m := range active {
		putU32(p[13+4*i:], uint32(m))
	}
	return e.controlFrame(view, p)
}

// parseInstall decodes a view installation.
func parseInstall(p []byte) (decided uint64, active []wire.ParticipantID, ok bool) {
	if len(p) < 13 {
		return 0, nil, false
	}
	n := int(getU32(p[9:]))
	if n < 0 || n > wire.MaxMembers || len(p) != 13+4*n {
		return 0, nil, false
	}
	active = make([]wire.ParticipantID, n)
	for i := range active {
		active[i] = wire.ParticipantID(getU32(p[13+4*i:]))
	}
	return getU64(p[1:]), active, true
}

// decidedFrame encodes a catch-up answer for one decided instance.
func (e *Engine) decidedFrame(i uint64) *wire.DataMessage {
	ent := e.log[i]
	var val []byte
	var svc wire.Service
	if ent.key.pid != 0 {
		p := e.values[ent.key]
		val = p.payload
		svc = p.service
	}
	p := make([]byte, 26+len(val))
	p[0] = subDecided
	putU64(p[1:], i)
	putKey(p[9:], ent.key)
	p[21] = uint8(svc)
	putU32(p[22:], uint32(len(val)))
	copy(p[26:], val)
	return e.controlFrame(e.view, p)
}

// parseDecided decodes a catch-up answer. The returned value aliases p.
func parseDecided(p []byte) (instance uint64, key valKey, svc wire.Service, val []byte, ok bool) {
	if len(p) < 26 {
		return 0, valKey{}, 0, nil, false
	}
	n := int(getU32(p[22:]))
	if n < 0 || len(p) != 26+n {
		return 0, valKey{}, 0, nil, false
	}
	return getU64(p[1:]), getKey(p[9:]), wire.Service(p[21]), p[26:], true
}

// HandleData dispatches received data frames: proposals (value frames)
// and the five control subkinds.
func (e *Engine) HandleData(m *wire.DataMessage) []core.Action {
	if !e.started || m.RingID != e.ringID || m.PID == e.cfg.MyID {
		return nil
	}
	e.stats.MsgsReceived++
	if !m.Recovered {
		return e.handleValue(m)
	}
	if len(m.Payload) == 0 {
		return nil
	}
	switch m.Payload[0] {
	case subAssign:
		return e.handleAssign(m)
	case subReport:
		return e.handleReport(m)
	case subNack:
		return e.handleNack(m)
	case subInstall:
		return e.handleInstall(m)
	case subDecided:
		return e.handleDecided(m)
	}
	return nil
}

// handleValue stores a proposed value and, on the coordinator, feeds the
// assignment pool.
func (e *Engine) handleValue(m *wire.DataMessage) []core.Action {
	if m.PID == 0 || m.Seq == 0 {
		return nil
	}
	k := valKey{pid: m.PID, seq: uint64(m.Seq)}
	if _, ok := e.values[k]; ok {
		e.stats.MsgsDuplicate++
		return nil
	}
	if k.seq <= e.lastDelivered[k.pid] {
		e.stats.MsgsDuplicate++
		return nil
	}
	// The payload aliases runtime scratch: copy before retaining.
	val := make([]byte, len(m.Payload))
	copy(val, m.Payload)
	e.values[k] = &proposal{service: m.Service, payload: val}

	var acts []core.Action
	if e.isCoordinator() && !e.inViewChange {
		e.offerToPool(k)
		e.noteAlive(m.PID)
		acts = e.maybeResume(acts)
		acts = e.armExpansion(acts)
	}
	// The value may unblock a stalled delivery walk.
	acts = e.advanceDelivery(acts)
	acts = e.armLiveness(acts)
	return acts
}

// handleAssign applies a Phase 2a batch.
func (e *Engine) handleAssign(m *wire.DataMessage) []core.Action {
	view := uint64(m.Round)
	decided, base, keys, ok := parseAssign(m.Payload)
	if !ok {
		return nil
	}
	if view < e.view {
		e.px.StaleFrames++
		return nil
	}
	if view > e.promised || e.inViewChange {
		// We missed this view's installation: ask for it.
		if view > e.promised {
			return []core.Action{core.SendData{Msg: e.nackFrame(true)}}
		}
		return nil
	}
	if view != e.view {
		return nil
	}
	var acts []core.Action
	for i, k := range keys {
		inst := base + uint64(i)
		if inst <= e.decided {
			continue
		}
		if ent, ok := e.log[inst]; ok && ent.view >= view {
			continue
		}
		e.log[inst] = entry{key: k, view: view}
		if inst > e.high {
			e.high = inst
		}
		e.markAssigned(k)
	}
	acts = e.advanceDecided(decided, acts)
	acts = e.armLiveness(acts)
	acts = e.armPacing(acts)
	return acts
}

// handleNack answers a catch-up request. To keep answer traffic bounded,
// regular nacks are answered only by the coordinator; a nack from the
// coordinator itself (catching up after taking over a view) is answered
// by every active-ring member — duplication across a handful of members
// is preferable to electing an answerer nobody can verify has the data.
func (e *Engine) handleNack(m *wire.DataMessage) []core.Action {
	needInstall, promised, missing, ok := parseNack(m.Payload)
	if !ok || e.inViewChange {
		return nil
	}
	var acts []core.Action
	if e.isCoordinator() {
		if needInstall && promised < e.view {
			acts = append(acts, core.SendData{Msg: e.installFrame(e.view, e.active)})
		}
		e.noteAlive(m.PID)
	} else if m.PID != e.coordinator || e.myActiveIdx < 0 {
		return nil
	}
	answered := 0
	for _, inst := range missing {
		if answered >= perTokenRTRAnswers {
			break
		}
		if inst <= e.decided && e.canDeliver(inst) {
			e.px.ValueRetransmits++
			acts = append(acts, core.SendData{Msg: e.decidedFrame(inst)})
			answered++
		}
	}
	return e.armExpansion(acts)
}

// handleDecided applies a catch-up answer: the instance is decided at the
// answerer, hence decided.
func (e *Engine) handleDecided(m *wire.DataMessage) []core.Action {
	inst, k, svc, val, ok := parseDecided(m.Payload)
	if !ok || inst == 0 {
		return nil
	}
	if ent, have := e.log[inst]; !have || ent.key != k || inst > e.decided {
		e.log[inst] = entry{key: k, view: e.view}
	}
	if k.pid != 0 {
		if _, have := e.values[k]; !have && svc.Valid() {
			cp := make([]byte, len(val))
			copy(cp, val)
			e.values[k] = &proposal{service: svc, payload: cp}
		}
	}
	if inst > e.high {
		e.high = inst
	}
	var acts []core.Action
	acts = e.advanceDecided(inst, acts)
	acts = e.armLiveness(acts)
	acts = e.armPacing(acts)
	return acts
}

// noteAlive records evidence that a participant is alive. If it is not on
// the active ring, the coordinator schedules a ring-expansion view change
// (deferred by CommitTimeout so a burst of rejoin traffic folds into one
// change).
func (e *Engine) noteAlive(p wire.ParticipantID) {
	for _, a := range e.active {
		if a == p {
			return
		}
	}
	if len(e.active) == e.n {
		return
	}
	e.expansionWanted = true
}
