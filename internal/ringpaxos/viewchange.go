package ringpaxos

import (
	"sort"

	"accelring/internal/core"
	"accelring/internal/wire"
)

// Phase 1 (view change). Any member whose liveness timeout fires with
// outstanding work initiates a change to the next view: it promises the
// view and multicasts a Phase 1b report (its decided watermark plus every
// assignment it has accepted in the report window). The view's
// coordinator-elect — members[view mod n] — collects reports; once a
// majority (its own included) is in, it installs the view:
//
//   - The reporters become the active ring (they are provably alive, and
//     a majority of them is exactly the quorum Phase 2 needs).
//   - The merged reports reconstruct the log: per instance, the
//     highest-view accepted assignment wins — classic Paxos Phase 1,
//     with the decision quorum (the old active ring) guaranteed to
//     intersect the report majority.
//   - The undecided window above the merged decided watermark is
//     re-assigned in the new view; unreported slots are filled with noop
//     values so the decided watermark can pass them. Duplicate keys in
//     the window (an old assignment superseded after a partial view
//     change) keep the highest-view slot and noop the rest, preserving
//     the no-double-decide invariant delivery relies on.
//
// If the install does not arrive in time (the elect died too), the
// ConsensusTimeout retries with the next view, rotating the elect.
func (e *Engine) initiateViewChange(target uint64) []core.Action {
	if target <= e.promised {
		target = e.promised + 1
	}
	e.inViewChange = true
	e.vcView = target
	e.promised = target
	for p := range e.vcReports {
		delete(e.vcReports, p)
	}
	// A view change aborts any circulation in flight.
	e.awaitReturn = false
	e.sentToken = nil
	e.paused = false
	e.idleCircs = 0
	e.px.Phase1Rounds++

	var acts []core.Action
	acts = append(acts, core.SendData{Msg: e.reportFrame(target)})
	if e.coordinatorOf(target) == e.cfg.MyID {
		e.vcReports[e.cfg.MyID] = e.localReport()
		acts = e.maybeInstall(acts)
	}
	acts = append(acts, core.SetTimer{Kind: core.TimerConsensus, After: e.cfg.ConsensusTimeout})
	if !e.nackArmed {
		e.nackArmed = true
		acts = append(acts, core.SetTimer{Kind: core.TimerJoin, After: e.cfg.JoinPeriod})
	}
	return acts
}

// viewChangePacing is the JoinPeriod tick while a view change is in
// progress: keep the report flowing until the install (or the retry).
func (e *Engine) viewChangePacing() []core.Action {
	e.nackArmed = true
	return []core.Action{
		core.SendData{Msg: e.reportFrame(e.vcView)},
		core.SetTimer{Kind: core.TimerJoin, After: e.cfg.JoinPeriod},
	}
}

// localReport builds this member's own Phase 1b report (the same content
// reportFrame puts on the wire).
func (e *Engine) localReport() *report {
	r := &report{decided: e.decided, high: e.high}
	limit := e.decided + uint64(e.cfg.Flow.MaxSeqGap)
	for i := e.decided + 1; i <= limit && i <= e.high; i++ {
		if ent, ok := e.log[i]; ok {
			r.entries = append(r.entries, reportEntry{instance: i, view: ent.view, key: ent.key})
		}
	}
	return r
}

// handleReport processes a received Phase 1b report.
func (e *Engine) handleReport(m *wire.DataMessage) []core.Action {
	view := uint64(m.Round)
	r, ok := parseReport(m.Payload)
	if !ok {
		return nil
	}
	var acts []core.Action
	switch {
	case view > e.promised:
		// Someone is ahead of us: join their view change.
		acts = e.initiateViewChange(view)
	case e.inViewChange && view == e.vcView:
		// Already in it.
	case !e.inViewChange && view <= e.view:
		// A straggler still reporting for an installed view: re-multicast
		// the installation so it can rejoin.
		if e.isCoordinator() {
			acts = append(acts, core.SendData{Msg: e.installFrame(e.view, e.active)})
		}
		return acts
	default:
		return nil
	}
	if e.inViewChange && e.vcView == view && e.coordinatorOf(view) == e.cfg.MyID {
		e.vcReports[m.PID] = r
		acts = e.maybeInstall(acts)
	}
	return acts
}

// maybeInstall installs the pending view once a majority has reported.
func (e *Engine) maybeInstall(acts []core.Action) []core.Action {
	if len(e.vcReports) < e.major {
		return acts
	}
	view := e.vcView

	reporters := make([]wire.ParticipantID, 0, len(e.vcReports))
	for p := range e.vcReports {
		reporters = append(reporters, p)
	}
	sort.Slice(reporters, func(i, j int) bool { return reporters[i] < reporters[j] })

	// Merge: per instance, the highest-view accepted assignment wins.
	merged := make(map[uint64]entry)
	var dStar, hStar uint64
	for _, r := range e.vcReports {
		if r.decided > dStar {
			dStar = r.decided
		}
		if r.high > hStar {
			hStar = r.high
		}
		for _, ent := range r.entries {
			if cur, ok := merged[ent.instance]; !ok || ent.view > cur.view {
				merged[ent.instance] = entry{key: ent.key, view: ent.view}
			}
		}
	}
	if hStar < dStar {
		hStar = dStar
	}

	// Key dedup across the merged log: for each key, the highest-view
	// occurrence is the live one (induction: later coordinators always
	// noop superseded duplicates). Losing occurrences above the decided
	// watermark are nooped; at or below it they are decided and kept
	// (defensive — the invariant says this cannot happen).
	type occ struct {
		instance uint64
		view     uint64
	}
	best := make(map[valKey]occ)
	for inst, ent := range merged {
		if ent.key.pid == 0 {
			continue
		}
		cur, ok := best[ent.key]
		if !ok || ent.view > cur.view || (ent.view == cur.view && inst < cur.instance) {
			best[ent.key] = occ{instance: inst, view: ent.view}
		}
	}

	// Adopt the merged decided prefix (keeping reported views: these
	// instances are settled and never voted on again), then re-assign the
	// window (dStar, hStar] in the new view.
	for inst, ent := range merged {
		if inst <= e.decided {
			continue
		}
		if inst <= dStar {
			if cur, ok := e.log[inst]; !ok || cur.view < ent.view {
				e.log[inst] = ent
			}
		}
	}
	e.nextAssign = make(map[wire.ParticipantID]uint64)
	winKeys := make([]valKey, 0, hStar-dStar)
	for inst := dStar + 1; inst <= hStar; inst++ {
		ent, ok := merged[inst]
		if ok && ent.key.pid != 0 {
			if b := best[ent.key]; b.instance != inst {
				ent = entry{} // superseded duplicate: noop this slot
			}
		} else if !ok {
			ent = entry{} // never reported: provably undecided, noop
		}
		ent.view = view
		e.log[inst] = ent
		winKeys = append(winKeys, ent.key)
		if ent.key.pid != 0 {
			if n := e.nextAssign[ent.key.pid]; ent.key.seq+1 > n {
				e.nextAssign[ent.key.pid] = ent.key.seq + 1
			}
		}
	}

	if dStar > e.decided {
		e.decided = dStar
	}
	e.high = hStar
	e.installActiveRing(view, reporters)
	e.inViewChange = false
	e.provenRing = true // a majority of Phase 1 reports proves this view
	e.circ = 0
	e.lastTokSeq = 0
	e.px.ViewInstalls++
	for p := range e.vcReports {
		delete(e.vcReports, p)
	}

	acts = append(acts, core.CancelTimer{Kind: core.TimerConsensus})
	acts = append(acts, core.SendData{Msg: e.installFrame(view, e.active)})
	if len(winKeys) > 0 {
		acts = append(acts, core.SendData{Msg: e.assignFrame(dStar+1, winKeys)})
	}

	// Re-feed own unordered submissions to the (new) pool.
	for _, k := range e.myPendOrd {
		if e.myPending[k] {
			e.offerToPool(k)
		}
	}

	acts = e.advanceDelivery(acts)
	if len(e.active) == 1 {
		acts = e.soloRounds(acts)
	} else {
		acts = e.circulate(acts, e.high)
	}
	if e.deliveryGap() {
		acts = append(acts, core.SendData{Msg: e.nackFrame(false)})
	}
	acts = e.armLiveness(acts)
	acts = e.armPacing(acts)
	return acts
}

// handleInstall applies a view installation multicast by its coordinator.
func (e *Engine) handleInstall(m *wire.DataMessage) []core.Action {
	view := uint64(m.Round)
	decided, active, ok := parseInstall(m.Payload)
	if !ok || len(active) < e.major || view < e.promised {
		return nil
	}
	if view == e.view && !e.inViewChange {
		return nil // duplicate of the view we are already in
	}
	if m.PID != e.coordinatorOf(view) {
		return nil
	}
	e.installActiveRing(view, active)
	e.inViewChange = false
	e.provenRing = true // Phase-1-installed views are proven
	e.lastTokSeq = 0
	e.awaitReturn = false
	e.sentToken = nil
	e.paused = false
	e.idleCircs = 0
	e.px.ViewInstalls++
	for p := range e.vcReports {
		delete(e.vcReports, p)
	}

	acts := []core.Action{core.CancelTimer{Kind: core.TimerConsensus}}
	acts = e.advanceDecided(decided, acts)
	if e.deliveryGap() {
		acts = append(acts, core.SendData{Msg: e.nackFrame(false)})
	}
	acts = e.armLiveness(acts)
	acts = e.armPacing(acts)
	return acts
}
