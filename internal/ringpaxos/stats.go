package ringpaxos

// Stats are the Ring Paxos-specific counters, complementing the shared
// core.Stats the engine also maintains (where TokensProcessed counts
// accepted Phase 2 circulation acks, Delivered counts totally-ordered
// deliveries, and MembershipChanges counts view installations plus the
// initial configuration). All counters are cumulative since Start.
type Stats struct {
	// View is the currently installed view number.
	View uint64 `json:"view"`
	// ViewInstalls counts view installations applied (initial view
	// excluded; every member counts each install it applies once).
	ViewInstalls uint64 `json:"view_installs"`
	// CoordinatorChanges counts installs that moved the coordinator to a
	// different participant.
	CoordinatorChanges uint64 `json:"coordinator_changes"`
	// Phase1Rounds counts view changes this node initiated or joined
	// (including retries for views that never installed).
	Phase1Rounds uint64 `json:"phase1_rounds"`
	// Phase2Circulations counts token circulations this node opened as
	// coordinator.
	Phase2Circulations uint64 `json:"phase2_circulations"`
	// Phase2Tokens counts Phase 2 tokens this node accepted (as
	// coordinator or ring member).
	Phase2Tokens uint64 `json:"phase2_tokens"`
	// QuorumDecides counts instances this node decided from an aggregate
	// ring vote (coordinator) or learned locally in solo mode.
	QuorumDecides uint64 `json:"quorum_decides"`
	// DecideRoundsSum / DecideRoundsCount accumulate, per decided
	// instance assigned by this coordinator, the number of circulations
	// between assignment and decision — the quorum latency in rounds
	// (ideal is 1). Mean = Sum / Count.
	DecideRoundsSum   uint64 `json:"decide_rounds_sum"`
	DecideRoundsCount uint64 `json:"decide_rounds_count"`
	// Decided is the decided watermark: every instance up to it has a
	// quorum-settled assignment.
	Decided uint64 `json:"decided"`
	// Delivered is the delivery watermark: instances delivered (or
	// consumed as noops/duplicates) in total order.
	Delivered uint64 `json:"delivered"`
	// AssignBatches counts Phase 2a assignment batches this coordinator
	// multicast.
	AssignBatches uint64 `json:"assign_batches"`
	// ValueRetransmits counts catch-up answers (decided-instance frames)
	// this node multicast for lagging learners.
	ValueRetransmits uint64 `json:"value_retransmits"`
	// VoteAbstains counts circulations in which this member's vote was
	// short of the token's window (it was missing assignments).
	VoteAbstains uint64 `json:"vote_abstains"`
	// StaleTokens counts tokens dropped for carrying an old view.
	StaleTokens uint64 `json:"stale_tokens"`
	// StaleFrames counts control frames dropped for carrying an old view.
	StaleFrames uint64 `json:"stale_frames"`
	// DupSuppressed counts decided instances whose value had already been
	// delivered under an earlier instance (the delivery-level dedup that
	// backstops the no-double-decide invariant; nonzero values indicate
	// the invariant was violated upstream).
	DupSuppressed uint64 `json:"dup_suppressed"`
	// FastForwards counts deliveries restarted mid-stream because this
	// node was too far behind for value catch-up (fresh incarnations
	// only).
	FastForwards uint64 `json:"fast_forwards"`
}
