// Package flowctl implements the token-ring flow control of the Accelerated
// Ring protocol: the personal and global windows, the token's flow control
// count (fcc) accounting, the max-seq-gap bound that limits how far the
// sequence frontier may run ahead of global stability, and the split of a
// round's new messages into pre-token and post-token phases.
//
// All computations are pure except for the one piece of per-participant
// state the protocol requires: the number of multicasts this participant
// sent in the previous round, which is subtracted from the token's fcc when
// it comes back around.
package flowctl

import (
	"errors"
	"fmt"

	"accelring/internal/wire"
)

// Default window values. They suit an 8-node ring on a gigabit-class
// network and match the magnitudes used in the paper's evaluation; the
// benchmark harness tunes them per experiment exactly as the authors tuned
// Spread's.
const (
	DefaultPersonalWindow    = 60
	DefaultGlobalWindow      = 300
	DefaultAcceleratedWindow = 20
	DefaultMaxSeqGap         = 4000
)

// Config carries the flow control parameters of one participant.
type Config struct {
	// PersonalWindow is the maximum number of new messages one
	// participant may initiate in a single token round.
	PersonalWindow int
	// GlobalWindow is the maximum total number of multicasts (new
	// messages plus retransmissions) all participants combined may send
	// in a single token round, enforced via the token's fcc field.
	GlobalWindow int
	// AcceleratedWindow is the maximum number of messages a participant
	// may multicast after forwarding the token (the post-token phase).
	// Zero disables acceleration, yielding the original Ring protocol's
	// sending pattern.
	AcceleratedWindow int
	// MaxSeqGap bounds how far the highest assigned sequence number may
	// run ahead of the globally received (Global ARU) frontier, which in
	// turn bounds every participant's buffer occupancy.
	MaxSeqGap int
}

// Validation errors.
var (
	ErrNonPositiveWindow = errors.New("flowctl: windows must be positive")
	ErrAccelTooLarge     = errors.New("flowctl: accelerated window exceeds personal window")
	ErrGapTooSmall       = errors.New("flowctl: max seq gap smaller than global window")
)

// Default returns the default flow control configuration.
func Default() Config {
	return Config{
		PersonalWindow:    DefaultPersonalWindow,
		GlobalWindow:      DefaultGlobalWindow,
		AcceleratedWindow: DefaultAcceleratedWindow,
		MaxSeqGap:         DefaultMaxSeqGap,
	}
}

// Validate checks the configuration for values that would stall or break
// the protocol.
func (c Config) Validate() error {
	if c.PersonalWindow <= 0 || c.GlobalWindow <= 0 || c.MaxSeqGap <= 0 {
		return fmt.Errorf("%w: personal %d, global %d, gap %d",
			ErrNonPositiveWindow, c.PersonalWindow, c.GlobalWindow, c.MaxSeqGap)
	}
	if c.AcceleratedWindow < 0 {
		return fmt.Errorf("%w: accelerated %d", ErrNonPositiveWindow, c.AcceleratedWindow)
	}
	if c.AcceleratedWindow > c.PersonalWindow {
		return fmt.Errorf("%w: accelerated %d > personal %d",
			ErrAccelTooLarge, c.AcceleratedWindow, c.PersonalWindow)
	}
	if c.MaxSeqGap < c.GlobalWindow {
		// A gap bound below the global window would let the window
		// starve senders even when all buffers are empty.
		return fmt.Errorf("%w: gap %d < global %d", ErrGapTooSmall, c.MaxSeqGap, c.GlobalWindow)
	}
	return nil
}

// Accelerated reports whether the configuration enables post-token sending.
func (c Config) Accelerated() bool { return c.AcceleratedWindow > 0 }

// PreTokenCount returns how many of totalNew new messages must be multicast
// before forwarding the token; the remainder (at most AcceleratedWindow) is
// sent in the post-token phase.
func (c Config) PreTokenCount(totalNew int) int {
	pre := totalNew - c.AcceleratedWindow
	if pre < 0 {
		return 0
	}
	return pre
}

// Controller tracks the single piece of cross-round flow control state and
// evaluates the per-round sending budget.
type Controller struct {
	cfg Config
	// sentLastRound is the number of multicasts (new + retransmissions)
	// this participant sent in the previous token round; the protocol
	// subtracts it from the incoming token's fcc.
	sentLastRound int
}

// NewController creates a controller with the given (validated) config.
func NewController(cfg Config) *Controller {
	return &Controller{cfg: cfg}
}

// Config returns the controller's configuration.
func (fc *Controller) Config() Config { return fc.cfg }

// SentLastRound returns the number of multicasts sent in the previous round.
func (fc *Controller) SentLastRound() int { return fc.sentLastRound }

// Budget computes the maximum number of new messages this participant may
// initiate this round (Section III-A1 of the paper): the minimum of
//
//	pending            — application messages waiting to be sent,
//	PersonalWindow,
//	GlobalWindow − fcc − numRetrans,
//	GlobalARU + MaxSeqGap − tokenSeq.
//
// fcc is the flow control count of the received token after subtracting
// this participant's own sends from last round, numRetrans the number of
// retransmissions it is about to send this round, tokenSeq the received
// token's seq, and globalARU the highest sequence number known received by
// all participants.
func (fc *Controller) Budget(pending, numRetrans int, fcc int, tokenSeq, globalARU wire.Seq) int {
	budget := pending
	if fc.cfg.PersonalWindow < budget {
		budget = fc.cfg.PersonalWindow
	}
	if g := fc.cfg.GlobalWindow - fcc - numRetrans; g < budget {
		budget = g
	}
	// Sequence-gap bound, computed in signed arithmetic: tokenSeq may
	// exceed globalARU + MaxSeqGap when stability stalls.
	gap := int64(globalARU) + int64(fc.cfg.MaxSeqGap) - int64(tokenSeq)
	if gap < int64(budget) {
		budget = int(gap)
	}
	if budget < 0 {
		budget = 0
	}
	return budget
}

// RoundFCC computes the fcc value for the outgoing token and records this
// round's sends for next round's accounting. receivedFCC is the fcc field
// of the received token; sentThisRound is the number of multicasts (new +
// retransmissions) this participant sends in the current round.
func (fc *Controller) RoundFCC(receivedFCC int, sentThisRound int) int {
	out := receivedFCC - fc.sentLastRound + sentThisRound
	if out < 0 {
		// Defensive clamp: a token reset (e.g. after membership change)
		// can make the incoming fcc smaller than our recorded history.
		out = sentThisRound
	}
	fc.sentLastRound = sentThisRound
	return out
}

// Reset clears cross-round state when a new ring is installed.
func (fc *Controller) Reset() { fc.sentLastRound = 0 }
