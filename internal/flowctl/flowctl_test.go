package flowctl

import (
	"errors"
	"testing"
	"testing/quick"

	"accelring/internal/wire"
)

func validConfig() Config {
	return Config{PersonalWindow: 50, GlobalWindow: 200, AcceleratedWindow: 20, MaxSeqGap: 1000}
}

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		want   error
	}{
		{"zero personal", func(c *Config) { c.PersonalWindow = 0 }, ErrNonPositiveWindow},
		{"negative global", func(c *Config) { c.GlobalWindow = -1 }, ErrNonPositiveWindow},
		{"zero gap", func(c *Config) { c.MaxSeqGap = 0 }, ErrNonPositiveWindow},
		{"negative accelerated", func(c *Config) { c.AcceleratedWindow = -1 }, ErrNonPositiveWindow},
		{"accel > personal", func(c *Config) { c.AcceleratedWindow = 51 }, ErrAccelTooLarge},
		{"gap < global", func(c *Config) { c.MaxSeqGap = 199 }, ErrGapTooSmall},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := validConfig()
			tc.mutate(&cfg)
			if err := cfg.Validate(); !errors.Is(err, tc.want) {
				t.Fatalf("Validate() = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestAccelerated(t *testing.T) {
	cfg := validConfig()
	if !cfg.Accelerated() {
		t.Error("accelerated window 20 should report accelerated")
	}
	cfg.AcceleratedWindow = 0
	if cfg.Accelerated() {
		t.Error("accelerated window 0 should not report accelerated")
	}
}

func TestPreTokenCount(t *testing.T) {
	cfg := validConfig() // accel window 20
	cases := []struct{ total, want int }{
		{0, 0},   // nothing to send
		{10, 0},  // all fits post-token
		{20, 0},  // exactly the accelerated window
		{21, 1},  // one must go out pre-token
		{50, 30}, // the excess goes pre-token
	}
	for _, c := range cases {
		if got := cfg.PreTokenCount(c.total); got != c.want {
			t.Errorf("PreTokenCount(%d) = %d, want %d", c.total, got, c.want)
		}
	}
}

func TestPreTokenCountUnaccelerated(t *testing.T) {
	cfg := validConfig()
	cfg.AcceleratedWindow = 0
	// The original protocol sends everything before the token.
	for _, total := range []int{0, 1, 17, 50} {
		if got := cfg.PreTokenCount(total); got != total {
			t.Errorf("PreTokenCount(%d) = %d, want %d", total, got, total)
		}
	}
}

func TestBudgetMinimums(t *testing.T) {
	fc := NewController(validConfig()) // personal 50, global 200, gap 1000
	cases := []struct {
		name                string
		pending, retrans    int
		fcc                 int
		tokenSeq, globalARU wire.Seq
		want                int
	}{
		{"pending limits", 5, 0, 0, 100, 100, 5},
		{"personal limits", 100, 0, 0, 100, 100, 50},
		{"global limits", 100, 0, 170, 100, 100, 30},
		{"global minus retrans", 100, 10, 170, 100, 100, 20},
		{"global exhausted", 100, 0, 200, 100, 100, 0},
		{"global overshoot clamps", 100, 50, 190, 100, 100, 0},
		{"gap limits", 100, 0, 0, 1080, 100, 20},
		{"gap exhausted", 100, 0, 0, 1100, 100, 0},
		{"gap overshot clamps", 100, 0, 0, 2000, 100, 0},
		{"unconstrained", 10, 3, 40, 500, 400, 10},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := fc.Budget(c.pending, c.retrans, c.fcc, c.tokenSeq, c.globalARU)
			if got != c.want {
				t.Fatalf("Budget = %d, want %d", got, c.want)
			}
		})
	}
}

func TestRoundFCCAccounting(t *testing.T) {
	fc := NewController(validConfig())
	// Round 1: token fcc 0, we send 30.
	if got := fc.RoundFCC(0, 30); got != 30 {
		t.Fatalf("round 1 fcc = %d, want 30", got)
	}
	// Round 2: others pushed fcc to 100; our 30 from last round leaves,
	// our 10 new arrive.
	if got := fc.RoundFCC(100, 10); got != 80 {
		t.Fatalf("round 2 fcc = %d, want 80", got)
	}
	if fc.SentLastRound() != 10 {
		t.Fatalf("sentLastRound = %d, want 10", fc.SentLastRound())
	}
}

func TestRoundFCCClampsAfterReset(t *testing.T) {
	fc := NewController(validConfig())
	fc.RoundFCC(0, 50)
	// A membership change reset the token's fcc to 0; subtracting our
	// stale 50 must not go negative.
	if got := fc.RoundFCC(0, 5); got != 5 {
		t.Fatalf("fcc after token reset = %d, want 5", got)
	}
}

func TestReset(t *testing.T) {
	fc := NewController(validConfig())
	fc.RoundFCC(0, 50)
	fc.Reset()
	if fc.SentLastRound() != 0 {
		t.Fatalf("sentLastRound after Reset = %d, want 0", fc.SentLastRound())
	}
}

// TestQuickBudgetBounds: whatever the inputs, the budget never exceeds any
// of its four bounds and is never negative.
func TestQuickBudgetBounds(t *testing.T) {
	cfg := validConfig()
	f := func(pendingRaw, retransRaw, fccRaw uint16, seqRaw, aruRaw uint32) bool {
		fc := NewController(cfg)
		pending := int(pendingRaw % 2000)
		retrans := int(retransRaw % 300)
		fcc := int(fccRaw % 500)
		tokenSeq := wire.Seq(seqRaw)
		globalARU := wire.Seq(aruRaw)
		got := fc.Budget(pending, retrans, fcc, tokenSeq, globalARU)
		if got < 0 {
			return false
		}
		if got > pending || got > cfg.PersonalWindow {
			return false
		}
		if int64(got) > max64(int64(cfg.GlobalWindow-fcc-retrans), 0) {
			return false
		}
		gap := int64(globalARU) + int64(cfg.MaxSeqGap) - int64(tokenSeq)
		return int64(got) <= max64(gap, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFCCConservation: simulating one participant over many rounds,
// the fcc contribution of this participant is always its last round's send
// count (the token "carries" each send for exactly one rotation).
func TestQuickFCCConservation(t *testing.T) {
	f := func(sends []uint8) bool {
		fc := NewController(validConfig())
		othersFCC := 0 // what the rest of the ring contributes (held at 0)
		prev := 0
		for _, sRaw := range sends {
			s := int(sRaw % 100)
			got := fc.RoundFCC(othersFCC+prev, s)
			if got != othersFCC+s {
				return false
			}
			prev = s
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
