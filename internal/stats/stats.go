// Package stats provides the small statistical helpers the benchmark
// harness needs: a latency sample collector with exact percentiles, and a
// fixed-bucket histogram for cheap streaming summaries.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Sample accumulates duration observations and answers summary queries.
// The zero value is ready to use. Not safe for concurrent use.
type Sample struct {
	values []time.Duration
	sorted bool
	sum    time.Duration
}

// Add records one observation.
func (s *Sample) Add(d time.Duration) {
	s.values = append(s.values, d)
	s.sorted = false
	s.sum += d
}

// Count returns the number of observations.
func (s *Sample) Count() int { return len(s.values) }

// Mean returns the arithmetic mean, or 0 with no observations.
func (s *Sample) Mean() time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	return s.sum / time.Duration(len(s.values))
}

// Min returns the smallest observation, or 0 with none.
func (s *Sample) Min() time.Duration {
	s.sort()
	if len(s.values) == 0 {
		return 0
	}
	return s.values[0]
}

// Max returns the largest observation, or 0 with none.
func (s *Sample) Max() time.Duration {
	s.sort()
	if len(s.values) == 0 {
		return 0
	}
	return s.values[len(s.values)-1]
}

// Percentile returns the p-th percentile (0 < p ≤ 100) using the
// nearest-rank method, or 0 with no observations.
func (s *Sample) Percentile(p float64) time.Duration {
	s.sort()
	n := len(s.values)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return s.values[0]
	}
	if p >= 100 {
		return s.values[n-1]
	}
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	return s.values[rank-1]
}

// Stddev returns the population standard deviation, or 0 with fewer than
// two observations.
func (s *Sample) Stddev() time.Duration {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	mean := float64(s.Mean())
	var acc float64
	for _, v := range s.values {
		d := float64(v) - mean
		acc += d * d
	}
	return time.Duration(math.Sqrt(acc / float64(n)))
}

// Reset discards all observations, retaining capacity.
func (s *Sample) Reset() {
	s.values = s.values[:0]
	s.sorted = true
	s.sum = 0
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Slice(s.values, func(i, j int) bool { return s.values[i] < s.values[j] })
		s.sorted = true
	}
}

// String summarizes the sample for logs.
func (s *Sample) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		s.Count(), s.Mean(), s.Percentile(50), s.Percentile(99), s.Max())
}

// Histogram is a fixed-bucket latency histogram with exponentially growing
// bucket bounds. The zero value is not usable; create with NewHistogram.
type Histogram struct {
	bounds []time.Duration
	counts []uint64
	total  uint64
}

// NewHistogram builds a histogram with buckets [0,first), [first,2*first),
// doubling n times. Observations beyond the last bound land in the overflow
// bucket.
func NewHistogram(first time.Duration, n int) *Histogram {
	if first <= 0 || n <= 0 {
		panic("stats: histogram needs a positive first bound and bucket count")
	}
	bounds := make([]time.Duration, n)
	b := first
	for i := range bounds {
		bounds[i] = b
		b *= 2
	}
	return &Histogram{bounds: bounds, counts: make([]uint64, n+1)}
}

// Add records one observation.
func (h *Histogram) Add(d time.Duration) {
	idx := sort.Search(len(h.bounds), func(i int) bool { return d < h.bounds[i] })
	h.counts[idx]++
	h.total++
}

// Total returns the number of observations.
func (h *Histogram) Total() uint64 { return h.total }

// Buckets calls fn for each bucket with its upper bound (0 duration for the
// overflow bucket) and count.
func (h *Histogram) Buckets(fn func(upper time.Duration, count uint64)) {
	for i, c := range h.counts {
		if i < len(h.bounds) {
			fn(h.bounds[i], c)
		} else {
			fn(0, c)
		}
	}
}
