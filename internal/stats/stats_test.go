package stats

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Count() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty sample must answer zeros")
	}
}

func TestSampleSummary(t *testing.T) {
	var s Sample
	for _, v := range []time.Duration{30, 10, 20, 40, 50} {
		s.Add(v)
	}
	if s.Count() != 5 {
		t.Fatalf("Count = %d", s.Count())
	}
	if s.Mean() != 30 {
		t.Fatalf("Mean = %v, want 30", s.Mean())
	}
	if s.Min() != 10 || s.Max() != 50 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if got := s.Percentile(50); got != 30 {
		t.Fatalf("P50 = %v, want 30", got)
	}
	if got := s.Percentile(100); got != 50 {
		t.Fatalf("P100 = %v, want 50", got)
	}
	if got := s.Percentile(0); got != 10 {
		t.Fatalf("P0 = %v, want 10", got)
	}
}

func TestSampleAddAfterQuery(t *testing.T) {
	var s Sample
	s.Add(10)
	_ = s.Percentile(50)
	s.Add(5)
	if s.Min() != 5 {
		t.Fatalf("Min = %v after post-query add, want 5", s.Min())
	}
}

func TestSampleStddev(t *testing.T) {
	var s Sample
	s.Add(10)
	if s.Stddev() != 0 {
		t.Fatal("stddev of one observation must be 0")
	}
	s.Add(20)
	if got := s.Stddev(); got != 5 {
		t.Fatalf("Stddev = %v, want 5", got)
	}
}

func TestSampleReset(t *testing.T) {
	var s Sample
	s.Add(10)
	s.Reset()
	if s.Count() != 0 || s.Mean() != 0 {
		t.Fatal("Reset did not clear the sample")
	}
}

func TestQuickPercentileWithinRange(t *testing.T) {
	f := func(raw []uint16, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, v := range raw {
			s.Add(time.Duration(v))
		}
		p := float64(pRaw % 101)
		got := s.Percentile(p)
		return got >= s.Min() && got <= s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMeanBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, v := range raw {
			s.Add(time.Duration(v))
		}
		m := s.Mean()
		return m >= s.Min() && m <= s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 3) // buckets: <10, <20, <40, overflow
	for _, v := range []time.Duration{5, 15, 25, 100} {
		h.Add(v)
	}
	if h.Total() != 4 {
		t.Fatalf("Total = %d", h.Total())
	}
	var got []uint64
	var uppers []time.Duration
	h.Buckets(func(u time.Duration, c uint64) {
		uppers = append(uppers, u)
		got = append(got, c)
	})
	want := []uint64{1, 1, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket counts = %v, want %v", got, want)
		}
	}
	if uppers[0] != 10 || uppers[1] != 20 || uppers[2] != 40 || uppers[3] != 0 {
		t.Fatalf("bucket bounds = %v", uppers)
	}
}

func TestHistogramPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram(0, 0) did not panic")
		}
	}()
	NewHistogram(0, 0)
}
