package diffconform

import (
	"testing"

	"accelring"
	"accelring/internal/faultplan"
)

// FuzzEngineEquivalence is the differential fuzz target: a fuzzed
// faultplan seed and submission-schedule shape are clamped into a small
// Scenario, the identical scenario is driven through both ordering
// engines on memnet, and every node of both runs must deliver the
// canonical submission order. Fault classes are masked to link faults
// (loss/dup/delay) so the strict positional oracle applies — partitions
// get the weaker converged verdict in the seeded tests instead.
//
// Any crash, divergence or liveness failure found here is reproducible
// from the corpus entry alone: the Scenario is a pure function of the
// fuzzed inputs.
func FuzzEngineEquivalence(f *testing.F) {
	// Seed the corpus with the shapes the deterministic suite covers.
	f.Add(int64(1), uint8(3), uint8(12), uint8(2), uint8(faultplan.ClassLink))
	f.Add(int64(3), uint8(3), uint8(8), uint8(1), uint8(faultplan.ClassLoss))
	f.Add(int64(7), uint8(2), uint8(6), uint8(3), uint8(faultplan.ClassDelay))
	f.Add(int64(42), uint8(4), uint8(10), uint8(2), uint8(0))

	f.Fuzz(func(t *testing.T, seed int64, nodes, messages, burst, classes uint8) {
		sc := Scenario{
			Seed:     seed,
			Nodes:    2 + int(nodes%3),     // 2..4
			Messages: 1 + int(messages%12), // 1..12
			Burst:    1 + int(burst%3),     // 1..3
			Classes:  faultplan.Class(classes) & faultplan.ClassLink,
		}
		for _, engine := range []accelring.EngineKind{accelring.EngineAccelRing, accelring.EngineRingPaxos} {
			res, err := Run(engine, sc)
			if err != nil {
				t.Fatalf("%s %s: %v", engine, sc, err)
			}
			if d := CheckStrict(res, sc); d != nil {
				t.Fatalf("engines diverge on %s: %v", sc, d)
			}
		}
	})
}
