package diffconform

import (
	"fmt"
	"testing"

	"accelring"
	"accelring/internal/faultplan"
	"accelring/internal/ringpaxos"
)

var bothEngines = []accelring.EngineKind{accelring.EngineAccelRing, accelring.EngineRingPaxos}

// runStrict executes one scenario on one engine and fails the test on
// any divergence from the canonical order, reporting a minimized
// seed-reproducible counterexample.
func runStrict(t *testing.T, engine accelring.EngineKind, sc Scenario) {
	t.Helper()
	res, err := Run(engine, sc)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if d := CheckStrict(res, sc); d != nil {
		t.Fatalf("%s", Minimize(engine, sc, d, 12))
	}
}

// TestDifferentialStrictSeeds is the acceptance gate: the same seeded
// loss/dup/delay faultplan schedules through both engines, every node of
// every run delivering the identical canonical sequence.
func TestDifferentialStrictSeeds(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	for _, seed := range seeds {
		for _, engine := range bothEngines {
			seed, engine := seed, engine
			t.Run(fmt.Sprintf("seed%d/%s", seed, engine), func(t *testing.T) {
				t.Parallel()
				runStrict(t, engine, Scenario{
					Seed:     seed,
					Nodes:    3,
					Messages: 24,
					Burst:    2,
					Classes:  faultplan.ClassLink,
				})
			})
		}
	}
}

// TestDifferentialPartitionSeeds drives partition/heal schedules through
// both engines and applies the converged verdict: per-engine axiom
// conformance under each engine's own evscheck profile, and identical
// delivered sets at quiescence.
func TestDifferentialPartitionSeeds(t *testing.T) {
	for _, seed := range []int64{11, 17} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			sc := Scenario{
				Seed:     seed,
				Nodes:    3,
				Messages: 18,
				Classes:  faultplan.ClassLink | faultplan.ClassPartition,
			}
			a, err := Run(accelring.EngineAccelRing, sc)
			if err != nil {
				t.Fatalf("accelring run: %v", err)
			}
			b, err := Run(accelring.EngineRingPaxos, sc)
			if err != nil {
				t.Fatalf("ringpaxos run: %v", err)
			}
			if err := CheckConverged(a, b, sc); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestMutationProducesCounterexample is the suite's self-test: with the
// ringpaxos assignment order deliberately broken (TestMutateAssignOrder
// swaps the first two keys of every multi-key batch), the differential
// suite must fail, and the failure must minimize to a seed-reproducible
// counterexample.
func TestMutationProducesCounterexample(t *testing.T) {
	ringpaxos.TestMutateAssignOrder.Store(true)
	defer ringpaxos.TestMutateAssignOrder.Store(false)

	sc := Scenario{
		Seed:     3,
		Nodes:    3,
		Messages: 24,
		Burst:    2, // same-sender pairs: the swap inverts FIFO order
		Classes:  0, // no faults needed — the bug is in the engine
	}
	res, err := Run(accelring.EngineRingPaxos, sc)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	d := CheckStrict(res, sc)
	if d == nil {
		t.Fatal("mutated engine passed the strict check; the suite has no teeth")
	}
	ce := Minimize(accelring.EngineRingPaxos, sc, d, 12)
	if ce.Divergence == nil {
		t.Fatal("minimization lost the divergence")
	}
	if ce.Scenario.Messages > sc.Messages || ce.Scenario.Messages < ce.Scenario.Burst {
		t.Fatalf("minimized to nonsensical %s", ce.Scenario)
	}
	// Reproducibility: the minimized scenario must fail again from its
	// seed alone.
	res2, err := Run(accelring.EngineRingPaxos, ce.Scenario)
	if err == nil && CheckStrict(res2, ce.Scenario) == nil {
		t.Fatalf("counterexample did not reproduce: %s", ce)
	}
	t.Logf("minimized: %s", ce)

	// The honest engine passes the identical scenario.
	ringpaxos.TestMutateAssignOrder.Store(false)
	runStrict(t, accelring.EngineRingPaxos, ce.Scenario)
}

// TestCanonicalAndHelpers pins the schedule helpers the oracle rests on.
func TestCanonicalAndHelpers(t *testing.T) {
	sc := Scenario{Nodes: 3, Messages: 6, Burst: 2}
	want := []string{"m00000", "m00001", "m00002", "m00003", "m00004", "m00005"}
	got := Canonical(sc)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Canonical[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	sc = sc.withDefaults()
	// Bursts stay on one sender; steps rotate.
	if senderOf(sc, 0) != senderOf(sc, 1) || senderOf(sc, 1) == senderOf(sc, 2) {
		t.Fatalf("senderOf burst grouping broken: %d %d %d",
			senderOf(sc, 0), senderOf(sc, 1), senderOf(sc, 2))
	}
}
