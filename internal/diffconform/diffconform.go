// Package diffconform is the cross-engine differential conformance
// suite: the same seeded faultplan schedule is driven through the
// Accelerated Ring engine and the Ring Paxos engine on memnet, and the
// checker asserts both engines deliver the identical totally-ordered
// sequence of surviving submissions. Any divergence is reported as a
// seed-reproducible counterexample, minimized to the shortest failing
// schedule within a bounded re-run budget.
//
// The oracle rests on a closed-loop chain schedule. The driver keeps at
// most one submission step outstanding: step k (one message, or one
// same-sender burst) is submitted only after every message of step k-1
// was observed delivered. A correct total-order engine therefore has no
// ordering freedom — some node delivered step k-1 before step k existed,
// so pairwise agreement forces every node to order them the same way,
// and same-sender FIFO forces order within a burst. The canonical
// delivery sequence is thus the submission sequence itself, for ANY
// correct engine: two engines are differentially compared through a
// shared, engine-independent expectation, not against each other's
// incidental choices.
//
// Under loss, duplication and delay faults the chain merely stalls and
// recovers, so the strict (positional) check applies. Under partitions
// the EVS engine may legitimately deliver in a minority configuration
// while the majority moves on, which relaxes cross-partition relative
// order; partition scenarios are therefore held to the weaker converged
// check: per-engine axiom conformance (each engine against its own
// evscheck profile) plus cross-engine set equality of surviving
// submissions at quiescence.
package diffconform

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"accelring"
	"accelring/internal/evscheck"
	"accelring/internal/faultplan"
	"accelring/internal/wire"
)

// Scenario is one deterministic differential schedule: everything a
// counterexample needs to reproduce a run.
type Scenario struct {
	// Seed drives the fault plan and the memnet hub's random streams.
	Seed int64
	// Nodes is the cluster size (IDs 1..Nodes).
	Nodes int
	// Messages is the total number of chain messages.
	Messages int
	// Burst is the number of back-to-back messages one chain step submits
	// from the same sender (default 1). Bursts > 1 exercise multi-message
	// assignment batches while keeping the canonical order forced by
	// same-sender FIFO.
	Burst int
	// Classes selects the generated fault classes.
	Classes faultplan.Class
	// FaultWindow is the horizon faults are generated over; every fault
	// ends before it. Zero selects one second.
	FaultWindow time.Duration
	// StepTimeout bounds how long the driver waits for one chain step to
	// deliver. Zero selects 20 seconds (hit only on real liveness bugs —
	// every generated fault expires before FaultWindow).
	StepTimeout time.Duration
}

func (sc Scenario) withDefaults() Scenario {
	if sc.Nodes == 0 {
		sc.Nodes = 3
	}
	if sc.Burst <= 0 {
		sc.Burst = 1
	}
	if sc.FaultWindow == 0 {
		sc.FaultWindow = time.Second
	}
	if sc.StepTimeout == 0 {
		sc.StepTimeout = 20 * time.Second
	}
	return sc
}

// String renders the reproduction key.
func (sc Scenario) String() string {
	return fmt.Sprintf("seed=%d nodes=%d messages=%d burst=%d classes=%#x",
		sc.Seed, sc.Nodes, sc.Messages, sc.Burst, uint8(sc.Classes))
}

// Canonical returns the delivery sequence every correct engine must
// produce for the scenario: the chain payloads in submission order.
func Canonical(sc Scenario) []string {
	sc = sc.withDefaults()
	out := make([]string, sc.Messages)
	for k := range out {
		out[k] = payloadOf(k)
	}
	return out
}

func payloadOf(k int) string { return fmt.Sprintf("m%05d", k) }

// senderOf maps chain message k to its submitting node: bursts stay on
// one sender, steps rotate round-robin.
func senderOf(sc Scenario, k int) int { return (k / sc.Burst) % sc.Nodes }

// Result is one engine's run outcome.
type Result struct {
	// Engine is the engine that produced the run.
	Engine accelring.EngineKind
	// Orders maps node label ("1".."N") to its delivered payload
	// sequence.
	Orders map[string][]string
	// Log is the evscheck view of the same histories (with configuration
	// events), for per-engine axiom checks.
	Log evscheck.Log
}

// Run executes the scenario on the given engine over a faulted memnet
// and returns every node's delivery order. It fails only on harness
// errors (start/submit) or a liveness timeout; ordering verdicts are the
// checker's job.
func Run(engine accelring.EngineKind, sc Scenario) (*Result, error) {
	sc = sc.withDefaults()
	net := accelring.NewMemoryNetwork(sc.Seed)
	plan := faultplan.Generate(sc.Seed, sc.Nodes, sc.FaultWindow, sc.Classes)
	net.ApplyFaults(&plan)

	members := make([]accelring.ParticipantID, sc.Nodes)
	for i := range members {
		members[i] = accelring.ParticipantID(i + 1)
	}

	res := &Result{
		Engine: engine,
		Orders: make(map[string][]string, sc.Nodes),
		Log:    evscheck.Log{},
	}
	// senderSeqOf precomputes each payload's (sender, per-sender counter)
	// so collectors can feed evscheck's FIFO axiom.
	type origin struct {
		sender wire.ParticipantID
		seq    uint64
	}
	origins := make(map[string]origin, sc.Messages)
	perSender := make([]uint64, sc.Nodes)
	for k := 0; k < sc.Messages; k++ {
		s := senderOf(sc, k)
		perSender[s]++
		origins[payloadOf(k)] = origin{sender: wire.ParticipantID(s + 1), seq: perSender[s]}
	}

	var (
		mu        sync.Mutex
		collected = make(map[string][]string, sc.Nodes)
	)
	nodes := make([]*accelring.Node, 0, sc.Nodes)
	var wg sync.WaitGroup
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
		wg.Wait()
	}()

	for _, id := range members {
		n, err := accelring.Start(accelring.Options{
			ID:                 id,
			Transport:          net.Endpoint(id),
			Members:            members,
			Engine:             engine,
			TokenLossTimeout:   120 * time.Millisecond,
			TokenRetransPeriod: 25 * time.Millisecond,
			JoinPeriod:         10 * time.Millisecond,
			ConsensusTimeout:   60 * time.Millisecond,
			CommitTimeout:      50 * time.Millisecond,
		})
		if err != nil {
			return nil, fmt.Errorf("diffconform: start %s node %d: %w", engine, id, err)
		}
		nodes = append(nodes, n)
		label := fmt.Sprint(uint32(id))
		nl := res.Log.Node(label)
		wg.Add(1)
		go func(n *accelring.Node, label string, nl *evscheck.NodeLog) {
			defer wg.Done()
			for ev := range n.Events() {
				mu.Lock()
				switch e := ev.(type) {
				case accelring.Message:
					p := string(e.Payload)
					o := origins[p]
					collected[label] = append(collected[label], p)
					nl.Deliver(p, o.sender, o.seq, e.Service)
				case accelring.ConfigChange:
					nl.Install(e.Config.ID, e.Config.Members, e.Transitional)
				}
				mu.Unlock()
			}
		}(n, label, nl)
	}

	deliveredCount := func(payload string) int {
		mu.Lock()
		defer mu.Unlock()
		cnt := 0
		for _, seq := range collected {
			for _, p := range seq {
				if p == payload {
					cnt++
					break
				}
			}
		}
		return cnt
	}

	// Drive the chain: submit step k's burst, then wait until its last
	// message is delivered somewhere before opening step k+1.
	for k := 0; k < sc.Messages; k++ {
		n := nodes[senderOf(sc, k)]
		payload := payloadOf(k)
		deadline := time.Now().Add(sc.StepTimeout)
		for {
			err := n.Submit([]byte(payload), accelring.Agreed)
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("diffconform: %s: submit %q never accepted: %w (%s)",
					engine, payload, err, sc)
			}
			time.Sleep(2 * time.Millisecond)
		}
		if (k+1)%sc.Burst != 0 && k != sc.Messages-1 {
			continue // within a burst: keep submitting back-to-back
		}
		for deliveredCount(payload) == 0 {
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("diffconform: %s: chain stalled at %q (%s)",
					engine, payload, sc)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Quiescence: every node catches up on the full chain.
	last := payloadOf(sc.Messages - 1)
	deadline := time.Now().Add(sc.StepTimeout)
	for sc.Messages > 0 && deliveredCount(last) < sc.Nodes {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("diffconform: %s: nodes never converged on %q (%s)",
				engine, last, sc)
		}
		time.Sleep(time.Millisecond)
	}
	// One settle pass so trailing duplicates/retransmits drain.
	time.Sleep(20 * time.Millisecond)

	mu.Lock()
	for label, seq := range collected {
		res.Orders[label] = append([]string(nil), seq...)
	}
	mu.Unlock()
	return res, nil
}

// Divergence describes the first point where a run left the canonical
// order.
type Divergence struct {
	// Engine and Node locate the offending delivery stream.
	Engine accelring.EngineKind
	Node   string
	// Index is the position of the first deviation; Want and Got are the
	// canonical and observed payloads there ("<none>" for a short log).
	Index int
	Want  string
	Got   string
}

// String implements fmt.Stringer.
func (d *Divergence) String() string {
	return fmt.Sprintf("engine %s node %s: delivery %d is %q, canonical order wants %q",
		d.Engine, d.Node, d.Index, d.Got, d.Want)
}

// CheckStrict compares every node's order against the canonical chain
// sequence, returning the first divergence or nil. Valid for scenarios
// whose fault classes keep all nodes in one configuration (loss,
// duplication, delay).
func CheckStrict(res *Result, sc Scenario) *Divergence {
	sc = sc.withDefaults()
	want := Canonical(sc)
	labels := make([]string, 0, len(res.Orders))
	for l := range res.Orders {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, label := range labels {
		got := res.Orders[label]
		n := len(want)
		if len(got) > n {
			n = len(got)
		}
		for i := 0; i < n; i++ {
			w, g := "<none>", "<none>"
			if i < len(want) {
				w = want[i]
			}
			if i < len(got) {
				g = got[i]
			}
			if w != g {
				return &Divergence{Engine: res.Engine, Node: label, Index: i, Want: w, Got: g}
			}
		}
	}
	return nil
}

// CheckConverged applies the weaker partition-tolerant verdict to a pair
// of engine runs: each engine must satisfy its own evscheck profile, and
// at quiescence every node of both engines must have delivered the
// identical message set.
func CheckConverged(a, b *Result, sc Scenario) error {
	sc = sc.withDefaults()
	var problems []string
	for _, r := range []*Result{a, b} {
		opt := evscheck.Options{Quiescent: false}
		if r.Engine == accelring.EngineRingPaxos {
			opt.Profile = evscheck.ProfileTotalOrder
		}
		for _, v := range evscheck.Check(r.Log, opt) {
			problems = append(problems, fmt.Sprintf("engine %s: %s", r.Engine, v))
		}
	}
	want := make(map[string]bool, sc.Messages)
	for _, p := range Canonical(sc) {
		want[p] = true
	}
	for _, r := range []*Result{a, b} {
		for label, seq := range r.Orders {
			if len(seq) != len(want) {
				problems = append(problems, fmt.Sprintf(
					"engine %s node %s: delivered %d of %d messages", r.Engine, label, len(seq), len(want)))
				continue
			}
			for _, p := range seq {
				if !want[p] {
					problems = append(problems, fmt.Sprintf(
						"engine %s node %s: delivered unknown message %q", r.Engine, label, p))
				}
			}
		}
	}
	if len(problems) != 0 {
		sort.Strings(problems)
		return fmt.Errorf("diffconform: converged check failed (%s):\n  %s",
			sc, strings.Join(problems, "\n  "))
	}
	return nil
}

// Counterexample is a failing scenario minimized for reproduction.
type Counterexample struct {
	// Scenario reproduces the failure: Run(Divergence.Engine, Scenario)
	// diverges from Canonical(Scenario).
	Scenario Scenario
	// Divergence is the verdict on the minimized scenario.
	Divergence *Divergence
	// Reruns is how many minimization re-runs were spent.
	Reruns int
}

// String implements fmt.Stringer.
func (c *Counterexample) String() string {
	return fmt.Sprintf("counterexample (%s, %d minimization reruns): %s",
		c.Scenario, c.Reruns, c.Divergence)
}

// Minimize shrinks a failing strict scenario to the shortest message
// count that still diverges, within a re-run budget (each probe is a
// full run). The returned counterexample always reproduces: its final
// scenario was re-run and observed to fail.
func Minimize(engine accelring.EngineKind, sc Scenario, firstDiv *Divergence, budget int) *Counterexample {
	sc = sc.withDefaults()
	best := sc
	bestDiv := firstDiv
	reruns := 0
	fails := func(probe Scenario) *Divergence {
		res, err := Run(engine, probe)
		if err != nil {
			// A liveness failure is a reproducible failure too.
			return &Divergence{Engine: engine, Node: "-", Want: "<live run>", Got: err.Error()}
		}
		return CheckStrict(res, probe)
	}
	// Binary-search the smallest failing prefix length, in burst-aligned
	// steps so burst semantics are preserved.
	lo, hi := 1, best.Messages/best.Burst
	for lo < hi && reruns < budget {
		mid := (lo + hi) / 2
		probe := best
		probe.Messages = mid * probe.Burst
		reruns++
		if d := fails(probe); d != nil {
			hi = mid
			best, bestDiv = probe, d
		} else {
			lo = mid + 1
		}
	}
	return &Counterexample{Scenario: best, Divergence: bestDiv, Reruns: reruns}
}
