//go:build race

package transport

// raceEnabled reports whether this test binary was built with the race
// detector, under which sync.Pool deliberately drops Puts at random —
// invalidating pointer-identity and allocation-count assertions.
const raceEnabled = true
