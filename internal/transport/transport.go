// Package transport defines how protocol packets move between ring
// participants: IP-multicast (or an emulation of it) for data messages and
// unicast for the token, received on separate channels so the runtime can
// honor the protocol's token/data priority policy (Section III-D of the
// paper uses separate sockets for exactly this reason).
package transport

import (
	"errors"

	"accelring/internal/wire"
)

// Transport moves encoded packets between participants. Implementations
// must be safe for one sender goroutine plus internal receivers.
type Transport interface {
	// Multicast sends an encoded packet to every participant except the
	// sender (participants hold their own messages already).
	Multicast(pkt []byte) error
	// Unicast sends an encoded packet to one participant. Sending to
	// yourself must work (singleton rings pass the token to themselves).
	Unicast(to wire.ParticipantID, pkt []byte) error
	// Data returns the channel of packets received on the data socket
	// (multicast data messages and joins).
	Data() <-chan []byte
	// Token returns the channel of packets received on the token socket
	// (tokens and commit tokens).
	Token() <-chan []byte
	// Close releases the transport's resources; the receive channels are
	// closed afterwards.
	Close() error
}

// ErrClosed is returned by send operations on a closed transport.
var ErrClosed = errors.New("transport: closed")

// ErrUnknownPeer is returned when unicasting to a participant the
// transport has no address for.
var ErrUnknownPeer = errors.New("transport: unknown peer")
