// Package transport defines how protocol packets move between ring
// participants: IP-multicast (or an emulation of it) for data messages and
// unicast for the token, received on separate channels so the runtime can
// honor the protocol's token/data priority policy (Section III-D of the
// paper uses separate sockets for exactly this reason).
package transport

import (
	"errors"

	"accelring/internal/metrics"
	"accelring/internal/wire"
)

// Transport moves encoded packets between participants. Implementations
// must be safe for one sender goroutine plus internal receivers.
//
// Buffer ownership: packets received from Data() and Token() belong to the
// consumer. The built-in transports draw receive buffers from the shared
// Buffers pool (udpnet for every packet, memnet for small ones — see its
// pooledCopyMax), and the runtime loop returns each packet with Buffers.Put
// after dispatching it — so a received packet must not be retained past
// that handoff (decoders copy what the protocol keeps). External transports
// need not use the pool: Put counts and drops foreign buffers instead of
// recycling them. Conversely, Multicast and Unicast borrow pkt only for the
// duration of the call; implementations that need it afterwards (queues,
// retransmission) must copy, because callers reuse their encode scratch.
type Transport interface {
	// Multicast sends an encoded packet to every participant except the
	// sender (participants hold their own messages already). pkt is only
	// valid during the call.
	Multicast(pkt []byte) error
	// Unicast sends an encoded packet to one participant. Sending to
	// yourself must work (singleton rings pass the token to themselves).
	// pkt is only valid during the call.
	Unicast(to wire.ParticipantID, pkt []byte) error
	// Data returns the channel of packets received on the data socket
	// (multicast data messages and joins). Ownership of each packet
	// transfers to the receiver; see the buffer ownership note above.
	Data() <-chan []byte
	// Token returns the channel of packets received on the token socket
	// (tokens and commit tokens). Ownership of each packet transfers to
	// the receiver; see the buffer ownership note above.
	Token() <-chan []byte
	// Close releases the transport's resources; the receive channels are
	// closed afterwards.
	Close() error
}

// BatchSender is optionally implemented by transports that can hand a run
// of multicast packets to the network in fewer syscalls than one per
// packet (sendmmsg on Linux). The runtime loop accumulates the engine's
// multicast bursts — the pre-token retransmission+window run and the
// post-token accelerated flush of up to AcceleratedWindow frames — and
// flushes each run through MulticastBatch when the transport supports it.
//
// Semantics match len(pkts) successive Multicast calls: every packet goes
// to every participant except the sender, each pkt is borrowed only for
// the duration of the call, and a failure for one packet (or one peer,
// under unicast emulation) must not abort delivery of the rest — the
// aggregated error reports what was lost.
type BatchSender interface {
	MulticastBatch(pkts [][]byte) error
}

// Snapshot is a point-in-time copy of a transport's loss-accounting
// counters. Both built-in transports maintain one; external transports may
// opt in by implementing MetricsSource.
type Snapshot struct {
	// DatagramsIn counts packets accepted off the network into the
	// receive queues (data and token combined).
	DatagramsIn uint64 `json:"datagrams_in"`
	// DatagramsOut counts packets handed to the network (an emulated
	// multicast counts one per destination).
	DatagramsOut uint64 `json:"datagrams_out"`
	// RecvQueueDrops counts received packets discarded because a receive
	// queue was full — the loss the kernel (or the in-memory hub) would
	// otherwise inflict silently.
	RecvQueueDrops uint64 `json:"recv_queue_drops"`
	// FanoutSends counts the individual unicasts performed to emulate
	// multicast (zero when real IP-multicast is in use).
	FanoutSends uint64 `json:"fanout_sends"`
	// SelfFiltered counts self-originated multicast packets filtered on
	// receive (IP-multicast loopback copies).
	SelfFiltered uint64 `json:"self_filtered"`
	// RecvSyscalls and SendSyscalls count the receive and send syscalls
	// actually issued (zero for in-memory transports). With syscall
	// batching DatagramsIn/RecvSyscalls and DatagramsOut/SendSyscalls are
	// the achieved amortization — the quantity the batched dataplane
	// exists to raise.
	RecvSyscalls uint64 `json:"recv_syscalls"`
	SendSyscalls uint64 `json:"send_syscalls"`
	// RecvTransientErrors counts receive-loop errors survived without
	// killing the loop (ICMP-induced socket errors, momentary ENOBUFS);
	// the loop only exits on close.
	RecvTransientErrors uint64 `json:"recv_transient_errors"`
	// PeerSendErrors counts individual per-destination send failures
	// during multicast fan-out; the fan-out completes to the remaining
	// peers regardless.
	PeerSendErrors uint64 `json:"peer_send_errors"`
	// RecvBatch and SendBatch are the distributions of datagrams moved per
	// receive/send syscall (every syscall observes its batch size, so a
	// one-at-a-time transport shows mean 1).
	RecvBatch metrics.BatchSnapshot `json:"recv_batch"`
	SendBatch metrics.BatchSnapshot `json:"send_batch"`
}

// MetricsSource is implemented by transports that keep loss-accounting
// counters. The runtime includes the snapshot in Node metrics when the
// transport supports it.
type MetricsSource interface {
	MetricsSnapshot() Snapshot
}

// Metrics is the shared counter set behind Snapshot; transports embed it
// (anonymously) to satisfy MetricsSource. All counters are atomic — safe
// from receive goroutines and the sending protocol loop concurrently.
type Metrics struct {
	In           metrics.Counter
	Out          metrics.Counter
	Drops        metrics.Counter
	Fanout       metrics.Counter
	SelfFiltered metrics.Counter
	// Syscall accounting and per-stage resilience counters for the batched
	// dataplane; see the matching Snapshot fields. In-memory transports
	// leave them zero.
	RecvSyscalls  metrics.Counter
	SendSyscalls  metrics.Counter
	RecvTransient metrics.Counter
	PeerSendErrs  metrics.Counter
	RecvBatch     metrics.BatchHistogram
	SendBatch     metrics.BatchHistogram
}

// MetricsSnapshot implements MetricsSource.
func (m *Metrics) MetricsSnapshot() Snapshot {
	return Snapshot{
		DatagramsIn:         m.In.Load(),
		DatagramsOut:        m.Out.Load(),
		RecvQueueDrops:      m.Drops.Load(),
		FanoutSends:         m.Fanout.Load(),
		SelfFiltered:        m.SelfFiltered.Load(),
		RecvSyscalls:        m.RecvSyscalls.Load(),
		SendSyscalls:        m.SendSyscalls.Load(),
		RecvTransientErrors: m.RecvTransient.Load(),
		PeerSendErrors:      m.PeerSendErrs.Load(),
		RecvBatch:           m.RecvBatch.Snapshot(),
		SendBatch:           m.SendBatch.Snapshot(),
	}
}

// ErrClosed is returned by send operations on a closed transport.
var ErrClosed = errors.New("transport: closed")

// ErrUnknownPeer is returned when unicasting to a participant the
// transport has no address for.
var ErrUnknownPeer = errors.New("transport: unknown peer")
