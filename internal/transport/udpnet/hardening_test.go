package udpnet

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"accelring/internal/transport"
	"accelring/internal/wire"
)

// scriptedReader drives readLoopPortable through an exact sequence of
// results — the deterministic stand-in for a socket hit by ICMP-induced
// errors or momentary kernel memory pressure.
type scriptedReader struct {
	steps []readStep
	i     int
}

type readStep struct {
	pkt []byte
	err error
}

func (s *scriptedReader) ReadFromUDPAddrPort(b []byte) (int, netip.AddrPort, error) {
	if s.i >= len(s.steps) {
		return 0, netip.AddrPort{}, net.ErrClosed
	}
	st := s.steps[s.i]
	s.i++
	if st.err != nil {
		return 0, netip.AddrPort{}, st.err
	}
	n := copy(b, st.pkt)
	return n, netip.MustParseAddrPort("127.0.0.1:9999"), nil
}

// TestReadLoopSurvivesTransientErrors is the regression test for the
// receive-loop resilience fix: the old loop returned on ANY read error, so
// a single ICMP port-unreachable (surfaced as ECONNREFUSED) silently
// killed the node's receive path forever. The loop must instead count the
// error, log once per burst, back off, and keep serving — exiting only on
// net.ErrClosed.
func TestReadLoopSurvivesTransientErrors(t *testing.T) {
	refused := &net.OpError{Op: "read", Net: "udp", Err: syscall.ECONNREFUSED}
	nobufs := &net.OpError{Op: "read", Net: "udp", Err: syscall.ENOBUFS}
	reader := &scriptedReader{steps: []readStep{
		{err: refused},
		{err: refused},
		{pkt: []byte("first")},
		{err: nobufs},
		{pkt: []byte("second")},
		{err: net.ErrClosed},
	}}

	var logCalls atomic.Int64
	tr := &Transport{cfg: Config{Logf: func(string, ...any) { logCalls.Add(1) }}}
	ch := make(chan []byte, 4)
	done := make(chan struct{})
	go func() {
		defer close(done)
		tr.readLoopPortable(reader, ch, netip.AddrPort{})
	}()

	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("read loop did not exit on net.ErrClosed")
	}
	if got := len(ch); got != 2 {
		t.Fatalf("loop delivered %d packets across the error bursts, want 2", got)
	}
	for i, want := range []string{"first", "second"} {
		if got := string(<-ch); got != want {
			t.Fatalf("packet %d = %q, want %q", i, got, want)
		}
	}
	snap := tr.MetricsSnapshot()
	if snap.RecvTransientErrors != 3 {
		t.Fatalf("RecvTransientErrors = %d, want 3", snap.RecvTransientErrors)
	}
	if snap.DatagramsIn != 2 {
		t.Fatalf("DatagramsIn = %d, want 2", snap.DatagramsIn)
	}
	// One log line per error burst (two bursts), not one per error.
	if got := logCalls.Load(); got != 2 {
		t.Fatalf("logged %d times, want 2 (once per burst)", got)
	}
}

// mixedRing builds the partial-failure fixture: sender 1 and receiver 4
// are real loopback transports; peers 2 and 3 are IPv6 destinations that
// the sender's IPv4-bound data socket can never reach, so every send to
// them fails deterministically at the socket layer. Fan-out order is
// sorted by ID, so the bad peers come first — old code aborted there and
// peer 4 (behind the failures) never received anything.
func mixedRing(t *testing.T) (sender, receiver *Transport) {
	t.Helper()
	ports := freePorts(t, 8)
	peers := map[wire.ParticipantID]Peer{
		1: {Host: "127.0.0.1", DataPort: ports[0], TokenPort: ports[1]},
		2: {Host: "::1", DataPort: ports[2], TokenPort: ports[3]},
		3: {Host: "::1", DataPort: ports[4], TokenPort: ports[5]},
		4: {Host: "127.0.0.1", DataPort: ports[6], TokenPort: ports[7]},
	}
	quiet := Config{Logf: func(string, ...any) {}}.Logf
	a, err := New(Config{MyID: 1, Peers: peers, Logf: quiet})
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(Config{MyID: 4, Peers: peers, Logf: quiet})
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		a.Close()
		d.Close()
	})
	return a, d
}

// TestMulticastFanOutContinuesPastFailure is the regression test for the
// emulated-multicast abort bug: one unreachable peer used to end the
// fan-out loop, partitioning every peer after it in iteration order. The
// fan-out must now complete, aggregate every per-peer failure, and count
// them.
func TestMulticastFanOutContinuesPastFailure(t *testing.T) {
	a, d := mixedRing(t)
	err := a.Multicast([]byte("payload"))
	if err == nil {
		t.Fatal("multicast with unreachable peers reported no error")
	}
	if n := strings.Count(err.Error(), "emulated multicast to"); n != 2 {
		t.Fatalf("aggregated error reports %d peer failures, want 2:\n%v", n, err)
	}
	// The peer behind the failures still got the packet.
	if got := recvWithin(t, d.Data(), 2*time.Second); string(got) != "payload" {
		t.Fatalf("reachable peer received %q", got)
	}
	snap := a.MetricsSnapshot()
	if snap.PeerSendErrors != 2 {
		t.Fatalf("PeerSendErrors = %d, want 2", snap.PeerSendErrors)
	}
	if snap.DatagramsOut != 1 || snap.FanoutSends != 1 {
		t.Fatalf("out=%d fanout=%d, want 1/1 (only the successful send counts)",
			snap.DatagramsOut, snap.FanoutSends)
	}
}

// TestMulticastBatchContinuesPastFailure: the batched fan-out keeps the
// same partial-failure contract — unencodable/unreachable destinations are
// skipped and reported per peer, the rest of the burst is delivered.
func TestMulticastBatchContinuesPastFailure(t *testing.T) {
	a, d := mixedRing(t)
	err := a.MulticastBatch([][]byte{[]byte("m1"), []byte("m2")})
	if err == nil {
		t.Fatal("batched multicast with unreachable peers reported no error")
	}
	if n := strings.Count(err.Error(), "emulated multicast to"); n != 4 {
		t.Fatalf("aggregated error reports %d peer failures, want 4 (2 pkts x 2 bad peers):\n%v", n, err)
	}
	got := map[string]bool{}
	for len(got) < 2 {
		got[string(recvWithin(t, d.Data(), 2*time.Second))] = true
	}
	if !got["m1"] || !got["m2"] {
		t.Fatalf("reachable peer received %v, want m1 and m2", got)
	}
	snap := a.MetricsSnapshot()
	if snap.PeerSendErrors != 4 {
		t.Fatalf("PeerSendErrors = %d, want 4", snap.PeerSendErrors)
	}
	if snap.DatagramsOut != 2 {
		t.Fatalf("DatagramsOut = %d, want 2", snap.DatagramsOut)
	}
}

// TestListenAddrPolicy pins the bind-address selection rules.
func TestListenAddrPolicy(t *testing.T) {
	cases := []struct {
		host     string
		wildcard bool
		wantIP   string
	}{
		{host: "", wildcard: true},
		{host: "127.0.0.1", wantIP: "127.0.0.1"},
		{host: "::1", wantIP: "::1"},
		{host: "localhost", wildcard: true}, // hostname -> loopback: keep wildcard
	}
	for _, tc := range cases {
		addr, err := listenAddr(tc.host, 7400)
		if err != nil {
			t.Fatalf("listenAddr(%q): %v", tc.host, err)
		}
		if addr.Port != 7400 {
			t.Fatalf("listenAddr(%q) port = %d", tc.host, addr.Port)
		}
		if tc.wildcard {
			if addr.IP != nil && !addr.IP.IsUnspecified() {
				t.Fatalf("listenAddr(%q) = %v, want wildcard", tc.host, addr.IP)
			}
			continue
		}
		if !addr.IP.Equal(net.ParseIP(tc.wantIP)) {
			t.Fatalf("listenAddr(%q) = %v, want %s", tc.host, addr.IP, tc.wantIP)
		}
	}
}

// TestSocketsBindConfiguredHost is the regression test for the wildcard
// bind bug: the listen sockets ignored Peer.Host and bound every
// interface. A concrete configured address must be honored on both the
// token and data sockets.
func TestSocketsBindConfiguredHost(t *testing.T) {
	ports := freePorts(t, 2)
	peers := map[wire.ParticipantID]Peer{
		1: {Host: "127.0.0.1", DataPort: ports[0], TokenPort: ports[1]},
	}
	tr, err := New(Config{MyID: 1, Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	for name, conn := range map[string]*net.UDPConn{"token": tr.tokenConn, "data": tr.dataConn} {
		ip := conn.LocalAddr().(*net.UDPAddr).IP
		if !ip.Equal(net.IPv4(127, 0, 0, 1)) {
			t.Fatalf("%s socket bound %v, want 127.0.0.1", name, ip)
		}
	}
}

// TestMulticastBatchDelivers checks the burst path end to end in
// emulation mode and, where batching is compiled in, that the burst moved
// with amortized syscalls.
func TestMulticastBatchDelivers(t *testing.T) {
	a, b := pair(t)
	const burst = 12
	pkts := make([][]byte, burst)
	for i := range pkts {
		pkts[i] = []byte(fmt.Sprintf("burst-%02d", i))
	}
	if err := a.MulticastBatch(pkts); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for _, p := range pkts {
		want[string(p)] = true
	}
	for i := 0; i < burst; i++ {
		got := string(recvWithin(t, b.Data(), 2*time.Second))
		if !want[got] {
			t.Fatalf("received unexpected or duplicate packet %q", got)
		}
		delete(want, got)
	}
	snap := a.MetricsSnapshot()
	if snap.DatagramsOut != burst || snap.FanoutSends != burst {
		t.Fatalf("out=%d fanout=%d, want %d/%d", snap.DatagramsOut, snap.FanoutSends, burst, burst)
	}
	if batchingSupported {
		if snap.SendSyscalls >= burst {
			t.Fatalf("SendSyscalls = %d for a %d-packet burst: no amortization", snap.SendSyscalls, burst)
		}
		if snap.SendBatch.Max < 2 {
			t.Fatalf("SendBatch.Max = %d, want >= 2", snap.SendBatch.Max)
		}
	}
}

// TestMulticastBatchDisabled: DisableBatch falls back to one-at-a-time
// sends with identical delivery semantics.
func TestMulticastBatchDisabled(t *testing.T) {
	ports := freePorts(t, 4)
	peers := map[wire.ParticipantID]Peer{
		1: {Host: "127.0.0.1", DataPort: ports[0], TokenPort: ports[1]},
		2: {Host: "127.0.0.1", DataPort: ports[2], TokenPort: ports[3]},
	}
	a, err := New(Config{MyID: 1, Peers: peers, DisableBatch: true})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := New(Config{MyID: 2, Peers: peers, DisableBatch: true})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	pkts := [][]byte{[]byte("x1"), []byte("x2"), []byte("x3")}
	if err := a.MulticastBatch(pkts); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(pkts); i++ {
		recvWithin(t, b.Data(), 2*time.Second)
	}
	snap := a.MetricsSnapshot()
	if snap.SendSyscalls != 3 {
		t.Fatalf("SendSyscalls = %d with batching disabled, want 3", snap.SendSyscalls)
	}
	if mean := snap.SendBatch.Mean; mean != 1 {
		t.Fatalf("SendBatch.Mean = %v with batching disabled, want 1", mean)
	}
}

// TestMulticastBatchEmptyAndSingleton: edge cases — an empty burst is a
// no-op, and a singleton ring (no peers to fan out to) succeeds silently.
func TestMulticastBatchEmptyAndSingleton(t *testing.T) {
	ports := freePorts(t, 2)
	peers := map[wire.ParticipantID]Peer{1: {Host: "127.0.0.1", DataPort: ports[0], TokenPort: ports[1]}}
	tr, err := New(Config{MyID: 1, Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := tr.MulticastBatch(nil); err != nil {
		t.Fatalf("empty burst: %v", err)
	}
	if err := tr.MulticastBatch([][]byte{[]byte("solo")}); err != nil {
		t.Fatalf("singleton ring burst: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.MulticastBatch([][]byte{[]byte("x")}); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("MulticastBatch after close = %v, want ErrClosed", err)
	}
}

// TestCloseRacesConcurrentSends hammers every send path while Close runs.
// Run under -race (CI does): the invariants are no data race, no send on
// a closed socket panic, and no pooled-buffer corruption — errors from
// the losing senders are expected and ignored.
func TestCloseRacesConcurrentSends(t *testing.T) {
	for round := 0; round < 5; round++ {
		ports := freePorts(t, 4)
		peers := map[wire.ParticipantID]Peer{
			1: {Host: "127.0.0.1", DataPort: ports[0], TokenPort: ports[1]},
			2: {Host: "127.0.0.1", DataPort: ports[2], TokenPort: ports[3]},
		}
		a, err := New(Config{MyID: 1, Peers: peers, Logf: func(string, ...any) {}})
		if err != nil {
			t.Fatal(err)
		}
		start := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 3; g++ {
			wg.Add(3)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 200; i++ {
					_ = a.Multicast([]byte("mc"))
				}
			}()
			go func() {
				defer wg.Done()
				<-start
				burst := [][]byte{[]byte("b1"), []byte("b2"), []byte("b3")}
				for i := 0; i < 100; i++ {
					_ = a.MulticastBatch(burst)
				}
			}()
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 200; i++ {
					_ = a.Unicast(2, []byte("tk"))
				}
			}()
		}
		close(start)
		time.Sleep(time.Duration(round) * 500 * time.Microsecond)
		if err := a.Close(); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		if err := a.Close(); err != nil {
			t.Fatal("double close errored")
		}
	}
}
