package udpnet

import (
	"net"
	"testing"
	"time"

	"accelring/internal/transport"
	"accelring/internal/wire"
)

// freePorts grabs n distinct free UDP ports on localhost.
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	ports := make([]int, 0, n)
	conns := make([]*net.UDPConn, 0, n)
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	for len(ports) < n {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatalf("allocating port: %v", err)
		}
		conns = append(conns, c)
		ports = append(ports, c.LocalAddr().(*net.UDPAddr).Port)
	}
	return ports
}

// pair opens two emulation-mode transports on loopback.
func pair(t *testing.T) (*Transport, *Transport) {
	t.Helper()
	ports := freePorts(t, 4)
	peers := map[wire.ParticipantID]Peer{
		1: {Host: "127.0.0.1", DataPort: ports[0], TokenPort: ports[1]},
		2: {Host: "127.0.0.1", DataPort: ports[2], TokenPort: ports[3]},
	}
	a, err := New(Config{MyID: 1, Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{MyID: 2, Peers: peers})
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		a.Close()
		b.Close()
	})
	return a, b
}

func recvWithin(t *testing.T, ch <-chan []byte, d time.Duration) []byte {
	t.Helper()
	select {
	case pkt := <-ch:
		return pkt
	case <-time.After(d):
		t.Fatal("no packet within deadline")
		return nil
	}
}

func TestNewRequiresSelfPeer(t *testing.T) {
	_, err := New(Config{MyID: 1, Peers: map[wire.ParticipantID]Peer{2: {Host: "127.0.0.1"}}})
	if err == nil {
		t.Fatal("accepted config without self peer")
	}
}

func TestEmulatedMulticast(t *testing.T) {
	a, b := pair(t)
	if err := a.Multicast([]byte("data")); err != nil {
		t.Fatal(err)
	}
	if got := recvWithin(t, b.Data(), 2*time.Second); string(got) != "data" {
		t.Fatalf("got %q", got)
	}
	select {
	case pkt := <-a.Data():
		t.Fatalf("sender received its own emulated multicast: %q", pkt)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestUnicastToken(t *testing.T) {
	a, b := pair(t)
	if err := a.Unicast(2, []byte("token")); err != nil {
		t.Fatal(err)
	}
	if got := recvWithin(t, b.Token(), 2*time.Second); string(got) != "token" {
		t.Fatalf("got %q", got)
	}
}

func TestUnicastToSelf(t *testing.T) {
	a, _ := pair(t)
	if err := a.Unicast(1, []byte("self")); err != nil {
		t.Fatal(err)
	}
	if got := recvWithin(t, a.Token(), 2*time.Second); string(got) != "self" {
		t.Fatalf("got %q", got)
	}
}

func TestUnicastUnknownPeer(t *testing.T) {
	a, _ := pair(t)
	if err := a.Unicast(99, []byte("x")); err == nil {
		t.Fatal("unicast to unknown peer succeeded")
	}
}

func TestSendAfterClose(t *testing.T) {
	ports := freePorts(t, 2)
	peers := map[wire.ParticipantID]Peer{1: {Host: "127.0.0.1", DataPort: ports[0], TokenPort: ports[1]}}
	tr, err := New(Config{MyID: 1, Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Multicast([]byte("x")); err != transport.ErrClosed {
		t.Fatalf("Multicast after close = %v, want ErrClosed", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal("double close errored")
	}
}

func TestChannelsClosedAfterClose(t *testing.T) {
	ports := freePorts(t, 2)
	peers := map[wire.ParticipantID]Peer{1: {Host: "127.0.0.1", DataPort: ports[0], TokenPort: ports[1]}}
	tr, err := New(Config{MyID: 1, Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	tr.Close()
	if _, ok := <-tr.Data(); ok {
		t.Fatal("data channel still open after Close")
	}
	if _, ok := <-tr.Token(); ok {
		t.Fatal("token channel still open after Close")
	}
}

func TestLargeDatagram(t *testing.T) {
	a, b := pair(t)
	// The 8850-byte payload configuration of Section IV-A3: the kernel
	// fragments/reassembles the datagram.
	big := make([]byte, 9000)
	for i := range big {
		big[i] = byte(i)
	}
	if err := a.Multicast(big); err != nil {
		t.Fatal(err)
	}
	got := recvWithin(t, b.Data(), 2*time.Second)
	if len(got) != len(big) {
		t.Fatalf("got %d bytes, want %d", len(got), len(big))
	}
	for i := range got {
		if got[i] != big[i] {
			t.Fatalf("corruption at %d", i)
		}
	}
}

// TestReceiveQueueOverflowCounted saturates a tiny receive queue and
// checks the overflow is accounted: accepted plus dropped equals sent, and
// the queue can never accept more than its capacity while undrained.
func TestReceiveQueueOverflowCounted(t *testing.T) {
	ports := freePorts(t, 4)
	peers := map[wire.ParticipantID]Peer{
		1: {Host: "127.0.0.1", DataPort: ports[0], TokenPort: ports[1]},
		2: {Host: "127.0.0.1", DataPort: ports[2], TokenPort: ports[3]},
	}
	a, err := New(Config{MyID: 1, Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	const queue = 4
	b, err := New(Config{MyID: 2, Peers: peers, QueueLen: queue})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	const sent = 64
	for i := 0; i < sent; i++ {
		if err := a.Multicast([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// b never drains Data(); the read loop must fill the queue and count
	// every further packet as a drop. Loopback UDP is reliable at this
	// volume, so the accounting converges to exactly `sent`.
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap := b.MetricsSnapshot()
		if snap.DatagramsIn+snap.RecvQueueDrops == sent {
			if snap.DatagramsIn > queue {
				t.Fatalf("accepted %d packets into a queue of %d", snap.DatagramsIn, queue)
			}
			if snap.RecvQueueDrops < sent-queue {
				t.Fatalf("drops = %d, want >= %d", snap.RecvQueueDrops, sent-queue)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("accounting never converged: %+v (sent %d)", snap, sent)
		}
		time.Sleep(time.Millisecond)
	}
}

// floodBothPeers opens a two-member ring in the given mode (multicast
// group, or unicast emulation when group is empty), floods `count`
// distinct multicasts from member 1, and returns the packet streams each
// member's engine would see on its data channel. ok is false when nothing
// was delivered — multicast is unavailable in some container networks.
func floodBothPeers(t *testing.T, group string, count int) (self, peer [][]byte, sender *Transport, ok bool) {
	t.Helper()
	ports := freePorts(t, 4)
	peers := map[wire.ParticipantID]Peer{
		1: {Host: "127.0.0.1", DataPort: ports[0], TokenPort: ports[1]},
		2: {Host: "127.0.0.1", DataPort: ports[2], TokenPort: ports[3]},
	}
	a, err := New(Config{MyID: 1, Peers: peers, MulticastGroup: group})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{MyID: 2, Peers: peers, MulticastGroup: group})
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		a.Close()
		b.Close()
	})

	for i := 0; i < count; i++ {
		if err := a.Multicast([]byte{byte('f'), byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(2 * time.Second)
	for len(peer) < count {
		select {
		case pkt := <-b.Data():
			peer = append(peer, pkt)
		case <-deadline:
			return self, peer, a, len(peer) > 0
		}
	}
	// Give any (buggy) self-delivery time to surface on the sender side.
	settle := time.After(100 * time.Millisecond)
	for {
		select {
		case pkt := <-a.Data():
			self = append(self, pkt)
		case <-settle:
			return self, peer, a, true
		}
	}
}

// TestFloodIdenticalAcrossModes is the regression test for the
// self-delivery asymmetry: in multicast mode the sender used to receive
// its own multicasts via IP loopback, while unicast emulation skipped
// self at send time — so the engine saw different packet streams
// depending on deployment mode. Both modes must now present identical
// streams: everything at the peer, nothing at the sender.
func TestFloodIdenticalAcrossModes(t *testing.T) {
	const count = 32
	emuSelf, emuPeer, _, ok := floodBothPeers(t, "", count)
	if !ok || len(emuPeer) != count {
		t.Fatalf("emulation mode delivered %d/%d packets", len(emuPeer), count)
	}
	mcSelf, mcPeer, mcSender, ok := floodBothPeers(t, "239.192.77.42:17412", count)
	if !ok {
		t.Skip("multicast unavailable in this environment")
	}
	if len(mcPeer) != count {
		t.Fatalf("multicast mode delivered %d/%d packets", len(mcPeer), count)
	}

	if len(emuSelf) != 0 {
		t.Fatalf("emulation mode: sender saw %d of its own multicasts", len(emuSelf))
	}
	if len(mcSelf) != 0 {
		t.Fatalf("multicast mode: sender saw %d of its own multicasts (loopback not filtered)", len(mcSelf))
	}

	// The engine-visible streams must carry the same packets in both
	// modes. UDP does not guarantee ordering, so compare as multisets.
	emuSet := make(map[string]int, count)
	for _, pkt := range emuPeer {
		emuSet[string(pkt)]++
	}
	for _, pkt := range mcPeer {
		emuSet[string(pkt)]--
		if emuSet[string(pkt)] < 0 {
			t.Fatalf("multicast mode delivered %q more often than emulation mode", pkt)
		}
	}
	for pkt, n := range emuSet {
		if n != 0 {
			t.Fatalf("packet %q seen %d more times in emulation mode", pkt, n)
		}
	}

	// The filtered loopback copies are accounted, not invisible.
	if snap := mcSender.MetricsSnapshot(); snap.SelfFiltered == 0 {
		t.Fatal("no loopback copies filtered — self-filter accounting missing")
	}
}
