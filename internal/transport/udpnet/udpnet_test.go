package udpnet

import (
	"net"
	"testing"
	"time"

	"accelring/internal/transport"
	"accelring/internal/wire"
)

// freePorts grabs n distinct free UDP ports on localhost.
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	ports := make([]int, 0, n)
	conns := make([]*net.UDPConn, 0, n)
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	for len(ports) < n {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatalf("allocating port: %v", err)
		}
		conns = append(conns, c)
		ports = append(ports, c.LocalAddr().(*net.UDPAddr).Port)
	}
	return ports
}

// pair opens two emulation-mode transports on loopback.
func pair(t *testing.T) (*Transport, *Transport) {
	t.Helper()
	ports := freePorts(t, 4)
	peers := map[wire.ParticipantID]Peer{
		1: {Host: "127.0.0.1", DataPort: ports[0], TokenPort: ports[1]},
		2: {Host: "127.0.0.1", DataPort: ports[2], TokenPort: ports[3]},
	}
	a, err := New(Config{MyID: 1, Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{MyID: 2, Peers: peers})
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		a.Close()
		b.Close()
	})
	return a, b
}

func recvWithin(t *testing.T, ch <-chan []byte, d time.Duration) []byte {
	t.Helper()
	select {
	case pkt := <-ch:
		return pkt
	case <-time.After(d):
		t.Fatal("no packet within deadline")
		return nil
	}
}

func TestNewRequiresSelfPeer(t *testing.T) {
	_, err := New(Config{MyID: 1, Peers: map[wire.ParticipantID]Peer{2: {Host: "127.0.0.1"}}})
	if err == nil {
		t.Fatal("accepted config without self peer")
	}
}

func TestEmulatedMulticast(t *testing.T) {
	a, b := pair(t)
	if err := a.Multicast([]byte("data")); err != nil {
		t.Fatal(err)
	}
	if got := recvWithin(t, b.Data(), 2*time.Second); string(got) != "data" {
		t.Fatalf("got %q", got)
	}
	select {
	case pkt := <-a.Data():
		t.Fatalf("sender received its own emulated multicast: %q", pkt)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestUnicastToken(t *testing.T) {
	a, b := pair(t)
	if err := a.Unicast(2, []byte("token")); err != nil {
		t.Fatal(err)
	}
	if got := recvWithin(t, b.Token(), 2*time.Second); string(got) != "token" {
		t.Fatalf("got %q", got)
	}
}

func TestUnicastToSelf(t *testing.T) {
	a, _ := pair(t)
	if err := a.Unicast(1, []byte("self")); err != nil {
		t.Fatal(err)
	}
	if got := recvWithin(t, a.Token(), 2*time.Second); string(got) != "self" {
		t.Fatalf("got %q", got)
	}
}

func TestUnicastUnknownPeer(t *testing.T) {
	a, _ := pair(t)
	if err := a.Unicast(99, []byte("x")); err == nil {
		t.Fatal("unicast to unknown peer succeeded")
	}
}

func TestSendAfterClose(t *testing.T) {
	ports := freePorts(t, 2)
	peers := map[wire.ParticipantID]Peer{1: {Host: "127.0.0.1", DataPort: ports[0], TokenPort: ports[1]}}
	tr, err := New(Config{MyID: 1, Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Multicast([]byte("x")); err != transport.ErrClosed {
		t.Fatalf("Multicast after close = %v, want ErrClosed", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal("double close errored")
	}
}

func TestChannelsClosedAfterClose(t *testing.T) {
	ports := freePorts(t, 2)
	peers := map[wire.ParticipantID]Peer{1: {Host: "127.0.0.1", DataPort: ports[0], TokenPort: ports[1]}}
	tr, err := New(Config{MyID: 1, Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	tr.Close()
	if _, ok := <-tr.Data(); ok {
		t.Fatal("data channel still open after Close")
	}
	if _, ok := <-tr.Token(); ok {
		t.Fatal("token channel still open after Close")
	}
}

func TestLargeDatagram(t *testing.T) {
	a, b := pair(t)
	// The 8850-byte payload configuration of Section IV-A3: the kernel
	// fragments/reassembles the datagram.
	big := make([]byte, 9000)
	for i := range big {
		big[i] = byte(i)
	}
	if err := a.Multicast(big); err != nil {
		t.Fatal(err)
	}
	got := recvWithin(t, b.Data(), 2*time.Second)
	if len(got) != len(big) {
		t.Fatalf("got %d bytes, want %d", len(got), len(big))
	}
	for i := range got {
		if got[i] != big[i] {
			t.Fatalf("corruption at %d", i)
		}
	}
}
