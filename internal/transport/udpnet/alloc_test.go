package udpnet

import (
	"runtime"
	"testing"
	"time"

	"accelring/internal/transport"
)

// TestReceiveFloodAllocs is the regression test for the receive-path
// double allocation: the read loop used to allocate a MaxDatagram staging
// buffer once plus an n-byte copy per packet, and ReadFromUDP added a
// *net.UDPAddr per call. With pooled buffers and ReadFromUDPAddrPort the
// steady-state cost must be far below one heap allocation per packet.
func TestReceiveFloodAllocs(t *testing.T) {
	a, b := pair(t)

	payload := make([]byte, 1350) // the paper's typical datagram size
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	roundtrip := func(count int) (received int, mallocs uint64) {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		for i := 0; i < count; i++ {
			if err := a.Unicast(2, payload); err != nil {
				t.Fatal(err)
			}
			timer.Reset(time.Second)
			select {
			case pkt := <-b.Token():
				received++
				transport.Buffers.Put(pkt)
			case <-timer.C:
				// Loopback UDP very rarely drops; tolerate it.
			}
		}
		runtime.ReadMemStats(&after)
		return received, after.Mallocs - before.Mallocs
	}

	// Warm up: grow the pool's working set and any lazy runtime state
	// (channel internals, socket buffers) outside the measured window.
	roundtrip(64)

	const count = 300
	best := float64(1 << 30)
	for attempt := 0; attempt < 2; attempt++ {
		received, mallocs := roundtrip(count)
		if received < count/2 {
			t.Fatalf("only %d/%d packets survived loopback", received, count)
		}
		if per := float64(mallocs) / float64(received); per < best {
			best = per
		}
	}
	// The old path cost >=2 allocations per packet; the pooled path costs
	// ~0. The slack absorbs incidental runtime allocations (timers, GC
	// bookkeeping) that land inside the measured window.
	if best >= 1 {
		t.Fatalf("receive flood allocates %.2f times per packet, want < 1", best)
	}
}
