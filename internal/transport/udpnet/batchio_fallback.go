//go:build !(linux && (amd64 || arm64))

// The portable fallback: no recvmmsg/sendmmsg. The transport keeps
// today's one-datagram-per-syscall semantics; these stubs exist so the
// main code path can test batchingSupported without build tags at every
// call site. They are never invoked (every use is behind the constant),
// but they compile on every GOOS/GOARCH — the CI cross-compile check
// builds this file.
package udpnet

import (
	"errors"
	"net"
	"net/netip"

	"accelring/internal/transport"
)

// batchingSupported reports whether this build can use recvmmsg/sendmmsg.
const batchingSupported = false

var errNoBatch = errors.New("udpnet: batched syscalls not supported on this platform")

type batchReader struct{}

func newBatchReader(*net.UDPConn, *transport.Pool) (*batchReader, error) {
	return nil, errNoBatch
}

func (r *batchReader) read() (int, error)        { return 0, errNoBatch }
func (r *batchReader) length(int) int            { return 0 }
func (r *batchReader) buffer(int) []byte         { return nil }
func (r *batchReader) addr(int) netip.AddrPort   { return netip.AddrPort{} }
func (r *batchReader) detach(int) []byte         { return nil }
func (r *batchReader) release()                  {}

type batchWriter struct {
	onSyscall func(sent int)
}

func newBatchWriter(*net.UDPConn) (*batchWriter, error) { return nil, errNoBatch }

func (w *batchWriter) send([][]byte, []netip.AddrPort, func(int, error)) error {
	return errNoBatch
}
