// Package udpnet is the real-network transport: IP-multicast for data
// messages and UDP unicast for the token, on separate sockets/ports exactly
// as Section III-D of the paper describes. Where IP-multicast is not
// available (some container and cloud networks), the transport can emulate
// it with unicast fan-out — the same option Spread provides.
//
// On Linux the receive and multicast-burst send paths run on batched
// syscalls (recvmmsg/sendmmsg, see batchio_linux.go): up to batchK
// datagrams move per syscall, which is what keeps the per-message network
// cost sublinear once the hot path stops allocating. Other platforms (and
// Config.DisableBatch) use the portable one-datagram-at-a-time paths with
// identical semantics.
package udpnet

import (
	"errors"
	"fmt"
	"log"
	"net"
	"net/netip"
	"sort"
	"strconv"
	"sync"
	"time"

	"accelring/internal/transport"
	"accelring/internal/wire"
)

// MaxDatagram bounds receive buffers; it accommodates the large-datagram
// configuration of the paper's Section IV-A3. It equals the shared pool's
// buffer size so every received datagram fits in one pooled buffer.
const MaxDatagram = transport.MaxPacket

// defaultQueue is the receive channel depth per socket.
const defaultQueue = 4096

// Peer is the addressing information for one participant.
type Peer struct {
	// Host is the peer's IP address or hostname.
	Host string
	// DataPort receives data packets when multicast emulation is in use.
	DataPort int
	// TokenPort receives unicast token packets.
	TokenPort int
}

// Config configures a UDP transport endpoint.
type Config struct {
	// MyID is this participant. Peers must contain an entry for it (used
	// to bind the local sockets).
	MyID wire.ParticipantID
	// Peers maps every ring participant to its addresses.
	Peers map[wire.ParticipantID]Peer
	// MulticastGroup is the data multicast group, e.g. "239.192.7.4:7400".
	// Empty enables unicast emulation: multicasts are sent point-to-point
	// to every peer's DataPort.
	MulticastGroup string
	// QueueLen overrides the receive channel depth (default 4096).
	QueueLen int
	// DisableBatch forces the portable one-datagram-per-syscall paths even
	// where recvmmsg/sendmmsg are available — the control arm for syscall
	// benchmarks and a safety hatch.
	DisableBatch bool
	// Logf, when set, receives the transport's rare diagnostics (transient
	// receive errors survived with backoff). Nil uses the standard logger.
	Logf func(format string, args ...any)
}

// emuPeer is one unicast-emulation fan-out destination. The list is sorted
// by participant ID so fan-out order (and therefore partial-failure
// reporting) is deterministic, unlike the map iteration it replaces.
type emuPeer struct {
	id   wire.ParticipantID
	addr netip.AddrPort
}

// Transport is a UDP/IP-multicast transport endpoint.
type Transport struct {
	transport.Metrics

	cfg       Config
	dataConn  *net.UDPConn // receive side of the data socket
	dataSend  *net.UDPConn // send side for data
	tokenConn *net.UDPConn
	groupAddr *net.UDPAddr // nil in emulation mode
	// selfAddr is dataSend's local address (multicast mode), unmapped;
	// the zero AddrPort disables self-filtering. Addresses are netip
	// values, not *net.UDPAddr, so the send and receive paths stay free
	// of per-packet address allocations.
	selfAddr netip.AddrPort
	peers    map[wire.ParticipantID]netip.AddrPort // token addresses
	emuPeers []emuPeer                             // data fan-out targets (emulation), self excluded

	// Batched send state (nil when batching is unavailable or disabled):
	// dataW wraps the data send socket — dataSend in multicast mode,
	// dataConn in emulation mode. sendMu serializes use of the writer and
	// its flattening scratch; the Transport contract promises a single
	// sender, but Close (and belt-and-braces callers) may race.
	sendMu   sync.Mutex
	dataW    *batchWriter
	emuPkts  [][]byte
	emuAddrs []netip.AddrPort

	data  chan []byte
	token chan []byte

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

var _ transport.Transport = (*Transport)(nil)
var _ transport.BatchSender = (*Transport)(nil)

// New opens the sockets and starts the receive loops.
func New(cfg Config) (*Transport, error) {
	me, ok := cfg.Peers[cfg.MyID]
	if !ok {
		return nil, fmt.Errorf("udpnet: peers map has no entry for self (%s)", cfg.MyID)
	}
	queue := cfg.QueueLen
	if queue == 0 {
		queue = defaultQueue
	}
	t := &Transport{
		cfg:   cfg,
		peers: make(map[wire.ParticipantID]netip.AddrPort, len(cfg.Peers)),
		data:  make(chan []byte, queue),
		token: make(chan []byte, queue),
	}
	for id, p := range cfg.Peers {
		// JoinHostPort (not "%s:%d") so IPv6 literal hosts resolve.
		tokenAddr, err := net.ResolveUDPAddr("udp", net.JoinHostPort(p.Host, strconv.Itoa(p.TokenPort)))
		if err != nil {
			return nil, fmt.Errorf("udpnet: resolving %s token address: %w", id, err)
		}
		t.peers[id] = unmapAddrPort(tokenAddr.AddrPort())
		dataAddr, err := net.ResolveUDPAddr("udp", net.JoinHostPort(p.Host, strconv.Itoa(p.DataPort)))
		if err != nil {
			return nil, fmt.Errorf("udpnet: resolving %s data address: %w", id, err)
		}
		if id != cfg.MyID {
			t.emuPeers = append(t.emuPeers, emuPeer{id: id, addr: unmapAddrPort(dataAddr.AddrPort())})
		}
	}
	sort.Slice(t.emuPeers, func(i, j int) bool { return t.emuPeers[i].id < t.emuPeers[j].id })

	tokenBind, err := listenAddr(me.Host, me.TokenPort)
	if err != nil {
		return nil, fmt.Errorf("udpnet: token bind address: %w", err)
	}
	tokenConn, err := net.ListenUDP("udp", tokenBind)
	if err != nil {
		return nil, fmt.Errorf("udpnet: binding token socket: %w", err)
	}
	t.tokenConn = tokenConn

	if cfg.MulticastGroup != "" {
		gaddr, err := net.ResolveUDPAddr("udp", cfg.MulticastGroup)
		if err != nil {
			t.tokenConn.Close()
			return nil, fmt.Errorf("udpnet: resolving multicast group: %w", err)
		}
		t.groupAddr = gaddr
		dataConn, err := net.ListenMulticastUDP("udp", nil, gaddr)
		if err != nil {
			t.tokenConn.Close()
			return nil, fmt.Errorf("udpnet: joining multicast group %s: %w", cfg.MulticastGroup, err)
		}
		t.dataConn = dataConn
		sendConn, err := net.DialUDP("udp", nil, gaddr)
		if err != nil {
			t.tokenConn.Close()
			t.dataConn.Close()
			return nil, fmt.Errorf("udpnet: opening multicast send socket: %w", err)
		}
		t.dataSend = sendConn
		// Joining a multicast group loops our own sends back to dataConn.
		// Remember the send socket's source address so the receive loop can
		// filter those copies: the Transport contract is that Multicast
		// reaches every participant EXCEPT the sender (participants hold
		// their own messages already), which the unicast-emulation mode
		// implements by skipping self at send time.
		if la, ok := sendConn.LocalAddr().(*net.UDPAddr); ok {
			t.selfAddr = unmapAddrPort(la.AddrPort())
		}
	} else {
		dataBind, err := listenAddr(me.Host, me.DataPort)
		if err != nil {
			t.tokenConn.Close()
			return nil, fmt.Errorf("udpnet: data bind address: %w", err)
		}
		dataConn, err := net.ListenUDP("udp", dataBind)
		if err != nil {
			t.tokenConn.Close()
			return nil, fmt.Errorf("udpnet: binding data socket: %w", err)
		}
		t.dataConn = dataConn
	}

	if batchingSupported && !cfg.DisableBatch {
		// Wrap the data send socket for sendmmsg bursts. Failure to get raw
		// access is not fatal — the single-send paths remain correct.
		sendSock := t.dataSend
		if sendSock == nil {
			sendSock = t.dataConn
		}
		if w, err := newBatchWriter(sendSock); err == nil {
			w.onSyscall = func(sent int) {
				t.SendSyscalls.Inc()
				if sent > 0 {
					t.SendBatch.Observe(sent)
				}
			}
			t.dataW = w
		}
	}

	t.wg.Add(2)
	go t.readLoop(t.dataConn, t.data, t.selfAddr)
	go t.readLoop(t.tokenConn, t.token, netip.AddrPort{})
	return t, nil
}

// listenAddr picks the local bind address for a listen socket. The
// configured host is honored when it names a concrete address — binding
// the wildcard there (as `net.UDPAddr{Port: ...}` silently did) accepts
// traffic on every interface, not just the one the operator configured.
// The wildcard is preserved in two cases: an empty host, and a hostname
// that resolves to loopback (the common /etc/hosts alias for the
// machine's own name — binding loopback there would stop remote peers
// from reaching this node at all). A literal loopback IP still binds
// loopback: writing "127.0.0.1" is an explicit choice.
func listenAddr(host string, port int) (*net.UDPAddr, error) {
	if host == "" {
		return &net.UDPAddr{Port: port}, nil
	}
	if ip := net.ParseIP(host); ip != nil {
		return &net.UDPAddr{IP: ip, Port: port}, nil
	}
	addr, err := net.ResolveUDPAddr("udp", net.JoinHostPort(host, "0"))
	if err != nil {
		return nil, err
	}
	if addr.IP.IsLoopback() {
		return &net.UDPAddr{Port: port}, nil
	}
	return &net.UDPAddr{IP: addr.IP, Port: port}, nil
}

// unmapAddrPort normalizes 4-in-6 mapped addresses so netip comparisons
// between addresses from different sources (resolver, socket local address,
// packet source) are meaningful.
func unmapAddrPort(ap netip.AddrPort) netip.AddrPort {
	return netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port())
}

// isSelf reports whether src is this endpoint's own multicast loopback
// copy (the send socket's source address, with an unspecified-address
// wildcard for multi-homed hosts).
func isSelf(src, self netip.AddrPort) bool {
	return self.IsValid() && src.Port() == self.Port() &&
		(self.Addr().IsUnspecified() || src.Addr().Unmap() == self.Addr())
}

func (t *Transport) isClosed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}

func (t *Transport) logf(format string, args ...any) {
	if t.cfg.Logf != nil {
		t.cfg.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// recvState tracks a receive loop's error-recovery state: one log line per
// error burst, exponential backoff between retries, both reset by the next
// successful read.
type recvState struct {
	logged  bool
	backoff time.Duration
}

func (rs *recvState) ok() { rs.logged = false; rs.backoff = 0 }

// surviveRecvErr decides whether a receive loop keeps serving after err.
// Close is the only way a loop ends: net.ErrClosed (or the transport's
// closed flag, for raw errnos surfaced after the fd was torn down) stops
// it. Everything else — ICMP-induced socket errors, momentary ENOBUFS/
// ENOMEM — is transient: counted, logged once per burst, and retried with
// exponential backoff so a persistent fault cannot spin the CPU. The old
// loop returned on ANY error, silently killing the receive path for the
// node's remaining lifetime.
func (t *Transport) surviveRecvErr(err error, rs *recvState) bool {
	if errors.Is(err, net.ErrClosed) || t.isClosed() {
		return false
	}
	t.RecvTransient.Inc()
	if !rs.logged {
		t.logf("udpnet: transient receive error (loop continues): %v", err)
		rs.logged = true
	}
	switch {
	case rs.backoff == 0:
		rs.backoff = time.Millisecond
	case rs.backoff < 100*time.Millisecond:
		rs.backoff *= 2
	}
	time.Sleep(rs.backoff)
	return true
}

// readLoop pumps packets from a socket into a channel, choosing the
// batched (recvmmsg) implementation when the build and configuration
// allow it and raw socket access is available.
func (t *Transport) readLoop(conn *net.UDPConn, ch chan []byte, self netip.AddrPort) {
	defer t.wg.Done()
	if batchingSupported && !t.cfg.DisableBatch {
		if br, err := newBatchReader(conn, transport.Buffers); err == nil {
			t.readLoopBatch(br, ch, self)
			return
		}
	}
	t.readLoopPortable(conn, ch, self)
}

// singleReader is the portable receive loop's socket dependency;
// *net.UDPConn satisfies it and tests inject fakes to exercise the
// loop's error handling deterministically.
type singleReader interface {
	ReadFromUDPAddrPort(b []byte) (int, netip.AddrPort, error)
}

// readLoopPortable is the one-datagram-per-syscall receive loop, counting
// overflow drops (like a full kernel socket buffer, but accounted) and
// filtering this endpoint's own multicast loopback copies.
//
// The loop reads into buffers from the shared pool and hands each accepted
// packet to the channel still backed by its pooled buffer — ownership
// transfers to the consumer, which returns it with transport.Buffers.Put.
// A filtered or dropped packet's buffer is simply read into again, so the
// steady state is one pool Get per accepted packet and zero allocations
// (ReadFromUDPAddrPort returns the source as a value, unlike ReadFromUDP's
// per-call *net.UDPAddr).
func (t *Transport) readLoopPortable(conn singleReader, ch chan<- []byte, self netip.AddrPort) {
	buf := transport.Buffers.Get()
	defer func() { transport.Buffers.Put(buf) }()
	var rs recvState
	for {
		n, src, err := conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			if !t.surviveRecvErr(err, &rs) {
				return
			}
			continue
		}
		rs.ok()
		t.RecvSyscalls.Inc()
		t.RecvBatch.Observe(1)
		buf = t.acceptPacket(ch, buf, n, src, self)
	}
}

// acceptPacket applies the self-filter and queue handoff for one received
// packet and returns the buffer to read into next: a fresh pooled buffer
// when ownership moved to the channel, the same one otherwise.
func (t *Transport) acceptPacket(ch chan<- []byte, buf []byte, n int, src, self netip.AddrPort) []byte {
	if isSelf(src, self) {
		t.SelfFiltered.Inc()
		return buf
	}
	select {
	case ch <- buf[:n]:
		t.In.Inc()
		return transport.Buffers.Get()
	default:
		t.Drops.Inc()
		return buf
	}
}

// readLoopBatch drains the socket with recvmmsg: one syscall moves up to
// batchK datagrams. Accepted packets detach their pooled buffer (the
// reader replaces it); filtered and dropped packets reuse theirs — the
// same ownership contract as the portable loop, vectorized.
func (t *Transport) readLoopBatch(br *batchReader, ch chan<- []byte, self netip.AddrPort) {
	defer br.release()
	var rs recvState
	for {
		n, err := br.read()
		if err != nil {
			if !t.surviveRecvErr(err, &rs) {
				return
			}
			continue
		}
		rs.ok()
		t.RecvSyscalls.Inc()
		t.RecvBatch.Observe(n)
		for i := 0; i < n; i++ {
			if isSelf(br.addr(i), self) {
				t.SelfFiltered.Inc()
				continue
			}
			select {
			case ch <- br.buffer(i)[:br.length(i)]:
				t.In.Inc()
				br.detach(i)
			default:
				t.Drops.Inc()
			}
		}
	}
}

// Multicast implements transport.Transport.
func (t *Transport) Multicast(pkt []byte) error {
	if t.isClosed() {
		return transport.ErrClosed
	}
	if t.groupAddr != nil {
		if _, err := t.dataSend.Write(pkt); err != nil {
			return fmt.Errorf("udpnet: multicast: %w", err)
		}
		t.Out.Inc()
		t.SendSyscalls.Inc()
		t.SendBatch.Observe(1)
		return nil
	}
	// Unicast emulation: fan out to every peer's data port. A failed peer
	// must not starve the ones after it — the ring tolerates one receiver
	// missing a message (retransmission recovers it), but a fan-out that
	// aborts mid-iteration silently partitions every peer behind the
	// failure. Errors aggregate instead.
	var errs []error
	for _, p := range t.emuPeers {
		if _, err := t.dataConn.WriteToUDPAddrPort(pkt, p.addr); err != nil {
			t.PeerSendErrs.Inc()
			errs = append(errs, fmt.Errorf("udpnet: emulated multicast to %s: %w", p.id, err))
			continue
		}
		t.Out.Inc()
		t.Fanout.Inc()
		t.SendSyscalls.Inc()
		t.SendBatch.Observe(1)
	}
	return errors.Join(errs...)
}

// MulticastBatch implements transport.BatchSender: semantically identical
// to calling Multicast for each packet, but the whole burst moves with
// one sendmmsg per batchK datagrams. In emulation mode the flattened
// (packet × peer) fan-out is batched the same way, so a K-message burst
// to N peers costs ⌈K·N/batchK⌉ syscalls instead of K·N.
func (t *Transport) MulticastBatch(pkts [][]byte) error {
	if len(pkts) == 0 {
		return nil
	}
	if t.isClosed() {
		return transport.ErrClosed
	}
	t.sendMu.Lock()
	w := t.dataW
	t.sendMu.Unlock()
	if w == nil {
		// Portable fallback: one-at-a-time semantics, aggregated errors.
		var errs []error
		for _, pkt := range pkts {
			if err := t.Multicast(pkt); err != nil {
				errs = append(errs, err)
			}
		}
		return errors.Join(errs...)
	}
	t.sendMu.Lock()
	defer t.sendMu.Unlock()
	var errs []error
	failed := 0
	if t.groupAddr != nil {
		sendErr := w.send(pkts, nil, func(i int, e error) {
			failed++
			errs = append(errs, fmt.Errorf("udpnet: multicast (burst %d/%d): %w", i+1, len(pkts), e))
		})
		if sendErr != nil {
			return t.sendFatal(sendErr)
		}
		t.Out.Add(uint64(len(pkts) - failed))
		return errors.Join(errs...)
	}
	if len(t.emuPeers) == 0 {
		return nil // singleton ring: multicast reaches nobody but self
	}
	// Flatten burst × peers into one vector. The scratch slices are
	// retained across calls (guarded by sendMu) and the packet aliases
	// cleared afterwards, so the steady state allocates nothing.
	flatPkts := t.emuPkts[:0]
	flatAddrs := t.emuAddrs[:0]
	for _, pkt := range pkts {
		for _, p := range t.emuPeers {
			flatPkts = append(flatPkts, pkt)
			flatAddrs = append(flatAddrs, p.addr)
		}
	}
	sendErr := w.send(flatPkts, flatAddrs, func(i int, e error) {
		failed++
		t.PeerSendErrs.Inc()
		p := t.emuPeers[i%len(t.emuPeers)]
		errs = append(errs, fmt.Errorf("udpnet: emulated multicast to %s: %w", p.id, e))
	})
	sent := len(flatPkts) - failed
	for i := range flatPkts {
		flatPkts[i] = nil
	}
	t.emuPkts, t.emuAddrs = flatPkts[:0], flatAddrs[:0]
	if sendErr != nil {
		return t.sendFatal(sendErr)
	}
	t.Out.Add(uint64(sent))
	t.Fanout.Add(uint64(sent))
	return errors.Join(errs...)
}

// sendFatal normalizes a terminal batch-send error (the raw socket went
// away mid-call) to the transport's close semantics.
func (t *Transport) sendFatal(err error) error {
	if errors.Is(err, net.ErrClosed) || t.isClosed() {
		return transport.ErrClosed
	}
	return fmt.Errorf("udpnet: batched multicast: %w", err)
}

// Unicast implements transport.Transport.
func (t *Transport) Unicast(to wire.ParticipantID, pkt []byte) error {
	if t.isClosed() {
		return transport.ErrClosed
	}
	addr, ok := t.peers[to]
	if !ok {
		return fmt.Errorf("%w: %s", transport.ErrUnknownPeer, to)
	}
	if _, err := t.tokenConn.WriteToUDPAddrPort(pkt, addr); err != nil {
		return fmt.Errorf("udpnet: unicast to %s: %w", to, err)
	}
	t.Out.Inc()
	t.SendSyscalls.Inc()
	t.SendBatch.Observe(1)
	return nil
}

// Data implements transport.Transport.
func (t *Transport) Data() <-chan []byte { return t.data }

// Token implements transport.Transport.
func (t *Transport) Token() <-chan []byte { return t.token }

// Close implements transport.Transport.
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()

	t.tokenConn.Close()
	t.dataConn.Close()
	if t.dataSend != nil {
		t.dataSend.Close()
	}
	t.wg.Wait()
	close(t.data)
	close(t.token)
	return nil
}
