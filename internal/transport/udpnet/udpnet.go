// Package udpnet is the real-network transport: IP-multicast for data
// messages and UDP unicast for the token, on separate sockets/ports exactly
// as Section III-D of the paper describes. Where IP-multicast is not
// available (some container and cloud networks), the transport can emulate
// it with unicast fan-out — the same option Spread provides.
package udpnet

import (
	"fmt"
	"net"
	"net/netip"
	"sync"

	"accelring/internal/transport"
	"accelring/internal/wire"
)

// MaxDatagram bounds receive buffers; it accommodates the large-datagram
// configuration of the paper's Section IV-A3. It equals the shared pool's
// buffer size so every received datagram fits in one pooled buffer.
const MaxDatagram = transport.MaxPacket

// defaultQueue is the receive channel depth per socket.
const defaultQueue = 4096

// Peer is the addressing information for one participant.
type Peer struct {
	// Host is the peer's IP address or hostname.
	Host string
	// DataPort receives data packets when multicast emulation is in use.
	DataPort int
	// TokenPort receives unicast token packets.
	TokenPort int
}

// Config configures a UDP transport endpoint.
type Config struct {
	// MyID is this participant. Peers must contain an entry for it (used
	// to bind the local sockets).
	MyID wire.ParticipantID
	// Peers maps every ring participant to its addresses.
	Peers map[wire.ParticipantID]Peer
	// MulticastGroup is the data multicast group, e.g. "239.192.7.4:7400".
	// Empty enables unicast emulation: multicasts are sent point-to-point
	// to every peer's DataPort.
	MulticastGroup string
	// QueueLen overrides the receive channel depth (default 4096).
	QueueLen int
}

// Transport is a UDP/IP-multicast transport endpoint.
type Transport struct {
	transport.Metrics

	cfg       Config
	dataConn  *net.UDPConn // receive side of the data socket
	dataSend  *net.UDPConn // send side for data
	tokenConn *net.UDPConn
	groupAddr *net.UDPAddr // nil in emulation mode
	// selfAddr is dataSend's local address (multicast mode), unmapped;
	// the zero AddrPort disables self-filtering. Addresses are netip
	// values, not *net.UDPAddr, so the send and receive paths stay free
	// of per-packet address allocations.
	selfAddr  netip.AddrPort
	peers     map[wire.ParticipantID]netip.AddrPort // token addresses
	dataAddrs map[wire.ParticipantID]netip.AddrPort // data addresses (emulation)

	data  chan []byte
	token chan []byte

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

var _ transport.Transport = (*Transport)(nil)

// New opens the sockets and starts the receive loops.
func New(cfg Config) (*Transport, error) {
	me, ok := cfg.Peers[cfg.MyID]
	if !ok {
		return nil, fmt.Errorf("udpnet: peers map has no entry for self (%s)", cfg.MyID)
	}
	queue := cfg.QueueLen
	if queue == 0 {
		queue = defaultQueue
	}
	t := &Transport{
		cfg:       cfg,
		peers:     make(map[wire.ParticipantID]netip.AddrPort, len(cfg.Peers)),
		dataAddrs: make(map[wire.ParticipantID]netip.AddrPort, len(cfg.Peers)),
		data:      make(chan []byte, queue),
		token:     make(chan []byte, queue),
	}
	for id, p := range cfg.Peers {
		tokenAddr, err := net.ResolveUDPAddr("udp", fmt.Sprintf("%s:%d", p.Host, p.TokenPort))
		if err != nil {
			return nil, fmt.Errorf("udpnet: resolving %s token address: %w", id, err)
		}
		t.peers[id] = unmapAddrPort(tokenAddr.AddrPort())
		dataAddr, err := net.ResolveUDPAddr("udp", fmt.Sprintf("%s:%d", p.Host, p.DataPort))
		if err != nil {
			return nil, fmt.Errorf("udpnet: resolving %s data address: %w", id, err)
		}
		t.dataAddrs[id] = unmapAddrPort(dataAddr.AddrPort())
	}

	tokenConn, err := net.ListenUDP("udp", &net.UDPAddr{Port: me.TokenPort})
	if err != nil {
		return nil, fmt.Errorf("udpnet: binding token socket: %w", err)
	}
	t.tokenConn = tokenConn

	if cfg.MulticastGroup != "" {
		gaddr, err := net.ResolveUDPAddr("udp", cfg.MulticastGroup)
		if err != nil {
			t.tokenConn.Close()
			return nil, fmt.Errorf("udpnet: resolving multicast group: %w", err)
		}
		t.groupAddr = gaddr
		dataConn, err := net.ListenMulticastUDP("udp", nil, gaddr)
		if err != nil {
			t.tokenConn.Close()
			return nil, fmt.Errorf("udpnet: joining multicast group %s: %w", cfg.MulticastGroup, err)
		}
		t.dataConn = dataConn
		sendConn, err := net.DialUDP("udp", nil, gaddr)
		if err != nil {
			t.tokenConn.Close()
			t.dataConn.Close()
			return nil, fmt.Errorf("udpnet: opening multicast send socket: %w", err)
		}
		t.dataSend = sendConn
		// Joining a multicast group loops our own sends back to dataConn.
		// Remember the send socket's source address so the receive loop can
		// filter those copies: the Transport contract is that Multicast
		// reaches every participant EXCEPT the sender (participants hold
		// their own messages already), which the unicast-emulation mode
		// implements by skipping self at send time.
		if la, ok := sendConn.LocalAddr().(*net.UDPAddr); ok {
			t.selfAddr = unmapAddrPort(la.AddrPort())
		}
	} else {
		dataConn, err := net.ListenUDP("udp", &net.UDPAddr{Port: me.DataPort})
		if err != nil {
			t.tokenConn.Close()
			return nil, fmt.Errorf("udpnet: binding data socket: %w", err)
		}
		t.dataConn = dataConn
	}

	t.wg.Add(2)
	go t.readLoop(t.dataConn, t.data, t.selfAddr)
	go t.readLoop(t.tokenConn, t.token, netip.AddrPort{})
	return t, nil
}

// unmapAddrPort normalizes 4-in-6 mapped addresses so netip comparisons
// between addresses from different sources (resolver, socket local address,
// packet source) are meaningful.
func unmapAddrPort(ap netip.AddrPort) netip.AddrPort {
	return netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port())
}

// readLoop pumps packets from a socket into a channel, counting overflow
// drops (like a full kernel socket buffer, but accounted). Packets whose
// source address matches self are this endpoint's own multicast loopback
// copies and are filtered.
//
// The loop reads into buffers from the shared pool and hands each accepted
// packet to the channel still backed by its pooled buffer — ownership
// transfers to the consumer, which returns it with transport.Buffers.Put.
// A filtered or dropped packet's buffer is simply read into again, so the
// steady state is one pool Get per accepted packet and zero allocations
// (ReadFromUDPAddrPort returns the source as a value, unlike ReadFromUDP's
// per-call *net.UDPAddr).
func (t *Transport) readLoop(conn *net.UDPConn, ch chan []byte, self netip.AddrPort) {
	defer t.wg.Done()
	buf := transport.Buffers.Get()
	defer func() { transport.Buffers.Put(buf) }()
	for {
		n, src, err := conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			return // socket closed
		}
		if self.IsValid() && src.Port() == self.Port() &&
			(self.Addr().IsUnspecified() || src.Addr().Unmap() == self.Addr()) {
			t.SelfFiltered.Inc()
			continue
		}
		select {
		case ch <- buf[:n]:
			t.In.Inc()
			buf = transport.Buffers.Get()
		default:
			t.Drops.Inc()
		}
	}
}

// Multicast implements transport.Transport.
func (t *Transport) Multicast(pkt []byte) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return transport.ErrClosed
	}
	t.mu.Unlock()
	if t.groupAddr != nil {
		_, err := t.dataSend.Write(pkt)
		if err != nil {
			return fmt.Errorf("udpnet: multicast: %w", err)
		}
		t.Out.Inc()
		return nil
	}
	// Unicast emulation: fan out to every peer's data port.
	for id, addr := range t.dataAddrs {
		if id == t.cfg.MyID {
			continue
		}
		if _, err := t.dataConn.WriteToUDPAddrPort(pkt, addr); err != nil {
			return fmt.Errorf("udpnet: emulated multicast to %s: %w", id, err)
		}
		t.Out.Inc()
		t.Fanout.Inc()
	}
	return nil
}

// Unicast implements transport.Transport.
func (t *Transport) Unicast(to wire.ParticipantID, pkt []byte) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return transport.ErrClosed
	}
	t.mu.Unlock()
	addr, ok := t.peers[to]
	if !ok {
		return fmt.Errorf("%w: %s", transport.ErrUnknownPeer, to)
	}
	if _, err := t.tokenConn.WriteToUDPAddrPort(pkt, addr); err != nil {
		return fmt.Errorf("udpnet: unicast to %s: %w", to, err)
	}
	t.Out.Inc()
	return nil
}

// Data implements transport.Transport.
func (t *Transport) Data() <-chan []byte { return t.data }

// Token implements transport.Transport.
func (t *Transport) Token() <-chan []byte { return t.token }

// Close implements transport.Transport.
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()

	t.tokenConn.Close()
	t.dataConn.Close()
	if t.dataSend != nil {
		t.dataSend.Close()
	}
	t.wg.Wait()
	close(t.data)
	close(t.token)
	return nil
}
