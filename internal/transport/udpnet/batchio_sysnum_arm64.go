//go:build linux && arm64

package udpnet

// Raw syscall numbers for linux/arm64 (the generic 64-bit table).
const (
	sysRECVMMSG uintptr = 243
	sysSENDMMSG uintptr = 269
)
